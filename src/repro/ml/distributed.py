"""Data-parallel distributed training with simulated communication.

Gradient math is **exact**: each global batch is split across W virtual
workers, per-shard gradients are computed with real backprop, and the
weighted average is applied — bitwise the same update a single worker doing
the whole batch would make (the equivalence property tested in the suite).
What is *simulated* is time: per-step compute scales with the shard size and
each synchronisation pays the collective's cost from
:mod:`repro.cluster.comm`.

Strategies: ``allreduce`` (ring), ``parameter_server``, ``broadcast``.

Fault tolerance (experiment E17):

* **elastic recovery** — with a :class:`~repro.faults.FaultInjector`, a
  worker that crashes drops out at the next step boundary; its data shard is
  skipped and the gradient average is rescaled over the examples the
  survivors actually processed, so every update remains *mathematically
  exact* for the data it saw (the same update a single worker computing
  exactly those examples would make);
* **checkpoint/restore** — ``checkpoint_every`` writes model + optimizer +
  progress to an ``.npz`` (reusing ``Sequential.state_dict``); a restored
  trainer resumes the loss trajectory bitwise.

Observability: with an :class:`~repro.obs.Observability` bundle the trainer
reports the comm-vs-compute split per strategy (``ml.compute_time_s`` /
``ml.comm_time_s`` counters in simulated seconds), a per-step total-time
histogram (``ml.step_time_s``), step/crash/checkpoint counters, and the
surviving worker count as a gauge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.errors import MLError
from repro.obs import Observability, resolve

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
from repro.cluster.comm import (
    NetworkModel,
    broadcast_time_s,
    parameter_server_time_s,
    ring_allreduce_time_s,
)
from repro.ml.losses import softmax_cross_entropy
from repro.ml.network import Sequential
from repro.ml.optimizers import Optimizer, WarmupLinearScalingSchedule

STRATEGIES = ("allreduce", "parameter_server", "broadcast")


@dataclass
class TrainingReport:
    """Per-run accounting: losses plus the simulated time breakdown."""

    steps: int = 0
    losses: List[float] = field(default_factory=list)
    compute_time_s: float = 0.0
    comm_time_s: float = 0.0
    worker_crashes: int = 0
    checkpoints_written: int = 0

    @property
    def total_time_s(self) -> float:
        return self.compute_time_s + self.comm_time_s

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise MLError("no steps recorded")
        return self.losses[-1]

    def throughput(self, examples_per_step: int) -> float:
        """Simulated examples/second."""
        if self.total_time_s == 0.0:
            return 0.0
        return self.steps * examples_per_step / self.total_time_s


class DataParallelTrainer:
    """Synchronous data-parallel SGD over virtual workers."""

    def __init__(
        self,
        model: Sequential,
        optimizer: Optimizer,
        workers: int = 1,
        strategy: str = "allreduce",
        servers: int = 1,
        network: NetworkModel = NetworkModel(),
        example_cost_s: float = 1e-4,
        schedule: Optional[WarmupLinearScalingSchedule] = None,
        loss_fn: Callable = softmax_cross_entropy,
        injector: Optional["FaultInjector"] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_path: Optional[str] = None,
        obs: Optional[Observability] = None,
    ):
        if workers < 1:
            raise MLError(f"workers must be >= 1, got {workers}")
        if strategy not in STRATEGIES:
            raise MLError(f"unknown strategy {strategy!r}; pick from {STRATEGIES}")
        if example_cost_s < 0:
            raise MLError("example_cost_s must be non-negative")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise MLError("checkpoint_every must be >= 1")
        if checkpoint_every is not None and checkpoint_path is None:
            raise MLError("checkpoint_every requires checkpoint_path")
        self.model = model
        self.optimizer = optimizer
        self.workers = workers
        self.strategy = strategy
        self.servers = servers
        self.network = network
        self.example_cost_s = example_cost_s
        self.schedule = schedule
        self.loss_fn = loss_fn
        self.injector = injector
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = checkpoint_path
        self.obs = resolve(obs)
        self.report = TrainingReport()
        self._active: List[int] = list(range(workers))

    @property
    def active_workers(self) -> Tuple[int, ...]:
        """Worker slots still alive (all of them unless chaos killed some)."""
        return tuple(self._active)

    # ------------------------------------------------------------------
    # One synchronous step
    # ------------------------------------------------------------------

    def train_step(self, x: np.ndarray, y: np.ndarray) -> float:
        """One synchronous data-parallel step over the global batch (x, y)."""
        n = x.shape[0]
        if n < self.workers:
            raise MLError(
                f"global batch of {n} cannot be split across {self.workers} workers"
            )
        if self.schedule is not None:
            self.schedule.apply(self.optimizer, self.report.steps)
        if self.injector is not None:
            self._collect_crashes()

        # Data ownership is fixed by the original worker count; dead workers'
        # shards are skipped and the average is rescaled over the examples
        # the survivors actually process, keeping the update exact for them.
        shards = np.array_split(np.arange(n), self.workers)
        if len(self._active) == self.workers:
            processed = n
        else:
            processed = sum(shards[w].size for w in self._active)
            if processed == 0:
                raise MLError("surviving workers hold no examples this step")
        self.model.zero_grad()
        parameters = self.model.parameters()
        accumulated = [np.zeros_like(p.value) for p in parameters]
        total_loss = 0.0
        largest_shard = 0

        for worker in self._active:
            shard = shards[worker]
            if shard.size == 0:
                continue
            largest_shard = max(largest_shard, shard.size)
            self.model.zero_grad()
            logits = self.model.forward(x[shard], training=True)
            loss, dlogits = self.loss_fn(logits, y[shard])
            self.model.backward(dlogits)
            weight = shard.size / processed
            total_loss += loss * weight
            for accumulator, parameter in zip(accumulated, parameters):
                accumulator += parameter.grad * weight

        # Install the averaged gradient and step once — exactly the update a
        # single worker with the processed examples would apply.
        for parameter, accumulator in zip(parameters, accumulated):
            parameter.grad[...] = accumulator
        self.optimizer.step()

        # Simulated time: workers compute their shard in parallel, then sync.
        compute_s = largest_shard * self.example_cost_s
        comm_s = self.sync_time_s(len(self._active))
        self.report.compute_time_s += compute_s
        self.report.comm_time_s += comm_s
        self.report.steps += 1
        self.report.losses.append(total_loss)
        metrics = self.obs.metrics
        metrics.counter("ml.steps", strategy=self.strategy).inc()
        metrics.counter("ml.compute_time_s", strategy=self.strategy).inc(compute_s)
        metrics.counter("ml.comm_time_s", strategy=self.strategy).inc(comm_s)
        metrics.histogram("ml.step_time_s", strategy=self.strategy).observe(
            compute_s + comm_s
        )
        metrics.gauge("ml.active_workers").set(len(self._active))
        if (
            self.checkpoint_every is not None
            and self.report.steps % self.checkpoint_every == 0
        ):
            self.save_checkpoint()
        return total_loss

    def _collect_crashes(self) -> None:
        """Retire workers the plan kills at (or before) the current step."""
        for worker in list(self._active):
            if self.injector.worker_crashed(worker, self.report.steps):
                self._active.remove(worker)
                self.report.worker_crashes += 1
                self.obs.metrics.counter("ml.worker_crashes").inc()
        if not self._active:
            raise MLError("all workers crashed; no survivors to train on")

    def sync_time_s(self, workers: Optional[int] = None) -> float:
        """Cost of one gradient synchronisation for the current model size.

        ``workers`` defaults to the configured worker count; the elastic
        path passes the surviving count so a shrunken ring costs less.
        """
        count = self.workers if workers is None else workers
        message = self.model.parameter_bytes
        if self.strategy == "allreduce":
            return ring_allreduce_time_s(count, message, self.network)
        if self.strategy == "parameter_server":
            return parameter_server_time_s(
                count, message, self.servers, self.network
            )
        return broadcast_time_s(count, message, self.network)

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------

    @staticmethod
    def _npz(path: str) -> str:
        return path if path.endswith(".npz") else path + ".npz"

    def save_checkpoint(self, path: Optional[str] = None) -> str:
        """Write model + optimizer + progress to one ``.npz`` file.

        Returns the path written. Restoring from it resumes the loss
        trajectory bitwise (tested in the suite).
        """
        path = path if path is not None else self.checkpoint_path
        if path is None:
            raise MLError("no checkpoint path configured")
        path = self._npz(path)
        payload: Dict[str, np.ndarray] = {}
        for key, value in self.model.state_dict().items():
            payload[f"model.{key}"] = value
        for key, value in self.optimizer.state_dict().items():
            payload[f"optimizer.{key}"] = value
        payload["report.steps"] = np.int64(self.report.steps)
        payload["report.losses"] = np.asarray(self.report.losses, dtype=np.float64)
        payload["report.compute_time_s"] = np.float64(self.report.compute_time_s)
        payload["report.comm_time_s"] = np.float64(self.report.comm_time_s)
        payload["report.worker_crashes"] = np.int64(self.report.worker_crashes)
        payload["active_workers"] = np.asarray(self._active, dtype=np.int64)
        np.savez(path, **payload)
        self.report.checkpoints_written += 1
        self.obs.metrics.counter("ml.checkpoints").inc()
        return path

    def load_checkpoint(self, path: Optional[str] = None) -> None:
        """Restore model, optimizer state, and progress from a checkpoint."""
        path = path if path is not None else self.checkpoint_path
        if path is None:
            raise MLError("no checkpoint path configured")
        with np.load(self._npz(path)) as data:
            model_state = {
                key[len("model."):]: data[key]
                for key in data.files
                if key.startswith("model.")
            }
            optimizer_state = {
                key[len("optimizer."):]: data[key]
                for key in data.files
                if key.startswith("optimizer.")
            }
            self.model.load_state_dict(model_state)
            self.optimizer.load_state_dict(optimizer_state)
            self.report.steps = int(data["report.steps"])
            self.report.losses = [float(v) for v in data["report.losses"]]
            self.report.compute_time_s = float(data["report.compute_time_s"])
            self.report.comm_time_s = float(data["report.comm_time_s"])
            self.report.worker_crashes = int(data["report.worker_crashes"])
            self._active = [int(w) for w in data["active_workers"]]

    # ------------------------------------------------------------------
    # Epoch driver
    # ------------------------------------------------------------------

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 1,
        batch_size: int = 32,
        shuffle_seed: int = 0,
    ) -> TrainingReport:
        """Train for *epochs* over (x, y) with a fixed global batch size."""
        if epochs < 1:
            raise MLError("epochs must be >= 1")
        n = x.shape[0]
        if batch_size < self.workers:
            raise MLError("batch_size must be >= workers")
        rng = np.random.default_rng(shuffle_seed)
        for _ in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n - self.workers + 1, batch_size):
                batch = order[start : start + batch_size]
                if batch.size < self.workers:
                    continue
                self.train_step(x[batch], y[batch])
        return self.report


def time_to_accuracy(
    make_model: Callable[[], Sequential],
    make_trainer: Callable[[Sequential], DataParallelTrainer],
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    target_accuracy: float,
    batch_size: int = 64,
    max_epochs: int = 50,
    eval_every: int = 1,
) -> Tuple[Optional[float], DataParallelTrainer]:
    """Simulated seconds to reach *target_accuracy* on validation data.

    Returns (time or None if never reached, the trainer for inspection).
    """
    from repro.ml.metrics import accuracy as accuracy_fn

    model = make_model()
    trainer = make_trainer(model)
    for epoch in range(max_epochs):
        trainer.fit(x_train, y_train, epochs=1, batch_size=batch_size,
                    shuffle_seed=epoch)
        if (epoch + 1) % eval_every == 0:
            score = accuracy_fn(model.predict(x_val), y_val)
            if score >= target_accuracy:
                return trainer.report.total_time_s, trainer
    return None, trainer
