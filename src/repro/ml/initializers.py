"""Weight initializers."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import MLError


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a), a = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def he_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal: N(0, sqrt(2 / fan_in)) — the ReLU default."""
    fan_in, _ = _fans(shape)
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 2:  # Dense: (in, out)
        return shape[0], shape[1]
    if len(shape) == 4:  # Conv: (filters, channels, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    if len(shape) == 1:
        return shape[0], shape[0]
    raise MLError(f"unsupported initializer shape {shape}")
