"""Deep learning from scratch (numpy), with simulated scale-out training.

Challenge C1 calls for "distributed scale-out deep learning techniques for
the classification of remote sensing images". This package provides:

* layers (Dense, Conv2D, MaxPool2D, ReLU, Dropout, BatchNorm, Flatten) with
  exact analytic gradients (verified against numeric differentiation in the
  test suite)
* losses, optimizers (SGD+momentum, Adam) and the large-minibatch learning
  rate schedule of Goyal et al. (linear scaling + warmup) the paper cites [8]
* :class:`~repro.ml.distributed.DataParallelTrainer` — bitwise-exact
  data-parallel SGD whose communication time is charged to the alpha-beta
  collective models from :mod:`repro.cluster.comm` (allreduce / parameter
  server / broadcast), powering experiments E4 and E5
* hyperparameter search (grid/random) mirroring the HOPS "parallel
  experiments" service
"""

from repro.ml.network import Sequential
from repro.ml.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    Parameter,
    ReLU,
)
from repro.ml.losses import mse_loss, softmax_cross_entropy
from repro.ml.optimizers import SGD, Adam, WarmupLinearScalingSchedule
from repro.ml.metrics import accuracy, confusion_matrix, f1_scores, mean_iou
from repro.ml.distributed import DataParallelTrainer, TrainingReport
from repro.ml.active import (
    ActiveLearner,
    margin_sampling,
    self_training,
    uncertainty_sampling,
)
from repro.ml.hyperparam import grid_search, random_search

__all__ = [
    "ActiveLearner",
    "Adam",
    "BatchNorm",
    "Conv2D",
    "DataParallelTrainer",
    "Dense",
    "Dropout",
    "Flatten",
    "MaxPool2D",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "TrainingReport",
    "WarmupLinearScalingSchedule",
    "accuracy",
    "confusion_matrix",
    "f1_scores",
    "grid_search",
    "margin_sampling",
    "mean_iou",
    "mse_loss",
    "random_search",
    "self_training",
    "softmax_cross_entropy",
    "uncertainty_sampling",
]
