"""Hyperparameter search: the HOPS "parallel experiments" service.

The paper: "HOPS also provides its own libraries for parallel deep learning
experiments (hyperparameter search and model-architecture search)." Trials
are independent, so on a cluster they run concurrently — simulated wall-clock
is the longest trial (given enough slots), not the sum.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.errors import MLError


@dataclass(frozen=True)
class TrialResult:
    """One evaluated configuration."""

    config: Tuple[Tuple[str, Any], ...]
    score: float
    cost_s: float

    @property
    def config_dict(self) -> Dict[str, Any]:
        return dict(self.config)


@dataclass
class SearchResult:
    """Outcome of a search: all trials plus parallel/serial wall-clock."""

    trials: List[TrialResult]
    parallel_slots: int

    @property
    def best(self) -> TrialResult:
        if not self.trials:
            raise MLError("search produced no trials")
        return max(self.trials, key=lambda t: t.score)

    @property
    def serial_time_s(self) -> float:
        return sum(t.cost_s for t in self.trials)

    @property
    def parallel_time_s(self) -> float:
        """Greedy longest-processing-time makespan on `parallel_slots` slots."""
        if not self.trials:
            return 0.0
        slots = [0.0] * max(1, self.parallel_slots)
        for cost in sorted((t.cost_s for t in self.trials), reverse=True):
            slots[slots.index(min(slots))] += cost
        return max(slots)

    @property
    def speedup(self) -> float:
        parallel = self.parallel_time_s
        if parallel == 0.0:
            return 1.0
        return self.serial_time_s / parallel


Objective = Callable[[Dict[str, Any]], Tuple[float, float]]
"""An objective maps a config to (score, simulated cost in seconds)."""


def grid_search(
    objective: Objective,
    space: Dict[str, Sequence[Any]],
    parallel_slots: int = 4,
) -> SearchResult:
    """Evaluate the full Cartesian product of *space*."""
    if not space:
        raise MLError("empty search space")
    names = sorted(space.keys())
    trials: List[TrialResult] = []
    for values in itertools.product(*(space[name] for name in names)):
        config = dict(zip(names, values))
        score, cost = objective(config)
        trials.append(TrialResult(tuple(sorted(config.items())), score, cost))
    return SearchResult(trials, parallel_slots)


def random_search(
    objective: Objective,
    space: Dict[str, Callable[[random.Random], Any]],
    trials: int = 10,
    parallel_slots: int = 4,
    seed: int = 0,
) -> SearchResult:
    """Sample *trials* configurations; each space entry draws from an RNG."""
    if not space:
        raise MLError("empty search space")
    if trials < 1:
        raise MLError("trials must be >= 1")
    rng = random.Random(seed)
    results: List[TrialResult] = []
    for _ in range(trials):
        config = {name: sampler(rng) for name, sampler in sorted(space.items())}
        score, cost = objective(config)
        results.append(TrialResult(tuple(sorted(config.items())), score, cost))
    return SearchResult(results, parallel_slots)
