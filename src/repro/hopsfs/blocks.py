"""Block storage: datanodes, placement, replication, and integrity.

End-to-end checksums (experiment E20): an optional
:class:`~repro.durability.BlockChecksums` ledger gives every replica a
content fingerprint. With verification on, :meth:`BlockManager.read_block`
checks the replica it picked and transparently fails over to an intact
one — a silent :class:`~repro.faults.BitFlip` or
:class:`~repro.faults.StaleReplica` degrades a read instead of corrupting
it — and the :class:`~repro.durability.Scrubber` sweeps replicas repairing
what still has a healthy copy. Without a ledger (the default) the manager
runs the exact pre-E20 path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import BlockCorruption, StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.durability.checksum import BlockChecksums
    from repro.faults.injector import FaultInjector

DEFAULT_BLOCK_SIZE = 128 * 1024 * 1024  # 128 MB, the HDFS default
DEFAULT_REPLICATION = 3


@dataclass
class DataNode:
    """One storage node."""

    node_id: int
    capacity_bytes: int
    used_bytes: int = 0
    blocks: Dict[int, int] = field(default_factory=dict)  # block_id -> bytes
    alive: bool = True

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def store(self, block_id: int, size: int) -> None:
        if size > self.free_bytes:
            raise StorageError(
                f"datanode {self.node_id} full: need {size}, free {self.free_bytes}"
            )
        self.blocks[block_id] = size
        self.used_bytes += size

    def drop(self, block_id: int) -> None:
        size = self.blocks.pop(block_id, 0)
        self.used_bytes -= size


class BlockManager:
    """Allocates blocks across datanodes with replication.

    Placement is round-robin over the nodes with enough free space, which
    keeps the simulation deterministic and balanced. Replica reads that
    cannot use the caller's preferred node rotate deterministically over
    the survivors (seeded by ``read_rotation_seed``) instead of always
    landing on the lowest-id one.
    """

    def __init__(
        self,
        node_count: int = 4,
        node_capacity_bytes: int = 10 * 1024**4,
        block_size: int = DEFAULT_BLOCK_SIZE,
        replication: int = DEFAULT_REPLICATION,
        checksums: Optional["BlockChecksums"] = None,
        read_rotation_seed: int = 0,
    ):
        if node_count < 1:
            raise StorageError("node_count must be >= 1")
        if replication < 1:
            raise StorageError("replication must be >= 1")
        if replication > node_count:
            raise StorageError(
                f"replication {replication} exceeds node count {node_count}"
            )
        self.block_size = block_size
        self.replication = replication
        self.nodes = [DataNode(i, node_capacity_bytes) for i in range(node_count)]
        self.checksums = checksums
        self._next_block_id = 0
        self._next_node = 0
        # Fallback reads rotate from this seeded counter so post-failure
        # traffic spreads over survivors instead of hammering the first.
        self._read_rotation = read_rotation_seed
        # Blocks the last repair sweep could not place anywhere (reported,
        # not raised: one stuck block must not abort the whole sweep).
        self.unplaceable_blocks: List[int] = []
        # block_id -> (size, [node ids])
        self._blocks: Dict[int, Tuple[int, List[int]]] = {}

    def allocate_file(self, size_bytes: int) -> List[int]:
        """Allocate the blocks for a file of *size_bytes*; returns block ids."""
        if size_bytes <= 0:
            raise StorageError(f"file size must be positive, got {size_bytes}")
        block_ids: List[int] = []
        remaining = size_bytes
        while remaining > 0:
            size = min(remaining, self.block_size)
            block_ids.append(self._allocate_block(size))
            remaining -= size
        return block_ids

    def _allocate_block(self, size: int) -> int:
        block_id = self._next_block_id
        self._next_block_id += 1
        placed = self._place_replicas(block_id, size, self.replication, exclude=set())
        self._blocks[block_id] = (size, placed)
        return block_id

    def _place_replicas(
        self, block_id: int, size: int, count: int, exclude: "set[int]"
    ) -> List[int]:
        """Round-robin placement of *count* replicas on live, fitting nodes."""
        placed: List[int] = []
        attempts = 0
        while len(placed) < count:
            if attempts >= len(self.nodes):
                for node_id in placed:
                    self.nodes[node_id].drop(block_id)
                    if self.checksums is not None:
                        self.checksums.on_drop(block_id, node_id)
                raise StorageError(
                    f"cannot place block of {size} bytes with replication "
                    f"{count}: insufficient live capacity"
                )
            node = self.nodes[self._next_node]
            self._next_node = (self._next_node + 1) % len(self.nodes)
            attempts += 1
            if (
                not node.alive
                or node.node_id in placed
                or node.node_id in exclude
                or node.free_bytes < size
            ):
                continue
            node.store(block_id, size)
            if self.checksums is not None:
                self.checksums.on_place(block_id, size, node.node_id)
            placed.append(node.node_id)
        return placed

    def free_blocks(self, block_ids: List[int]) -> None:
        for block_id in block_ids:
            entry = self._blocks.pop(block_id, None)
            if entry is None:
                continue
            _, node_ids = entry
            for node_id in node_ids:
                self.nodes[node_id].drop(block_id)
            if self.checksums is not None:
                self.checksums.on_free(block_id)

    def block_locations(self, block_id: int) -> List[int]:
        """Datanode ids holding replicas of a block."""
        entry = self._blocks.get(block_id)
        if entry is None:
            raise StorageError(f"unknown block {block_id}")
        return list(entry[1])

    def update_block(self, block_id: int) -> int:
        """Rewrite a block in place: every live replica takes the new
        generation. Returns the new generation (0 with no checksum ledger —
        generations only exist to be fingerprinted).

        This is the write a :class:`~repro.faults.StaleReplica` fault makes
        one replica silently miss *afterwards*.
        """
        entry = self._blocks.get(block_id)
        if entry is None:
            raise StorageError(f"unknown block {block_id}")
        if self.checksums is None:
            return 0
        return self.checksums.on_update(block_id, entry[1])

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    def block_table(self) -> Dict[int, Tuple[int, List[int]]]:
        """Copy of the block map ``{block_id: (size, [owner ids])}``.

        An offline inspection surface for fsck and the scrubber."""
        return {
            block_id: (size, list(owners))
            for block_id, (size, owners) in self._blocks.items()
        }

    def total_stored_bytes(self) -> int:
        """Bytes on disk including replication overhead."""
        return sum(node.used_bytes for node in self.nodes)

    def balance_ratio(self) -> float:
        """max/mean node utilisation (1.0 = perfectly balanced)."""
        used = [node.used_bytes for node in self.nodes if node.alive]
        if not used:
            raise StorageError("no live datanodes")
        mean = sum(used) / len(used)
        if mean == 0:
            return 1.0
        return max(used) / mean

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------

    def read_block(self, block_id: int, preferred: Optional[int] = None) -> int:
        """Pick the datanode that serves a read of *block_id*.

        Reads prefer ``preferred`` when it holds a live (and, with
        verification on, intact) replica; otherwise they rotate
        deterministically over the surviving replicas, so post-failure
        traffic spreads instead of hot-spotting the lowest-id node. With a
        verifying checksum ledger, corrupt replicas are detected and
        skipped; :class:`~repro.errors.BlockCorruption` means nothing
        intact remains, plain :class:`~repro.errors.StorageError` that
        every replica is gone.
        """
        entry = self._blocks.get(block_id)
        if entry is None:
            raise StorageError(f"unknown block {block_id}")
        survivors = [o for o in entry[1] if self.nodes[o].alive]
        if not survivors:
            raise StorageError(f"block {block_id} lost: no live replica")
        verifying = self.checksums is not None and self.checksums.verify
        candidates: List[int] = []
        if preferred is not None and preferred in survivors:
            candidates.append(preferred)
        else:
            # Seeded rotation over survivors: deterministic, but not
            # always survivors[0].
            start = self._read_rotation % len(survivors)
            self._read_rotation += 1
            candidates.extend(survivors[start:] + survivors[:start])
        if not verifying:
            served = candidates[0]
            if (
                self.checksums is not None
                and not self.checksums.replica_intact(block_id, served)
            ):
                # Verification off: the corrupt bytes go to the client,
                # and only the ledger knows.
                self.checksums.note_served(block_id, served)
            return served
        if preferred is not None and preferred in survivors:
            # The preferred replica may be corrupt; line up fallbacks.
            start = self._read_rotation % len(survivors)
            self._read_rotation += 1
            candidates.extend(
                o for o in survivors[start:] + survivors[:start]
                if o != preferred
            )
        for candidate in candidates:
            if self.checksums.replica_intact(block_id, candidate):
                return candidate
            self.checksums.note_detected(block_id, candidate)
        raise BlockCorruption(
            f"block {block_id}: all {len(survivors)} live replicas failed "
            "checksum verification",
            block_id=block_id,
        )

    def inject_failures(self, injector) -> int:
        """Kill the datanodes a :class:`~repro.faults.FaultInjector` names.

        Returns the number of nodes that actually died (already-dead nodes
        are skipped so a plan can be applied idempotently).
        """
        crashed = 0
        for node_id in injector.datanode_crashes():
            if 0 <= node_id < len(self.nodes) and self.nodes[node_id].alive:
                self.fail_node(node_id)
                crashed += 1
        return crashed

    def inject_silent_faults(self, injector: "FaultInjector") -> int:
        """Rot the replicas the plan's BitFlip/StaleReplica entries name.

        Needs a checksum ledger to have anything to perturb — without one
        the simulation has no notion of replica contents and this is a
        no-op returning 0.
        """
        if self.checksums is None:
            return 0
        return self.checksums.apply_silent_faults(injector)

    def heal(self) -> Tuple[int, List[int]]:
        """Detect under-replication and repair what has a surviving copy.

        Returns ``(replicas_created, lost_block_ids)`` — the recovery action
        a namenode takes after datanode failures. Blocks the sweep could not
        place are reported in :attr:`unplaceable_blocks`, not raised.
        """
        return self.re_replicate(), self.lost_blocks()

    def fail_node(self, node_id: int) -> int:
        """Mark a datanode dead; its replicas vanish. Returns the number of
        blocks that became under-replicated."""
        if not 0 <= node_id < len(self.nodes):
            raise StorageError(f"unknown datanode {node_id}")
        node = self.nodes[node_id]
        if not node.alive:
            raise StorageError(f"datanode {node_id} already failed")
        node.alive = False
        affected = 0
        for block_id in list(node.blocks):
            size, owners = self._blocks[block_id]
            owners = [o for o in owners if o != node_id]
            self._blocks[block_id] = (size, owners)
            if self.checksums is not None:
                self.checksums.on_drop(block_id, node_id)
            affected += 1
        node.blocks.clear()
        node.used_bytes = 0
        return affected

    def under_replicated_blocks(self) -> List[int]:
        """Blocks currently below the replication target."""
        return [
            block_id
            for block_id, (_, owners) in self._blocks.items()
            if len(owners) < self.replication
        ]

    def lost_blocks(self) -> List[int]:
        """Blocks with zero live replicas — unrecoverable data loss."""
        return [
            block_id for block_id, (_, owners) in self._blocks.items() if not owners
        ]

    def re_replicate(self) -> int:
        """Restore replication for under-replicated (non-lost) blocks.

        Returns the number of replicas created. Lost blocks (no surviving
        replica) are skipped — there is nothing to copy from. Blocks that
        cannot be placed (insufficient live capacity) are *also* skipped
        and reported in :attr:`unplaceable_blocks`: one stuck block must
        not leave every later block under-replicated.
        """
        created = 0
        self.unplaceable_blocks = []
        for block_id in self.under_replicated_blocks():
            size, owners = self._blocks[block_id]
            if not owners:
                continue
            missing = self.replication - len(owners)
            try:
                new_owners = self._place_replicas(
                    block_id, size, missing, exclude=set(owners)
                )
            except StorageError:
                self.unplaceable_blocks.append(block_id)
                continue
            self._blocks[block_id] = (size, owners + new_owners)
            created += len(new_owners)
        return created
