"""Block storage: datanodes, placement, and replication."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import StorageError

DEFAULT_BLOCK_SIZE = 128 * 1024 * 1024  # 128 MB, the HDFS default
DEFAULT_REPLICATION = 3


@dataclass
class DataNode:
    """One storage node."""

    node_id: int
    capacity_bytes: int
    used_bytes: int = 0
    blocks: Dict[int, int] = field(default_factory=dict)  # block_id -> bytes
    alive: bool = True

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def store(self, block_id: int, size: int) -> None:
        if size > self.free_bytes:
            raise StorageError(
                f"datanode {self.node_id} full: need {size}, free {self.free_bytes}"
            )
        self.blocks[block_id] = size
        self.used_bytes += size

    def drop(self, block_id: int) -> None:
        size = self.blocks.pop(block_id, 0)
        self.used_bytes -= size


class BlockManager:
    """Allocates blocks across datanodes with replication.

    Placement is round-robin over the nodes with enough free space, which
    keeps the simulation deterministic and balanced.
    """

    def __init__(
        self,
        node_count: int = 4,
        node_capacity_bytes: int = 10 * 1024**4,
        block_size: int = DEFAULT_BLOCK_SIZE,
        replication: int = DEFAULT_REPLICATION,
    ):
        if node_count < 1:
            raise StorageError("node_count must be >= 1")
        if replication < 1:
            raise StorageError("replication must be >= 1")
        if replication > node_count:
            raise StorageError(
                f"replication {replication} exceeds node count {node_count}"
            )
        self.block_size = block_size
        self.replication = replication
        self.nodes = [DataNode(i, node_capacity_bytes) for i in range(node_count)]
        self._next_block_id = 0
        self._next_node = 0
        # block_id -> (size, [node ids])
        self._blocks: Dict[int, Tuple[int, List[int]]] = {}

    def allocate_file(self, size_bytes: int) -> List[int]:
        """Allocate the blocks for a file of *size_bytes*; returns block ids."""
        if size_bytes <= 0:
            raise StorageError(f"file size must be positive, got {size_bytes}")
        block_ids: List[int] = []
        remaining = size_bytes
        while remaining > 0:
            size = min(remaining, self.block_size)
            block_ids.append(self._allocate_block(size))
            remaining -= size
        return block_ids

    def _allocate_block(self, size: int) -> int:
        block_id = self._next_block_id
        self._next_block_id += 1
        placed = self._place_replicas(block_id, size, self.replication, exclude=set())
        self._blocks[block_id] = (size, placed)
        return block_id

    def _place_replicas(
        self, block_id: int, size: int, count: int, exclude: "set[int]"
    ) -> List[int]:
        """Round-robin placement of *count* replicas on live, fitting nodes."""
        placed: List[int] = []
        attempts = 0
        while len(placed) < count:
            if attempts >= len(self.nodes):
                for node_id in placed:
                    self.nodes[node_id].drop(block_id)
                raise StorageError(
                    f"cannot place block of {size} bytes with replication "
                    f"{count}: insufficient live capacity"
                )
            node = self.nodes[self._next_node]
            self._next_node = (self._next_node + 1) % len(self.nodes)
            attempts += 1
            if (
                not node.alive
                or node.node_id in placed
                or node.node_id in exclude
                or node.free_bytes < size
            ):
                continue
            node.store(block_id, size)
            placed.append(node.node_id)
        return placed

    def free_blocks(self, block_ids: List[int]) -> None:
        for block_id in block_ids:
            entry = self._blocks.pop(block_id, None)
            if entry is None:
                continue
            _, node_ids = entry
            for node_id in node_ids:
                self.nodes[node_id].drop(block_id)

    def block_locations(self, block_id: int) -> List[int]:
        """Datanode ids holding replicas of a block."""
        entry = self._blocks.get(block_id)
        if entry is None:
            raise StorageError(f"unknown block {block_id}")
        return list(entry[1])

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    def total_stored_bytes(self) -> int:
        """Bytes on disk including replication overhead."""
        return sum(node.used_bytes for node in self.nodes)

    def balance_ratio(self) -> float:
        """max/mean node utilisation (1.0 = perfectly balanced)."""
        used = [node.used_bytes for node in self.nodes if node.alive]
        if not used:
            raise StorageError("no live datanodes")
        mean = sum(used) / len(used)
        if mean == 0:
            return 1.0
        return max(used) / mean

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------

    def read_block(self, block_id: int, preferred: Optional[int] = None) -> int:
        """Pick the datanode that serves a read of *block_id*.

        Reads prefer ``preferred`` when it holds a live replica and otherwise
        fall back to the first surviving replica — a dead datanode degrades a
        read to a remote one instead of failing it. Raises
        :class:`~repro.errors.StorageError` only when every replica is gone.
        """
        entry = self._blocks.get(block_id)
        if entry is None:
            raise StorageError(f"unknown block {block_id}")
        survivors = [o for o in entry[1] if self.nodes[o].alive]
        if not survivors:
            raise StorageError(f"block {block_id} lost: no live replica")
        if preferred is not None and preferred in survivors:
            return preferred
        return survivors[0]

    def inject_failures(self, injector) -> int:
        """Kill the datanodes a :class:`~repro.faults.FaultInjector` names.

        Returns the number of nodes that actually died (already-dead nodes
        are skipped so a plan can be applied idempotently).
        """
        crashed = 0
        for node_id in injector.datanode_crashes():
            if 0 <= node_id < len(self.nodes) and self.nodes[node_id].alive:
                self.fail_node(node_id)
                crashed += 1
        return crashed

    def heal(self) -> Tuple[int, List[int]]:
        """Detect under-replication and repair what has a surviving copy.

        Returns ``(replicas_created, lost_block_ids)`` — the recovery action
        a namenode takes after datanode failures.
        """
        return self.re_replicate(), self.lost_blocks()

    def fail_node(self, node_id: int) -> int:
        """Mark a datanode dead; its replicas vanish. Returns the number of
        blocks that became under-replicated."""
        if not 0 <= node_id < len(self.nodes):
            raise StorageError(f"unknown datanode {node_id}")
        node = self.nodes[node_id]
        if not node.alive:
            raise StorageError(f"datanode {node_id} already failed")
        node.alive = False
        affected = 0
        for block_id in list(node.blocks):
            size, owners = self._blocks[block_id]
            owners = [o for o in owners if o != node_id]
            self._blocks[block_id] = (size, owners)
            affected += 1
        node.blocks.clear()
        node.used_bytes = 0
        return affected

    def under_replicated_blocks(self) -> List[int]:
        """Blocks currently below the replication target."""
        return [
            block_id
            for block_id, (_, owners) in self._blocks.items()
            if len(owners) < self.replication
        ]

    def lost_blocks(self) -> List[int]:
        """Blocks with zero live replicas — unrecoverable data loss."""
        return [
            block_id for block_id, (_, owners) in self._blocks.items() if not owners
        ]

    def re_replicate(self) -> int:
        """Restore replication for under-replicated (non-lost) blocks.

        Returns the number of replicas created. Lost blocks (no surviving
        replica) are skipped — there is nothing to copy from.
        """
        created = 0
        for block_id in self.under_replicated_blocks():
            size, owners = self._blocks[block_id]
            if not owners:
                continue
            missing = self.replication - len(owners)
            new_owners = self._place_replicas(
                block_id, size, missing, exclude=set(owners)
            )
            self._blocks[block_id] = (size, owners + new_owners)
            created += len(new_owners)
        return created
