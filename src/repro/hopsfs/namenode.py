"""The single-leader baseline filesystem ("classic HDFS namenode").

Identical API and semantics to :class:`~repro.hopsfs.filesystem.HopsFS`, but
all metadata transactions serialise through a single resource, so simulated
throughput is flat regardless of offered parallelism. This is the baseline
arm of experiment E1.
"""

from __future__ import annotations

from typing import Optional

from repro.hopsfs.blocks import BlockManager
from repro.hopsfs.filesystem import DEFAULT_SMALL_FILE_THRESHOLD, HopsFS
from repro.hopsfs.kvstore import SingleLeaderStore
from repro.obs import Observability


class SingleLeaderFS(HopsFS):
    """HopsFS semantics on a one-shard, serialised metadata store."""

    def __init__(
        self,
        base_latency_ms: float = 0.05,
        blocks: Optional[BlockManager] = None,
        small_file_threshold: int = DEFAULT_SMALL_FILE_THRESHOLD,
        obs: Optional[Observability] = None,
    ):
        super().__init__(
            store=SingleLeaderStore(base_latency_ms=base_latency_ms, obs=obs),
            blocks=blocks,
            small_file_threshold=small_file_threshold,
            obs=obs,
        )
