"""The HopsFS filesystem API over the sharded metadata store.

Inodes are partitioned by **parent inode id** (the HopsFS design): a
directory listing, a create, and a stat each touch only the shard owning the
parent partition, so the workload spreads across shards and throughput scales
with the shard count. ``rename`` across directories is the multi-shard
transaction that pays the 2PC surcharge.

Small files (below ``small_file_threshold``) are stored *inline in the
metadata store* ("Size Matters" [17]): reading them is one metadata round
trip instead of metadata + datanode I/O. Experiment E1's ablation toggles the
threshold.

Deadline propagation (experiment E18): every filesystem operation accepts an
optional :class:`~repro.resilience.Deadline` and hands it to each metadata
transaction it issues, so one request's path resolution + record ops all
draw from a single budget — a slow or flapping shard fails the request with
:class:`~repro.errors.TimeoutExceeded` instead of silently stretching it.

Directory-hint caching (experiment E19): path resolution runs through a
:class:`~repro.cache.DirHintCache` — a bounded LRU whose invalidation is
*prefix-scoped*: deleting or renaming a directory evicts exactly its
subtree's hints instead of flushing the table, so hot ancestors stay cached
and keep costing zero store round trips (and zero deadline charge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.cache.hopsfs import DirHintCache, NegativeEntry
from repro.errors import StorageError
from repro.hopsfs.blocks import BlockManager
from repro.hopsfs.kvstore import ShardedKVStore
from repro.obs import Observability, resolve

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.durability.fsck import FsckReport
    from repro.durability.wal import DurabilityLayer, RecoveryReport
    from repro.resilience.deadline import Deadline

ROOT_ID = 0

DEFAULT_SMALL_FILE_THRESHOLD = 64 * 1024  # 64 KB, per the Size Matters paper


@dataclass(frozen=True)
class FileStat:
    """Metadata returned by :meth:`HopsFS.stat`."""

    path: str
    inode_id: int
    is_dir: bool
    size_bytes: int
    inline: bool
    block_ids: Tuple[int, ...]


class HopsFS:
    """A simulated distributed filesystem with database-backed metadata."""

    def __init__(
        self,
        store: Optional[ShardedKVStore] = None,
        blocks: Optional[BlockManager] = None,
        small_file_threshold: int = DEFAULT_SMALL_FILE_THRESHOLD,
        obs: Optional[Observability] = None,
        dir_cache: Optional[DirHintCache] = None,
        durability: Optional["DurabilityLayer"] = None,
    ):
        self.obs = resolve(obs)
        if store is None:
            store = ShardedKVStore(obs=obs, durability=durability)
        elif durability is not None:
            raise StorageError(
                "pass durability either to HopsFS or to the store it wraps, "
                "not both"
            )
        self.store = store
        self.blocks = blocks if blocks is not None else BlockManager()
        self.small_file_threshold = small_file_threshold
        self._next_inode = ROOT_ID + 1
        # Inode-hint cache (the HopsFS design): directory-path resolution is
        # cached so hot ancestors (/, /data, ...) don't serialise every
        # operation through the shards that own them. A bounded LRU with
        # prefix-scoped eviction — deleting or renaming a directory evicts
        # exactly its subtree's hints, not the whole table (E19). Pass a
        # ``DirHintCache(negative=True)`` to also remember failed lookups.
        self._dir_cache = (
            dir_cache if dir_cache is not None else DirHintCache(obs=obs)
        )
        # Root directory exists implicitly; register it so scans work.
        self.store.put(ROOT_ID, "__self__", self._dir_record(ROOT_ID))

    @property
    def dir_cache_stats(self) -> Dict[str, int]:
        """Hit/miss/eviction accounting of the directory-hint cache."""
        return self._dir_cache.stats

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------

    @staticmethod
    def _dir_record(inode_id: int) -> Dict:
        return {"inode": inode_id, "is_dir": True, "size": 0}

    @staticmethod
    def _file_record(
        inode_id: int, size: int, inline_data: Optional[bytes], block_ids: List[int]
    ) -> Dict:
        return {
            "inode": inode_id,
            "is_dir": False,
            "size": size,
            "inline": inline_data,
            "blocks": block_ids,
        }

    # ------------------------------------------------------------------
    # Path resolution
    # ------------------------------------------------------------------

    @staticmethod
    def _split(path: str) -> List[str]:
        if not path.startswith("/"):
            raise StorageError("path must be absolute", path=path)
        parts = [p for p in path.split("/") if p]
        return parts

    def _resolve_dir(
        self,
        parts: List[str],
        path: str,
        deadline: Optional["Deadline"] = None,
    ) -> int:
        """Resolve a component list to a directory inode id (hint cached).

        A positive hit costs zero store round trips (and charges nothing to
        *deadline*); with negative caching on, a remembered failure replays
        its error equally for free.
        """
        key = tuple(parts)
        cached = self._dir_cache.get(key)
        if isinstance(cached, NegativeEntry):
            raise StorageError(cached.message, path=path)
        if cached is not None:
            return cached
        current = ROOT_ID
        for part in parts:
            record = self.store.get(current, part, deadline=deadline)
            if record is None:
                self._dir_cache.put_negative(key, "no such directory")
                raise StorageError("no such directory", path=path)
            if not record["is_dir"]:
                self._dir_cache.put_negative(key, "not a directory")
                raise StorageError("not a directory", path=path)
            current = record["inode"]
        self._dir_cache.put(key, current)
        return current

    def _resolve_parent(
        self, path: str, deadline: Optional["Deadline"] = None
    ) -> Tuple[int, str]:
        parts = self._split(path)
        if not parts:
            raise StorageError("path refers to root", path=path)
        parent = self._resolve_dir(parts[:-1], path, deadline)
        return parent, parts[-1]

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def mkdir(self, path: str, deadline: Optional["Deadline"] = None) -> int:
        """Create a directory (parents must exist). Returns the inode id."""
        with self.obs.tracer.span("hopsfs.fs", op="mkdir"):
            parent, name = self._resolve_parent(path, deadline)
            if self.store.get(parent, name, deadline=deadline) is not None:
                raise StorageError("already exists", path=path)
            inode = self._next_inode
            self._next_inode += 1
            self.store.put(parent, name, self._dir_record(inode),
                           deadline=deadline)
            if self._dir_cache.negative:
                # The path (and anything probed beneath it) just came into
                # existence; remembered failures there are now stale.
                self._dir_cache.evict_prefix(tuple(self._split(path)))
            return inode

    def makedirs(self, path: str, deadline: Optional["Deadline"] = None) -> None:
        """Create a directory and any missing ancestors."""
        parts = self._split(path)
        current = "/"
        for part in parts:
            current = current.rstrip("/") + "/" + part
            try:
                self.mkdir(current, deadline=deadline)
            except StorageError as exc:
                if "already exists" not in str(exc):
                    raise

    def create(
        self, path: str, data: bytes, deadline: Optional["Deadline"] = None
    ) -> FileStat:
        """Create a file with contents *data*."""
        with self.obs.tracer.span("hopsfs.fs", op="create"):
            parent, name = self._resolve_parent(path, deadline)
            if self.store.get(parent, name, deadline=deadline) is not None:
                raise StorageError("already exists", path=path)
            inode = self._next_inode
            self._next_inode += 1
            size = len(data)
            if size <= self.small_file_threshold:
                record = self._file_record(inode, size, data, [])
                self.obs.metrics.counter("hopsfs.files", layout="inline").inc()
            else:
                block_ids = self.blocks.allocate_file(size) if size else []
                record = self._file_record(inode, size, None, block_ids)
                # Block contents are not materialised; the simulation tracks
                # placement and sizes only.
                self.obs.metrics.counter("hopsfs.files", layout="blocks").inc()
            self.store.put(parent, name, record, deadline=deadline)
            if self._dir_cache.negative:
                # A "no such directory" hint for this path would now be the
                # wrong failure ("not a directory"); drop it.
                self._dir_cache.evict_prefix(tuple(self._split(path)))
            return self._stat_from_record(path, record)

    def read(
        self, path: str, deadline: Optional["Deadline"] = None
    ) -> Optional[bytes]:
        """Read a file. Inline files return their bytes; block files return
        None (contents are not materialised in the simulation) — use
        :meth:`stat` for their size and block layout."""
        with self.obs.tracer.span("hopsfs.fs", op="read"):
            parent, name = self._resolve_parent(path, deadline)
            record = self.store.get(parent, name, deadline=deadline)
            if record is None:
                raise StorageError("no such file", path=path)
            if record["is_dir"]:
                raise StorageError("is a directory", path=path)
            return record["inline"]

    def stat(
        self, path: str, deadline: Optional["Deadline"] = None
    ) -> FileStat:
        with self.obs.tracer.span("hopsfs.fs", op="stat"):
            parent, name = self._resolve_parent(path, deadline)
            record = self.store.get(parent, name, deadline=deadline)
            if record is None:
                raise StorageError("no such file or directory", path=path)
            return self._stat_from_record(path, record)

    def _stat_from_record(self, path: str, record: Dict) -> FileStat:
        if record["is_dir"]:
            return FileStat(path, record["inode"], True, 0, False, ())
        return FileStat(
            path=path,
            inode_id=record["inode"],
            is_dir=False,
            size_bytes=record["size"],
            inline=record["inline"] is not None,
            block_ids=tuple(record.get("blocks", ())),
        )

    def exists(self, path: str, deadline: Optional["Deadline"] = None) -> bool:
        try:
            self.stat(path, deadline=deadline)
            return True
        except StorageError:
            return False

    def listdir(
        self, path: str, deadline: Optional["Deadline"] = None
    ) -> List[str]:
        """Names in a directory — a single-partition scan."""
        with self.obs.tracer.span("hopsfs.fs", op="listdir"):
            parts = self._split(path)
            inode = self._resolve_dir(parts, path, deadline)
            return sorted(
                name
                for name, _ in self.store.scan(inode, deadline=deadline)
                if name != "__self__"
            )

    def delete(self, path: str, deadline: Optional["Deadline"] = None) -> None:
        with self.obs.tracer.span("hopsfs.fs", op="delete"):
            parent, name = self._resolve_parent(path, deadline)
            record = self.store.get(parent, name, deadline=deadline)
            if record is None:
                raise StorageError("no such file or directory", path=path)
            if record["is_dir"] and any(
                name != "__self__"
                for name, _ in self.store.scan(record["inode"],
                                               deadline=deadline)
            ):
                raise StorageError("directory not empty", path=path)
            if not record["is_dir"] and record.get("blocks"):
                self.blocks.free_blocks(record["blocks"])
            if record["is_dir"]:
                # Scoped invalidation (the E19 bugfix): only hints at or
                # below the deleted directory can be stale — hot ancestors
                # (/, /data, ...) stay cached across a sibling delete.
                self._dir_cache.evict_prefix(tuple(self._split(path)))
            self.store.delete(parent, name, deadline=deadline)

    def rename(
        self, src: str, dst: str, deadline: Optional["Deadline"] = None
    ) -> None:
        """Move a file/directory. Cross-directory renames span shards (2PC)."""
        with self.obs.tracer.span("hopsfs.fs", op="rename"):
            src_parent, src_name = self._resolve_parent(src, deadline)
            dst_parent, dst_name = self._resolve_parent(dst, deadline)
            record = self.store.get(src_parent, src_name, deadline=deadline)
            if record is None:
                raise StorageError("no such file or directory", path=src)
            if self.store.get(dst_parent, dst_name, deadline=deadline) is not None:
                raise StorageError("already exists", path=dst)
            if record["is_dir"]:
                # The moved subtree's hints die with its old name; nothing
                # outside the source prefix can have gone stale.
                self._dir_cache.evict_prefix(tuple(self._split(src)))
            if self._dir_cache.negative:
                # Remembered failures under the destination just became
                # reachable paths.
                self._dir_cache.evict_prefix(tuple(self._split(dst)))
            self.store.transact(
                writes=[(dst_parent, dst_name, record)],
                deletes=[(src_parent, src_name)],
                deadline=deadline,
            )

    # ------------------------------------------------------------------
    # Durability and integrity (experiment E20)
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Power loss on the metadata tier; needs a durability layer."""
        self.store.crash()
        # Volatile caches die with the process.
        self._dir_cache.clear()

    def recover(self) -> "RecoveryReport":
        """Rebuild metadata from snapshot + WAL replay after :meth:`crash`.

        Also re-derives the inode allocator from the recovered records, so
        post-recovery creates cannot collide with surviving inodes.
        """
        report = self.store.recover()
        highest = ROOT_ID
        for shard in range(self.store.shard_count):
            for _, _, record in self.store.shard_items(shard):
                if isinstance(record, dict) and "inode" in record:
                    highest = max(highest, record["inode"])
        self._next_inode = highest + 1
        return report

    def fsck(self) -> "FsckReport":
        """Cross-layer integrity check (metadata ↔ blocks ↔ datanodes)."""
        from repro.durability.fsck import fsck_filesystem

        return fsck_filesystem(self)
