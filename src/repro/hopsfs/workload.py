"""Metadata workload generator for the E1 benchmark.

Generates the op mix used in the HopsFS paper's evaluation (reads dominate:
stat/ls heavy, with create/delete churn) against any filesystem exposing the
:class:`~repro.hopsfs.filesystem.HopsFS` API, and reports simulated
throughput.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

from repro.errors import StorageError
from repro.hopsfs.filesystem import HopsFS

#: Default op mix, loosely after the Spotify workload in the HopsFS paper.
DEFAULT_MIX = {
    "stat": 0.55,
    "listdir": 0.15,
    "create": 0.15,
    "read": 0.10,
    "delete": 0.05,
}


@dataclass
class WorkloadResult:
    """Outcome of one workload run."""

    operations: int
    makespan_ms: float
    ops_per_second: float
    multi_shard_fraction: float


def run_metadata_workload(
    fs: HopsFS,
    operations: int = 10_000,
    directories: int = 64,
    mix: Dict[str, float] = None,
    seed: int = 0,
    payload_bytes: int = 1024,
) -> WorkloadResult:
    """Drive *operations* metadata ops and return simulated throughput."""
    mix = dict(mix or DEFAULT_MIX)
    total = sum(mix.values())
    mix = {op: weight / total for op, weight in mix.items()}
    rng = random.Random(seed)

    for d in range(directories):
        fs.makedirs(f"/data/dir{d:04d}")

    created = []
    # Seed some files so stat/read/delete have targets.
    for i in range(directories):
        path = f"/data/dir{i % directories:04d}/seed{i:06d}"
        fs.create(path, b"x" * payload_bytes)
        created.append(path)

    fs.store.reset_accounting()
    ops = list(mix.keys())
    weights = [mix[op] for op in ops]
    counter = 0
    for _ in range(operations):
        op = rng.choices(ops, weights)[0]
        directory = f"/data/dir{rng.randrange(directories):04d}"
        if op == "create":
            counter += 1
            path = f"{directory}/f{counter:08d}"
            fs.create(path, b"x" * payload_bytes)
            created.append(path)
        elif op == "stat":
            fs.stat(rng.choice(created))
        elif op == "read":
            fs.read(rng.choice(created))
        elif op == "listdir":
            fs.listdir(directory)
        elif op == "delete":
            if len(created) > 1:
                target = created.pop(rng.randrange(len(created)))
                try:
                    fs.delete(target)
                except StorageError:
                    pass
        else:
            raise StorageError(f"unknown op {op!r}")

    return WorkloadResult(
        operations=fs.store.op_count,
        makespan_ms=fs.store.makespan_ms(),
        ops_per_second=fs.store.ops_per_second(),
        multi_shard_fraction=fs.store.multi_shard_fraction,
    )
