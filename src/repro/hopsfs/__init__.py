"""HopsFS-sim: a distributed filesystem simulator with scalable metadata.

The paper builds everything on the HOPS platform, whose headline property is
HopsFS: "Scaling HDFS to more than 1 million operations per second" by moving
namenode metadata into a sharded NewSQL database, plus the "Size Matters"
optimisation that stores small files inline in the metadata layer.

This package reproduces those architectural properties in simulation:

* :class:`~repro.hopsfs.kvstore.ShardedKVStore` — a transactional key-value
  store with per-shard cost accounting; multi-shard transactions pay a
  two-phase-commit surcharge, single-shard transactions scale linearly with
  the shard count.
* :class:`~repro.hopsfs.filesystem.HopsFS` — the filesystem API (mkdir /
  create / read / write / ls / stat / delete / rename) over the sharded
  store, partitioning inodes by parent directory so directory listings stay
  single-shard, with the small-files-inline optimisation.
* :class:`~repro.hopsfs.namenode.SingleLeaderFS` — the "classic HDFS"
  baseline where every metadata operation serialises through one namenode.

Experiment E1 sweeps shard count and op mix over both systems.

Durability (experiment E20): attach a
:class:`~repro.durability.DurabilityLayer` to the sharded store for
write-ahead logging with crash/recovery, and a
:class:`~repro.durability.BlockChecksums` ledger to the block manager for
verified, corruption-detecting replica reads. Both default off.
"""

from repro.hopsfs.kvstore import ShardUnavailable, ShardedKVStore, SingleLeaderStore
from repro.hopsfs.blocks import BlockManager, DataNode
from repro.hopsfs.filesystem import FileStat, HopsFS
from repro.hopsfs.namenode import SingleLeaderFS

__all__ = [
    "BlockManager",
    "DataNode",
    "FileStat",
    "HopsFS",
    "ShardUnavailable",
    "ShardedKVStore",
    "SingleLeaderFS",
    "SingleLeaderStore",
]
