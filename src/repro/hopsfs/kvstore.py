"""Transactional metadata stores with cost accounting.

Both store variants keep real Python dictionaries (operations actually happen)
*and* a simulated-time model: every transaction adds latency to the resources
it touches. Throughput is derived from the accumulated busy time — shards
work in parallel, so the makespan of a workload is the busiest shard's total,
which is exactly how NDB-style metadata scaling behaves.

Cost model (milliseconds, configurable):

* single-shard transaction: ``base_latency``
* multi-shard transaction: ``base_latency + two_phase_surcharge`` on every
  participating shard (prepare + commit rounds)
* the single-leader store pays ``base_latency`` on its one resource for
  everything, which is why it cannot scale.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import StorageError


class ShardedKVStore:
    """A hash-sharded transactional KV store (the NewSQL metadata layer)."""

    def __init__(
        self,
        shard_count: int = 4,
        base_latency_ms: float = 0.05,
        two_phase_surcharge_ms: float = 0.08,
    ):
        if shard_count < 1:
            raise StorageError(f"shard_count must be >= 1, got {shard_count}")
        if base_latency_ms <= 0:
            raise StorageError("base_latency_ms must be positive")
        self.shard_count = shard_count
        self.base_latency_ms = base_latency_ms
        self.two_phase_surcharge_ms = two_phase_surcharge_ms
        self._shards: List[Dict[Any, Any]] = [{} for _ in range(shard_count)]
        self._busy_ms: List[float] = [0.0] * shard_count
        self._op_count = 0
        self._multi_shard_ops = 0

    # ------------------------------------------------------------------
    # Shard routing
    # ------------------------------------------------------------------

    def shard_of(self, partition_key: Any) -> int:
        return hash(partition_key) % self.shard_count

    def _charge(self, shards: Iterable[int]) -> None:
        shards = set(shards)
        self._op_count += 1
        if len(shards) > 1:
            self._multi_shard_ops += 1
            cost = self.base_latency_ms + self.two_phase_surcharge_ms
        else:
            cost = self.base_latency_ms
        for shard in shards:
            self._busy_ms[shard] += cost

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def get(self, partition_key: Any, key: Any) -> Any:
        """Read one key (a single-shard transaction)."""
        shard = self.shard_of(partition_key)
        self._charge([shard])
        return self._shards[shard].get((partition_key, key))

    def put(self, partition_key: Any, key: Any, value: Any) -> None:
        """Write one key (a single-shard transaction)."""
        shard = self.shard_of(partition_key)
        self._charge([shard])
        self._shards[shard][(partition_key, key)] = value

    def delete(self, partition_key: Any, key: Any) -> bool:
        shard = self.shard_of(partition_key)
        self._charge([shard])
        return self._shards[shard].pop((partition_key, key), None) is not None

    def scan(self, partition_key: Any) -> List[Tuple[Any, Any]]:
        """All (key, value) pairs under one partition (single-shard)."""
        shard = self.shard_of(partition_key)
        self._charge([shard])
        return [
            (key, value)
            for (pk, key), value in self._shards[shard].items()
            if pk == partition_key
        ]

    def transact(self, writes: List[Tuple[Any, Any, Any]], deletes: Optional[List[Tuple[Any, Any]]] = None) -> None:
        """Atomically apply writes/deletes that may span shards (2PC cost)."""
        deletes = deletes or []
        shards = {self.shard_of(pk) for pk, _, _ in writes} | {
            self.shard_of(pk) for pk, _ in deletes
        }
        if not shards:
            return
        self._charge(shards)
        for pk, key, value in writes:
            self._shards[self.shard_of(pk)][(pk, key)] = value
        for pk, key in deletes:
            self._shards[self.shard_of(pk)].pop((pk, key), None)

    # ------------------------------------------------------------------
    # Simulated performance accounting
    # ------------------------------------------------------------------

    @property
    def op_count(self) -> int:
        return self._op_count

    @property
    def multi_shard_fraction(self) -> float:
        if self._op_count == 0:
            return 0.0
        return self._multi_shard_ops / self._op_count

    def makespan_ms(self) -> float:
        """Simulated wall-clock time: the busiest shard's accumulated work."""
        return max(self._busy_ms)

    def total_work_ms(self) -> float:
        return sum(self._busy_ms)

    def ops_per_second(self) -> float:
        """Simulated throughput of the workload executed so far."""
        makespan = self.makespan_ms()
        if makespan == 0.0:
            return 0.0
        return self._op_count / (makespan / 1000.0)

    def reset_accounting(self) -> None:
        self._busy_ms = [0.0] * self.shard_count
        self._op_count = 0
        self._multi_shard_ops = 0

    def storage_entries(self) -> int:
        return sum(len(s) for s in self._shards)


class SingleLeaderStore(ShardedKVStore):
    """The HDFS-namenode baseline: one resource serialises every transaction."""

    def __init__(self, base_latency_ms: float = 0.05):
        super().__init__(shard_count=1, base_latency_ms=base_latency_ms,
                         two_phase_surcharge_ms=0.0)
