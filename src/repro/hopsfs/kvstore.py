"""Transactional metadata stores with cost accounting.

Both store variants keep real Python dictionaries (operations actually happen)
*and* a simulated-time model: every transaction adds latency to the resources
it touches. Throughput is derived from the accumulated busy time — shards
work in parallel, so the makespan of a workload is the busiest shard's total,
which is exactly how NDB-style metadata scaling behaves.

Cost model (milliseconds, configurable):

* single-shard transaction: ``base_latency``
* multi-shard transaction: ``base_latency + two_phase_surcharge`` on every
  participating shard (prepare + commit rounds)
* the single-leader store pays ``base_latency`` on its one resource for
  everything, which is why it cannot scale.

Fault injection (experiment E17): a :class:`~repro.faults.FaultInjector`
with shard outages makes operations touching a down shard raise
:class:`ShardUnavailable` — a retryable :class:`~repro.errors.StorageError`.
Passing a :class:`~repro.faults.RetryPolicy` makes the store ride out
transient outages itself; multi-shard transactions abort atomically (the
prepare phase checks every participant before a single write lands).

Observability: with a :class:`~repro.obs.Observability` bundle attached the
store reports per-shard op-latency histograms (``hopsfs.shard_op_ms``),
single-vs-2PC op counters (``hopsfs.ops``), 2PC abort counters
(``hopsfs.2pc_aborts``), and the shared ``retry.*`` series for rode-out
outages. The disabled default is a shared no-op.

Overload resilience (experiment E18): every transaction accepts an optional
:class:`~repro.resilience.Deadline` — the op's simulated cost is charged
against the request budget (the store has no clock, so deadlines here are
charge-driven), and an exhausted budget fails the op with
:class:`~repro.errors.TimeoutExceeded` before any shard is touched. A
:class:`~repro.resilience.CircuitBreakerSet` keyed by shard id fails ops
fast with :class:`~repro.errors.CircuitOpen` while a shard's outage window
keeps tripping its breaker. Both default to disabled (byte-identical path).

Durability (experiment E20): with a
:class:`~repro.durability.DurabilityLayer` attached, every mutation appends
a typed record to the owning shard's write-ahead log *before* touching
volatile state — single-shard puts/deletes directly, multi-shard
transactions as per-participant ``txn-prepare`` records followed by
``txn-commit`` markers. :meth:`crash` then models power loss (the
dictionaries vanish, the logs survive) and :meth:`recover` rebuilds every
shard from its latest checksummed snapshot plus WAL replay, applying a 2PC
transaction iff a commit marker survives anywhere. Defaulted off: without a
layer the store runs the exact pre-E20 path.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import FaultError, StorageError
from repro.faults.retry import RetryPolicy, RetryState
from repro.obs import Observability, resolve

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.durability.snapshot import ShardSnapshot
    from repro.durability.wal import DurabilityLayer, RecoveryReport
    from repro.faults.injector import FaultInjector
    from repro.resilience.breaker import CircuitBreakerSet
    from repro.resilience.deadline import Deadline


class ShardUnavailable(StorageError, FaultError):
    """A metadata shard is down (injected outage).

    Transient outages are retryable; permanent ones are not, so a
    :class:`~repro.faults.RetryPolicy` gives up on them immediately.
    """

    def __init__(self, shard: int, permanent: bool = False):
        kind = "permanently" if permanent else "transiently"
        super().__init__(f"shard {shard} {kind} unavailable")
        self.shard = shard
        self.permanent = permanent
        self.retryable = not permanent


class ShardedKVStore:
    """A hash-sharded transactional KV store (the NewSQL metadata layer)."""

    def __init__(
        self,
        shard_count: int = 4,
        base_latency_ms: float = 0.05,
        two_phase_surcharge_ms: float = 0.08,
        injector: Optional["FaultInjector"] = None,
        retry_policy: Optional[RetryPolicy] = None,
        obs: Optional[Observability] = None,
        breakers: Optional["CircuitBreakerSet"] = None,
        durability: Optional["DurabilityLayer"] = None,
    ):
        if shard_count < 1:
            raise StorageError(f"shard_count must be >= 1, got {shard_count}")
        if base_latency_ms <= 0:
            raise StorageError("base_latency_ms must be positive")
        self.shard_count = shard_count
        self.base_latency_ms = base_latency_ms
        self.two_phase_surcharge_ms = two_phase_surcharge_ms
        self._injector = injector
        self._retry_policy = retry_policy
        self._breakers = breakers
        self._durability = durability
        if durability is not None:
            durability.bind(shard_count)
        self._obs = resolve(obs)
        self._shards: List[Dict[Any, Any]] = [{} for _ in range(shard_count)]
        self._busy_ms: List[float] = [0.0] * shard_count
        self._op_count = 0
        self._multi_shard_ops = 0
        self._attempted_ops = 0
        self.retries = 0
        self.retry_wait_ms = 0.0

    # ------------------------------------------------------------------
    # Shard routing
    # ------------------------------------------------------------------

    def shard_of(self, partition_key: Any) -> int:
        return hash(partition_key) % self.shard_count

    def _charge(
        self, shards: Iterable[int], deadline: Optional["Deadline"] = None
    ) -> None:
        shards = set(shards)
        self._op_count += 1
        multi = len(shards) > 1
        if multi:
            self._multi_shard_ops += 1
            cost = self.base_latency_ms + self.two_phase_surcharge_ms
        else:
            cost = self.base_latency_ms
        metrics = self._obs.metrics
        metrics.counter("hopsfs.ops", kind="2pc" if multi else "single").inc()
        for shard in shards:
            self._busy_ms[shard] += cost
            metrics.histogram("hopsfs.shard_op_ms", shard=shard).observe(cost)
        if deadline is not None:
            # The op's simulated latency comes out of the request budget —
            # the store has no clock, so the deadline is charge-driven here.
            deadline.charge(cost / 1000.0)

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------

    def _prepare(self, shards: Iterable[int]) -> None:
        """2PC prepare: every participating shard must be reachable.

        Runs before any state mutates, so a shard outage aborts the whole
        transaction with no partial writes. The attempted-op counter advances
        on every try, which is what moves transient outage windows along.
        """
        if self._injector is None:
            return
        op_index = self._attempted_ops
        self._attempted_ops += 1
        shards = sorted(set(shards))
        for shard in shards:
            outage = self._injector.shard_outage(shard, op_index)
            if outage is not None:
                self._obs.metrics.counter(
                    "hopsfs.2pc_aborts",
                    shard=shard,
                    permanent=outage.permanent,
                    multi=len(shards) > 1,
                ).inc()
                raise ShardUnavailable(shard, permanent=outage.permanent)

    def _run(
        self, op: Callable[[], Any], deadline: Optional["Deadline"] = None
    ) -> Any:
        """Execute one transaction body under the retry policy, if any."""
        if self._retry_policy is None:
            return op()
        state = RetryState()
        try:
            return self._retry_policy.call(
                op,
                state=state,
                sleep=self._note_wait,
                obs=self._obs if self._obs.enabled else None,
                deadline=deadline,
            )
        finally:
            self.retries += state.retries

    def _note_wait(self, delay_s: float) -> None:
        self.retry_wait_ms += delay_s * 1000.0

    def _execute(
        self,
        shards: Iterable[int],
        body: Callable[[], Any],
        deadline: Optional["Deadline"],
    ) -> Any:
        """One transaction: deadline gate -> breaker gate -> prepare ->
        charge -> body, all under the retry policy.

        With no deadline and no breakers this collapses to exactly the
        prepare/charge/body sequence the pre-E18 store ran.
        """
        participants = sorted(set(shards))

        def op() -> Any:
            if deadline is not None:
                deadline.check("hopsfs.kvstore")
            if self._breakers is not None:
                for shard in participants:
                    self._breakers.for_key(shard).before_call()
            try:
                self._prepare(participants)
            except ShardUnavailable as error:
                if self._breakers is not None:
                    self._breakers.for_key(error.shard).record_failure()
                raise
            self._charge(participants, deadline)
            result = body()
            if self._breakers is not None:
                for shard in participants:
                    self._breakers.for_key(shard).record_success()
            return result

        return self._run(op, deadline)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def get(
        self, partition_key: Any, key: Any,
        deadline: Optional["Deadline"] = None,
    ) -> Any:
        """Read one key (a single-shard transaction)."""
        shard = self.shard_of(partition_key)
        return self._execute(
            (shard,),
            lambda: self._shards[shard].get((partition_key, key)),
            deadline,
        )

    def put(
        self, partition_key: Any, key: Any, value: Any,
        deadline: Optional["Deadline"] = None,
    ) -> None:
        """Write one key (a single-shard transaction)."""
        shard = self.shard_of(partition_key)

        def body() -> None:
            if self._durability is not None:
                # WAL first: the record must be durable before the state
                # changes, or a crash loses an acknowledged write.
                self._durability.log_put(shard, partition_key, key, value)
            self._shards[shard][(partition_key, key)] = value

        self._execute((shard,), body, deadline)

    def delete(
        self, partition_key: Any, key: Any,
        deadline: Optional["Deadline"] = None,
    ) -> bool:
        shard = self.shard_of(partition_key)

        def body() -> bool:
            if self._durability is not None:
                self._durability.log_delete(shard, partition_key, key)
            return self._shards[shard].pop((partition_key, key), None) is not None

        return self._execute((shard,), body, deadline)

    def scan(
        self, partition_key: Any, deadline: Optional["Deadline"] = None
    ) -> List[Tuple[Any, Any]]:
        """All (key, value) pairs under one partition (single-shard)."""
        shard = self.shard_of(partition_key)

        def body() -> List[Tuple[Any, Any]]:
            return [
                (key, value)
                for (pk, key), value in self._shards[shard].items()
                if pk == partition_key
            ]

        return self._execute((shard,), body, deadline)

    def transact(
        self,
        writes: List[Tuple[Any, Any, Any]],
        deletes: Optional[List[Tuple[Any, Any]]] = None,
        deadline: Optional["Deadline"] = None,
    ) -> None:
        """Atomically apply writes/deletes that may span shards (2PC cost).

        An unreachable participant fails the prepare phase and aborts the
        transaction before any shard is written — no partial state survives.
        """
        deletes = deletes or []
        shards = {self.shard_of(pk) for pk, _, _ in writes} | {
            self.shard_of(pk) for pk, _ in deletes
        }
        if not shards:
            return

        def body() -> None:
            if self._durability is not None:
                # Stage per-participant prepare records, then the commit
                # markers — all durable before any dictionary mutates, so a
                # crash anywhere in between recovers all-or-nothing.
                by_shard: Dict[int, Tuple[List, List]] = {}
                for pk, key, value in writes:
                    entry = by_shard.setdefault(self.shard_of(pk), ([], []))
                    entry[0].append((pk, key, value))
                for pk, key in deletes:
                    entry = by_shard.setdefault(self.shard_of(pk), ([], []))
                    entry[1].append((pk, key))
                self._durability.log_transaction(by_shard)
            for pk, key, value in writes:
                self._shards[self.shard_of(pk)][(pk, key)] = value
            for pk, key in deletes:
                self._shards[self.shard_of(pk)].pop((pk, key), None)

        self._execute(shards, body, deadline)

    # ------------------------------------------------------------------
    # Durability: crash, recovery, checkpoints (experiment E20)
    # ------------------------------------------------------------------

    @property
    def durability(self) -> Optional["DurabilityLayer"]:
        return self._durability

    def _require_durability(self) -> "DurabilityLayer":
        if self._durability is None:
            raise StorageError(
                "store has no durability layer: crash/recover/checkpoint "
                "need a DurabilityLayer attached at construction"
            )
        return self._durability

    def crash(self) -> None:
        """Power loss: volatile dictionaries vanish, WAL and snapshots stay.

        Only meaningful with a durability layer — without one a crash is
        unrecoverable data loss, which the store refuses to simulate.
        """
        self._require_durability()
        self._shards = [{} for _ in range(self.shard_count)]

    def recover(self) -> "RecoveryReport":
        """Rebuild every shard from snapshot + WAL replay; returns a report.

        Replay rebuilds state without re-charging per-op latency: recovery
        is a local scan of the log, not a stream of client transactions.
        """
        durability = self._require_durability()
        shards, report = durability.recover()
        self._shards = shards
        return report

    def checkpoint(self, shard: Optional[int] = None,
                   truncate: bool = False) -> List["ShardSnapshot"]:
        """Snapshot one shard (or all) at the current WAL offset."""
        durability = self._require_durability()
        targets = range(self.shard_count) if shard is None else (shard,)
        return [
            durability.checkpoint(s, dict(self._shards[s]), truncate=truncate)
            for s in targets
        ]

    # ------------------------------------------------------------------
    # Simulated performance accounting
    # ------------------------------------------------------------------

    @property
    def op_count(self) -> int:
        return self._op_count

    @property
    def multi_shard_fraction(self) -> float:
        if self._op_count == 0:
            return 0.0
        return self._multi_shard_ops / self._op_count

    def makespan_ms(self) -> float:
        """Simulated wall-clock time: the busiest shard's accumulated work."""
        return max(self._busy_ms)

    def total_work_ms(self) -> float:
        return sum(self._busy_ms)

    def ops_per_second(self) -> float:
        """Simulated throughput of the workload executed so far."""
        makespan = self.makespan_ms()
        if makespan == 0.0:
            return 0.0
        return self._op_count / (makespan / 1000.0)

    def reset_accounting(self) -> None:
        self._busy_ms = [0.0] * self.shard_count
        self._op_count = 0
        self._multi_shard_ops = 0

    def storage_entries(self) -> int:
        return sum(len(s) for s in self._shards)

    def shard_items(self, shard: int) -> List[Tuple[Any, Any, Any]]:
        """(partition_key, key, value) triples on one shard.

        An offline inspection for fsck and recovery oracles — charges no
        simulated latency and bypasses fault injection.
        """
        if not 0 <= shard < self.shard_count:
            raise StorageError(f"unknown shard {shard}")
        return [(pk, key, value)
                for (pk, key), value in self._shards[shard].items()]


class SingleLeaderStore(ShardedKVStore):
    """The HDFS-namenode baseline: one resource serialises every transaction."""

    def __init__(self, base_latency_ms: float = 0.05,
                 obs: Optional[Observability] = None):
        super().__init__(shard_count=1, base_latency_ms=base_latency_ms,
                         two_phase_surcharge_ms=0.0, obs=obs)
