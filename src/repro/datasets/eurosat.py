"""EuroSAT-like synthetic benchmark.

The paper cites EuroSAT [11] as "the largest benchmark dataset" for Sentinel-2
classification: "13 different spectral bands and 10 land cover classes with a
total of 27,000 labeled images". :func:`make_eurosat` generates a dataset
with the same shape at any size — patches are rendered from the same
class-signature + phenology + noise model the scene generator uses, so a
classifier that works here exercises the same decision problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import MLError
from repro.raster.sentinel import LandCover, S2_BANDS, landcover_field, sentinel2_scene

#: The ten EuroSAT classes mapped onto our land-cover model. Classes that
#: EuroSAT distinguishes but our spectral model merges (e.g. two crop kinds
#: standing in for annual/permanent crop) keep distinct phenology parameters.
EUROSAT_CLASSES: Tuple[LandCover, ...] = (
    LandCover.WATER,
    LandCover.URBAN,
    LandCover.FOREST,
    LandCover.WHEAT,
    LandCover.MAIZE,
    LandCover.RAPESEED,
    LandCover.GRASSLAND,
    LandCover.BARE_SOIL,
    LandCover.WATER,  # "River" vs "SeaLake" in EuroSAT; same spectral family
    LandCover.URBAN,  # "Highway" vs "Residential"
)


@dataclass
class Dataset:
    """A labelled image dataset: x is (N, C, H, W) float32, y is (N,) int."""

    x: np.ndarray
    y: np.ndarray
    class_names: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.x.ndim != 4:
            raise MLError(f"dataset x must be 4-D, got {self.x.shape}")
        if self.y.shape != (self.x.shape[0],):
            raise MLError("dataset x/y size mismatch")

    def __len__(self) -> int:
        return self.x.shape[0]

    @property
    def num_classes(self) -> int:
        return len(self.class_names)

    def subset(self, indices: np.ndarray) -> "Dataset":
        return Dataset(self.x[indices], self.y[indices], self.class_names)

    def nbytes(self) -> int:
        return int(self.x.nbytes + self.y.nbytes)


def make_eurosat(
    samples: int = 1000,
    patch_size: int = 8,
    num_classes: int = 8,
    seed: int = 0,
    noise_std: float = 0.02,
    day_jitter: int = 60,
) -> Dataset:
    """Generate an EuroSAT-like dataset.

    Each sample is a ``patch_size**2`` 13-band patch dominated by one class
    (patches contain realistic intra-class texture from the field generator).
    ``day_jitter`` draws each patch's acquisition day around mid-season,
    injecting the phenology variability that makes crops hard.
    """
    if samples < 1:
        raise MLError("samples must be >= 1")
    if not 2 <= num_classes <= len(LandCover):
        raise MLError(f"num_classes must be in 2..{len(LandCover)}")
    rng = np.random.default_rng(seed)
    classes = list(LandCover)[:num_classes]
    x = np.empty((samples, S2_BANDS, patch_size, patch_size), dtype=np.float32)
    y = np.empty(samples, dtype=np.int64)
    for index in range(samples):
        label = int(rng.integers(0, num_classes))
        # A patch dominated by the label class with speckles of others.
        truth = np.full((patch_size, patch_size), int(classes[label]), dtype=np.int16)
        intruder_mask = rng.random((patch_size, patch_size)) < 0.08
        if intruder_mask.any():
            intruder = int(classes[int(rng.integers(0, num_classes))])
            truth[intruder_mask] = intruder
        day = int(np.clip(180 + rng.integers(-day_jitter, day_jitter + 1), 1, 366))
        scene = sentinel2_scene(
            truth, day_of_year=day, seed=int(rng.integers(0, 2**31)),
            noise_std=noise_std,
        )
        x[index] = scene.grid.data
        y[index] = label
    return Dataset(x, y, tuple(c.name for c in classes))
