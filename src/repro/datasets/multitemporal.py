"""Multi-temporal and multimodal dataset construction (Challenge C1).

The paper: "the constellations of Sentinel-1/2/3 satellites have the
important capability to acquire long time series ... where the temporal
dimension plays a very important role for the characterization of the
information content" and "different kinds of sensors (radar, optical ...)
can be used in synergy. Each modality provides specific information that can
be used to cope with the limitations of another."

This module builds the corresponding training inputs:

* :func:`make_multitemporal_dataset` — per-sample stacks of Sentinel-2
  acquisitions across the season (channels = bands x dates), where crops
  that are spectrally identical on one date separate by phenology;
* :func:`make_multimodal_dataset` — stacked S2 optical + S1 SAR channels
  for the same patch; clouds corrupt the optical channels, SAR is immune,
  so fusion stays informative where single-modality fails.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MLError
from repro.datasets.eurosat import Dataset
from repro.raster.sentinel import (
    CROP_CLASSES,
    LandCover,
    S2_BANDS,
    sentinel1_scene,
    sentinel2_scene,
)

#: Default acquisition days: one per month through the growing season.
SEASON_DAYS: Tuple[int, ...] = (105, 135, 165, 195, 225, 255)


def make_multitemporal_dataset(
    samples: int = 600,
    patch_size: int = 8,
    days: Sequence[int] = SEASON_DAYS,
    classes: Sequence[LandCover] = CROP_CLASSES,
    seed: int = 0,
    noise_std: float = 0.02,
    cloud_fraction: float = 0.0,
) -> Dataset:
    """Crop patches as stacks over *days*: (N, 13 x len(days), p, p).

    Each sample is one field patch observed on every acquisition day; the
    channel axis concatenates the acquisitions in day order.
    """
    if samples < 1:
        raise MLError("samples must be >= 1")
    if not days:
        raise MLError("need at least one acquisition day")
    rng = np.random.default_rng(seed)
    channels = S2_BANDS * len(days)
    x = np.empty((samples, channels, patch_size, patch_size), dtype=np.float32)
    y = np.empty(samples, dtype=np.int64)
    class_list = list(classes)
    for index in range(samples):
        label = int(rng.integers(0, len(class_list)))
        truth = np.full(
            (patch_size, patch_size), int(class_list[label]), dtype=np.int16
        )
        base_seed = int(rng.integers(0, 2**31))
        for d, day in enumerate(days):
            scene = sentinel2_scene(
                truth,
                day_of_year=day,
                seed=base_seed + d,
                noise_std=noise_std,
                cloud_fraction=cloud_fraction,
            )
            x[index, d * S2_BANDS : (d + 1) * S2_BANDS] = scene.grid.data
        y[index] = label
    return Dataset(x, y, tuple(c.name for c in class_list))


def single_date_view(dataset: Dataset, date_index: int, dates: int) -> Dataset:
    """Slice one acquisition out of a multi-temporal dataset (the baseline)."""
    channels = dataset.x.shape[1]
    if channels % dates != 0:
        raise MLError(f"{channels} channels do not split into {dates} dates")
    per_date = channels // dates
    if not 0 <= date_index < dates:
        raise MLError(f"date_index {date_index} out of range 0..{dates - 1}")
    start = date_index * per_date
    return Dataset(
        dataset.x[:, start : start + per_date].copy(), dataset.y, dataset.class_names
    )


def make_multimodal_dataset(
    samples: int = 600,
    patch_size: int = 8,
    day_of_year: int = 180,
    classes: Sequence[LandCover] = tuple(LandCover)[:6],
    seed: int = 0,
    cloud_fraction: float = 0.0,
    looks: int = 8,
) -> Dataset:
    """Patches with 13 optical + 2 SAR channels: (N, 15, p, p).

    With ``cloud_fraction > 0``, clouded pixels corrupt *only* the optical
    channels — the radar sees through, which is the paper's synergy
    argument in data form.
    """
    if samples < 1:
        raise MLError("samples must be >= 1")
    rng = np.random.default_rng(seed)
    channels = S2_BANDS + 2
    x = np.empty((samples, channels, patch_size, patch_size), dtype=np.float32)
    y = np.empty(samples, dtype=np.int64)
    class_list = list(classes)
    for index in range(samples):
        label = int(rng.integers(0, len(class_list)))
        truth = np.full(
            (patch_size, patch_size), int(class_list[label]), dtype=np.int16
        )
        optical = sentinel2_scene(
            truth,
            day_of_year=day_of_year,
            seed=int(rng.integers(0, 2**31)),
            cloud_fraction=cloud_fraction,
        )
        sar = sentinel1_scene(
            truth,
            signatures="land",
            looks=looks,
            seed=int(rng.integers(0, 2**31)),
            day_of_year=day_of_year,
        )
        x[index, :S2_BANDS] = optical.grid.data
        # Normalise SAR dB into the optical value range.
        x[index, S2_BANDS:] = (sar.grid.data + 30.0) / 30.0
        y[index] = label
    return Dataset(x, y, tuple(c.name for c in class_list))


def modality_view(dataset: Dataset, modality: str) -> Dataset:
    """Slice a multimodal dataset down to ``"optical"`` or ``"sar"``."""
    if modality == "optical":
        return Dataset(
            dataset.x[:, :S2_BANDS].copy(), dataset.y, dataset.class_names
        )
    if modality == "sar":
        return Dataset(
            dataset.x[:, S2_BANDS:].copy(), dataset.y, dataset.class_names
        )
    raise MLError(f"unknown modality {modality!r}")
