"""Dataset splitting."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import MLError
from repro.datasets.eurosat import Dataset


def stratified_split(
    dataset: Dataset, test_fraction: float = 0.2, seed: int = 0
) -> Tuple[Dataset, Dataset]:
    """Split preserving class proportions. Returns (train, test)."""
    if not 0.0 < test_fraction < 1.0:
        raise MLError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    train_indices = []
    test_indices = []
    for label in np.unique(dataset.y):
        members = np.nonzero(dataset.y == label)[0]
        members = rng.permutation(members)
        cut = max(1, int(round(members.size * test_fraction)))
        if cut >= members.size:
            cut = members.size - 1
        if cut < 1:
            # A single-sample class goes to the training set.
            train_indices.extend(members.tolist())
            continue
        test_indices.extend(members[:cut].tolist())
        train_indices.extend(members[cut:].tolist())
    if not train_indices or not test_indices:
        raise MLError("split produced an empty side (dataset too small?)")
    return (
        dataset.subset(np.asarray(sorted(train_indices))),
        dataset.subset(np.asarray(sorted(test_indices))),
    )
