"""Weak labelling: training data from cartographic products.

The C2 pipeline: take a Sentinel scene, overlay an OSM-like parcel layer,
rasterize each parcel's crop attribute onto the pixel grid, and cut labelled
patches around parcel interiors. Label quality is limited by (a) wrong
attributes in the product and (b) georeferencing misalignment — both are
modelled, and experiment E6 sweeps them against downstream accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import MLError
from repro.datasets.eurosat import Dataset
from repro.datasets.osm import OSMLayer
from repro.geometry import Polygon
from repro.raster.grid import RasterGrid
from repro.raster.sentinel import CROP_CLASSES, LandCover
from repro.raster.stats import rasterize_polygon


@dataclass(frozen=True)
class WeakLabelConfig:
    """Knobs of the weak labelling process."""

    patch_size: int = 8
    #: Metres of systematic georeferencing shift applied to the layer.
    misalignment_m: float = 0.0
    #: Patches per parcel (sampled at random interior positions).
    patches_per_parcel: int = 2
    #: Minimum fraction of patch pixels that must fall inside the parcel.
    min_coverage: float = 0.7

    def __post_init__(self) -> None:
        if self.patch_size < 1:
            raise MLError("patch_size must be >= 1")
        if not 0.0 < self.min_coverage <= 1.0:
            raise MLError("min_coverage must be in (0, 1]")
        if self.patches_per_parcel < 1:
            raise MLError("patches_per_parcel must be >= 1")


_CROP_TO_LABEL = {crop: index for index, crop in enumerate(CROP_CLASSES)}


def crop_label(crop: LandCover) -> int:
    """Class index of a crop in the weak-label dataset."""
    if crop not in _CROP_TO_LABEL:
        raise MLError(f"{crop} is not a crop class")
    return _CROP_TO_LABEL[crop]


def weak_label_dataset(
    grid: RasterGrid,
    layer: OSMLayer,
    config: WeakLabelConfig = WeakLabelConfig(),
    seed: int = 0,
    true_labels: bool = False,
) -> Dataset:
    """Cut labelled patches from *grid* using the parcel layer's attributes.

    With ``true_labels=True`` the parcels' actual crops are used instead of
    the recorded attributes — the "perfect cartography" upper bound.
    """
    rng = np.random.default_rng(seed)
    patches: List[np.ndarray] = []
    labels: List[int] = []
    size = config.patch_size
    shift = config.misalignment_m

    for parcel in layer.parcels:
        geometry = parcel.geometry
        if shift:
            # Systematic product misalignment: translate the parcel before
            # rasterizing, so labels land on the wrong pixels near edges.
            exterior = [(x + shift, y + shift) for x, y in geometry.exterior]
            geometry = Polygon(exterior)
        mask = rasterize_polygon(geometry, grid.transform, (grid.height, grid.width))
        rows, cols = np.nonzero(mask)
        if rows.size == 0:
            continue
        crop = parcel.true_crop if true_labels else parcel.crop
        label = crop_label(crop)
        for _ in range(config.patches_per_parcel):
            pick = int(rng.integers(0, rows.size))
            row = int(np.clip(rows[pick] - size // 2, 0, grid.height - size))
            col = int(np.clip(cols[pick] - size // 2, 0, grid.width - size))
            window = mask[row : row + size, col : col + size]
            if window.mean() < config.min_coverage:
                continue
            patches.append(grid.data[:, row : row + size, col : col + size])
            labels.append(label)

    if not patches:
        raise MLError("weak labelling produced no patches (layer/grid mismatch?)")
    x = np.stack(patches).astype(np.float32)
    y = np.asarray(labels, dtype=np.int64)
    return Dataset(x, y, tuple(c.name for c in CROP_CLASSES))


def label_noise_rate(dataset_labels: np.ndarray, clean_labels: np.ndarray) -> float:
    """Fraction of weak labels that disagree with the clean reference."""
    dataset_labels = np.asarray(dataset_labels)
    clean_labels = np.asarray(clean_labels)
    if dataset_labels.shape != clean_labels.shape:
        raise MLError("label arrays must have the same shape")
    if dataset_labels.size == 0:
        raise MLError("empty label arrays")
    return float((dataset_labels != clean_labels).mean())
