"""OpenStreetMap-like cartographic layer generator.

Challenge C2 proposes "leveraging existing cartographic/thematic products
which are now available at continental or planetary scale (e.g.,
OpenStreetMap)" to build training datasets. This module generates such a
product: a vector layer of agricultural field parcels (polygons with crop
attributes), roads, and water bodies over a scene extent, with a controllable
error rate in the attributes — cartographic products are never perfect, and
the weak labeller has to cope.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import MLError
from repro.geometry import LineString, Polygon
from repro.raster.sentinel import CROP_CLASSES, LandCover


@dataclass(frozen=True)
class FieldParcel:
    """One agricultural parcel with its (possibly wrong) crop attribute."""

    parcel_id: int
    geometry: Polygon
    crop: LandCover  # attribute recorded in the cartographic product
    true_crop: LandCover  # what is actually growing (for evaluation only)

    @property
    def attribute_correct(self) -> bool:
        return self.crop == self.true_crop


@dataclass
class OSMLayer:
    """A cartographic layer over a rectangular extent."""

    extent: Tuple[float, float, float, float]
    parcels: List[FieldParcel] = field(default_factory=list)
    roads: List[LineString] = field(default_factory=list)
    water: List[Polygon] = field(default_factory=list)

    @property
    def parcel_count(self) -> int:
        return len(self.parcels)

    def attribute_error_rate(self) -> float:
        if not self.parcels:
            return 0.0
        wrong = sum(1 for p in self.parcels if not p.attribute_correct)
        return wrong / len(self.parcels)


def make_osm_layer(
    extent: Tuple[float, float, float, float] = (0.0, 0.0, 1000.0, 1000.0),
    parcel_grid: int = 8,
    attribute_error: float = 0.05,
    road_count: int = 3,
    water_count: int = 1,
    seed: int = 0,
) -> OSMLayer:
    """Generate a layer with ``parcel_grid**2`` field parcels.

    Parcels tile the extent with jittered boundaries; each gets a true crop
    and, with probability ``attribute_error``, a wrong recorded attribute —
    the noise the weak labeller inherits.
    """
    min_x, min_y, max_x, max_y = extent
    if min_x >= max_x or min_y >= max_y:
        raise MLError(f"invalid extent {extent}")
    if parcel_grid < 1:
        raise MLError("parcel_grid must be >= 1")
    if not 0.0 <= attribute_error <= 1.0:
        raise MLError("attribute_error must be in [0, 1]")

    rng = random.Random(seed)
    layer = OSMLayer(extent=extent)
    cell_w = (max_x - min_x) / parcel_grid
    cell_h = (max_y - min_y) / parcel_grid
    crops = list(CROP_CLASSES)

    parcel_id = 0
    for i in range(parcel_grid):
        for j in range(parcel_grid):
            # Shrink each cell a little (field margins) and jitter corners.
            x0 = min_x + i * cell_w + cell_w * rng.uniform(0.02, 0.10)
            y0 = min_y + j * cell_h + cell_h * rng.uniform(0.02, 0.10)
            x1 = min_x + (i + 1) * cell_w - cell_w * rng.uniform(0.02, 0.10)
            y1 = min_y + (j + 1) * cell_h - cell_h * rng.uniform(0.02, 0.10)
            true_crop = rng.choice(crops)
            recorded = true_crop
            if rng.random() < attribute_error:
                others = [c for c in crops if c != true_crop]
                recorded = rng.choice(others)
            layer.parcels.append(
                FieldParcel(
                    parcel_id=parcel_id,
                    geometry=Polygon.box(x0, y0, x1, y1),
                    crop=recorded,
                    true_crop=true_crop,
                )
            )
            parcel_id += 1

    for _ in range(road_count):
        # Roads cross the extent roughly straight with a midpoint kink.
        start = (min_x, rng.uniform(min_y, max_y))
        end = (max_x, rng.uniform(min_y, max_y))
        mid = (
            (min_x + max_x) / 2 + rng.uniform(-cell_w, cell_w),
            (start[1] + end[1]) / 2 + rng.uniform(-cell_h, cell_h),
        )
        layer.roads.append(LineString([start, mid, end]))

    for _ in range(water_count):
        cx = rng.uniform(min_x + cell_w, max_x - cell_w)
        cy = rng.uniform(min_y + cell_h, max_y - cell_h)
        radius = rng.uniform(cell_w * 0.3, cell_w * 0.8)
        layer.water.append(Polygon.regular(cx, cy, radius, 12))

    return layer
