"""Training-dataset machinery (Challenge C2).

"In deep learning architectures, the availability of large amounts of high
quality training data is equally important to the learning models. ...
Training datasets consisting of millions of data samples in the Copernicus
context do not exist today." This package provides the ExtremeEarth answer:

* :mod:`repro.datasets.eurosat` — a synthetic stand-in for the EuroSAT
  benchmark the paper cites (13 spectral bands, 10 land-use classes,
  configurable size — the real one has 27,000 labelled images)
* :mod:`repro.datasets.osm` — an OpenStreetMap-like cartographic layer
  generator (field parcels, roads, water bodies with attributes)
* :mod:`repro.datasets.weaklabel` — *dataset enlargement*: deriving labelled
  patches from cartographic layers, with the label-noise model (wrong
  attributes, boundary misalignment) that real weak supervision suffers
* :mod:`repro.datasets.augmentation` and :mod:`repro.datasets.splits`
"""

from repro.datasets.eurosat import Dataset, EUROSAT_CLASSES, make_eurosat
from repro.datasets.osm import FieldParcel, OSMLayer, make_osm_layer
from repro.datasets.weaklabel import WeakLabelConfig, weak_label_dataset
from repro.datasets.augmentation import augment_dataset, flip_horizontal, rotate90
from repro.datasets.multitemporal import (
    SEASON_DAYS,
    make_multimodal_dataset,
    make_multitemporal_dataset,
    modality_view,
    single_date_view,
)
from repro.datasets.splits import stratified_split

__all__ = [
    "Dataset",
    "EUROSAT_CLASSES",
    "FieldParcel",
    "OSMLayer",
    "SEASON_DAYS",
    "WeakLabelConfig",
    "augment_dataset",
    "flip_horizontal",
    "make_eurosat",
    "make_multimodal_dataset",
    "make_multitemporal_dataset",
    "make_osm_layer",
    "modality_view",
    "rotate90",
    "single_date_view",
    "stratified_split",
    "weak_label_dataset",
]
