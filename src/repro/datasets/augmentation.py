"""Data augmentation for (C, H, W) patches."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import MLError
from repro.datasets.eurosat import Dataset


def flip_horizontal(patch: np.ndarray) -> np.ndarray:
    """Mirror along the width axis."""
    return patch[..., ::-1].copy()


def flip_vertical(patch: np.ndarray) -> np.ndarray:
    return patch[..., ::-1, :].copy()


def rotate90(patch: np.ndarray, turns: int = 1) -> np.ndarray:
    """Rotate by 90-degree multiples in the (H, W) plane."""
    return np.rot90(patch, k=turns, axes=(-2, -1)).copy()


def band_jitter(
    patch: np.ndarray, rng: np.random.Generator, scale: float = 0.05
) -> np.ndarray:
    """Multiply each band by a random factor near 1 (illumination change)."""
    if patch.ndim != 3:
        raise MLError(f"band_jitter expects (C, H, W), got {patch.shape}")
    factors = rng.normal(1.0, scale, size=(patch.shape[0], 1, 1))
    return np.clip(patch * factors, 0.0, None)


def band_dropout(
    patch: np.ndarray, rng: np.random.Generator, rate: float = 0.1
) -> np.ndarray:
    """Zero whole bands at random (sensor-band failure robustness)."""
    if patch.ndim != 3:
        raise MLError(f"band_dropout expects (C, H, W), got {patch.shape}")
    if not 0.0 <= rate < 1.0:
        raise MLError("rate must be in [0, 1)")
    keep = rng.random(patch.shape[0]) >= rate
    if not keep.any():
        keep[rng.integers(0, patch.shape[0])] = True
    return patch * keep[:, np.newaxis, np.newaxis]


def augment_dataset(
    dataset: Dataset,
    copies: int = 1,
    seed: int = 0,
    jitter_scale: float = 0.05,
) -> Dataset:
    """Enlarge a dataset with random flips, rotations, and band jitter.

    Returns a new dataset containing the originals plus ``copies`` augmented
    variants of every sample — the paper's "develop very large training
    datasets ... by enlarging existing datasets" in mechanism form.
    """
    if copies < 0:
        raise MLError("copies must be non-negative")
    rng = np.random.default_rng(seed)
    xs = [dataset.x]
    ys = [dataset.y]
    for _ in range(copies):
        batch = np.empty_like(dataset.x)
        for index in range(len(dataset)):
            patch = dataset.x[index]
            if rng.random() < 0.5:
                patch = flip_horizontal(patch)
            if rng.random() < 0.5:
                patch = flip_vertical(patch)
            turns = int(rng.integers(0, 4))
            if turns:
                patch = rotate90(patch, turns)
            patch = band_jitter(patch, rng, scale=jitter_scale)
            batch[index] = patch
        xs.append(batch)
        ys.append(dataset.y)
    return Dataset(
        np.concatenate(xs, axis=0), np.concatenate(ys, axis=0), dataset.class_names
    )
