"""The Earth System Data Cube (experiment E24).

A :class:`Cube` is a chunked, multi-variate, time-indexed array assembled
from :mod:`repro.raster` scenes on a common grid — the CAB-LAB / Open Data
Cube abstraction the paper's "Extreme Earth analytics" vision needs:
continental multi-year archives queried by variable, time window, and
bounding box instead of scene by scene.

Layout
------
Every variable is split into dense ``(chunk_t, chunk_y, chunk_x)`` slabs.
Spatial chunking is fixed by the :class:`CubeSchema`; the time axis grows
**append-only**: incoming time steps buffer in an in-memory tail until a
full time slab accumulates, then the slab is *sealed* — each spatial chunk
serialized through :class:`~repro.datacube.storage.ChunkStore` to HopsFS
(E20 checksums/scrub and E17 replica-fallback reads apply unchanged) next
to a per-chunk :class:`~repro.datacube.chunk.ChunkProvenance` record.
Sealed chunks are immutable; appending more time steps only ever creates
new files, which the chunk store enforces and tests pin via its per-path
write counter.

Queries
-------
:meth:`Cube.sel` is lazy: it returns a :class:`SlicePlan` naming exactly
the chunks a ``(variable, time window, bbox)`` selection touches — chunk
pruning happens against the in-memory index *before any I/O*. The plan
then materializes (:meth:`SlicePlan.read`) or streams chunk-sized blocks
through tiled map/reduce compute (:meth:`SlicePlan.reduce_time`,
:meth:`Cube.ndvi_temporal_mean`, :meth:`Cube.anomaly_counts`,
:meth:`Cube.zonal_series`) so a continental aggregation never materializes
the full dense slab.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import DatacubeError
from repro.geometry import BoundingBox, Polygon
from repro.obs import Observability, resolve
from repro.raster.grid import GeoTransform
from repro.raster.stats import polygon_masks
from repro.datacube.chunk import (
    ChunkKey,
    ChunkProvenance,
    chunk_path,
    decode_chunk,
    encode_chunk,
    provenance_path,
)
from repro.datacube.storage import ChunkStore

BBoxLike = Union[BoundingBox, Tuple[float, float, float, float]]


@dataclass(frozen=True)
class CubeSchema:
    """The fixed geometry of a cube: grid, variables, chunk shape, dtype."""

    transform: GeoTransform
    height: int
    width: int
    variables: Tuple[str, ...]
    chunk_t: int = 8
    chunk_y: int = 64
    chunk_x: int = 64
    dtype: str = "float32"

    def __post_init__(self) -> None:
        if self.height <= 0 or self.width <= 0:
            raise DatacubeError("cube extent must be positive")
        if self.chunk_t < 1 or self.chunk_y < 1 or self.chunk_x < 1:
            raise DatacubeError("chunk shape must be >= 1 in every axis")
        if not self.variables:
            raise DatacubeError("a cube needs at least one variable")
        if len(set(self.variables)) != len(self.variables):
            raise DatacubeError(f"duplicate variables: {self.variables}")
        for variable in self.variables:
            if not variable or "/" in variable:
                raise DatacubeError(f"bad variable name {variable!r}")
        np.dtype(self.dtype)  # raises TypeError on nonsense early

    @property
    def y_chunks(self) -> int:
        return (self.height + self.chunk_y - 1) // self.chunk_y

    @property
    def x_chunks(self) -> int:
        return (self.width + self.chunk_x - 1) // self.chunk_x

    def chunk_window(self, key: ChunkKey) -> Tuple[int, int, int, int]:
        """Pixel window ``(row0, row1, col0, col1)`` of a spatial chunk."""
        row0 = key.y * self.chunk_y
        col0 = key.x * self.chunk_x
        return (
            row0,
            min(row0 + self.chunk_y, self.height),
            col0,
            min(col0 + self.chunk_x, self.width),
        )

    def to_json(self) -> bytes:
        return json.dumps(
            {
                "transform": [
                    self.transform.origin_x,
                    self.transform.origin_y,
                    self.transform.pixel_size,
                ],
                "height": self.height,
                "width": self.width,
                "variables": list(self.variables),
                "chunk_t": self.chunk_t,
                "chunk_y": self.chunk_y,
                "chunk_x": self.chunk_x,
                "dtype": self.dtype,
            },
            sort_keys=True,
        ).encode("utf-8")

    @staticmethod
    def from_json(payload: bytes) -> "CubeSchema":
        try:
            record = json.loads(payload.decode("utf-8"))
            return CubeSchema(
                transform=GeoTransform(*record["transform"]),
                height=int(record["height"]),
                width=int(record["width"]),
                variables=tuple(record["variables"]),
                chunk_t=int(record["chunk_t"]),
                chunk_y=int(record["chunk_y"]),
                chunk_x=int(record["chunk_x"]),
                dtype=record["dtype"],
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise DatacubeError(f"corrupt cube schema: {exc}") from exc


class Cube:
    """A chunked multi-variate time-indexed cube on HopsFS."""

    def __init__(self, store: ChunkStore, root: str, schema: CubeSchema,
                 obs: Optional[Observability] = None):
        self.store = store
        self.root = root.rstrip("/")
        self.schema = schema
        self.obs = resolve(obs)
        #: Time coordinate of every *sealed* step, in append order.
        self._times: List[float] = []
        #: ``(first_step, n_steps)`` per sealed time slab (slab == t-chunk).
        self._slabs: List[Tuple[int, int]] = []
        #: Dense chunk index: (variable, tc, yc, xc) -> HopsFS path.
        self._index: Dict[Tuple[str, int, int, int], str] = {}
        # The open tail: appended but not yet sealed.
        self._tail_times: List[float] = []
        self._tail_sources: List[str] = []
        self._tail: Dict[str, List[np.ndarray]] = {v: [] for v in schema.variables}
        self._lineage: Dict[str, Tuple[str, ...]] = {v: () for v in schema.variables}
        self._seal_seq = 0
        self._finalized = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, store: ChunkStore, root: str,
               schema: CubeSchema, obs: Optional[Observability] = None) -> "Cube":
        """Initialise a new cube at *root* (writes the schema file)."""
        root = root.rstrip("/")
        store.makedirs(root)
        store.makedirs(f"{root}/time")
        for variable in schema.variables:
            store.makedirs(f"{root}/{variable}")
        store.put(f"{root}/schema.json", schema.to_json())
        return cls(store, root, schema, obs=obs)

    @classmethod
    def open(cls, store: ChunkStore, root: str,
             obs: Optional[Observability] = None) -> "Cube":
        """Re-attach to an existing cube: rebuild the index from storage."""
        root = root.rstrip("/")
        schema = CubeSchema.from_json(store.get(f"{root}/schema.json"))
        cube = cls(store, root, schema, obs=obs)
        for name in sorted(store.listdir(f"{root}/time")):
            record = json.loads(store.get(f"{root}/time/{name}").decode("utf-8"))
            first = len(cube._times)
            cube._times.extend(record["times"])
            cube._slabs.append((first, len(record["times"])))
        for tc, (_, n_steps) in enumerate(cube._slabs):
            cube._register_slab(tc)
            if n_steps < schema.chunk_t:
                cube._finalized = True  # a partial tail slab closed the cube
        cube._seal_seq = len(cube._slabs)
        return cube

    def _register_slab(self, tc: int) -> None:
        for variable in self.schema.variables:
            for yc in range(self.schema.y_chunks):
                for xc in range(self.schema.x_chunks):
                    key = ChunkKey(tc, yc, xc)
                    self._index[(variable, tc, yc, xc)] = chunk_path(
                        self.root, variable, key
                    )

    # ------------------------------------------------------------------
    # Append-only ingest
    # ------------------------------------------------------------------

    @property
    def times(self) -> List[float]:
        """The full time axis, sealed steps first, then the open tail."""
        return self._times + self._tail_times

    @property
    def sealed_steps(self) -> int:
        return len(self._times)

    @property
    def sealed_chunks(self) -> int:
        return len(self._index)

    def set_lineage(self, variable: str, lineage: Sequence[str]) -> None:
        """Record the processing steps that produce a variable's values."""
        if variable not in self.schema.variables:
            raise DatacubeError(f"unknown variable {variable!r}")
        self._lineage[variable] = tuple(lineage)

    def append(self, time: float, arrays: Mapping[str, np.ndarray],
               source_id: str = "") -> None:
        """Add one time step (all variables at once).

        Times must be strictly increasing. The step buffers in the tail;
        when :attr:`CubeSchema.chunk_t` steps accumulate the slab seals to
        storage. Sealed chunks are never touched again.
        """
        if self._finalized:
            raise DatacubeError(
                "cube was finalized with a partial time slab; "
                "appends would rewrite sealed chunks"
            )
        missing = set(self.schema.variables) - set(arrays)
        extra = set(arrays) - set(self.schema.variables)
        if missing or extra:
            raise DatacubeError(
                f"append variables mismatch: missing {sorted(missing)}, "
                f"unknown {sorted(extra)}"
            )
        if self.times and time <= self.times[-1]:
            raise DatacubeError(
                f"time axis is append-only: {time} <= last {self.times[-1]}"
            )
        step: Dict[str, np.ndarray] = {}
        for variable, array in arrays.items():
            array = np.asarray(array)
            if array.shape != (self.schema.height, self.schema.width):
                raise DatacubeError(
                    f"variable {variable!r} has shape {array.shape}, cube is "
                    f"{(self.schema.height, self.schema.width)}"
                )
            # Own the bytes: the caller's scene buffer must not alias cube
            # contents (the window-view bug class this layer is built on top
            # of fixing).
            step[variable] = array.astype(self.schema.dtype, copy=True)
        for variable, array in step.items():
            self._tail[variable].append(array)
        self._tail_times.append(float(time))
        self._tail_sources.append(source_id)
        self.obs.metrics.counter("datacube.appends").inc()
        if len(self._tail_times) == self.schema.chunk_t:
            self._seal_tail()

    def flush(self) -> None:
        """Seal a partial tail slab and close the cube to further appends.

        A no-op when the tail is empty (the cube stays appendable): only a
        partial slab — whose chunks a later append would have to rewrite —
        finalizes the cube.
        """
        if self._tail_times:
            self._seal_tail()
            self._finalized = True

    def _seal_tail(self) -> None:
        with self.obs.tracer.span("datacube.seal"):
            tc = len(self._slabs)
            first = len(self._times)
            times = tuple(self._tail_times)
            sources = tuple(s for s in self._tail_sources if s)
            self._seal_seq += 1
            for variable in self.schema.variables:
                slab = np.stack(self._tail[variable])  # (n, H, W)
                for yc in range(self.schema.y_chunks):
                    for xc in range(self.schema.x_chunks):
                        key = ChunkKey(tc, yc, xc)
                        row0, row1, col0, col1 = self.schema.chunk_window(key)
                        block = np.ascontiguousarray(
                            slab[:, row0:row1, col0:col1]
                        )
                        path = chunk_path(self.root, variable, key)
                        if yc == 0 and xc == 0:
                            self.store.makedirs(
                                f"{self.root}/{variable}/t{tc:05d}"
                            )
                        self.store.put(path, encode_chunk(block))
                        provenance = ChunkProvenance(
                            variable=variable,
                            key=key,
                            times=times,
                            source_ids=sources,
                            sealed_seq=self._seal_seq,
                            lineage=self._lineage[variable],
                        )
                        self.store.put(
                            provenance_path(self.root, variable, key),
                            provenance.to_json(),
                        )
                self._tail[variable] = []
            self.store.put(
                f"{self.root}/time/{first:06d}.json",
                json.dumps(
                    {"times": list(times), "sources": list(self._tail_sources)},
                    sort_keys=True,
                ).encode("utf-8"),
            )
            self._times.extend(times)
            self._slabs.append((first, len(times)))
            self._register_slab(tc)
            self._tail_times = []
            self._tail_sources = []
            self.obs.metrics.counter("datacube.seals").inc()

    def provenance(self, variable: str, key: ChunkKey) -> ChunkProvenance:
        """Load a sealed chunk's provenance record."""
        if (variable, key.t, key.y, key.x) not in self._index:
            raise DatacubeError(f"no sealed chunk {key} for {variable!r}")
        return ChunkProvenance.from_json(
            self.store.get(provenance_path(self.root, variable, key))
        )

    # ------------------------------------------------------------------
    # Lazy selection
    # ------------------------------------------------------------------

    def _pixel_window(self, bbox: Optional[BBoxLike]) -> Tuple[int, int, int, int]:
        """Rows/cols whose pixel centers fall inside *bbox* (inclusive)."""
        if bbox is None:
            return 0, self.schema.height, 0, self.schema.width
        if not isinstance(bbox, BoundingBox):
            bbox = BoundingBox(*bbox)
        t = self.schema.transform
        size = t.pixel_size
        # Center of col c is origin_x + (c + 0.5) * size; keep centers with
        # min_x <= center <= max_x (and the same for y, rows counted from
        # the northern edge).
        col0 = int(np.ceil((bbox.min_x - t.origin_x) / size - 0.5))
        col1 = int(np.floor((bbox.max_x - t.origin_x) / size - 0.5)) + 1
        row0 = int(np.ceil((t.origin_y - bbox.max_y) / size - 0.5))
        row1 = int(np.floor((t.origin_y - bbox.min_y) / size - 0.5)) + 1
        col0, col1 = max(col0, 0), min(col1, self.schema.width)
        row0, row1 = max(row0, 0), min(row1, self.schema.height)
        if col0 >= col1 or row0 >= row1:
            return 0, 0, 0, 0
        return row0, row1, col0, col1

    def _step_range(self, t_min: Optional[float], t_max: Optional[float]) -> Tuple[int, int]:
        """Half-open index range of time steps with t_min <= time <= t_max."""
        times = self.times
        i0 = 0
        i1 = len(times)
        if t_min is not None:
            i0 = int(np.searchsorted(times, t_min, side="left"))
        if t_max is not None:
            i1 = int(np.searchsorted(times, t_max, side="right"))
        return i0, max(i0, i1)

    def sel(self, variable: str, t_min: Optional[float] = None,
            t_max: Optional[float] = None,
            bbox: Optional[BBoxLike] = None) -> "SlicePlan":
        """Plan a selection — pruning happens here, before any I/O."""
        if variable not in self.schema.variables:
            raise DatacubeError(f"unknown variable {variable!r}")
        i0, i1 = self._step_range(t_min, t_max)
        row0, row1, col0, col1 = self._pixel_window(bbox)
        keys: List[ChunkKey] = []
        if i1 > i0 and row1 > row0 and col1 > col0:
            yc0, yc1 = row0 // self.schema.chunk_y, (row1 - 1) // self.schema.chunk_y
            xc0, xc1 = col0 // self.schema.chunk_x, (col1 - 1) // self.schema.chunk_x
            for tc, (first, n_steps) in enumerate(self._slabs):
                if first + n_steps <= i0 or first >= i1:
                    continue
                for yc in range(yc0, yc1 + 1):
                    for xc in range(xc0, xc1 + 1):
                        keys.append(ChunkKey(tc, yc, xc))
        chunks_total = len(self._slabs) * self.schema.y_chunks * self.schema.x_chunks
        plan = SlicePlan(
            cube=self,
            variable=variable,
            step_range=(i0, i1),
            window=(row0, row1, col0, col1),
            chunk_keys=tuple(keys),
            chunks_total=chunks_total,
        )
        self.obs.metrics.counter("datacube.sel_plans").inc()
        self.obs.metrics.counter("datacube.chunks_planned").inc(len(keys))
        self.obs.metrics.counter("datacube.chunks_pruned").inc(plan.chunks_pruned)
        return plan

    # ------------------------------------------------------------------
    # Cross-variable / zonal tiled compute
    # ------------------------------------------------------------------

    def temporal_mean(self, variable: str, t_min: Optional[float] = None,
                      t_max: Optional[float] = None,
                      bbox: Optional[BBoxLike] = None) -> np.ndarray:
        """Per-pixel mean over the selected time steps (tiled)."""
        return self.sel(variable, t_min, t_max, bbox).reduce_time("mean")

    def ndvi_temporal_mean(self, red: str, nir: str,
                           t_min: Optional[float] = None,
                           t_max: Optional[float] = None,
                           bbox: Optional[BBoxLike] = None) -> np.ndarray:
        """Per-pixel temporal mean of (nir-red)/(nir+red), chunk by chunk.

        The classic cross-variable cube workload: two variables stream
        through aligned chunks; at no point does more than one chunk pair
        live in memory.
        """
        red_plan = self.sel(red, t_min, t_max, bbox)
        nir_plan = self.sel(nir, t_min, t_max, bbox)
        row0, row1, col0, col1 = red_plan.window
        steps = red_plan.step_range[1] - red_plan.step_range[0]
        if steps == 0 or row1 <= row0 or col1 <= col0:
            raise DatacubeError("empty selection")
        total = np.zeros((row1 - row0, col1 - col0), dtype=np.float64)
        for (rows, cols, red_block), (_, _, nir_block) in zip(
            red_plan.iter_blocks(), nir_plan.iter_blocks()
        ):
            denominator = nir_block + red_block
            ndvi = np.where(
                denominator == 0.0, 0.0, (nir_block - red_block) / np.where(
                    denominator == 0.0, 1.0, denominator
                )
            )
            total[rows[0] - row0 : rows[1] - row0,
                  cols[0] - col0 : cols[1] - col0] += ndvi.sum(axis=0)
        return (total / steps).astype(np.float64)

    def anomaly_counts(self, variable: str, k: float = 2.0,
                       t_min: Optional[float] = None,
                       t_max: Optional[float] = None,
                       bbox: Optional[BBoxLike] = None) -> np.ndarray:
        """Per-step count of pixels deviating more than ``k`` temporal stds.

        Two tiled passes: moments first (sum/sum-of-squares per pixel), then
        exceedance counting per time step — the streaming form of the
        "detect when a pixel leaves its climatology" cube workload.
        """
        if k <= 0:
            raise DatacubeError(f"k must be positive, got {k}")
        plan = self.sel(variable, t_min, t_max, bbox)
        row0, row1, col0, col1 = plan.window
        steps = plan.step_range[1] - plan.step_range[0]
        if steps == 0 or row1 <= row0 or col1 <= col0:
            raise DatacubeError("empty selection")
        shape = (row1 - row0, col1 - col0)
        total = np.zeros(shape, dtype=np.float64)
        squares = np.zeros(shape, dtype=np.float64)
        for rows, cols, block in plan.iter_blocks():
            window = (
                slice(rows[0] - row0, rows[1] - row0),
                slice(cols[0] - col0, cols[1] - col0),
            )
            total[window] += block.sum(axis=0)
            squares[window] += np.square(block, dtype=np.float64).sum(axis=0)
        mean = total / steps
        variance = np.maximum(squares / steps - np.square(mean), 0.0)
        std = np.sqrt(variance)
        counts = np.zeros(steps, dtype=np.int64)
        i0 = plan.step_range[0]
        for rows, cols, block in plan.iter_blocks():
            window = (
                slice(rows[0] - row0, rows[1] - row0),
                slice(cols[0] - col0, cols[1] - col0),
            )
            exceed = np.abs(block - mean[window]) > k * std[window]
            t0 = block.t_offset - i0  # type: ignore[attr-defined]
            counts[t0 : t0 + block.shape[0]] += exceed.sum(axis=(1, 2))
        return counts

    def zonal_series(self, variable: str, polygons: Sequence[Polygon],
                     t_min: Optional[float] = None,
                     t_max: Optional[float] = None) -> np.ndarray:
        """Per-polygon per-time-step mean: ``(len(polygons), n_steps)``.

        The per-field temporal aggregation workload. Each polygon is
        rasterized **once** on the cube grid (the hoisted-mask path of the
        E24 satellite fix), then every time step reuses the masks.
        """
        plan = self.sel(variable, t_min, t_max, bbox=None)
        steps = plan.step_range[1] - plan.step_range[0]
        if steps == 0:
            raise DatacubeError("empty selection")
        masks = polygon_masks(
            polygons, self.schema.transform,
            (self.schema.height, self.schema.width),
        )
        sums = np.zeros((len(polygons), steps), dtype=np.float64)
        counts = np.array([int(mask.sum()) for mask in masks], dtype=np.int64)
        i0 = plan.step_range[0]
        for rows, cols, block in plan.iter_blocks():
            t0 = block.t_offset - i0  # type: ignore[attr-defined]
            for index, mask in enumerate(masks):
                sub = mask[rows[0] : rows[1], cols[0] : cols[1]]
                if not sub.any():
                    continue
                sums[index, t0 : t0 + block.shape[0]] += block[:, sub].sum(axis=1)
        empty = counts == 0
        series = sums / np.where(empty, 1, counts)[:, np.newaxis]
        series[empty] = np.nan
        return series


class SlicePlan:
    """The lazy result of :meth:`Cube.sel`: which chunks, before any I/O."""

    def __init__(self, cube: Cube, variable: str,
                 step_range: Tuple[int, int],
                 window: Tuple[int, int, int, int],
                 chunk_keys: Tuple[ChunkKey, ...],
                 chunks_total: int):
        self.cube = cube
        self.variable = variable
        self.step_range = step_range
        self.window = window
        self.chunk_keys = chunk_keys
        self.chunks_total = chunks_total

    @property
    def chunks_touched(self) -> int:
        return len(self.chunk_keys)

    @property
    def chunks_pruned(self) -> int:
        return self.chunks_total - self.chunks_touched

    @property
    def shape(self) -> Tuple[int, int, int]:
        row0, row1, col0, col1 = self.window
        return (self.step_range[1] - self.step_range[0],
                max(row1 - row0, 0), max(col1 - col0, 0))

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------

    def _load_chunk(self, key: ChunkKey) -> np.ndarray:
        path = self.cube._index[(self.variable, key.t, key.y, key.x)]
        array = decode_chunk(self.cube.store.get(path))
        self.cube.obs.metrics.counter("datacube.chunks_read").inc()
        return array

    def iter_blocks(self) -> Iterator[Tuple[Tuple[int, int], Tuple[int, int], np.ndarray]]:
        """Stream ``((row0, row1), (col0, col1), block)`` pieces of the
        selection, one chunk-sized block at a time.

        Blocks are clipped to the selection's time and pixel window; the
        block array carries its absolute time offset in ``block.t_offset``.
        Tail (unsealed) steps stream last, sliced from the in-memory buffer.
        """
        i0, i1 = self.step_range
        row0, row1, col0, col1 = self.window
        if i1 <= i0 or row1 <= row0 or col1 <= col0:
            return
        with self.cube.obs.tracer.span("datacube.scan", var=self.variable):
            for key in self.chunk_keys:
                first, n_steps = self.cube._slabs[key.t]
                t_lo = max(i0, first)
                t_hi = min(i1, first + n_steps)
                crow0, crow1, ccol0, ccol1 = self.cube.schema.chunk_window(key)
                brow0, brow1 = max(row0, crow0), min(row1, crow1)
                bcol0, bcol1 = max(col0, ccol0), min(col1, ccol1)
                array = self._load_chunk(key)
                block = array[
                    t_lo - first : t_hi - first,
                    brow0 - crow0 : brow1 - crow0,
                    bcol0 - ccol0 : bcol1 - ccol0,
                ]
                block = _TBlock(block, t_offset=t_lo)
                yield (brow0, brow1), (bcol0, bcol1), block
            # Tail steps live only in memory; stream them as one block per
            # spatial chunk footprint so downstream tiling stays uniform.
            sealed = self.cube.sealed_steps
            tail_lo = max(i0, sealed)
            if tail_lo < i1 and self.cube._tail_times:
                stack = np.stack(
                    self.cube._tail[self.variable][tail_lo - sealed : i1 - sealed]
                )
                block = _TBlock(stack[:, row0:row1, col0:col1], t_offset=tail_lo)
                yield (row0, row1), (col0, col1), block

    def read(self) -> np.ndarray:
        """Materialize the selection as a dense ``(t, y, x)`` array."""
        i0, i1 = self.step_range
        row0, row1, col0, col1 = self.window
        out = np.zeros(self.shape, dtype=self.cube.schema.dtype)
        for rows, cols, block in self.iter_blocks():
            t0 = block.t_offset - i0  # type: ignore[attr-defined]
            out[
                t0 : t0 + block.shape[0],
                rows[0] - row0 : rows[1] - row0,
                cols[0] - col0 : cols[1] - col0,
            ] = block
        return out

    def times(self) -> List[float]:
        """Time coordinates covered by the plan."""
        return self.cube.times[self.step_range[0] : self.step_range[1]]

    def reduce_time(self, op: str = "mean") -> np.ndarray:
        """Collapse the time axis with a streaming reduction (tiled).

        ``op`` is ``mean``, ``sum``, ``min``, or ``max``. Accumulators are
        per-pixel 2-D arrays; chunks stream through one at a time.
        """
        if op not in ("mean", "sum", "min", "max"):
            raise DatacubeError(f"unknown reduction {op!r}")
        i0, i1 = self.step_range
        row0, row1, col0, col1 = self.window
        steps = i1 - i0
        if steps == 0 or row1 <= row0 or col1 <= col0:
            raise DatacubeError("empty selection")
        shape = (row1 - row0, col1 - col0)
        if op in ("mean", "sum"):
            accumulator = np.zeros(shape, dtype=np.float64)
        elif op == "min":
            accumulator = np.full(shape, np.inf, dtype=np.float64)
        else:
            accumulator = np.full(shape, -np.inf, dtype=np.float64)
        for rows, cols, block in self.iter_blocks():
            window = (
                slice(rows[0] - row0, rows[1] - row0),
                slice(cols[0] - col0, cols[1] - col0),
            )
            if op in ("mean", "sum"):
                accumulator[window] += block.sum(axis=0, dtype=np.float64)
            elif op == "min":
                np.minimum(accumulator[window], block.min(axis=0),
                           out=accumulator[window])
            else:
                np.maximum(accumulator[window], block.max(axis=0),
                           out=accumulator[window])
        if op == "mean":
            accumulator /= steps
        return accumulator


class _TBlock(np.ndarray):
    """A block array annotated with its absolute time offset."""

    def __new__(cls, array: np.ndarray, t_offset: int):
        view = np.asarray(array).view(cls)
        view.t_offset = t_offset
        return view

    def __array_finalize__(self, source):  # pragma: no cover - numpy hook
        if source is not None:
            self.t_offset = getattr(source, "t_offset", 0)
