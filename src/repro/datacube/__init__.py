"""Earth System Data Cube (experiment E24).

Chunked, multi-variate, time-indexed cubes assembled from
:mod:`repro.raster` scenes on a common grid, stored through
:mod:`repro.hopsfs` (E20 checksums/scrub and E17 replica-fallback apply to
every chunk read), with an xarray-like lazy slicing API — chunk pruning
before any I/O — and tiled map/reduce compute for temporal means, NDVI,
anomaly detection, and per-field zonal series.

Typical use::

    from repro.datacube import ChunkStore, Cube, CubeIngestor, CubeSchema

    store = ChunkStore()                       # HopsFS-backed
    cube = Cube.create(store, "/cubes/demo", CubeSchema(...))
    CubeIngestor(cube).ingest_series(scenes)
    plan = cube.sel("nir", t_min=100, t_max=200, bbox=(0, 0, 640, 640))
    mean = plan.reduce_time("mean")            # tiled, prunes chunks first
"""

from repro.datacube.chunk import (
    ChunkKey,
    ChunkProvenance,
    chunk_path,
    decode_chunk,
    encode_chunk,
    provenance_path,
)
from repro.datacube.cube import Cube, CubeSchema, SlicePlan
from repro.datacube.ingest import (
    CubeIngestor,
    S2_DEFAULT_VARIABLES,
    extract_variables,
    scene_window,
)
from repro.datacube.storage import ChunkStore

__all__ = [
    "ChunkKey",
    "ChunkProvenance",
    "ChunkStore",
    "Cube",
    "CubeIngestor",
    "CubeSchema",
    "S2_DEFAULT_VARIABLES",
    "SlicePlan",
    "chunk_path",
    "decode_chunk",
    "encode_chunk",
    "extract_variables",
    "provenance_path",
    "scene_window",
]
