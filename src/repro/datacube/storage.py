"""Chunk persistence through HopsFS.

Chunks are ordinary HopsFS files, so everything the storage stack already
guarantees applies unchanged: small chunks are inlined in the metadata
store (WAL-durable with an E20 :class:`~repro.durability.DurabilityLayer`),
large chunks get replicated blocks whose reads go through
:meth:`~repro.hopsfs.blocks.BlockManager.read_block` — E17 replica
fallback after datanode failures and E20 checksum verification/scrub both
fire on cube reads without the cube knowing.

HopsFS's block files don't materialise contents (the simulation tracks
placement and sizes only), so the store keeps the payload of block-layout
files in a side table keyed by inode — the stand-in for datanode disk.
Reads still route every block through the block manager first, so a lost
or corrupt block fails the chunk read exactly like the real system.

``create`` refuses existing paths, which is the storage-level enforcement
of the cube's append-only contract: a second write of the same chunk path
is a :class:`~repro.errors.DatacubeError`, not a silent overwrite. The
per-path write counter exists so tests can pin that invariant.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import DatacubeError, StorageError
from repro.hopsfs.filesystem import HopsFS
from repro.obs import Observability, resolve


class ChunkStore:
    """Byte-addressed chunk I/O on a :class:`~repro.hopsfs.HopsFS`."""

    def __init__(self, fs: Optional[HopsFS] = None, obs: Optional[Observability] = None):
        self.fs = fs if fs is not None else HopsFS(obs=obs)
        self.obs = resolve(obs)
        #: path -> times written through this store (the append-only pin:
        #: every value must stay exactly 1).
        self.writes: Dict[str, int] = {}
        # Simulated datanode contents for block-layout files (inode -> bytes);
        # inline files live in the metadata store itself.
        self._block_payloads: Dict[int, bytes] = {}

    def makedirs(self, path: str) -> None:
        self.fs.makedirs(path)

    def put(self, path: str, payload: bytes) -> None:
        """Write a new immutable object; rewriting a path is an error."""
        try:
            stat = self.fs.create(path, payload)
        except StorageError as exc:
            if "already exists" in str(exc):
                raise DatacubeError(
                    f"chunk store is append-only: {path} already sealed"
                ) from exc
            raise
        if not stat.inline:
            self._block_payloads[stat.inode_id] = payload
        self.writes[path] = self.writes.get(path, 0) + 1
        self.obs.metrics.counter("datacube.store_puts").inc()
        self.obs.metrics.counter("datacube.bytes_written").inc(len(payload))

    def get(self, path: str) -> bytes:
        """Read an object back; block-layout reads verify every block."""
        stat = self.fs.stat(path)
        if stat.inline:
            payload = self.fs.read(path)
        else:
            # Route each block through the manager: replica fallback (E17)
            # and checksum verification (E20) apply per block; a corrupt or
            # lost block raises before any payload is served.
            for block_id in stat.block_ids:
                self.fs.blocks.read_block(block_id)
            payload = self._block_payloads.get(stat.inode_id)
        if payload is None:
            raise DatacubeError(f"chunk payload missing for {path}")
        self.obs.metrics.counter("datacube.store_gets").inc()
        self.obs.metrics.counter("datacube.bytes_read").inc(len(payload))
        return payload

    def exists(self, path: str) -> bool:
        return self.fs.exists(path)

    def listdir(self, path: str):
        return self.fs.listdir(path)
