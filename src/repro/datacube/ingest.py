"""Feeding the cube from Sentinel scenes through the catalogue ingest path.

The E13 ingest pipeline registers :class:`~repro.raster.products.Product`
metadata in the semantic catalogue (:func:`repro.catalog.ingest.
ingest_products`); the cube rides the same path: every appended time step
both extends the cube's append-only time axis and (when a
:class:`~repro.geosparql.store.GeoStore` is attached) lands the product
record in the catalogue, so a GeoSPARQL query over the catalogue and a
``cube.sel`` over the same window name the same acquisitions.

Variable extraction crops the scene to the cube grid with
``RasterGrid.window(..., copy=True)`` — the storage-bound path must own
its bytes (the window-aliasing fix this PR ships): a later mutation of the
scene buffer must never reach into sealed cube chunks.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import DatacubeError
from repro.obs import Observability, resolve
from repro.raster.grid import RasterGrid
from repro.raster.products import Product
from repro.raster.sentinel import SentinelScene
from repro.datacube.cube import Cube

#: A variable spec: a band index into the scene grid, or a callable
#: computing a 2-D array from the (cropped) grid.
VariableSpec = Union[int, Callable[[RasterGrid], np.ndarray]]

#: Default Sentinel-2 extraction: red is band 4 (index 3), NIR band 8
#: (index 7) — the NDVI pair every vegetation workload starts from.
S2_DEFAULT_VARIABLES: Dict[str, VariableSpec] = {"red": 3, "nir": 7}


def scene_window(scene: SentinelScene, cube: Cube) -> RasterGrid:
    """Crop a scene to the cube's grid (an owning copy, never a view)."""
    schema = cube.schema
    grid = scene.grid
    if grid.transform.pixel_size != schema.transform.pixel_size:
        raise DatacubeError(
            f"scene resolution {grid.transform.pixel_size} != cube "
            f"{schema.transform.pixel_size}"
        )
    size = schema.transform.pixel_size
    col = round((schema.transform.origin_x - grid.transform.origin_x) / size)
    row = round((grid.transform.origin_y - schema.transform.origin_y) / size)
    if (
        row < 0 or col < 0
        or row + schema.height > grid.height
        or col + schema.width > grid.width
    ):
        raise DatacubeError(
            f"scene does not cover the cube grid (offset {row},{col}, "
            f"need {schema.height}x{schema.width} of {grid.height}x{grid.width})"
        )
    return grid.window(row, col, schema.height, schema.width, copy=True)


def extract_variables(
    grid: RasterGrid, variables: Mapping[str, VariableSpec]
) -> Dict[str, np.ndarray]:
    """Evaluate each variable spec against the cropped scene grid."""
    arrays: Dict[str, np.ndarray] = {}
    for name, spec in variables.items():
        if callable(spec):
            array = np.asarray(spec(grid))
        else:
            array = grid.band(int(spec))
        if array.shape != (grid.height, grid.width):
            raise DatacubeError(
                f"variable {name!r} produced shape {array.shape}, "
                f"expected {(grid.height, grid.width)}"
            )
        arrays[name] = array
    return arrays


class CubeIngestor:
    """Incremental scene-to-cube ingest, catalogue-registered.

    ``variables`` maps every cube variable to a band index or callable;
    the default covers the S2 red/NIR pair. With a ``store`` attached each
    ingested product's metadata lands in the semantic catalogue through
    the standard :func:`~repro.catalog.ingest.ingest_products` path.
    """

    def __init__(
        self,
        cube: Cube,
        variables: Optional[Mapping[str, VariableSpec]] = None,
        store=None,
        obs: Optional[Observability] = None,
    ):
        self.cube = cube
        self.variables = dict(
            variables if variables is not None else S2_DEFAULT_VARIABLES
        )
        missing = set(cube.schema.variables) - set(self.variables)
        if missing:
            raise DatacubeError(
                f"no extraction spec for cube variables {sorted(missing)}"
            )
        self.store = store
        self.obs = resolve(obs)
        self.products_registered = 0
        for name, spec in self.variables.items():
            if name in cube.schema.variables:
                cube.set_lineage(
                    name,
                    ("scene_window",
                     f"band:{spec}" if not callable(spec)
                     else f"derive:{getattr(spec, '__name__', 'callable')}"),
                )

    def ingest_scene(
        self,
        scene: SentinelScene,
        time: Optional[float] = None,
        product: Optional[Product] = None,
    ) -> None:
        """Append one scene as the next time step.

        ``time`` defaults to the scene's day of year; ``product`` (when
        given) contributes the source id recorded in chunk provenance and
        is registered in the attached catalogue store.
        """
        with self.obs.tracer.span("datacube.ingest"):
            window = scene_window(scene, self.cube)
            arrays = extract_variables(window, self.variables)
            source_id = product.product_id if product is not None else (
                f"{scene.mission}_doy{scene.day_of_year:03d}"
            )
            self.cube.append(
                float(time if time is not None else scene.day_of_year),
                {name: arrays[name] for name in self.cube.schema.variables},
                source_id=source_id,
            )
            if self.store is not None and product is not None:
                from repro.catalog.ingest import ingest_products

                ingest_products(self.store, [product])
                self.products_registered += 1
            self.obs.metrics.counter("datacube.scenes_ingested").inc()

    def ingest_series(
        self,
        scenes: Sequence[SentinelScene],
        products: Optional[Sequence[Product]] = None,
    ) -> int:
        """Append a scene series in order; returns the number ingested."""
        if products is not None and len(products) != len(scenes):
            raise DatacubeError(
                f"got {len(products)} products for {len(scenes)} scenes"
            )
        for index, scene in enumerate(scenes):
            self.ingest_scene(
                scene,
                product=products[index] if products is not None else None,
            )
        return len(scenes)
