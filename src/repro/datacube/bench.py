"""E24 bench: chunk pruning and tiled compute on the data cube.

Builds a seeded cube (Sentinel-2 red/NIR over a procedurally generated
land-cover field, one scene per acquisition day), then measures

* **chunk pruning** — seeded bbox/time-window selections: how many chunks
  the planner touches vs the cube's sealed total (the ratio a full
  scene-at-a-time scan pays);
* **oracle parity** — every selection materialized via the chunk path must
  equal the dense in-memory ndarray oracle exactly;
* **tiled vs whole-scene wall clock** — a windowed temporal mean computed
  by streaming pruned chunks vs materializing the whole cube and slicing;
* **append-only storage** — after ingest, no chunk path was written twice.

``python -m repro.datacube.bench`` runs the full configuration;
``--smoke`` a CI-sized one. Both write ``BENCH_E24.json`` (in
``$REPRO_OBS_DIR``) for the CI gate.
"""

from __future__ import annotations

import argparse
import random
import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import DatacubeError
from repro.obs import Observability, bench_snapshot_path
from repro.raster.grid import GeoTransform
from repro.raster.sentinel import landcover_field, sentinel2_scene
from repro.datacube.cube import Cube, CubeSchema
from repro.datacube.ingest import CubeIngestor, S2_DEFAULT_VARIABLES
from repro.datacube.storage import ChunkStore


@dataclass(frozen=True)
class DatacubeBenchConfig:
    seed: int = 24
    height: int = 256
    width: int = 256
    steps: int = 24
    chunk_t: int = 8
    chunk_y: int = 64
    chunk_x: int = 64
    pixel_size: float = 10.0
    queries: int = 40

    def __post_init__(self) -> None:
        if self.steps < self.chunk_t:
            raise DatacubeError("bench needs at least one full time slab")
        if self.queries < 1:
            raise DatacubeError("bench needs >= 1 query")


SMOKE = DatacubeBenchConfig(height=160, width=160, steps=12, chunk_t=4,
                            queries=20)


def build_cube(config: DatacubeBenchConfig, obs: Optional[Observability] = None):
    """Ingest the seeded scene series; returns (cube, oracle, days)."""
    transform = GeoTransform(0.0, 0.0, config.pixel_size)
    schema = CubeSchema(
        transform=transform,
        height=config.height,
        width=config.width,
        variables=("red", "nir"),
        chunk_t=config.chunk_t,
        chunk_y=config.chunk_y,
        chunk_x=config.chunk_x,
    )
    store = ChunkStore(obs=obs)
    cube = Cube.create(store, "/cubes/bench_e24", schema, obs=obs)
    ingestor = CubeIngestor(cube, variables=S2_DEFAULT_VARIABLES, obs=obs)
    truth = landcover_field(config.height, config.width, seed=config.seed)
    days = [15 * (index + 1) for index in range(config.steps)]
    oracle: Dict[str, List[np.ndarray]] = {"red": [], "nir": []}
    for index, day in enumerate(days):
        scene = sentinel2_scene(
            truth, day_of_year=day, seed=config.seed + index,
            pixel_size=config.pixel_size,
        )
        ingestor.ingest_scene(scene)
        oracle["red"].append(scene.grid.band(3).astype("float32"))
        oracle["nir"].append(scene.grid.band(7).astype("float32"))
    dense = {name: np.stack(slabs) for name, slabs in oracle.items()}
    return cube, dense, days


def oracle_select(dense: np.ndarray, days: Sequence[int],
                  transform: GeoTransform, t_min: float, t_max: float,
                  bbox) -> np.ndarray:
    """Independent dense-ndarray selection (mirrors the test-suite oracle)."""
    times = np.asarray(days, dtype=float)
    t_mask = (times >= t_min) & (times <= t_max)
    _, height, width = dense.shape
    size = transform.pixel_size
    min_x, min_y, max_x, max_y = bbox
    col_centers = transform.origin_x + (np.arange(width) + 0.5) * size
    row_centers = transform.origin_y - (np.arange(height) + 0.5) * size
    cols = (col_centers >= min_x) & (col_centers <= max_x)
    rows = (row_centers >= min_y) & (row_centers <= max_y)
    return dense[np.ix_(t_mask, rows, cols)]


def seeded_queries(config: DatacubeBenchConfig, days: Sequence[int],
                   transform: GeoTransform):
    """Seeded (variable, t_min, t_max, bbox) selections, windowed & skewed."""
    rng = random.Random(config.seed)
    size = transform.pixel_size
    for _ in range(config.queries):
        variable = rng.choice(("red", "nir"))
        lo = rng.randrange(len(days))
        hi = min(len(days) - 1, lo + rng.randrange(1, max(2, len(days) // 3)))
        width_px = rng.randrange(config.width // 8, config.width // 2)
        height_px = rng.randrange(config.height // 8, config.height // 2)
        col0 = rng.randrange(0, config.width - width_px)
        row0 = rng.randrange(0, config.height - height_px)
        min_x = transform.origin_x + col0 * size
        max_x = transform.origin_x + (col0 + width_px) * size
        max_y = transform.origin_y - row0 * size
        min_y = transform.origin_y - (row0 + height_px) * size
        yield variable, float(days[lo]), float(days[hi]), (min_x, min_y, max_x, max_y)


def run_datacube_bench(config: DatacubeBenchConfig,
                       obs: Optional[Observability] = None) -> Dict:
    obs = obs if obs is not None else Observability()
    cube, dense, days = build_cube(config, obs=obs)
    transform = cube.schema.transform

    touched = 0
    total = 0
    parity_checked = 0
    parity_equal = 0
    for variable, t_min, t_max, bbox in seeded_queries(config, days, transform):
        plan = cube.sel(variable, t_min, t_max, bbox)
        touched += plan.chunks_touched
        total += plan.chunks_total
        expected = oracle_select(dense[variable], days, transform,
                                 t_min, t_max, bbox)
        got = plan.read()
        parity_checked += 1
        if got.shape == expected.shape and np.array_equal(got, expected):
            parity_equal += 1
    pruning_ratio = total / touched if touched else float("inf")

    # Tiled windowed temporal mean vs whole-cube materialize-then-slice.
    t_min, t_max = float(days[0]), float(days[len(days) // 3])
    bbox = (
        transform.origin_x,
        transform.origin_y - (config.height // 3) * config.pixel_size,
        transform.origin_x + (config.width // 3) * config.pixel_size,
        transform.origin_y,
    )
    start = _time.perf_counter()
    tiled = cube.sel("nir", t_min, t_max, bbox).reduce_time("mean")
    tiled_s = _time.perf_counter() - start
    start = _time.perf_counter()
    whole = cube.sel("nir").read()  # the scene-at-a-time full scan
    expected_mean = oracle_select(
        dense["nir"], days, transform, t_min, t_max, bbox
    ).mean(axis=0)
    times = np.asarray(days, dtype=float)
    t_mask = (times >= t_min) & (times <= t_max)
    whole_mean = whole[t_mask][:, : config.height // 3, : config.width // 3].mean(axis=0)
    whole_s = _time.perf_counter() - start
    mean_parity = bool(
        np.allclose(tiled, expected_mean, rtol=1e-6, atol=1e-7)
        and np.allclose(whole_mean, expected_mean, rtol=1e-6, atol=1e-7)
    )

    max_path_writes = max(cube.store.writes.values())
    report = {
        "experiment": "E24",
        "seed": config.seed,
        "steps": config.steps,
        "grid": f"{config.height}x{config.width}",
        "chunk_shape": [config.chunk_t, config.chunk_y, config.chunk_x],
        "sealed_chunks": cube.sealed_chunks,
        "queries": config.queries,
        "chunks_total": total,
        "chunks_touched": touched,
        "pruning_ratio": round(pruning_ratio, 3),
        "parity_checked": parity_checked,
        "parity_equal": parity_equal,
        "mean_parity": mean_parity,
        "tiled_s": round(tiled_s, 6),
        "whole_s": round(whole_s, 6),
        "speedup": round(whole_s / tiled_s, 3) if tiled_s > 0 else float("inf"),
        "max_path_writes": max_path_writes,
    }
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="E24 datacube bench")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized configuration")
    parser.add_argument("--seed", type=int, default=None)
    args = parser.parse_args(argv)
    config = SMOKE if args.smoke else DatacubeBenchConfig()
    if args.seed is not None:
        config = DatacubeBenchConfig(
            **{**config.__dict__, "seed": args.seed}
        )
    obs = Observability()
    report = run_datacube_bench(config, obs=obs)
    path = obs.write_snapshot(bench_snapshot_path("E24"), meta=report)
    for key, value in report.items():
        print(f"  {key}: {value}")
    print(f"[obs] snapshot written: {path}")
    failures = []
    if report["pruning_ratio"] <= 1.0:
        failures.append("pruning ratio must exceed 1")
    if report["parity_equal"] != report["parity_checked"]:
        failures.append("oracle parity failed")
    if not report["mean_parity"]:
        failures.append("tiled mean diverged from oracle")
    if report["max_path_writes"] != 1:
        failures.append("a chunk path was written more than once")
    if failures:
        print("FAILED: " + "; ".join(failures))
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
