"""Chunk identity, serialization, and provenance for the E24 data cube.

A cube chunk is a dense ``(t, y, x)`` slab of one variable, addressed by a
:class:`ChunkKey` — the ``(time_chunk, y_chunk, x_chunk)`` coordinates in
the cube's fixed chunk grid. Chunks are serialized to a self-describing
byte format (magic + JSON header + raw array bytes) so a chunk file read
back from HopsFS needs nothing but itself to decode, and every chunk
carries a :class:`ChunkProvenance` record: which source scenes fed it,
when it was sealed, and the processing lineage that produced its values.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.errors import DatacubeError

#: Serialization magic: format version bumps change this string.
CHUNK_MAGIC = b"E24CUBE1\n"


@dataclass(frozen=True, order=True)
class ChunkKey:
    """Dense chunk-grid coordinates ``(time_chunk, y_chunk, x_chunk)``."""

    t: int
    y: int
    x: int

    def __post_init__(self) -> None:
        if self.t < 0 or self.y < 0 or self.x < 0:
            raise DatacubeError(f"chunk key must be non-negative, got {self}")

    @property
    def name(self) -> str:
        return f"t{self.t:05d}_y{self.y:03d}_x{self.x:03d}"


def chunk_path(root: str, variable: str, key: ChunkKey) -> str:
    """HopsFS path of a sealed chunk: ``<root>/<var>/t*/y*_x*.chunk``.

    One directory per (variable, time chunk): listing a time slab is a
    single-partition scan, and appending a new slab creates a fresh
    directory instead of growing an old one.
    """
    return f"{root}/{variable}/t{key.t:05d}/y{key.y:03d}_x{key.x:03d}.chunk"


def provenance_path(root: str, variable: str, key: ChunkKey) -> str:
    """HopsFS path of a chunk's provenance record (sibling of the chunk)."""
    return f"{root}/{variable}/t{key.t:05d}/y{key.y:03d}_x{key.x:03d}.prov"


def encode_chunk(array: np.ndarray) -> bytes:
    """Serialize a ``(t, y, x)`` slab: magic + JSON header + C-order bytes."""
    array = np.ascontiguousarray(array)
    if array.ndim != 3:
        raise DatacubeError(f"chunk arrays are 3-D (t, y, x), got ndim={array.ndim}")
    header = json.dumps(
        {"dtype": array.dtype.str, "shape": list(array.shape)}, sort_keys=True
    ).encode("utf-8")
    return CHUNK_MAGIC + len(header).to_bytes(4, "big") + header + array.tobytes()


def decode_chunk(payload: bytes) -> np.ndarray:
    """Inverse of :func:`encode_chunk`; validates magic, header, and length."""
    if not payload.startswith(CHUNK_MAGIC):
        raise DatacubeError("not a cube chunk: bad magic")
    offset = len(CHUNK_MAGIC)
    header_len = int.from_bytes(payload[offset : offset + 4], "big")
    offset += 4
    try:
        header = json.loads(payload[offset : offset + header_len].decode("utf-8"))
        dtype = np.dtype(header["dtype"])
        shape = tuple(int(n) for n in header["shape"])
    except (ValueError, KeyError, TypeError) as exc:
        raise DatacubeError(f"corrupt chunk header: {exc}") from exc
    offset += header_len
    body = payload[offset:]
    expected = dtype.itemsize * int(np.prod(shape))
    if len(body) != expected:
        raise DatacubeError(
            f"chunk body is {len(body)} bytes, header says {expected}"
        )
    return np.frombuffer(body, dtype=dtype).reshape(shape).copy()


@dataclass(frozen=True)
class ChunkProvenance:
    """What a sealed chunk is made of.

    ``source_ids`` are the scene/product identifiers of every time step in
    the slab (in time order), ``times`` their time-axis coordinates,
    ``sealed_seq`` the cube's monotonically increasing seal counter (the
    sim-friendly stand-in for an ingest timestamp), and ``lineage`` the
    ordered processing steps that produced the variable's values.
    """

    variable: str
    key: ChunkKey
    times: Tuple[float, ...]
    source_ids: Tuple[str, ...]
    sealed_seq: int
    lineage: Tuple[str, ...] = ()

    def to_json(self) -> bytes:
        return json.dumps(
            {
                "variable": self.variable,
                "key": [self.key.t, self.key.y, self.key.x],
                "times": list(self.times),
                "source_ids": list(self.source_ids),
                "sealed_seq": self.sealed_seq,
                "lineage": list(self.lineage),
            },
            sort_keys=True,
        ).encode("utf-8")

    @staticmethod
    def from_json(payload: bytes) -> "ChunkProvenance":
        try:
            record: Dict = json.loads(payload.decode("utf-8"))
            return ChunkProvenance(
                variable=record["variable"],
                key=ChunkKey(*record["key"]),
                times=tuple(record["times"]),
                source_ids=tuple(record["source_ids"]),
                sealed_seq=int(record["sealed_seq"]),
                lineage=tuple(record["lineage"]),
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise DatacubeError(f"corrupt provenance record: {exc}") from exc
