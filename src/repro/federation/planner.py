"""Federated query planning: decomposition and join ordering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Union

from repro.errors import FederationError
from repro.federation.endpoint import Endpoint
from repro.federation.sourcesel import select_sources
from repro.sparql.ast import (
    BGP,
    Expression,
    FilterPattern,
    GroupPattern,
    SelectQuery,
    TriplePattern,
    Variable,
)
from repro.sparql.parser import parse_query


@dataclass
class PlannedPattern:
    """One triple pattern with its sources and cost estimate."""

    pattern: TriplePattern
    sources: List[Endpoint]
    estimated_cardinality: int


@dataclass
class FederatedPlan:
    """An ordered pattern list plus locally-applied filters."""

    steps: List[PlannedPattern]
    filters: List[Expression] = field(default_factory=list)
    variables: List[Variable] = field(default_factory=list)
    distinct: bool = False

    @property
    def total_sources(self) -> int:
        return sum(len(step.sources) for step in self.steps)


def _extract_bgp(query: SelectQuery) -> tuple:
    """Pull the flat BGP + filters out of a (simple) federated query."""
    patterns: List[TriplePattern] = []
    filters: List[Expression] = []
    for child in query.where.children:
        if isinstance(child, BGP):
            patterns.extend(child.patterns)
        elif isinstance(child, FilterPattern):
            filters.append(child.expression)
        else:
            raise FederationError(
                "federated queries support flat BGP + FILTER only "
                f"(got {type(child).__name__})"
            )
    if not patterns:
        raise FederationError("federated query has no triple patterns")
    return patterns, filters


def plan_query(
    query: Union[str, SelectQuery],
    endpoints: Sequence[Endpoint],
    source_selection: str = "statistics",
) -> FederatedPlan:
    """Plan a federated query: select sources, order patterns by cost.

    Ordering is greedy: cheapest estimated cardinality first, preferring
    patterns that share a variable with already-planned ones (so bind joins
    stay selective).
    """
    if isinstance(query, str):
        query = parse_query(query)
    if not isinstance(query, SelectQuery):
        raise FederationError("only SELECT queries are supported in federation")
    patterns, filters = _extract_bgp(query)
    sources = select_sources(patterns, endpoints, method=source_selection)

    planned = [
        PlannedPattern(
            pattern=pattern,
            sources=sources[i],
            estimated_cardinality=sum(
                e.estimated_cardinality(pattern) for e in sources[i]
            ),
        )
        for i, pattern in enumerate(patterns)
    ]

    ordered: List[PlannedPattern] = []
    bound: Set[Variable] = set()
    remaining = list(planned)
    while remaining:
        def sort_key(step: PlannedPattern):
            connected = any(v in bound for v in step.pattern.variables())
            return (
                0 if connected or not bound else 1,
                step.estimated_cardinality,
            )

        best = min(remaining, key=sort_key)
        remaining.remove(best)
        ordered.append(best)
        bound.update(best.pattern.variables())

    return FederatedPlan(
        steps=ordered,
        filters=filters,
        variables=query.variables,
        distinct=query.distinct,
    )
