"""SPARQL endpoint facade with accounting.

An :class:`Endpoint` wraps a local :class:`~repro.rdf.graph.Graph` (or a
GeoStore's graph) and meters every interaction the federation engine has with
it — requests issued and bindings shipped back — which is exactly what E8
measures. It also serves VoID-style statistics (predicate cardinalities) that
the source selector can use instead of probing.

Fault injection (experiment E17): an endpoint constructed with a
:class:`~repro.faults.FaultInjector` consults it on every metered remote call
and raises :class:`EndpointUnavailable` (transient, retryable),
:class:`~repro.errors.TimeoutExceeded` (transient), or :class:`EndpointDown`
(permanent, not retryable). Planning-side statistics stay fault-free — they
model cached VoID descriptors, not live calls.

Deadline propagation (experiment E18): remote calls accept an optional
:class:`~repro.resilience.Deadline`; an endpoint built with a simulated
per-call ``latency_s`` charges it against the request budget before
serving, so slow endpoints visibly consume the time the caller is spending.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import FaultError, FederationError, TimeoutExceeded
from repro.rdf.graph import Graph, Pattern
from repro.rdf.term import Term, Triple
from repro.sparql.ast import TriplePattern, Variable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.resilience.deadline import Deadline


class EndpointUnavailable(FederationError, FaultError):
    """A transient endpoint error (5xx-style); retrying may succeed."""

    retryable = True


class EndpointDown(FederationError, FaultError):
    """The endpoint is permanently unreachable; retrying cannot help."""

    retryable = False


class Endpoint:
    """One federation member."""

    def __init__(
        self,
        name: str,
        graph: Graph,
        injector: Optional["FaultInjector"] = None,
        latency_s: float = 0.0,
    ):
        if not name:
            raise FederationError("endpoint needs a name")
        if latency_s < 0:
            raise FederationError("endpoint latency must be non-negative")
        self.name = name
        self.graph = graph
        self.requests = 0
        self.bindings_shipped = 0
        self.latency_s = latency_s
        self._injector = injector
        self._call_index = 0

    def _maybe_fail(self) -> None:
        """Consult the injector before serving one remote call."""
        if self._injector is None:
            return
        outcome = self._injector.endpoint_outcome(self.name, self._call_index)
        self._call_index += 1
        if outcome == "dead":
            raise EndpointDown(f"endpoint {self.name} is down")
        if outcome == "error":
            raise EndpointUnavailable(f"endpoint {self.name} returned an error")
        if outcome == "timeout":
            raise TimeoutExceeded(f"endpoint {self.name} timed out")

    def _spend(self, deadline: Optional["Deadline"]) -> None:
        """Charge one call's simulated service time to the request budget.

        The charge lands *before* the call is served: a request whose
        budget cannot cover this endpoint's latency fails with
        :class:`TimeoutExceeded` rather than pretending the data arrived
        in time — the deadline-propagation contract of E18.
        """
        if deadline is None:
            return
        if self.latency_s:
            deadline.charge(self.latency_s)
        deadline.check(f"endpoint[{self.name}]")

    # ------------------------------------------------------------------
    # Remote interface (all metered)
    # ------------------------------------------------------------------

    def ask(
        self, pattern: TriplePattern, deadline: Optional["Deadline"] = None
    ) -> bool:
        """ASK-style probe: does any triple match?"""
        self._maybe_fail()
        self._spend(deadline)
        self.requests += 1
        for _ in self.graph.triples(_to_graph_pattern(pattern)):
            return True
        return False

    def match(
        self, pattern: TriplePattern, deadline: Optional["Deadline"] = None
    ) -> List[Triple]:
        """Fetch all triples matching a (possibly partially bound) pattern."""
        self._maybe_fail()
        self._spend(deadline)
        self.requests += 1
        results = list(self.graph.triples(_to_graph_pattern(pattern)))
        self.bindings_shipped += len(results)
        return results

    # ------------------------------------------------------------------
    # Statistics (served once, cached by the caller — not metered)
    # ------------------------------------------------------------------

    def void_statistics(self) -> Dict[str, int]:
        """Predicate IRI -> triple count, the VoID descriptor."""
        return {
            str(predicate): self.graph.predicate_count(predicate)
            for predicate in self.graph.predicates()
        }

    def estimated_cardinality(self, pattern: TriplePattern) -> int:
        """Planner-side cardinality estimate (uses local statistics)."""
        return self.graph.count(_to_graph_pattern(pattern))

    def reset_accounting(self) -> None:
        self.requests = 0
        self.bindings_shipped = 0


def _to_graph_pattern(pattern: TriplePattern) -> Pattern:
    return tuple(
        None if isinstance(position, Variable) else position
        for position in (pattern.subject, pattern.predicate, pattern.object)
    )  # type: ignore[return-value]
