"""SPARQL endpoint facade with accounting.

An :class:`Endpoint` wraps a local :class:`~repro.rdf.graph.Graph` (or a
GeoStore's graph) and meters every interaction the federation engine has with
it — requests issued and bindings shipped back — which is exactly what E8
measures. It also serves VoID-style statistics (predicate cardinalities) that
the source selector can use instead of probing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import FederationError
from repro.rdf.graph import Graph, Pattern
from repro.rdf.term import Term, Triple
from repro.sparql.ast import TriplePattern, Variable


class Endpoint:
    """One federation member."""

    def __init__(self, name: str, graph: Graph):
        if not name:
            raise FederationError("endpoint needs a name")
        self.name = name
        self.graph = graph
        self.requests = 0
        self.bindings_shipped = 0

    # ------------------------------------------------------------------
    # Remote interface (all metered)
    # ------------------------------------------------------------------

    def ask(self, pattern: TriplePattern) -> bool:
        """ASK-style probe: does any triple match?"""
        self.requests += 1
        for _ in self.graph.triples(_to_graph_pattern(pattern)):
            return True
        return False

    def match(self, pattern: TriplePattern) -> List[Triple]:
        """Fetch all triples matching a (possibly partially bound) pattern."""
        self.requests += 1
        results = list(self.graph.triples(_to_graph_pattern(pattern)))
        self.bindings_shipped += len(results)
        return results

    # ------------------------------------------------------------------
    # Statistics (served once, cached by the caller — not metered)
    # ------------------------------------------------------------------

    def void_statistics(self) -> Dict[str, int]:
        """Predicate IRI -> triple count, the VoID descriptor."""
        return {
            str(predicate): self.graph.predicate_count(predicate)
            for predicate in self.graph.predicates()
        }

    def estimated_cardinality(self, pattern: TriplePattern) -> int:
        """Planner-side cardinality estimate (uses local statistics)."""
        return self.graph.count(_to_graph_pattern(pattern))

    def reset_accounting(self) -> None:
        self.requests = 0
        self.bindings_shipped = 0


def _to_graph_pattern(pattern: TriplePattern) -> Pattern:
    return tuple(
        None if isinstance(position, Variable) else position
        for position in (pattern.subject, pattern.predicate, pattern.object)
    )  # type: ignore[return-value]
