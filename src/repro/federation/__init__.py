"""Federated SPARQL: the Semagrow of the stack (Challenge C3).

"The engine Semagrow will be extended so that it can manage efficiently
federations of big geospatial data sources and answer extreme geospatial
analytical queries." This package implements the published Semagrow
architecture at laptop scale:

* :class:`~repro.federation.endpoint.Endpoint` — a remote store facade with
  request/transfer accounting and VoID-style statistics
* :mod:`repro.federation.sourcesel` — source selection (statistics-based, or
  ASK-probing when statistics are missing)
* :mod:`repro.federation.planner` — query decomposition + cost-ordered joins
* :mod:`repro.federation.executor` — bind-join execution, plus the naive
  broadcast baseline experiment E8 compares against
"""

from repro.federation.endpoint import Endpoint, EndpointDown, EndpointUnavailable
from repro.federation.sourcesel import select_sources
from repro.federation.planner import FederatedPlan, plan_query
from repro.federation.executor import FederationMetrics, execute_federated

__all__ = [
    "Endpoint",
    "EndpointDown",
    "EndpointUnavailable",
    "FederatedPlan",
    "FederationMetrics",
    "execute_federated",
    "plan_query",
    "select_sources",
]
