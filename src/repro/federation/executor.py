"""Federated execution: bind joins over planned patterns.

Fault tolerance (experiment E17): when endpoints are chaos-injected, every
remote call runs under a shared :class:`~repro.faults.RetryPolicy`; an
endpoint whose calls permanently fail (dead) is dropped from the rest of the
query and the executor *degrades gracefully* — it returns the results
obtainable from the surviving endpoints, flags the answer
``complete=False``, and reports per-endpoint failure counts, instead of
raising mid-join. A call that fails *transiently* even after retries (a
timeout, an exhausted retry budget over retryable errors) only counts in
``endpoint_failures`` — the endpoint stays in play for later patterns.

Overload resilience (experiment E18): the executor optionally takes the
whole :mod:`repro.resilience` kit — a per-query
:class:`~repro.resilience.Deadline` (checked before every remote call, so
one slow endpoint cannot consume the query's whole budget), a
:class:`~repro.resilience.CircuitBreakerSet` keyed by endpoint name (an
open breaker fails the call fast with
:class:`~repro.errors.CircuitOpen` instead of hammering a flapping
endpoint), and an :class:`~repro.resilience.AdmissionController` guarding
query entry (shed queries raise the retryable
:class:`~repro.errors.Overloaded` before any remote work starts). All
three default to None, leaving the pre-E18 path byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Union, TYPE_CHECKING

from repro.cache.lru import MISS
from repro.errors import CircuitOpen, FaultError, FederationError, RetryExhausted
from repro.faults.retry import RetryPolicy, RetryState
from repro.federation.endpoint import Endpoint
from repro.obs import Observability, resolve
from repro.federation.planner import FederatedPlan, plan_query
from repro.sparql.ast import SelectQuery, TriplePattern, Variable
from repro.sparql.evaluator import Bindings, FunctionRegistry, evaluate_expression
from repro.sparql.functions import EvaluationError, effective_boolean_value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.federation import FederationResultCache
    from repro.resilience import AdmissionController, CircuitBreakerSet, Deadline

_EMPTY_REGISTRY = FunctionRegistry()


@dataclass
class FederationMetrics:
    """What E8 reports per query (plus E17/E18's fault accounting)."""

    requests: int = 0
    bindings_shipped: int = 0
    results: int = 0
    #: False when at least one endpoint was lost and the answer is partial.
    complete: bool = True
    #: Endpoint name -> calls that failed terminally (after retries).
    endpoint_failures: Dict[str, int] = field(default_factory=dict)
    #: Transient failures that a retry recovered.
    retries: int = 0
    #: Terminal-but-transient failures (timeouts, exhausted retries over
    #: retryable errors, open breakers) — the endpoint was *not* lost.
    transient_failures: int = 0
    #: Sub-queries answered from the result cache (no remote call, no
    #: deadline charge). Zero whenever no cache is configured.
    cache_hits: int = 0


def _is_permanent(error: BaseException) -> bool:
    """Did this terminal failure prove the endpoint unrecoverable?

    A :class:`RetryExhausted` wrapper is judged by the error it gave up on:
    exhausting retries over *transient* faults (errors, timeouts) says the
    endpoint was unlucky, not dead. Only a non-retryable underlying fault
    (e.g. ``EndpointDown``) condemns the endpoint for the rest of the query.
    """
    if isinstance(error, RetryExhausted):
        last = error.last_error
        return last is not None and _is_permanent(last)
    return not getattr(error, "retryable", False)


def execute_federated(
    query: Union[str, SelectQuery, FederatedPlan],
    endpoints: Sequence[Endpoint],
    source_selection: str = "statistics",
    registry: FunctionRegistry = _EMPTY_REGISTRY,
    retry_policy: Optional[RetryPolicy] = None,
    graceful: bool = True,
    obs: Optional[Observability] = None,
    deadline: Optional["Deadline"] = None,
    breakers: Optional["CircuitBreakerSet"] = None,
    admission: Optional["AdmissionController"] = None,
    priority: int = 1,
    result_cache: Optional["FederationResultCache"] = None,
) -> tuple:
    """Execute a federated query; returns (solutions, metrics).

    Evaluation is an index-style bind join: each solution so far is
    substituted into the next pattern before it is sent to that pattern's
    sources, so upstream selectivity cuts remote work.

    ``retry_policy`` wraps each remote call (transient endpoint faults are
    retried); with ``graceful`` set, a permanently failing endpoint yields a
    partial answer (``metrics.complete`` False) instead of an exception.
    Transient terminal failures (timeouts, exhausted retries over retryable
    errors) count in ``metrics.endpoint_failures`` but do *not* drop the
    endpoint — only proof of permanent death does.

    Resilience (all optional): ``deadline`` is the query's end-to-end time
    budget — checked before every remote call and handed to the retry loop,
    expiry raises :class:`~repro.errors.TimeoutExceeded` even under
    ``graceful`` (a deadline miss is the *caller's* failure condition, not a
    degradable data-source loss). ``breakers`` supplies one circuit breaker
    per endpoint; ``admission`` guards query entry and may raise
    :class:`~repro.errors.Overloaded` with the given ``priority`` class.

    With an ``obs`` bundle attached, every remote call runs inside a
    ``federation.fetch`` span labelled by endpoint, terminal failures and
    lost endpoints surface as ``federation.*`` counters, and the whole
    query is one ``federation.query`` span.

    ``result_cache`` (a :class:`~repro.cache.FederationResultCache`,
    experiment E19) answers repeated (endpoint, sub-query) pairs locally: a
    hit skips the remote call entirely — no request accounting, no retry,
    no deadline charge. The executor bumps the endpoint's cache epoch
    whenever its circuit breaker changes state or the endpoint is marked
    dead, so answers cached before an incident are never served after it.
    """
    ticket = admission.admit(priority=priority) if admission is not None else None
    try:
        return _execute_admitted(
            query, endpoints, source_selection, registry, retry_policy,
            graceful, obs, deadline, breakers, result_cache,
        )
    finally:
        if ticket is not None:
            ticket.release()


def _execute_admitted(
    query,
    endpoints: Sequence[Endpoint],
    source_selection: str,
    registry: FunctionRegistry,
    retry_policy: Optional[RetryPolicy],
    graceful: bool,
    obs: Optional[Observability],
    deadline: Optional["Deadline"],
    breakers: Optional["CircuitBreakerSet"],
    result_cache: Optional["FederationResultCache"] = None,
) -> tuple:
    observability = resolve(obs)
    for endpoint in endpoints:
        endpoint.reset_accounting()
    if isinstance(query, FederatedPlan):
        plan = query
    else:
        plan = plan_query(query, endpoints, source_selection=source_selection)

    dead: Set[str] = set()
    endpoint_failures: Dict[str, int] = {}
    retry_total = 0
    transient_failures = 0
    cache_hit_total = 0

    def remote_call(endpoint: Endpoint, pattern: TriplePattern) -> list:
        """One attempt, gated by the endpoint's breaker when one exists."""
        if breakers is None:
            return endpoint.match(pattern, deadline=deadline)
        breaker = breakers.for_key(endpoint.name)
        state_before = breaker.state
        try:
            breaker.before_call()
            try:
                result = endpoint.match(pattern, deadline=deadline)
            except FaultError:
                breaker.record_failure()
                raise
            breaker.record_success()
            return result
        finally:
            if result_cache is not None and breaker.state != state_before:
                # Any breaker transition (trip, probe window, close) is
                # endpoint "weather": answers cached before it are suspect.
                result_cache.bump_epoch(endpoint.name)

    def fetch(endpoint: Endpoint, pattern: TriplePattern) -> Optional[list]:
        """One remote call with retry + degradation; None = no data."""
        nonlocal retry_total, transient_failures, cache_hit_total
        if endpoint.name in dead:
            return None
        if result_cache is not None:
            cached = result_cache.get(endpoint.name, pattern)
            if cached is not MISS:
                # Served locally: no remote call, no retry, and — the point
                # of the tier — nothing charged to the request deadline.
                cache_hit_total += 1
                observability.metrics.counter(
                    "federation.cache_hits", endpoint=endpoint.name
                ).inc()
                return cached
        if deadline is not None:
            # The query's budget is gone: stop issuing remote work. This
            # propagates even under graceful degradation — a deadline miss
            # is a request failure, not a data-source loss.
            deadline.check("federation.fetch")
        state = RetryState()
        with observability.tracer.span(
            "federation.fetch", endpoint=endpoint.name
        ) as span:
            try:
                if retry_policy is not None:
                    result = retry_policy.call(
                        lambda: remote_call(endpoint, pattern),
                        state=state,
                        obs=obs,
                        deadline=deadline,
                    )
                else:
                    result = remote_call(endpoint, pattern)
                if result_cache is not None:
                    result_cache.put(endpoint.name, pattern, result)
                return result
            except FaultError as error:
                span.status = "failed"
                endpoint_failures[endpoint.name] = (
                    endpoint_failures.get(endpoint.name, 0) + 1
                )
                observability.metrics.counter(
                    "federation.endpoint_failures", endpoint=endpoint.name
                ).inc()
                if not graceful:
                    raise
                if _is_permanent(error):
                    dead.add(endpoint.name)
                    if result_cache is not None:
                        result_cache.bump_epoch(endpoint.name)
                    observability.metrics.counter(
                        "federation.endpoints_lost", endpoint=endpoint.name
                    ).inc()
                else:
                    if deadline is not None and deadline.expired:
                        # Out of time mid-retry: a deadline miss fails the
                        # whole query, graceful or not.
                        raise
                    transient_failures += 1
                    observability.metrics.counter(
                        "federation.transient_failures",
                        endpoint=endpoint.name,
                    ).inc()
                return None
            finally:
                retry_total += state.retries

    with observability.tracer.span("federation.query"):
        solutions: List[Bindings] = [{}]
        for step in plan.steps:
            next_solutions: List[Bindings] = []
            for solution in solutions:
                concrete = _substitute(step.pattern, solution)
                for endpoint in step.sources:
                    triples = fetch(endpoint, concrete)
                    if triples is None:
                        continue
                    for triple in triples:
                        extended = _extend(solution, concrete, triple)
                        if extended is not None:
                            next_solutions.append(extended)
            solutions = next_solutions
            if not solutions:
                break

    # Local filters.
    for expression in plan.filters:
        kept = []
        for solution in solutions:
            try:
                if effective_boolean_value(
                    evaluate_expression(expression, solution, registry)
                ):
                    kept.append(solution)
            except EvaluationError:
                continue
        solutions = kept

    if plan.variables:
        solutions = [
            {v: s[v] for v in plan.variables if v in s} for s in solutions
        ]
    if plan.distinct:
        seen = set()
        unique = []
        for solution in solutions:
            key = frozenset(solution.items())
            if key not in seen:
                seen.add(key)
                unique.append(solution)
        solutions = unique

    metrics = FederationMetrics(
        requests=sum(e.requests for e in endpoints),
        bindings_shipped=sum(e.bindings_shipped for e in endpoints),
        results=len(solutions),
        complete=not dead,
        endpoint_failures=endpoint_failures,
        retries=retry_total,
        transient_failures=transient_failures,
        cache_hits=cache_hit_total,
    )
    counters = observability.metrics
    counters.counter("federation.queries").inc()
    counters.counter("federation.requests").inc(metrics.requests)
    counters.counter("federation.bindings_shipped").inc(metrics.bindings_shipped)
    counters.counter("federation.results").inc(metrics.results)
    if dead:
        counters.counter("federation.degraded_queries").inc()
    return solutions, metrics


def _substitute(pattern: TriplePattern, bindings: Bindings) -> TriplePattern:
    def resolve(position):
        if isinstance(position, Variable) and position in bindings:
            return bindings[position]
        return position

    return TriplePattern(
        resolve(pattern.subject), resolve(pattern.predicate), resolve(pattern.object)
    )


def _extend(bindings: Bindings, pattern: TriplePattern, triple) -> Optional[Bindings]:
    extended = dict(bindings)
    for position, term in zip(
        (pattern.subject, pattern.predicate, pattern.object), triple
    ):
        if isinstance(position, Variable):
            existing = extended.get(position)
            if existing is None:
                extended[position] = term
            elif existing != term:
                return None
    return extended
