"""Source selection: which endpoints can contribute to which pattern."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import FederationError
from repro.federation.endpoint import Endpoint
from repro.sparql.ast import TriplePattern, Variable


def select_sources(
    patterns: Sequence[TriplePattern],
    endpoints: Sequence[Endpoint],
    method: str = "statistics",
) -> Dict[int, List[Endpoint]]:
    """Map each pattern index to the endpoints that may answer it.

    ``statistics``: consult cached VoID predicate counts — zero remote
    requests, but only prunes on bound predicates. ``ask``: issue an ASK
    probe per (pattern, endpoint) — precise, costs requests. ``none``:
    every endpoint is relevant to every pattern (the broadcast baseline).
    """
    if method not in ("statistics", "ask", "none"):
        raise FederationError(f"unknown source-selection method {method!r}")
    if not endpoints:
        raise FederationError("federation has no endpoints")

    if method == "none":
        return {i: list(endpoints) for i in range(len(patterns))}

    if method == "ask":
        return {
            i: [e for e in endpoints if e.ask(pattern)]
            for i, pattern in enumerate(patterns)
        }

    # statistics: fetch each endpoint's VoID descriptor once.
    void: Dict[str, Dict[str, int]] = {
        endpoint.name: endpoint.void_statistics() for endpoint in endpoints
    }
    selected: Dict[int, List[Endpoint]] = {}
    for i, pattern in enumerate(patterns):
        if isinstance(pattern.predicate, Variable):
            selected[i] = list(endpoints)
            continue
        predicate = str(pattern.predicate)
        selected[i] = [
            endpoint
            for endpoint in endpoints
            if void[endpoint.name].get(predicate, 0) > 0
        ]
    return selected
