"""ExtremeEarth: extreme Earth analytics for Copernicus big data.

A reproduction of the system envisioned by "From Copernicus Big Data to
Extreme Earth Analytics" (Koubarakis et al., EDBT 2019). The package is
organised by the paper's own architecture:

* substrates — :mod:`repro.geometry`, :mod:`repro.rdf`, :mod:`repro.sparql`,
  :mod:`repro.raster`, :mod:`repro.hopsfs`, :mod:`repro.cluster`, and
  :mod:`repro.faults` (deterministic chaos + the shared retry policy)
* the ExtremeEarth technologies — :mod:`repro.geosparql` (Strabon),
  :mod:`repro.geotriples`, :mod:`repro.interlinking` (JedAI/Silk),
  :mod:`repro.federation` (Semagrow), :mod:`repro.catalog` (Challenge C4),
  :mod:`repro.ml` + :mod:`repro.datasets` (Challenges C1/C2)
* the applications — :mod:`repro.apps.foodsecurity` (A1),
  :mod:`repro.apps.polar` (A2), and the integrated
  :mod:`repro.pipeline` (C5)

See DESIGN.md for the full system inventory and the experiment index, and
EXPERIMENTS.md for paper-claim vs measured results.
"""

from repro.errors import ReproError

__version__ = "0.1.0"

__all__ = ["ReproError", "__version__"]
