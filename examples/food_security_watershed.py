"""Application A1 end to end: irrigation support for a watershed.

The Food Security story from the paper: cartographic products provide weak
labels, scalable deep learning derives crop types and field boundaries, the
PROMET-like model turns them into 10 m water-availability maps spanning the
whole year, and per-field irrigation advice is published as linked data "made
available to farmers".

Run: ``python examples/food_security_watershed.py``
"""

import numpy as np

from repro.apps.foodsecurity import (
    PrometModel,
    SoilGrid,
    build_crop_classifier,
    classify_scene,
    extract_fields,
    irrigation_advice,
    publish_advice,
    synthetic_weather,
    train_crop_classifier,
)
from repro.datasets import WeakLabelConfig, make_osm_layer, weak_label_dataset
from repro.datasets.weaklabel import crop_label
from repro.raster import GeoTransform, LandCover, RasterGrid
from repro.raster.sentinel import CROP_CLASSES, landcover_field, sentinel2_scene
from repro.raster.stats import rasterize_polygon
from repro.sparql import Variable

SIZE = 96  # pixels; 10 m resolution -> a ~1 km^2 demo watershed


def build_watershed(seed=3):
    """A scene whose land cover follows a cadastral parcel layer."""
    layer = make_osm_layer(
        extent=(0.0, 0.0, SIZE * 10.0, SIZE * 10.0),
        parcel_grid=5,
        attribute_error=0.05,
        seed=seed,
    )
    transform = GeoTransform(0.0, SIZE * 10.0, 10.0)
    truth = np.full((SIZE, SIZE), int(LandCover.GRASSLAND), dtype=np.int16)
    for parcel in layer.parcels:
        mask = rasterize_polygon(parcel.geometry, transform, (SIZE, SIZE))
        truth[mask] = int(parcel.true_crop)
    scene = sentinel2_scene(truth, day_of_year=165, seed=seed, transform=transform)
    return scene, layer, truth


def main() -> None:
    scene, layer, truth = build_watershed()
    print(f"watershed: {SIZE}x{SIZE} pixels at 10 m, "
          f"{layer.parcel_count} parcels "
          f"({layer.attribute_error_rate():.0%} wrong attributes)")

    # Challenge C2: training data from the cartographic layer (weak labels).
    dataset = weak_label_dataset(
        scene.grid, layer, WeakLabelConfig(patch_size=8, patches_per_parcel=12),
        seed=1,
    )
    print(f"weak-labelled training set: {len(dataset)} patches, "
          f"{dataset.num_classes} crop classes")

    # Challenge C1: train and map crops. Labels are crop indexes (0..2);
    # remap the scene's predictions back to LandCover values for PROMET.
    model = build_crop_classifier(
        num_classes=dataset.num_classes, seed=2
    )
    train_crop_classifier(model, dataset, epochs=12, batch_size=16, lr=0.02)
    crop_index_map = classify_scene(model, scene, patch_size=8)
    index_to_landcover = {crop_label(c): int(c) for c in CROP_CLASSES}
    crop_map = np.vectorize(index_to_landcover.get)(crop_index_map).astype(np.int16)

    truth_crops = np.isin(truth, [int(c) for c in CROP_CLASSES])
    agreement = (crop_map == truth)[truth_crops].mean()
    print(f"crop map agreement over cropland: {agreement:.0%}")

    fields = extract_fields(crop_map, scene.grid, min_pixels=32)
    print(f"derived {len(fields)} field boundaries")

    # A1: the PROMET-like run over the WHOLE YEAR (not just one season).
    soil = SoilGrid.uniform(crop_map.shape, capacity_mm=120.0)
    promet = PrometModel(crop_map, soil, scene.grid.transform)
    weather = synthetic_weather(range(1, 366), seed=4, annual_rain_mm=550)
    days = promet.run(weather)
    print(f"PROMET: {len(days)} daily steps, mass-balance error "
          f"{promet.mass_balance_error_mm():.2e} mm")

    # Peak-season advice (early August).
    august = next(d for d in days if d.day_of_year == 215)
    availability = RasterGrid(august.water_availability[np.newaxis], scene.grid.transform)
    demand = RasterGrid(august.irrigation_demand_mm[np.newaxis], scene.grid.transform)
    advice = irrigation_advice(fields, availability, demand)
    irrigate = [a for a in advice if a.irrigate]
    print(f"advice for day 215: irrigate {len(irrigate)}/{len(advice)} fields, "
          f"mean demand {np.mean([a.demand_mm for a in irrigate or advice]):.1f} mm")

    # Linked-data publication + a farmer-facing query.
    store = publish_advice(advice)
    result = store.query(
        "PREFIX agri: <http://extremeearth.eu/agri#> "
        "SELECT ?f ?d WHERE { ?f agri:irrigationAdvised true . "
        "?f agri:irrigationDemandMm ?d } ORDER BY DESC(?d) LIMIT 3"
    )
    print("thirstiest fields:")
    for solution in result:
        print(f"   {solution[Variable('f')]}  "
              f"demand {solution[Variable('d')]} mm")


if __name__ == "__main__":
    main()
