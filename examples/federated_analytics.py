"""Challenge C3 end to end: GeoTriples -> interlinking -> federated SPARQL.

Two organisations publish linked geospatial data independently (field parcels
from a cadastre, water bodies from a hydrology agency). GeoTriples turns both
into RDF; the JedAI-style interlinker discovers spatial relations between
them; Semagrow-style federation answers a cross-source analytical query
without centralising the data.

Run: ``python examples/federated_analytics.py``
"""

from repro.datasets import make_osm_layer
from repro.federation import Endpoint, execute_federated
from repro.geometry import Polygon
from repro.geotriples import ObjectMap, TriplesMap, transform_to_store
from repro.interlinking import SpatialEntity, discover_links
from repro.rdf import IRI, Literal
from repro.sparql import Variable

CADASTRE = "http://cadastre.example.org/"
HYDRO = "http://hydro.example.org/"


def main() -> None:
    layer = make_osm_layer(
        extent=(0.0, 0.0, 2000.0, 2000.0), parcel_grid=6,
        water_count=4, seed=11,
    )

    # GeoTriples: each source runs its own mapping.
    parcel_mapping = TriplesMap(
        subject_template=CADASTRE + "parcel/{id}",
        type_iri=CADASTRE + "Parcel",
        object_maps=[
            ObjectMap(predicate=CADASTRE + "crop", column="crop"),
            ObjectMap(predicate="http://www.opengis.net/ont/geosparql#hasGeometry",
                      column="geometry", is_geometry=True),
        ],
    )
    parcel_records = [
        {"id": p.parcel_id, "crop": p.crop.name, "geometry": p.geometry}
        for p in layer.parcels
    ]
    cadastre_store = transform_to_store(parcel_records, parcel_mapping)

    water_mapping = TriplesMap(
        subject_template=HYDRO + "water/{id}",
        type_iri=HYDRO + "WaterBody",
        object_maps=[
            ObjectMap(predicate=HYDRO + "kind", constant="lake"),
            ObjectMap(predicate="http://www.opengis.net/ont/geosparql#hasGeometry",
                      column="geometry", is_geometry=True),
        ],
    )
    water_records = [
        {"id": i, "geometry": geometry} for i, geometry in enumerate(layer.water)
    ]
    hydro_store = transform_to_store(water_records, water_mapping)
    print(f"cadastre: {len(cadastre_store)} triples, "
          f"hydro: {len(hydro_store)} triples")

    # Interlinking: which parcels are near (or touch) which water bodies?
    parcels = [
        SpatialEntity(CADASTRE + f"parcel/{p.parcel_id}", p.geometry)
        for p in layer.parcels
    ]
    waters = [
        SpatialEntity(HYDRO + f"water/{i}", geometry)
        for i, geometry in enumerate(layer.water)
    ]
    result = discover_links(
        parcels, waters, method="blocking", cell_size=400.0, near_distance=150.0
    )
    print(f"interlinking: {result.candidate_pairs} candidates "
          f"(vs {len(parcels) * len(waters)} brute force), "
          f"{len(result.links)} links {result.by_relation()}")

    # Publish the discovered links into the cadastre store.
    for link in result.links:
        cadastre_store.add(
            IRI(link.source_id),
            IRI(CADASTRE + ("nearWater" if link.relation == "near" else "touchesWater")),
            IRI(link.target_id),
        )

    # Federation: "which crops grow near lakes?" spans both sources.
    endpoints = [
        Endpoint("cadastre", cadastre_store.graph),
        Endpoint("hydro", hydro_store.graph),
    ]
    query = (
        f"PREFIX cad: <{CADASTRE}> PREFIX hyd: <{HYDRO}> "
        "SELECT DISTINCT ?crop WHERE { "
        "?parcel cad:crop ?crop . "
        "?parcel cad:nearWater ?water . "
        "?water hyd:kind ?kind . }"
    )
    solutions, metrics = execute_federated(query, endpoints)
    crops = sorted(str(s[Variable("crop")]) for s in solutions)
    print(f"federated query: {metrics.requests} endpoint requests, "
          f"{metrics.bindings_shipped} bindings shipped")
    print(f"crops grown near lakes: {', '.join(crops) if crops else '(none)'}")

    # Show the source-selection win over naive broadcast.
    _, broadcast = execute_federated(query, endpoints, source_selection="none")
    print(f"broadcast baseline would have issued {broadcast.requests} requests")


if __name__ == "__main__":
    main()
