"""Quickstart: from a synthetic Sentinel scene to a semantic query.

The five-minute tour of the stack:

1. generate a synthetic Sentinel-2 scene over a procedural land-cover field,
2. train a small crop classifier on an EuroSAT-like dataset,
3. classify the scene and extract field boundaries,
4. publish the fields into the semantic catalogue as linked data,
5. answer a GeoSPARQL query no classic catalogue could.

Run: ``python examples/quickstart.py``
"""

from repro.apps.foodsecurity import (
    build_crop_classifier,
    classify_scene,
    extract_fields,
    train_crop_classifier,
)
from repro.catalog import SemanticCatalog
from repro.datasets import make_eurosat, stratified_split
from repro.geometry import Polygon
from repro.geosparql import geometry_literal
from repro.ml import accuracy
from repro.raster import landcover_field, sentinel2_scene
from repro.sparql import Variable


def main() -> None:
    # 1. A 64x64 scene (10 m pixels) over a synthetic landscape.
    truth = landcover_field(64, 64, seed=42)
    scene = sentinel2_scene(truth, day_of_year=170, seed=42, cloud_fraction=0.05)
    print(f"scene: {scene.grid.band_count} bands, {scene.shape}, "
          f"{scene.clear_fraction():.0%} cloud free")

    # 2. Train on an EuroSAT-like benchmark (the paper's Challenge C2 data).
    dataset = make_eurosat(samples=600, patch_size=8, seed=7)
    train, test = stratified_split(dataset, test_fraction=0.2, seed=0)
    model = build_crop_classifier(num_classes=dataset.num_classes, seed=1)
    report = train_crop_classifier(model, train, epochs=4, batch_size=32)
    test_accuracy = accuracy(model.predict(test.x), test.y)
    print(f"classifier: loss {report.losses[0]:.2f} -> {report.losses[-1]:.2f}, "
          f"test accuracy {test_accuracy:.0%}")

    # 3. Classify the scene and vectorise the fields.
    crop_map = classify_scene(model, scene, patch_size=8)
    fields = extract_fields(crop_map, scene.grid, min_pixels=32)
    print(f"extracted {len(fields)} fields from the scene")

    # 4. Publish into the semantic catalogue.
    catalog = SemanticCatalog()
    for index, (boundary, crop) in enumerate(fields):
        catalog.add_crop_field(f"demo{index}", dataset.class_names[crop], boundary)
    print(f"catalogue holds {catalog.triple_count} triples")

    # 5. A semantic + spatial question: what grows in the western half of
    # the scene? (A classic catalogue has no idea; the knowledge is in RDF.)
    window = geometry_literal(Polygon.box(0, -640, 320, 0))
    result = catalog.query(
        "SELECT ?crop (COUNT(?f) AS ?n) WHERE { ?f rdf:type eop:CropField . "
        "?f eop:cropType ?crop . "
        "?f geo:hasGeometry ?g . ?g geo:asWKT ?wkt . "
        f'FILTER (geof:sfIntersects(?wkt, "{window.lexical}"^^geo:wktLiteral)) }}'
        " GROUP BY ?crop"
    )
    print("land cover in the western half:")
    for solution in result:
        print(f"   {solution[Variable('crop')]}: "
              f"{solution[Variable('n')]} fields")


if __name__ == "__main__":
    main()
