"""Application A2 end to end: an ice information service for mariners.

The Polar story: a season of Sentinel-1 acquisitions is classified into WMO
stage-of-development maps, concentration and 1 km type maps are produced,
icebergs are detected and tracked, charts are squeezed through a
PCDSS-style restricted link, and the extracted knowledge lands in the
semantic catalogue — ready for the paper's flagship query.

Run: ``python examples/polar_ice_service.py``
"""

import numpy as np

from repro.apps.polar import (
    build_ice_classifier,
    classify_ice_scene,
    detect_icebergs,
    decode_ice_chart,
    encode_ice_chart,
    ice_concentration_map,
    ice_type_map,
    make_ice_training_set,
    map_agreement,
    track_icebergs,
    train_ice_classifier,
)
from repro.apps.polar.icebergs import embed_truth_icebergs
from repro.catalog import SemanticCatalog
from repro.geometry import Polygon
from repro.ml import accuracy, f1_scores
from repro.raster import SeaIce, sea_ice_field, sentinel1_scene
from repro.raster.grid import GeoTransform

SIZE = 96  # pixels at 40 m -> a ~3.8 km demo strip (scaled-down scene)


def main() -> None:
    # Challenge C1/C2: train the sea-ice classifier on synthetic SAR patches.
    dataset = make_ice_training_set(samples=800, seed=0, looks=8)
    model = build_ice_classifier(seed=1)
    report = train_ice_classifier(model, dataset, epochs=5, batch_size=32)
    train_accuracy = accuracy(model.predict(dataset.x[:200]), dataset.y[:200])
    print(f"ice classifier: loss {report.losses[0]:.2f} -> "
          f"{report.losses[-1]:.2f}, accuracy {train_accuracy:.0%}")

    # A winter acquisition with icebergs drifting in the open-water zone.
    catalog = SemanticCatalog()
    transform = GeoTransform(0.0, SIZE * 40.0, 40.0)
    detection_series = []
    for step, day in enumerate((60, 67, 74)):
        truth = sea_ice_field(SIZE, SIZE, seed=5, ice_extent=0.55)
        truth, planted = embed_truth_icebergs(truth, count=6, seed=10 + step)
        scene = sentinel1_scene(
            truth, signatures="ice", looks=8, seed=20 + step,
            day_of_year=day, transform=transform,
        )

        stage_map = classify_ice_scene(model, scene, patch_size=8)
        stage_accuracy = accuracy(stage_map.ravel(), truth.ravel())
        concentration = ice_concentration_map(stage_map, window=8)
        type_product = ice_type_map(stage_map, transform, target_resolution_m=1000.0)

        detections = detect_icebergs(scene, contrast_db=5.0)
        detection_series.append(detections)
        for detection in detections:
            catalog.add_iceberg(
                detection.detection_id, detection.outline,
                f"2017-03-{day - 58:02d}T06:00:00",
            )

        message = encode_ice_chart(stage_map, byte_budget=2048)
        decoded, factor = decode_ice_chart(message)
        fidelity = map_agreement(stage_map, decoded, factor)
        print(f"day {day}: stage accuracy {stage_accuracy:.0%}, "
              f"mean concentration {concentration.mean():.0%}, "
              f"type map {type_product.shape[1]}x{type_product.shape[2]} @1km, "
              f"{len(detections)} bergs, "
              f"PCDSS {len(message)} B (fidelity {fidelity:.0%})")

    tracks = track_icebergs(detection_series, max_drift_m=4000.0)
    long_tracks = [t for t in tracks if len(t) >= 2]
    print(f"tracking: {len(tracks)} tracks, {len(long_tracks)} span >1 scene")

    # Maritime users: combine the latest ice map with SST and wind into a
    # risk surface and plan a safe crossing through the marginal ice zone.
    from repro.apps.polar import maritime_risk_index, plan_route, route_to_geojson

    risk = maritime_risk_index(stage_map, seed=30)
    # From open water in the south to a destination in the marginal ice zone.
    start, goal = (SIZE - 2, 3), (SIZE // 2 + 2, SIZE - 4)
    direct = plan_route(risk, start, goal, risk_weight=0.0)
    safe = plan_route(risk, start, goal, risk_weight=20.0)
    if direct and safe:
        print(f"routing: direct {direct.distance:.0f} cells "
              f"(mean risk {direct.mean_risk:.2f}) vs safe "
              f"{safe.distance:.0f} cells (mean risk {safe.mean_risk:.2f})")
        geojson = route_to_geojson(safe, transform)
        print(f"route advisory: LineString with "
              f"{len(geojson['geometry']['coordinates'])} waypoints, "
              f"max risk {geojson['properties']['max_risk']}")
    else:
        print("routing: no passable route at this ice extent")

    # Challenge C4: the flagship semantic query.
    catalog.add_ice_region(
        "barrier-max", "Norske Oer Ice Barrier",
        Polygon.box(0.0, 0.0, SIZE * 40.0, SIZE * 40.0),
        "2017-03-01T00:00:00",
    )
    count = catalog.count_icebergs_embedded("Norske Oer Ice Barrier", 2017)
    print(f'"How many icebergs were embedded in the Norske Oer Ice Barrier '
          f'at its maximum extent in 2017?" -> {count}')


if __name__ == "__main__":
    main()
