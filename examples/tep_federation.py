"""Federating the two TEP semantic catalogues (Challenges C4 + C3).

The paper: "Two semantic catalogues (one for each TEP) will be developed"
and "this type of federation of TEPs with methods, tools and data
specialised for their topic rather than one broad platform for everything is
seen by us as the way into the future."

This example builds the Food Security TEP and Polar TEP catalogues as
independent endpoints, answers a cross-TEP analytical question through the
Semagrow-style federation engine, and renders a Sextant map plus temporal
frames of the time-evolving holdings.

Run: ``python examples/tep_federation.py``
"""

from datetime import datetime

from repro.catalog import SemanticCatalog
from repro.federation import Endpoint, execute_federated
from repro.geometry import BoundingBox
from repro.raster.products import Mission, ProductArchive
from repro.sextant import LayerStyle, SextantMap, sparql_layer, temporal_frames
from repro.sparql import Variable


def build_tep_catalog(name, extent, mission_mix, seed):
    catalog = SemanticCatalog()
    archive = ProductArchive(
        extent=extent, start=datetime(2017, 1, 1), days=180,
        mission_mix=mission_mix, seed=seed,
    )
    catalog.add_products(archive.generate(80))
    return catalog


def main() -> None:
    # Food Security TEP: optical-heavy, mid-latitude agricultural belt.
    foodsec = build_tep_catalog(
        "foodsec", extent=(5.0, 44.0, 20.0, 52.0),
        mission_mix=[(Mission.SENTINEL2, 0.8), (Mission.SENTINEL1, 0.2)], seed=1,
    )
    # Polar TEP: SAR-heavy, Arctic.
    polar = build_tep_catalog(
        "polar", extent=(5.0, 68.0, 30.0, 78.0),
        mission_mix=[(Mission.SENTINEL1, 0.85), (Mission.SENTINEL3, 0.15)], seed=2,
    )
    print(f"Food Security TEP: {foodsec.triple_count} triples; "
          f"Polar TEP: {polar.triple_count} triples")

    # Cross-TEP federated question: which missions does each TEP hold, and
    # how many March-2017 acquisitions are there across the federation?
    endpoints = [
        Endpoint("foodsec-tep", foodsec.store.graph),
        Endpoint("polar-tep", polar.store.graph),
    ]
    query = (
        "PREFIX eop: <http://extremeearth.eu/product#> "
        "SELECT DISTINCT ?p ?m WHERE { ?p eop:mission ?m . "
        "?p eop:sensingTime ?t . "
        'FILTER (STR(?t) >= "2017-03-01" && STR(?t) < "2017-04-01") }'
    )
    solutions, metrics = execute_federated(query, endpoints)
    by_mission = {}
    for solution in solutions:
        mission = str(solution[Variable("m")])
        by_mission[mission] = by_mission.get(mission, 0) + 1
    print(f"March 2017 across the federation: {len(solutions)} products "
          f"{by_mission} ({metrics.requests} endpoint requests)")

    # Sextant: one map, both TEPs' March footprints as layers.
    footprint_query = (
        "PREFIX eop: <http://extremeearth.eu/product#> "
        "SELECT ?wkt ?m WHERE { ?p eop:mission ?m . ?p geo:hasGeometry ?g . "
        "?g geo:asWKT ?wkt . ?p eop:sensingTime ?t . "
        'FILTER (STR(?t) >= "2017-03-01" && STR(?t) < "2017-04-01") }'
    )
    chart = SextantMap(width=500, height=700, title="TEP holdings, March 2017")
    chart.add_vector_layer(
        "Food Security TEP",
        sparql_layer(foodsec.store, foodsec_prefix(footprint_query), label_variable="m"),
        style=LayerStyle(fill="#b3de69", stroke="#33691e"),
    )
    chart.add_vector_layer(
        "Polar TEP",
        sparql_layer(polar.store, foodsec_prefix(footprint_query), label_variable="m"),
        style=LayerStyle(fill="#80b1d3", stroke="#0d47a1"),
    )
    svg = chart.render(extent=BoundingBox(0.0, 42.0, 35.0, 80.0))
    out_path = "/tmp/tep_holdings.svg"
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(svg)
    print(f"Sextant map written to {out_path} ({len(svg)} bytes)")

    # Temporal frames: the Polar TEP's acquisitions through the season.
    frames_query = (
        "PREFIX eop: <http://extremeearth.eu/product#> "
        "SELECT ?wkt ?t WHERE { ?p geo:hasGeometry ?g . ?g geo:asWKT ?wkt . "
        "?p eop:sensingTime ?t }"
    )
    frames = temporal_frames(
        polar.store,
        foodsec_prefix(frames_query),
        instants=["2017-02-01T00:00:00", "2017-04-01T00:00:00", "2017-06-01T00:00:00"],
        window_days=60.0,  # acquisitions are instants; show a 2-month window
    )
    print(f"rendered {len(frames)} temporal frames of Polar TEP holdings:")
    for instant, frame_svg in frames:
        print(f"   {instant}: {len(frame_svg)} bytes of SVG")


def foodsec_prefix(query: str) -> str:
    return (
        "PREFIX geo: <http://www.opengis.net/ont/geosparql#> "
        "PREFIX geof: <http://www.opengis.net/def/function/geosparql/> "
        + query
    )


if __name__ == "__main__":
    main()
