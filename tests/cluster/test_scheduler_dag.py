"""Scheduler DAG dependencies, attempt hooks, cancellation, ticket audit (E25).

Pins the semantics the distributed SPARQL engine is built on:

* ``depends_on`` gates dispatch on dependency *completion*, and terminal
  non-completion cascades abandonment instead of deadlocking the drain;
* ``on_attempt_end`` fires per attempt — including attempts the injector
  fails afterwards (the zombie-commit model) and speculative twins — so
  output commit must be idempotent;
* ``on_abandon`` fires exactly once on terminal non-completion;
* ``cancel_task`` withdraws queued and running tasks without firing
  ``on_complete``;
* admission tickets are released exactly once on *every* terminal path,
  audited by ``tickets_issued == tickets_released`` — including under the
  speculation + crash + injected-failure race (the leak audit the E25
  issue called for).
"""

import pytest

from repro.cluster import ClusterSpec, Scheduler
from repro.errors import ClusterError
from repro.faults import FaultInjector, FaultPlan, NodeCrash, Straggler
from repro.resilience.admission import AdmissionController


def spec(**kwargs):
    defaults = dict(node_count=4, cpu_slots_per_node=1)
    defaults.update(kwargs)
    return ClusterSpec(**defaults)


class AlwaysFails:
    """Injector stub: every attempt of every task fails."""

    def node_crash_time(self, node_id):
        return None

    def straggler_factor(self, node_id):
        return 1.0

    def task_fails(self, task_id):
        return True


class FailsTask:
    """Injector stub failing every attempt of one task id."""

    def __init__(self, task_id):
        self.target = task_id

    def node_crash_time(self, node_id):
        return None

    def straggler_factor(self, node_id):
        return 1.0

    def task_fails(self, task_id):
        return task_id == self.target


class TestDependencies:
    def test_dependent_waits_for_completion(self):
        scheduler = Scheduler(spec())
        order = []
        first = scheduler.make_task(
            2.0, on_complete=lambda t: order.append("first")
        )
        second = scheduler.make_task(
            1.0, on_complete=lambda t: order.append("second")
        )
        second.depends_on = {first.task_id}
        # Submit the dependent first: it must still wait.
        scheduler.submit(second)
        scheduler.submit(first)
        scheduler.run()
        assert order == ["first", "second"]
        assert second.started_at >= first.finished_at

    def test_diamond_runs_in_topological_order(self):
        scheduler = Scheduler(spec())
        finished = []
        source = scheduler.make_task(1.0, on_complete=lambda t: finished.append("s"))
        left = scheduler.make_task(1.0, on_complete=lambda t: finished.append("l"))
        right = scheduler.make_task(1.0, on_complete=lambda t: finished.append("r"))
        sink = scheduler.make_task(1.0, on_complete=lambda t: finished.append("k"))
        left.depends_on = {source.task_id}
        right.depends_on = {source.task_id}
        sink.depends_on = {left.task_id, right.task_id}
        scheduler.submit_all([sink, right, left, source])
        scheduler.run()
        assert finished[0] == "s" and finished[-1] == "k"
        assert set(finished) == {"s", "l", "r", "k"}

    def test_abandoned_dependency_cascades(self):
        scheduler = Scheduler(
            spec(), injector=FailsTask(0), max_retries=1
        )
        abandoned = []
        doomed = scheduler.make_task(1.0)  # task_id 0: always fails
        doomed.on_abandon = lambda t: abandoned.append(t.task_id)
        dependent = scheduler.make_task(1.0)
        dependent.on_abandon = lambda t: abandoned.append(t.task_id)
        grandchild = scheduler.make_task(1.0)
        grandchild.on_abandon = lambda t: abandoned.append(t.task_id)
        dependent.depends_on = {doomed.task_id}
        grandchild.depends_on = {dependent.task_id}
        scheduler.submit_all([doomed, dependent, grandchild])
        scheduler.run()
        # Each abandons exactly once, in cascade order.
        assert abandoned == [doomed.task_id, dependent.task_id, grandchild.task_id]
        assert scheduler.metrics.tasks_abandoned == 3
        assert scheduler.metrics.tasks_completed == 0


class TestAttemptHooks:
    def test_attempt_end_fires_on_failed_attempts(self):
        """The zombie-commit model: a failed attempt still reports, flagged."""
        scheduler = Scheduler(spec(), injector=FailsTask(0), max_retries=2)
        attempts = []
        task = scheduler.make_task(1.0)
        task.on_attempt_end = lambda t, failed: attempts.append(failed)
        scheduler.submit(task)
        scheduler.run()
        # initial + 2 retries, every one reported, every one failed.
        assert attempts == [True, True, True]

    def test_attempt_end_fires_for_speculative_twin(self):
        plan = FaultPlan(stragglers=(Straggler(node_id=0, factor=10.0),))
        scheduler = Scheduler(
            spec(node_count=2),
            injector=FaultInjector(plan),
            speculation=True,
            speculation_factor=1.5,
        )
        attempts = []
        # Fill node 0 (the straggler) so one task crawls and gets a backup.
        tasks = [scheduler.make_task(2.0) for _ in range(2)]
        for task in tasks:
            task.on_attempt_end = lambda t, failed: attempts.append(
                (t.task_id, failed)
            )
        scheduler.submit_all(tasks)
        metrics = scheduler.run()
        assert metrics.speculative_launches >= 1
        # The speculated task reported at least twice (winner + loser or
        # cancelled sibling) — or the loser was cancelled mid-flight, in
        # which case only completed attempts report. Either way every
        # reported attempt is a clean (unfailed) one here.
        assert len(attempts) >= len(tasks)
        assert all(not failed for _, failed in attempts)


class TestCancellation:
    def test_cancel_queued_task(self):
        scheduler = Scheduler(spec(node_count=1, cpu_slots_per_node=1))
        completions = []
        blocker = scheduler.make_task(5.0)
        queued = scheduler.make_task(1.0, on_complete=lambda t: completions.append(t))
        scheduler.submit_all([blocker, queued])
        assert scheduler.cancel_task(queued) is True
        scheduler.run()
        assert completions == []
        assert scheduler.metrics.tasks_cancelled == 1
        assert scheduler.metrics.tasks_completed == 1  # the blocker

    def test_cancel_running_task(self):
        scheduler = Scheduler(spec(node_count=1))
        task = scheduler.make_task(5.0)
        scheduler.submit(task)
        scheduler.simulation.run(until=1.0)
        assert task.started_at is not None and task.finished_at is None
        assert scheduler.cancel_task(task) is True
        scheduler.run()
        assert task.finished_at is None
        assert scheduler.metrics.tasks_cancelled == 1

    def test_cancel_is_idempotent_and_skips_finished(self):
        scheduler = Scheduler(spec())
        task = scheduler.make_task(1.0)
        scheduler.submit(task)
        scheduler.run()
        assert scheduler.cancel_task(task) is False
        fresh = scheduler.make_task(1.0)
        scheduler.submit(fresh)
        assert scheduler.cancel_task(fresh) is True
        assert scheduler.cancel_task(fresh) is False

    def test_cancel_cascades_to_dependents(self):
        scheduler = Scheduler(spec(node_count=1, cpu_slots_per_node=1))
        abandoned = []
        blocker = scheduler.make_task(5.0)
        parent = scheduler.make_task(1.0)
        child = scheduler.make_task(1.0)
        child.depends_on = {parent.task_id}
        child.on_abandon = lambda t: abandoned.append(t.task_id)
        scheduler.submit_all([blocker, parent, child])
        scheduler.cancel_task(parent)
        scheduler.run()
        assert abandoned == [child.task_id]
        assert scheduler.metrics.tasks_cancelled == 1
        assert scheduler.metrics.tasks_abandoned == 1


class TestTicketAudit:
    """Exactly-once admission-ticket release on every terminal path."""

    def _audit(self, scheduler):
        assert scheduler.tickets_issued == scheduler.tickets_released
        assert scheduler._admission is None or (
            scheduler._admission._in_flight == 0
        )

    def test_completion_releases(self):
        admission = AdmissionController(max_in_flight=16, max_queue=16)
        scheduler = Scheduler(spec(), admission=admission)
        scheduler.submit_all([scheduler.make_task(1.0) for _ in range(8)])
        scheduler.run()
        assert scheduler.tickets_issued == 8
        self._audit(scheduler)

    def test_abandonment_releases(self):
        admission = AdmissionController(max_in_flight=16, max_queue=16)
        scheduler = Scheduler(
            spec(), injector=AlwaysFails(), max_retries=1, admission=admission
        )
        scheduler.submit_all([scheduler.make_task(1.0) for _ in range(4)])
        scheduler.run()
        assert scheduler.metrics.tasks_abandoned == 4
        self._audit(scheduler)

    def test_cancellation_releases(self):
        admission = AdmissionController(max_in_flight=16, max_queue=16)
        scheduler = Scheduler(
            spec(node_count=1, cpu_slots_per_node=1), admission=admission
        )
        tasks = [scheduler.make_task(2.0) for _ in range(4)]
        scheduler.submit_all(tasks)
        for task in tasks[1:]:
            scheduler.cancel_task(task)
        scheduler.run()
        assert scheduler.tickets_issued == 4
        self._audit(scheduler)

    def test_dependency_cascade_releases(self):
        admission = AdmissionController(max_in_flight=16, max_queue=16)
        scheduler = Scheduler(
            spec(), injector=FailsTask(0), max_retries=0, admission=admission
        )
        doomed = scheduler.make_task(1.0)
        child = scheduler.make_task(1.0)
        child.depends_on = {doomed.task_id}
        scheduler.submit_all([doomed, child])
        scheduler.run()
        assert scheduler.tickets_issued == 2
        self._audit(scheduler)

    @pytest.mark.parametrize("seed", range(12))
    def test_no_leak_under_speculation_crash_race(self, seed):
        """The E25 audit: speculation + crashes + injected failures +
        blacklisting together must never double-release or leak a ticket."""
        plan = FaultPlan.chaos(
            seed=seed,
            node_count=4,
            node_crash_prob=0.4,
            straggler_prob=0.4,
            task_failure_rate=0.2,
            horizon_s=30.0,
        )
        admission = AdmissionController(max_in_flight=64, max_queue=64)
        scheduler = Scheduler(
            spec(),
            injector=FaultInjector(plan),
            speculation=True,
            speculation_factor=1.5,
            blacklist_after=3,
            max_retries=3,
            admission=admission,
        )
        tasks = [scheduler.make_task(2.0) for _ in range(24)]
        scheduler.submit_all(tasks)
        try:
            scheduler.run()
        except ClusterError:
            # All nodes dead with work queued: release what remains by
            # withdrawing the stranded tasks, exactly like the E25 driver.
            for task in tasks:
                if task.finished_at is None:
                    scheduler.cancel_task(task)
        assert scheduler.tickets_issued == 24
        self._audit(scheduler)
