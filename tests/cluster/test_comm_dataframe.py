"""Communication model and parallel collection tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ClusterError
from repro.cluster import (
    ClusterSpec,
    NetworkModel,
    SimContext,
    broadcast_time_s,
    parameter_server_time_s,
    ring_allreduce_time_s,
)


class TestCommModels:
    net = NetworkModel(latency_s=1e-4, bandwidth_bps=1e9)

    def test_single_worker_free(self):
        assert ring_allreduce_time_s(1, 1e6, self.net) == 0.0
        assert broadcast_time_s(1, 1e6, self.net) == 0.0

    def test_ring_bandwidth_term_saturates(self):
        # Per-step bytes term approaches 2*M*beta as n grows.
        small = ring_allreduce_time_s(2, 1e8, NetworkModel(0.0, 1e9))
        large = ring_allreduce_time_s(64, 1e8, NetworkModel(0.0, 1e9))
        assert small == pytest.approx(1e8 / 1e9)  # 2*(1/2)*M*beta
        assert large < 2 * 1e8 / 1e9 * 1.05

    def test_ring_beats_broadcast_at_scale(self):
        for workers in (4, 8, 16, 32):
            assert ring_allreduce_time_s(workers, 1e8, self.net) < broadcast_time_s(
                workers, 1e8, self.net
            )

    def test_ps_scales_with_servers(self):
        one = parameter_server_time_s(16, 1e8, servers=1, network=self.net)
        four = parameter_server_time_s(16, 1e8, servers=4, network=self.net)
        assert four < one / 2

    def test_ps_server_bottleneck_grows_with_workers(self):
        t8 = parameter_server_time_s(8, 1e8, servers=1, network=self.net)
        t16 = parameter_server_time_s(16, 1e8, servers=1, network=self.net)
        assert t16 > t8 * 1.8

    def test_ring_vs_ps_crossover(self):
        # Latency-dominated regime with a full server tier: PS wins (two
        # hops vs 2(n-1) ring steps). Bandwidth-dominated with one server:
        # ring wins.
        latency_net = NetworkModel(latency_s=1e-3, bandwidth_bps=1e9)
        ps_full_tier = parameter_server_time_s(64, 1e6, servers=64, network=latency_net)
        assert ps_full_tier < ring_allreduce_time_s(64, 1e6, latency_net)
        assert ring_allreduce_time_s(32, 1e8, self.net) < parameter_server_time_s(
            32, 1e8, servers=1, network=self.net
        )

    def test_ps_single_worker_uses_general_formula(self):
        # Regression: a ``workers == 1`` special case ignored ``servers``,
        # so one worker against a 4-server tier cost the same as against
        # one server, and adding a second worker could *reduce* the time.
        t1 = parameter_server_time_s(1, 1e8, servers=4, network=self.net)
        expected = 2 * self.net.latency_s + 2 * (1e8 / 4) / 1e9
        assert t1 == pytest.approx(expected)
        t2 = parameter_server_time_s(2, 1e8, servers=4, network=self.net)
        assert t2 > t1

    def test_ps_monotone_in_servers_at_one_worker(self):
        times = [
            parameter_server_time_s(1, 1e8, servers=s, network=self.net)
            for s in (1, 2, 4, 8, 16)
        ]
        assert times == sorted(times, reverse=True)
        assert times[-1] < times[0]

    def test_validation(self):
        with pytest.raises(ClusterError):
            ring_allreduce_time_s(0, 1e6)
        with pytest.raises(ClusterError):
            parameter_server_time_s(4, 1e6, servers=0)
        with pytest.raises(ClusterError):
            broadcast_time_s(4, -1)
        with pytest.raises(ClusterError):
            NetworkModel(bandwidth_bps=0)

    @given(workers=st.integers(2, 64), mbytes=st.floats(1e3, 1e9))
    @settings(max_examples=50)
    def test_ring_monotone_in_message_size(self, workers, mbytes):
        assert ring_allreduce_time_s(workers, mbytes, self.net) < ring_allreduce_time_s(
            workers, mbytes * 2, self.net
        )


class TestParallelCollection:
    def context(self, **kwargs):
        return SimContext(ClusterSpec(node_count=4, cpu_slots_per_node=2), **kwargs)

    def test_map_collect(self):
        ctx = self.context()
        data = ctx.parallelize(range(100))
        assert data.map(lambda x: x * 2).collect() == [x * 2 for x in range(100)]

    def test_filter(self):
        ctx = self.context()
        result = ctx.parallelize(range(20)).filter(lambda x: x % 2 == 0).collect()
        assert result == list(range(0, 20, 2))

    def test_count(self):
        ctx = self.context()
        assert ctx.parallelize(range(57)).count() == 57

    def test_reduce(self):
        ctx = self.context()
        assert ctx.parallelize(range(101)).reduce(lambda a, b: a + b) == 5050

    def test_reduce_empty_raises(self):
        ctx = self.context()
        with pytest.raises(ClusterError):
            ctx.parallelize([]).reduce(lambda a, b: a + b)

    def test_map_partitions(self):
        ctx = self.context()
        result = ctx.parallelize(range(10), partitions=2).map_partitions(
            lambda part: [sum(part)]
        )
        assert sum(result.collect()) == 45

    def test_group_by_key(self):
        ctx = self.context()
        pairs = [(i % 3, i) for i in range(12)]
        grouped = dict(ctx.parallelize(pairs).group_by_key().collect())
        assert sorted(grouped[0]) == [0, 3, 6, 9]
        assert sorted(grouped[2]) == [2, 5, 8, 11]

    def test_simulated_time_accumulates(self):
        ctx = self.context()
        data = ctx.parallelize(range(1000))
        before = ctx.simulated_time_s
        data.map(lambda x: x)
        assert ctx.simulated_time_s > before
        assert ctx.stages_run == 1
        assert ctx.tasks_run == data.partition_count

    def test_more_nodes_less_simulated_time(self):
        def sim_time(nodes):
            ctx = SimContext(
                ClusterSpec(node_count=nodes, cpu_slots_per_node=1),
                task_overhead_s=0.0,
                per_item_cost_s=1e-3,
            )
            ctx.parallelize(range(1024), partitions=32).map(lambda x: x)
            return ctx.simulated_time_s

        assert sim_time(8) < sim_time(1) / 4

    def test_partition_count_bounds(self):
        ctx = self.context()
        assert ctx.parallelize(range(3), partitions=10).partition_count <= 3
        assert ctx.parallelize([], partitions=4).partition_count == 1

    def test_cost_validation(self):
        with pytest.raises(ClusterError):
            SimContext(task_overhead_s=-1)
