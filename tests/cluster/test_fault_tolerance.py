"""Scheduler fault tolerance (E17): crashes, speculation, blacklisting.

Also pins the retry-accounting semantics: a task abandoned after N retries
counts exactly N ``task_failures`` and exactly 1 ``tasks_abandoned``.
"""

import pytest

from repro.cluster import ClusterSpec, Scheduler
from repro.faults import FaultInjector, FaultPlan, NodeCrash, Straggler


def spec(**kwargs):
    defaults = dict(node_count=4, cpu_slots_per_node=1)
    defaults.update(kwargs)
    return ClusterSpec(**defaults)


def run_tasks(scheduler, count=8, work_s=2.0):
    scheduler.submit_all([scheduler.make_task(work_s) for _ in range(count)])
    return scheduler.run()


class AlwaysFails:
    """Injector stub: every attempt of every task fails.

    ``FaultPlan`` rejects ``task_failure_rate=1.0`` (the scheduler could
    never finish), so the regression test drives the verdict directly.
    """

    def node_crash_time(self, node_id):
        return None

    def straggler_factor(self, node_id):
        return 1.0

    def task_fails(self, task_id):
        return True


class TestNodeCrash:
    def test_crash_recovery_requeues_and_completes(self):
        plan = FaultPlan(node_crashes=(NodeCrash(node_id=0, at_s=1.0),))
        scheduler = Scheduler(spec(), injector=FaultInjector(plan))
        metrics = run_tasks(scheduler, count=8, work_s=2.0)
        assert metrics.node_crashes == 1
        assert metrics.tasks_completed == 8
        assert metrics.tasks_lost == 0
        # The re-run attempt makes the run longer than the fault-free one.
        baseline = run_tasks(Scheduler(spec()), count=8, work_s=2.0)
        assert metrics.makespan_s > baseline.makespan_s

    def test_without_recovery_work_is_lost(self):
        plan = FaultPlan(node_crashes=(NodeCrash(node_id=0, at_s=1.0),))
        scheduler = Scheduler(
            spec(), injector=FaultInjector(plan), crash_recovery=False
        )
        metrics = run_tasks(scheduler, count=8, work_s=2.0)
        assert metrics.tasks_lost > 0
        assert metrics.tasks_completed + metrics.tasks_lost == 8

    def test_crashed_node_receives_no_new_work(self):
        plan = FaultPlan(node_crashes=(NodeCrash(node_id=2, at_s=0.5),))
        scheduler = Scheduler(spec(), injector=FaultInjector(plan))
        tasks = [scheduler.make_task(1.0) for _ in range(12)]
        scheduler.submit_all(tasks)
        scheduler.run()
        late_runs = [t for t in tasks if t.started_at > 0.5 and t.ran_on == 2]
        assert late_runs == []

    def test_all_nodes_crashing_leaves_queue(self):
        plan = FaultPlan(
            node_crashes=tuple(NodeCrash(n, at_s=0.5) for n in range(4))
        )
        scheduler = Scheduler(spec(), injector=FaultInjector(plan))
        scheduler.submit_all([scheduler.make_task(2.0) for _ in range(4)])
        with pytest.raises(Exception):
            scheduler.run()  # nowhere left to run the re-queued tasks


class TestSpeculation:
    def test_straggler_triggers_backup_copy(self):
        plan = FaultPlan(stragglers=(Straggler(node_id=0, factor=8.0),))
        scheduler = Scheduler(
            spec(), injector=FaultInjector(plan), speculation=True
        )
        metrics = run_tasks(scheduler, count=4, work_s=4.0)
        assert metrics.speculative_launches >= 1
        assert metrics.tasks_completed == 4

        slow = Scheduler(spec(), injector=FaultInjector(plan), speculation=False)
        slow_metrics = run_tasks(slow, count=4, work_s=4.0)
        assert metrics.makespan_s < slow_metrics.makespan_s

    def test_no_speculation_without_stragglers(self):
        scheduler = Scheduler(
            spec(),
            injector=FaultInjector(FaultPlan.none()),
            speculation=True,
        )
        metrics = run_tasks(scheduler)
        assert metrics.speculative_launches == 0

    def test_winner_recorded_once(self):
        plan = FaultPlan(stragglers=(Straggler(node_id=0, factor=8.0),))
        scheduler = Scheduler(
            spec(), injector=FaultInjector(plan), speculation=True
        )
        tasks = [scheduler.make_task(4.0) for _ in range(4)]
        scheduler.submit_all(tasks)
        metrics = scheduler.run()
        assert metrics.tasks_completed == len(tasks)
        for task in tasks:
            assert task.finished_at is not None
            assert task.ran_on != 0 or task.finished_at <= 4.0 * 8.0


class TestBlacklisting:
    def test_flaky_node_is_blacklisted(self):
        # Node 0 is the only straggler AND every task on it fails... easier:
        # drive failures via rate high enough that node 0 accrues them, with
        # blacklisting after 2 failures.
        plan = FaultPlan(seed=3, task_failure_rate=0.4)
        scheduler = Scheduler(
            spec(),
            injector=FaultInjector(plan),
            max_retries=10,
            blacklist_after=2,
        )
        metrics = run_tasks(scheduler, count=20, work_s=1.0)
        assert metrics.tasks_completed == 20
        assert metrics.nodes_blacklisted >= 1

    def test_never_blacklists_last_node(self):
        scheduler = Scheduler(
            ClusterSpec(node_count=1, cpu_slots_per_node=1),
            injector=FaultInjector(FaultPlan(seed=3, task_failure_rate=0.5)),
            max_retries=50,
            blacklist_after=1,
        )
        metrics = run_tasks(scheduler, count=5, work_s=1.0)
        assert metrics.nodes_blacklisted == 0
        assert metrics.tasks_completed == 5


class TestDeterminism:
    def chaos_metrics(self):
        plan = FaultPlan.chaos(
            seed=11,
            node_count=4,
            node_crash_prob=0.25,
            horizon_s=10.0,
            straggler_prob=0.25,
            task_failure_rate=0.2,
        )
        scheduler = Scheduler(
            spec(),
            injector=FaultInjector(plan),
            speculation=True,
            max_retries=10,
        )
        return run_tasks(scheduler, count=16, work_s=1.5)

    def test_same_plan_same_timeline(self):
        assert self.chaos_metrics().as_dict() == self.chaos_metrics().as_dict()

    def test_none_plan_matches_no_injector(self):
        """FaultPlan.none() must be indistinguishable from injector=None."""
        with_injector = run_tasks(
            Scheduler(spec(), injector=FaultInjector(FaultPlan.none()))
        )
        without = run_tasks(Scheduler(spec()))
        assert with_injector.as_dict() == without.as_dict()


class TestRetryAccounting:
    """Regression: N retries => N failures + exactly 1 abandonment."""

    @pytest.mark.parametrize("max_retries", [0, 1, 3])
    def test_abandonment_counts(self, max_retries):
        scheduler = Scheduler(
            ClusterSpec(node_count=1, cpu_slots_per_node=1),
            injector=AlwaysFails(),
            max_retries=max_retries,
        )
        task = scheduler.make_task(1.0)
        scheduler.submit(task)
        metrics = scheduler.run()
        assert metrics.tasks_abandoned == 1
        assert metrics.task_failures == max_retries
        assert task.attempts == max_retries + 1
        assert metrics.tasks_completed == 0
        assert task.finished_at is None

    def test_mixed_workload_totals(self):
        # Legacy failure_rate path must obey the same accounting: every
        # failed attempt either retried (a failure) or final (an abandonment).
        scheduler = Scheduler(
            spec(), failure_rate=0.6, max_retries=2, failure_seed=9
        )
        metrics = run_tasks(scheduler, count=30, work_s=0.5)
        assert metrics.tasks_completed + metrics.tasks_abandoned == 30
        assert metrics.tasks_abandoned > 0
        # Each abandoned task contributed exactly max_retries failures plus
        # its abandonment; completed tasks contribute 0..max_retries each.
        assert metrics.task_failures >= metrics.tasks_abandoned * 2
