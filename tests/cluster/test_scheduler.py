"""Scheduler and resource tests."""

import pytest

from repro.errors import ClusterError
from repro.cluster import ClusterSpec, Node, Scheduler


class TestResources:
    def test_node_validation(self):
        with pytest.raises(ClusterError):
            Node(0, cpu_slots=0, gpu_slots=0)
        with pytest.raises(ClusterError):
            Node(0, cpu_slots=-1)
        with pytest.raises(ClusterError):
            Node(0, speed=0)

    def test_spec_builds_nodes(self):
        spec = ClusterSpec(node_count=3, cpu_slots_per_node=2, gpu_slots_per_node=1)
        nodes = spec.build_nodes()
        assert len(nodes) == 3
        assert all(n.cpu_slots == 2 and n.gpu_slots == 1 for n in nodes)

    def test_transfer_time(self):
        spec = ClusterSpec(network_bandwidth_bps=1e9, network_latency_s=1e-3)
        assert spec.transfer_time_s(1e9) == pytest.approx(1.001)
        with pytest.raises(ClusterError):
            spec.transfer_time_s(-1)

    def test_place_partitions(self):
        spec = ClusterSpec(node_count=3)
        nodes = spec.build_nodes()
        placement = spec.place_partitions(["a", "b", "c", "d"], nodes, copies=2)
        assert placement["a"] == [0, 1]
        assert placement["d"] == [0, 1]
        assert "a" in nodes[0].local_data and "a" in nodes[1].local_data


class TestScheduler:
    def test_single_task(self):
        scheduler = Scheduler(ClusterSpec(node_count=1, cpu_slots_per_node=1))
        task = scheduler.make_task(work_s=2.0)
        scheduler.submit(task)
        metrics = scheduler.run()
        assert metrics.tasks_completed == 1
        assert metrics.makespan_s == pytest.approx(2.0)
        assert task.ran_local is True

    def test_parallel_speedup(self):
        def makespan(nodes):
            scheduler = Scheduler(ClusterSpec(node_count=nodes, cpu_slots_per_node=1))
            scheduler.submit_all([scheduler.make_task(1.0) for _ in range(8)])
            return scheduler.run().makespan_s

        assert makespan(1) == pytest.approx(8.0)
        assert makespan(4) == pytest.approx(2.0)
        assert makespan(8) == pytest.approx(1.0)

    def test_slots_limit_concurrency(self):
        scheduler = Scheduler(ClusterSpec(node_count=1, cpu_slots_per_node=2))
        scheduler.submit_all([scheduler.make_task(1.0) for _ in range(4)])
        assert scheduler.run().makespan_s == pytest.approx(2.0)

    def test_node_speed(self):
        scheduler = Scheduler(ClusterSpec(node_count=1, node_speed=2.0))
        scheduler.submit(scheduler.make_task(4.0))
        assert scheduler.run().makespan_s == pytest.approx(2.0)

    def test_gpu_tasks_need_gpu_slots(self):
        scheduler = Scheduler(ClusterSpec(node_count=1, gpu_slots_per_node=0))
        scheduler.submit(scheduler.make_task(1.0, kind="gpu"))
        with pytest.raises(ClusterError):
            scheduler.run()

    def test_gpu_and_cpu_tasks_coexist(self):
        scheduler = Scheduler(
            ClusterSpec(node_count=1, cpu_slots_per_node=1, gpu_slots_per_node=1)
        )
        scheduler.submit_all(
            [scheduler.make_task(1.0), scheduler.make_task(1.0, kind="gpu")]
        )
        assert scheduler.run().makespan_s == pytest.approx(1.0)

    def test_on_complete_callback(self):
        scheduler = Scheduler(ClusterSpec())
        finished = []
        scheduler.submit(
            scheduler.make_task(1.0, on_complete=lambda t: finished.append(t.task_id))
        )
        scheduler.run()
        assert finished == [0]

    def test_task_validation(self):
        scheduler = Scheduler(ClusterSpec())
        with pytest.raises(ClusterError):
            scheduler.make_task(-1.0)
        with pytest.raises(ClusterError):
            scheduler.make_task(1.0, kind="tpu")


class TestLocality:
    def spec(self):
        return ClusterSpec(
            node_count=2,
            cpu_slots_per_node=1,
            network_bandwidth_bps=1e6,  # slow network: remote reads hurt
            network_latency_s=0.0,
        )

    def test_local_task_runs_on_preferred_node(self):
        scheduler = Scheduler(self.spec())
        task = scheduler.make_task(1.0, input_bytes=1e6, preferred_nodes={1})
        scheduler.submit(task)
        scheduler.run()
        assert task.ran_on == 1
        assert task.ran_local is True

    def test_remote_task_pays_transfer(self):
        # Both tasks prefer node 0; one must run remote after the wait.
        scheduler = Scheduler(self.spec(), locality_wait_s=0.0)
        tasks = [
            scheduler.make_task(1.0, input_bytes=1e6, preferred_nodes={0})
            for _ in range(2)
        ]
        scheduler.submit_all(tasks)
        metrics = scheduler.run()
        assert metrics.locality_misses == 1
        assert metrics.bytes_transferred == pytest.approx(1e6)
        # Remote task: 1s work + 1s transfer.
        assert metrics.makespan_s == pytest.approx(2.0)

    def test_delay_scheduling_waits_for_local_slot(self):
        # With a generous wait, the second task waits for node 0 to free
        # (total 2.0) instead of paying a 1.0 transfer to run remote at 1.0.
        scheduler = Scheduler(self.spec(), locality_wait_s=10.0)
        tasks = [
            scheduler.make_task(1.0, input_bytes=1e6, preferred_nodes={0})
            for _ in range(2)
        ]
        scheduler.submit_all(tasks)
        metrics = scheduler.run()
        assert metrics.locality_rate == 1.0
        assert metrics.bytes_transferred == 0.0
        assert metrics.makespan_s == pytest.approx(2.0)

    def test_wait_expiry_wakes_dispatcher(self):
        # One busy preferred node, short wait: the queued task must start
        # remotely at the wait expiry, not stall forever.
        scheduler = Scheduler(self.spec(), locality_wait_s=0.5)
        blocker = scheduler.make_task(10.0, preferred_nodes={0})
        waiter = scheduler.make_task(1.0, input_bytes=0.0, preferred_nodes={0})
        scheduler.submit_all([blocker, waiter])
        metrics = scheduler.run()
        assert waiter.ran_on == 1
        assert waiter.started_at == pytest.approx(0.5)
        assert metrics.makespan_s == pytest.approx(10.0)

    def test_locality_rate_improves_with_wait(self):
        def rate(wait):
            scheduler = Scheduler(self.spec(), locality_wait_s=wait)
            tasks = [
                scheduler.make_task(0.1, input_bytes=1e5, preferred_nodes={0})
                for _ in range(10)
            ]
            scheduler.submit_all(tasks)
            return scheduler.run().locality_rate

        assert rate(10.0) > rate(0.0)
