"""Discrete-event simulation core tests."""

import pytest

from repro.errors import ClusterError
from repro.cluster import Simulation


class TestSimulation:
    def test_events_run_in_time_order(self):
        sim = Simulation()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_simultaneous_events_fifo(self):
        sim = Simulation()
        order = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: order.append(n))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_callbacks_can_schedule(self):
        sim = Simulation()
        times = []

        def tick():
            times.append(sim.now)
            if sim.now < 3:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        assert times == [1.0, 2.0, 3.0]

    def test_run_until(self):
        sim = Simulation()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1, 5]

    def test_cancel(self):
        sim = Simulation()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        Simulation.cancel(event)
        sim.run()
        assert fired == []
        assert sim.pending == 0

    def test_negative_delay_rejected(self):
        sim = Simulation()
        with pytest.raises(ClusterError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulation()
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(ClusterError):
            sim.schedule_at(1.0, lambda: None)

    def test_event_budget(self):
        sim = Simulation()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        with pytest.raises(ClusterError):
            sim.run(max_events=100)
