"""Failure-injection tests: datanode loss and task retries."""

import pytest

from repro.errors import ClusterError, StorageError
from repro.cluster import ClusterSpec, Scheduler
from repro.hopsfs import BlockManager


class TestDataNodeFailure:
    def make_manager(self):
        manager = BlockManager(node_count=4, block_size=100, replication=2)
        for _ in range(10):
            manager.allocate_file(100)
        return manager

    def test_fail_node_reports_affected(self):
        manager = self.make_manager()
        affected = manager.fail_node(0)
        assert affected == len(manager.nodes[0].blocks) or affected > 0
        assert not manager.nodes[0].alive
        assert manager.nodes[0].used_bytes == 0

    def test_under_replicated_after_failure(self):
        manager = self.make_manager()
        manager.fail_node(1)
        under = manager.under_replicated_blocks()
        assert len(under) > 0
        assert manager.lost_blocks() == []  # replication 2 survives one loss

    def test_re_replication_restores(self):
        manager = self.make_manager()
        manager.fail_node(2)
        created = manager.re_replicate()
        assert created > 0
        assert manager.under_replicated_blocks() == []
        # All replicas live on alive nodes.
        for block_id in range(manager.block_count):
            for owner in manager.block_locations(block_id):
                assert manager.nodes[owner].alive

    def test_new_allocations_avoid_dead_nodes(self):
        manager = self.make_manager()
        manager.fail_node(3)
        block_ids = manager.allocate_file(100)
        for block_id in block_ids:
            assert 3 not in manager.block_locations(block_id)

    def test_double_failure_loses_data(self):
        manager = self.make_manager()
        # Kill two nodes: some blocks had both replicas there.
        manager.fail_node(0)
        manager.fail_node(1)
        lost = manager.lost_blocks()
        assert len(lost) > 0
        # Re-replication skips lost blocks but fixes the rest.
        manager.re_replicate()
        assert set(manager.lost_blocks()) == set(lost)
        under = set(manager.under_replicated_blocks())
        assert under == set(lost)

    def test_failure_then_recovery_cycle(self):
        manager = self.make_manager()
        manager.fail_node(0)
        manager.re_replicate()
        # Survivors now hold everything; kill another node and recover again.
        manager.fail_node(1)
        manager.re_replicate()
        assert manager.under_replicated_blocks() == []
        assert manager.lost_blocks() == []

    def test_validation(self):
        manager = self.make_manager()
        with pytest.raises(StorageError):
            manager.fail_node(99)
        manager.fail_node(0)
        with pytest.raises(StorageError):
            manager.fail_node(0)

    def test_re_replicate_capacity_exhausted(self):
        # 3 nodes x 200 B, three 100 B blocks at replication 2 = every byte
        # used; killing a node leaves under-replicated blocks with no
        # live capacity to copy to. The sweep must not raise: unplaceable
        # blocks are skipped and reported so the rest still get repaired.
        manager = BlockManager(
            node_count=3, node_capacity_bytes=200, block_size=100, replication=2
        )
        for _ in range(3):
            manager.allocate_file(100)
        manager.fail_node(0)
        under = manager.under_replicated_blocks()
        assert under
        assert not manager.lost_blocks()
        created = manager.re_replicate()  # nowhere to put the copies
        assert created == 0
        assert sorted(manager.unplaceable_blocks) == sorted(under)

    def test_re_replicate_skips_unplaceable_and_repairs_rest(self):
        # Regression for the sweep-aborting bug: one oversized block that
        # cannot be re-placed used to raise out of re_replicate() and leave
        # every later block under-replicated. Node capacities are sized so
        # the big block's lost replica fits nowhere, while the small blocks'
        # do.
        manager = BlockManager(
            node_count=4, node_capacity_bytes=1000, block_size=400,
            replication=2,
        )
        big = manager.allocate_file(400)[0]
        smalls = [manager.allocate_file(50)[0] for _ in range(4)]
        # Fill the nodes NOT holding the big block so its copy can't land.
        big_owners = set(manager.block_locations(big))
        for node in manager.nodes:
            if node.node_id not in big_owners:
                node.used_bytes = node.capacity_bytes - 100
        victim = next(iter(big_owners))
        manager.fail_node(victim)
        assert big in manager.under_replicated_blocks()
        created = manager.re_replicate()
        # The big block is reported, not raised, and the small blocks the
        # victim also held are all back at full replication.
        assert manager.unplaceable_blocks == [big]
        assert created > 0
        remaining = set(manager.under_replicated_blocks())
        assert remaining == {big}
        for block_id in smalls:
            assert len(manager.block_locations(block_id)) == 2


class TestTaskRetries:
    def spec(self):
        return ClusterSpec(node_count=2, cpu_slots_per_node=1)

    def test_no_failures_by_default(self):
        scheduler = Scheduler(self.spec())
        scheduler.submit_all([scheduler.make_task(1.0) for _ in range(4)])
        metrics = scheduler.run()
        assert metrics.task_failures == 0
        assert metrics.tasks_completed == 4

    def test_failed_tasks_retry_and_complete(self):
        scheduler = Scheduler(
            self.spec(), failure_rate=0.3, max_retries=8, failure_seed=1
        )
        scheduler.submit_all([scheduler.make_task(1.0) for _ in range(20)])
        metrics = scheduler.run()
        assert metrics.task_failures > 0
        assert metrics.tasks_completed == 20
        assert metrics.tasks_abandoned == 0

    def test_failures_extend_makespan(self):
        def makespan(rate):
            scheduler = Scheduler(self.spec(), failure_rate=rate, failure_seed=2)
            scheduler.submit_all([scheduler.make_task(1.0) for _ in range(20)])
            return scheduler.run().makespan_s

        assert makespan(0.4) > makespan(0.0)

    def test_retries_exhausted_abandons(self):
        # failure_rate near 1 with 1 retry: most tasks abandoned.
        scheduler = Scheduler(
            self.spec(), failure_rate=0.95, max_retries=1, failure_seed=3
        )
        scheduler.submit_all([scheduler.make_task(0.5) for _ in range(10)])
        metrics = scheduler.run()
        assert metrics.tasks_abandoned > 0
        assert metrics.tasks_completed + metrics.tasks_abandoned == 10

    def test_on_complete_not_called_for_failures(self):
        completions = []
        scheduler = Scheduler(
            self.spec(), failure_rate=0.95, max_retries=0, failure_seed=4
        )
        scheduler.submit_all(
            [
                scheduler.make_task(0.5, on_complete=lambda t: completions.append(t.task_id))
                for _ in range(10)
            ]
        )
        metrics = scheduler.run()
        assert len(completions) == metrics.tasks_completed

    def test_attempt_counter(self):
        scheduler = Scheduler(self.spec(), failure_rate=0.5, failure_seed=5)
        task = scheduler.make_task(1.0)
        scheduler.submit(task)
        scheduler.run()
        assert task.attempts >= 0
        assert task.finished_at is not None  # eventually succeeded

    def test_validation(self):
        with pytest.raises(ClusterError):
            Scheduler(self.spec(), failure_rate=1.0)
        with pytest.raises(ClusterError):
            Scheduler(self.spec(), max_retries=-1)
