"""GeoTriples mapping and transformation tests."""

import pytest

from repro.errors import MappingError
from repro.geometry import Point, Polygon
from repro.geosparql import WKT_DATATYPE, geometry_literal
from repro.geotriples import ObjectMap, TriplesMap, transform_records, transform_to_store
from repro.geotriples.mapping import expand_template, template_variables
from repro.rdf import GEO, IRI, Literal, RDF
from repro.rdf.term import XSD_INTEGER
from repro.sparql import Variable


EX = "http://ex.org/"


def field_mapping():
    return TriplesMap(
        subject_template=EX + "field/{id}",
        type_iri=EX + "Field",
        object_maps=[
            ObjectMap(predicate=EX + "crop", column="crop"),
            ObjectMap(predicate=EX + "areaHa", column="area", datatype=XSD_INTEGER),
            ObjectMap(predicate=EX + "region", template=EX + "region/{region}"),
            ObjectMap(predicate=EX + "source", constant="cadastre"),
            ObjectMap(predicate=GEO.hasGeometry.value, column="geometry", is_geometry=True),
        ],
    )


RECORDS = [
    {
        "id": 1,
        "crop": "wheat",
        "area": 12,
        "region": "south",
        "geometry": Polygon.box(0, 0, 100, 100),
    },
    {
        "id": 2,
        "crop": "maize",
        "area": 7,
        "region": "north",
        "geometry": Point(500, 500),
    },
]


class TestTemplates:
    def test_variables(self):
        assert template_variables("http://x/{a}/{b_c}") == ["a", "b_c"]

    def test_expand(self):
        assert expand_template("http://x/{id}", {"id": 7}) == "http://x/7"

    def test_missing_attribute(self):
        with pytest.raises(MappingError):
            expand_template("http://x/{id}", {"other": 1})


class TestMappingValidation:
    def test_object_map_needs_exactly_one_source(self):
        with pytest.raises(MappingError):
            ObjectMap(predicate="http://p")
        with pytest.raises(MappingError):
            ObjectMap(predicate="http://p", column="a", constant="b")

    def test_geometry_requires_column(self):
        with pytest.raises(MappingError):
            ObjectMap(predicate="http://p", constant="x", is_geometry=True)

    def test_datatype_language_conflict(self):
        with pytest.raises(MappingError):
            ObjectMap(
                predicate="http://p", column="a", datatype="http://d", language="en"
            )

    def test_subject_template_must_be_http(self):
        with pytest.raises(MappingError):
            TriplesMap(subject_template="urn:{id}")


class TestTransform:
    def test_type_triples(self):
        triples = list(transform_records(RECORDS, field_mapping()))
        type_triples = [t for t in triples if t.predicate == RDF.type]
        assert len(type_triples) == 2
        assert type_triples[0].object == IRI(EX + "Field")

    def test_column_literal(self):
        triples = list(transform_records(RECORDS, field_mapping()))
        crops = {t.object for t in triples if t.predicate == IRI(EX + "crop")}
        assert crops == {Literal("wheat"), Literal("maize")}

    def test_datatyped_column(self):
        triples = list(transform_records(RECORDS, field_mapping()))
        areas = {t.object for t in triples if t.predicate == IRI(EX + "areaHa")}
        assert Literal("12", datatype=XSD_INTEGER) in areas

    def test_template_object(self):
        triples = list(transform_records(RECORDS, field_mapping()))
        regions = {t.object for t in triples if t.predicate == IRI(EX + "region")}
        assert IRI(EX + "region/south") in regions

    def test_constant_object(self):
        triples = list(transform_records(RECORDS, field_mapping()))
        sources = {t.object for t in triples if t.predicate == IRI(EX + "source")}
        assert sources == {Literal("cadastre")}

    def test_constant_iri_detected(self):
        mapping = TriplesMap(
            subject_template=EX + "x/{id}",
            object_maps=[ObjectMap(predicate=EX + "p", constant="http://other.org/o")],
        )
        [triple] = list(transform_records([{"id": 1}], mapping))
        assert triple.object == IRI("http://other.org/o")

    def test_geometry_pattern(self):
        triples = list(transform_records(RECORDS[:1], field_mapping()))
        has_geometry = [t for t in triples if t.predicate == GEO.hasGeometry]
        assert len(has_geometry) == 1
        geom_iri = has_geometry[0].object
        assert geom_iri == IRI(EX + "field/1/geom")
        wkt = [t for t in triples if t.subject == geom_iri and t.predicate == GEO.asWKT]
        assert len(wkt) == 1
        assert wkt[0].object.datatype == WKT_DATATYPE

    def test_null_column_skipped(self):
        mapping = TriplesMap(
            subject_template=EX + "x/{id}",
            object_maps=[ObjectMap(predicate=EX + "p", column="maybe")],
        )
        triples = list(transform_records([{"id": 1}], mapping))
        assert triples == []

    def test_null_geometry_skipped(self):
        mapping = TriplesMap(
            subject_template=EX + "x/{id}",
            object_maps=[ObjectMap(predicate=EX + "g", column="geom", is_geometry=True)],
        )
        assert list(transform_records([{"id": 1}], mapping)) == []

    def test_non_geometry_value_rejected(self):
        mapping = TriplesMap(
            subject_template=EX + "x/{id}",
            object_maps=[ObjectMap(predicate=EX + "g", column="geom", is_geometry=True)],
        )
        with pytest.raises(MappingError):
            list(transform_records([{"id": 1, "geom": "POINT (0 0)"}], mapping))


class TestTransformToStore:
    def test_spatial_query_end_to_end(self):
        store = transform_to_store(RECORDS, field_mapping())
        assert store.geometry_count == 2
        box = geometry_literal(Polygon.box(-10, -10, 200, 200))
        result = store.query(
            "PREFIX geo: <http://www.opengis.net/ont/geosparql#> "
            "PREFIX geof: <http://www.opengis.net/def/function/geosparql/> "
            "PREFIX ex: <http://ex.org/> "
            "SELECT ?crop WHERE { ?f geo:hasGeometry ?g . ?g geo:asWKT ?wkt . "
            "?f ex:crop ?crop . "
            f'FILTER (geof:sfIntersects(?wkt, "{box.lexical}"^^geo:wktLiteral)) }}'
        )
        assert {s[Variable("crop")] for s in result} == {Literal("wheat")}

    def test_reuses_existing_store(self):
        store = transform_to_store(RECORDS[:1], field_mapping())
        out = transform_to_store(RECORDS[1:], field_mapping(), store=store)
        assert out is store
        assert store.geometry_count == 2
