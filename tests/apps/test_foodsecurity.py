"""Food Security application tests."""

import numpy as np
import pytest

from repro.errors import MLError, ReproError
from repro.apps.foodsecurity import (
    PrometModel,
    SoilGrid,
    WeatherDay,
    build_crop_classifier,
    classify_scene,
    extract_fields,
    irrigation_advice,
    publish_advice,
    synthetic_weather,
    train_crop_classifier,
)
from repro.apps.foodsecurity.promet import crop_coefficient, hargreaves_et0_mm
from repro.datasets import make_eurosat
from repro.geometry import Polygon
from repro.ml import accuracy
from repro.raster import GeoTransform, LandCover, RasterGrid
from repro.raster.sentinel import landcover_field, sentinel2_scene
from repro.sparql import Variable


class TestCropClassifier:
    def test_build_shapes(self):
        model = build_crop_classifier(num_classes=8, patch_size=8)
        out = model.forward(np.zeros((2, 13, 8, 8)))
        assert out.shape == (2, 8)

    def test_patch_size_validation(self):
        with pytest.raises(MLError):
            build_crop_classifier(num_classes=3, patch_size=6)

    def test_train_and_classify_beats_chance(self):
        dataset = make_eurosat(samples=240, patch_size=8, num_classes=4, seed=0)
        model = build_crop_classifier(num_classes=4, seed=1)
        report = train_crop_classifier(model, dataset, epochs=4, batch_size=32)
        assert report.losses[-1] < report.losses[0]
        predictions = model.predict(dataset.x[:100])
        assert accuracy(predictions, dataset.y[:100]) > 0.5  # chance = 0.25

    def test_classify_scene_shape(self):
        truth = landcover_field(24, 32, seed=1)
        scene = sentinel2_scene(truth, seed=1)
        model = build_crop_classifier(num_classes=8)
        crop_map = classify_scene(model, scene, patch_size=8)
        assert crop_map.shape == (24, 32)

    def test_classify_scene_covers_edges(self):
        truth = landcover_field(20, 21, seed=2)  # not multiples of 8
        scene = sentinel2_scene(truth, seed=2)
        model = build_crop_classifier(num_classes=8)
        crop_map = classify_scene(model, scene, patch_size=8)
        assert crop_map.shape == (20, 21)

    def test_scene_too_small(self):
        truth = landcover_field(4, 4)
        scene = sentinel2_scene(truth)
        model = build_crop_classifier(num_classes=8)
        with pytest.raises(MLError):
            classify_scene(model, scene, patch_size=8)


class TestExtractFields:
    def test_two_fields(self):
        crop_map = np.zeros((20, 20), dtype=np.int16)
        crop_map[2:10, 2:10] = 3
        crop_map[12:18, 12:18] = 4
        grid = RasterGrid(np.zeros((20, 20)), GeoTransform(0, 200, 10))
        fields = extract_fields(crop_map, grid, min_pixels=10, crop_classes=(3, 4))
        assert len(fields) == 2
        crops = {crop for _, crop in fields}
        assert crops == {3, 4}

    def test_min_pixels_filters(self):
        crop_map = np.zeros((10, 10), dtype=np.int16)
        crop_map[0:2, 0:2] = 3
        grid = RasterGrid(np.zeros((10, 10)), GeoTransform(0, 100, 10))
        assert extract_fields(crop_map, grid, min_pixels=10, crop_classes=(3,)) == []

    def test_field_georeferencing(self):
        crop_map = np.zeros((10, 10), dtype=np.int16)
        crop_map[2:4, 5:8] = 3
        grid = RasterGrid(np.zeros((10, 10)), GeoTransform(0, 100, 10))
        [(boundary, crop)] = extract_fields(
            crop_map, grid, min_pixels=4, crop_classes=(3,)
        )
        box = boundary.bbox
        assert (box.min_x, box.max_x) == (50, 80)
        assert (box.max_y, box.min_y) == (80, 60)


class TestWeatherAndET:
    def test_synthetic_weather_length_and_season(self):
        weather = synthetic_weather(range(1, 366), seed=1)
        assert len(weather) == 365
        january = np.mean([w.temp_max_c for w in weather[:30]])
        july = np.mean([w.temp_max_c for w in weather[180:210]])
        assert july > january + 5

    def test_weather_validation(self):
        with pytest.raises(ReproError):
            WeatherDay(1, -1.0, 0, 10)
        with pytest.raises(ReproError):
            WeatherDay(1, 0.0, 10, 5)

    def test_et0_summer_exceeds_winter(self):
        summer = hargreaves_et0_mm(WeatherDay(180, 0, 14, 28))
        winter = hargreaves_et0_mm(WeatherDay(15, 0, -2, 4))
        assert summer > winter * 2
        assert summer < 12  # physically plausible mm/day

    def test_crop_coefficient_season(self):
        assert crop_coefficient(LandCover.MAIZE, 210) > 1.0
        assert crop_coefficient(LandCover.MAIZE, 20) < 0.4
        assert crop_coefficient(LandCover.BARE_SOIL, 180) == pytest.approx(0.25)


class TestPromet:
    def make_model(self, shape=(8, 8)):
        crop_map = np.full(shape, int(LandCover.WHEAT), dtype=np.int16)
        soil = SoilGrid.uniform(shape, capacity_mm=100.0)
        return PrometModel(crop_map, soil, GeoTransform(0, shape[0] * 10.0, 10.0))

    def test_step_outputs(self):
        model = self.make_model()
        day = model.step(WeatherDay(150, 5.0, 10, 22))
        assert day.storage_mm.shape == (8, 8)
        assert (day.water_availability >= 0).all()
        assert (day.water_availability <= 1).all()

    def test_mass_conservation(self):
        model = self.make_model()
        weather = synthetic_weather(range(100, 200), seed=2)
        model.run(weather)
        assert model.mass_balance_error_mm() < 1e-6

    def test_drought_drains_storage(self):
        model = self.make_model()
        for day in range(150, 200):
            model.step(WeatherDay(day, 0.0, 12, 26))
        assert model.storage_mm.mean() < 70.0 * 0.7

    def test_heavy_rain_produces_runoff(self):
        model = self.make_model()
        day = model.step(WeatherDay(150, 80.0, 10, 20))
        assert day.runoff_mm.sum() > 0

    def test_irrigation_restores_availability(self):
        dry = self.make_model()
        irrigated = self.make_model()
        for day in range(150, 180):
            weather = WeatherDay(day, 0.0, 12, 26)
            dry_day = dry.step(weather)
            irrigated.step(weather, irrigation_mm=dry_day.irrigation_demand_mm)
        assert irrigated.storage_mm.mean() > dry.storage_mm.mean()
        assert irrigated.mass_balance_error_mm() < 1e-6

    def test_demand_zero_for_non_crops(self):
        crop_map = np.full((4, 4), int(LandCover.URBAN), dtype=np.int16)
        model = PrometModel(
            crop_map, SoilGrid.uniform((4, 4)), GeoTransform(0, 40, 10)
        )
        for day in range(150, 170):
            out = model.step(WeatherDay(day, 0.0, 12, 26))
        assert out.irrigation_demand_mm.sum() == 0.0

    def test_crop_specific_demand(self):
        """Maize (summer crop) demands more water in August than wheat."""
        shape = (4, 4)
        soil = SoilGrid.uniform(shape, 100.0)
        wheat = PrometModel(
            np.full(shape, int(LandCover.WHEAT), dtype=np.int16), soil,
            GeoTransform(0, 40, 10),
        )
        maize = PrometModel(
            np.full(shape, int(LandCover.MAIZE), dtype=np.int16),
            SoilGrid.uniform(shape, 100.0), GeoTransform(0, 40, 10),
        )
        total_wheat = total_maize = 0.0
        for day in range(213, 243):  # August
            weather = WeatherDay(day, 0.0, 14, 30)
            total_wheat += wheat.step(weather).et_actual_mm.sum()
            total_maize += maize.step(weather).et_actual_mm.sum()
        assert total_maize > total_wheat

    def test_shape_validation(self):
        with pytest.raises(ReproError):
            PrometModel(
                np.zeros((4, 4)), SoilGrid.uniform((5, 5)), GeoTransform(0, 40, 10)
            )
        with pytest.raises(ReproError):
            SoilGrid(np.zeros((2, 2)))

    def test_availability_grid(self):
        model = self.make_model()
        day = model.step(WeatherDay(150, 0.0, 10, 20))
        grid = model.availability_grid(day)
        assert grid.shape == (1, 8, 8)
        assert grid.resolution == 10.0


class TestIrrigationAdvice:
    def setup_maps(self):
        transform = GeoTransform(0, 100, 10)
        availability = np.full((10, 10), 0.8)
        availability[:, :5] = 0.2  # left half is dry
        demand = np.zeros((10, 10))
        demand[:, :5] = 30.0
        fields = [
            (Polygon.box(0, 0, 40, 100), 3),  # dry field
            (Polygon.box(60, 0, 100, 100), 4),  # wet field
        ]
        return (
            fields,
            RasterGrid(availability, transform),
            RasterGrid(demand, transform),
        )

    def test_advice(self):
        fields, availability, demand = self.setup_maps()
        advice = irrigation_advice(fields, availability, demand)
        assert len(advice) == 2
        dry = next(a for a in advice if a.crop == 3)
        wet = next(a for a in advice if a.crop == 4)
        assert dry.irrigate and not wet.irrigate
        assert dry.demand_mm > wet.demand_mm

    def test_threshold_validation(self):
        fields, availability, demand = self.setup_maps()
        with pytest.raises(ReproError):
            irrigation_advice(fields, availability, demand, irrigate_below=0.0)

    def test_publish_linked_data(self):
        fields, availability, demand = self.setup_maps()
        advice = irrigation_advice(fields, availability, demand)
        store = publish_advice(advice)
        result = store.query(
            "PREFIX agri: <http://extremeearth.eu/agri#> "
            "SELECT ?f WHERE { ?f agri:irrigationAdvised true }"
        )
        assert len(result) == 1
        # Spatial query over the published advice works too.
        from repro.geosparql import geometry_literal

        window = geometry_literal(Polygon.box(0, 0, 50, 50))
        spatial = store.query(
            "PREFIX geo: <http://www.opengis.net/ont/geosparql#> "
            "PREFIX geof: <http://www.opengis.net/def/function/geosparql/> "
            "SELECT ?f WHERE { ?f geo:hasGeometry ?g . ?g geo:asWKT ?w . "
            f'FILTER (geof:sfIntersects(?w, "{window.lexical}"^^geo:wktLiteral)) }}'
        )
        assert len(spatial) == 1
