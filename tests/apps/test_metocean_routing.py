"""Metocean fields and ship routing tests."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.apps.polar.metocean import (
    STAGE_SEVERITY,
    maritime_risk_index,
    sst_field,
    wind_field,
)
from repro.apps.polar.routing import Route, plan_route, route_to_geojson
from repro.raster import GeoTransform, SeaIce, sea_ice_field


def half_ice_map(size=32):
    stage = np.zeros((size, size), dtype=np.int16)
    stage[: size // 2] = int(SeaIce.FIRST_YEAR_ICE)
    return stage


class TestSST:
    def test_ice_at_freezing_point(self):
        sst = sst_field(half_ice_map(), seed=1)
        ice = half_ice_map() != 0
        np.testing.assert_allclose(sst[ice], -1.8)

    def test_open_water_warms_away_from_ice(self):
        stage = half_ice_map(48)
        sst = sst_field(stage, seed=2)
        near_edge = sst[25].mean()  # just south of the ice edge
        far = sst[-1].mean()
        assert far > near_edge

    def test_capped_maximum(self):
        sst = sst_field(np.zeros((16, 16), dtype=np.int16), seed=3, open_water_max_c=2.0)
        assert sst.max() <= 2.0

    def test_validation(self):
        with pytest.raises(ReproError):
            sst_field(np.zeros(5))


class TestWind:
    def test_mean_and_positivity(self):
        wind = wind_field((32, 32), seed=4, mean_speed_ms=12.0)
        assert wind.min() >= 0.0
        assert 6.0 < wind.mean() < 18.0

    def test_validation(self):
        with pytest.raises(ReproError):
            wind_field((8, 8), mean_speed_ms=-1)


class TestRiskIndex:
    def test_severity_ordering(self):
        stage = np.array(
            [[int(s) for s in SeaIce]], dtype=np.int16
        )
        calm_sst = np.full(stage.shape, 5.0)
        calm_wind = np.zeros(stage.shape)
        risk = maritime_risk_index(stage, sst=calm_sst, wind=calm_wind)
        values = risk[0]
        assert list(values) == sorted(values)
        assert values[0] == 0.0  # open water, calm
        assert values[-1] == 1.0  # old ice

    def test_freezing_spray_raises_open_water_risk(self):
        stage = np.zeros((4, 4), dtype=np.int16)
        cold = np.full(stage.shape, -1.0)
        calm = np.zeros(stage.shape)
        storm = np.full(stage.shape, 20.0)
        assert (
            maritime_risk_index(stage, sst=cold, wind=storm).mean()
            > maritime_risk_index(stage, sst=cold, wind=calm).mean()
        )

    def test_unknown_class_worst_case(self):
        stage = np.full((2, 2), 99, dtype=np.int16)
        risk = maritime_risk_index(stage, sst=np.zeros((2, 2)), wind=np.zeros((2, 2)))
        assert (risk == 1.0).all()

    def test_fields_synthesised_when_missing(self):
        risk = maritime_risk_index(half_ice_map(), seed=5)
        assert risk.shape == (32, 32)
        assert (0 <= risk).all() and (risk <= 1).all()

    def test_shape_mismatch(self):
        with pytest.raises(ReproError):
            maritime_risk_index(half_ice_map(), sst=np.zeros((2, 2)))


class TestRouting:
    def corridor_grid(self):
        """A wall of impassable ice with one open corridor at column 5."""
        risk = np.zeros((16, 16))
        risk[8, :] = 1.0
        risk[8, 5] = 0.1
        return risk

    def test_route_found_through_corridor(self):
        route = plan_route(self.corridor_grid(), (0, 12), (15, 12))
        assert route is not None
        assert (8, 5) in route.cells
        assert route.max_risk <= 0.9

    def test_no_route_when_blocked(self):
        risk = np.zeros((8, 8))
        risk[4, :] = 1.0
        assert plan_route(risk, (0, 0), (7, 7)) is None

    def test_zero_weight_is_geodesic(self):
        risk = np.zeros((10, 10))
        risk[:, 5] = 0.5  # risky but passable stripe
        route = plan_route(risk, (5, 0), (5, 9), risk_weight=0.0)
        # Straight line across, ignoring risk.
        assert route.distance == pytest.approx(9.0)
        assert all(r == 5 for r, _ in route.cells)

    def test_risk_weight_trades_distance_for_safety(self):
        risk = np.zeros((11, 11))
        risk[4:7, 3:8] = 0.6  # a risky patch on the direct line
        direct = plan_route(risk, (5, 0), (5, 10), risk_weight=0.0)
        careful = plan_route(risk, (5, 0), (5, 10), risk_weight=25.0)
        assert careful.distance > direct.distance
        assert careful.mean_risk < direct.mean_risk

    def test_unpassable_endpoints(self):
        risk = np.zeros((4, 4))
        risk[0, 0] = 1.0
        assert plan_route(risk, (0, 0), (3, 3)) is None

    def test_route_on_real_ice_field(self):
        truth = sea_ice_field(48, 48, seed=6, ice_extent=0.5)
        risk = maritime_risk_index(truth, seed=6)
        route = plan_route(risk, (47, 5), (47, 42), risk_weight=15.0)
        assert route is not None
        assert route.mean_risk < 0.3  # sails the open south

    def test_validation(self):
        risk = np.zeros((4, 4))
        with pytest.raises(ReproError):
            plan_route(risk, (9, 9), (0, 0))
        with pytest.raises(ReproError):
            plan_route(risk, (0, 0), (3, 3), risk_weight=-1)
        with pytest.raises(ReproError):
            plan_route(risk, (0, 0), (3, 3), max_passable_risk=0.0)
        with pytest.raises(ReproError):
            plan_route(np.zeros(4), (0, 0), (1, 1))

    def test_route_to_geojson(self):
        risk = np.zeros((6, 6))
        route = plan_route(risk, (0, 0), (5, 5))
        geojson = route_to_geojson(route, GeoTransform(0, 240, 40))
        assert geojson["type"] == "Feature"
        assert geojson["geometry"]["type"] == "LineString"
        assert len(geojson["geometry"]["coordinates"]) == route.length
        assert geojson["properties"]["max_risk"] == 0.0


class TestOptimality:
    def test_astar_matches_dijkstra_cost(self):
        """A* with the Euclidean heuristic finds the same-cost path as an
        exhaustive Dijkstra (heuristic admissibility check)."""
        rng = np.random.default_rng(7)
        risk = np.clip(rng.random((12, 12)) * 0.8, 0, 0.8)
        start, goal = (0, 0), (11, 11)
        route = plan_route(risk, start, goal, risk_weight=5.0)
        assert route is not None

        # Dijkstra reference.
        import heapq as hq
        import math

        dist = {start: 0.0}
        heap = [(0.0, start)]
        while heap:
            d, cell = hq.heappop(heap)
            if d > dist.get(cell, math.inf):
                continue
            for dr, dc in (
                (0, 1), (1, 0), (0, -1), (-1, 0), (1, 1), (1, -1), (-1, 1), (-1, -1)
            ):
                r, c = cell[0] + dr, cell[1] + dc
                if not (0 <= r < 12 and 0 <= c < 12):
                    continue
                step = math.hypot(dr, dc)
                nd = d + step * (1 + 5.0 * risk[r, c])
                if nd < dist.get((r, c), math.inf):
                    dist[(r, c)] = nd
                    hq.heappush(heap, (nd, (r, c)))

        route_cost = sum(
            math.hypot(b[0] - a[0], b[1] - a[1]) * (1 + 5.0 * risk[b])
            for a, b in zip(route.cells, route.cells[1:])
        )
        assert route_cost == pytest.approx(dist[goal], rel=1e-9)
