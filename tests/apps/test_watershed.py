"""Watershed delineation tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.apps.foodsecurity.watershed import (
    D8_OFFSETS,
    delineate_watershed,
    flow_accumulation,
    flow_directions,
    main_channel,
    synthetic_dem,
    watershed_grid,
)
from repro.raster import GeoTransform


class TestSyntheticDEM:
    def test_shape_and_range(self):
        dem = synthetic_dem(32, 40, seed=1, relief_m=100.0)
        assert dem.shape == (32, 40)
        assert dem.min() >= 0.0
        assert dem.max() <= 100.0

    def test_valley_direction(self):
        south = synthetic_dem(32, 32, seed=2, valley_direction="south")
        assert south[0].mean() > south[-1].mean()
        east = synthetic_dem(32, 32, seed=2, valley_direction="east")
        assert east[:, 0].mean() > east[:, -1].mean()

    def test_deterministic(self):
        np.testing.assert_array_equal(
            synthetic_dem(16, 16, seed=3), synthetic_dem(16, 16, seed=3)
        )

    def test_validation(self):
        with pytest.raises(ReproError):
            synthetic_dem(2, 2)
        with pytest.raises(ReproError):
            synthetic_dem(16, 16, valley_direction="up")


class TestFlowDirections:
    def test_simple_slope_flows_south(self):
        dem = np.linspace(10, 0, 5)[:, np.newaxis] * np.ones((5, 5))
        directions = flow_directions(dem)
        # Interior cells flow due south (code 2).
        assert (directions[1:-1, 1:-1] == 2).all()
        # The last row has no downhill neighbour: outlet cells.
        assert (directions[-1] == -1).all()

    def test_diagonal_distance_respected(self):
        # A drop of 1 straight beats a drop of 1.2 on the diagonal
        # (slope 1.0 vs 0.85).
        dem = np.array(
            [[5.0, 5.0, 5.0], [5.0, 5.0, 5.0], [5.0, 4.0, 3.8]]
        )
        directions = flow_directions(dem)
        assert directions[1, 1] == 2  # straight south to 4.0

    def test_pit_marked(self):
        dem = np.full((3, 3), 5.0)
        dem[1, 1] = 1.0
        directions = flow_directions(dem)
        assert directions[1, 1] == -1
        assert (directions[0] != -1).any()

    def test_validation(self):
        with pytest.raises(ReproError):
            flow_directions(np.zeros(5))


class TestFlowAccumulation:
    def test_linear_slope_accumulates_downhill(self):
        dem = np.linspace(10, 0, 6)[:, np.newaxis] * np.ones((6, 3))
        accumulation = flow_accumulation(flow_directions(dem))
        # Straight columns: row r has accumulated r+1 cells.
        for row in range(6):
            assert (accumulation[row] == row + 1).all()

    def test_total_mass_conserved_at_outlets(self):
        dem = synthetic_dem(24, 24, seed=4)
        directions = flow_directions(dem)
        accumulation = flow_accumulation(directions)
        outlet_total = accumulation[directions == -1].sum()
        assert outlet_total == 24 * 24  # every cell drains to some outlet

    def test_accumulation_minimum_is_one(self):
        dem = synthetic_dem(16, 16, seed=5)
        accumulation = flow_accumulation(flow_directions(dem))
        assert accumulation.min() == 1

    def test_cycle_detected(self):
        directions = np.full((1, 2), -1, dtype=np.int8)
        directions[0, 0] = 0  # east
        directions[0, 1] = 4  # west -> cycle
        with pytest.raises(ReproError):
            flow_accumulation(directions)

    @given(seed=st.integers(0, 30))
    @settings(max_examples=15, deadline=None)
    def test_downstream_monotone_property(self, seed):
        """Accumulation never decreases along a flow path."""
        dem = synthetic_dem(16, 16, seed=seed)
        directions = flow_directions(dem)
        accumulation = flow_accumulation(directions)
        for row in range(16):
            for col in range(16):
                code = directions[row, col]
                if code < 0:
                    continue
                dr, dc = D8_OFFSETS[code]
                assert accumulation[row + dr, col + dc] > accumulation[row, col] - 1


class TestWatershed:
    def test_full_slope_drains_to_bottom(self):
        dem = np.linspace(10, 0, 8)[:, np.newaxis] * np.ones((8, 4))
        directions = flow_directions(dem)
        mask = delineate_watershed(directions, (7, 2))
        # The pour point's column drains straight through it.
        assert mask[:, 2].all()
        assert not mask[:, 0].any()

    def test_watershed_contains_pour_point(self):
        dem = synthetic_dem(24, 24, seed=6)
        directions = flow_directions(dem)
        accumulation = flow_accumulation(directions)
        outlet = np.unravel_index(int(accumulation.argmax()), accumulation.shape)
        mask = delineate_watershed(directions, (int(outlet[0]), int(outlet[1])))
        assert mask[outlet]
        # The watershed size equals the outlet's accumulation.
        assert mask.sum() == accumulation[outlet]

    def test_everything_in_watershed_reaches_pour_point(self):
        dem = synthetic_dem(16, 16, seed=7)
        directions = flow_directions(dem)
        accumulation = flow_accumulation(directions)
        outlet = np.unravel_index(int(accumulation.argmax()), accumulation.shape)
        mask = delineate_watershed(directions, (int(outlet[0]), int(outlet[1])))
        for row in range(16):
            for col in range(16):
                if not mask[row, col]:
                    continue
                r, c = row, col
                for _ in range(16 * 16):
                    if (r, c) == tuple(outlet):
                        break
                    code = directions[r, c]
                    assert code >= 0, "watershed cell hit a pit before the outlet"
                    dr, dc = D8_OFFSETS[code]
                    r, c = r + dr, c + dc
                assert (r, c) == tuple(outlet)

    def test_pour_point_validation(self):
        with pytest.raises(ReproError):
            delineate_watershed(np.full((4, 4), -1, dtype=np.int8), (9, 0))

    def test_watershed_grid(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[1, 1] = True
        grid = watershed_grid(mask, GeoTransform(0, 40, 10))
        assert grid.shape == (1, 4, 4)
        assert grid.band(0).sum() == 1.0


class TestMainChannel:
    def test_channel_follows_flow(self):
        dem = synthetic_dem(24, 24, seed=8)
        directions = flow_directions(dem)
        accumulation = flow_accumulation(directions)
        channel = main_channel(directions, accumulation)
        assert len(channel) >= 2
        # Consecutive cells are D8 neighbours and flow downstream.
        for (r0, c0), (r1, c1) in zip(channel, channel[1:]):
            code = directions[r0, c0]
            assert code >= 0
            dr, dc = D8_OFFSETS[code]
            assert (r0 + dr, c0 + dc) == (r1, c1)
        # Accumulation grows along the channel.
        values = [accumulation[r, c] for r, c in channel]
        assert values == sorted(values)

    def test_channel_ends_at_accumulation_maximum(self):
        dem = synthetic_dem(20, 20, seed=9)
        directions = flow_directions(dem)
        accumulation = flow_accumulation(directions)
        channel = main_channel(directions, accumulation)
        assert accumulation[channel[-1]] == accumulation.max()


class TestPrometIntegration:
    def test_watershed_scoped_demand(self):
        """PROMET demand outside the watershed is excluded from planning."""
        from repro.apps.foodsecurity import PrometModel, SoilGrid, WeatherDay
        from repro.raster import LandCover

        dem = synthetic_dem(16, 16, seed=10)
        directions = flow_directions(dem)
        accumulation = flow_accumulation(directions)
        outlet = np.unravel_index(int(accumulation.argmax()), accumulation.shape)
        mask = delineate_watershed(directions, (int(outlet[0]), int(outlet[1])))

        crop_map = np.full((16, 16), int(LandCover.WHEAT), dtype=np.int16)
        model = PrometModel(
            crop_map, SoilGrid.uniform((16, 16)), GeoTransform(0, 160, 10)
        )
        for day in range(150, 170):
            output = model.step(WeatherDay(day, 0.0, 12, 26))
        scoped_demand = output.irrigation_demand_mm * mask
        assert scoped_demand.sum() <= output.irrigation_demand_mm.sum()
        assert scoped_demand[~mask].sum() == 0.0
        assert scoped_demand[mask].sum() == pytest.approx(scoped_demand.sum())
