"""Polar application tests."""

import numpy as np
import pytest

from repro.errors import MLError, ReproError
from repro.apps.polar import (
    build_ice_classifier,
    classify_ice_scene,
    decode_ice_chart,
    detect_icebergs,
    encode_ice_chart,
    ice_concentration_map,
    ice_type_map,
    make_ice_training_set,
    map_agreement,
    track_icebergs,
    train_ice_classifier,
)
from repro.apps.polar.icebergs import embed_truth_icebergs
from repro.ml import accuracy
from repro.raster import GeoTransform, SeaIce, sea_ice_field, sentinel1_scene


class TestIceClassifier:
    def test_training_set_shapes(self):
        dataset = make_ice_training_set(samples=50, patch_size=8, seed=0)
        assert dataset.x.shape == (50, 2, 8, 8)
        assert dataset.num_classes == 5

    def test_train_beats_chance(self):
        dataset = make_ice_training_set(samples=300, seed=1, looks=8)
        model = build_ice_classifier(seed=2)
        report = train_ice_classifier(model, dataset, epochs=4)
        assert report.losses[-1] < report.losses[0]
        assert accuracy(model.predict(dataset.x[:100]), dataset.y[:100]) > 0.5

    def test_classify_scene(self):
        truth = sea_ice_field(32, 32, seed=3, ice_extent=0.5)
        scene = sentinel1_scene(truth, seed=3, looks=8)
        model = build_ice_classifier()
        stage_map = classify_ice_scene(model, scene, patch_size=8)
        assert stage_map.shape == (32, 32)
        assert set(np.unique(stage_map)) <= set(range(5))

    def test_patch_validation(self):
        with pytest.raises(MLError):
            build_ice_classifier(patch_size=7)


class TestIceProducts:
    def test_concentration_map(self):
        stage_map = np.zeros((16, 16), dtype=np.int16)
        stage_map[:8] = int(SeaIce.FIRST_YEAR_ICE)
        conc = ice_concentration_map(stage_map, window=8)
        assert conc.shape == (2, 2)
        np.testing.assert_allclose(conc, [[1.0, 1.0], [0.0, 0.0]])

    def test_concentration_validation(self):
        with pytest.raises(MLError):
            ice_concentration_map(np.zeros((4, 4)), window=8)

    def test_type_map_resolution(self):
        stage_map = sea_ice_field(100, 100, seed=1)
        transform = GeoTransform(0, 100 * 40.0, 40.0)  # 40 m pixels
        product = ice_type_map(stage_map, transform, target_resolution_m=1000.0)
        assert product.resolution == pytest.approx(1000.0)
        assert product.shape == (1, 4, 4)

    def test_type_map_finer_rejected(self):
        with pytest.raises(MLError):
            ice_type_map(np.zeros((10, 10)), GeoTransform(0, 100, 10),
                         target_resolution_m=5.0)


class TestIcebergs:
    def make_scene_with_bergs(self, count=5, seed=0):
        truth = np.zeros((64, 64), dtype=np.int16)  # open water
        truth, positions = embed_truth_icebergs(truth, count=count, seed=seed)
        scene = sentinel1_scene(truth, signatures="ice", looks=16, seed=seed)
        return scene, positions

    def test_detection_recall(self):
        scene, positions = self.make_scene_with_bergs(count=5, seed=1)
        detections = detect_icebergs(scene, contrast_db=5.0)
        assert len(positions) == 5
        # Every planted berg matched by some detection within 200 m (5 px).
        found = 0
        size = scene.grid.transform.pixel_size
        for row, col in positions:
            x = scene.grid.transform.origin_x + (col + 1) * size
            y = scene.grid.transform.origin_y - (row + 1) * size
            if any(
                abs(d.centroid.x - x) < 5 * size and abs(d.centroid.y - y) < 5 * size
                for d in detections
            ):
                found += 1
        assert found >= 4

    def test_no_bergs_in_calm_water(self):
        truth = np.zeros((32, 32), dtype=np.int16)
        scene = sentinel1_scene(truth, signatures="ice", looks=32, seed=2)
        detections = detect_icebergs(scene, contrast_db=8.0)
        assert len(detections) <= 1  # speckle may produce at most stray hits

    def test_large_floes_excluded(self):
        truth = np.zeros((32, 32), dtype=np.int16)
        truth[4:28, 4:28] = int(SeaIce.OLD_ICE)  # one huge floe
        scene = sentinel1_scene(truth, signatures="ice", looks=16, seed=3)
        detections = detect_icebergs(scene, contrast_db=5.0, max_pixels=100)
        assert detections == []

    def test_detection_metadata(self):
        scene, _ = self.make_scene_with_bergs(count=3, seed=4)
        for detection in detect_icebergs(scene, contrast_db=5.0):
            assert detection.area_m2 > 0
            assert detection.day_of_year == scene.day_of_year
            assert detection.outline.bbox.contains_point(
                detection.centroid.x, detection.centroid.y
            )

    def test_requires_sar(self):
        from repro.raster.sentinel import landcover_field, sentinel2_scene

        scene = sentinel2_scene(landcover_field(16, 16))
        with pytest.raises(ReproError):
            detect_icebergs(scene)

    def test_tracking_associates_nearby(self):
        from repro.apps.polar.icebergs import IcebergDetection
        from repro.geometry import Point, Polygon

        def detection(x, y, day, name):
            return IcebergDetection(
                name, Polygon.box(x - 50, y - 50, x + 50, y + 50),
                Point(x, y), 100.0, -5.0, day,
            )

        series = [
            [detection(0, 0, 1, "a1"), detection(10000, 0, 1, "b1")],
            [detection(500, 200, 2, "a2"), detection(10300, 100, 2, "b2")],
            [detection(900, 500, 3, "a3")],
        ]
        tracks = track_icebergs(series, max_drift_m=1000.0)
        assert len(tracks) == 2
        lengths = sorted(len(t) for t in tracks)
        assert lengths == [2, 3]

    def test_tracking_starts_new_track_beyond_drift(self):
        from repro.apps.polar.icebergs import IcebergDetection
        from repro.geometry import Point, Polygon

        def detection(x, day, name):
            return IcebergDetection(
                name, Polygon.box(x, 0, x + 10, 10), Point(x, 5), 1.0, -5.0, day
            )

        tracks = track_icebergs(
            [[detection(0, 1, "a")], [detection(99999, 2, "b")]], max_drift_m=100.0
        )
        assert len(tracks) == 2

    def test_validation(self):
        with pytest.raises(ReproError):
            track_icebergs([], max_drift_m=0)
        truth = np.zeros((8, 8), dtype=np.int16)
        scene = sentinel1_scene(truth, signatures="ice")
        with pytest.raises(ReproError):
            detect_icebergs(scene, contrast_db=0)


class TestPCDSS:
    def test_round_trip_exact_when_it_fits(self):
        chart = sea_ice_field(32, 32, seed=1)
        message = encode_ice_chart(chart, byte_budget=100_000)
        decoded, factor = decode_ice_chart(message)
        assert factor == 1
        np.testing.assert_array_equal(decoded, chart)
        assert map_agreement(chart, decoded, factor) == 1.0

    def test_budget_forces_degradation(self):
        chart = sea_ice_field(128, 128, seed=2, blob_scale=3.0)
        full = encode_ice_chart(chart, byte_budget=10**6)
        tight = encode_ice_chart(chart, byte_budget=len(full) // 4)
        assert len(tight) <= len(full) // 4
        decoded, factor = decode_ice_chart(tight)
        assert factor > 1
        # Fidelity degrades but stays structured (better than random 5-class).
        assert map_agreement(chart, decoded, factor) > 0.4

    def test_byte_budget_respected(self):
        chart = sea_ice_field(64, 64, seed=3)
        for budget in (256, 512, 2048):
            message = encode_ice_chart(chart, byte_budget=budget)
            assert len(message) <= budget

    def test_tiny_budget_degrades_to_coarsest_chart(self):
        # Even 20 bytes carries *something*: the chart collapses to a very
        # coarse grid rather than failing outright.
        chart = sea_ice_field(64, 64, seed=4)
        message = encode_ice_chart(chart, byte_budget=20)
        decoded, factor = decode_ice_chart(message)
        assert factor >= 16
        assert decoded.size >= 1

    def test_malformed_messages(self):
        with pytest.raises(ReproError):
            decode_ice_chart(b"XX1whatever")
        chart = np.zeros((4, 4), dtype=np.int16)
        message = encode_ice_chart(chart, byte_budget=1000)
        with pytest.raises(ReproError):
            decode_ice_chart(message[:-1])
        with pytest.raises(ReproError):
            decode_ice_chart(message + b"\x00")

    def test_validation(self):
        with pytest.raises(ReproError):
            encode_ice_chart(np.zeros((2, 2, 2)))
        with pytest.raises(ReproError):
            encode_ice_chart(np.full((4, 4), 300))
        with pytest.raises(ReproError):
            encode_ice_chart(np.zeros((4, 4)), byte_budget=8)
