"""Interlinking tests: blocking recall, meta-blocking pruning, link discovery."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.geometry import Point, Polygon
from repro.interlinking import (
    Link,
    SpatialEntity,
    brute_force_pairs,
    discover_links,
    evaluate_links,
    meta_blocking,
    spatial_blocking,
)


def grid_entities(prefix, count, spacing, size, offset=0.0):
    """Entities laid out on a line with fixed spacing."""
    return [
        SpatialEntity(
            f"{prefix}{i}",
            Polygon.box(
                offset + i * spacing, 0.0, offset + i * spacing + size, size
            ),
        )
        for i in range(count)
    ]


class TestBlocking:
    def test_brute_force_count(self):
        a = grid_entities("a", 3, 10, 1)
        b = grid_entities("b", 4, 10, 1)
        assert len(brute_force_pairs(a, b)) == 12

    def test_blocking_reduces_candidates(self):
        a = grid_entities("a", 50, 10, 1)
        b = grid_entities("b", 50, 10, 1, offset=0.5)
        pairs, _ = spatial_blocking(a, b, cell_size=10)
        assert len(pairs) < 200  # vs 2500 brute force

    def test_blocking_no_false_dismissals(self):
        """Every bbox-intersecting pair must survive blocking (any cell size)."""
        rng = random.Random(5)
        a = [
            SpatialEntity(
                f"a{i}",
                Polygon.box(x := rng.uniform(0, 100), y := rng.uniform(0, 100),
                            x + rng.uniform(1, 10), y + rng.uniform(1, 10)),
            )
            for i in range(30)
        ]
        b = [
            SpatialEntity(
                f"b{i}",
                Polygon.box(x := rng.uniform(0, 100), y := rng.uniform(0, 100),
                            x + rng.uniform(1, 10), y + rng.uniform(1, 10)),
            )
            for i in range(30)
        ]
        for cell in (3.0, 7.0, 20.0):
            pairs, _ = spatial_blocking(a, b, cell_size=cell)
            expected = {
                (i, j)
                for i in range(30)
                for j in range(30)
                if a[i].geometry.bbox.intersects(b[j].geometry.bbox)
            }
            assert expected <= set(pairs)

    def test_common_block_counts(self):
        a = [SpatialEntity("a0", Polygon.box(0, 0, 25, 5))]
        b = [SpatialEntity("b0", Polygon.box(0, 0, 25, 5))]
        _, common = spatial_blocking(a, b, cell_size=10)
        # Boxes span 3 cells horizontally; they share all of them.
        assert common[(0, 0)] == 3

    def test_cell_size_validation(self):
        with pytest.raises(ReproError):
            spatial_blocking([], [], cell_size=0)


class TestMetaBlocking:
    def test_keep_zero_keeps_all(self):
        pairs = [(0, 0), (0, 1)]
        common = {(0, 0): 5, (0, 1): 1}
        assert set(meta_blocking(pairs, common, keep_fraction=0.0)) == set(pairs)

    def test_prunes_weak_edges(self):
        pairs = [(0, 0), (0, 1), (1, 1)]
        common = {(0, 0): 10, (0, 1): 1, (1, 1): 8}
        kept = meta_blocking(pairs, common, keep_fraction=0.9)
        assert (0, 0) in kept and (1, 1) in kept
        assert (0, 1) not in kept

    def test_strongest_edge_per_node_survives(self):
        pairs = [(0, 0), (1, 0), (2, 0)]
        common = {(0, 0): 3, (1, 0): 2, (2, 0): 1}
        kept = meta_blocking(pairs, common, keep_fraction=1.0)
        # Each source's best edge survives (threshold = min of endpoints' max).
        assert (0, 0) in kept

    def test_empty_input(self):
        assert meta_blocking([], {}, keep_fraction=0.5) == []

    def test_validation(self):
        with pytest.raises(ReproError):
            meta_blocking([(0, 0)], {}, keep_fraction=1.5)


class TestDiscovery:
    def overlapping_sets(self):
        a = [
            SpatialEntity("a0", Polygon.box(0, 0, 10, 10)),
            SpatialEntity("a1", Polygon.box(100, 100, 110, 110)),
        ]
        b = [
            SpatialEntity("b0", Polygon.box(5, 5, 15, 15)),  # overlaps a0
            SpatialEntity("b1", Polygon.box(102, 102, 104, 104)),  # inside a1
            SpatialEntity("b2", Polygon.box(500, 500, 501, 501)),  # alone
        ]
        return a, b

    def test_brute_force_relations(self):
        a, b = self.overlapping_sets()
        result = discover_links(a, b, method="brute_force")
        links = set(result.links)
        assert Link("a0", "intersects", "b0") in links
        assert Link("a1", "contains", "b1") in links
        assert Link("a1", "intersects", "b1") in links
        assert not any(link.target_id == "b2" for link in links)
        assert result.comparisons == 6

    def test_blocking_matches_brute_force(self):
        a, b = self.overlapping_sets()
        brute = discover_links(a, b, method="brute_force")
        blocked = discover_links(a, b, method="blocking", cell_size=20)
        assert set(blocked.links) == set(brute.links)
        assert blocked.comparisons < brute.comparisons

    def test_near_relation(self):
        a = [SpatialEntity("a0", Point(0, 0))]
        b = [SpatialEntity("b0", Point(3, 4)), SpatialEntity("b1", Point(50, 50))]
        result = discover_links(a, b, method="brute_force", near_distance=6.0)
        assert set(result.links) == {Link("a0", "near", "b0")}

    def test_near_with_blocking(self):
        a = [SpatialEntity("a0", Point(0, 0))]
        b = [SpatialEntity("b0", Point(3, 4))]
        result = discover_links(
            a, b, method="blocking", cell_size=10, near_distance=6.0
        )
        assert set(result.links) == {Link("a0", "near", "b0")}

    def test_same_id_skipped(self):
        shared = [SpatialEntity("x", Polygon.box(0, 0, 1, 1))]
        result = discover_links(shared, shared, method="brute_force")
        assert result.links == []

    def test_default_cell_size(self):
        a, b = self.overlapping_sets()
        result = discover_links(a, b, method="blocking")
        assert Link("a0", "intersects", "b0") in set(result.links)

    def test_by_relation_counts(self):
        a, b = self.overlapping_sets()
        counts = discover_links(a, b, method="brute_force").by_relation()
        assert counts["intersects"] == 2
        assert counts["contains"] == 1

    def test_unknown_method(self):
        with pytest.raises(ReproError):
            discover_links([], [], method="magic")

    @given(
        seed=st.integers(0, 100),
        cell=st.floats(min_value=2.0, max_value=50.0, allow_nan=False),
    )
    @settings(max_examples=20, deadline=None)
    def test_blocking_recall_property(self, seed, cell):
        """Blocking + exact comparison finds every brute-force link."""
        rng = random.Random(seed)
        a = [
            SpatialEntity(
                f"a{i}",
                Polygon.box(x := rng.uniform(0, 80), y := rng.uniform(0, 80),
                            x + rng.uniform(1, 8), y + rng.uniform(1, 8)),
            )
            for i in range(15)
        ]
        b = [
            SpatialEntity(
                f"b{i}",
                Polygon.box(x := rng.uniform(0, 80), y := rng.uniform(0, 80),
                            x + rng.uniform(1, 8), y + rng.uniform(1, 8)),
            )
            for i in range(15)
        ]
        brute = discover_links(a, b, method="brute_force")
        blocked = discover_links(a, b, method="blocking", cell_size=cell)
        precision, recall = evaluate_links(blocked.links, brute.links)
        assert precision == 1.0 and recall == 1.0

    def test_metablocking_trades_recall_for_fewer_comparisons(self):
        rng = random.Random(9)
        a = [
            SpatialEntity(
                f"a{i}",
                Polygon.box(x := rng.uniform(0, 50), y := rng.uniform(0, 50),
                            x + rng.uniform(2, 12), y + rng.uniform(2, 12)),
            )
            for i in range(40)
        ]
        b = [
            SpatialEntity(
                f"b{i}",
                Polygon.box(x := rng.uniform(0, 50), y := rng.uniform(0, 50),
                            x + rng.uniform(2, 12), y + rng.uniform(2, 12)),
            )
            for i in range(40)
        ]
        plain = discover_links(a, b, method="blocking", cell_size=5)
        pruned = discover_links(
            a, b, method="blocking", cell_size=5, meta_keep_fraction=0.8
        )
        assert pruned.comparisons < plain.comparisons
        _, recall = evaluate_links(pruned.links, plain.links)
        assert recall > 0.5


class TestEvaluate:
    def test_perfect(self):
        links = [Link("a", "intersects", "b")]
        assert evaluate_links(links, links) == (1.0, 1.0)

    def test_empty_both(self):
        assert evaluate_links([], []) == (1.0, 1.0)

    def test_precision_recall(self):
        truth = [Link("a", "r", "b"), Link("c", "r", "d")]
        found = [Link("a", "r", "b"), Link("x", "r", "y")]
        precision, recall = evaluate_links(found, truth)
        assert precision == 0.5 and recall == 0.5
