"""Temporal and spatiotemporal link discovery tests."""

from datetime import datetime, timedelta

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.geometry import Point, Polygon
from repro.interlinking import (
    Link,
    TemporalEntity,
    discover_spatiotemporal_links,
    discover_temporal_links,
    evaluate_links,
)

BASE = datetime(2017, 1, 1)


def entity(name, start_day, end_day, geometry=None):
    return TemporalEntity(
        name,
        (BASE + timedelta(days=start_day), BASE + timedelta(days=end_day)),
        geometry,
    )


class TestTemporalLinks:
    def test_overlaps_and_during(self):
        sources = [entity("a", 10, 20)]
        targets = [
            entity("b", 15, 25),  # overlaps a
            entity("c", 0, 40),  # a during c
            entity("d", 30, 35),  # disjoint
        ]
        result = discover_temporal_links(sources, targets)
        links = set(result.links)
        assert Link("a", "overlaps", "b") in links
        assert Link("a", "overlaps", "c") in links
        assert Link("a", "during", "c") in links
        assert not any(link.target_id == "d" for link in links)

    def test_before_after_within_horizon(self):
        sources = [entity("a", 0, 10)]
        targets = [
            entity("soon", 15, 20),  # 5 days after a ends
            entity("later", 200, 210),  # far in the future
        ]
        result = discover_temporal_links(
            sources, targets, relations=("before",), before_horizon_days=30,
        )
        assert set(result.links) == {Link("a", "before", "soon")}

    def test_after_relation(self):
        sources = [entity("late", 50, 60)]
        targets = [entity("early", 30, 40)]
        result = discover_temporal_links(
            sources, targets, relations=("after",), before_horizon_days=30,
        )
        assert set(result.links) == {Link("late", "after", "early")}

    def test_index_matches_brute_force(self):
        sources = [entity(f"s{i}", i * 3, i * 3 + 10) for i in range(20)]
        targets = [entity(f"t{i}", i * 4, i * 4 + 6) for i in range(20)]
        fast = discover_temporal_links(sources, targets)
        brute = discover_temporal_links(sources, targets, method="brute_force")
        assert set(fast.links) == set(brute.links)
        assert fast.candidate_pairs < brute.candidate_pairs

    def test_same_id_skipped(self):
        shared = [entity("x", 0, 10)]
        result = discover_temporal_links(shared, shared)
        assert result.links == []

    def test_validation(self):
        with pytest.raises(ReproError):
            discover_temporal_links([], [], relations=("eventually",))
        with pytest.raises(ReproError):
            discover_temporal_links([], [], relations=("before",))
        with pytest.raises(ReproError):
            discover_temporal_links([], [], method="psychic")
        with pytest.raises(ReproError):
            TemporalEntity("bad", (BASE + timedelta(days=5), BASE))

    @given(
        offsets=st.lists(
            st.tuples(st.integers(0, 80), st.integers(1, 20)),
            min_size=1, max_size=15,
        ),
        horizon=st.integers(1, 40),
    )
    @settings(max_examples=25, deadline=None)
    def test_index_equals_brute_force_property(self, offsets, horizon):
        sources = [entity(f"s{i}", s, s + l) for i, (s, l) in enumerate(offsets)]
        targets = [
            entity(f"t{i}", s + 7, s + l + 7) for i, (s, l) in enumerate(offsets)
        ]
        kwargs = dict(
            relations=("before", "after", "overlaps", "during"),
            before_horizon_days=horizon,
        )
        fast = discover_temporal_links(sources, targets, **kwargs)
        brute = discover_temporal_links(
            sources, targets, method="brute_force", **kwargs
        )
        precision, recall = evaluate_links(fast.links, brute.links)
        assert precision == 1.0 and recall == 1.0


class TestSpatioTemporalLinks:
    def test_cooccurrence(self):
        sources = [
            entity("a", 0, 10, Polygon.box(0, 0, 10, 10)),
        ]
        targets = [
            entity("same_place_time", 5, 15, Polygon.box(5, 5, 15, 15)),
            entity("same_place_later", 50, 60, Polygon.box(5, 5, 15, 15)),
            entity("same_time_elsewhere", 5, 15, Polygon.box(100, 100, 110, 110)),
        ]
        result = discover_spatiotemporal_links(sources, targets)
        assert set(result.links) == {Link("a", "cooccurs", "same_place_time")}
        # Temporal index pruned the "later" pair before any geometry test.
        assert result.candidate_pairs == 2

    def test_custom_relation_name(self):
        sources = [entity("a", 0, 10, Point(1, 1))]
        targets = [entity("b", 0, 10, Polygon.box(0, 0, 5, 5))]
        result = discover_spatiotemporal_links(sources, targets, relation_name="within")
        assert result.links == [Link("a", "within", "b")]

    def test_geometry_required(self):
        with pytest.raises(ReproError):
            discover_spatiotemporal_links([entity("a", 0, 1)], [entity("b", 0, 1)])

    def test_iceberg_track_scenario(self):
        """The A2 use: link iceberg observations to the ice regions they
        co-occurred with."""
        observations = [
            entity(f"berg_obs{i}", i * 7, i * 7, Point(10 + i * 5, 50))
            for i in range(4)
        ]
        regions = [
            entity("winter_pack", 0, 15, Polygon.box(0, 40, 20, 60)),
            entity("spring_pack", 16, 40, Polygon.box(15, 40, 40, 60)),
        ]
        result = discover_spatiotemporal_links(observations, regions)
        by_region = {}
        for link in result.links:
            by_region.setdefault(link.target_id, []).append(link.source_id)
        assert set(by_region.get("winter_pack", [])) == {"berg_obs0", "berg_obs1", "berg_obs2"}
        assert set(by_region.get("spring_pack", [])) == {"berg_obs3"}
