"""RetryPolicy tests: backoff math, deadlines, exhaustion accounting."""

import random

import pytest

from repro.errors import FaultError, MLError, RetryExhausted, TimeoutExceeded
from repro.faults import RetryPolicy, RetryState


class Flaky:
    """Callable failing ``failures`` times before returning ``value``."""

    def __init__(self, failures, value="ok", error=None):
        self.failures = failures
        self.value = value
        self.error = error if error is not None else FaultError("transient")
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return self.value


class TestBackoff:
    def test_exponential_sequence(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0, max_delay_s=1.0,
                             jitter=0.0)
        assert [policy.backoff_s(i) for i in range(1, 6)] == [
            0.1, 0.2, 0.4, 0.8, 1.0  # capped at max_delay_s
        ]

    def test_jitter_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=1.0, jitter=0.25)
        rng_a, rng_b = random.Random(7), random.Random(7)
        a = [policy.backoff_s(1, rng_a) for _ in range(20)]
        b = [policy.backoff_s(1, rng_b) for _ in range(20)]
        assert a == b
        assert all(0.75 <= d <= 1.25 for d in a)
        assert len(set(a)) > 1  # jitter actually perturbs

    def test_default_jitter_applies_without_explicit_rng(self):
        # Regression: the documented jitter=0.1 default was silently
        # dropped unless the caller passed an rng — every default-config
        # retry across the platform backed off in lockstep.
        policy = RetryPolicy(base_delay_s=1.0, multiplier=1.0)
        delays = [policy.backoff_s(1) for _ in range(20)]
        assert len(set(delays)) > 1
        assert all(0.9 <= d <= 1.1 for d in delays)

    def test_default_jitter_replays_under_fixed_seed(self):
        a = RetryPolicy(base_delay_s=1.0, multiplier=1.0, jitter_seed=42)
        b = RetryPolicy(base_delay_s=1.0, multiplier=1.0, jitter_seed=42)
        assert [a.backoff_s(1) for _ in range(10)] == [
            b.backoff_s(1) for _ in range(10)
        ]
        c = RetryPolicy(base_delay_s=1.0, multiplier=1.0, jitter_seed=43)
        assert [a.backoff_s(1)] != [c.backoff_s(1)]

    def test_explicit_rng_still_wins_over_policy_stream(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=1.0, jitter=0.25)
        assert policy.backoff_s(1, random.Random(7)) == policy.backoff_s(
            1, random.Random(7)
        )

    def test_validation(self):
        with pytest.raises(FaultError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(FaultError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(FaultError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(FaultError):
            policy = RetryPolicy()
            policy.backoff_s(0)


class TestCall:
    def test_success_after_retries(self):
        fn = Flaky(failures=2)
        state = RetryState()
        waits = []
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.1, jitter=0.0)
        assert policy.call(fn, state=state, sleep=waits.append) == "ok"
        assert fn.calls == 3
        assert state.attempts == 3
        assert state.retries == 2
        assert waits == [0.1, 0.2]
        assert state.waited_s == pytest.approx(0.3)

    def test_exhaustion_accounting(self):
        fn = Flaky(failures=10)
        policy = RetryPolicy(max_attempts=3, jitter=0.0)
        with pytest.raises(RetryExhausted) as excinfo:
            policy.call(fn)
        assert fn.calls == 3
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, FaultError)
        assert not excinfo.value.retryable  # giving up is final

    def test_deadline_raises_timeout(self):
        fn = Flaky(failures=10)
        # 0.1 + 0.2 fit in 0.35s; the third wait (0.4) would cross it.
        policy = RetryPolicy(max_attempts=10, base_delay_s=0.1, jitter=0.0,
                             deadline_s=0.35)
        state = RetryState()
        with pytest.raises(TimeoutExceeded):
            policy.call(fn, state=state)
        assert state.attempts == 3
        assert state.waited_s == pytest.approx(0.3)

    def test_non_retryable_error_propagates_immediately(self):
        fn = Flaky(failures=10, error=MLError("not a fault"))
        policy = RetryPolicy(max_attempts=5)
        with pytest.raises(MLError):
            policy.call(fn)
        assert fn.calls == 1

    def test_permanent_fault_not_retried(self):
        class Permanent(FaultError):
            retryable = False

        fn = Flaky(failures=10, error=Permanent("dead"))
        with pytest.raises(Permanent):
            RetryPolicy(max_attempts=5).call(fn)
        assert fn.calls == 1

    def test_single_attempt_means_no_retry(self):
        fn = Flaky(failures=1)
        with pytest.raises(RetryExhausted):
            RetryPolicy(max_attempts=1).call(fn)
        assert fn.calls == 1
