"""Property tests: RetryPolicy never spends past its deadline.

Hypothesis drives the policy with arbitrary backoff shapes, budgets and
failure counts, under both deadline flavours:

* a *clocked* :class:`~repro.resilience.Deadline` watching a fake clock
  that advances on every attempt and sleep;
* a *charge-driven* one that only sees the backoff waits the policy bills
  to it.

In every case the invariant is the same: the loop may fail with
``TimeoutExceeded`` (or exhaust attempts, or succeed), but it must never
start a backoff sleep that lands past the budget, and cumulative waits
stay within it.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FaultError, RetryExhausted, TimeoutExceeded
from repro.faults import RetryPolicy, RetryState
from repro.resilience import Deadline


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class Flaky:
    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise FaultError("transient")
        return "ok"


policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=12),
    base_delay_s=st.floats(min_value=0.001, max_value=2.0),
    multiplier=st.floats(min_value=1.0, max_value=4.0),
    max_delay_s=st.floats(min_value=0.5, max_value=8.0),
    jitter=st.floats(min_value=0.0, max_value=0.5),
    jitter_seed=st.integers(min_value=0, max_value=1000),
)


@settings(max_examples=60, deadline=None)
@given(
    policy=policies,
    budget=st.floats(min_value=0.0, max_value=5.0),
    failures=st.integers(min_value=0, max_value=20),
    attempt_cost=st.floats(min_value=0.0, max_value=1.0),
)
def test_clocked_deadline_never_waits_past_budget(
    policy, budget, failures, attempt_cost
):
    clock = FakeClock()
    deadline = Deadline(budget, clock=clock)
    state = RetryState()
    waits = []

    def sleep(delay):
        waits.append((clock.now, delay))
        clock.now += delay

    def flaky_with_cost(flaky=Flaky(failures)):
        clock.now += attempt_cost
        return flaky()

    try:
        policy.call(
            flaky_with_cost, state=state, sleep=sleep, clock=clock,
            deadline=deadline,
        )
    except (TimeoutExceeded, RetryExhausted):
        pass
    # No sleep may begin on an expired budget or overshoot it: the loop
    # checks allows(delay) with attempt time already on the clock.
    for started_at, delay in waits:
        assert started_at + delay <= budget + 1e-9


@settings(max_examples=60, deadline=None)
@given(
    policy=policies,
    budget=st.floats(min_value=0.0, max_value=5.0),
    failures=st.integers(min_value=0, max_value=20),
)
def test_charged_deadline_bounds_cumulative_backoff(policy, budget, failures):
    deadline = Deadline(budget)
    state = RetryState()
    try:
        policy.call(Flaky(failures), state=state, deadline=deadline)
    except (TimeoutExceeded, RetryExhausted):
        pass
    # The policy bills every backoff to the charge-driven deadline and
    # refuses any that does not fit, so waits never exceed the budget.
    assert state.waited_s <= budget + 1e-9
    assert deadline.elapsed() == pytest.approx(state.waited_s)


@settings(max_examples=40, deadline=None)
@given(
    policy=policies,
    failures=st.integers(min_value=0, max_value=20),
)
def test_expired_deadline_refuses_to_start(policy, failures):
    deadline = Deadline(0.5)
    deadline.charge(1.0)
    flaky = Flaky(failures)
    with pytest.raises(TimeoutExceeded):
        policy.call(flaky, deadline=deadline)
    assert flaky.calls == 0  # no attempt launched on a dead budget


def test_legacy_behaviour_without_clock_or_deadline():
    # The satellite fix must not disturb existing callers: deadline_s still
    # bounds cumulative backoff only when no clock is given.
    policy = RetryPolicy(max_attempts=10, base_delay_s=1.0, multiplier=1.0,
                         jitter=0.0, deadline_s=2.5)
    state = RetryState()
    with pytest.raises(TimeoutExceeded):
        policy.call(Flaky(10), state=state)
    assert state.waited_s <= 2.5


def test_clock_charges_attempt_time_against_deadline_s():
    # With a clock, slow attempts count against deadline_s too — the
    # satellite bug was that only backoff did.
    clock = FakeClock()

    def slow_failure():
        clock.now += 2.0
        raise FaultError("transient")

    policy = RetryPolicy(max_attempts=10, base_delay_s=1.0, multiplier=1.0,
                         jitter=0.0, deadline_s=2.5)
    state = RetryState()
    with pytest.raises(TimeoutExceeded):
        policy.call(slow_failure, state=state, clock=clock)
    # One 2s attempt plus a 1s backoff would cross 2.5s: refused before
    # any wait happened.
    assert state.attempts == 1
    assert state.waited_s == 0.0
