"""FaultPlan/FaultInjector tests: determinism and plan semantics."""

import pytest

from repro.errors import FaultError
from repro.faults import (
    EndpointFault,
    FaultInjector,
    FaultPlan,
    NodeCrash,
    ShardOutage,
    Straggler,
    WorkerCrash,
)


class TestFaultPlan:
    def test_none_is_empty(self):
        plan = FaultPlan.none()
        assert plan.empty
        assert FaultPlan(seed=99).empty  # seed alone injects nothing

    def test_non_empty(self):
        assert not FaultPlan(node_crashes=(NodeCrash(0, 1.0),)).empty
        assert not FaultPlan(task_failure_rate=0.5).empty

    def test_chaos_deterministic(self):
        kwargs = dict(
            node_count=8,
            node_crash_prob=0.3,
            straggler_prob=0.3,
            shard_count=8,
            shard_outage_prob=0.4,
            endpoints=("a", "b", "c"),
            endpoint_error_rate=0.1,
            endpoint_death_prob=0.5,
            workers=8,
            worker_crash_prob=0.25,
        )
        assert FaultPlan.chaos(17, **kwargs) == FaultPlan.chaos(17, **kwargs)
        assert FaultPlan.chaos(17, **kwargs) != FaultPlan.chaos(18, **kwargs)

    def test_chaos_respects_rates(self):
        plan = FaultPlan.chaos(0, node_count=50, node_crash_prob=1.0, horizon_s=5.0)
        assert len(plan.node_crashes) == 50
        assert all(0.0 <= c.at_s <= 5.0 for c in plan.node_crashes)
        assert FaultPlan.chaos(0, node_count=50, node_crash_prob=0.0).empty

    def test_validation(self):
        with pytest.raises(FaultError):
            FaultPlan(task_failure_rate=1.0)
        with pytest.raises(FaultError):
            Straggler(0, factor=0.5)
        with pytest.raises(FaultError):
            EndpointFault("e", error_rate=0.8, timeout_rate=0.5)


class TestShardOutage:
    def test_transient_window(self):
        outage = ShardOutage(shard=0, start_op=10, duration_ops=5)
        assert not outage.permanent
        assert not outage.covers(9)
        assert outage.covers(10)
        assert outage.covers(14)
        assert not outage.covers(15)

    def test_permanent(self):
        outage = ShardOutage(shard=0, start_op=3, duration_ops=None)
        assert outage.permanent
        assert not outage.covers(2)
        assert outage.covers(10**9)


class TestInjectorDeterminism:
    def test_task_failure_stream_reproducible(self):
        plan = FaultPlan(seed=5, task_failure_rate=0.5)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        verdicts_a = [a.task_fails(task_id) for task_id in range(20) for _ in range(3)]
        verdicts_b = [b.task_fails(task_id) for task_id in range(20) for _ in range(3)]
        assert verdicts_a == verdicts_b
        assert any(verdicts_a) and not all(verdicts_a)

    def test_streams_are_per_key(self):
        """Draws for one task never perturb another task's verdicts."""
        plan = FaultPlan(seed=5, task_failure_rate=0.5)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        # a interleaves tasks 0 and 1; b consults only task 1.
        for _ in range(10):
            a.task_fails(0)
        seq_a = [a.task_fails(1) for _ in range(10)]
        seq_b = [b.task_fails(1) for _ in range(10)]
        assert seq_a == seq_b

    def test_endpoint_outcomes_reproducible(self):
        plan = FaultPlan(
            seed=9,
            endpoint_faults=(
                EndpointFault("flaky", error_rate=0.3, timeout_rate=0.2),
            ),
        )
        runs = []
        for _ in range(2):
            injector = FaultInjector(plan)
            runs.append(
                [injector.endpoint_outcome("flaky", i) for i in range(50)]
            )
        assert runs[0] == runs[1]
        assert {"error", "timeout", "ok"} >= set(runs[0])
        assert "error" in runs[0] and "ok" in runs[0]

    def test_zero_rate_task_draws_nothing(self):
        injector = FaultInjector(FaultPlan.none())
        assert not injector.task_fails(0)
        assert injector.endpoint_outcome("anything", 0) == "ok"
        assert injector.straggler_factor(3) == 1.0
        assert injector.node_crash_time(3) is None
        assert injector.shard_outage(0, 0) is None
        assert not injector.worker_crashed(0, 10)


class TestInjectorQueries:
    def test_node_faults(self):
        plan = FaultPlan(
            node_crashes=(NodeCrash(2, 7.5),), stragglers=(Straggler(1, 4.0),)
        )
        injector = FaultInjector(plan)
        assert injector.node_crash_time(2) == 7.5
        assert injector.node_crash_time(0) is None
        assert injector.straggler_factor(1) == 4.0
        assert injector.straggler_factor(2) == 1.0

    def test_endpoint_death_dominates(self):
        plan = FaultPlan(
            endpoint_faults=(
                EndpointFault("e", error_rate=0.0, dead_after_calls=3),
            )
        )
        injector = FaultInjector(plan)
        assert [injector.endpoint_outcome("e", i) for i in range(5)] == [
            "ok",
            "ok",
            "ok",
            "dead",
            "dead",
        ]

    def test_worker_crash_step(self):
        injector = FaultInjector(
            FaultPlan(worker_crashes=(WorkerCrash(worker=1, at_step=4),))
        )
        assert not injector.worker_crashed(1, 3)
        assert injector.worker_crashed(1, 4)
        assert injector.worker_crashed(1, 5)
        assert not injector.worker_crashed(0, 100)


class TestE25Faults:
    """NodeLoss / NetworkPartition (E25) and the append-only draw discipline."""

    def test_node_loss_validation_and_lookup(self):
        from repro.faults import NodeLoss

        with pytest.raises(FaultError):
            NodeLoss(node_id=0, at_s=-1.0)
        plan = FaultPlan(node_losses=(NodeLoss(node_id=2, at_s=5.0),))
        assert not plan.empty
        injector = FaultInjector(plan)
        assert injector.node_loss_time(2) == 5.0
        assert injector.node_loss_time(0) is None
        assert injector.node_losses() == plan.node_losses

    def test_network_partition_validation(self):
        from repro.faults import NetworkPartition

        with pytest.raises(FaultError):
            NetworkPartition(island=(), down_s=0.0, up_s=1.0)
        with pytest.raises(FaultError):
            NetworkPartition(island=(0,), down_s=2.0, up_s=1.0)

    def test_reachability_window(self):
        from repro.faults import NetworkPartition

        plan = FaultPlan(
            network_partitions=(
                NetworkPartition(island=(0, 1), down_s=10.0, up_s=20.0),
            )
        )
        injector = FaultInjector(plan)
        # Cross-island links fail only inside the window.
        assert injector.reachable(0, 2, 5.0)
        assert not injector.reachable(0, 2, 15.0)
        assert not injector.reachable(2, 0, 15.0)
        assert injector.reachable(0, 2, 20.0)
        # Same-side links always work, and a node reaches itself.
        assert injector.reachable(0, 1, 15.0)
        assert injector.reachable(2, 3, 15.0)
        assert injector.reachable(0, 0, 15.0)

    def test_chaos_generates_e25_faults(self):
        plan = FaultPlan.chaos(
            seed=11,
            node_count=8,
            node_loss_prob=0.5,
            network_partition_prob=1.0,
            network_partition_duration_s=7.5,
            horizon_s=50.0,
        )
        assert plan.node_losses  # p=0.5 over 8 nodes: astronomically likely
        assert len(plan.network_partitions) == 1
        window = plan.network_partitions[0]
        assert window.up_s - window.down_s == pytest.approx(7.5)
        assert all(0 <= n < 8 for n in window.island)
        # Island splits the cluster: never empty, never everyone.
        assert 0 < len(window.island) < 8

    def test_chaos_draws_are_append_only(self):
        """Enabling the E25 knobs must not move any pre-existing draw: the
        new kinds consume randomness strictly *after* every older kind."""
        base = dict(
            seed=42,
            node_count=6,
            node_crash_prob=0.4,
            straggler_prob=0.4,
            task_failure_rate=0.2,
            datanode_count=4,
            datanode_crash_prob=0.3,
            shard_count=4,
            shard_outage_prob=0.3,
            endpoints=("a", "b"),
            endpoint_error_rate=0.2,
            workers=3,
            worker_crash_prob=0.3,
            block_count=5,
            bit_flip_prob=0.2,
            stale_replica_prob=0.2,
            slow_operator_ops=("JoinOp",),
            slow_operator_prob=0.5,
        )
        old = FaultPlan.chaos(**base)
        new = FaultPlan.chaos(
            **base,
            node_loss_prob=0.7,
            network_partition_prob=1.0,
            network_partition_duration_s=5.0,
        )
        assert new.node_losses or new.network_partitions
        for field in (
            "node_crashes",
            "stragglers",
            "task_failure_rate",
            "datanode_crashes",
            "shard_outages",
            "endpoint_faults",
            "worker_crashes",
            "bit_flips",
            "stale_replicas",
            "slow_operators",
        ):
            assert getattr(old, field) == getattr(new, field), field
        # And with the knobs at zero the plans are outright identical.
        assert FaultPlan.chaos(**base) == old
