"""Multi-temporal and multimodal dataset tests."""

import numpy as np
import pytest

from repro.errors import MLError
from repro.datasets import (
    make_multimodal_dataset,
    make_multitemporal_dataset,
    modality_view,
    single_date_view,
)
from repro.raster.sentinel import CROP_CLASSES, LandCover, S2_BANDS


class TestMultiTemporal:
    def test_shapes(self):
        ds = make_multitemporal_dataset(samples=20, patch_size=4, days=(120, 200))
        assert ds.x.shape == (20, S2_BANDS * 2, 4, 4)
        assert ds.num_classes == len(CROP_CLASSES)

    def test_deterministic(self):
        a = make_multitemporal_dataset(samples=10, patch_size=4, seed=5)
        b = make_multitemporal_dataset(samples=10, patch_size=4, seed=5)
        np.testing.assert_array_equal(a.x, b.x)

    def test_temporal_signal_exists(self):
        """Wheat and maize NIR trajectories must cross over the season."""
        ds = make_multitemporal_dataset(
            samples=200, patch_size=4, days=(135, 225), seed=1, noise_std=0.0
        )
        wheat = ds.x[ds.y == 0]
        maize = ds.x[ds.y == 1]
        nir = 7  # band index within each date block
        # Date 0 (May): wheat greener; date 1 (Aug): maize greener.
        wheat_may = wheat[:, nir].mean()
        maize_may = maize[:, nir].mean()
        wheat_aug = wheat[:, S2_BANDS + nir].mean()
        maize_aug = maize[:, S2_BANDS + nir].mean()
        assert wheat_may > maize_may
        assert maize_aug > wheat_aug

    def test_single_date_view(self):
        ds = make_multitemporal_dataset(samples=8, patch_size=4, days=(120, 200))
        view = single_date_view(ds, date_index=1, dates=2)
        assert view.x.shape == (8, S2_BANDS, 4, 4)
        np.testing.assert_array_equal(view.x, ds.x[:, S2_BANDS:])
        np.testing.assert_array_equal(view.y, ds.y)

    def test_single_date_view_validation(self):
        ds = make_multitemporal_dataset(samples=4, patch_size=4, days=(120, 200))
        with pytest.raises(MLError):
            single_date_view(ds, date_index=2, dates=2)
        with pytest.raises(MLError):
            single_date_view(ds, date_index=0, dates=5)

    def test_validation(self):
        with pytest.raises(MLError):
            make_multitemporal_dataset(samples=0)
        with pytest.raises(MLError):
            make_multitemporal_dataset(samples=5, days=())


class TestMultiModal:
    def test_shapes(self):
        ds = make_multimodal_dataset(samples=12, patch_size=4)
        assert ds.x.shape == (12, S2_BANDS + 2, 4, 4)

    def test_sar_channels_normalised(self):
        ds = make_multimodal_dataset(samples=30, patch_size=4, seed=2)
        sar = ds.x[:, S2_BANDS:]
        assert -0.5 < sar.min() and sar.max() < 1.5

    def test_clouds_corrupt_only_optical(self):
        clear = make_multimodal_dataset(samples=60, patch_size=4, seed=3)
        cloudy = make_multimodal_dataset(
            samples=60, patch_size=4, seed=3, cloud_fraction=0.6
        )
        # Optical distributions shift strongly; SAR statistics barely move.
        optical_shift = abs(
            clear.x[:, :S2_BANDS].mean() - cloudy.x[:, :S2_BANDS].mean()
        )
        sar_shift = abs(
            clear.x[:, S2_BANDS:].mean() - cloudy.x[:, S2_BANDS:].mean()
        )
        assert optical_shift > 0.1
        assert sar_shift < 0.05

    def test_modality_views(self):
        ds = make_multimodal_dataset(samples=6, patch_size=4)
        optical = modality_view(ds, "optical")
        sar = modality_view(ds, "sar")
        assert optical.x.shape[1] == S2_BANDS
        assert sar.x.shape[1] == 2
        with pytest.raises(MLError):
            modality_view(ds, "thermal")

    def test_classes_configurable(self):
        ds = make_multimodal_dataset(
            samples=20, patch_size=4,
            classes=(LandCover.WATER, LandCover.URBAN),
            seed=4,
        )
        assert set(np.unique(ds.y)) <= {0, 1}
        assert ds.num_classes == 2


class TestEndToEndGains:
    """The headline C1 claims in miniature (full sweeps live in benchmarks)."""

    def test_temporal_stack_beats_single_date(self):
        from repro.apps.foodsecurity.cropmap import (
            build_crop_classifier,
            train_crop_classifier,
        )
        from repro.datasets import stratified_split
        from repro.ml import accuracy

        # Two confusable winter crops on one date, separable across dates.
        days = (135, 225)
        full = make_multitemporal_dataset(
            samples=240, patch_size=4, days=days,
            classes=(LandCover.WHEAT, LandCover.MAIZE), seed=6,
        )
        single = single_date_view(full, date_index=0, dates=2)

        def score(ds):
            train, test = stratified_split(ds, test_fraction=0.25, seed=0)
            model = build_crop_classifier(
                num_classes=2, patch_size=4, bands=ds.x.shape[1], seed=1
            )
            train_crop_classifier(model, train, epochs=6, batch_size=16, lr=0.02)
            return accuracy(model.predict(test.x), test.y)

        assert score(full) >= score(single) - 0.02  # stack never loses
