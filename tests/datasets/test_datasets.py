"""Dataset generation, weak labelling, augmentation, and split tests."""

import numpy as np
import pytest

from repro.errors import MLError
from repro.datasets import (
    Dataset,
    WeakLabelConfig,
    augment_dataset,
    make_eurosat,
    make_osm_layer,
    stratified_split,
    weak_label_dataset,
)
from repro.datasets.augmentation import band_dropout, band_jitter, flip_horizontal, rotate90
from repro.datasets.weaklabel import crop_label, label_noise_rate
from repro.raster import GeoTransform, LandCover, RasterGrid
from repro.raster.sentinel import CROP_CLASSES, S2_BANDS, sentinel2_scene
from repro.raster.stats import rasterize_polygon


class TestEuroSat:
    def test_shapes(self):
        ds = make_eurosat(samples=50, patch_size=8, seed=0)
        assert ds.x.shape == (50, S2_BANDS, 8, 8)
        assert ds.y.shape == (50,)
        assert len(ds) == 50
        assert ds.num_classes == 8

    def test_deterministic(self):
        a = make_eurosat(samples=20, seed=3)
        b = make_eurosat(samples=20, seed=3)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)

    def test_all_classes_present_at_scale(self):
        ds = make_eurosat(samples=400, seed=1)
        assert set(np.unique(ds.y)) == set(range(8))

    def test_classes_linearly_separable_enough(self):
        # Mean spectra of water vs urban patches must differ clearly.
        ds = make_eurosat(samples=300, seed=2)
        water = ds.x[ds.y == 0].mean(axis=(0, 2, 3))
        urban = ds.x[ds.y == 1].mean(axis=(0, 2, 3))
        assert np.abs(water - urban).max() > 0.1

    def test_validation(self):
        with pytest.raises(MLError):
            make_eurosat(samples=0)
        with pytest.raises(MLError):
            make_eurosat(samples=10, num_classes=1)

    def test_dataset_validation(self):
        with pytest.raises(MLError):
            Dataset(np.zeros((2, 3)), np.zeros(2), ("a",))
        with pytest.raises(MLError):
            Dataset(np.zeros((2, 1, 4, 4)), np.zeros(3), ("a",))

    def test_subset(self):
        ds = make_eurosat(samples=30, seed=0)
        sub = ds.subset(np.arange(10))
        assert len(sub) == 10
        np.testing.assert_array_equal(sub.y, ds.y[:10])


class TestOSMLayer:
    def test_parcel_count(self):
        layer = make_osm_layer(parcel_grid=4, seed=0)
        assert layer.parcel_count == 16

    def test_parcels_inside_extent(self):
        layer = make_osm_layer(extent=(0, 0, 100, 100), parcel_grid=3, seed=1)
        for parcel in layer.parcels:
            box = parcel.geometry.bbox
            assert box.min_x >= 0 and box.max_x <= 100
            assert box.min_y >= 0 and box.max_y <= 100

    def test_parcels_disjoint(self):
        from repro.geometry import intersects

        layer = make_osm_layer(parcel_grid=3, seed=2)
        parcels = layer.parcels
        for i in range(len(parcels)):
            for j in range(i + 1, len(parcels)):
                assert not intersects(parcels[i].geometry, parcels[j].geometry)

    def test_attribute_error_rate(self):
        layer = make_osm_layer(parcel_grid=16, attribute_error=0.2, seed=3)
        assert 0.1 < layer.attribute_error_rate() < 0.3
        clean = make_osm_layer(parcel_grid=16, attribute_error=0.0, seed=3)
        assert clean.attribute_error_rate() == 0.0

    def test_roads_and_water(self):
        layer = make_osm_layer(road_count=5, water_count=2, seed=4)
        assert len(layer.roads) == 5
        assert len(layer.water) == 2

    def test_crops_only(self):
        layer = make_osm_layer(seed=5)
        assert all(p.crop in CROP_CLASSES for p in layer.parcels)

    def test_validation(self):
        with pytest.raises(MLError):
            make_osm_layer(extent=(10, 0, 0, 10))
        with pytest.raises(MLError):
            make_osm_layer(attribute_error=2.0)


def make_scene_and_layer(attribute_error=0.0, seed=0, size=64):
    """A scene whose truth matches the parcel layer's true crops."""
    layer = make_osm_layer(
        extent=(0.0, 0.0, size * 10.0, size * 10.0),
        parcel_grid=4,
        attribute_error=attribute_error,
        seed=seed,
    )
    transform = GeoTransform(0.0, size * 10.0, 10.0)
    truth = np.full((size, size), int(LandCover.BARE_SOIL), dtype=np.int16)
    for parcel in layer.parcels:
        mask = rasterize_polygon(parcel.geometry, transform, (size, size))
        truth[mask] = int(parcel.true_crop)
    scene = sentinel2_scene(truth, day_of_year=170, seed=seed, transform=transform)
    return scene, layer


class TestWeakLabel:
    def test_produces_patches(self):
        scene, layer = make_scene_and_layer()
        ds = weak_label_dataset(scene.grid, layer, WeakLabelConfig(patch_size=4))
        assert len(ds) > 0
        assert ds.x.shape[1] == S2_BANDS
        assert set(np.unique(ds.y)) <= set(range(len(CROP_CLASSES)))

    def test_clean_attributes_give_clean_labels(self):
        scene, layer = make_scene_and_layer(attribute_error=0.0, seed=1)
        weak = weak_label_dataset(scene.grid, layer, WeakLabelConfig(patch_size=4), seed=7)
        true = weak_label_dataset(
            scene.grid, layer, WeakLabelConfig(patch_size=4), seed=7, true_labels=True
        )
        assert label_noise_rate(weak.y, true.y) == 0.0

    def test_attribute_errors_become_label_noise(self):
        scene, layer = make_scene_and_layer(attribute_error=0.3, seed=2)
        weak = weak_label_dataset(scene.grid, layer, WeakLabelConfig(patch_size=4), seed=7)
        true = weak_label_dataset(
            scene.grid, layer, WeakLabelConfig(patch_size=4), seed=7, true_labels=True
        )
        # With 16 parcels the realized error rate fluctuates; it must be
        # non-zero and roughly track the layer's own attribute error.
        noise = label_noise_rate(weak.y, true.y)
        assert noise > 0.0
        assert noise == pytest.approx(layer.attribute_error_rate(), abs=0.25)

    def test_misalignment_reduces_patch_count(self):
        scene, layer = make_scene_and_layer(seed=3)
        aligned = weak_label_dataset(
            scene.grid, layer, WeakLabelConfig(patch_size=4), seed=1
        )
        shifted = weak_label_dataset(
            scene.grid,
            layer,
            WeakLabelConfig(patch_size=4, misalignment_m=80.0),
            seed=1,
        )
        # Misalignment pushes parcels off their pixels; fewer valid patches
        # (some fall outside / below coverage) or equal at worst.
        assert len(shifted) <= len(aligned)

    def test_crop_label_mapping(self):
        assert crop_label(LandCover.WHEAT) == 0
        with pytest.raises(MLError):
            crop_label(LandCover.WATER)

    def test_config_validation(self):
        with pytest.raises(MLError):
            WeakLabelConfig(patch_size=0)
        with pytest.raises(MLError):
            WeakLabelConfig(min_coverage=0.0)

    def test_label_noise_rate_validation(self):
        with pytest.raises(MLError):
            label_noise_rate(np.array([1]), np.array([1, 2]))
        with pytest.raises(MLError):
            label_noise_rate(np.array([]), np.array([]))


class TestAugmentation:
    patch = np.arange(2 * 4 * 4, dtype=np.float64).reshape(2, 4, 4)

    def test_flip_involution(self):
        np.testing.assert_array_equal(
            flip_horizontal(flip_horizontal(self.patch)), self.patch
        )

    def test_rotate_four_times_identity(self):
        out = self.patch
        for _ in range(4):
            out = rotate90(out)
        np.testing.assert_array_equal(out, self.patch)

    def test_band_jitter_preserves_shape_positive(self):
        rng = np.random.default_rng(0)
        out = band_jitter(self.patch, rng)
        assert out.shape == self.patch.shape
        assert (out >= 0).all()

    def test_band_dropout_keeps_at_least_one(self):
        rng = np.random.default_rng(1)
        out = band_dropout(self.patch, rng, rate=0.99)
        assert out.shape == self.patch.shape
        band_sums = out.sum(axis=(1, 2))
        assert (band_sums != 0).any()

    def test_augment_dataset_size(self):
        ds = make_eurosat(samples=10, seed=0)
        out = augment_dataset(ds, copies=3, seed=1)
        assert len(out) == 40
        np.testing.assert_array_equal(out.y[:10], ds.y)
        np.testing.assert_array_equal(out.y[10:20], ds.y)

    def test_augmented_samples_differ(self):
        ds = make_eurosat(samples=5, seed=0)
        out = augment_dataset(ds, copies=1, seed=2)
        assert not np.array_equal(out.x[:5], out.x[5:])

    def test_zero_copies_identity(self):
        ds = make_eurosat(samples=5, seed=0)
        out = augment_dataset(ds, copies=0)
        assert len(out) == 5


class TestSplits:
    def test_split_sizes(self):
        ds = make_eurosat(samples=100, seed=0)
        train, test = stratified_split(ds, test_fraction=0.25, seed=0)
        assert len(train) + len(test) == 100
        assert 15 <= len(test) <= 35

    def test_stratification(self):
        ds = make_eurosat(samples=400, seed=1)
        train, test = stratified_split(ds, test_fraction=0.2, seed=0)
        for label in np.unique(ds.y):
            total = (ds.y == label).sum()
            in_test = (test.y == label).sum()
            assert 0 < in_test < total

    def test_no_overlap(self):
        ds = make_eurosat(samples=60, seed=2)
        train, test = stratified_split(ds, test_fraction=0.3, seed=1)
        # Identical patches across sides would indicate index overlap.
        train_keys = {hash(train.x[i].tobytes()) for i in range(len(train))}
        test_keys = {hash(test.x[i].tobytes()) for i in range(len(test))}
        assert not train_keys & test_keys

    def test_validation(self):
        ds = make_eurosat(samples=20, seed=0)
        with pytest.raises(MLError):
            stratified_split(ds, test_fraction=0.0)
        with pytest.raises(MLError):
            stratified_split(ds, test_fraction=1.5)
