"""Unit tests for the E24 data cube: chunking, append-only storage,
pruning, provenance, and the HopsFS integration (E17/E20 apply to chunks)."""

import numpy as np
import pytest

from repro.datacube import (
    ChunkKey,
    ChunkProvenance,
    ChunkStore,
    Cube,
    CubeSchema,
    decode_chunk,
    encode_chunk,
)
from repro.durability import BlockChecksums
from repro.errors import BlockCorruption, DatacubeError
from repro.hopsfs.blocks import BlockManager
from repro.hopsfs.filesystem import HopsFS
from repro.obs import Observability
from repro.raster.grid import GeoTransform


def make_cube(height=80, width=60, chunk_t=3, chunk_y=32, chunk_x=32,
              variables=("a", "b"), store=None, obs=None):
    schema = CubeSchema(
        transform=GeoTransform(0.0, 0.0, 10.0),
        height=height, width=width, variables=tuple(variables),
        chunk_t=chunk_t, chunk_y=chunk_y, chunk_x=chunk_x,
    )
    store = store if store is not None else ChunkStore(obs=obs)
    return Cube.create(store, "/cubes/test", schema, obs=obs)


def fill(cube, steps, seed=0):
    rng = np.random.default_rng(seed)
    dense = {v: [] for v in cube.schema.variables}
    start = len(cube.times)
    for index in range(start, start + steps):
        arrays = {
            v: rng.random((cube.schema.height, cube.schema.width))
            for v in cube.schema.variables
        }
        cube.append(float(index * 10), arrays, source_id=f"scene-{index}")
        for v, a in arrays.items():
            dense[v].append(a.astype("float32"))
    return {v: np.stack(a) for v, a in dense.items()}


class TestChunkCodec:
    def test_roundtrip(self):
        array = np.arange(2 * 3 * 4, dtype=np.float32).reshape(2, 3, 4)
        assert np.array_equal(decode_chunk(encode_chunk(array)), array)

    def test_bad_magic(self):
        with pytest.raises(DatacubeError, match="magic"):
            decode_chunk(b"nope" * 10)

    def test_truncated_body(self):
        payload = encode_chunk(np.zeros((1, 2, 2), dtype=np.float32))
        with pytest.raises(DatacubeError, match="bytes"):
            decode_chunk(payload[:-3])

    def test_non_3d_rejected(self):
        with pytest.raises(DatacubeError, match="3-D"):
            encode_chunk(np.zeros((4, 4)))


class TestSchema:
    def test_validation(self):
        transform = GeoTransform(0, 0, 10)
        with pytest.raises(DatacubeError):
            CubeSchema(transform, 0, 10, ("a",))
        with pytest.raises(DatacubeError):
            CubeSchema(transform, 10, 10, ())
        with pytest.raises(DatacubeError):
            CubeSchema(transform, 10, 10, ("a", "a"))
        with pytest.raises(DatacubeError):
            CubeSchema(transform, 10, 10, ("a/b",))
        with pytest.raises(DatacubeError):
            CubeSchema(transform, 10, 10, ("a",), chunk_t=0)

    def test_roundtrip(self):
        schema = CubeSchema(GeoTransform(5, 7, 20), 30, 40, ("x",), 2, 16, 8)
        assert CubeSchema.from_json(schema.to_json()) == schema

    def test_chunk_grid(self):
        schema = CubeSchema(GeoTransform(0, 0, 10), 80, 60, ("a",),
                            chunk_y=32, chunk_x=32)
        assert schema.y_chunks == 3 and schema.x_chunks == 2
        # Edge chunk is clipped to the extent.
        assert schema.chunk_window(ChunkKey(0, 2, 1)) == (64, 80, 32, 60)


class TestAppend:
    def test_tail_then_seal(self):
        cube = make_cube(chunk_t=3)
        fill(cube, 2)
        assert cube.sealed_steps == 0 and len(cube.times) == 2
        assert cube.sealed_chunks == 0
        fill_more = np.random.default_rng(9).random((80, 60))
        cube.append(99.0, {"a": fill_more, "b": fill_more})
        assert cube.sealed_steps == 3
        # 2 variables x 1 slab x 3 y-chunks x 2 x-chunks
        assert cube.sealed_chunks == 12

    def test_validation(self):
        cube = make_cube()
        good = np.zeros((80, 60))
        with pytest.raises(DatacubeError, match="mismatch"):
            cube.append(0.0, {"a": good})
        with pytest.raises(DatacubeError, match="mismatch"):
            cube.append(0.0, {"a": good, "b": good, "c": good})
        with pytest.raises(DatacubeError, match="shape"):
            cube.append(0.0, {"a": good, "b": np.zeros((10, 10))})
        cube.append(5.0, {"a": good, "b": good})
        with pytest.raises(DatacubeError, match="append-only"):
            cube.append(5.0, {"a": good, "b": good})

    def test_append_never_rewrites_sealed_chunks(self):
        """The headline E24 invariant, pinned via HopsFS write counters."""
        cube = make_cube(chunk_t=2)
        fill(cube, 2, seed=1)
        first_wave = dict(cube.store.writes)
        assert first_wave and all(v == 1 for v in first_wave.values())
        fill(cube, 2, seed=2)  # continues at later times: appends new slab
        # Old paths untouched, new paths written exactly once.
        for path, count in cube.store.writes.items():
            assert count == 1, path
        assert set(first_wave) < set(cube.store.writes)

    def test_store_rejects_rewrite(self):
        store = ChunkStore()
        store.makedirs("/cubes")
        store.put("/cubes/x", b"one")
        with pytest.raises(DatacubeError, match="append-only"):
            store.put("/cubes/x", b"two")

    def test_flush_partial_slab_finalizes(self):
        cube = make_cube(chunk_t=4)
        dense = fill(cube, 6, seed=3)
        cube.flush()
        assert cube.sealed_steps == 6
        got = cube.sel("a").read()
        assert np.array_equal(got, dense["a"])
        with pytest.raises(DatacubeError, match="finalized"):
            cube.append(999.0, {"a": np.zeros((80, 60)),
                                "b": np.zeros((80, 60))})

    def test_flush_empty_tail_is_noop(self):
        cube = make_cube(chunk_t=2)
        fill(cube, 4, seed=4)
        cube.flush()
        cube.append(999.0, {"a": np.zeros((80, 60)),
                            "b": np.zeros((80, 60))})
        assert len(cube.times) == 5

    def test_appended_array_is_copied(self):
        cube = make_cube(chunk_t=4)
        array = np.ones((80, 60))
        cube.append(0.0, {"a": array, "b": array})
        array[:] = -5.0
        assert float(cube.sel("a").read().max()) == 1.0


class TestSelection:
    def test_pruning_strictly_fewer_than_full_scan(self):
        cube = make_cube(chunk_t=2)
        fill(cube, 6, seed=5)
        plan = cube.sel("a", t_min=0, t_max=15, bbox=(0, -300, 300, 0))
        assert plan.chunks_total == 18  # 3 slabs x 3 x 2 per variable
        assert 0 < plan.chunks_touched < plan.chunks_total
        assert plan.chunks_pruned == plan.chunks_total - plan.chunks_touched

    def test_time_only_and_bbox_only(self):
        cube = make_cube(chunk_t=2)
        dense = fill(cube, 4, seed=6)
        by_time = cube.sel("b", t_min=20, t_max=30).read()
        assert np.array_equal(by_time, dense["b"][2:4])
        by_box = cube.sel("b", bbox=(100, -200, 400, -50)).read()
        # centers x in [105..395] -> cols 10..39; y in [-195..-55] -> rows 5..19
        assert np.array_equal(by_box, dense["b"][:, 5:20, 10:40])

    def test_empty_selection(self):
        cube = make_cube(chunk_t=2)
        fill(cube, 2, seed=7)
        plan = cube.sel("a", t_min=1e9)
        assert plan.chunks_touched == 0
        assert plan.read().shape[0] == 0
        with pytest.raises(DatacubeError, match="empty"):
            plan.reduce_time("mean")

    def test_unknown_variable(self):
        cube = make_cube()
        with pytest.raises(DatacubeError, match="unknown variable"):
            cube.sel("nope")

    def test_tail_visible_before_seal(self):
        cube = make_cube(chunk_t=4)
        dense = fill(cube, 3, seed=8)  # all in the tail
        assert cube.sealed_chunks == 0
        got = cube.sel("a", bbox=(0, -300, 300, 0)).read()
        assert np.array_equal(got, dense["a"][:, :30, :30])

    def test_reduce_ops(self):
        cube = make_cube(chunk_t=2)
        dense = fill(cube, 4, seed=9)
        window = dense["a"][:, 5:20, 10:40]
        plan = cube.sel("a", bbox=(100, -200, 400, -50))
        assert np.allclose(plan.reduce_time("mean"),
                           window.mean(axis=0, dtype=np.float64))
        assert np.allclose(plan.reduce_time("sum"),
                           window.sum(axis=0, dtype=np.float64))
        assert np.array_equal(plan.reduce_time("min"), window.min(axis=0))
        assert np.array_equal(plan.reduce_time("max"), window.max(axis=0))
        with pytest.raises(DatacubeError, match="reduction"):
            plan.reduce_time("median")


class TestProvenance:
    def test_chunk_provenance(self):
        cube = make_cube(chunk_t=2)
        cube.set_lineage("a", ("scene_window", "band:3"))
        fill(cube, 2, seed=10)
        record = cube.provenance("a", ChunkKey(0, 0, 0))
        assert record.variable == "a"
        assert record.times == (0.0, 10.0)
        assert record.source_ids == ("scene-0", "scene-1")
        assert record.sealed_seq == 1
        assert record.lineage == ("scene_window", "band:3")

    def test_provenance_roundtrip(self):
        record = ChunkProvenance("v", ChunkKey(1, 2, 3), (5.0,), ("s",), 7,
                                 ("l1", "l2"))
        assert ChunkProvenance.from_json(record.to_json()) == record

    def test_unsealed_chunk_has_no_provenance(self):
        cube = make_cube(chunk_t=4)
        fill(cube, 1)
        with pytest.raises(DatacubeError, match="no sealed chunk"):
            cube.provenance("a", ChunkKey(0, 0, 0))


class TestReopen:
    def test_open_rebuilds_index(self):
        store = ChunkStore()
        cube = make_cube(chunk_t=2, store=store)
        dense = fill(cube, 4, seed=11)
        reopened = Cube.open(store, "/cubes/test")
        assert reopened.schema == cube.schema
        assert reopened.times == cube.times
        assert reopened.sealed_chunks == cube.sealed_chunks
        assert np.array_equal(reopened.sel("a").read(), dense["a"])

    def test_open_partial_tail_is_finalized(self):
        store = ChunkStore()
        cube = make_cube(chunk_t=4, store=store)
        fill(cube, 6, seed=12)
        cube.flush()
        reopened = Cube.open(store, "/cubes/test")
        assert reopened.sealed_steps == 6
        with pytest.raises(DatacubeError, match="finalized"):
            reopened.append(1e6, {"a": np.zeros((80, 60)),
                                  "b": np.zeros((80, 60))})


def make_block_cube(store):
    """A cube whose chunks exceed the inline threshold (real block files):
    2 x 192 x 192 float32 = 294912 bytes per chunk, one spatial chunk."""
    return make_cube(height=192, width=192, chunk_t=2, chunk_y=192,
                     chunk_x=192, store=store)


class TestStorageIntegration:
    """The cube inherits the block layer's reliability machinery."""

    def test_replica_fallback_read(self):
        """E17: chunk reads survive a datanode failure."""
        blocks = BlockManager(node_count=4, replication=3)
        store = ChunkStore(fs=HopsFS(blocks=blocks))
        cube = make_block_cube(store)
        dense = fill(cube, 2, seed=13)
        assert blocks.block_count > 0  # chunks went to block storage
        blocks.fail_node(0)
        assert np.array_equal(cube.sel("a").read(), dense["a"])

    def test_corrupt_chunk_detected(self):
        """E20: a chunk whose every replica rotted raises BlockCorruption."""
        checksums = BlockChecksums(verify=True)
        blocks = BlockManager(node_count=3, replication=3,
                              checksums=checksums)
        store = ChunkStore(fs=HopsFS(blocks=blocks))
        cube = make_block_cube(store)
        fill(cube, 2, seed=14)
        target = next(iter(blocks.block_table()))
        for node_id in blocks.block_locations(target):
            checksums.corrupt_replica(target, node_id)
        with pytest.raises(BlockCorruption):
            for variable in cube.schema.variables:
                cube.sel(variable).read()

    def test_single_corrupt_replica_fails_over(self):
        checksums = BlockChecksums(verify=True)
        blocks = BlockManager(node_count=4, replication=3,
                              checksums=checksums)
        store = ChunkStore(fs=HopsFS(blocks=blocks))
        cube = make_block_cube(store)
        dense = fill(cube, 2, seed=15)
        for block_id in blocks.block_table():
            checksums.corrupt_replica(block_id,
                                      blocks.block_locations(block_id)[0])
        assert np.array_equal(cube.sel("a").read(), dense["a"])


class TestObservability:
    def test_datacube_metrics(self):
        obs = Observability()
        cube = make_cube(chunk_t=2, obs=obs)
        fill(cube, 4, seed=16)
        cube.sel("a", bbox=(0, -100, 100, 0)).read()
        snapshot = obs.metrics.snapshot()
        names = {c["name"] for c in snapshot["counters"]}
        for expected in (
            "datacube.appends", "datacube.seals", "datacube.sel_plans",
            "datacube.chunks_planned", "datacube.chunks_pruned",
            "datacube.chunks_read", "datacube.store_puts",
            "datacube.store_gets", "datacube.bytes_written",
            "datacube.bytes_read",
        ):
            assert expected in names, expected
