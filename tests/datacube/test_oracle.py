"""Property suite: cube slicing/compute vs a dense in-memory ndarray oracle.

The cube path (chunked storage, pruning, tiled streaming, tail buffers)
must be observationally equivalent to holding the whole ``(t, y, x)``
array in memory and slicing it. Hypothesis drives grid sizes, chunk
shapes, step counts, and selections; the seed acceptance bar is >= 50
examples on the main equivalence property.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datacube import ChunkStore, Cube, CubeSchema
from repro.raster.grid import GeoTransform

PIXEL = 10.0


@st.composite
def cube_cases(draw):
    """A random cube geometry, its data, and one selection against it."""
    height = draw(st.integers(8, 24))
    width = draw(st.integers(8, 24))
    chunk_t = draw(st.integers(1, 4))
    chunk_y = draw(st.integers(1, 8))
    chunk_x = draw(st.integers(1, 8))
    steps = draw(st.integers(1, 10))
    data_seed = draw(st.integers(0, 2**31 - 1))
    flush = draw(st.booleans())

    # A selection: a time window over the step indices and a pixel-aligned
    # bbox (edges on pixel boundaries, so center containment is unambiguous).
    t_lo = draw(st.integers(0, steps - 1))
    t_hi = draw(st.integers(t_lo, steps - 1))
    col0 = draw(st.integers(0, width - 1))
    col1 = draw(st.integers(col0 + 1, width))
    row0 = draw(st.integers(0, height - 1))
    row1 = draw(st.integers(row0 + 1, height))
    return dict(
        height=height, width=width, chunk_t=chunk_t, chunk_y=chunk_y,
        chunk_x=chunk_x, steps=steps, data_seed=data_seed, flush=flush,
        t_lo=t_lo, t_hi=t_hi, window=(row0, row1, col0, col1),
    )


def build(case):
    """Materialize the case: returns (cube, dense oracle, times)."""
    schema = CubeSchema(
        transform=GeoTransform(0.0, 0.0, PIXEL),
        height=case["height"], width=case["width"], variables=("v",),
        chunk_t=case["chunk_t"], chunk_y=case["chunk_y"],
        chunk_x=case["chunk_x"],
    )
    cube = Cube.create(ChunkStore(), "/cubes/prop", schema)
    rng = np.random.default_rng(case["data_seed"])
    slabs = []
    times = []
    for step in range(case["steps"]):
        array = rng.random((case["height"], case["width"]))
        time = float(step * 7 + 1)
        cube.append(time, {"v": array}, source_id=f"s{step}")
        slabs.append(array.astype("float32"))
        times.append(time)
    if case["flush"]:
        cube.flush()
    return cube, np.stack(slabs), times


def case_selection(case, times):
    """(t_min, t_max, bbox) of the case in cube coordinates, plus the
    oracle's equivalent index expression."""
    row0, row1, col0, col1 = case["window"]
    t_min, t_max = times[case["t_lo"]], times[case["t_hi"]]
    # Pixel-boundary bbox covering cols [col0, col1) and rows [row0, row1)
    # by center containment; origin_y = 0, map y negative below it.
    bbox = (col0 * PIXEL, -row1 * PIXEL, col1 * PIXEL, -row0 * PIXEL)
    index = (slice(case["t_lo"], case["t_hi"] + 1),
             slice(row0, row1), slice(col0, col1))
    return t_min, t_max, bbox, index


@settings(max_examples=60, deadline=None)
@given(case=cube_cases())
def test_read_matches_dense_oracle(case):
    cube, dense, times = build(case)
    t_min, t_max, bbox, index = case_selection(case, times)
    plan = cube.sel("v", t_min, t_max, bbox)
    expected = dense[index]
    got = plan.read()
    assert got.shape == expected.shape
    assert np.array_equal(got, expected)
    assert plan.times() == times[case["t_lo"] : case["t_hi"] + 1]
    # Pruning never plans more than the sealed total.
    assert 0 <= plan.chunks_touched <= plan.chunks_total


@settings(max_examples=50, deadline=None)
@given(case=cube_cases(),
       op=st.sampled_from(["mean", "sum", "min", "max"]))
def test_reduce_time_matches_dense_oracle(case, op):
    cube, dense, times = build(case)
    t_min, t_max, bbox, index = case_selection(case, times)
    window = dense[index].astype(np.float64)
    got = cube.sel("v", t_min, t_max, bbox).reduce_time(op)
    expected = getattr(window, op)(axis=0)
    assert np.allclose(got, expected, rtol=1e-12, atol=1e-12)


@settings(max_examples=50, deadline=None)
@given(case=cube_cases())
def test_reopen_matches_dense_oracle(case):
    """A cube rebuilt from storage answers sealed-step selections exactly.

    (Reopen only sees sealed steps: the tail lives in memory, so the
    oracle is trimmed to the sealed prefix.)"""
    cube, dense, times = build(case)
    sealed = cube.sealed_steps
    reopened = Cube.open(cube.store, "/cubes/prop")
    got = reopened.sel("v").read()
    assert np.array_equal(got, dense[:sealed])
    assert reopened.times == times[:sealed]


@settings(max_examples=50, deadline=None)
@given(case=cube_cases())
def test_full_scan_roundtrip(case):
    """No selection at all: the cube stores exactly what went in."""
    cube, dense, _ = build(case)
    assert np.array_equal(cube.sel("v").read(), dense)
