"""Ingest-path tests: scene cropping, no-aliasing, catalogue registration."""

from datetime import datetime, timezone

import numpy as np
import pytest

from repro.datacube import (
    ChunkStore,
    ChunkKey,
    Cube,
    CubeIngestor,
    CubeSchema,
    S2_DEFAULT_VARIABLES,
    extract_variables,
    scene_window,
)
from repro.errors import DatacubeError
from repro.geometry import Polygon
from repro.geosparql.store import GeoStore
from repro.obs import Observability
from repro.raster.grid import GeoTransform, RasterGrid
from repro.raster.products import Mission, Product, ProductLevel
from repro.raster.sentinel import landcover_field, sentinel2_scene

HEIGHT, WIDTH = 48, 48
PIXEL = 10.0


def make_cube(height=HEIGHT, width=WIDTH, chunk_t=2):
    schema = CubeSchema(
        transform=GeoTransform(0.0, 0.0, PIXEL),
        height=height, width=width, variables=("red", "nir"),
        chunk_t=chunk_t, chunk_y=32, chunk_x=32,
    )
    return Cube.create(ChunkStore(), "/cubes/ingest", schema)


def make_scenes(count, height=HEIGHT, width=WIDTH, seed=0):
    truth = landcover_field(height, width, seed=seed)
    return [
        sentinel2_scene(truth, day_of_year=30 * (index + 1),
                        seed=seed + index, pixel_size=PIXEL)
        for index in range(count)
    ]


def make_product(product_id="prod-1"):
    return Product(
        product_id=product_id,
        mission=Mission.SENTINEL2,
        product_type="MSIL2A",
        level=ProductLevel.L2A,
        sensing_time=datetime(2020, 6, 1, tzinfo=timezone.utc),
        footprint=Polygon.box(0, -WIDTH * PIXEL, WIDTH * PIXEL, 0),
        size_bytes=1,
    )


class TestSceneWindow:
    def test_exact_cover(self):
        cube = make_cube()
        scene = make_scenes(1)[0]
        window = scene_window(scene, cube)
        assert (window.height, window.width) == (HEIGHT, WIDTH)
        assert np.array_equal(window.band(3), scene.grid.band(3))

    def test_larger_scene_cropped(self):
        cube = make_cube(height=32, width=40)
        scene = make_scenes(1)[0]  # 48x48 covers the 32x40 cube grid
        window = scene_window(scene, cube)
        assert (window.height, window.width) == (32, 40)
        assert np.array_equal(window.band(3), scene.grid.band(3)[:32, :40])

    def test_resolution_mismatch_raises(self):
        cube = make_cube()
        truth = landcover_field(HEIGHT, WIDTH, seed=1)
        scene = sentinel2_scene(truth, pixel_size=20.0)
        with pytest.raises(DatacubeError, match="resolution"):
            scene_window(scene, cube)

    def test_non_covering_scene_raises(self):
        cube = make_cube()
        scene = make_scenes(1, height=32, width=32)[0]  # too small
        with pytest.raises(DatacubeError, match="does not cover"):
            scene_window(scene, cube)

    def test_window_owns_its_bytes(self):
        """The ingest crop is a copy, not a view (the E24 aliasing fix)."""
        cube = make_cube()
        scene = make_scenes(1)[0]
        window = scene_window(scene, cube)
        scene.grid.data[:] = -1.0
        assert float(window.band(3).min()) >= 0.0


class TestExtractVariables:
    def test_band_index_and_callable(self):
        grid = RasterGrid(np.arange(2 * 4 * 4, dtype=float).reshape(2, 4, 4),
                          GeoTransform(0, 0, PIXEL))
        arrays = extract_variables(
            grid, {"b0": 0, "double": lambda g: g.band(1) * 2}
        )
        assert np.array_equal(arrays["b0"], grid.band(0))
        assert np.array_equal(arrays["double"], grid.band(1) * 2)

    def test_bad_shape_raises(self):
        grid = RasterGrid(np.zeros((1, 4, 4)), GeoTransform(0, 0, PIXEL))
        with pytest.raises(DatacubeError, match="shape"):
            extract_variables(grid, {"bad": lambda g: np.zeros((2, 2))})


class TestCubeIngestor:
    def test_default_s2_mapping(self):
        cube = make_cube()
        scenes = make_scenes(3)
        ingestor = CubeIngestor(cube)
        assert ingestor.ingest_series(scenes) == 3
        assert cube.times == [float(s.day_of_year) for s in scenes]
        got = cube.sel("nir").read()
        expected = np.stack(
            [s.grid.band(7).astype("float32") for s in scenes]
        )
        assert np.array_equal(got, expected)

    def test_no_aliasing_end_to_end(self):
        """Mutating the scene after ingest never reaches cube contents.

        This is the regression the ``window(copy=True)`` fix exists for:
        on seed code the crop was a view and this corrupted the tail."""
        cube = make_cube()
        scenes = make_scenes(2)
        ingestor = CubeIngestor(cube)
        ingestor.ingest_scene(scenes[0])
        before = cube.sel("red").read()
        scenes[0].grid.data[:] = 1e9
        after = cube.sel("red").read()
        assert np.array_equal(before, after)

    def test_missing_spec_raises(self):
        cube = make_cube()
        with pytest.raises(DatacubeError, match="no extraction spec"):
            CubeIngestor(cube, variables={"red": 3})

    def test_lineage_recorded_in_provenance(self):
        cube = make_cube(chunk_t=1)
        ingestor = CubeIngestor(cube)
        ingestor.ingest_scene(make_scenes(1)[0])
        record = cube.provenance("red", ChunkKey(0, 0, 0))
        assert record.lineage == ("scene_window", "band:3")
        assert record.source_ids == ("S2_doy030",)

    def test_product_source_id_and_catalog_registration(self):
        """Ingest rides the E13 catalogue path: the product's metadata
        lands in the GeoStore and its id in chunk provenance."""
        store = GeoStore()
        cube = make_cube(chunk_t=1)
        ingestor = CubeIngestor(cube, store=store)
        product = make_product("S2-prod-42")
        ingestor.ingest_scene(make_scenes(1)[0], product=product)
        assert ingestor.products_registered == 1
        assert len(store) > 0
        record = cube.provenance("nir", ChunkKey(0, 0, 0))
        assert record.source_ids == ("S2-prod-42",)

    def test_series_product_count_mismatch(self):
        cube = make_cube()
        scenes = make_scenes(2)
        with pytest.raises(DatacubeError, match="products"):
            CubeIngestor(cube).ingest_series(
                scenes, products=[make_product()]
            )

    def test_explicit_time_overrides_doy(self):
        cube = make_cube()
        ingestor = CubeIngestor(cube)
        ingestor.ingest_scene(make_scenes(1)[0], time=1234.5)
        assert cube.times == [1234.5]

    def test_ingest_metrics(self):
        obs = Observability()
        cube = Cube.create(
            ChunkStore(obs=obs), "/cubes/metrics",
            CubeSchema(GeoTransform(0.0, 0.0, PIXEL), HEIGHT, WIDTH,
                       ("red", "nir"), chunk_t=2, chunk_y=32, chunk_x=32),
            obs=obs,
        )
        CubeIngestor(cube, obs=obs).ingest_series(make_scenes(2))
        counters = {
            c["name"]: c["value"]
            for c in obs.metrics.snapshot()["counters"]
        }
        assert counters["datacube.scenes_ingested"] == 2
        assert counters["datacube.appends"] == 2
        assert counters["datacube.seals"] == 1


class TestComputeWorkloads:
    """The tiled map/reduce workloads the cube exists for."""

    def test_ndvi_temporal_mean_matches_dense(self):
        cube = make_cube()
        scenes = make_scenes(4)
        CubeIngestor(cube).ingest_series(scenes)
        red = np.stack([s.grid.band(3).astype("float32") for s in scenes])
        nir = np.stack([s.grid.band(7).astype("float32") for s in scenes])
        denominator = nir + red
        ndvi = np.where(denominator == 0, 0.0,
                        (nir - red) / np.where(denominator == 0, 1.0,
                                               denominator))
        got = cube.ndvi_temporal_mean("red", "nir")
        assert np.allclose(got, ndvi.mean(axis=0), rtol=1e-6, atol=1e-7)

    def test_anomaly_counts_matches_dense(self):
        cube = make_cube()
        scenes = make_scenes(5)
        CubeIngestor(cube).ingest_series(scenes)
        dense = np.stack(
            [s.grid.band(7).astype("float32") for s in scenes]
        ).astype(np.float64)
        mean = dense.mean(axis=0)
        std = dense.std(axis=0)
        expected = (np.abs(dense - mean) > 2.0 * std).sum(axis=(1, 2))
        got = cube.anomaly_counts("nir", k=2.0)
        assert got.shape == (5,)
        assert np.array_equal(got, expected)

    def test_zonal_series_matches_dense(self):
        cube = make_cube()
        scenes = make_scenes(3)
        CubeIngestor(cube).ingest_series(scenes)
        dense = np.stack([s.grid.band(3).astype("float32") for s in scenes])
        inside = Polygon.box(50, -250, 250, -50)  # rows 5..24, cols 5..24
        outside = Polygon.box(10000, 10000, 10100, 10100)
        series = cube.zonal_series("red", [inside, outside])
        assert series.shape == (2, 3)
        expected = dense[:, 5:25, 5:25].mean(axis=(1, 2))
        assert np.allclose(series[0], expected, rtol=1e-6)
        assert np.all(np.isnan(series[1]))
