"""Sextant visualization tests (SVG structure validated with ElementTree)."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.errors import ReproError
from repro.geometry import BoundingBox, LineString, MultiPolygon, Point, Polygon
from repro.geosparql import GeoStore, geometry_literal, period_literal
from repro.raster import GeoTransform, RasterGrid
from repro.rdf import GEO, Literal, Namespace
from repro.sextant import (
    ClassPalette,
    LayerStyle,
    SVGCanvas,
    SextantMap,
    sparql_layer,
    temporal_frames,
)

EX = Namespace("http://ex.org/")
SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg_text):
    return ET.fromstring(svg_text)


def tags(root, name):
    return root.findall(f".//{SVG_NS}{name}")


class TestStyle:
    def test_defaults_valid(self):
        style = LayerStyle()
        assert 0 <= style.fill_opacity <= 1

    def test_validation(self):
        with pytest.raises(ReproError):
            LayerStyle(fill_opacity=2.0)
        with pytest.raises(ReproError):
            LayerStyle(point_radius=0)

    def test_palette_defaults_cycle(self):
        palette = ClassPalette()
        assert palette.color(0) != palette.color(1)
        assert palette.color(0) == palette.color(10)  # cycles mod 10
        assert palette.name(3) == "class 3"

    def test_palette_for_classes(self):
        palette = ClassPalette.for_classes([2, 5], names=["water", "ice"])
        assert palette.name(2) == "water"
        assert palette.name(5) == "ice"
        assert palette.color(2) != palette.color(5)


class TestCanvas:
    def test_pixel_transform_flips_y(self):
        canvas = SVGCanvas(BoundingBox(0, 0, 100, 100), width=120, height=120, padding=10)
        px0, py0 = canvas.to_pixel(0, 0)  # map SW corner
        px1, py1 = canvas.to_pixel(100, 100)  # map NE corner
        assert px0 < px1
        assert py0 > py1  # north is up -> smaller SVG y

    def test_point_rendered_as_circle(self):
        canvas = SVGCanvas(BoundingBox(0, 0, 10, 10))
        canvas.draw_geometry(Point(5, 5), LayerStyle())
        root = parse(canvas.render())
        assert len(tags(root, "circle")) == 1

    def test_linestring_rendered_as_polyline(self):
        canvas = SVGCanvas(BoundingBox(0, 0, 10, 10))
        canvas.draw_geometry(LineString([(0, 0), (10, 10)]), LayerStyle())
        assert len(tags(parse(canvas.render()), "polyline")) == 1

    def test_polygon_with_hole_single_path(self):
        canvas = SVGCanvas(BoundingBox(0, 0, 10, 10))
        donut = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)], [[(4, 4), (6, 4), (6, 6)]]
        )
        canvas.draw_geometry(donut, LayerStyle())
        [path] = tags(parse(canvas.render()), "path")
        assert path.get("fill-rule") == "evenodd"
        assert path.get("d").count("Z") == 2

    def test_multipolygon_expands(self):
        canvas = SVGCanvas(BoundingBox(0, 0, 20, 20))
        mp = MultiPolygon([Polygon.box(0, 0, 5, 5), Polygon.box(10, 10, 15, 15)])
        canvas.draw_geometry(mp, LayerStyle())
        assert len(tags(parse(canvas.render()), "path")) == 2

    def test_tooltip_becomes_title(self):
        canvas = SVGCanvas(BoundingBox(0, 0, 10, 10))
        canvas.draw_geometry(Point(1, 1), LayerStyle(), tooltip="a <special> & berg")
        svg = canvas.render()
        root = parse(svg)
        [title] = tags(root, "title")
        assert title.text == "a <special> & berg"

    def test_degenerate_extent_expanded(self):
        canvas = SVGCanvas(BoundingBox(5, 5, 5, 5))
        canvas.draw_geometry(Point(5, 5), LayerStyle())
        parse(canvas.render())  # valid SVG, no division by zero

    def test_canvas_too_small(self):
        with pytest.raises(ReproError):
            SVGCanvas(BoundingBox(0, 0, 1, 1), width=15, height=15, padding=10)


class TestSextantMap:
    def test_vector_layers_and_legend(self):
        m = SextantMap(title="demo")
        m.add_vector_layer("fields", [Polygon.box(0, 0, 10, 10)])
        m.add_vector_layer(
            "bergs", [(Point(5, 5), "berg 1")], style=LayerStyle(fill="#ff0000")
        )
        root = parse(m.render())
        assert len(tags(root, "path")) == 1
        assert len(tags(root, "circle")) == 1
        texts = [t.text for t in tags(root, "text")]
        assert "demo" in texts and "fields" in texts and "bergs" in texts

    def test_empty_layer_rejected(self):
        with pytest.raises(ReproError):
            SextantMap().add_vector_layer("empty", [])

    def test_render_without_layers_rejected(self):
        with pytest.raises(ReproError):
            SextantMap().render()

    def test_extent_unions_layers(self):
        m = SextantMap()
        m.add_vector_layer("a", [Point(0, 0)])
        m.add_vector_layer("b", [Point(100, 50)])
        extent = m.extent()
        assert extent.contains_point(0, 0) and extent.contains_point(100, 50)

    def test_raster_layer_cells(self):
        classes = np.array([[0, 1], [2, 3]], dtype=np.int16)
        grid = RasterGrid(classes, GeoTransform(0, 20, 10))
        m = SextantMap()
        m.add_raster_layer("landcover", grid)
        root = parse(m.render())
        # 4 class cells + 1 background rect + 4 legend swatches.
        assert len(tags(root, "rect")) == 4 + 1 + 4

    def test_raster_downsampled_to_max_cells(self):
        classes = np.zeros((64, 64), dtype=np.int16)
        grid = RasterGrid(classes, GeoTransform(0, 640, 10))
        m = SextantMap()
        m.add_raster_layer("big", grid, max_cells=8, legend=False)
        root = parse(m.render())
        cell_rects = len(tags(root, "rect")) - 1  # minus background
        assert cell_rects == 64  # 8x8

    def test_raster_opacity_validation(self):
        grid = RasterGrid(np.zeros((2, 2)), GeoTransform(0, 2, 1))
        with pytest.raises(ReproError):
            SextantMap().add_raster_layer("x", grid, opacity=0.0)

    def test_save(self, tmp_path):
        m = SextantMap()
        m.add_vector_layer("p", [Point(1, 1)])
        path = tmp_path / "map.svg"
        m.save(str(path))
        assert path.read_text().startswith("<svg")


class TestSparqlLayer:
    def make_store(self):
        store = GeoStore()
        store.add(EX.a, GEO.asWKT, geometry_literal(Point(0, 0)))
        store.add(EX.a, EX.name, Literal("alpha"))
        store.add(EX.b, GEO.asWKT, geometry_literal(Point(5, 5)))
        store.add(EX.b, EX.name, Literal("beta"))
        return store

    def test_features_from_query(self):
        store = self.make_store()
        features = sparql_layer(
            store,
            "PREFIX ex: <http://ex.org/> "
            "PREFIX geo: <http://www.opengis.net/ont/geosparql#> "
            "SELECT ?wkt ?name WHERE { ?f geo:asWKT ?wkt . ?f ex:name ?name }",
            label_variable="name",
        )
        assert len(features) == 2
        labels = {label for _, label in features}
        assert labels == {"alpha", "beta"}

    def test_no_geometries_rejected(self):
        store = self.make_store()
        with pytest.raises(ReproError):
            sparql_layer(
                store,
                "PREFIX ex: <http://ex.org/> SELECT ?wkt WHERE { ?f ex:name ?wkt }",
            )

    def test_renders_into_map(self):
        store = self.make_store()
        features = sparql_layer(
            store,
            "PREFIX geo: <http://www.opengis.net/ont/geosparql#> "
            "SELECT ?wkt WHERE { ?f geo:asWKT ?wkt }",
        )
        m = SextantMap()
        m.add_vector_layer("query", features)
        assert len(tags(parse(m.render()), "circle")) == 2


class TestTemporalFrames:
    def make_store(self):
        store = GeoStore()
        entries = [
            ("jan", Point(0, 0), "2017-01-01T00:00:00", "2017-02-01T00:00:00"),
            ("spring", Point(10, 10), "2017-03-01T00:00:00", "2017-06-01T00:00:00"),
        ]
        for name, point, start, end in entries:
            store.add(EX[name], GEO.asWKT, geometry_literal(point))
            store.add(EX[name], EX.valid, period_literal(start, end))
        return store

    QUERY = (
        "PREFIX ex: <http://ex.org/> "
        "PREFIX geo: <http://www.opengis.net/ont/geosparql#> "
        "SELECT ?wkt ?t WHERE { ?f geo:asWKT ?wkt . ?f ex:valid ?t }"
    )

    def test_frames_show_valid_features(self):
        store = self.make_store()
        frames = temporal_frames(
            store, self.QUERY,
            instants=["2017-01-15T00:00:00", "2017-04-01T00:00:00", "2017-09-01T00:00:00"],
        )
        assert len(frames) == 3
        jan_root = parse(frames[0][1])
        spring_root = parse(frames[1][1])
        autumn_root = parse(frames[2][1])
        assert len(tags(jan_root, "circle")) == 1
        assert len(tags(spring_root, "circle")) == 1
        assert len(tags(autumn_root, "circle")) == 0  # nothing valid

    def test_frames_share_extent(self):
        store = self.make_store()
        frames = temporal_frames(
            store, self.QUERY, instants=["2017-01-15T00:00:00", "2017-04-01T00:00:00"],
        )
        # Both features are points at (0,0) and (10,10); each frame draws its
        # one circle at a *different* pixel because the extents align.
        jan_circle = tags(parse(frames[0][1]), "circle")[0]
        spring_circle = tags(parse(frames[1][1]), "circle")[0]
        assert jan_circle.get("cx") != spring_circle.get("cx")

    def test_window_days_catches_instant_features(self):
        store = GeoStore()
        from repro.rdf.term import Literal, XSD_DATETIME

        store.add(EX.acq, GEO.asWKT, geometry_literal(Point(3, 3)))
        store.add(
            EX.acq, EX.valid, Literal("2017-01-20T06:00:00", datatype=XSD_DATETIME)
        )
        # Exact-instant frames miss the acquisition; a window catches it.
        [(_, without)] = temporal_frames(
            store, self.QUERY, instants=["2017-01-01T00:00:00"]
        )
        [(_, with_window)] = temporal_frames(
            store, self.QUERY, instants=["2017-01-01T00:00:00"], window_days=30
        )
        assert len(tags(parse(without), "circle")) == 0
        assert len(tags(parse(with_window), "circle")) == 1

    def test_validation(self):
        store = self.make_store()
        with pytest.raises(ReproError):
            temporal_frames(store, self.QUERY, instants=[])
        with pytest.raises(ReproError):
            temporal_frames(
                store, self.QUERY, instants=["2017-01-01T00:00:00"], window_days=-1
            )
        with pytest.raises(ReproError):
            temporal_frames(
                store,
                "PREFIX ex: <http://ex.org/> SELECT ?wkt ?t WHERE { ?f ex:missing ?wkt }",
                instants=["2017-01-01T00:00:00"],
            )
