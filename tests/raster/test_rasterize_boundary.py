"""Regression tests for the rasterization boundary convention and the
hoisted-mask zonal API.

The boundary tests fail on the seed code, which used the mirrored
``(start, end]`` span convention: a pixel center exactly on a span's left
crossing was dropped and one exactly on the right crossing was included —
the opposite of the standard GDAL ``[start, end)`` rule, and asymmetric
enough that two fields sharing a center-aligned boundary double-counted a
pixel column.
"""

import numpy as np
import pytest

from repro.errors import RasterError
from repro.geometry import Polygon
from repro.raster.grid import GeoTransform, RasterGrid
from repro.raster.stats import (
    polygon_masks,
    rasterize_polygon,
    zonal_mean,
    zonal_stats,
)

# 10x10 grid, pixel centers at x = 0.5 .. 9.5, y = 9.5 .. 0.5.
TRANSFORM = GeoTransform(0.0, 10.0, 1.0)
SHAPE = (10, 10)


class TestBoundaryConvention:
    def test_left_center_included_right_excluded(self):
        """Span edges exactly on pixel centers: [start, end), not (start, end]."""
        mask = rasterize_polygon(Polygon.box(0.5, 0, 3.5, 10), TRANSFORM, SHAPE)
        included = sorted(np.unique(np.nonzero(mask)[1]))
        # Centers 0.5, 1.5, 2.5 are inside; 3.5 (== end) is not.
        assert included == [0, 1, 2]

    def test_interior_edges_unchanged(self):
        """Edges between centers select the same pixels as before."""
        mask = rasterize_polygon(Polygon.box(1.0, 0, 4.0, 10), TRANSFORM, SHAPE)
        assert sorted(np.unique(np.nonzero(mask)[1])) == [1, 2, 3]

    def test_shared_edge_partitions_pixels(self):
        """Two boxes sharing a center-aligned edge partition the grid row:
        every column claimed by exactly one of them."""
        left = rasterize_polygon(Polygon.box(0.5, 0, 4.5, 10), TRANSFORM, SHAPE)
        right = rasterize_polygon(Polygon.box(4.5, 0, 8.5, 10), TRANSFORM, SHAPE)
        assert not np.any(left & right)  # no double-counted column
        union = sorted(np.unique(np.nonzero(left | right)[1]))
        assert union == [0, 1, 2, 3, 4, 5, 6, 7]

    def test_hole_respects_same_convention(self):
        outer = Polygon.box(0.5, 0, 8.5, 10)
        hole = Polygon.box(2.5, 1, 6.5, 9)
        donut = Polygon(outer.exterior, interiors=[hole.exterior])
        mask = rasterize_polygon(donut, TRANSFORM, SHAPE)
        # Row 5 (y = 4.5) crosses the hole: outer fills [0.5, 8.5) -> cols
        # 0..7, hole removes [2.5, 6.5) -> cols 2..5.
        assert sorted(np.nonzero(mask[5])[0]) == [0, 1, 6, 7]
        # Row 0 (y = 9.5) is above the hole: the full outer span.
        assert sorted(np.nonzero(mask[0])[0]) == [0, 1, 2, 3, 4, 5, 6, 7]


class TestHoistedMasks:
    def grid(self, bands=3):
        rng = np.random.default_rng(7)
        return RasterGrid(rng.random((bands, *SHAPE)), TRANSFORM)

    def polygons(self):
        return [Polygon.box(1, 2, 5, 8), Polygon.box(4, 1, 9, 6),
                Polygon.box(100, 100, 110, 110)]

    def test_precomputed_masks_match_default_path(self):
        grid = self.grid()
        polygons = self.polygons()
        masks = polygon_masks(polygons, grid.transform, SHAPE)
        for band in range(3):
            assert zonal_stats(grid, polygons, band=band, masks=masks) == \
                zonal_stats(grid, polygons, band=band)
        assert zonal_mean(grid, polygons[0], mask=masks[0]) == \
            zonal_mean(grid, polygons[0])
        # Out-of-extent polygon: empty mask, None / absent either way.
        assert zonal_mean(grid, polygons[2], mask=masks[2]) is None

    def test_masks_hoist_rasterization_out_of_the_loop(self, monkeypatch):
        import repro.raster.stats as stats

        calls = {"n": 0}
        original = stats.rasterize_polygon

        def counting(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(stats, "rasterize_polygon", counting)
        grid = self.grid(bands=4)
        polygons = self.polygons()
        masks = stats.polygon_masks(polygons, grid.transform, SHAPE)
        assert calls["n"] == len(polygons)
        for band in range(4):
            stats.zonal_stats(grid, polygons, band=band, masks=masks)
            stats.zonal_mean(grid, polygons[0], band=band, mask=masks[0])
        assert calls["n"] == len(polygons)  # no re-rasterization per band

    def test_mask_validation(self):
        grid = self.grid()
        polygons = self.polygons()
        with pytest.raises(RasterError, match="masks"):
            zonal_stats(grid, polygons, masks=[np.ones(SHAPE, dtype=bool)])
        with pytest.raises(RasterError, match="shape"):
            zonal_stats(grid, polygons[:1],
                        masks=[np.ones((3, 3), dtype=bool)])
        with pytest.raises(RasterError, match="shape"):
            zonal_mean(grid, polygons[0], mask=np.ones((3, 3), dtype=bool))
