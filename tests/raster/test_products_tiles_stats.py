"""Tests for products, tiles, time series, and zonal statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RasterError
from repro.geometry import Polygon
from repro.raster import (
    GeoTransform,
    LandCover,
    Mission,
    ProductArchive,
    RasterGrid,
    crop_ndvi_profile,
    ice_concentration_profile,
    iter_tiles,
    rasterize_polygon,
    scene_time_series,
    zonal_mean,
)
from repro.raster.sentinel import landcover_field
from repro.raster.stats import class_fractions, zonal_stats
from repro.raster.tiles import tile_count
from repro.raster.timeseries import ice_season_series


class TestProductArchive:
    def test_deterministic(self):
        a = ProductArchive(seed=5).generate(10)
        b = ProductArchive(seed=5).generate(10)
        assert [p.name for p in a] == [p.name for p in b]

    def test_unique_ids(self):
        products = ProductArchive(seed=1).generate(100)
        assert len({p.product_id for p in products}) == 100

    def test_footprints_inside_extent(self):
        extent = (0.0, 40.0, 20.0, 60.0)
        archive = ProductArchive(extent=extent, seed=2)
        for product in archive.generate(50):
            box = product.footprint.bbox
            assert box.min_x >= 0.0 and box.min_y >= 40.0

    def test_mean_size_matches_paper_ratio(self):
        # Paper: 1 PB ~ 750,000 datasets -> ~1.4 GB per product.
        products = ProductArchive(seed=3).generate(2000)
        mean = ProductArchive.total_bytes(products) / len(products)
        assert 0.7e9 < mean < 2.8e9

    def test_sensing_times_in_range(self):
        archive = ProductArchive(days=30, seed=4)
        for product in archive.generate(50):
            assert 0 <= (product.sensing_time - archive.start).days <= 30

    def test_mission_mix(self):
        products = ProductArchive(seed=6).generate(1000)
        s1 = sum(1 for p in products if p.mission is Mission.SENTINEL1)
        assert 0.3 < s1 / 1000 < 0.6

    def test_stream_matches_generate(self):
        a = list(ProductArchive(seed=9).stream(5))
        b = ProductArchive(seed=9).generate(5)
        assert [p.name for p in a] == [p.name for p in b]

    def test_validation(self):
        with pytest.raises(RasterError):
            ProductArchive(days=0)
        with pytest.raises(RasterError):
            ProductArchive(extent=(10, 0, 5, 20))


class TestTiles:
    grid = RasterGrid(np.arange(100.0).reshape(10, 10), GeoTransform(0, 100, 10))

    def test_exact_tiling(self):
        tiles = list(iter_tiles(self.grid, 5))
        assert len(tiles) == 4
        assert all(t.grid.shape == (1, 5, 5) for t in tiles)
        assert tile_count(self.grid, 5) == 4

    def test_edge_tiles_smaller(self):
        tiles = list(iter_tiles(self.grid, 4))
        assert len(tiles) == 9
        assert tiles[-1].grid.shape == (1, 2, 2)
        assert tile_count(self.grid, 4) == 9

    def test_tiles_partition_data(self):
        total = sum(t.grid.data.sum() for t in iter_tiles(self.grid, 3))
        assert total == self.grid.data.sum()

    def test_tile_georeferencing(self):
        tiles = {t.key: t for t in iter_tiles(self.grid, 5)}
        tile = tiles[(1, 1)]
        assert tile.grid.transform.origin_x == 50
        assert tile.grid.transform.origin_y == 50
        assert tile.name == "tile_001_001"

    def test_validation(self):
        with pytest.raises(RasterError):
            list(iter_tiles(self.grid, 0))


class TestTimeSeries:
    def test_phenology_peaks_in_season(self):
        winter = crop_ndvi_profile(LandCover.WHEAT, 15)
        summer = crop_ndvi_profile(LandCover.WHEAT, 150)
        assert summer > 0.7
        assert winter < 0.2

    def test_maize_later_than_wheat(self):
        # Maize greens up later: in May wheat leads, in August maize leads.
        assert crop_ndvi_profile(LandCover.WHEAT, 135) > crop_ndvi_profile(LandCover.MAIZE, 135)
        assert crop_ndvi_profile(LandCover.MAIZE, 225) > crop_ndvi_profile(LandCover.WHEAT, 225)

    def test_non_vegetation_zero(self):
        assert crop_ndvi_profile(LandCover.WATER, 180) == 0.0
        assert crop_ndvi_profile(LandCover.URBAN, 180) == 0.0

    def test_doy_validation(self):
        with pytest.raises(RasterError):
            crop_ndvi_profile(LandCover.WHEAT, 0)
        with pytest.raises(RasterError):
            ice_concentration_profile(400)

    def test_ice_cycle(self):
        march = ice_concentration_profile(75)
        september = ice_concentration_profile(258)
        assert march > 0.8
        assert september < 0.2

    def test_scene_series_days(self):
        truth = landcover_field(8, 8, seed=0)
        scenes = scene_time_series(truth, days=[50, 150, 250], seed=0)
        assert [s.day_of_year for s in scenes] == [50, 150, 250]
        assert all(s.mission == "S2" for s in scenes)

    def test_s1_series(self):
        truth = landcover_field(8, 8, seed=0)
        scenes = scene_time_series(truth, days=[10, 20], mission="S1", signatures="land")
        assert all(s.mission == "S1" for s in scenes)

    def test_ice_season_extent_varies(self):
        scenes = ice_season_series(32, 16, days=[75, 258], seed=1)
        winter_ice = (scenes[0].truth != 0).mean()
        summer_ice = (scenes[1].truth != 0).mean()
        assert winter_ice > summer_ice

    def test_unknown_mission(self):
        with pytest.raises(RasterError):
            scene_time_series(landcover_field(4, 4), days=[1], mission="S9")


class TestRasterize:
    transform = GeoTransform(0, 10, 1)  # 10x10 map units, pixel centers at .5

    def test_box_mask(self):
        mask = rasterize_polygon(Polygon.box(2, 2, 5, 5), self.transform, (10, 10))
        assert mask.sum() == 9  # centers at 2.5..4.5 in both axes
        assert mask[5, 2]  # row for y=4.5 is 5; col for x=2.5 is 2

    def test_triangle(self):
        triangle = Polygon([(0, 0), (10, 0), (0, 10)])
        mask = rasterize_polygon(triangle, self.transform, (10, 10))
        assert 35 <= mask.sum() <= 55  # about half the square

    def test_polygon_with_hole(self):
        donut = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)], [[(3, 3), (7, 3), (7, 7), (3, 7)]]
        )
        mask = rasterize_polygon(donut, self.transform, (10, 10))
        assert not mask[5, 5]  # center of hole
        assert mask[1, 1]
        assert mask.sum() == 100 - 16

    def test_outside_polygon_empty(self):
        mask = rasterize_polygon(Polygon.box(100, 100, 110, 110), self.transform, (10, 10))
        assert mask.sum() == 0

    @given(
        x=st.floats(0, 6, allow_nan=False),
        y=st.floats(0, 6, allow_nan=False),
        size=st.floats(0.5, 4, allow_nan=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_mask_matches_point_in_polygon(self, x, y, size):
        from repro.geometry import Point, contains

        polygon = Polygon.box(x, y, x + size, y + size)
        mask = rasterize_polygon(polygon, self.transform, (10, 10))
        for row in range(10):
            for col in range(10):
                px, py = self.transform.pixel_to_map(row, col)
                expected = contains(polygon, Point(px, py))
                # Skip centers exactly on the boundary (tie-breaking differs).
                on_edge = px in (x, x + size) or py in (y, y + size)
                if not on_edge:
                    assert mask[row, col] == expected


class TestZonal:
    def test_zonal_mean(self):
        data = np.zeros((10, 10))
        data[0:5, 0:5] = 4.0  # upper-left in map terms: y in (5,10], x in [0,5)
        grid = RasterGrid(data, GeoTransform(0, 10, 1))
        assert zonal_mean(grid, Polygon.box(0, 5, 5, 10)) == pytest.approx(4.0)
        assert zonal_mean(grid, Polygon.box(5, 0, 10, 5)) == pytest.approx(0.0)

    def test_zonal_mean_outside_none(self):
        grid = RasterGrid(np.ones((4, 4)), GeoTransform(0, 4, 1))
        assert zonal_mean(grid, Polygon.box(50, 50, 60, 60)) is None

    def test_zonal_stats(self):
        data = np.arange(16.0).reshape(4, 4)
        grid = RasterGrid(data, GeoTransform(0, 4, 1))
        stats = zonal_stats(grid, [Polygon.box(0, 0, 4, 4)])
        assert stats[0]["count"] == 16
        assert stats[0]["min"] == 0.0 and stats[0]["max"] == 15.0

    def test_class_fractions(self):
        truth = np.array([[0, 0], [1, 2]])
        fractions = class_fractions(truth)
        assert fractions == {0: 0.5, 1: 0.25, 2: 0.25}

    def test_class_fractions_empty(self):
        with pytest.raises(RasterError):
            class_fractions(np.array([]))
