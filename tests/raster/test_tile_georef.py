"""Property tests for edge-tile geo-referencing.

Every tile's grid must answer ``pixel_to_map`` exactly as the parent does
for the same absolute pixel — including the clipped tiles on the south and
east edges when the extent is not a multiple of the tile size.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.raster.grid import GeoTransform, RasterGrid
from repro.raster.tiles import Tile, iter_tiles, tile_count


@st.composite
def tilings(draw):
    height = draw(st.integers(1, 40))
    width = draw(st.integers(1, 40))
    tile_size = draw(st.integers(1, 17))
    origin_x = draw(st.floats(-1e5, 1e5, allow_nan=False))
    origin_y = draw(st.floats(-1e5, 1e5, allow_nan=False))
    pixel_size = draw(st.floats(0.1, 100.0, allow_nan=False))
    grid = RasterGrid(
        np.zeros((1, height, width)),
        GeoTransform(origin_x, origin_y, pixel_size),
    )
    return grid, tile_size


@settings(max_examples=80, deadline=None)
@given(case=tilings())
def test_tile_count_matches_iteration(case):
    grid, tile_size = case
    tiles = list(iter_tiles(grid, tile_size))
    assert tile_count(grid, tile_size) == len(tiles)
    # Tiles partition the raster exactly.
    assert sum(t.grid.height * t.grid.width for t in tiles) == \
        grid.height * grid.width


@settings(max_examples=80, deadline=None)
@given(case=tilings())
def test_tile_transform_roundtrips_to_parent(case):
    """tile.pixel_to_map(r, c) == parent.pixel_to_map(r + off_r, c + off_c)
    at every tile corner, for every tile (edge tiles included)."""
    grid, tile_size = case
    for tile in iter_tiles(grid, tile_size):
        corners = [
            (0, 0),
            (0, tile.grid.width - 1),
            (tile.grid.height - 1, 0),
            (tile.grid.height - 1, tile.grid.width - 1),
        ]
        for row, col in corners:
            got = tile.grid.transform.pixel_to_map(row, col)
            expected = grid.transform.pixel_to_map(
                row + tile.row_offset, col + tile.col_offset
            )
            # approx: the tile origin is derived by one add/multiply, so
            # float association can differ in the last ulp.
            assert got == pytest.approx(expected, rel=1e-12, abs=1e-9)


def test_non_multiple_extent_edge_tiles():
    """The concrete clipped-tile case: 10x13 grid, 4-pixel tiles."""
    grid = RasterGrid(np.zeros((1, 10, 13)), GeoTransform(500.0, 800.0, 10.0))
    tiles = {t.key: t for t in iter_tiles(grid, 4)}
    assert tile_count(grid, 4) == len(tiles) == 3 * 4
    corner = tiles[(2, 3)]  # south-east corner tile, clipped both ways
    assert (corner.grid.height, corner.grid.width) == (2, 1)
    assert (corner.row_offset, corner.col_offset) == (8, 12)
    assert corner.grid.transform.pixel_to_map(0, 0) == \
        grid.transform.pixel_to_map(8, 12)
    # Last pixel of the scene, addressed through the tile.
    assert corner.grid.transform.pixel_to_map(1, 0) == \
        grid.transform.pixel_to_map(9, 12)
