"""Synthetic Sentinel scene generator tests."""

import numpy as np
import pytest

from repro.errors import RasterError
from repro.raster import (
    LandCover,
    SeaIce,
    landcover_field,
    sea_ice_field,
    sentinel1_scene,
    sentinel2_scene,
)
from repro.raster.sentinel import CROP_CLASSES, S2_BANDS


class TestLandcoverField:
    def test_shape_and_classes(self):
        field = landcover_field(32, 40, seed=1)
        assert field.shape == (32, 40)
        assert set(np.unique(field)) <= {int(c) for c in LandCover}

    def test_deterministic(self):
        a = landcover_field(16, 16, seed=7)
        b = landcover_field(16, 16, seed=7)
        assert np.array_equal(a, b)

    def test_seed_changes_field(self):
        a = landcover_field(16, 16, seed=1)
        b = landcover_field(16, 16, seed=2)
        assert not np.array_equal(a, b)

    def test_patches_are_contiguous(self):
        # Smooth fields: most pixels agree with their right neighbour.
        field = landcover_field(64, 64, seed=3, blob_scale=8.0)
        agreement = (field[:, :-1] == field[:, 1:]).mean()
        assert agreement > 0.8

    def test_subset_of_classes(self):
        field = landcover_field(16, 16, classes=[int(LandCover.WATER), int(LandCover.URBAN)])
        assert set(np.unique(field)) <= {0, 1}

    def test_validation(self):
        with pytest.raises(RasterError):
            landcover_field(0, 5)
        with pytest.raises(RasterError):
            landcover_field(5, 5, classes=[])


class TestSeaIceField:
    def test_gradient_more_ice_north(self):
        field = sea_ice_field(64, 32, seed=0, ice_extent=0.5)
        top_ice = (field[:16] != int(SeaIce.OPEN_WATER)).mean()
        bottom_ice = (field[-16:] != int(SeaIce.OPEN_WATER)).mean()
        assert top_ice > bottom_ice

    def test_ice_extent_zero_mostly_water(self):
        field = sea_ice_field(32, 32, seed=0, ice_extent=0.0)
        assert (field == int(SeaIce.OPEN_WATER)).mean() > 0.8

    def test_ice_extent_one_mostly_ice(self):
        field = sea_ice_field(32, 32, seed=0, ice_extent=1.0)
        assert (field != int(SeaIce.OPEN_WATER)).mean() > 0.8

    def test_validation(self):
        with pytest.raises(RasterError):
            sea_ice_field(8, 8, ice_extent=1.5)


class TestSentinel2:
    truth = landcover_field(24, 24, seed=5)

    def test_band_count_and_range(self):
        scene = sentinel2_scene(self.truth, seed=1)
        assert scene.grid.band_count == S2_BANDS
        assert scene.grid.data.min() >= 0.0
        assert scene.grid.data.max() <= 1.0
        assert scene.mission == "S2"

    def test_truth_preserved(self):
        scene = sentinel2_scene(self.truth)
        assert np.array_equal(scene.truth, self.truth)

    def test_deterministic(self):
        a = sentinel2_scene(self.truth, seed=3)
        b = sentinel2_scene(self.truth, seed=3)
        assert np.array_equal(a.grid.data, b.grid.data)

    def test_classes_spectrally_separable(self):
        # Water NIR (band 7) must sit far below crop NIR at peak season.
        truth = np.zeros((10, 20), dtype=np.int16)
        truth[:, 10:] = int(LandCover.MAIZE)
        scene = sentinel2_scene(truth, day_of_year=200, seed=0, noise_std=0.01)
        water_nir = scene.grid.data[7][:, :10].mean()
        maize_nir = scene.grid.data[7][:, 10:].mean()
        assert maize_nir > water_nir + 0.2

    def test_phenology_changes_signal(self):
        truth = np.full((10, 10), int(LandCover.WHEAT), dtype=np.int16)
        winter = sentinel2_scene(truth, day_of_year=20, seed=0, noise_std=0.0)
        summer = sentinel2_scene(truth, day_of_year=150, seed=0, noise_std=0.0)
        assert summer.grid.data[7].mean() > winter.grid.data[7].mean() + 0.05

    def test_clouds(self):
        scene = sentinel2_scene(self.truth, seed=2, cloud_fraction=0.3)
        assert scene.cloud_mask is not None
        assert 0.2 < scene.cloud_mask.mean() < 0.4
        assert scene.clear_fraction() == pytest.approx(1 - scene.cloud_mask.mean())
        # Clouded pixels are bright in all bands.
        assert scene.grid.data[:, scene.cloud_mask].mean() > 0.7

    def test_no_clouds_by_default(self):
        scene = sentinel2_scene(self.truth)
        assert scene.cloud_mask is None
        assert scene.clear_fraction() == 1.0

    def test_validation(self):
        with pytest.raises(RasterError):
            sentinel2_scene(np.zeros((2, 2, 2)))
        with pytest.raises(RasterError):
            sentinel2_scene(self.truth, cloud_fraction=1.5)


class TestSentinel1:
    def test_two_bands_db_range(self):
        truth = sea_ice_field(24, 24, seed=1)
        scene = sentinel1_scene(truth, seed=1)
        assert scene.grid.band_count == 2
        assert scene.mission == "S1"
        # Backscatter in a plausible dB window.
        assert -45 < scene.grid.data.mean() < 0

    def test_ice_classes_separable_in_vv(self):
        truth = np.zeros((20, 40), dtype=np.int16)
        truth[:, 20:] = int(SeaIce.OLD_ICE)
        scene = sentinel1_scene(truth, looks=16, seed=0)
        water_vv = scene.grid.data[0][:, :20].mean()
        ice_vv = scene.grid.data[0][:, 20:].mean()
        assert ice_vv > water_vv + 5.0

    def test_more_looks_less_speckle(self):
        truth = np.full((32, 32), int(SeaIce.FIRST_YEAR_ICE), dtype=np.int16)
        noisy = sentinel1_scene(truth, looks=1, seed=0)
        smooth = sentinel1_scene(truth, looks=16, seed=0)
        assert noisy.grid.data[0].std() > smooth.grid.data[0].std() * 2

    def test_land_signatures(self):
        truth = np.zeros((16, 32), dtype=np.int16)
        truth[:, 16:] = int(LandCover.URBAN)
        scene = sentinel1_scene(truth, signatures="land", looks=16, seed=0)
        water_vv = scene.grid.data[0][:, :16].mean()
        urban_vv = scene.grid.data[0][:, 16:].mean()
        assert urban_vv > water_vv + 10.0

    def test_validation(self):
        truth = sea_ice_field(8, 8)
        with pytest.raises(RasterError):
            sentinel1_scene(truth, looks=0)
        with pytest.raises(RasterError):
            sentinel1_scene(truth, signatures="ocean")
