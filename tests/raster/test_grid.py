"""RasterGrid and GeoTransform tests."""

import numpy as np
import pytest

from repro.errors import RasterError
from repro.raster import GeoTransform, RasterGrid


@pytest.fixture
def grid():
    data = np.arange(2 * 10 * 8, dtype=np.float32).reshape(2, 10, 8)
    return RasterGrid(data, GeoTransform(origin_x=100.0, origin_y=200.0, pixel_size=10.0))


class TestGeoTransform:
    def test_pixel_size_validation(self):
        with pytest.raises(RasterError):
            GeoTransform(0, 0, 0)
        with pytest.raises(RasterError):
            GeoTransform(0, 0, -5)

    def test_pixel_to_map_center(self):
        t = GeoTransform(100, 200, 10)
        assert t.pixel_to_map(0, 0) == (105.0, 195.0)
        assert t.pixel_to_map(1, 2) == (125.0, 185.0)

    def test_map_to_pixel(self):
        t = GeoTransform(100, 200, 10)
        assert t.map_to_pixel(105, 195) == (0, 0)
        assert t.map_to_pixel(119.9, 180.1) == (1, 1)

    def test_round_trip(self):
        t = GeoTransform(-50, 30, 2.5)
        for row, col in [(0, 0), (3, 7), (10, 2)]:
            x, y = t.pixel_to_map(row, col)
            assert t.map_to_pixel(x, y) == (row, col)


class TestRasterGrid:
    def test_2d_promoted_to_3d(self):
        grid = RasterGrid(np.zeros((4, 5)), GeoTransform(0, 0, 1))
        assert grid.shape == (1, 4, 5)

    def test_invalid_ndim(self):
        with pytest.raises(RasterError):
            RasterGrid(np.zeros((2, 2, 2, 2)), GeoTransform(0, 0, 1))

    def test_empty_rejected(self):
        with pytest.raises(RasterError):
            RasterGrid(np.zeros((1, 0, 5)), GeoTransform(0, 0, 1))

    def test_properties(self, grid):
        assert grid.band_count == 2
        assert grid.height == 10
        assert grid.width == 8
        assert grid.resolution == 10.0
        assert grid.nbytes == 2 * 10 * 8 * 4

    def test_bbox(self, grid):
        box = grid.bbox
        assert (box.min_x, box.max_y) == (100.0, 200.0)
        assert (box.max_x, box.min_y) == (180.0, 100.0)

    def test_footprint_covers_bbox(self, grid):
        assert grid.footprint.bbox == grid.bbox

    def test_band_access(self, grid):
        assert grid.band(1)[0, 0] == 80.0
        with pytest.raises(RasterError):
            grid.band(2)

    def test_value_at(self, grid):
        # Pixel (0,0) center is (105, 195); band 0 value 0.
        assert grid.value_at(105, 195) == 0.0
        assert grid.value_at(105, 195, band=1) == 80.0

    def test_value_at_outside(self, grid):
        with pytest.raises(RasterError):
            grid.value_at(0, 0)


class TestWindow:
    def test_window_data(self, grid):
        win = grid.window(2, 3, 4, 2)
        assert win.shape == (2, 4, 2)
        assert win.data[0, 0, 0] == grid.data[0, 2, 3]

    def test_window_georeferencing(self, grid):
        win = grid.window(2, 3, 4, 2)
        assert win.transform.origin_x == 100 + 3 * 10
        assert win.transform.origin_y == 200 - 2 * 10
        # Same map point gives the same value through either raster.
        x, y = win.transform.pixel_to_map(0, 0)
        assert win.value_at(x, y) == grid.value_at(x, y)

    def test_window_out_of_bounds(self, grid):
        with pytest.raises(RasterError):
            grid.window(8, 0, 5, 2)


class TestResample:
    def test_mean_downsample(self):
        data = np.array([[1.0, 3.0], [5.0, 7.0]])
        grid = RasterGrid(data, GeoTransform(0, 0, 1))
        out = grid.resample(2)
        assert out.shape == (1, 1, 1)
        assert out.data[0, 0, 0] == 4.0
        assert out.resolution == 2.0

    def test_mode_downsample(self):
        data = np.array([[1, 1], [1, 2]], dtype=np.int16)
        grid = RasterGrid(data, GeoTransform(0, 0, 1))
        out = grid.resample(2, method="mode")
        assert out.data[0, 0, 0] == 1

    def test_factor_one_identity(self, grid):
        assert grid.resample(1) is grid

    def test_edge_cropping(self):
        grid = RasterGrid(np.ones((5, 5)), GeoTransform(0, 0, 1))
        out = grid.resample(2)
        assert out.shape == (1, 2, 2)

    def test_invalid_factor(self, grid):
        with pytest.raises(RasterError):
            grid.resample(0)
        with pytest.raises(RasterError):
            grid.resample(100)

    def test_unknown_method(self, grid):
        with pytest.raises(RasterError):
            grid.resample(2, method="bicubic")

    def test_mean_preserves_total(self):
        rng = np.random.default_rng(1)
        data = rng.random((1, 8, 8))
        grid = RasterGrid(data, GeoTransform(0, 0, 1))
        out = grid.resample(4)
        assert out.data.mean() == pytest.approx(data.mean(), rel=1e-6)
