"""Regression tests for window/tile buffer ownership.

``test_copy_param_exists`` and the independence tests fail on the seed
code, where ``RasterGrid.window`` had no ``copy`` parameter and always
returned a numpy view: tiles cut for storage aliased the parent scene, so
mutating the scene after "storing" a tile silently changed the stored
bytes (and vice versa).
"""

import numpy as np
import pytest

from repro.raster.grid import GeoTransform, RasterGrid
from repro.raster.tiles import iter_tiles


def make_grid(bands=2, height=12, width=16):
    data = np.arange(bands * height * width, dtype=float).reshape(
        bands, height, width
    )
    return RasterGrid(data, GeoTransform(0.0, 0.0, 10.0))


class TestWindowCopy:
    def test_copy_param_exists(self):
        # Raises TypeError on seed code (no such parameter).
        grid = make_grid()
        window = grid.window(2, 3, 4, 5, copy=True)
        assert (window.height, window.width) == (4, 5)

    def test_copy_true_is_independent_both_ways(self):
        grid = make_grid()
        window = grid.window(2, 3, 4, 5, copy=True)
        original = window.data.copy()
        grid.data[:] = -1.0  # parent mutation must not reach the window
        assert np.array_equal(window.data, original)
        window.data[:] = -2.0  # window mutation must not reach the parent
        assert float(grid.data.max()) == -1.0

    def test_default_stays_a_view(self):
        """The cheap read-only path is unchanged: default windows alias."""
        grid = make_grid()
        window = grid.window(0, 0, 4, 4)
        grid.data[0, 0, 0] = 123.0
        assert window.data[0, 0, 0] == 123.0

    def test_copy_preserves_georeferencing(self):
        grid = make_grid()
        view = grid.window(2, 3, 4, 5)
        copied = grid.window(2, 3, 4, 5, copy=True)
        assert copied.transform == view.transform
        assert np.array_equal(copied.data, view.data)


class TestTileCopy:
    def test_copied_tiles_survive_scene_mutation(self):
        """The storage-bound tiling path: cut tiles, drop the scene."""
        grid = make_grid()
        tiles = list(iter_tiles(grid, 5, copy=True))
        originals = [tile.grid.data.copy() for tile in tiles]
        grid.data[:] = np.nan
        for tile, original in zip(tiles, originals):
            assert np.array_equal(tile.grid.data, original)

    def test_default_tiles_are_views(self):
        grid = make_grid()
        tile = next(iter_tiles(grid, 5))
        grid.data[0, 0, 0] = 321.0
        assert tile.grid.data[0, 0, 0] == 321.0
