"""Losses, optimizers, network container, and metrics tests."""

import numpy as np
import pytest

from repro.errors import MLError
from repro.ml import (
    Adam,
    Dense,
    ReLU,
    SGD,
    Sequential,
    WarmupLinearScalingSchedule,
    accuracy,
    confusion_matrix,
    f1_scores,
    mean_iou,
    mse_loss,
    softmax_cross_entropy,
)
from tests.ml.test_layers import numeric_gradient


class TestLosses:
    def test_cross_entropy_uniform(self):
        logits = np.zeros((2, 4))
        loss, grad = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss == pytest.approx(np.log(4))
        assert grad.shape == (2, 4)

    def test_cross_entropy_gradient_numeric(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((3, 5))
        labels = np.array([1, 4, 0])
        _, analytic = softmax_cross_entropy(logits, labels)

        def loss():
            return softmax_cross_entropy(logits, labels)[0]

        numeric = numeric_gradient(loss, logits)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_cross_entropy_confident_correct_is_small(self):
        logits = np.array([[10.0, -10.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0]))
        assert loss < 1e-6

    def test_cross_entropy_validation(self):
        with pytest.raises(MLError):
            softmax_cross_entropy(np.zeros((2, 3)), np.array([3, 0]))
        with pytest.raises(MLError):
            softmax_cross_entropy(np.zeros(3), np.array([0]))

    def test_mse(self):
        loss, grad = mse_loss(np.array([1.0, 3.0]), np.array([0.0, 0.0]))
        assert loss == pytest.approx(5.0)
        np.testing.assert_allclose(grad, [1.0, 3.0])

    def test_mse_shape_mismatch(self):
        with pytest.raises(MLError):
            mse_loss(np.zeros(3), np.zeros(4))


class TestOptimizers:
    def _quadratic_param(self):
        from repro.ml.layers import Parameter

        return Parameter(np.array([5.0, -3.0]))

    def test_sgd_converges_on_quadratic(self):
        p = self._quadratic_param()
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            p.grad[...] = 2 * p.value  # d/dx of x^2
            opt.step()
        np.testing.assert_allclose(p.value, 0.0, atol=1e-6)

    def test_momentum_faster_than_plain_on_valley(self):
        def run(momentum):
            p = self._quadratic_param()
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(100):
                p.grad[...] = 2 * p.value
                opt.step()
            return np.abs(p.value).max()

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_weights(self):
        p = self._quadratic_param()
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad[...] = 0.0
        opt.step()
        assert np.abs(p.value).max() < 5.0

    def test_adam_converges(self):
        p = self._quadratic_param()
        opt = Adam([p], lr=0.3)
        for _ in range(300):
            p.grad[...] = 2 * p.value
            opt.step()
        np.testing.assert_allclose(p.value, 0.0, atol=1e-3)

    def test_zero_grad(self):
        p = self._quadratic_param()
        p.grad[...] = 7.0
        SGD([p], lr=0.1).zero_grad()
        assert p.grad.sum() == 0.0

    def test_validation(self):
        p = self._quadratic_param()
        with pytest.raises(MLError):
            SGD([p], lr=0)
        with pytest.raises(MLError):
            SGD([p], lr=0.1, momentum=1.0)
        with pytest.raises(MLError):
            SGD([], lr=0.1)


class TestSchedule:
    def test_linear_scaling_target(self):
        schedule = WarmupLinearScalingSchedule(base_lr=0.1, workers=8)
        assert schedule.target_lr == pytest.approx(0.8)
        assert schedule.lr_at(0) == pytest.approx(0.8)

    def test_warmup_ramps(self):
        schedule = WarmupLinearScalingSchedule(base_lr=0.1, workers=4, warmup_steps=10)
        rates = [schedule.lr_at(s) for s in range(12)]
        assert rates[0] < rates[5] < rates[9]
        assert rates[9] == pytest.approx(0.4)
        assert rates[11] == pytest.approx(0.4)

    def test_apply(self):
        from repro.ml.layers import Parameter

        schedule = WarmupLinearScalingSchedule(0.1, 2, warmup_steps=0)
        opt = SGD([Parameter(np.zeros(1))], lr=0.01)
        schedule.apply(opt, 0)
        assert opt.lr == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(MLError):
            WarmupLinearScalingSchedule(0, 4)
        with pytest.raises(MLError):
            WarmupLinearScalingSchedule(0.1, 0)


class TestSequential:
    def make_xor_data(self):
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.float64)
        y = np.array([0, 1, 1, 0])
        return x, y

    def test_learns_xor(self):
        x, y = self.make_xor_data()
        model = Sequential([Dense(2, 16, seed=1), ReLU(), Dense(16, 2, seed=2)])
        opt = SGD(model.parameters(), lr=0.5)
        for _ in range(500):
            model.zero_grad()
            logits = model.forward(x, training=True)
            _, dlogits = softmax_cross_entropy(logits, y)
            model.backward(dlogits)
            opt.step()
        assert accuracy(model.predict(x), y) == 1.0

    def test_parameter_count(self):
        model = Sequential([Dense(3, 4), ReLU(), Dense(4, 2)])
        assert model.parameter_count == (3 * 4 + 4) + (4 * 2 + 2)
        assert model.parameter_bytes == model.parameter_count * 4

    def test_predict_proba_sums_to_one(self):
        model = Sequential([Dense(3, 4, seed=0)])
        probs = model.predict_proba(np.random.default_rng(0).standard_normal((5, 3)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_state_dict_round_trip(self, tmp_path):
        model = Sequential([Dense(3, 4, seed=1), ReLU(), Dense(4, 2, seed=2)])
        clone = Sequential([Dense(3, 4, seed=9), ReLU(), Dense(4, 2, seed=8)])
        path = str(tmp_path / "model.npz")
        model.save(path)
        clone.load(path)
        x = np.random.default_rng(1).standard_normal((4, 3))
        np.testing.assert_array_equal(model.forward(x), clone.forward(x))

    def test_load_shape_mismatch(self):
        model = Sequential([Dense(3, 4)])
        other = Sequential([Dense(3, 5)])
        with pytest.raises(MLError):
            model.load_state_dict(other.state_dict())

    def test_empty_rejected(self):
        with pytest.raises(MLError):
            Sequential([])


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 0])) == pytest.approx(2 / 3)

    def test_accuracy_validation(self):
        with pytest.raises(MLError):
            accuracy(np.array([]), np.array([]))
        with pytest.raises(MLError):
            accuracy(np.array([1]), np.array([1, 2]))

    def test_confusion_matrix(self):
        m = confusion_matrix(np.array([0, 1, 1]), np.array([0, 1, 0]))
        np.testing.assert_array_equal(m, [[1, 1], [0, 1]])

    def test_confusion_matrix_rejects_negative_labels(self):
        # Regression: fancy indexing silently wrapped -1 to the last row,
        # corrupting every downstream metric instead of failing loudly.
        with pytest.raises(MLError):
            confusion_matrix(np.array([0, 1]), np.array([0, -1]))
        with pytest.raises(MLError):
            confusion_matrix(np.array([-2, 1]), np.array([0, 1]))

    def test_confusion_matrix_rejects_out_of_range_labels(self):
        with pytest.raises(MLError):
            confusion_matrix(np.array([0, 3]), np.array([0, 1]), num_classes=2)
        with pytest.raises(MLError):
            confusion_matrix(np.array([0]), np.array([0]), num_classes=0)

    def test_f1_and_iou_reject_negative_labels(self):
        with pytest.raises(MLError):
            f1_scores(np.array([0, -1]), np.array([0, 1]))
        with pytest.raises(MLError):
            mean_iou(np.array([0, 1]), np.array([-1, 1]))

    def test_f1_perfect(self):
        scores = f1_scores(np.array([0, 1, 2]), np.array([0, 1, 2]))
        assert all(v == 1.0 for v in scores.values())

    def test_f1_partial(self):
        # Class 0: tp=1 fp=1 fn=0 -> f1 = 2/3... compute: 2*1/(2+1+0)=2/3
        scores = f1_scores(np.array([0, 0]), np.array([0, 1]))
        assert scores[0] == pytest.approx(2 / 3)
        assert scores[1] == 0.0

    def test_mean_iou(self):
        assert mean_iou(np.array([0, 1]), np.array([0, 1])) == 1.0
        assert mean_iou(np.array([0, 0]), np.array([0, 1])) == pytest.approx(0.25)

    def test_mean_iou_empty(self):
        with pytest.raises(MLError):
            mean_iou(np.array([]).astype(int), np.array([]).astype(int))
