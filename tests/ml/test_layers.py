"""Layer tests: shapes, semantics, and numeric gradient checks."""

import numpy as np
import pytest

from repro.errors import MLError
from repro.ml import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
)


def numeric_gradient(f, x, eps=1e-6):
    """Central-difference gradient of scalar f wrt array x."""
    grad = np.zeros_like(x)
    flat_x = x.ravel()
    flat_g = grad.ravel()
    for i in range(flat_x.size):
        original = flat_x[i]
        flat_x[i] = original + eps
        plus = f()
        flat_x[i] = original - eps
        minus = f()
        flat_x[i] = original
        flat_g[i] = (plus - minus) / (2 * eps)
    return grad


def check_input_gradient(layer, x, training=True, tol=1e-5):
    """Verify layer.backward against numeric differentiation of sum(output)."""
    out = layer.forward(x, training=training)
    analytic = layer.backward(np.ones_like(out))

    def loss():
        return layer.forward(x, training=training).sum()

    numeric = numeric_gradient(loss, x)
    np.testing.assert_allclose(analytic, numeric, atol=tol, rtol=1e-4)


def check_param_gradients(layer, x, training=True, tol=1e-5):
    out = layer.forward(x, training=training)
    for p in layer.parameters():
        p.zero_grad()
    layer.forward(x, training=training)
    layer.backward(np.ones_like(out))
    for p in layer.parameters():
        analytic = p.grad.copy()

        def loss():
            return layer.forward(x, training=training).sum()

        numeric = numeric_gradient(loss, p.value)
        np.testing.assert_allclose(analytic, numeric, atol=tol, rtol=1e-4,
                                   err_msg=p.name)


class TestDense:
    def test_forward_shape(self):
        layer = Dense(4, 3)
        out = layer.forward(np.zeros((5, 4)))
        assert out.shape == (5, 3)

    def test_forward_values(self):
        layer = Dense(2, 1)
        layer.weight.value[...] = [[2.0], [3.0]]
        layer.bias.value[...] = [1.0]
        out = layer.forward(np.array([[1.0, 1.0]]))
        assert out[0, 0] == 6.0

    def test_input_gradient(self):
        rng = np.random.default_rng(0)
        check_input_gradient(Dense(4, 3, seed=1), rng.standard_normal((3, 4)))

    def test_param_gradients(self):
        rng = np.random.default_rng(0)
        check_param_gradients(Dense(3, 2, seed=2), rng.standard_normal((4, 3)))

    def test_shape_validation(self):
        with pytest.raises(MLError):
            Dense(4, 3).forward(np.zeros((2, 5)))
        with pytest.raises(MLError):
            Dense(0, 3)

    def test_backward_before_forward(self):
        with pytest.raises(MLError):
            Dense(2, 2).backward(np.zeros((1, 2)))


class TestConv2D:
    def test_same_padding_shape(self):
        layer = Conv2D(2, 4, kernel_size=3, padding="same")
        out = layer.forward(np.zeros((1, 2, 8, 8)))
        assert out.shape == (1, 4, 8, 8)

    def test_valid_padding_shape(self):
        layer = Conv2D(1, 2, kernel_size=3, padding="valid")
        out = layer.forward(np.zeros((1, 1, 8, 8)))
        assert out.shape == (1, 2, 6, 6)

    def test_identity_kernel(self):
        layer = Conv2D(1, 1, kernel_size=3, padding="same")
        layer.weight.value[...] = 0.0
        layer.weight.value[0, 0, 1, 1] = 1.0
        layer.bias.value[...] = 0.0
        x = np.random.default_rng(0).standard_normal((1, 1, 5, 5))
        np.testing.assert_allclose(layer.forward(x), x)

    def test_input_gradient(self):
        rng = np.random.default_rng(1)
        check_input_gradient(
            Conv2D(2, 3, kernel_size=3, padding="same", seed=3),
            rng.standard_normal((2, 2, 5, 5)),
        )

    def test_input_gradient_valid(self):
        rng = np.random.default_rng(2)
        check_input_gradient(
            Conv2D(1, 2, kernel_size=3, padding="valid", seed=4),
            rng.standard_normal((1, 1, 6, 6)),
        )

    def test_param_gradients(self):
        rng = np.random.default_rng(3)
        check_param_gradients(
            Conv2D(2, 2, kernel_size=3, padding="same", seed=5),
            rng.standard_normal((1, 2, 4, 4)),
        )

    def test_validation(self):
        with pytest.raises(MLError):
            Conv2D(1, 1, kernel_size=2, padding="same")
        with pytest.raises(MLError):
            Conv2D(1, 1, padding="circular")
        with pytest.raises(MLError):
            Conv2D(2, 1).forward(np.zeros((1, 3, 4, 4)))


class TestMaxPool:
    def test_forward(self):
        layer = MaxPool2D(2)
        x = np.array([[[[1, 2, 5, 6], [3, 4, 7, 8], [0, 0, 1, 1], [0, 9, 1, 1]]]],
                     dtype=np.float64)
        out = layer.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[4, 8], [9, 1]])

    def test_backward_routes_to_max(self):
        layer = MaxPool2D(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        layer.forward(x)
        dx = layer.backward(np.array([[[[10.0]]]]))
        np.testing.assert_array_equal(dx[0, 0], [[0, 0], [0, 10]])

    def test_ties_route_to_one_input(self):
        layer = MaxPool2D(2)
        x = np.ones((1, 1, 2, 2))
        layer.forward(x)
        dx = layer.backward(np.array([[[[1.0]]]]))
        assert dx.sum() == 1.0  # not duplicated to all tied maxima

    def test_input_gradient(self):
        rng = np.random.default_rng(4)
        # Distinct values avoid tie ambiguity in the numeric check.
        x = rng.permutation(36).reshape(1, 1, 6, 6).astype(np.float64)
        check_input_gradient(MaxPool2D(2), x)

    def test_indivisible_rejected(self):
        with pytest.raises(MLError):
            MaxPool2D(2).forward(np.zeros((1, 1, 5, 4)))


class TestActivationsAndRegularizers:
    def test_relu(self):
        layer = ReLU()
        x = np.array([[-1.0, 2.0]])
        np.testing.assert_array_equal(layer.forward(x), [[0.0, 2.0]])
        dx = layer.backward(np.array([[5.0, 5.0]]))
        np.testing.assert_array_equal(dx, [[0.0, 5.0]])

    def test_relu_gradient(self):
        rng = np.random.default_rng(5)
        # Keep away from the kink at zero.
        x = rng.standard_normal((3, 4))
        x[np.abs(x) < 0.1] = 0.5
        check_input_gradient(ReLU(), x)

    def test_flatten_round_trip(self):
        layer = Flatten()
        x = np.arange(24.0).reshape(2, 3, 2, 2)
        out = layer.forward(x)
        assert out.shape == (2, 12)
        assert layer.backward(out).shape == x.shape

    def test_dropout_inference_identity(self):
        layer = Dropout(0.5)
        x = np.ones((4, 4))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_dropout_training_scales(self):
        layer = Dropout(0.5, seed=0)
        x = np.ones((1000,)).reshape(10, 100)
        out = layer.forward(x, training=True)
        # Inverted dropout: surviving activations scaled by 1/keep.
        assert set(np.unique(out)) <= {0.0, 2.0}
        assert abs(out.mean() - 1.0) < 0.15

    def test_dropout_backward_uses_same_mask(self):
        layer = Dropout(0.5, seed=1)
        x = np.ones((5, 5))
        out = layer.forward(x, training=True)
        dx = layer.backward(np.ones_like(out))
        np.testing.assert_array_equal((out == 0), (dx == 0))

    def test_dropout_validation(self):
        with pytest.raises(MLError):
            Dropout(1.0)


class TestBatchNorm:
    def test_normalizes_training_batch(self):
        layer = BatchNorm(3)
        rng = np.random.default_rng(6)
        x = rng.normal(5.0, 3.0, size=(64, 3))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_used_at_inference(self):
        layer = BatchNorm(2, momentum=0.0)  # adopt batch stats immediately
        x = np.array([[0.0, 10.0], [2.0, 14.0]])
        layer.forward(x, training=True)
        out = layer.forward(np.array([[1.0, 12.0]]), training=False)
        np.testing.assert_allclose(out, 0.0, atol=1e-3)

    def test_4d_input(self):
        layer = BatchNorm(3)
        x = np.random.default_rng(7).standard_normal((2, 3, 4, 4))
        out = layer.forward(x, training=True)
        assert out.shape == x.shape
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)

    def test_input_gradient(self):
        rng = np.random.default_rng(8)
        check_input_gradient(BatchNorm(3), rng.standard_normal((6, 3)), tol=1e-4)

    def test_param_gradients(self):
        rng = np.random.default_rng(9)
        check_param_gradients(BatchNorm(4), rng.standard_normal((5, 4)), tol=1e-4)
