"""Checkpoint/restore, save/load round-trips, and elastic recovery (E17)."""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MLError
from repro.faults import FaultInjector, FaultPlan, WorkerCrash
from repro.ml import Adam, DataParallelTrainer, Dense, ReLU, SGD, Sequential


def make_model(seed=0, inputs=4, hidden=8, outputs=3):
    return Sequential(
        [Dense(inputs, hidden, seed=seed), ReLU(), Dense(hidden, outputs, seed=seed + 1)]
    )


def make_blobs(n=48, seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[3, 0, 0, 0], [0, 3, 0, 0], [0, 0, 3, 0]], dtype=np.float64)
    y = rng.integers(0, 3, size=n)
    x = centers[y] + rng.normal(0, 0.5, size=(n, 4))
    return x, y


class TestNetworkSaveLoadProperty:
    """Property test: save/load is a bitwise round-trip for any shape/seed."""

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        hidden=st.integers(min_value=1, max_value=32),
        batch=st.integers(min_value=1, max_value=16),
    )
    def test_forward_pass_identical_after_round_trip(
        self, tmp_path_factory, seed, hidden, batch
    ):
        path = str(tmp_path_factory.mktemp("ckpt") / "model.npz")
        model = make_model(seed=seed, hidden=hidden)
        x = np.random.default_rng(seed).normal(size=(batch, 4))
        before = model.forward(x)
        model.save(path)

        restored = make_model(seed=seed + 999, hidden=hidden)  # different init
        restored.load(path)
        after = restored.forward(x)
        assert np.array_equal(before, after)  # bitwise, not approx
        for p, q in zip(model.parameters(), restored.parameters()):
            assert np.array_equal(p.value, q.value)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        steps=st.integers(min_value=1, max_value=5),
        use_adam=st.booleans(),
    )
    def test_optimizer_state_round_trip(self, seed, steps, use_adam):
        x, y = make_blobs(n=24, seed=seed % 1000)
        model = make_model(seed=seed % 1000)
        params = model.parameters()
        optimizer = Adam(params, lr=0.01) if use_adam else SGD(
            params, lr=0.1, momentum=0.9
        )
        trainer = DataParallelTrainer(model, optimizer)
        for _ in range(steps):
            trainer.train_step(x, y)

        state = optimizer.state_dict()
        fresh_model = make_model(seed=seed % 1000)
        fresh_params = fresh_model.parameters()
        fresh = Adam(fresh_params, lr=0.5) if use_adam else SGD(
            fresh_params, lr=0.5, momentum=0.1
        )
        fresh.load_state_dict(state)
        restored = fresh.state_dict()
        assert set(restored) == set(state)
        for key in state:
            assert np.array_equal(np.asarray(restored[key]), np.asarray(state[key]))

    def test_load_missing_keys_raises(self):
        model = make_model()
        optimizer = Adam(model.parameters())
        with pytest.raises(MLError):
            optimizer.load_state_dict({"lr": np.float64(0.1)})


class TestCheckpointRestore:
    def test_resume_matches_uninterrupted_run(self, tmp_path):
        """Checkpoint at step k, restore, finish: bitwise-identical to a run
        that never stopped."""
        x, y = make_blobs(n=40, seed=7)
        path = str(tmp_path / "trainer.npz")

        model_a = make_model(seed=3)
        trainer_a = DataParallelTrainer(
            model_a, Adam(model_a.parameters(), lr=0.01), workers=2
        )
        for _ in range(2):
            trainer_a.train_step(x, y)
        trainer_a.save_checkpoint(path)
        reference_losses = [trainer_a.train_step(x, y) for _ in range(3)]

        model_b = make_model(seed=99)  # unrelated init, overwritten by restore
        trainer_b = DataParallelTrainer(
            model_b, Adam(model_b.parameters(), lr=0.5), workers=2
        )
        trainer_b.load_checkpoint(path)
        assert trainer_b.report.steps == 2
        resumed_losses = [trainer_b.train_step(x, y) for _ in range(3)]

        assert resumed_losses == reference_losses  # bitwise, not approx
        for p, q in zip(model_a.parameters(), model_b.parameters()):
            assert np.array_equal(p.value, q.value)

    def test_periodic_checkpointing(self, tmp_path):
        x, y = make_blobs(n=24, seed=1)
        path = str(tmp_path / "auto")
        model = make_model(seed=1)
        trainer = DataParallelTrainer(
            model,
            SGD(model.parameters(), lr=0.1),
            checkpoint_every=2,
            checkpoint_path=path,
        )
        for _ in range(5):
            trainer.train_step(x, y)
        assert trainer.report.checkpoints_written == 2  # steps 2 and 4
        assert os.path.exists(path + ".npz")

    def test_checkpoint_config_validation(self):
        model = make_model()
        with pytest.raises(MLError):
            DataParallelTrainer(
                model, SGD(model.parameters()), checkpoint_every=2
            )
        with pytest.raises(MLError):
            DataParallelTrainer(
                model,
                SGD(model.parameters()),
                checkpoint_every=0,
                checkpoint_path="x",
            )
        trainer = DataParallelTrainer(model, SGD(model.parameters()))
        with pytest.raises(MLError):
            trainer.save_checkpoint()


class TestElasticRecovery:
    def test_crash_detected_at_step_boundary(self):
        x, y = make_blobs(n=40, seed=2)
        model = make_model(seed=2)
        plan = FaultPlan(worker_crashes=(WorkerCrash(worker=1, at_step=2),))
        trainer = DataParallelTrainer(
            model,
            SGD(model.parameters(), lr=0.1),
            workers=4,
            injector=FaultInjector(plan),
        )
        for _ in range(4):
            trainer.train_step(x, y)
        assert trainer.active_workers == (0, 2, 3)
        assert trainer.report.worker_crashes == 1

    def test_survivor_updates_are_exact(self):
        """After a crash, each update equals the single-worker update over
        exactly the surviving workers' shards."""
        x, y = make_blobs(n=40, seed=4)
        plan = FaultPlan(worker_crashes=(WorkerCrash(worker=0, at_step=0),))

        elastic_model = make_model(seed=6)
        elastic = DataParallelTrainer(
            elastic_model,
            SGD(elastic_model.parameters(), lr=0.1),
            workers=4,
            injector=FaultInjector(plan),
        )
        reference_model = make_model(seed=6)
        reference = DataParallelTrainer(
            reference_model, SGD(reference_model.parameters(), lr=0.1), workers=1
        )

        shards = np.array_split(np.arange(40), 4)
        surviving = np.concatenate([shards[w] for w in (1, 2, 3)])
        for _ in range(3):
            loss_elastic = elastic.train_step(x, y)
            loss_reference = reference.train_step(x[surviving], y[surviving])
            assert loss_elastic == pytest.approx(loss_reference, rel=1e-12)
        for p, q in zip(elastic_model.parameters(), reference_model.parameters()):
            np.testing.assert_allclose(p.value, q.value, atol=1e-12)

    def test_shrunken_ring_syncs_cheaper(self):
        x, y = make_blobs(n=40, seed=5)
        model = make_model(seed=5)
        plan = FaultPlan(worker_crashes=(WorkerCrash(worker=3, at_step=1),))
        trainer = DataParallelTrainer(
            model,
            SGD(model.parameters(), lr=0.1),
            workers=4,
            injector=FaultInjector(plan),
        )
        trainer.train_step(x, y)
        full_comm = trainer.report.comm_time_s
        trainer.train_step(x, y)
        shrunk_comm = trainer.report.comm_time_s - full_comm
        assert shrunk_comm < full_comm

    def test_all_workers_dead_raises(self):
        x, y = make_blobs(n=16, seed=6)
        model = make_model(seed=6)
        plan = FaultPlan(
            worker_crashes=tuple(WorkerCrash(worker=w, at_step=0) for w in range(2))
        )
        trainer = DataParallelTrainer(
            model,
            SGD(model.parameters(), lr=0.1),
            workers=2,
            injector=FaultInjector(plan),
        )
        with pytest.raises(MLError):
            trainer.train_step(x, y)

    def test_none_plan_identical_to_no_injector(self):
        x, y = make_blobs(n=40, seed=8)
        plain_model = make_model(seed=8)
        plain = DataParallelTrainer(
            plain_model, SGD(plain_model.parameters(), lr=0.1), workers=4
        )
        chaos_model = make_model(seed=8)
        chaos = DataParallelTrainer(
            chaos_model,
            SGD(chaos_model.parameters(), lr=0.1),
            workers=4,
            injector=FaultInjector(FaultPlan.none()),
        )
        for _ in range(3):
            assert plain.train_step(x, y) == chaos.train_step(x, y)  # bitwise
        assert plain.report.comm_time_s == chaos.report.comm_time_s
        for p, q in zip(plain_model.parameters(), chaos_model.parameters()):
            assert np.array_equal(p.value, q.value)
