"""Active and semi-supervised learning tests."""

import numpy as np
import pytest

from repro.errors import MLError
from repro.datasets import Dataset, make_eurosat, stratified_split
from repro.ml import (
    ActiveLearner,
    Dense,
    ReLU,
    SGD,
    Sequential,
    accuracy,
    margin_sampling,
    self_training,
    softmax_cross_entropy,
    uncertainty_sampling,
)
from repro.ml.active import predictive_entropy, prediction_margin, random_sampling


def flat_model(features=4, classes=3, seed=0):
    return Sequential([Dense(features, 24, seed=seed), ReLU(), Dense(24, classes, seed=seed + 1)])


def train_flat(model, dataset, epochs=60, lr=0.2):
    opt = SGD(model.parameters(), lr=lr, momentum=0.9)
    x = dataset.x.reshape(len(dataset), -1)
    for _ in range(epochs):
        model.zero_grad()
        logits = model.forward(x, training=True)
        _, dlogits = softmax_cross_entropy(logits, dataset.y)
        model.backward(dlogits)
        opt.step()


def make_blob_dataset(n=300, seed=0, spread=0.6):
    """Three Gaussian blobs as a (N, 1, 2, 2) 'image' dataset."""
    rng = np.random.default_rng(seed)
    centers = np.array([[2, 0, 0, 0], [0, 2, 0, 0], [0, 0, 2, 0]], dtype=np.float64)
    y = rng.integers(0, 3, size=n)
    x = centers[y] + rng.normal(0, spread, size=(n, 4))
    return Dataset(x.reshape(n, 1, 2, 2).astype(np.float32), y, ("a", "b", "c"))


class _FlatWrapper:
    """Adapts the Dense model to the Dataset's 4-D patches."""

    def __init__(self, seed=0):
        self.net = flat_model(seed=seed)

    def predict(self, x):
        return self.net.predict(x.reshape(x.shape[0], -1))

    def predict_proba(self, x):
        return self.net.predict_proba(x.reshape(x.shape[0], -1))


def wrapper_train(model, dataset):
    train_flat(model.net, dataset)


class TestScores:
    def test_entropy_uniform_is_max(self):
        uniform = np.full((1, 4), 0.25)
        confident = np.array([[0.97, 0.01, 0.01, 0.01]])
        assert predictive_entropy(uniform)[0] > predictive_entropy(confident)[0]

    def test_entropy_shape_validation(self):
        with pytest.raises(MLError):
            predictive_entropy(np.zeros(3))

    def test_margin(self):
        close = np.array([[0.5, 0.45, 0.05]])
        clear = np.array([[0.9, 0.05, 0.05]])
        assert prediction_margin(close)[0] < prediction_margin(clear)[0]

    def test_margin_validation(self):
        with pytest.raises(MLError):
            prediction_margin(np.ones((3, 1)))

    def test_random_sampling_bounds(self):
        rng = np.random.default_rng(0)
        picked = random_sampling(10, 5, rng)
        assert len(set(picked.tolist())) == 5
        with pytest.raises(MLError):
            random_sampling(3, 5, rng)


class TestSamplers:
    def test_uncertainty_picks_boundary_points(self):
        dataset = make_blob_dataset(n=300, seed=1)
        model = _FlatWrapper(seed=1)
        wrapper_train(model, dataset)
        picked = uncertainty_sampling(model, dataset.x, count=30)
        entropy = predictive_entropy(model.predict_proba(dataset.x))
        # The picked set's mean entropy dominates the pool's.
        assert entropy[picked].mean() > entropy.mean() * 1.2

    def test_margin_sampling_count(self):
        dataset = make_blob_dataset(n=100, seed=2)
        model = _FlatWrapper(seed=2)
        wrapper_train(model, dataset)
        picked = margin_sampling(model, dataset.x, count=10)
        assert picked.shape == (10,)

    def test_count_validation(self):
        model = _FlatWrapper()
        with pytest.raises(MLError):
            uncertainty_sampling(model, np.zeros((5, 1, 2, 2)), count=0)


class TestActiveLearner:
    def make_learner(self, strategy, seed=0):
        return ActiveLearner(
            model_fn=lambda: _FlatWrapper(seed=seed),
            train_fn=wrapper_train,
            strategy=strategy,
            seed=seed,
        )

    def test_history_grows_by_batch(self):
        pool = make_blob_dataset(n=250, seed=3)
        test = make_blob_dataset(n=100, seed=4)
        _, history = self.make_learner("uncertainty").run(
            pool, test, initial=15, batch=10, rounds=3
        )
        assert [h.labelled for h in history] == [15, 25, 35]

    def test_accuracy_improves_with_labels(self):
        pool = make_blob_dataset(n=400, seed=5, spread=0.9)
        test = make_blob_dataset(n=150, seed=6, spread=0.9)
        _, history = self.make_learner("uncertainty", seed=1).run(
            pool, test, initial=10, batch=30, rounds=4
        )
        assert history[-1].accuracy >= history[0].accuracy

    def test_strategies_accept_all_names(self):
        pool = make_blob_dataset(n=120, seed=7)
        test = make_blob_dataset(n=60, seed=8)
        for strategy in ("uncertainty", "margin", "random"):
            _, history = self.make_learner(strategy).run(
                pool, test, initial=10, batch=10, rounds=2
            )
            assert len(history) == 2

    def test_validation(self):
        pool = make_blob_dataset(n=50)
        test = make_blob_dataset(n=20)
        with pytest.raises(MLError):
            self.make_learner("oracle").run(pool, test)
        with pytest.raises(MLError):
            self.make_learner("random").run(pool, test, initial=40, batch=20, rounds=3)


class TestSelfTraining:
    def test_adopts_confident_samples(self):
        labelled = make_blob_dataset(n=30, seed=9)
        unlabelled = make_blob_dataset(n=200, seed=10)
        model, final, adopted = self_training(
            model_fn=lambda: _FlatWrapper(seed=3),
            train_fn=wrapper_train,
            labelled=labelled,
            unlabelled_x=unlabelled.x,
            confidence=0.9,
            max_iterations=2,
        )
        assert sum(adopted) > 0
        assert len(final) == 30 + sum(adopted)

    def test_pseudo_labels_mostly_correct(self):
        labelled = make_blob_dataset(n=40, seed=11)
        unlabelled = make_blob_dataset(n=300, seed=12)
        _, final, adopted = self_training(
            model_fn=lambda: _FlatWrapper(seed=4),
            train_fn=wrapper_train,
            labelled=labelled,
            unlabelled_x=unlabelled.x,
            confidence=0.95,
            max_iterations=1,
        )
        count = sum(adopted)
        if count:
            pseudo = final.y[40 : 40 + count]
            # Recover the true labels of the adopted samples by position.
            probabilities_mask_model = _FlatWrapper(seed=4)
            wrapper_train(probabilities_mask_model, labelled)
            probs = probabilities_mask_model.predict_proba(unlabelled.x)
            confident = probs.max(axis=1) >= 0.95
            true = unlabelled.y[confident][:count]
            assert (pseudo == true).mean() > 0.85

    def test_improves_over_supervised_only(self):
        labelled = make_blob_dataset(n=12, seed=13, spread=1.0)
        unlabelled = make_blob_dataset(n=400, seed=14, spread=1.0)
        test = make_blob_dataset(n=200, seed=15, spread=1.0)

        supervised = _FlatWrapper(seed=5)
        wrapper_train(supervised, labelled)
        baseline = accuracy(supervised.predict(test.x), test.y)

        model, _, _ = self_training(
            model_fn=lambda: _FlatWrapper(seed=5),
            train_fn=wrapper_train,
            labelled=labelled,
            unlabelled_x=unlabelled.x,
            confidence=0.9,
        )
        semi = accuracy(model.predict(test.x), test.y)
        assert semi >= baseline - 0.05  # never collapses; usually gains

    def test_validation(self):
        labelled = make_blob_dataset(n=10)
        with pytest.raises(MLError):
            self_training(
                model_fn=lambda: _FlatWrapper(),
                train_fn=wrapper_train,
                labelled=labelled,
                unlabelled_x=np.zeros((5, 1, 2, 2)),
                confidence=0.4,
            )
