"""Distributed training tests: exact equivalence and time modelling."""

import numpy as np
import pytest

from repro.errors import MLError
from repro.cluster import NetworkModel
from repro.ml import (
    DataParallelTrainer,
    Dense,
    ReLU,
    SGD,
    Sequential,
    WarmupLinearScalingSchedule,
    accuracy,
    grid_search,
    random_search,
)


def make_model(seed=0):
    return Sequential([Dense(4, 16, seed=seed), ReLU(), Dense(16, 3, seed=seed + 1)])


def make_blobs(n=120, seed=0):
    """Three linearly separable Gaussian blobs in 4-D."""
    rng = np.random.default_rng(seed)
    centers = np.array(
        [[3, 0, 0, 0], [0, 3, 0, 0], [0, 0, 3, 0]], dtype=np.float64
    )
    y = rng.integers(0, 3, size=n)
    x = centers[y] + rng.normal(0, 0.5, size=(n, 4))
    return x, y


class TestEquivalence:
    """W-worker data-parallel SGD == single-worker SGD on the same batches."""

    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_gradients_match_single_worker(self, workers):
        x, y = make_blobs(n=60, seed=1)
        single = make_model(seed=5)
        multi = make_model(seed=5)
        trainer_single = DataParallelTrainer(
            single, SGD(single.parameters(), lr=0.1), workers=1
        )
        trainer_multi = DataParallelTrainer(
            multi, SGD(multi.parameters(), lr=0.1), workers=workers
        )
        for start in range(0, 60, 12):
            batch = slice(start, start + 12)
            loss_single = trainer_single.train_step(x[batch], y[batch])
            loss_multi = trainer_multi.train_step(x[batch], y[batch])
            assert loss_multi == pytest.approx(loss_single, rel=1e-12)
        for p_single, p_multi in zip(single.parameters(), multi.parameters()):
            np.testing.assert_allclose(p_single.value, p_multi.value, atol=1e-12)

    def test_uneven_shards_still_exact(self):
        x, y = make_blobs(n=30, seed=2)
        single = make_model(seed=3)
        multi = make_model(seed=3)
        DataParallelTrainer(single, SGD(single.parameters(), lr=0.05)).train_step(
            x[:10], y[:10]
        )
        DataParallelTrainer(
            multi, SGD(multi.parameters(), lr=0.05), workers=3
        ).train_step(x[:10], y[:10])
        for a, b in zip(single.parameters(), multi.parameters()):
            np.testing.assert_allclose(a.value, b.value, atol=1e-12)


class TestTraining:
    def test_fit_reduces_loss(self):
        x, y = make_blobs(n=200, seed=3)
        model = make_model(seed=1)
        trainer = DataParallelTrainer(model, SGD(model.parameters(), lr=0.1), workers=4)
        report = trainer.fit(x, y, epochs=5, batch_size=32)
        assert report.losses[-1] < report.losses[0] / 2
        assert accuracy(model.predict(x), y) > 0.9

    def test_report_time_accounting(self):
        x, y = make_blobs(n=64, seed=4)
        model = make_model()
        trainer = DataParallelTrainer(
            model, SGD(model.parameters(), lr=0.1), workers=4, example_cost_s=1e-3
        )
        trainer.train_step(x[:32], y[:32])
        # 32 examples / 4 workers = 8 per worker.
        assert trainer.report.compute_time_s == pytest.approx(8e-3)
        assert trainer.report.comm_time_s > 0
        assert trainer.report.total_time_s == pytest.approx(
            trainer.report.compute_time_s + trainer.report.comm_time_s
        )
        assert trainer.report.throughput(32) > 0

    def test_more_workers_less_compute_time(self):
        x, y = make_blobs(n=64, seed=5)

        def compute_time(workers):
            model = make_model()
            trainer = DataParallelTrainer(
                model, SGD(model.parameters(), lr=0.1),
                workers=workers, example_cost_s=1e-3,
            )
            trainer.train_step(x, y)
            return trainer.report.compute_time_s

        assert compute_time(8) == pytest.approx(compute_time(1) / 8)

    def test_comm_time_grows_with_workers_for_broadcast(self):
        x, y = make_blobs(n=64, seed=6)

        def comm_time(workers):
            model = make_model()
            trainer = DataParallelTrainer(
                model, SGD(model.parameters(), lr=0.1),
                workers=workers, strategy="broadcast",
            )
            trainer.train_step(x, y)
            return trainer.report.comm_time_s

        assert comm_time(8) > comm_time(2) * 2

    def test_allreduce_comm_flat_in_workers(self):
        x, y = make_blobs(n=64, seed=7)
        slow_net = NetworkModel(latency_s=0.0, bandwidth_bps=1e9)

        def comm_time(workers):
            model = make_model()
            trainer = DataParallelTrainer(
                model, SGD(model.parameters(), lr=0.1),
                workers=workers, strategy="allreduce", network=slow_net,
            )
            trainer.train_step(x, y)
            return trainer.report.comm_time_s

        # Ring allreduce bandwidth term saturates at 2*M*beta.
        assert comm_time(16) < comm_time(2) * 2.1

    def test_warmup_schedule_applied(self):
        x, y = make_blobs(n=64, seed=8)
        model = make_model()
        opt = SGD(model.parameters(), lr=0.01)
        schedule = WarmupLinearScalingSchedule(base_lr=0.01, workers=4, warmup_steps=5)
        trainer = DataParallelTrainer(
            model, opt, workers=4, schedule=schedule
        )
        trainer.train_step(x[:16], y[:16])
        first_lr = opt.lr
        for _ in range(6):
            trainer.train_step(x[:16], y[:16])
        assert opt.lr == pytest.approx(0.04)
        assert first_lr < opt.lr

    def test_validation(self):
        model = make_model()
        opt = SGD(model.parameters(), lr=0.1)
        with pytest.raises(MLError):
            DataParallelTrainer(model, opt, workers=0)
        with pytest.raises(MLError):
            DataParallelTrainer(model, opt, strategy="gossip")
        trainer = DataParallelTrainer(model, opt, workers=8)
        with pytest.raises(MLError):
            trainer.train_step(np.zeros((4, 4)), np.zeros(4, dtype=int))


class TestHyperparam:
    def test_grid_search_finds_best(self):
        result = grid_search(
            lambda c: (-((c["lr"] - 0.3) ** 2), 1.0),
            {"lr": [0.1, 0.2, 0.3, 0.4]},
        )
        assert result.best.config_dict["lr"] == 0.3
        assert len(result.trials) == 4

    def test_grid_search_cartesian(self):
        result = grid_search(
            lambda c: (0.0, 1.0), {"a": [1, 2], "b": [1, 2, 3]}
        )
        assert len(result.trials) == 6

    def test_parallel_speedup(self):
        result = grid_search(
            lambda c: (0.0, 2.0), {"a": list(range(8))}, parallel_slots=4
        )
        assert result.serial_time_s == pytest.approx(16.0)
        assert result.parallel_time_s == pytest.approx(4.0)
        assert result.speedup == pytest.approx(4.0)

    def test_random_search_deterministic(self):
        space = {"lr": lambda rng: rng.uniform(0, 1)}
        a = random_search(lambda c: (c["lr"], 1.0), space, trials=5, seed=3)
        b = random_search(lambda c: (c["lr"], 1.0), space, trials=5, seed=3)
        assert [t.config for t in a.trials] == [t.config for t in b.trials]

    def test_validation(self):
        with pytest.raises(MLError):
            grid_search(lambda c: (0, 0), {})
        with pytest.raises(MLError):
            random_search(lambda c: (0, 0), {"a": lambda r: 1}, trials=0)
