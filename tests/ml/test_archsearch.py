"""Architecture search tests."""

import random

import numpy as np
import pytest

from repro.errors import MLError
from repro.ml.archsearch import (
    ArchitectureSpec,
    architecture_search,
    build_architecture,
    random_architecture,
)


class TestSpec:
    def test_defaults_valid(self):
        spec = ArchitectureSpec()
        assert spec.required_patch_divisor() == 4

    def test_validation(self):
        with pytest.raises(MLError):
            ArchitectureSpec(conv_filters=())
        with pytest.raises(MLError):
            ArchitectureSpec(conv_filters=(0,))
        with pytest.raises(MLError):
            ArchitectureSpec(dense_width=0)
        with pytest.raises(MLError):
            ArchitectureSpec(dropout=1.0)

    def test_parameter_estimate_tracks_actual(self):
        spec = ArchitectureSpec(conv_filters=(8, 16), dense_width=32)
        model = build_architecture(spec, bands=13, patch_size=8, classes=5)
        estimate = spec.parameter_estimate(bands=13, patch_size=8, classes=5)
        assert estimate == model.parameter_count


class TestBuilder:
    def test_forward_shape(self):
        spec = ArchitectureSpec(conv_filters=(8,), dense_width=16)
        model = build_architecture(spec, bands=3, patch_size=8, classes=4)
        out = model.forward(np.zeros((2, 3, 8, 8)))
        assert out.shape == (2, 4)

    def test_dropout_included_when_requested(self):
        from repro.ml.layers import Dropout

        spec = ArchitectureSpec(conv_filters=(8,), dropout=0.5)
        model = build_architecture(spec, bands=2, patch_size=4, classes=3)
        assert any(isinstance(layer, Dropout) for layer in model.layers)

    def test_incompatible_patch_size(self):
        spec = ArchitectureSpec(conv_filters=(8, 16, 32))  # needs /8
        with pytest.raises(MLError):
            build_architecture(spec, bands=3, patch_size=4, classes=2)

    def test_three_block_network_trains(self):
        spec = ArchitectureSpec(conv_filters=(4, 8, 8), dense_width=16)
        model = build_architecture(spec, bands=2, patch_size=8, classes=2, seed=1)
        from repro.ml import SGD, softmax_cross_entropy

        rng = np.random.default_rng(0)
        x = rng.standard_normal((16, 2, 8, 8))
        y = rng.integers(0, 2, 16)
        opt = SGD(model.parameters(), lr=0.05)
        first = None
        for _ in range(20):
            model.zero_grad()
            loss, dlogits = softmax_cross_entropy(model.forward(x, training=True), y)
            if first is None:
                first = loss
            model.backward(dlogits)
            opt.step()
        assert loss < first


class TestSampler:
    def test_samples_within_space(self):
        rng = random.Random(0)
        for _ in range(20):
            spec = random_architecture(rng)
            assert 1 <= len(spec.conv_filters) <= 3
            assert spec.dense_width in (32, 64, 128)
            assert spec.dropout in (0.0, 0.25, 0.5)

    def test_deterministic_for_seeded_rng(self):
        a = [random_architecture(random.Random(5)) for _ in range(3)]
        b = [random_architecture(random.Random(5)) for _ in range(3)]
        assert a[0] == b[0]


class TestSearch:
    def test_search_finds_better_architectures(self):
        # Objective: prefer wider dense layers; cost grows with parameters.
        def objective(spec):
            return float(spec.dense_width), spec.dense_width / 64.0

        result = architecture_search(objective, trials=12, seed=1)
        assert result.best.score == 128.0
        assert len(result.trials) == 12

    def test_duplicates_not_reevaluated(self):
        calls = []

        def objective(spec):
            calls.append(spec)
            return 0.0, 1.0

        architecture_search(objective, trials=20, seed=2, max_blocks=1)
        # The space with 1 block is small: far fewer evaluations than trials.
        assert len(calls) < 20

    def test_end_to_end_on_data(self):
        """A tiny real search: train each candidate briefly, pick the best."""
        from repro.datasets import make_eurosat, stratified_split
        from repro.ml import accuracy
        from repro.apps.foodsecurity.cropmap import train_crop_classifier

        dataset = make_eurosat(samples=160, patch_size=8, num_classes=4, seed=5)
        train, test = stratified_split(dataset, test_fraction=0.25, seed=0)

        def objective(spec):
            if spec.required_patch_divisor() > 8:
                return 0.0, 0.0
            model = build_architecture(spec, bands=13, patch_size=8, classes=4, seed=3)
            train_crop_classifier(model, train, epochs=3, batch_size=16, lr=0.02)
            score = accuracy(model.predict(test.x), test.y)
            return score, float(model.parameter_count)

        result = architecture_search(objective, trials=4, seed=4, max_blocks=2)
        assert result.best.score > 0.3  # beats 4-class chance
        assert result.parallel_time_s <= result.serial_time_s

    def test_validation(self):
        with pytest.raises(MLError):
            architecture_search(lambda s: (0, 0), trials=0)
