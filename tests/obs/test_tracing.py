"""Tracer: span lifecycle, nesting, clocks, caps, null path."""

import pytest

from repro.errors import ObsError
from repro.obs import NULL_TRACER, Observability, Tracer


class FakeClock:
    """A manually advanced clock for deterministic span timing."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestSpans:
    def test_context_manager_records_duration(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("work"):
            clock.t = 2.5
        [span] = tracer.finished_spans
        assert span.name == "work"
        assert span.duration_s == 2.5
        assert span.status == "ok"

    def test_nesting_records_parent(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {s.name: s for s in tracer.finished_spans}
        assert by_name["inner"].parent_name == "outer"
        assert by_name["outer"].parent_name is None

    def test_exception_marks_error_status(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        [span] = tracer.finished_spans
        assert span.status == "error"
        assert span.finished

    def test_detached_span_explicit_end_idempotent(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        span = tracer.start_span("task", node=3)
        clock.t = 1.0
        span.end("failed")
        clock.t = 9.0
        span.end("ok")  # second end is a no-op
        assert span.duration_s == 1.0
        assert span.status == "failed"
        assert span.labels == {"node": "3"}

    def test_unfinished_span_has_no_duration(self):
        span = Tracer(clock=FakeClock()).start_span("open")
        with pytest.raises(ObsError):
            span.duration_s


class TestAggregates:
    def test_aggregates_survive_span_cap(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock, max_spans=2)
        for _ in range(5):
            with tracer.span("op"):
                clock.t += 1.0
        assert tracer.span_count("op") == 5
        assert tracer.total_s("op") == pytest.approx(5.0)
        assert len(tracer.finished_spans) == 2
        assert tracer.snapshot()["dropped"] == 3

    def test_snapshot_aggregate_fields(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        for delta in (1.0, 3.0):
            with tracer.span("op"):
                clock.t += delta
        [aggregate] = tracer.snapshot()["aggregates"]
        assert aggregate == {
            "name": "op", "count": 2, "total_s": 4.0,
            "min_s": 1.0, "max_s": 3.0,
        }


class TestClockBinding:
    def test_default_clock_is_wall_clock(self):
        tracer = Tracer()
        with tracer.span("fast"):
            pass
        [span] = tracer.finished_spans
        assert span.duration_s >= 0.0

    def test_observability_clock_threads_to_tracer(self):
        clock = FakeClock()
        obs = Observability(clock=clock)
        assert obs.clock()() == 0.0
        clock.t = 7.0
        assert obs.tracer.now() == 7.0


class TestNullTracer:
    def test_null_tracer_never_retains(self):
        with NULL_TRACER.span("x"):
            pass
        NULL_TRACER.start_span("y").end()
        assert NULL_TRACER.finished_spans == []
        assert NULL_TRACER.span_count() == 0
        assert not NULL_TRACER.enabled
