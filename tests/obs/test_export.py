"""Snapshot export: file round-trip, validation, bench paths."""

import json

import pytest

from repro.errors import ObsError
from repro.obs import (
    Observability,
    bench_snapshot_path,
    read_snapshot,
    validate_snapshot,
)


def populated_obs():
    obs = Observability()
    obs.metrics.counter("ops", shard=0).inc(4)
    obs.metrics.gauge("depth").set(2)
    obs.metrics.histogram("lat_ms").observe(0.5)
    with obs.tracer.span("phase"):
        pass
    return obs


class TestRoundTrip:
    def test_write_then_read_validates(self, tmp_path):
        obs = populated_obs()
        path = obs.write_snapshot(
            str(tmp_path / "BENCH_TEST.json"), meta={"experiment": "E0"}
        )
        document = read_snapshot(path)
        assert document["schema"] == "repro.obs/v1"
        assert document["meta"] == {"experiment": "E0"}
        assert document["metrics"]["counters"][0]["value"] == 4
        assert document["spans"]["aggregates"][0]["name"] == "phase"

    def test_written_file_is_plain_json(self, tmp_path):
        path = populated_obs().write_snapshot(str(tmp_path / "s.json"))
        with open(path) as handle:
            assert json.load(handle)["schema"] == "repro.obs/v1"


class TestValidation:
    def test_rejects_wrong_schema(self):
        document = populated_obs().snapshot()
        document["schema"] = "v0"
        with pytest.raises(ObsError):
            validate_snapshot(document)

    @pytest.mark.parametrize("section", ["meta", "metrics", "spans"])
    def test_rejects_missing_sections(self, section):
        document = populated_obs().snapshot()
        del document[section]
        with pytest.raises(ObsError):
            validate_snapshot(document)

    def test_rejects_malformed_metric_records(self):
        document = populated_obs().snapshot()
        del document["metrics"]["counters"][0]["value"]
        with pytest.raises(ObsError):
            validate_snapshot(document)

    def test_rejects_malformed_histograms(self):
        document = populated_obs().snapshot()
        del document["metrics"]["histograms"][0]["buckets"]
        with pytest.raises(ObsError):
            validate_snapshot(document)


class TestBenchPath:
    def test_bench_path_uses_env_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        assert bench_snapshot_path("e01") == str(tmp_path / "BENCH_E01.json")

    def test_bench_path_defaults_to_cwd(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_DIR", raising=False)
        assert bench_snapshot_path("e05") == "./BENCH_E05.json"

    def test_bench_name_validated(self):
        with pytest.raises(ObsError):
            bench_snapshot_path("../escape")
