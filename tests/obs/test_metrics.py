"""MetricsRegistry: instrument identity, accounting, snapshots, null path."""

import pytest

from repro.errors import ObsError
from repro.obs import MetricsRegistry, NULL_REGISTRY, Observability


class TestCounters:
    def test_same_name_labels_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("ops", shard=1)
        b = registry.counter("ops", shard=1)
        assert a is b
        a.inc()
        b.inc(2)
        assert registry.value("ops", shard=1) == 3

    def test_labels_partition_series(self):
        registry = MetricsRegistry()
        registry.counter("ops", shard=1).inc()
        registry.counter("ops", shard=2).inc(5)
        assert registry.value("ops", shard=1) == 1
        assert registry.value("ops", shard=2) == 5
        assert registry.value("ops", shard=3) == 0

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        assert registry.counter("x", a=1, b=2) is registry.counter("x", b=2, a=1)

    def test_counts_stay_exact_integers(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")
        for _ in range(1000):
            counter.inc()
        assert counter.value == 1000
        assert isinstance(counter.value, int)

    def test_counter_rejects_decrease(self):
        with pytest.raises(ObsError):
            MetricsRegistry().counter("n").inc(-1)


class TestGaugesAndHistograms:
    def test_gauge_last_write_wins(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 2

    def test_histogram_summary_stats(self):
        histogram = MetricsRegistry().histogram("lat")
        for value in (0.5, 1.5, 2.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(4.0)
        assert histogram.min == 0.5
        assert histogram.max == 2.0
        assert histogram.mean == pytest.approx(4.0 / 3)

    def test_histogram_cumulative_buckets(self):
        histogram = MetricsRegistry().histogram("lat", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.cumulative_buckets() == {
            "1.0": 1, "10.0": 2, "+Inf": 3
        }

    def test_histogram_buckets_must_increase(self):
        with pytest.raises(ObsError):
            MetricsRegistry().histogram("bad", buckets=(2.0, 1.0))


class TestSnapshot:
    def test_snapshot_is_sorted_and_json_plain(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a", z=1).inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.2)
        snapshot = registry.snapshot()
        assert [c["name"] for c in snapshot["counters"]] == ["a", "b"]
        assert snapshot["counters"][0]["labels"] == {"z": "1"}
        assert snapshot["gauges"] == [{"name": "g", "labels": {}, "value": 1.5}]
        assert snapshot["histograms"][0]["count"] == 1


class TestNullPath:
    def test_null_registry_swallows_everything(self):
        NULL_REGISTRY.counter("x", k=1).inc(10)
        NULL_REGISTRY.gauge("y").set(3)
        NULL_REGISTRY.histogram("z").observe(1.0)
        assert NULL_REGISTRY.value("x", k=1) == 0
        snapshot = NULL_REGISTRY.snapshot()
        assert snapshot == {"counters": [], "gauges": [], "histograms": []}

    def test_null_instruments_are_shared(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")

    def test_enabled_flags(self):
        assert MetricsRegistry().enabled
        assert not NULL_REGISTRY.enabled
        assert Observability().enabled
