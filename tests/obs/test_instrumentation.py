"""Instrumentation contract: disabled obs is invisible, enabled obs records.

The acceptance bar for ``repro.obs`` is the same as for ``repro.faults``:
an uninstrumented run must be *identical* whether or not observability is
wired in — same metrics, same task timeline, byte for byte — and turning
it on must actually capture every instrumented subsystem.
"""

import json
import subprocess
import sys

import numpy as np

from repro.cluster import ClusterSpec, Scheduler
from repro.faults import FaultInjector, FaultPlan, NodeCrash, RetryPolicy, Straggler
from repro.federation import Endpoint, execute_federated
from repro.hopsfs import HopsFS
from repro.ml import DataParallelTrainer, Dense, ReLU, SGD, Sequential
from repro.obs import Observability
from repro.rdf import Graph, Literal, Namespace
from repro.sparql import evaluate

EX = Namespace("http://ex.org/")

CHAOS_PLAN = FaultPlan(
    seed=7,
    node_crashes=(NodeCrash(node_id=1, at_s=2.0),),
    stragglers=(Straggler(node_id=2, factor=2.5),),
    task_failure_rate=0.2,
)


def chaos_run(obs):
    """One seeded chaos scheduler run; returns (metrics, task timeline)."""
    scheduler = Scheduler(
        ClusterSpec(node_count=4, cpu_slots_per_node=2),
        injector=FaultInjector(CHAOS_PLAN),
        speculation=True,
        obs=obs,
    )
    tasks = [
        scheduler.make_task(1.0 + 0.5 * (i % 3), input_bytes=1e6,
                            preferred_nodes={i % 4})
        for i in range(16)
    ]
    scheduler.submit_all(tasks)
    metrics = scheduler.run()
    timeline = [
        (t.task_id, t.started_at, t.finished_at, t.ran_on, t.attempts)
        for t in tasks
    ]
    return metrics, timeline


class TestDisabledParity:
    def test_scheduler_run_identical_with_and_without_obs(self):
        bare_metrics, bare_timeline = chaos_run(obs=None)
        obs_metrics, obs_timeline = chaos_run(obs=Observability())
        assert obs_timeline == bare_timeline
        assert obs_metrics.as_dict() == bare_metrics.as_dict()
        assert repr(obs_metrics.as_dict()) == repr(bare_metrics.as_dict())

    def test_run_digest_identical_across_fresh_interpreters(self):
        """Enabled-vs-disabled parity with no shared interpreter state."""
        import os

        repo_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        program = (
            "import json, sys\n"
            f"sys.path.insert(0, {os.path.join(repo_root, 'src')!r})\n"
            f"sys.path.insert(0, {repo_root!r})\n"
            "from tests.obs.test_instrumentation import chaos_run\n"
            "from repro.obs import Observability\n"
            "obs = Observability() if sys.argv[1] == 'on' else None\n"
            "metrics, timeline = chaos_run(obs)\n"
            "print(json.dumps([metrics.as_dict(), timeline], sort_keys=True))\n"
        )
        digests = [
            subprocess.run(
                [sys.executable, "-c", program, mode],
                capture_output=True, text=True, check=True,
            ).stdout
            for mode in ("off", "on")
        ]
        assert digests[0] == digests[1]

    def test_noop_bundle_records_nothing_during_run(self):
        from repro.obs import NOOP

        chaos_run(obs=None)
        assert NOOP.metrics.snapshot() == {
            "counters": [], "gauges": [], "histograms": []
        }
        assert NOOP.tracer.finished_spans == []


class TestSchedulerCapture:
    def test_task_spans_run_on_sim_clock(self):
        obs = Observability()
        scheduler = Scheduler(
            ClusterSpec(node_count=2, cpu_slots_per_node=1), obs=obs
        )
        scheduler.submit_all([scheduler.make_task(3.0) for _ in range(4)])
        metrics = scheduler.run()
        assert obs.tracer.span_count("scheduler.task") == 4
        # 4 tasks x 3 simulated seconds each — wall-clock would be ~0.
        assert obs.tracer.total_s("scheduler.task") == 12.0
        assert obs.metrics.value("scheduler.tasks_completed") == 4
        assert metrics.tasks_completed == 4

    def test_facade_counts_come_from_the_shared_registry(self):
        obs = Observability()
        scheduler = Scheduler(
            ClusterSpec(node_count=2, cpu_slots_per_node=1), obs=obs
        )
        scheduler.submit_all([scheduler.make_task(1.0)])
        metrics = scheduler.run()
        snapshot_names = {c["name"] for c in obs.metrics.snapshot()["counters"]}
        assert "scheduler.tasks_completed" in snapshot_names
        assert metrics.makespan_s == obs.metrics.value("scheduler.makespan_s")


class TestSubsystemCapture:
    def test_hopsfs_ops_and_latency(self):
        obs = Observability()
        fs = HopsFS(obs=obs)
        fs.mkdir("/sat")
        fs.create("/sat/tile.bin", data=b"x" * 64)
        fs.read("/sat/tile.bin")
        total_ops = (obs.metrics.value("hopsfs.ops", kind="single")
                     + obs.metrics.value("hopsfs.ops", kind="2pc"))
        assert total_ops > 0
        assert obs.metrics.value("hopsfs.files", layout="inline") == 1
        histograms = obs.metrics.snapshot()["histograms"]
        assert any(h["name"] == "hopsfs.shard_op_ms" and h["count"] > 0
                   for h in histograms)
        assert obs.tracer.span_count("hopsfs.fs") == 3

    def test_federation_query_series(self):
        crops = Graph("crops")
        weather = Graph("weather")
        for i in range(3):
            crops.add(EX[f"f{i}"], EX.crop, Literal("wheat"))
            weather.add(EX[f"f{i}"], EX.rainfall, Literal.from_python(100 + i))
        obs = Observability()
        solutions, _ = execute_federated(
            "PREFIX ex: <http://ex.org/> "
            "SELECT ?f ?r WHERE { ?f ex:crop ?c . ?f ex:rainfall ?r }",
            [Endpoint("crops", crops), Endpoint("weather", weather)],
            obs=obs,
        )
        assert len(solutions) == 3
        assert obs.metrics.value("federation.queries") == 1
        assert obs.metrics.value("federation.requests") > 0
        assert obs.tracer.span_count("federation.query") == 1
        assert obs.tracer.span_count("federation.fetch") > 0

    def test_sparql_operator_timing(self):
        graph = Graph("g")
        for i in range(4):
            graph.add(EX[f"s{i}"], EX.p, Literal.from_python(i))
        obs = Observability()
        rows = evaluate(
            graph,
            "PREFIX ex: <http://ex.org/> SELECT ?s ?v WHERE { ?s ex:p ?v }",
            obs=obs,
        )
        assert len(rows) == 4
        assert obs.tracer.span_count("sparql.query") == 1
        histograms = {h["name"] for h in obs.metrics.snapshot()["histograms"]}
        assert "sparql.op_seconds" in histograms
        assert obs.metrics.value("sparql.op_solutions", op="ScanOp") >= 4

    def test_ml_step_comm_compute_split(self):
        model = Sequential([Dense(4, 8, seed=0), ReLU(), Dense(8, 3, seed=1)])
        trainer = DataParallelTrainer(
            model, SGD(model.parameters(), lr=0.1),
            workers=4, strategy="allreduce", obs=(obs := Observability()),
        )
        rng = np.random.default_rng(0)
        x = rng.normal(size=(16, 4))
        y = rng.integers(0, 3, size=16)
        trainer.train_step(x, y)
        assert obs.metrics.value("ml.steps", strategy="allreduce") == 1
        assert obs.metrics.value("ml.compute_time_s", strategy="allreduce") > 0
        assert obs.metrics.value("ml.comm_time_s", strategy="allreduce") > 0
        [step] = [h for h in obs.metrics.snapshot()["histograms"]
                  if h["name"] == "ml.step_time_s"]
        assert step["count"] == 1
        assert obs.metrics.value("ml.active_workers") == 4

    def test_retry_attempt_series(self):
        from repro.errors import FaultError

        failures = iter([True, True, False])

        def flaky():
            if next(failures):
                raise FaultError("transient")
            return "ok"

        obs = Observability()
        policy = RetryPolicy(max_attempts=5, jitter=0.0, scope="test")
        assert policy.call(flaky, sleep=lambda _ : None, obs=obs) == "ok"
        assert obs.metrics.value("retry.attempts", scope="test") == 3
        assert obs.metrics.value("retry.retries", scope="test") == 2
        assert obs.metrics.value("retry.recoveries", scope="test") == 1
