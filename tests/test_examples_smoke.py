"""Smoke tests: the runnable examples must keep running.

The two heavyweight application examples (polar_ice_service,
food_security_watershed) train CNNs for tens of seconds each and are
exercised by the application test suites; here we run the fast ones
end-to-end as subprocesses and check their headline output.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 180) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "classifier:" in out
        assert "land cover in the western half:" in out

    def test_federated_analytics(self):
        out = run_example("federated_analytics.py")
        assert "interlinking:" in out
        assert "crops grown near lakes:" in out
        assert "broadcast baseline" in out

    def test_tep_federation(self):
        out = run_example("tep_federation.py")
        assert "across the federation" in out
        assert "temporal frames" in out

    def test_all_examples_exist_and_compile(self):
        names = sorted(p.name for p in EXAMPLES.glob("*.py"))
        assert names == [
            "federated_analytics.py",
            "food_security_watershed.py",
            "polar_ice_service.py",
            "quickstart.py",
            "tep_federation.py",
        ]
        for name in names:
            compile(
                (EXAMPLES / name).read_text(), str(EXAMPLES / name), "exec"
            )
