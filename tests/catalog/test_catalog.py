"""Semantic catalogue tests, including the Norske Øer iceberg query."""

from datetime import datetime

import pytest

from repro.catalog import CapabilityError, KeywordCatalog, SemanticCatalog
from repro.errors import CatalogError
from repro.geometry import Point, Polygon
from repro.raster.products import Mission, ProductArchive
from repro.sparql import Variable


@pytest.fixture
def products():
    return ProductArchive(
        extent=(0.0, 50.0, 30.0, 80.0), start=datetime(2017, 1, 1), days=365, seed=1
    ).generate(60)


@pytest.fixture
def catalog(products):
    cat = SemanticCatalog()
    cat.add_products(products)
    return cat


class TestProductSearch:
    def test_ingest_counts(self, catalog, products):
        # 8 triples per product.
        assert catalog.triple_count == len(products) * 8

    def test_search_all(self, catalog, products):
        assert len(catalog.search_products()) == len(products)

    def test_search_by_mission(self, catalog, products):
        expected = sum(1 for p in products if p.mission is Mission.SENTINEL1)
        found = catalog.search_products(mission="S1")
        assert len(found) == expected

    def test_search_by_time_window(self, catalog, products):
        found = catalog.search_products(
            start_time="2017-03-01", end_time="2017-05-31T23:59:59"
        )
        expected = {
            p.product_id
            for p in products
            if "2017-03-01" <= p.sensing_time.isoformat() <= "2017-05-31T23:59:59"
        }
        assert len(found) == len(expected)

    def test_search_by_bbox(self, catalog, products):
        bbox = (5.0, 55.0, 10.0, 60.0)
        found = catalog.search_products(bbox=bbox)
        from repro.geometry import BoundingBox

        window = BoundingBox(*bbox)
        expected = sum(1 for p in products if p.footprint.bbox.intersects(window))
        assert len(found) == expected
        assert expected > 0

    def test_combined_search(self, catalog, products):
        found = catalog.search_products(
            mission="S2", start_time="2017-06-01", bbox=(0.0, 50.0, 30.0, 80.0)
        )
        expected = {
            p.product_id
            for p in products
            if p.mission is Mission.SENTINEL2
            and p.sensing_time.isoformat() >= "2017-06-01"
        }
        assert len(found) == len(expected)

    def test_keyword_baseline_agrees_on_classic_search(self, products):
        semantic = SemanticCatalog()
        semantic.add_products(products)
        keyword = KeywordCatalog()
        for p in products:
            keyword.add_product(p)
        for kwargs in (
            {"mission": "S1"},
            {"start_time": "2017-07-01"},
            {"bbox": (10.0, 60.0, 20.0, 70.0)},
        ):
            assert len(semantic.search_products(**kwargs)) == len(
                keyword.search(**kwargs)
            )


class TestKnowledgeQueries:
    def make_polar_catalog(self):
        cat = SemanticCatalog()
        # The ice barrier observed twice in 2017: small then maximum extent.
        cat.add_ice_region(
            "barrier-jan", "Norske Oer Ice Barrier",
            Polygon.box(0, 0, 50, 50), "2017-01-15T00:00:00",
        )
        cat.add_ice_region(
            "barrier-mar", "Norske Oer Ice Barrier",
            Polygon.box(0, 0, 100, 100), "2017-03-15T00:00:00",
        )
        # Another year's even bigger extent must not be picked for 2017.
        cat.add_ice_region(
            "barrier-2018", "Norske Oer Ice Barrier",
            Polygon.box(0, 0, 200, 200), "2018-03-15T00:00:00",
        )
        # Icebergs: two inside the 2017 max extent, one outside, one in 2018.
        cat.add_iceberg("b1", Polygon.box(10, 10, 12, 12), "2017-03-20T00:00:00")
        cat.add_iceberg("b2", Polygon.box(70, 70, 75, 75), "2017-04-01T00:00:00")
        cat.add_iceberg("b3", Polygon.box(150, 150, 155, 155), "2017-04-01T00:00:00")
        cat.add_iceberg("b4", Polygon.box(20, 20, 22, 22), "2018-06-01T00:00:00")
        return cat

    def test_iceberg_query(self):
        cat = self.make_polar_catalog()
        assert cat.count_icebergs_embedded("Norske Oer Ice Barrier", 2017) == 2

    def test_iceberg_query_other_year(self):
        cat = self.make_polar_catalog()
        assert cat.count_icebergs_embedded("Norske Oer Ice Barrier", 2018) == 1

    def test_unknown_region_raises(self):
        cat = self.make_polar_catalog()
        with pytest.raises(CatalogError):
            cat.count_icebergs_embedded("Larsen C", 2017)

    def test_keyword_catalog_cannot_answer(self):
        keyword = KeywordCatalog()
        with pytest.raises(CapabilityError):
            keyword.count_icebergs_embedded("Norske Oer Ice Barrier", 2017)

    def test_raw_knowledge_sparql(self):
        cat = self.make_polar_catalog()
        [row] = cat.query(
            "SELECT (COUNT(?b) AS ?n) WHERE { ?b rdf:type eop:Iceberg }"
        )
        assert row[Variable("n")].to_python() == 4

    def test_crop_field_knowledge(self):
        cat = SemanticCatalog()
        cat.add_crop_field("f1", "wheat", Polygon.box(0, 0, 10, 10))
        cat.add_crop_field("f2", "maize", Polygon.box(20, 0, 30, 10))
        result = cat.query(
            'SELECT ?f WHERE { ?f rdf:type eop:CropField . ?f eop:cropType "wheat" }'
        )
        assert len(result) == 1

    def test_spatial_knowledge_query(self):
        cat = self.make_polar_catalog()
        from repro.geosparql import geometry_literal

        window = geometry_literal(Polygon.box(0, 0, 30, 30))
        result = cat.query(
            "SELECT ?b WHERE { ?b rdf:type eop:Iceberg . "
            "?b geo:hasGeometry ?g . ?g geo:asWKT ?wkt . "
            f'FILTER (geof:sfWithin(?wkt, "{window.lexical}"^^geo:wktLiteral)) }}'
        )
        # b1 (2017) and b4 (2018) fall inside the window.
        assert len(result) == 2


class TestKeywordCatalog:
    def test_keyword_search(self, products):
        catalog = KeywordCatalog()
        catalog.add_product(products[0], keywords=("ice", "arctic"))
        catalog.add_product(products[1], keywords=("crops",))
        assert catalog.search(keyword="ICE") == [products[0].product_id]
        assert catalog.search(keyword="nothing") == []
        assert len(catalog) == 2
