"""Content-based catalogue search and persistence tests."""

import pytest

from repro.catalog import SemanticCatalog
from repro.errors import CatalogError
from repro.geometry import Polygon
from repro.catalog.ingest import product_iri
from repro.raster.products import ProductArchive


@pytest.fixture
def catalog():
    cat = SemanticCatalog()
    products = ProductArchive(seed=3).generate(5)
    cat.add_products(products)
    iris = [product_iri(p) for p in products]
    cat.add_content_summary(iris[0], {"FIRST_YEAR_ICE": 0.7, "OPEN_WATER": 0.3})
    cat.add_content_summary(iris[1], {"FIRST_YEAR_ICE": 0.2, "OPEN_WATER": 0.8})
    cat.add_content_summary(iris[2], {"WHEAT": 0.9})
    return cat, iris


class TestContentSearch:
    def test_search_by_content(self, catalog):
        cat, iris = catalog
        results = cat.search_by_content("FIRST_YEAR_ICE")
        assert [p for p, _ in results] == [iris[0], iris[1]]  # best first
        assert results[0][1] == pytest.approx(0.7)

    def test_min_fraction_threshold(self, catalog):
        cat, iris = catalog
        results = cat.search_by_content("FIRST_YEAR_ICE", min_fraction=0.5)
        assert [p for p, _ in results] == [iris[0]]

    def test_unknown_class_empty(self, catalog):
        cat, _ = catalog
        assert cat.search_by_content("LAVA") == []

    def test_fraction_validation(self, catalog):
        cat, iris = catalog
        with pytest.raises(CatalogError):
            cat.add_content_summary(iris[3], {"WATER": 1.5})

    def test_content_from_pipeline_class_fractions(self, catalog):
        """The classifier output plugs straight in."""
        import numpy as np

        from repro.raster.stats import class_fractions
        from repro.raster.sentinel import SeaIce

        cat, iris = catalog
        stage_map = np.zeros((10, 10), dtype=np.int16)
        stage_map[:3] = int(SeaIce.OLD_ICE)
        fractions = {
            SeaIce(value).name: fraction
            for value, fraction in class_fractions(stage_map).items()
        }
        cat.add_content_summary(iris[4], fractions)
        results = cat.search_by_content("OLD_ICE", min_fraction=0.25)
        assert [p for p, _ in results] == [iris[4]]


class TestPersistence:
    def test_round_trip_preserves_everything(self, catalog, tmp_path):
        cat, iris = catalog
        cat.add_ice_region(
            "r1", "Test Barrier", Polygon.box(0, 0, 10, 10), "2017-02-01T00:00:00"
        )
        cat.add_iceberg("b1", Polygon.box(1, 1, 2, 2), "2017-02-10T00:00:00")
        path = str(tmp_path / "catalog.nt")
        count = cat.save(path)
        assert count == cat.triple_count

        restored = SemanticCatalog.load(path)
        assert restored.triple_count == cat.triple_count
        # Classic search still works.
        assert len(restored.search_products()) == len(cat.search_products())
        # Content search still works.
        assert restored.search_by_content("WHEAT") == cat.search_by_content("WHEAT")
        # The spatial index was rebuilt: the iceberg query still answers.
        assert restored.count_icebergs_embedded("Test Barrier", 2017) == 1

    def test_geostore_round_trip(self, tmp_path):
        from repro.geosparql import GeoStore, geometry_literal
        from repro.geometry import Point
        from repro.rdf import GEO, Namespace

        EX = Namespace("http://ex.org/")
        store = GeoStore()
        store.add(EX.a, GEO.asWKT, geometry_literal(Point(3, 4)))
        path = str(tmp_path / "store.nt")
        store.save_ntriples(path)
        restored = GeoStore.from_ntriples(path)
        assert len(restored) == 1
        assert restored.geometry_count == 1
