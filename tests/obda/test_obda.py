"""Ontop-spatial virtual store tests: rewriting, pushdown, and equivalence."""

import pytest

from repro.errors import ReproError
from repro.geometry import Point, Polygon
from repro.geosparql import GeoStore, geometry_literal
from repro.geotriples import ObjectMap, TriplesMap, transform_to_store
from repro.obda import Column, Database, Table, VirtualGeoStore
from repro.rdf.term import IRI, Literal, XSD_INTEGER
from repro.sparql import Variable

EX = "http://ex.org/"
PREFIXES = (
    "PREFIX ex: <http://ex.org/> "
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
    "PREFIX geo: <http://www.opengis.net/ont/geosparql#> "
    "PREFIX geof: <http://www.opengis.net/def/function/geosparql/> "
)


def field_mapping():
    return TriplesMap(
        subject_template=EX + "field/{id}",
        type_iri=EX + "Field",
        object_maps=[
            ObjectMap(predicate=EX + "crop", column="crop"),
            ObjectMap(predicate=EX + "areaHa", column="area", datatype=XSD_INTEGER),
            ObjectMap(predicate=EX + "geom", column="geometry", is_geometry=True),
        ],
    )


def owner_mapping():
    return TriplesMap(
        subject_template=EX + "owner/{id}",
        type_iri=EX + "Owner",
        object_maps=[
            ObjectMap(predicate=EX + "name", column="name"),
            ObjectMap(predicate=EX + "farms", template=EX + "field/{field_id}"),
        ],
    )


FIELD_ROWS = [
    {"id": 1, "crop": "wheat", "area": 12, "geometry": Polygon.box(0, 0, 100, 100)},
    {"id": 2, "crop": "maize", "area": 7, "geometry": Polygon.box(200, 0, 300, 100)},
    {"id": 3, "crop": "wheat", "area": 30, "geometry": Polygon.box(400, 0, 500, 100)},
    {"id": 4, "crop": "rye", "area": 5, "geometry": None},  # no geometry
]

OWNER_ROWS = [
    {"id": 10, "name": "alice", "field_id": 1},
    {"id": 11, "name": "bob", "field_id": 2},
    {"id": 12, "name": "carol", "field_id": 3},
]


@pytest.fixture
def virtual():
    db = Database()
    fields = db.create_table(
        "fields",
        [
            Column("id", "integer"),
            Column("crop", "string"),
            Column("area", "integer"),
            Column("geometry", "geometry"),
        ],
    )
    fields.insert_many(FIELD_ROWS)
    owners = db.create_table(
        "owners",
        [Column("id", "integer"), Column("name", "string"), Column("field_id", "integer")],
    )
    owners.insert_many(OWNER_ROWS)
    store = VirtualGeoStore(db)
    store.add_mapping("fields", field_mapping())
    store.add_mapping("owners", owner_mapping())
    return store


def values(result, name):
    return {s[Variable(name)] for s in result}


class TestRelational:
    def test_typed_inserts(self):
        table = Table("t", [Column("n", "integer"), Column("g", "geometry")])
        table.insert({"n": 1, "g": Point(0, 0)})
        with pytest.raises(ReproError):
            table.insert({"n": "text"})
        with pytest.raises(ReproError):
            table.insert({"n": 1, "extra": 2})
        with pytest.raises(ReproError):
            table.insert({"n": True})

    def test_scan_predicates(self):
        table = Table("t", [Column("n", "integer")])
        table.insert_many([{"n": i} for i in range(10)])
        assert len(list(table.scan([("n", ">=", 7)]))) == 3
        assert len(list(table.scan([("n", "=", 3)]))) == 1
        assert table.scan_count == 2

    def test_bbox_predicate(self):
        table = Table("t", [Column("g", "geometry")])
        table.insert_many([{"g": Point(0, 0)}, {"g": Point(100, 100)}, {"g": None}])
        from repro.geometry import BoundingBox

        hits = list(table.scan([("g", "bbox_intersects", BoundingBox(-1, -1, 1, 1))]))
        assert len(hits) == 1

    def test_predicate_validation(self):
        table = Table("t", [Column("n", "integer")])
        with pytest.raises(ReproError):
            list(table.scan([("missing", "=", 1)]))
        with pytest.raises(ReproError):
            list(table.scan([("n", "~", 1)]))

    def test_database(self):
        db = Database()
        db.create_table("a", [Column("x")])
        with pytest.raises(ReproError):
            db.create_table("a", [Column("x")])
        with pytest.raises(ReproError):
            db.table("b")
        assert db.table_names == ["a"]


class TestVirtualQueries:
    def test_nothing_materialised(self, virtual):
        assert virtual.triple_count == 0

    def test_simple_select(self, virtual):
        result = virtual.query(
            PREFIXES + "SELECT ?f ?c WHERE { ?f ex:crop ?c }"
        )
        assert values(result, "c") == {
            Literal("wheat"), Literal("maize"), Literal("rye"),
        }
        assert len(result) == 4

    def test_type_pattern(self, virtual):
        result = virtual.query(
            PREFIXES + "SELECT ?f WHERE { ?f rdf:type ex:Field }"
        )
        assert len(result) == 4

    def test_constant_object_pushed(self, virtual):
        result = virtual.query(
            PREFIXES + 'SELECT ?f WHERE { ?f ex:crop "wheat" }'
        )
        assert values(result, "f") == {IRI(EX + "field/1"), IRI(EX + "field/3")}

    def test_filter_pushdown_comparison(self, virtual):
        fields = virtual.database.table("fields")
        before = fields.rows_scanned
        result = virtual.query(
            PREFIXES + "SELECT ?f WHERE { ?f ex:areaHa ?a . FILTER (?a >= 10) }"
        )
        assert values(result, "f") == {IRI(EX + "field/1"), IRI(EX + "field/3")}
        assert fields.rows_scanned == before + len(FIELD_ROWS)

    def test_typed_literal_binding(self, virtual):
        result = virtual.query(
            PREFIXES + "SELECT ?a WHERE { <http://ex.org/field/2> ex:areaHa ?a }"
        )
        [solution] = result
        assert solution[Variable("a")] == Literal("7", datatype=XSD_INTEGER)

    def test_geometry_hop(self, virtual):
        result = virtual.query(
            PREFIXES
            + "SELECT ?f ?wkt WHERE { ?f geo:hasGeometry ?g . ?g geo:asWKT ?wkt }"
        )
        # Field 4 has a NULL geometry: no virtual triples for it.
        assert len(result) == 3
        assert all(s[Variable("wkt")].datatype for s in result)

    def test_spatial_filter(self, virtual):
        window = geometry_literal(Polygon.box(150, -10, 350, 110))
        result = virtual.query(
            PREFIXES
            + "SELECT ?f WHERE { ?f geo:hasGeometry ?g . ?g geo:asWKT ?wkt . "
            + f'FILTER (geof:sfIntersects(?wkt, "{window.lexical}"^^geo:wktLiteral)) }}'
        )
        assert values(result, "f") == {IRI(EX + "field/2")}

    def test_cross_table_join(self, virtual):
        result = virtual.query(
            PREFIXES
            + "SELECT ?n ?c WHERE { ?o ex:name ?n . ?o ex:farms ?f . ?f ex:crop ?c }"
        )
        pairs = {
            (str(s[Variable("n")]), str(s[Variable("c")])) for s in result
        }
        assert pairs == {("alice", "wheat"), ("bob", "maize"), ("carol", "wheat")}

    def test_join_with_spatial_and_scalar_filters(self, virtual):
        window = geometry_literal(Polygon.box(-10, -10, 600, 110))
        result = virtual.query(
            PREFIXES
            + "SELECT ?n WHERE { ?o ex:name ?n . ?o ex:farms ?f . "
            + "?f ex:areaHa ?a . ?f geo:hasGeometry ?g . ?g geo:asWKT ?wkt . "
            + f'FILTER (geof:sfIntersects(?wkt, "{window.lexical}"^^geo:wktLiteral)) '
            + "FILTER (?a > 10) }"
        )
        assert values(result, "n") == {Literal("alice"), Literal("carol")}

    def test_distinct_and_limit(self, virtual):
        result = virtual.query(
            PREFIXES + "SELECT DISTINCT ?c WHERE { ?f ex:crop ?c } LIMIT 2"
        )
        assert len(result) == 2

    def test_unmapped_predicate_rejected(self, virtual):
        with pytest.raises(ReproError):
            virtual.query(PREFIXES + "SELECT ?f WHERE { ?f ex:unknown ?x }")

    def test_variable_predicate_rejected(self, virtual):
        with pytest.raises(ReproError):
            virtual.query(PREFIXES + "SELECT ?f WHERE { ?f ?p ?o }")

    def test_optional_rejected(self, virtual):
        with pytest.raises(ReproError):
            virtual.query(
                PREFIXES + "SELECT ?f WHERE { OPTIONAL { ?f ex:crop ?c } }"
            )


class TestEquivalenceWithMaterialised:
    """The virtual store and a materialised GeoStore must agree."""

    QUERIES = [
        "SELECT ?f ?c WHERE { ?f ex:crop ?c }",
        'SELECT ?f WHERE { ?f ex:crop "wheat" . ?f ex:areaHa ?a . FILTER (?a > 20) }',
        "SELECT ?f ?wkt WHERE { ?f geo:hasGeometry ?g . ?g geo:asWKT ?wkt }",
        "SELECT ?n ?c WHERE { ?o ex:name ?n . ?o ex:farms ?f . ?f ex:crop ?c }",
    ]

    def materialised(self):
        store = transform_to_store(
            [dict(r) for r in FIELD_ROWS],
            TriplesMap(
                subject_template=EX + "field/{id}",
                type_iri=EX + "Field",
                object_maps=[
                    ObjectMap(predicate=EX + "crop", column="crop"),
                    ObjectMap(predicate=EX + "areaHa", column="area",
                              datatype=XSD_INTEGER),
                    ObjectMap(predicate=EX + "geom", column="geometry",
                              is_geometry=True),
                ],
            ),
        )
        transform_to_store([dict(r) for r in OWNER_ROWS], owner_mapping(), store=store)
        return store

    @pytest.mark.parametrize("query_text", QUERIES)
    def test_equivalence(self, virtual, query_text):
        materialised = self.materialised()
        canonical = lambda sols: sorted(
            sorted((v.name, repr(t)) for v, t in s.items()) for s in sols
        )
        virtual_result = virtual.query(PREFIXES + query_text)
        material_result = materialised.query(PREFIXES + query_text)
        assert canonical(virtual_result) == canonical(material_result)

    def test_spatial_equivalence(self, virtual):
        materialised = self.materialised()
        window = geometry_literal(Polygon.box(0, 0, 450, 150))
        query_text = (
            "SELECT ?f WHERE { ?f geo:hasGeometry ?g . ?g geo:asWKT ?wkt . "
            + f'FILTER (geof:sfIntersects(?wkt, "{window.lexical}"^^geo:wktLiteral)) }}'
        )
        assert values(virtual.query(PREFIXES + query_text), "f") == values(
            materialised.query(PREFIXES + query_text), "f"
        )
