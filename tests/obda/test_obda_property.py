"""Property test: the virtual store always agrees with materialisation.

Random tables, random selection windows, random scalar thresholds — for every
draw, the VirtualGeoStore's answers must equal a GeoStore loaded by running
the same mapping through GeoTriples. This is the core OBDA correctness
contract.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Polygon
from repro.geosparql import geometry_literal
from repro.geotriples import ObjectMap, TriplesMap, transform_to_store
from repro.obda import Column, Database, VirtualGeoStore
from repro.rdf.term import XSD_INTEGER

EX = "http://ex.org/"
PREFIXES = (
    "PREFIX ex: <http://ex.org/> "
    "PREFIX geo: <http://www.opengis.net/ont/geosparql#> "
    "PREFIX geof: <http://www.opengis.net/def/function/geosparql/> "
)

CROPS = ("wheat", "maize", "rape")

row_strategy = st.fixed_dictionaries(
    {
        "crop": st.sampled_from(CROPS),
        "area": st.integers(0, 50),
        "x": st.integers(0, 40),
        "y": st.integers(0, 40),
        "has_geom": st.booleans(),
    }
)


def build_rows(raw_rows):
    rows = []
    for index, raw in enumerate(raw_rows):
        geometry = (
            Polygon.box(raw["x"], raw["y"], raw["x"] + 5, raw["y"] + 5)
            if raw["has_geom"]
            else None
        )
        rows.append(
            {
                "id": index,
                "crop": raw["crop"],
                "area": raw["area"],
                "geometry": geometry,
            }
        )
    return rows


def mapping():
    return TriplesMap(
        subject_template=EX + "f/{id}",
        type_iri=EX + "Field",
        object_maps=[
            ObjectMap(predicate=EX + "crop", column="crop"),
            ObjectMap(predicate=EX + "area", column="area", datatype=XSD_INTEGER),
            ObjectMap(predicate=EX + "g", column="geometry", is_geometry=True),
        ],
    )


def build_both(rows):
    db = Database()
    table = db.create_table(
        "fields",
        [
            Column("id", "integer"),
            Column("crop", "string"),
            Column("area", "integer"),
            Column("geometry", "geometry"),
        ],
    )
    table.insert_many(rows)
    virtual = VirtualGeoStore(db)
    virtual.add_mapping("fields", mapping())
    materialised = transform_to_store([dict(r) for r in rows], mapping())
    return virtual, materialised


def canonical(solutions):
    return sorted(
        sorted((v.name, repr(t)) for v, t in s.items()) for s in solutions
    )


class TestVirtualEqualsMaterialised:
    @given(
        raw=st.lists(row_strategy, min_size=0, max_size=12),
        threshold=st.integers(0, 50),
        crop=st.sampled_from(CROPS),
    )
    @settings(max_examples=30, deadline=None)
    def test_scalar_queries(self, raw, threshold, crop):
        virtual, materialised = build_both(build_rows(raw))
        queries = [
            "SELECT ?f ?c WHERE { ?f ex:crop ?c }",
            f'SELECT ?f WHERE {{ ?f ex:crop "{crop}" . ?f ex:area ?a . '
            f"FILTER (?a >= {threshold}) }}",
        ]
        for query in queries:
            assert canonical(virtual.query(PREFIXES + query)) == canonical(
                materialised.query(PREFIXES + query)
            )

    @given(
        raw=st.lists(row_strategy, min_size=0, max_size=12),
        wx=st.integers(0, 40),
        wy=st.integers(0, 40),
        size=st.integers(1, 30),
    )
    @settings(max_examples=30, deadline=None)
    def test_spatial_queries(self, raw, wx, wy, size):
        virtual, materialised = build_both(build_rows(raw))
        window = geometry_literal(Polygon.box(wx, wy, wx + size, wy + size))
        query = (
            "SELECT ?f WHERE { ?f geo:hasGeometry ?n . ?n geo:asWKT ?wkt . "
            + f'FILTER (geof:sfIntersects(?wkt, "{window.lexical}"^^geo:wktLiteral)) }}'
        )
        assert canonical(virtual.query(PREFIXES + query)) == canonical(
            materialised.query(PREFIXES + query)
        )
