"""GeoStore.explain tests."""

import pytest

from repro.geometry import Point, Polygon
from repro.geosparql import GeoStore, NaiveGeoStore, geometry_literal
from repro.rdf import GEO, Literal, Namespace

EX = Namespace("http://ex.org/")
PREFIXES = (
    "PREFIX ex: <http://ex.org/> "
    "PREFIX geo: <http://www.opengis.net/ont/geosparql#> "
    "PREFIX geof: <http://www.opengis.net/def/function/geosparql/> "
)


@pytest.fixture
def store():
    s = GeoStore()
    for i in range(10):
        s.add(EX[f"f{i}"], GEO.asWKT, geometry_literal(Point(i * 10, 0)))
        s.add(EX[f"f{i}"], EX.kind, Literal("even" if i % 2 == 0 else "odd"))
    return s


def spatial_query():
    box = geometry_literal(Polygon.box(0, -5, 25, 5))
    return (
        PREFIXES
        + "SELECT ?f WHERE { ?f geo:asWKT ?g . ?f ex:kind ?k . "
        + f'FILTER (geof:sfIntersects(?g, "{box.lexical}"^^geo:wktLiteral)) '
        + 'FILTER (?k = "even") }'
    )


class TestExplain:
    def test_spatial_plan_shows_candidates(self, store):
        plan = store.explain(spatial_query())
        assert "SpatialCandidates(?g" in plan
        assert "sfIntersects" in plan
        assert "Scan(" in plan
        # The candidate scan drives the join: it appears before any Scan.
        assert plan.index("SpatialCandidates") < plan.index("Scan(")

    def test_naive_plan_has_no_candidates(self, store):
        naive = NaiveGeoStore()
        for triple in store.graph:
            naive.add(*triple)
        plan = naive.explain(spatial_query())
        assert "SpatialCandidates" not in plan
        assert "sfIntersects" in plan

    def test_plain_query_plan(self, store):
        plan = store.explain(
            PREFIXES + 'SELECT ?f WHERE { ?f ex:kind "even" . ?f geo:asWKT ?g }'
        )
        assert plan.count("Scan(") == 2
        assert "Join" in plan

    def test_plan_matches_execution(self, store):
        """Explaining must not perturb results."""
        query = spatial_query()
        before = store.explain(query)
        result = store.query(query)
        after = store.explain(query)
        assert before == after
        assert len(result) == 2  # f0 (x=0) and f2 (x=20) are even and inside

    def test_candidate_count_in_plan(self, store):
        plan = store.explain(spatial_query())
        # Box [0,25] covers f0, f1, f2 -> 3 candidates.
        assert "3 candidates" in plan
