"""GeoStore tests: spatial query answering, index acceleration, baseline parity."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Polygon
from repro.geosparql import GeoStore, NaiveGeoStore, geometry_literal
from repro.rdf import GEO, Namespace
from repro.rdf.term import Literal
from repro.sparql import Variable

EX = Namespace("http://ex.org/")
PREFIXES = (
    "PREFIX ex: <http://ex.org/> "
    "PREFIX geo: <http://www.opengis.net/ont/geosparql#> "
    "PREFIX geof: <http://www.opengis.net/def/function/geosparql/> "
)


def load_points(store, coords):
    """Load features ex:f{i} with point geometries."""
    for i, (x, y) in enumerate(coords):
        feature = EX[f"f{i}"]
        store.add(feature, GEO.asWKT, geometry_literal(Point(x, y)))
        store.add(feature, EX.id, Literal.from_python(i))
    return store


def selection_query(min_x, min_y, max_x, max_y):
    box = geometry_literal(Polygon.box(min_x, min_y, max_x, max_y))
    return (
        PREFIXES
        + "SELECT ?f WHERE { ?f geo:asWKT ?g . "
        + f'FILTER (geof:sfIntersects(?g, "{box.lexical}"^^geo:wktLiteral)) }}'
    )


def result_ids(result):
    return {s[Variable("f")] for s in result}


class TestSelection:
    def test_rectangular_selection(self):
        store = load_points(GeoStore(), [(0, 0), (5, 5), (20, 20)])
        result = store.query(selection_query(-1, -1, 6, 6))
        assert result_ids(result) == {EX.f0, EX.f1}

    def test_selection_empty(self):
        store = load_points(GeoStore(), [(0, 0)])
        assert store.query(selection_query(10, 10, 20, 20)) == []

    def test_boundary_point_included(self):
        store = load_points(GeoStore(), [(5, 5)])
        result = store.query(selection_query(5, 5, 10, 10))
        assert result_ids(result) == {EX.f0}

    def test_spatial_rewrite_recorded(self):
        store = load_points(GeoStore(), [(0, 0), (1, 1)])
        store.query(selection_query(-1, -1, 2, 2))
        assert store.stats["spatial_rewrites"] == 1
        assert store.stats["candidates_examined"] == 2

    def test_naive_store_no_rewrite(self):
        store = load_points(NaiveGeoStore(), [(0, 0), (1, 1)])
        result = store.query(selection_query(-1, -1, 0.5, 0.5))
        assert result_ids(result) == {EX.f0}
        assert store.stats["spatial_rewrites"] == 0

    def test_candidate_pruning(self):
        # Index must examine far fewer candidates than the store size.
        rng = random.Random(3)
        coords = [(rng.uniform(0, 1000), rng.uniform(0, 1000)) for _ in range(500)]
        store = load_points(GeoStore(), coords)
        store.query(selection_query(0, 0, 50, 50))
        assert store.stats["candidates_examined"] < 100


class TestRelations:
    def test_within(self):
        store = GeoStore()
        store.add(EX.small, GEO.asWKT, geometry_literal(Polygon.box(1, 1, 2, 2)))
        store.add(EX.big, GEO.asWKT, geometry_literal(Polygon.box(0, 0, 50, 50)))
        box = geometry_literal(Polygon.box(0, 0, 10, 10))
        query = (
            PREFIXES
            + "SELECT ?f WHERE { ?f geo:asWKT ?g . "
            + f'FILTER (geof:sfWithin(?g, "{box.lexical}"^^geo:wktLiteral)) }}'
        )
        assert result_ids(store.query(query)) == {EX.small}

    def test_contains(self):
        store = GeoStore()
        store.add(EX.big, GEO.asWKT, geometry_literal(Polygon.box(0, 0, 50, 50)))
        store.add(EX.small, GEO.asWKT, geometry_literal(Polygon.box(1, 1, 2, 2)))
        probe = geometry_literal(Polygon.box(10, 10, 20, 20))
        query = (
            PREFIXES
            + "SELECT ?f WHERE { ?f geo:asWKT ?g . "
            + f'FILTER (geof:sfContains(?g, "{probe.lexical}"^^geo:wktLiteral)) }}'
        )
        assert result_ids(store.query(query)) == {EX.big}

    def test_disjoint_not_indexed_but_correct(self):
        store = load_points(GeoStore(), [(0, 0), (100, 100)])
        probe = geometry_literal(Polygon.box(-1, -1, 1, 1))
        query = (
            PREFIXES
            + "SELECT ?f WHERE { ?f geo:asWKT ?g . "
            + f'FILTER (geof:sfDisjoint(?g, "{probe.lexical}"^^geo:wktLiteral)) }}'
        )
        result = store.query(query)
        assert result_ids(result) == {EX.f1}
        assert store.stats["spatial_rewrites"] == 0

    def test_distance_filter(self):
        store = load_points(GeoStore(), [(0, 0), (3, 4), (30, 40)])
        origin = geometry_literal(Point(0, 0))
        query = (
            PREFIXES
            + "SELECT ?f WHERE { ?f geo:asWKT ?g . "
            + f'FILTER (geof:distance(?g, "{origin.lexical}"^^geo:wktLiteral) <= 5) }}'
        )
        assert result_ids(store.query(query)) == {EX.f0, EX.f1}

    def test_multipolygon_selection(self):
        store = GeoStore()
        from repro.geometry import MultiPolygon

        mp = MultiPolygon([Polygon.box(0, 0, 1, 1), Polygon.box(10, 10, 11, 11)])
        store.add(EX.both, GEO.asWKT, geometry_literal(mp))
        result = store.query(selection_query(10.5, 10.5, 12, 12))
        assert result_ids(result) == {EX.both}
        # Box between the parts: bbox hit but exact test rejects.
        assert store.query(selection_query(3, 3, 8, 8)) == []


class TestMixedQueries:
    def test_spatial_plus_attribute_join(self):
        store = load_points(GeoStore(), [(0, 0), (1, 1), (2, 2)])
        query = (
            selection_query(-1, -1, 5, 5)[:-1]
            + " ?f ex:id ?i . FILTER (?i >= 1) }"
        )
        assert result_ids(store.query(query)) == {EX.f1, EX.f2}

    def test_ask_spatial(self):
        store = load_points(GeoStore(), [(0, 0)])
        box = geometry_literal(Polygon.box(-1, -1, 1, 1))
        query = (
            PREFIXES
            + "ASK { ?f geo:asWKT ?g . "
            + f'FILTER (geof:sfIntersects(?g, "{box.lexical}"^^geo:wktLiteral)) }}'
        )
        assert store.query(query) is True

    def test_count_in_region(self):
        store = load_points(GeoStore(), [(0, 0), (1, 1), (50, 50)])
        box = geometry_literal(Polygon.box(-1, -1, 2, 2))
        query = (
            PREFIXES
            + "SELECT (COUNT(?f) AS ?n) WHERE { ?f geo:asWKT ?g . "
            + f'FILTER (geof:sfIntersects(?g, "{box.lexical}"^^geo:wktLiteral)) }}'
        )
        [row] = store.query(query)
        assert row[Variable("n")].to_python() == 2

    def test_geof_area_in_filter(self):
        store = GeoStore()
        store.add(EX.small, GEO.asWKT, geometry_literal(Polygon.box(0, 0, 1, 1)))
        store.add(EX.big, GEO.asWKT, geometry_literal(Polygon.box(0, 0, 10, 10)))
        query = (
            PREFIXES
            + "SELECT ?f WHERE { ?f geo:asWKT ?g . FILTER (geof:area(?g) > 50) }"
        )
        assert result_ids(store.query(query)) == {EX.big}


class TestIndexBaselineParity:
    """GeoStore and NaiveGeoStore must always agree — the index is invisible."""

    @given(
        points=st.lists(
            st.tuples(
                st.floats(0, 100, allow_nan=False), st.floats(0, 100, allow_nan=False)
            ),
            min_size=0,
            max_size=40,
        ),
        window=st.tuples(
            st.floats(0, 80, allow_nan=False), st.floats(0, 80, allow_nan=False)
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_selection_parity(self, points, window):
        indexed = load_points(GeoStore(), points)
        naive = load_points(NaiveGeoStore(), points)
        wx, wy = window
        query = selection_query(wx, wy, wx + 20, wy + 20)
        assert result_ids(indexed.query(query)) == result_ids(naive.query(query))

    def test_bulk_load_matches_incremental(self):
        coords = [(i * 3.0, i * 7.0 % 50) for i in range(200)]
        incremental = load_points(GeoStore(), coords)
        bulk = GeoStore()
        triples = []
        for i, (x, y) in enumerate(coords):
            triples.append((EX[f"f{i}"], GEO.asWKT, geometry_literal(Point(x, y))))
            triples.append((EX[f"f{i}"], EX.id, Literal.from_python(i)))
        bulk.bulk_load(triples)
        query = selection_query(0, 0, 100, 30)
        assert result_ids(bulk.query(query)) == result_ids(incremental.query(query))
        assert bulk.geometry_count == incremental.geometry_count == 200


class TestSolutionModifiers:
    """GeoStore shares the evaluator's modifier pipeline (the E19 bugfix:
    ORDER BY must see pre-projection bindings, then project)."""

    def ordered_store(self):
        # Insertion order deliberately matches *neither* sort direction.
        return load_points(GeoStore(), [(5, 0), (1, 0), (9, 0), (3, 0)])

    def test_order_by_non_projected_ascending(self):
        store = self.ordered_store()
        result = store.query(
            PREFIXES + "SELECT ?f WHERE { ?f ex:id ?i } ORDER BY ?i"
        )
        assert [s[Variable("f")] for s in result] == [
            EX.f0, EX.f1, EX.f2, EX.f3,
        ]
        # ...and the sort key itself was projected away.
        assert all(set(s) == {Variable("f")} for s in result)

    def test_order_by_non_projected_descending(self):
        store = self.ordered_store()
        result = store.query(
            PREFIXES + "SELECT ?f WHERE { ?f ex:id ?i } ORDER BY DESC(?i)"
        )
        assert [s[Variable("f")] for s in result] == [
            EX.f3, EX.f2, EX.f1, EX.f0,
        ]

    def test_distinct_order_offset_limit_oracle(self):
        store = GeoStore()
        # (category, rank): sorted by rank -> b(1), a(2), c(3), a(4)
        for i, (cat, rank) in enumerate(
            [("a", 2), ("b", 1), ("a", 4), ("c", 3)]
        ):
            store.add(EX[f"r{i}"], EX.cat, Literal.from_python(cat))
            store.add(EX[f"r{i}"], EX.rank, Literal.from_python(rank))
        query = (
            PREFIXES
            + "SELECT DISTINCT ?c WHERE { ?x ex:cat ?c . ?x ex:rank ?r } "
            + "ORDER BY ?r OFFSET 1 LIMIT 2"
        )
        # distinct-after-sort: [b, a, c] -> offset 1, limit 2 -> [a, c]
        values = [str(s[Variable("c")].to_python()) for s in store.query(query)]
        assert values == ["a", "c"]

    def test_matches_core_evaluator(self):
        from repro.sparql import evaluate

        store = self.ordered_store()
        query = PREFIXES + "SELECT ?f WHERE { ?f ex:id ?i } ORDER BY DESC(?i)"
        assert store.query(query) == evaluate(store.graph, query)


class TestSpatialCandidateOp:
    """The already-bound membership path of the rewrite's custom operator."""

    def make_op(self):
        from repro.geosparql.store import _SpatialCandidateOp

        candidates = [
            geometry_literal(Point(0, 0)),
            geometry_literal(Point(5, 5)),
        ]
        return _SpatialCandidateOp(Variable("g"), candidates), candidates

    def evaluate(self, op, bindings):
        from repro.rdf import Graph
        from repro.sparql import FunctionRegistry

        return list(op.evaluate_custom(Graph(), bindings, FunctionRegistry()))

    def test_unbound_variable_yields_all_candidates(self):
        op, candidates = self.make_op()
        solutions = self.evaluate(op, {})
        assert [s[Variable("g")] for s in solutions] == candidates

    def test_bound_candidate_passes_membership(self):
        op, candidates = self.make_op()
        bindings = {Variable("g"): candidates[1], Variable("f"): EX.f1}
        solutions = self.evaluate(op, bindings)
        assert solutions == [bindings]
        assert solutions[0] is not bindings  # a copy, not the caller's dict

    def test_bound_non_candidate_is_filtered(self):
        op, _ = self.make_op()
        assert self.evaluate(op, {Variable("g"): geometry_literal(Point(99, 99))}) == []

    def test_bound_variables_reports_its_variable(self):
        op, _ = self.make_op()
        assert op.bound_variables() == {Variable("g")}
