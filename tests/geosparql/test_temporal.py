"""stSPARQL temporal extension tests."""

from datetime import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RDFError
from repro.geosparql import (
    GeoStore,
    IntervalIndex,
    PERIOD_DATATYPE,
    geometry_literal,
    is_temporal_literal,
    literal_period,
    period_literal,
)
from repro.geosparql.temporal import (
    period_before,
    period_during,
    period_overlaps,
)
from repro.geometry import Point
from repro.rdf import GEO, Namespace
from repro.rdf.term import Literal, XSD_DATETIME
from repro.sparql import Variable

EX = Namespace("http://ex.org/")
PREFIXES = (
    "PREFIX ex: <http://ex.org/> "
    "PREFIX strdf: <http://strdf.di.uoa.gr/ontology#> "
    "PREFIX geo: <http://www.opengis.net/ont/geosparql#> "
    "PREFIX geof: <http://www.opengis.net/def/function/geosparql/> "
)


def period(start, end):
    return (datetime.fromisoformat(start), datetime.fromisoformat(end))


class TestLiterals:
    def test_period_literal_round_trip(self):
        lit = period_literal("2017-01-01T00:00:00", "2017-04-01T00:00:00")
        assert lit.datatype == PERIOD_DATATYPE
        start, end = literal_period(lit)
        assert start == datetime(2017, 1, 1)
        assert end == datetime(2017, 4, 1)

    def test_instant_as_degenerate_period(self):
        lit = Literal("2017-06-15T12:00:00", datatype=XSD_DATETIME)
        start, end = literal_period(lit)
        assert start == end == datetime(2017, 6, 15, 12)

    def test_is_temporal_literal(self):
        assert is_temporal_literal(period_literal("2017-01-01", "2017-02-01"))
        assert is_temporal_literal(Literal("2017-01-01T00:00:00", datatype=XSD_DATETIME))
        assert not is_temporal_literal(Literal("hello"))

    def test_inverted_period_rejected(self):
        with pytest.raises(RDFError):
            period_literal("2017-05-01", "2017-01-01")

    @pytest.mark.parametrize(
        "bad",
        ["[2017-01-01", "2017-01-01, 2017-02-01)", "[not-a-date, 2017-02-01)"],
    )
    def test_malformed_periods(self, bad):
        with pytest.raises(RDFError):
            literal_period(Literal(bad, datatype=PERIOD_DATATYPE))

    def test_non_temporal_rejected(self):
        with pytest.raises(RDFError):
            literal_period(Literal("x"))


class TestRelations:
    jan = period("2017-01-01", "2017-02-01")
    feb = period("2017-02-01", "2017-03-01")
    q1 = period("2017-01-01", "2017-04-01")
    mid_jan = period("2017-01-10", "2017-01-20")

    def test_before(self):
        assert period_before(self.jan, self.feb)
        assert not period_before(self.feb, self.jan)
        assert not period_before(self.jan, self.mid_jan)

    def test_during(self):
        assert period_during(self.mid_jan, self.jan)
        assert period_during(self.jan, self.q1)
        assert not period_during(self.q1, self.jan)

    def test_overlaps(self):
        assert period_overlaps(self.jan, self.q1)
        assert period_overlaps(self.mid_jan, self.jan)
        # Half-open: [jan, feb) and [feb, mar) share no instant.
        assert not period_overlaps(self.jan, self.feb)

    def test_degenerate_instant_overlap(self):
        instant = period("2017-01-15", "2017-01-15")
        assert period_overlaps(instant, self.jan)
        assert period_overlaps(self.jan, instant)
        outside = period("2017-06-01", "2017-06-01")
        assert not period_overlaps(outside, self.jan)

    @given(
        a_start=st.integers(0, 50), a_len=st.integers(1, 30),
        b_start=st.integers(0, 50), b_len=st.integers(1, 30),
    )
    @settings(max_examples=60)
    def test_relations_consistent(self, a_start, a_len, b_start, b_len):
        def make(day, length):
            return (
                datetime(2017, 1, 1 + day % 27, 0),
                datetime(2017, 3, 1 + (day + length) % 27, 0),
            )

        a = make(a_start, a_len)
        b = make(b_start, b_len)
        # before(a,b) implies not overlaps(a,b); during implies overlaps.
        if period_before(a, b):
            assert not period_overlaps(a, b)
        if period_during(a, b):
            assert period_overlaps(a, b)
        assert period_overlaps(a, b) == period_overlaps(b, a)


class TestQueries:
    def make_store(self):
        store = GeoStore()
        observations = [
            ("obs1", "2017-01-01T00:00:00", "2017-02-01T00:00:00", (0, 0)),
            ("obs2", "2017-03-01T00:00:00", "2017-05-01T00:00:00", (10, 10)),
            ("obs3", "2017-06-01T00:00:00", "2017-07-01T00:00:00", (20, 20)),
        ]
        for name, start, end, (x, y) in observations:
            store.add(EX[name], EX.validTime, period_literal(start, end))
            store.add(EX[name], GEO.asWKT, geometry_literal(Point(x, y)))
        return store

    def test_overlaps_filter(self):
        store = self.make_store()
        window = period_literal("2017-04-01T00:00:00", "2017-06-15T00:00:00")
        result = store.query(
            PREFIXES
            + "SELECT ?o WHERE { ?o ex:validTime ?t . "
            + f'FILTER (strdf:periodIntersects(?t, "{window.lexical}"^^strdf:period)) }}'
        )
        assert {s[Variable("o")] for s in result} == {EX.obs2, EX.obs3}

    def test_before_filter(self):
        store = self.make_store()
        pivot = period_literal("2017-03-01T00:00:00", "2017-03-02T00:00:00")
        result = store.query(
            PREFIXES
            + "SELECT ?o WHERE { ?o ex:validTime ?t . "
            + f'FILTER (strdf:before(?t, "{pivot.lexical}"^^strdf:period)) }}'
        )
        assert {s[Variable("o")] for s in result} == {EX.obs1}

    def test_during_with_instant(self):
        store = self.make_store()
        result = store.query(
            PREFIXES
            + "SELECT ?o WHERE { ?o ex:validTime ?t . "
            + 'FILTER (strdf:during("2017-03-15T00:00:00"^^'
            + "<http://www.w3.org/2001/XMLSchema#dateTime>, ?t)) }"
        )
        assert {s[Variable("o")] for s in result} == {EX.obs2}

    def test_spatiotemporal_combined(self):
        store = self.make_store()
        from repro.geometry import Polygon

        box = geometry_literal(Polygon.box(-5, -5, 15, 15))
        window = period_literal("2017-01-15T00:00:00", "2017-12-01T00:00:00")
        result = store.query(
            PREFIXES
            + "SELECT ?o WHERE { ?o ex:validTime ?t . ?o geo:asWKT ?g . "
            + f'FILTER (geof:sfIntersects(?g, "{box.lexical}"^^geo:wktLiteral)) '
            + f'FILTER (strdf:periodIntersects(?t, "{window.lexical}"^^strdf:period)) }}'
        )
        assert {s[Variable("o")] for s in result} == {EX.obs1, EX.obs2}

    def test_period_accessors(self):
        store = self.make_store()
        result = store.query(
            PREFIXES
            + "SELECT ?o WHERE { ?o ex:validTime ?t . "
            + 'FILTER (STR(strdf:periodStart(?t)) = "2017-03-01T00:00:00") }'
        )
        assert {s[Variable("o")] for s in result} == {EX.obs2}


class TestIntervalIndex:
    def entries(self):
        return [
            (period("2017-01-01", "2017-02-01"), "a"),
            (period("2017-01-15", "2017-03-01"), "b"),
            (period("2017-06-01", "2017-07-01"), "c"),
        ]

    def test_overlapping(self):
        index = IntervalIndex.build(self.entries())
        assert set(index.overlapping(period("2017-01-20", "2017-01-25"))) == {"a", "b"}
        assert index.overlapping(period("2017-04-01", "2017-05-01")) == []
        assert index.overlapping(period("2017-06-15", "2017-06-16")) == ["c"]
        assert len(index) == 3

    def test_empty_index(self):
        index = IntervalIndex.build([])
        assert index.overlapping(period("2017-01-01", "2017-12-31")) == []
        assert not index.first_overlap_possible(period("2017-01-01", "2017-12-31"))

    def test_invalid_interval_rejected(self):
        with pytest.raises(RDFError):
            IntervalIndex.build([(period("2017-05-01", "2017-05-02")[::-1], "x")])

    @given(
        data=st.lists(
            st.tuples(st.integers(0, 300), st.integers(0, 60)), min_size=0, max_size=40
        ),
        q=st.tuples(st.integers(0, 300), st.integers(0, 60)),
    )
    @settings(max_examples=50)
    def test_matches_linear_scan(self, data, q):
        from datetime import timedelta

        base = datetime(2017, 1, 1)

        def make(start, length):
            return (base + timedelta(days=start), base + timedelta(days=start + length))

        entries = [(make(s, l), i) for i, (s, l) in enumerate(data)]
        index = IntervalIndex.build(entries)
        query = make(*q)
        expected = {i for (p, i) in entries if period_overlaps(p, query)}
        assert set(index.overlapping(query)) == expected
