"""wktLiteral wrapping/parsing tests."""

import pytest

from repro.errors import RDFError
from repro.geometry import Point, Polygon
from repro.geosparql import (
    WKT_DATATYPE,
    geometry_literal,
    is_geometry_literal,
    literal_geometry,
)
from repro.geosparql.literals import CRS84, literal_crs
from repro.rdf.term import IRI, Literal


class TestGeometryLiteral:
    def test_wrap(self):
        lit = geometry_literal(Point(1, 2))
        assert lit.datatype == WKT_DATATYPE
        assert lit.lexical == "POINT (1 2)"

    def test_wrap_with_crs(self):
        lit = geometry_literal(Point(1, 2), crs=CRS84)
        assert lit.lexical.startswith(f"<{CRS84}> POINT")

    def test_round_trip(self):
        poly = Polygon.box(0, 0, 5, 5)
        assert literal_geometry(geometry_literal(poly)) == poly

    def test_round_trip_with_crs(self):
        point = Point(3, 4)
        assert literal_geometry(geometry_literal(point, crs=CRS84)) == point

    def test_is_geometry_literal(self):
        assert is_geometry_literal(geometry_literal(Point(0, 0)))
        assert not is_geometry_literal(Literal("POINT (0 0)"))
        assert not is_geometry_literal(IRI("http://x"))

    def test_parse_non_geometry_raises(self):
        with pytest.raises(RDFError):
            literal_geometry(Literal("hello"))

    def test_malformed_crs_prefix(self):
        with pytest.raises(RDFError):
            literal_geometry(Literal("<http://unclosed POINT (0 0)", datatype=WKT_DATATYPE))

    def test_literal_crs(self):
        assert literal_crs(geometry_literal(Point(0, 0), crs=CRS84)) == CRS84
        assert literal_crs(geometry_literal(Point(0, 0))) is None

    def test_cache_returns_equal_geometry(self):
        lit = geometry_literal(Point(7, 8))
        assert literal_geometry(lit) is literal_geometry(lit)
