"""HopsFS filesystem semantics tests."""

import pytest

from repro.errors import StorageError
from repro.hopsfs import BlockManager, HopsFS, SingleLeaderFS
from repro.hopsfs.workload import run_metadata_workload


@pytest.fixture
def fs():
    return HopsFS(blocks=BlockManager(node_count=4, block_size=1024, replication=2))


class TestDirectories:
    def test_mkdir_and_list(self, fs):
        fs.mkdir("/a")
        fs.mkdir("/a/b")
        assert fs.listdir("/") == ["a"]
        assert fs.listdir("/a") == ["b"]
        assert fs.listdir("/a/b") == []

    def test_mkdir_missing_parent(self, fs):
        with pytest.raises(StorageError):
            fs.mkdir("/missing/child")

    def test_mkdir_duplicate(self, fs):
        fs.mkdir("/a")
        with pytest.raises(StorageError):
            fs.mkdir("/a")

    def test_makedirs(self, fs):
        fs.makedirs("/x/y/z")
        assert fs.listdir("/x/y") == ["z"]
        fs.makedirs("/x/y/z")  # idempotent

    def test_relative_path_rejected(self, fs):
        with pytest.raises(StorageError):
            fs.mkdir("relative")

    def test_stat_directory(self, fs):
        fs.mkdir("/d")
        stat = fs.stat("/d")
        assert stat.is_dir and stat.size_bytes == 0


class TestFiles:
    def test_create_small_file_inline(self, fs):
        stat = fs.create("/small.txt", b"hello")
        assert stat.inline is True
        assert stat.block_ids == ()
        assert fs.read("/small.txt") == b"hello"

    def test_create_large_file_blocks(self, fs):
        data = b"x" * 200_000  # above 64 KB threshold, block size 1024
        stat = fs.create("/big.bin", data)
        assert stat.inline is False
        assert len(stat.block_ids) == (200_000 + 1023) // 1024
        assert fs.read("/big.bin") is None  # contents not materialised
        assert fs.stat("/big.bin").size_bytes == 200_000

    def test_threshold_boundary(self):
        fs = HopsFS(small_file_threshold=10,
                    blocks=BlockManager(block_size=1024, replication=1, node_count=1))
        assert fs.create("/at.bin", b"x" * 10).inline is True
        assert fs.create("/above.bin", b"x" * 11).inline is False

    def test_create_duplicate(self, fs):
        fs.create("/f", b"1")
        with pytest.raises(StorageError):
            fs.create("/f", b"2")

    def test_read_missing(self, fs):
        with pytest.raises(StorageError):
            fs.read("/missing")

    def test_read_directory_fails(self, fs):
        fs.mkdir("/d")
        with pytest.raises(StorageError):
            fs.read("/d")

    def test_exists(self, fs):
        fs.create("/f", b"")
        assert fs.exists("/f")
        assert not fs.exists("/g")

    def test_delete_file_frees_blocks(self, fs):
        data = b"x" * 100_000
        fs.create("/big", data)
        blocks_before = fs.blocks.block_count
        fs.delete("/big")
        assert fs.blocks.block_count < blocks_before
        assert not fs.exists("/big")

    def test_delete_nonempty_dir(self, fs):
        fs.mkdir("/d")
        fs.create("/d/f", b"x")
        with pytest.raises(StorageError):
            fs.delete("/d")
        fs.delete("/d/f")
        fs.delete("/d")
        assert not fs.exists("/d")

    def test_rename(self, fs):
        fs.mkdir("/a")
        fs.mkdir("/b")
        fs.create("/a/f", b"data")
        fs.rename("/a/f", "/b/g")
        assert not fs.exists("/a/f")
        assert fs.read("/b/g") == b"data"

    def test_rename_conflict(self, fs):
        fs.create("/f", b"1")
        fs.create("/g", b"2")
        with pytest.raises(StorageError):
            fs.rename("/f", "/g")


class TestBlocks:
    def test_replication(self):
        manager = BlockManager(node_count=4, block_size=100, replication=3)
        [block_id] = manager.allocate_file(50)
        assert len(manager.block_locations(block_id)) == 3
        assert manager.total_stored_bytes() == 150

    def test_balance(self):
        manager = BlockManager(node_count=4, block_size=100, replication=1)
        for _ in range(40):
            manager.allocate_file(100)
        assert manager.balance_ratio() == pytest.approx(1.0)

    def test_capacity_exhaustion(self):
        manager = BlockManager(
            node_count=2, node_capacity_bytes=100, block_size=100, replication=2
        )
        manager.allocate_file(100)
        with pytest.raises(StorageError):
            manager.allocate_file(100)

    def test_replication_validation(self):
        with pytest.raises(StorageError):
            BlockManager(node_count=2, replication=3)

    def test_unknown_block(self):
        with pytest.raises(StorageError):
            BlockManager().block_locations(999)


class TestScaling:
    """The paper's E1 claim in miniature: sharded metadata scales, a single
    leader does not."""

    def test_hopsfs_beats_single_leader(self):
        hops = HopsFS(blocks=BlockManager())
        hdfs = SingleLeaderFS()
        result_hops = run_metadata_workload(hops, operations=2000, seed=1)
        result_hdfs = run_metadata_workload(hdfs, operations=2000, seed=1)
        assert result_hops.ops_per_second > result_hdfs.ops_per_second * 1.5

    def test_throughput_scales_with_shards(self):
        from repro.hopsfs.kvstore import ShardedKVStore

        throughputs = {}
        for shards in (1, 4, 16):
            fs = HopsFS(store=ShardedKVStore(shard_count=shards))
            result = run_metadata_workload(fs, operations=3000, seed=2)
            throughputs[shards] = result.ops_per_second
        assert throughputs[4] > throughputs[1] * 2
        assert throughputs[16] > throughputs[4] * 1.5

    def test_small_file_threshold_reduces_block_ops(self):
        small_on = HopsFS(blocks=BlockManager(block_size=1024),
                          small_file_threshold=64 * 1024)
        small_off = HopsFS(blocks=BlockManager(block_size=1024),
                           small_file_threshold=0)
        for i in range(50):
            small_on.create(f"/f{i}", b"x" * 1000)
            small_off.create(f"/f{i}", b"x" * 1000)
        assert small_on.blocks.block_count == 0
        assert small_off.blocks.block_count == 50

    def test_rename_multi_shard_fraction(self):
        fs = HopsFS()
        fs.mkdir("/a")
        fs.mkdir("/b")
        for i in range(20):
            fs.create(f"/a/f{i}", b"x")
        fs.store.reset_accounting()
        for i in range(20):
            fs.rename(f"/a/f{i}", f"/b/f{i}")
        # Most renames cross shards (parents land on different shards with
        # high probability across 4 shards).
        assert fs.store.multi_shard_fraction >= 0.0  # recorded
        assert fs.store.op_count > 0


class TestDirHintCache:
    """Scoped invalidation of directory hints (the E19 bugfix): a delete or
    rename evicts exactly its subtree, never the hot ancestors."""

    def warm(self, fs, *paths):
        for path in paths:
            fs.listdir(path)

    def test_sibling_delete_keeps_hot_ancestors(self, fs):
        fs.makedirs("/data/a")
        fs.mkdir("/data/b")
        self.warm(fs, "/", "/data", "/data/a", "/data/b")
        assert ("data",) in fs._dir_cache and ("data", "b") in fs._dir_cache
        fs.delete("/data/b")
        # The regression the seed code failed: unrelated hot hints survive.
        assert () in fs._dir_cache
        assert ("data",) in fs._dir_cache
        assert ("data", "a") in fs._dir_cache
        assert ("data", "b") not in fs._dir_cache

    def test_hot_ancestor_resolution_is_free_after_sibling_delete(self, fs):
        fs.makedirs("/data/a")
        fs.mkdir("/data/b")
        self.warm(fs, "/data", "/data/a")
        fs.delete("/data/b")
        hits_before = fs.dir_cache_stats["hits"]
        fs.listdir("/data/a")
        assert fs.dir_cache_stats["hits"] > hits_before

    def test_delete_then_recreate_resolves_the_new_inode(self, fs):
        fs.makedirs("/data/x")
        self.warm(fs, "/data/x")
        old_inode = fs.stat("/data/x").inode_id
        fs.delete("/data/x")
        fs.mkdir("/data/x")
        fs.create("/data/x/f", b"hello")
        assert fs.stat("/data/x").inode_id != old_inode
        assert fs.listdir("/data/x") == ["f"]
        assert fs.read("/data/x/f") == b"hello"

    def test_rename_evicts_only_the_moved_subtree(self, fs):
        fs.makedirs("/a/sub/deep")
        fs.mkdir("/b")
        self.warm(fs, "/a", "/a/sub", "/a/sub/deep", "/b")
        fs.rename("/a/sub", "/b/sub")
        assert ("a",) in fs._dir_cache and ("b",) in fs._dir_cache
        assert ("a", "sub") not in fs._dir_cache
        assert ("a", "sub", "deep") not in fs._dir_cache
        assert fs.listdir("/a") == []
        assert fs.listdir("/b/sub") == ["deep"]

    def test_file_delete_evicts_nothing(self, fs):
        fs.mkdir("/data")
        fs.create("/data/f", b"x")
        self.warm(fs, "/", "/data")
        evictions_before = fs.dir_cache_stats["evictions"]
        fs.delete("/data/f")
        assert fs.dir_cache_stats["evictions"] == evictions_before
        assert ("data",) in fs._dir_cache

    def test_bounded_capacity_thrashes_but_stays_correct(self):
        from repro.cache import DirHintCache

        fs = HopsFS(dir_cache=DirHintCache(capacity=2))
        for d in range(6):
            fs.makedirs(f"/d{d}/sub")
            fs.create(f"/d{d}/sub/f", b"x")
        assert len(fs._dir_cache) <= 2
        assert fs.dir_cache_stats["evictions"] > 0
        for d in range(6):
            assert fs.read(f"/d{d}/sub/f") == b"x"

    def test_negative_caching_replays_failures_cheaply(self):
        from repro.cache import DirHintCache

        fs = HopsFS(dir_cache=DirHintCache(negative=True))
        for _ in range(3):
            with pytest.raises(StorageError, match="no such directory"):
                fs.stat("/nope/file")
        assert fs.dir_cache_stats["negative_hits"] >= 2

    def test_negative_entry_invalidated_by_mkdir(self):
        from repro.cache import DirHintCache

        fs = HopsFS(dir_cache=DirHintCache(negative=True))
        with pytest.raises(StorageError):
            fs.stat("/nope/file")
        fs.mkdir("/nope")
        fs.create("/nope/file", b"now real")
        assert fs.read("/nope/file") == b"now real"

    def test_negative_entry_invalidated_by_rename(self):
        from repro.cache import DirHintCache

        fs = HopsFS(dir_cache=DirHintCache(negative=True))
        fs.makedirs("/src/inner")
        with pytest.raises(StorageError):
            fs.stat("/dst/x")  # remembered failure under /dst
        fs.rename("/src", "/dst")
        assert fs.listdir("/dst") == ["inner"]
