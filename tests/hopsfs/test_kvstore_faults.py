"""KV-store shard outages, 2PC abort atomicity, and replica-fallback reads.

Integer partition keys hash to themselves, so shard routing is deterministic
across processes (string keys are not under hash randomisation).
"""

import pytest

from repro.errors import StorageError
from repro.faults import FaultInjector, FaultPlan, RetryPolicy, ShardOutage
from repro.hopsfs import BlockManager, ShardedKVStore, ShardUnavailable


def store_with(outages, retry_policy=None, shard_count=4):
    plan = FaultPlan(shard_outages=tuple(outages))
    return ShardedKVStore(
        shard_count=shard_count,
        injector=FaultInjector(plan),
        retry_policy=retry_policy,
    )


class TestShardOutages:
    def test_transient_outage_raises_without_policy(self):
        store = store_with([ShardOutage(shard=1, start_op=0, duration_ops=3)])
        with pytest.raises(ShardUnavailable) as excinfo:
            store.put(1, "k", "v")  # partition key 1 -> shard 1
        assert excinfo.value.shard == 1
        assert excinfo.value.retryable
        assert store.get(2, "k") is None  # other shards unaffected

    def test_retry_policy_rides_out_transient_outage(self):
        store = store_with(
            [ShardOutage(shard=1, start_op=0, duration_ops=2)],
            retry_policy=RetryPolicy(max_attempts=5, jitter=0.0),
        )
        store.put(1, "k", "v")
        assert store.retries == 2  # attempts 0 and 1 hit the window
        assert store.retry_wait_ms > 0
        assert store.get(1, "k") == "v"

    def test_permanent_outage_not_retried(self):
        store = store_with(
            [ShardOutage(shard=1, start_op=0, duration_ops=None)],
            retry_policy=RetryPolicy(max_attempts=5, jitter=0.0),
        )
        with pytest.raises(ShardUnavailable) as excinfo:
            store.put(1, "k", "v")
        assert excinfo.value.permanent
        assert not excinfo.value.retryable
        assert store.retries == 0  # gave up immediately

    def test_outage_exhausting_retries(self):
        store = store_with(
            [ShardOutage(shard=1, start_op=0, duration_ops=100)],
            retry_policy=RetryPolicy(max_attempts=3, jitter=0.0),
        )
        from repro.errors import RetryExhausted

        with pytest.raises(RetryExhausted) as excinfo:
            store.get(1, "k")
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, ShardUnavailable)

    def test_shard_unavailable_is_storage_error(self):
        # Existing except-StorageError handlers must keep catching it.
        assert issubclass(ShardUnavailable, StorageError)

    def test_none_plan_is_zero_overhead(self):
        faulty = ShardedKVStore(injector=FaultInjector(FaultPlan.none()))
        plain = ShardedKVStore()
        for store in (faulty, plain):
            for i in range(10):
                store.put(i, "k", i * 2)
            store.transact([(0, "a", 1), (1, "b", 2)])
        assert faulty.storage_entries() == plain.storage_entries()
        assert faulty.makespan_ms() == plain.makespan_ms()
        assert faulty.op_count == plain.op_count
        assert faulty.retries == 0


class TestTwoPhaseAbort:
    """A failed multi-shard transaction must leave no partial writes."""

    def test_abort_leaves_no_partial_state(self):
        store = store_with([ShardOutage(shard=2, start_op=0, duration_ops=None)])
        store.put(0, "pre", "kept")  # shard 0, before the failing txn
        before = store.storage_entries()
        with pytest.raises(ShardUnavailable):
            # Spans shards 0, 1 (healthy) and 2 (down): must abort whole.
            store.transact([(0, "a", 1), (1, "b", 2), (2, "c", 3)])
        assert store.storage_entries() == before
        assert store.get(0, "a") is None
        assert store.get(1, "b") is None
        assert store.get(0, "pre") == "kept"

    def test_abort_applies_to_deletes_too(self):
        store = store_with([ShardOutage(shard=2, start_op=2, duration_ops=None)])
        store.put(0, "a", 1)  # op 0
        store.put(1, "b", 2)  # op 1
        with pytest.raises(ShardUnavailable):
            store.transact([(2, "c", 3)], deletes=[(0, "a"), (1, "b")])
        assert store.get(0, "a") == 1  # delete aborted with the txn
        assert store.get(1, "b") == 2

    def test_healthy_transaction_commits_atomically(self):
        store = store_with([ShardOutage(shard=3, start_op=0, duration_ops=None)])
        store.transact([(0, "a", 1), (1, "b", 2), (2, "c", 3)])
        assert store.get(0, "a") == 1
        assert store.get(1, "b") == 2
        assert store.get(2, "c") == 3

    def test_abort_under_outage_leaves_no_durable_trace(self):
        # E17 x E20: a mid-transaction shard outage aborts in the prepare
        # phase, before the WAL sees a single record — the aborted attempt
        # must be invisible to both live state and crash recovery.
        from repro.durability import DurabilityLayer

        layer = DurabilityLayer()
        plan = FaultPlan(
            shard_outages=(ShardOutage(shard=2, start_op=1, duration_ops=1),)
        )
        store = ShardedKVStore(
            shard_count=4, injector=FaultInjector(plan), durability=layer
        )
        store.put(0, "pre", "kept")  # op 0, before the outage window
        with pytest.raises(ShardUnavailable):
            store.transact([(0, "a", 1), (1, "b", 2), (2, "c", 3)])  # op 1
        assert store.get(0, "a") is None
        assert store.get(2, "c") is None
        assert layer.appended_records == 1  # just the pre-outage put
        # The window has passed: the same transaction now commits, and a
        # crash + recovery sees exactly one atomic copy of it.
        store.transact([(0, "a", 1), (1, "b", 2), (2, "c", 3)])
        live = {
            (pk, k): v
            for s in range(store.shard_count)
            for pk, k, v in store.shard_items(s)
        }
        store.crash()
        report = store.recover()
        recovered = {
            (pk, k): v
            for s in range(store.shard_count)
            for pk, k, v in store.shard_items(s)
        }
        assert recovered == live
        assert report.committed_txns == 1
        assert report.aborted_txns == 0

    def test_abort_under_retry_policy_commits_exactly_once(self):
        # A retried transaction must not stage duplicate prepares: the
        # failed attempts died before the durability layer was touched.
        from repro.durability import DurabilityLayer

        layer = DurabilityLayer()
        plan = FaultPlan(
            shard_outages=(ShardOutage(shard=1, start_op=0, duration_ops=2),)
        )
        store = ShardedKVStore(
            shard_count=4,
            injector=FaultInjector(plan),
            retry_policy=RetryPolicy(max_attempts=5, jitter=0.0),
            durability=layer,
        )
        store.transact([(0, "a", 1), (1, "b", 2)])
        assert store.retries == 2
        # 2 prepares + 2 commit markers, once — not once per attempt.
        assert layer.appended_records == 4
        store.crash()
        report = store.recover()
        assert report.committed_txns == 1
        assert store.get(0, "a") == 1
        assert store.get(1, "b") == 2


class TestReplicaFallbackReads:
    def make_manager(self):
        manager = BlockManager(node_count=4, block_size=100, replication=2)
        manager.allocate_file(300)  # blocks 0..2
        return manager

    def test_read_prefers_requested_node(self):
        manager = self.make_manager()
        owners = manager.block_locations(0)
        assert manager.read_block(0, preferred=owners[1]) == owners[1]

    def test_read_falls_back_to_survivor(self):
        manager = self.make_manager()
        owners = manager.block_locations(0)
        manager.fail_node(owners[0])
        served = manager.read_block(0, preferred=owners[0])
        assert served != owners[0]
        assert manager.nodes[served].alive

    def test_read_fails_only_when_all_replicas_gone(self):
        manager = self.make_manager()
        for owner in list(manager.block_locations(0)):
            manager.fail_node(owner)
        with pytest.raises(StorageError):
            manager.read_block(0)

    def test_inject_failures_is_idempotent(self):
        manager = self.make_manager()
        plan = FaultPlan(datanode_crashes=(0, 1))
        injector = FaultInjector(plan)
        assert manager.inject_failures(injector) == 2
        assert manager.inject_failures(injector) == 0  # already dead
        assert not manager.nodes[0].alive
        assert not manager.nodes[1].alive

    def test_heal_reports_repairs_and_losses(self):
        manager = self.make_manager()
        manager.fail_node(0)
        created, lost = manager.heal()
        assert created > 0
        assert lost == []
        assert manager.under_replicated_blocks() == []
