"""Sharded KV store tests."""

import pytest

from repro.errors import StorageError
from repro.hopsfs import ShardedKVStore, SingleLeaderStore


class TestBasics:
    def test_put_get(self):
        store = ShardedKVStore(shard_count=4)
        store.put("p1", "k", "v")
        assert store.get("p1", "k") == "v"
        assert store.get("p1", "missing") is None

    def test_delete(self):
        store = ShardedKVStore()
        store.put("p", "k", 1)
        assert store.delete("p", "k") is True
        assert store.delete("p", "k") is False
        assert store.get("p", "k") is None

    def test_scan_partition(self):
        store = ShardedKVStore(shard_count=2)
        store.put("dir1", "a", 1)
        store.put("dir1", "b", 2)
        store.put("dir2", "c", 3)
        assert dict(store.scan("dir1")) == {"a": 1, "b": 2}

    def test_validation(self):
        with pytest.raises(StorageError):
            ShardedKVStore(shard_count=0)
        with pytest.raises(StorageError):
            ShardedKVStore(base_latency_ms=0)

    def test_storage_entries(self):
        store = ShardedKVStore(shard_count=8)
        for i in range(20):
            store.put(f"p{i}", "k", i)
        assert store.storage_entries() == 20


class TestTransactions:
    def test_transact_atomic_apply(self):
        store = ShardedKVStore(shard_count=4)
        store.put("a", "x", 1)
        store.transact(writes=[("b", "y", 2)], deletes=[("a", "x")])
        assert store.get("a", "x") is None
        assert store.get("b", "y") == 2

    def test_empty_transact_no_charge(self):
        store = ShardedKVStore()
        before = store.op_count
        store.transact(writes=[])
        assert store.op_count == before


class TestCostModel:
    def test_single_shard_cost(self):
        store = ShardedKVStore(shard_count=4, base_latency_ms=1.0)
        store.put("p", "k", 1)
        assert store.total_work_ms() == 1.0
        assert store.op_count == 1

    def test_multi_shard_surcharge(self):
        store = ShardedKVStore(
            shard_count=4, base_latency_ms=1.0, two_phase_surcharge_ms=2.0
        )
        # Find two partition keys on different shards.
        keys = ["a", "b", "c", "d", "e", "f"]
        pk1 = keys[0]
        pk2 = next(k for k in keys if store.shard_of(k) != store.shard_of(pk1))
        store.transact(writes=[(pk1, "k", 1), (pk2, "k", 2)])
        assert store.multi_shard_fraction == 1.0
        # Both shards charged base+surcharge.
        assert store.total_work_ms() == pytest.approx(2 * 3.0)
        assert store.makespan_ms() == pytest.approx(3.0)

    def test_parallel_shards_reduce_makespan(self):
        many = ShardedKVStore(shard_count=8, base_latency_ms=1.0)
        one = ShardedKVStore(shard_count=1, base_latency_ms=1.0)
        for i in range(400):
            many.put(f"p{i}", "k", i)
            one.put(f"p{i}", "k", i)
        assert many.makespan_ms() < one.makespan_ms() / 4
        assert many.ops_per_second() > one.ops_per_second() * 4

    def test_throughput_scales_with_shards(self):
        results = {}
        for shards in (1, 2, 4, 8):
            store = ShardedKVStore(shard_count=shards, base_latency_ms=0.1)
            for i in range(1000):
                store.put(f"p{i}", "k", i)
            results[shards] = store.ops_per_second()
        assert results[2] > results[1] * 1.5
        assert results[8] > results[4] * 1.5

    def test_reset_accounting(self):
        store = ShardedKVStore()
        store.put("p", "k", 1)
        store.reset_accounting()
        assert store.op_count == 0
        assert store.makespan_ms() == 0.0
        assert store.ops_per_second() == 0.0
        # Data survives a reset.
        assert store.get("p", "k") == 1

    def test_single_leader_is_one_shard(self):
        store = SingleLeaderStore()
        assert store.shard_count == 1
