"""Replica-read rotation and repair-sweep reporting (E20 satellites).

The pre-E20 fallback read always served ``survivors[0]``, so every read of
a block whose preferred node died hammered the same survivor. Fallbacks now
rotate deterministically (seeded counter), spreading post-failure traffic.
"""

from collections import Counter

import pytest

from repro.errors import StorageError
from repro.hopsfs import BlockManager


def manager_with_block(node_count=4, replication=3):
    manager = BlockManager(
        node_count=node_count, block_size=100, replication=replication
    )
    manager.allocate_file(100)  # block 0 on `replication` nodes
    return manager


class TestSeededReadRotation:
    def test_preferred_replica_still_wins(self):
        manager = manager_with_block()
        owners = manager.block_locations(0)
        for owner in owners:
            assert manager.read_block(0, preferred=owner) == owner

    def test_fallback_reads_spread_over_survivors(self):
        manager = manager_with_block()
        owners = manager.block_locations(0)
        served = Counter(manager.read_block(0) for _ in range(30))
        # Every replica takes a share, and an even one: 30 reads over
        # 3 survivors rotate to exactly 10 each.
        assert set(served) == set(owners)
        assert all(count == 10 for count in served.values())

    def test_fallback_spread_after_preferred_dies(self):
        manager = manager_with_block()
        owners = manager.block_locations(0)
        manager.fail_node(owners[0])
        survivors = set(owners[1:])
        served = Counter(
            manager.read_block(0, preferred=owners[0]) for _ in range(20)
        )
        assert set(served) == survivors
        assert all(count == 10 for count in served.values())

    def test_rotation_is_seed_deterministic(self):
        def sequence(seed):
            manager = BlockManager(
                node_count=4, block_size=100, replication=3,
                read_rotation_seed=seed,
            )
            manager.allocate_file(100)
            return [manager.read_block(0) for _ in range(12)]

        assert sequence(7) == sequence(7)
        assert sequence(7) != sequence(8)  # seed shifts the phase

    def test_read_still_fails_when_all_replicas_gone(self):
        manager = manager_with_block()
        for owner in list(manager.block_locations(0)):
            manager.fail_node(owner)
        with pytest.raises(StorageError):
            manager.read_block(0)


class TestRepairSweepReporting:
    def test_unplaceable_blocks_resets_between_sweeps(self):
        manager = BlockManager(
            node_count=3, node_capacity_bytes=200, block_size=100,
            replication=2,
        )
        for _ in range(3):
            manager.allocate_file(100)
        manager.fail_node(0)
        manager.re_replicate()
        assert manager.unplaceable_blocks
        # Free capacity (delete a block) and sweep again: the report must
        # reflect *this* sweep, not accumulate history.
        manager.free_blocks([manager.unplaceable_blocks[0]])
        manager.re_replicate()
        assert manager.unplaceable_blocks == []
        assert manager.under_replicated_blocks() == []

    def test_heal_reports_both_channels(self):
        manager = BlockManager(
            node_count=4, block_size=100, replication=2
        )
        for _ in range(4):
            manager.allocate_file(100)
        manager.fail_node(0)
        created, lost = manager.heal()
        assert created > 0
        assert lost == []
        assert manager.unplaceable_blocks == []
