"""End-to-end pipeline integration tests."""

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.apps.foodsecurity import build_crop_classifier
from repro.apps.polar import build_ice_classifier
from repro.pipeline import ExtremeEarthPipeline
from repro.raster import ProductArchive, sea_ice_field, sentinel1_scene
from repro.raster.sentinel import landcover_field, sentinel2_scene
from repro.sparql import Variable


@pytest.fixture
def pipeline():
    return ExtremeEarthPipeline(metadata_shards=4)


class TestIngest:
    def test_ingest_registers_everything(self, pipeline):
        products = ProductArchive(seed=1).generate(40)
        report = pipeline.ingest_archive(products)
        assert report.products == 40
        assert report.products_per_second > 0
        assert len(pipeline.fs.listdir("/archive/products")) == 40
        assert len(pipeline.catalog.search_products()) == 40

    def test_ingest_empty_rejected(self, pipeline):
        with pytest.raises(PipelineError):
            pipeline.ingest_archive([])

    def test_bigger_cluster_ingests_faster(self):
        from repro.cluster import ClusterSpec

        products = ProductArchive(seed=2).generate(64)

        def seconds(nodes):
            pipe = ExtremeEarthPipeline(
                cluster=ClusterSpec(node_count=nodes, cpu_slots_per_node=1)
            )
            return pipe.ingest_archive(products).simulated_seconds

        assert seconds(8) < seconds(1) / 3


class TestSceneProcessing:
    def test_polar_scene(self, pipeline):
        truth = sea_ice_field(32, 32, seed=1, ice_extent=0.5)
        scene = sentinel1_scene(truth, seed=1, looks=8)
        model = build_ice_classifier()
        report = pipeline.process_polar_scene(scene, model)
        assert report.scene_bytes == scene.grid.nbytes
        assert report.information_bytes > 0
        assert 0 < report.pcdss_bytes <= 2048
        assert pipeline.scenes_processed == 1

    def test_polar_knowledge_queryable(self, pipeline):
        truth = np.zeros((64, 64), dtype=np.int16)
        from repro.apps.polar.icebergs import embed_truth_icebergs

        truth, positions = embed_truth_icebergs(truth, count=4, seed=3)
        scene = sentinel1_scene(truth, signatures="ice", looks=16, seed=3)
        model = build_ice_classifier()
        report = pipeline.process_polar_scene(scene, model)
        assert report.knowledge_entities >= 3
        [row] = pipeline.catalog.query(
            "SELECT (COUNT(?b) AS ?n) WHERE { ?b rdf:type eop:Iceberg }"
        )
        assert row[Variable("n")].to_python() == report.knowledge_entities

    def test_agri_scene(self, pipeline):
        truth = landcover_field(32, 32, seed=2)
        scene = sentinel2_scene(truth, seed=2)
        model = build_crop_classifier(num_classes=8)
        report = pipeline.process_agri_scene(scene, model)
        assert report.information_bytes > 0
        assert pipeline.scenes_processed == 1

    def test_scene_content_searchable(self, pipeline):
        """Challenge C4: after processing, scenes are findable by content."""
        truth = np.full((32, 32), 3, dtype=np.int16)  # all-ice scene
        from repro.raster import SeaIce, sentinel1_scene

        scene = sentinel1_scene(truth, seed=4, looks=16)
        from repro.apps.polar import build_ice_classifier, make_ice_training_set, train_ice_classifier

        model = build_ice_classifier(seed=5)
        train_ice_classifier(
            model, make_ice_training_set(samples=200, seed=5, looks=16), epochs=4
        )
        pipeline.process_polar_scene(scene, model)
        results = pipeline.catalog.search_by_content(
            SeaIce.FIRST_YEAR_ICE.name, min_fraction=0.5
        )
        assert len(results) == 1
        assert results[0][1] > 0.5

    def test_mission_mismatch_rejected(self, pipeline):
        truth = landcover_field(16, 16)
        s2 = sentinel2_scene(truth)
        with pytest.raises(PipelineError):
            pipeline.process_polar_scene(s2, build_ice_classifier())
        s1 = sentinel1_scene(sea_ice_field(16, 16))
        with pytest.raises(PipelineError):
            pipeline.process_agri_scene(s1, build_crop_classifier(num_classes=8))


class TestInformationRatio:
    def test_ratio_in_paper_ballpark(self, pipeline):
        """E10: the paper says 1 PB raw -> ~450 TB information (ratio 0.45).

        Our materialisation (class map + per-class probability rasters over
        float32 scenes) should land in the same regime: a large fraction of
        the raw volume, below 1.
        """
        ice_model = build_ice_classifier()
        crop_model = build_crop_classifier(num_classes=8)
        # A mixed archive, like Copernicus: SAR (2 bands, information-dense)
        # and multispectral (13 bands, information-sparse) scenes.
        truth = sea_ice_field(96, 96, seed=0, ice_extent=0.5)
        pipeline.process_polar_scene(
            sentinel1_scene(truth, seed=0, looks=8), ice_model
        )
        for seed in range(2):
            land = landcover_field(96, 96, seed=seed)
            pipeline.process_agri_scene(
                sentinel2_scene(land, seed=seed), crop_model
            )
        ratio = pipeline.information_ratio()
        assert 0.1 < ratio < 1.0

    def test_ratio_requires_data(self, pipeline):
        with pytest.raises(PipelineError):
            pipeline.information_ratio()
