"""Cache parity: a warm cache may only change *cost*, never answers.

The E19 contract mirrors ``repro.faults``/``repro.obs``/``repro.resilience``:
caches are optional collaborators, the no-cache path is byte-identical to
the seed code, and the cached path must return byte-identical *results*
(its whole point is changing the work, not the answers). Each test drives a
fixed seeded workload twice — cache off vs cache on (cold *and* warm, with
mutations interleaved so invalidation is exercised, not just hits) — and
requires identical outcomes.

Fault-injected federation runs are deliberately compared only cache-off vs
cache-off here: a cache hit skips a remote call, which shifts every later
call's index in the injector's per-endpoint stream, so cached-vs-uncached
equivalence under chaos is not a property the design promises.
"""

import random

from repro.cache import DirHintCache, FederationResultCache, PlanCache
from repro.federation import Endpoint, execute_federated
from repro.geometry import Point, Polygon
from repro.geosparql import GeoStore, geometry_literal
from repro.geotriples import ObjectMap, TriplesMap
from repro.hopsfs import BlockManager, HopsFS
from repro.hopsfs.workload import run_metadata_workload
from repro.obda import Column, Database, VirtualGeoStore
from repro.rdf import GEO, Graph, Literal, Namespace
from repro.rdf.term import XSD_INTEGER
from repro.sparql import evaluate

SEED = 19

EX = Namespace("http://ex.org/")
EXS = "http://ex.org/"
PREFIXES = (
    "PREFIX ex: <http://ex.org/> "
    "PREFIX geo: <http://www.opengis.net/ont/geosparql#> "
    "PREFIX geof: <http://www.opengis.net/def/function/geosparql/> "
)


def solution_digest(solutions):
    return [
        tuple(sorted((str(k), str(v)) for k, v in s.items())) for s in solutions
    ]


# ----------------------------------------------------------------------
# Evaluator
# ----------------------------------------------------------------------

EVALUATOR_QUERIES = [
    PREFIXES + "SELECT ?n WHERE { ?x ex:name ?n } ORDER BY ?n",
    PREFIXES + "SELECT DISTINCT ?c WHERE { ?x ex:crop ?c } ORDER BY ?c LIMIT 3",
    PREFIXES + "SELECT ?x ?a WHERE { ?x ex:age ?a . ?x ex:name ?n } "
    "ORDER BY DESC(?a) OFFSET 1",
    PREFIXES + "SELECT ?c (COUNT(?x) AS ?k) WHERE { ?x ex:crop ?c } GROUP BY ?c",
]


def evaluator_digest(cache):
    rng = random.Random(SEED)
    graph = Graph()
    digest = []
    for round_no in range(6):
        # Mutate between rounds so version-keyed invalidation is on trial.
        for _ in range(10):
            i = rng.randrange(50)
            graph.add(EX[f"p{i}"], EX.name, Literal.from_python(f"name{i}"))
            graph.add(EX[f"p{i}"], EX.age, Literal.from_python(20 + i % 30))
            graph.add(EX[f"p{i}"], EX.crop,
                      Literal.from_python(["wheat", "maize", "rye"][i % 3]))
        for query in EVALUATOR_QUERIES:
            digest.append(solution_digest(evaluate(graph, query, cache=cache)))
    return digest


def test_evaluator_parity():
    assert evaluator_digest(None) == evaluator_digest(PlanCache())


def test_evaluator_shared_cache_parity():
    # One PlanCache shared across two graphs must not cross-contaminate.
    cache = PlanCache()
    assert evaluator_digest(None) == evaluator_digest(cache)
    assert evaluator_digest(None) == evaluator_digest(cache)


# ----------------------------------------------------------------------
# GeoStore
# ----------------------------------------------------------------------

def geostore_digest(plan_cache):
    rng = random.Random(SEED)
    store = GeoStore(plan_cache=plan_cache)
    digest = []
    for round_no in range(5):
        for _ in range(8):
            i = rng.randrange(60)
            store.add(EX[f"f{i}"], GEO.asWKT,
                      geometry_literal(Point(i % 10, i // 10)))
        box = geometry_literal(
            Polygon.box(rng.randrange(5), rng.randrange(5), 8, 8)
        )
        query = (
            PREFIXES
            + "SELECT ?f WHERE { ?f geo:asWKT ?g . "
            + f'FILTER (geof:sfIntersects(?g, "{box.lexical}"^^geo:wktLiteral)) }}'
        )
        digest.append(solution_digest(store.query(query)))
        digest.append(solution_digest(store.query(query)))  # warm repeat
    return digest


def test_geostore_parity():
    assert geostore_digest(None) == geostore_digest(PlanCache())


# ----------------------------------------------------------------------
# VirtualGeoStore (OBDA)
# ----------------------------------------------------------------------

def virtual_store(plan_cache):
    db = Database()
    fields = db.create_table(
        "fields",
        [
            Column("id", "integer"),
            Column("crop", "string"),
            Column("area", "integer"),
            Column("geometry", "geometry"),
        ],
    )
    fields.insert_many(
        [
            {"id": i, "crop": ["wheat", "maize", "rye"][i % 3], "area": 5 + i,
             "geometry": Polygon.box(i * 10, 0, i * 10 + 8, 8)}
            for i in range(12)
        ]
    )
    store = VirtualGeoStore(db, plan_cache=plan_cache)
    store.add_mapping(
        "fields",
        TriplesMap(
            subject_template=EXS + "field/{id}",
            type_iri=EXS + "Field",
            object_maps=[
                ObjectMap(predicate=EXS + "crop", column="crop"),
                ObjectMap(predicate=EXS + "areaHa", column="area",
                          datatype=XSD_INTEGER),
                ObjectMap(predicate=EXS + "geom", column="geometry",
                          is_geometry=True),
            ],
        ),
    )
    return store


VIRTUAL_QUERIES = [
    PREFIXES + "SELECT ?f ?c WHERE { ?f ex:crop ?c }",
    PREFIXES + "SELECT ?f WHERE { ?f ex:areaHa ?a . FILTER (?a > 10) }",
]


def virtual_digest(plan_cache):
    store = virtual_store(plan_cache)
    digest = []
    for query in VIRTUAL_QUERIES * 2:  # repeats exercise the warm path
        digest.append(solution_digest(store.query(query)))
    return digest


def test_virtual_store_parity():
    assert virtual_digest(None) == virtual_digest(PlanCache())


# ----------------------------------------------------------------------
# Federation (fault-free: cached and uncached must agree exactly)
# ----------------------------------------------------------------------

def federation_digest(result_cache):
    crops = Graph("crops")
    weather = Graph("weather")
    for i in range(20):
        crops.add(EX[f"f{i}"], EX.crop, Literal("wheat" if i % 2 else "maize"))
        weather.add(EX[f"f{i}"], EX.rain, Literal.from_python(10 + i))
    endpoints = [Endpoint("crops", crops), Endpoint("weather", weather)]
    query = (
        "PREFIX ex: <http://ex.org/> "
        "SELECT ?f ?c ?r WHERE { ?f ex:crop ?c . ?f ex:rain ?r }"
    )
    digest = []
    for _ in range(3):
        solutions, metrics = execute_federated(
            query, endpoints, result_cache=result_cache
        )
        digest.append((sorted(solution_digest(solutions)), metrics.results,
                       metrics.complete))
    return digest


def test_federation_parity():
    assert federation_digest(None) == federation_digest(FederationResultCache())


# ----------------------------------------------------------------------
# HopsFS (outcomes must not depend on hint-cache capacity or negatives)
# ----------------------------------------------------------------------

def hopsfs_digest(dir_cache):
    fs = HopsFS(
        blocks=BlockManager(node_count=4, block_size=1024, replication=2),
        dir_cache=dir_cache,
    )
    run_metadata_workload(
        fs, operations=600, directories=8, seed=SEED, payload_bytes=64
    )
    # Outcomes only: store round trips and timings are *cost* and are
    # allowed (expected!) to differ with cache capacity.
    return {d: fs.listdir(f"/data/dir{d:04d}") for d in range(8)}


def test_hopsfs_capacity_parity():
    # A capacity-1 cache thrashes but must answer identically.
    assert hopsfs_digest(DirHintCache()) == hopsfs_digest(DirHintCache(capacity=1))


def test_hopsfs_negative_parity():
    assert hopsfs_digest(DirHintCache()) == hopsfs_digest(
        DirHintCache(negative=True)
    )
