"""The federation result cache: epochs, TTL on the sim clock, executor wiring."""

import pytest

from repro.cache import FederationResultCache, MISS
from repro.errors import CacheError
from repro.faults import EndpointFault, FaultInjector, FaultPlan
from repro.federation import Endpoint, execute_federated
from repro.rdf import Graph, Literal, Namespace
from repro.resilience import CircuitBreakerSet
from repro.sparql.ast import TriplePattern, Variable

EX = Namespace("http://ex.org/")
PREFIX = "PREFIX ex: <http://ex.org/> "

QUERY = PREFIX + "SELECT ?f ?c ?r WHERE { ?f ex:crop ?c . ?f ex:rainfall ?r }"


def build_endpoints(injector=None):
    crops = Graph("crops")
    weather = Graph("weather")
    for i in range(4):
        crops.add(EX[f"field{i}"], EX.crop, Literal("wheat" if i % 2 else "maize"))
        weather.add(EX[f"field{i}"], EX.rainfall, Literal.from_python(100 + i * 10))
    return [
        Endpoint("crops", crops, injector=injector),
        Endpoint("weather", weather, injector=injector),
    ]


def pattern(subject=None, predicate=None, obj=None):
    return TriplePattern(
        subject if subject is not None else Variable("s"),
        predicate if predicate is not None else Variable("p"),
        obj if obj is not None else Variable("o"),
    )


class TestCacheUnit:
    def test_miss_is_the_sentinel_not_none(self):
        cache = FederationResultCache()
        assert cache.get("crops", pattern()) is MISS

    def test_empty_result_list_is_a_valid_answer(self):
        cache = FederationResultCache()
        cache.put("crops", pattern(), [])
        assert cache.get("crops", pattern()) == []

    def test_roundtrip(self):
        cache = FederationResultCache()
        cache.put("crops", pattern(), ["t1", "t2"])
        assert cache.get("crops", pattern()) == ["t1", "t2"]

    def test_distinct_patterns_distinct_entries(self):
        cache = FederationResultCache()
        cache.put("crops", pattern(predicate=EX.crop), ["a"])
        assert cache.get("crops", pattern(predicate=EX.rainfall)) is MISS

    def test_epoch_bump_hides_old_entries(self):
        cache = FederationResultCache()
        cache.put("crops", pattern(), ["stale"])
        cache.bump_epoch("crops")
        assert cache.get("crops", pattern()) is MISS
        assert cache.flushes == 1

    def test_epoch_bump_is_per_endpoint(self):
        cache = FederationResultCache()
        cache.put("crops", pattern(), ["a"])
        cache.put("weather", pattern(), ["b"])
        cache.bump_epoch("crops")
        assert cache.get("crops", pattern()) is MISS
        assert cache.get("weather", pattern()) == ["b"]

    def test_ttl_expires_on_the_supplied_clock(self):
        now = [0.0]
        cache = FederationResultCache(ttl_s=10.0, clock=lambda: now[0])
        cache.put("crops", pattern(), ["fresh"])
        now[0] = 5.0
        assert cache.get("crops", pattern()) == ["fresh"]
        now[0] = 10.5
        assert cache.get("crops", pattern()) is MISS
        assert cache.expirations == 1

    def test_expiry_counts_as_a_miss_not_a_hit(self):
        now = [0.0]
        cache = FederationResultCache(ttl_s=1.0, clock=lambda: now[0])
        cache.put("crops", pattern(), ["v"])
        now[0] = 2.0
        cache.get("crops", pattern())
        assert cache.stats["hits"] == 0
        assert cache.stats["misses"] == 1

    def test_ttl_without_clock_rejected(self):
        with pytest.raises(CacheError):
            FederationResultCache(ttl_s=5.0)

    def test_nonpositive_ttl_rejected(self):
        with pytest.raises(CacheError):
            FederationResultCache(ttl_s=0.0, clock=lambda: 0.0)


class TestExecutorIntegration:
    def test_warm_query_issues_no_remote_requests(self):
        endpoints = build_endpoints()
        cache = FederationResultCache()
        cold_solutions, cold_metrics = execute_federated(
            QUERY, endpoints, result_cache=cache
        )
        warm_solutions, warm_metrics = execute_federated(
            QUERY, endpoints, result_cache=cache
        )
        assert warm_solutions == cold_solutions
        assert cold_metrics.requests > 0 and cold_metrics.cache_hits == 0
        assert warm_metrics.requests == 0
        assert warm_metrics.cache_hits > 0

    def test_results_identical_with_and_without_cache(self):
        bare_solutions, _ = execute_federated(QUERY, build_endpoints())
        endpoints = build_endpoints()
        cache = FederationResultCache()
        cold_solutions, _ = execute_federated(QUERY, endpoints, result_cache=cache)
        warm_solutions, _ = execute_federated(QUERY, endpoints, result_cache=cache)
        assert bare_solutions == cold_solutions == warm_solutions

    def test_metrics_cache_hits_zero_without_cache(self):
        _, metrics = execute_federated(QUERY, build_endpoints())
        assert metrics.cache_hits == 0

    def test_dead_endpoint_flushes_its_entries(self):
        plan = FaultPlan(
            seed=7,
            endpoint_faults=(EndpointFault("weather", dead_after_calls=0),),
        )
        endpoints = build_endpoints(injector=FaultInjector(plan))
        cache = FederationResultCache()
        _, metrics = execute_federated(QUERY, endpoints, result_cache=cache)
        assert not metrics.complete
        assert cache.flushes >= 1
        assert cache.epoch("weather") >= 1
        assert cache.epoch("crops") == 0

    def test_breaker_trip_flushes_the_endpoint(self):
        plan = FaultPlan(
            seed=7,
            endpoint_faults=(EndpointFault("weather", error_rate=1.0),),
        )
        endpoints = build_endpoints(injector=FaultInjector(plan))
        cache = FederationResultCache()
        breakers = CircuitBreakerSet(failure_threshold=2, window=4)
        execute_federated(
            QUERY, endpoints, result_cache=cache, breakers=breakers,
        )
        assert breakers.for_key("weather").opens >= 1
        assert cache.epoch("weather") >= 1
        assert cache.epoch("crops") == 0

    def test_plan_and_result_caches_compose(self):
        # The catalogue-level picture: parsed/planned once, answered twice,
        # second time entirely from local state.
        endpoints = build_endpoints()
        result_cache = FederationResultCache()
        for _ in range(2):
            solutions, metrics = execute_federated(
                QUERY, endpoints, result_cache=result_cache
            )
        assert metrics.requests == 0
        assert len(solutions) == 4
