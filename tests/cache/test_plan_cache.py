"""The plan cache: exact invalidation by content version, safe sharing."""

import pytest

from repro.cache import PlanCache
from repro.geometry import Point
from repro.geosparql import GeoStore, geometry_literal
from repro.rdf import GEO, Graph, Literal, Namespace
from repro.sparql import Variable, evaluate
from repro.sparql.algebra import CompileOptions

EX = Namespace("http://ex.org/")
PREFIX = "PREFIX ex: <http://ex.org/> "
GEO_PREFIXES = (
    "PREFIX ex: <http://ex.org/> "
    "PREFIX geo: <http://www.opengis.net/ont/geosparql#> "
    "PREFIX geof: <http://www.opengis.net/def/function/geosparql/> "
)

QUERY = PREFIX + "SELECT ?n WHERE { ?x ex:name ?n } ORDER BY ?n"


def people_graph():
    graph = Graph()
    for key, name in (("alice", "Alice"), ("bob", "Bob")):
        graph.add(EX[key], EX.name, Literal.from_python(name))
    return graph


def names(result):
    return [str(s[Variable("n")].to_python()) for s in result]


class TestGraphVersion:
    def test_version_starts_at_zero(self):
        assert Graph().version == 0

    def test_add_bumps_version(self):
        graph = Graph()
        graph.add(EX.a, EX.p, EX.b)
        assert graph.version == 1

    def test_duplicate_add_does_not_bump(self):
        graph = Graph()
        graph.add(EX.a, EX.p, EX.b)
        graph.add(EX.a, EX.p, EX.b)
        assert graph.version == 1

    def test_remove_bumps_version(self):
        graph = Graph()
        graph.add(EX.a, EX.p, EX.b)
        removed = graph.remove(EX.a, EX.p, EX.b)
        assert removed
        assert graph.version == 2


class TestParseTier:
    def test_parse_memoises_the_ast_object(self):
        cache = PlanCache()
        assert cache.parse(QUERY) is cache.parse(QUERY)
        assert cache.stats["parses"]["hits"] == 1
        assert cache.stats["parses"]["misses"] == 1

    def test_different_text_different_ast(self):
        cache = PlanCache()
        other = PREFIX + "SELECT ?x WHERE { ?x ex:name ?n }"
        assert cache.parse(QUERY) is not cache.parse(other)


class TestPlanTier:
    def test_build_runs_once_per_key(self):
        cache = PlanCache()
        graph = people_graph()
        calls = []
        build = lambda: calls.append(1) or "plan"
        for _ in range(3):
            cache.plan(graph, "q", None, graph.version, build)
        assert len(calls) == 1

    def test_version_bump_forces_rebuild(self):
        cache = PlanCache()
        graph = people_graph()
        calls = []
        build = lambda: calls.append(1) or "plan"
        cache.plan(graph, "q", None, graph.version, build)
        graph.add(EX.carol, EX.name, Literal.from_python("Carol"))
        cache.plan(graph, "q", None, graph.version, build)
        assert len(calls) == 2

    def test_options_are_part_of_the_key(self):
        cache = PlanCache()
        graph = people_graph()
        calls = []
        build = lambda: calls.append(1) or "plan"
        cache.plan(graph, "q", CompileOptions(push_filters=True), 0, build)
        cache.plan(graph, "q", CompileOptions(push_filters=False), 0, build)
        assert len(calls) == 2

    def test_owners_never_collide_in_a_shared_cache(self):
        cache = PlanCache()
        graph_a, graph_b = people_graph(), people_graph()
        cache.plan(graph_a, "q", None, 0, lambda: "plan-a")
        assert cache.plan(graph_b, "q", None, 0, lambda: "plan-b") == "plan-b"

    def test_owner_tokens_survive_for_live_objects(self):
        cache = PlanCache()
        graph = people_graph()
        assert cache.token(graph) == cache.token(graph)

    def test_collected_owner_frees_its_token_slot(self):
        cache = PlanCache()
        cache.token(people_graph())  # owner dies immediately
        import gc

        gc.collect()
        assert len(cache._tokens) == 0


class TestEvaluatorIntegration:
    def test_results_identical_with_and_without_cache(self):
        graph = people_graph()
        cache = PlanCache()
        bare = evaluate(graph, QUERY)
        cold = evaluate(graph, QUERY, cache=cache)
        warm = evaluate(graph, QUERY, cache=cache)
        assert bare == cold == warm
        assert cache.stats["plans"]["hits"] == 1

    def test_mutation_invalidates_cached_plan(self):
        graph = people_graph()
        cache = PlanCache()
        assert names(evaluate(graph, QUERY, cache=cache)) == ["Alice", "Bob"]
        graph.add(EX.carol, EX.name, Literal.from_python("Carol"))
        assert names(evaluate(graph, QUERY, cache=cache)) == [
            "Alice", "Bob", "Carol",
        ]

    def test_ast_queries_take_the_uncached_path(self):
        from repro.sparql import parse_query

        graph = people_graph()
        cache = PlanCache()
        ast = parse_query(QUERY)
        result = evaluate(graph, ast, cache=cache)
        assert names(result) == ["Alice", "Bob"]
        assert cache.stats["plans"]["hits"] == 0
        assert cache.stats["plans"]["misses"] == 0


class TestGeoStoreIntegration:
    def spatial_query(self):
        from repro.geometry import Polygon

        box = geometry_literal(Polygon.box(-1, -1, 6, 6))
        return (
            GEO_PREFIXES
            + "SELECT ?f WHERE { ?f geo:asWKT ?g . "
            + f'FILTER (geof:sfIntersects(?g, "{box.lexical}"^^geo:wktLiteral)) }}'
        )

    def load(self, store):
        for i, (x, y) in enumerate([(0, 0), (5, 5), (20, 20)]):
            store.add(EX[f"f{i}"], GEO.asWKT, geometry_literal(Point(x, y)))
        return store

    def test_warm_query_reuses_the_spatial_plan(self):
        store = self.load(GeoStore(plan_cache=PlanCache()))
        query = self.spatial_query()
        cold = store.query(query)
        warm = store.query(query)
        assert cold == warm
        assert {s[Variable("f")] for s in warm} == {EX.f0, EX.f1}
        assert store.plan_cache.stats["plans"]["hits"] == 1

    def test_new_geometry_invalidates_the_candidate_list(self):
        # The spatial rewrite bakes R-tree candidates into the plan; a
        # cached plan surviving a store mutation would silently drop the
        # new feature. content_version keying prevents exactly that.
        store = self.load(GeoStore(plan_cache=PlanCache()))
        query = self.spatial_query()
        assert {s[Variable("f")] for s in store.query(query)} == {EX.f0, EX.f1}
        store.add(EX.f9, GEO.asWKT, geometry_literal(Point(1, 1)))
        assert {s[Variable("f")] for s in store.query(query)} == {
            EX.f0, EX.f1, EX.f9,
        }

    def test_content_version_tracks_the_graph(self):
        store = GeoStore()
        before = store.content_version
        store.add(EX.f0, GEO.asWKT, geometry_literal(Point(0, 0)))
        assert store.content_version > before

    def test_plan_cache_attachable_post_hoc(self):
        store = self.load(GeoStore())
        store.plan_cache = PlanCache()
        query = self.spatial_query()
        store.query(query)
        store.query(query)
        assert store.plan_cache.stats["plans"]["hits"] == 1


class TestCatalogIntegration:
    def test_catalog_threads_cache_to_its_store(self):
        from repro.catalog import SemanticCatalog

        cache = PlanCache()
        catalog = SemanticCatalog(plan_cache=cache)
        assert catalog.plan_cache is cache
        assert catalog.store.plan_cache is cache
