"""The LRU primitive: deterministic eviction, prefix scoping, accounting."""

import pytest

from repro.cache import LRUCache, MISS
from repro.errors import CacheError
from repro.obs import Observability


class TestBasics:
    def test_miss_returns_sentinel(self):
        cache = LRUCache(capacity=2)
        assert cache.get("a") is MISS

    def test_put_get_roundtrip(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        assert cache.get("a") == 1

    def test_cached_none_is_not_a_miss(self):
        cache = LRUCache(capacity=2)
        cache.put("a", None)
        assert cache.get("a") is None
        assert cache.hits == 1

    def test_capacity_validation(self):
        with pytest.raises(CacheError):
            LRUCache(capacity=0)
        with pytest.raises(CacheError):
            LRUCache(capacity=-3)


class TestEviction:
    def test_coldest_entry_evicted_first(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert "a" not in cache
        assert "b" in cache and "c" in cache
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # a is now the warmest
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache

    def test_peek_and_contains_do_not_refresh(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.peek("a")
        assert "a" in cache
        cache.put("c", 3)  # a is still the coldest
        assert "a" not in cache

    def test_update_refreshes_recency(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_eviction_is_a_pure_function_of_the_call_sequence(self):
        def drive(cache):
            for index in range(40):
                cache.put(index % 7, index)
                cache.get((index * 3) % 7)
            return sorted(cache.keys()), cache.stats

        assert drive(LRUCache(capacity=4)) == drive(LRUCache(capacity=4))


class TestPrefixEviction:
    def test_evicts_exactly_the_subtree(self):
        cache = LRUCache(capacity=16)
        for key in [(), ("data",), ("data", "a"), ("data", "a", "x"), ("data", "b")]:
            cache.put(key, key)
        assert cache.evict_prefix(("data", "a")) == 2
        assert ("data", "a") not in cache
        assert ("data", "a", "x") not in cache
        assert () in cache and ("data",) in cache and ("data", "b") in cache

    def test_empty_prefix_matches_all_tuple_keys(self):
        cache = LRUCache(capacity=16)
        cache.put(("a",), 1)
        cache.put("scalar", 2)
        assert cache.evict_prefix(()) == 1
        assert "scalar" in cache

    def test_sibling_names_sharing_a_string_prefix_survive(self):
        # ("data", "ab") must NOT be evicted by prefix ("data", "a") —
        # scoping is per component, not per character.
        cache = LRUCache(capacity=16)
        cache.put(("data", "a"), 1)
        cache.put(("data", "ab"), 2)
        cache.evict_prefix(("data", "a"))
        assert ("data", "ab") in cache


class TestAccounting:
    def test_stats_shape(self):
        cache = LRUCache(capacity=2, tier="unit")
        cache.put("a", 1)
        cache.get("a")
        cache.get("nope")
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.stats == {
            "size": 2, "capacity": 2, "hits": 1, "misses": 1, "evictions": 1,
        }

    def test_clear_counts_as_evictions(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert cache.evictions == 2
        assert len(cache) == 0

    def test_obs_counters_labelled_by_tier(self):
        obs = Observability()
        cache = LRUCache(capacity=1, tier="unit", obs=obs)
        cache.get("a")            # miss
        cache.put("a", 1)
        cache.get("a")            # hit
        cache.put("b", 2)         # evicts a
        assert obs.metrics.value("cache.hits", tier="unit") == 1
        assert obs.metrics.value("cache.misses", tier="unit") == 1
        assert obs.metrics.value("cache.evictions", tier="unit") == 1
