"""Federation tests: source selection, planning, bind-join execution."""

import pytest

from repro.errors import FederationError
from repro.federation import (
    Endpoint,
    execute_federated,
    plan_query,
    select_sources,
)
from repro.rdf import Graph, IRI, Literal, Namespace
from repro.sparql import Variable
from repro.sparql.ast import TriplePattern
from repro.sparql.parser import parse_query

EX = Namespace("http://ex.org/")
PREFIX = "PREFIX ex: <http://ex.org/> "


@pytest.fixture
def endpoints():
    """Three endpoints with disjoint predicate vocabularies plus one shared."""
    crops = Graph("crops")
    for i in range(5):
        crops.add(EX[f"field{i}"], EX.crop, Literal("wheat" if i % 2 else "maize"))
        crops.add(EX[f"field{i}"], EX.label, Literal(f"field {i}"))

    weather = Graph("weather")
    for i in range(5):
        weather.add(EX[f"field{i}"], EX.rainfall, Literal.from_python(100 + i * 10))

    ice = Graph("ice")
    for i in range(3):
        ice.add(EX[f"floe{i}"], EX.iceType, Literal("old"))
        ice.add(EX[f"floe{i}"], EX.label, Literal(f"floe {i}"))

    return [Endpoint("crops", crops), Endpoint("weather", weather), Endpoint("ice", ice)]


def bgp(query_text):
    query = parse_query(query_text)
    from repro.federation.planner import _extract_bgp

    return _extract_bgp(query)[0]


class TestSourceSelection:
    def test_statistics_prunes_by_predicate(self, endpoints):
        patterns = bgp(PREFIX + "SELECT ?f WHERE { ?f ex:crop ?c . ?f ex:rainfall ?r }")
        selected = select_sources(patterns, endpoints, method="statistics")
        assert [e.name for e in selected[0]] == ["crops"]
        assert [e.name for e in selected[1]] == ["weather"]
        assert all(e.requests == 0 for e in endpoints)

    def test_statistics_shared_predicate(self, endpoints):
        patterns = bgp(PREFIX + "SELECT ?x WHERE { ?x ex:label ?l }")
        selected = select_sources(patterns, endpoints, method="statistics")
        assert {e.name for e in selected[0]} == {"crops", "ice"}

    def test_variable_predicate_selects_all(self, endpoints):
        patterns = bgp(PREFIX + "SELECT ?x WHERE { ?x ?p ?o }")
        selected = select_sources(patterns, endpoints, method="statistics")
        assert len(selected[0]) == 3

    def test_ask_probing_costs_requests(self, endpoints):
        patterns = bgp(PREFIX + "SELECT ?f WHERE { ?f ex:crop ?c }")
        selected = select_sources(patterns, endpoints, method="ask")
        assert [e.name for e in selected[0]] == ["crops"]
        assert sum(e.requests for e in endpoints) == 3

    def test_none_is_broadcast(self, endpoints):
        patterns = bgp(PREFIX + "SELECT ?f WHERE { ?f ex:crop ?c }")
        selected = select_sources(patterns, endpoints, method="none")
        assert len(selected[0]) == 3

    def test_validation(self, endpoints):
        with pytest.raises(FederationError):
            select_sources([], endpoints, method="oracle")
        with pytest.raises(FederationError):
            select_sources([], [], method="statistics")


class TestPlanner:
    def test_plan_orders_selective_first(self, endpoints):
        # ex:iceType has 3 triples; ex:label has 8 -> iceType first.
        plan = plan_query(
            PREFIX + "SELECT ?x WHERE { ?x ex:label ?l . ?x ex:iceType ?t }",
            endpoints,
        )
        assert str(plan.steps[0].pattern.predicate).endswith("iceType")

    def test_plan_prefers_connected_patterns(self, endpoints):
        plan = plan_query(
            PREFIX
            + "SELECT ?f ?r WHERE { ?f ex:crop ?c . ?f ex:rainfall ?r . ?x ex:iceType ?t }",
            endpoints,
        )
        # iceType (3 triples) is cheapest and starts; the crop/rainfall pair
        # must then run back to back (connected via ?f), never interleaved
        # by cost alone.
        assert str(plan.steps[0].pattern.predicate).endswith("iceType")
        second_vars = set(plan.steps[1].pattern.variables())
        third_vars = set(plan.steps[2].pattern.variables())
        assert Variable("f") in second_vars & third_vars

    def test_filters_extracted(self, endpoints):
        plan = plan_query(
            PREFIX + "SELECT ?f WHERE { ?f ex:rainfall ?r . FILTER (?r > 110) }",
            endpoints,
        )
        assert len(plan.filters) == 1

    def test_unsupported_shapes_rejected(self, endpoints):
        with pytest.raises(FederationError):
            plan_query(
                PREFIX + "SELECT ?f WHERE { OPTIONAL { ?f ex:crop ?c } }", endpoints
            )
        with pytest.raises(FederationError):
            plan_query(PREFIX + "ASK { ?f ex:crop ?c }", endpoints)

    def test_total_sources(self, endpoints):
        plan = plan_query(
            PREFIX + "SELECT ?f WHERE { ?f ex:crop ?c . ?f ex:rainfall ?r }",
            endpoints,
        )
        assert plan.total_sources == 2


class TestExecution:
    def test_cross_endpoint_join(self, endpoints):
        solutions, metrics = execute_federated(
            PREFIX
            + "SELECT ?f ?c ?r WHERE { ?f ex:crop ?c . ?f ex:rainfall ?r }",
            endpoints,
        )
        assert len(solutions) == 5
        by_field = {s[Variable("f")]: s for s in solutions}
        assert by_field[EX.field2][Variable("r")] == Literal.from_python(120)
        assert metrics.results == 5

    def test_filter_applied(self, endpoints):
        solutions, _ = execute_federated(
            PREFIX
            + "SELECT ?f WHERE { ?f ex:rainfall ?r . FILTER (?r >= 130) }",
            endpoints,
        )
        assert {s[Variable("f")] for s in solutions} == {EX.field3, EX.field4}

    def test_matches_centralised_answer(self, endpoints):
        """Federated result == union graph evaluated centrally."""
        from repro.sparql import evaluate

        union = Graph()
        for endpoint in endpoints:
            union.add_all(iter(endpoint.graph))
        query = (
            PREFIX
            + "SELECT ?f ?c ?r WHERE { ?f ex:crop ?c . ?f ex:rainfall ?r . "
            "FILTER (?r < 140) }"
        )
        central = evaluate(union, query)
        federated, _ = execute_federated(query, endpoints)
        canonical = lambda sols: sorted(
            sorted((v.name, repr(t)) for v, t in s.items()) for s in sols
        )
        assert canonical(federated) == canonical(central)

    def test_source_selection_reduces_requests(self, endpoints):
        query = (
            PREFIX + "SELECT ?f ?c ?r WHERE { ?f ex:crop ?c . ?f ex:rainfall ?r }"
        )
        _, selected = execute_federated(query, endpoints, source_selection="statistics")
        _, broadcast = execute_federated(query, endpoints, source_selection="none")
        assert selected.requests < broadcast.requests
        assert selected.bindings_shipped <= broadcast.bindings_shipped

    def test_bind_join_selectivity(self, endpoints):
        # Bound subject in the second pattern: each remote match call carries
        # the binding, so the weather endpoint ships only matching rows.
        query = (
            PREFIX
            + 'SELECT ?r WHERE { ?f ex:crop "maize" . ?f ex:rainfall ?r }'
        )
        solutions, metrics = execute_federated(query, endpoints)
        assert len(solutions) == 3  # fields 0, 2, 4 are maize
        weather = next(e for e in endpoints if e.name == "weather")
        assert weather.bindings_shipped == 3

    def test_distinct(self, endpoints):
        solutions, _ = execute_federated(
            PREFIX + "SELECT DISTINCT ?c WHERE { ?f ex:crop ?c }", endpoints
        )
        assert len(solutions) == 2

    def test_empty_result_short_circuits(self, endpoints):
        solutions, metrics = execute_federated(
            PREFIX + 'SELECT ?f WHERE { ?f ex:crop "rice" . ?f ex:rainfall ?r }',
            endpoints,
        )
        assert solutions == []
        # The rainfall pattern never ran: no solutions to bind.
        weather = next(e for e in endpoints if e.name == "weather")
        assert weather.requests == 0
