"""Degradation invariants: ``complete`` is exactly "no endpoint was lost".

Pins the satellite fix for the executor's dead-marking bug: a transient
``TimeoutExceeded`` (or retries exhausted over retryable errors) must NOT
permanently kill an endpoint the way ``EndpointDown`` does. The invariants:

* ``metrics.complete`` is False iff at least one endpoint was actually
  lost (proven permanently dead), never for transient terminal failures;
* every terminal failure counts in ``endpoint_failures``; the transient
  subset is mirrored in ``transient_failures``;
* an endpoint that timed out on one pattern still serves later patterns.
"""

import pytest

from repro.errors import TimeoutExceeded
from repro.faults import EndpointFault, FaultInjector, FaultPlan, RetryPolicy
from repro.federation import Endpoint, execute_federated
from repro.rdf import Graph, Literal, Namespace

EX = Namespace("http://ex.org/")

QUERY = (
    "PREFIX ex: <http://ex.org/> "
    "SELECT ?f ?c ?r WHERE { ?f ex:crop ?c . ?f ex:rain ?r }"
)


def build_endpoints(plan=None, rows=20):
    injector = FaultInjector(plan) if plan is not None else None
    crops = Graph("crops")
    weather = Graph("weather")
    for i in range(rows):
        crops.add(EX[f"f{i}"], EX.crop, Literal("wheat"))
        weather.add(EX[f"f{i}"], EX.rain, Literal.from_python(10 + i))
    return [
        Endpoint("crops", crops, injector=injector),
        Endpoint("weather", weather, injector=injector),
    ]


def test_transient_timeouts_do_not_doom_the_endpoint():
    # weather times out on every call; a 2-attempt policy exhausts its
    # retries (RetryExhausted over a retryable error) on the first fetch.
    plan = FaultPlan(
        seed=1,
        endpoint_faults=(EndpointFault("weather", timeout_rate=1.0),),
    )
    endpoints = build_endpoints(plan)
    solutions, metrics = execute_federated(
        QUERY, endpoints, retry_policy=RetryPolicy(max_attempts=2, jitter=0.0)
    )
    # The endpoint failed terminally but transiently: the answer is
    # incomplete in practice (no rain rows) yet no endpoint was LOST,
    # so complete stays True and the failure is booked as transient.
    assert metrics.complete
    assert metrics.endpoint_failures.get("weather", 0) > 0
    assert metrics.transient_failures == sum(
        metrics.endpoint_failures.values()
    )
    assert solutions == []


def test_permanent_death_flips_complete_false():
    plan = FaultPlan(
        seed=1,
        endpoint_faults=(EndpointFault("weather", dead_after_calls=0),),
    )
    endpoints = build_endpoints(plan)
    solutions, metrics = execute_federated(
        QUERY, endpoints, retry_policy=RetryPolicy(max_attempts=2, jitter=0.0)
    )
    assert not metrics.complete
    assert metrics.transient_failures == 0
    assert metrics.endpoint_failures.get("weather", 0) > 0


def test_timed_out_endpoint_serves_later_patterns():
    # weather times out exactly once (first call), then recovers. With a
    # single-attempt policy, that one failure is terminal for the first
    # fetch — but the endpoint must stay in play afterwards.
    class OneTimeout(Endpoint):
        def __init__(self, name, graph):
            super().__init__(name, graph)
            self._timeouts_left = 1

        def match(self, pattern, deadline=None):
            if self._timeouts_left:
                self._timeouts_left -= 1
                raise TimeoutExceeded(f"endpoint {self.name} timed out")
            return super().match(pattern, deadline=deadline)

    crops = Graph("crops")
    weather = Graph("weather")
    for i in range(4):
        crops.add(EX[f"f{i}"], EX.crop, Literal("wheat"))
        weather.add(EX[f"f{i}"], EX.rain, Literal.from_python(10 + i))
    endpoints = [Endpoint("crops", crops), OneTimeout("weather", weather)]
    # Pattern order: crop first, then rain — the first rain fetch (for the
    # first solution) times out, the remaining solutions' fetches succeed.
    solutions, metrics = execute_federated(
        QUERY, endpoints, retry_policy=RetryPolicy(max_attempts=1, jitter=0.0)
    )
    assert metrics.complete  # nothing was lost...
    assert metrics.transient_failures == 1  # ...one fetch failed in passing
    assert 0 < len(solutions) < 4  # partial rows, surviving endpoint reused


def test_complete_false_iff_endpoint_lost_across_seeds():
    # Sweep chaos seeds: in every run, complete must equal "no endpoint
    # was condemned", i.e. transient-only runs never flip it.
    for seed in range(12):
        plan = FaultPlan(
            seed=seed,
            endpoint_faults=(
                EndpointFault("weather", error_rate=0.3, timeout_rate=0.2),
            ),
        )
        endpoints = build_endpoints(plan, rows=10)
        _, metrics = execute_federated(
            QUERY, endpoints,
            retry_policy=RetryPolicy(max_attempts=3, jitter=0.0),
        )
        assert metrics.complete  # transient faults only: nothing is lost
        failures = sum(metrics.endpoint_failures.values())
        assert metrics.transient_failures == failures
