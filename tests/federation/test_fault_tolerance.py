"""Federation under chaos (E17): retries, graceful degradation, determinism."""

import pytest

from repro.errors import TimeoutExceeded
from repro.faults import EndpointFault, FaultInjector, FaultPlan, RetryPolicy
from repro.federation import (
    Endpoint,
    EndpointDown,
    EndpointUnavailable,
    execute_federated,
)
from repro.rdf import Graph, Literal, Namespace

EX = Namespace("http://ex.org/")
PREFIX = "PREFIX ex: <http://ex.org/> "
QUERY = PREFIX + "SELECT ?f ?c ?r WHERE { ?f ex:crop ?c . ?f ex:rainfall ?r }"


def build_endpoints(plan=None):
    injector = FaultInjector(plan) if plan is not None else None
    crops = Graph("crops")
    weather = Graph("weather")
    for i in range(5):
        crops.add(EX[f"field{i}"], EX.crop, Literal("wheat" if i % 2 else "maize"))
        weather.add(EX[f"field{i}"], EX.rainfall, Literal.from_python(100 + i * 10))
    return [
        Endpoint("crops", crops, injector=injector),
        Endpoint("weather", weather, injector=injector),
    ]


class TestEndpointFaults:
    def test_transient_error_raises_retryable(self):
        plan = FaultPlan(
            seed=1,
            endpoint_faults=(EndpointFault("crops", error_rate=0.89),),
        )
        endpoint = build_endpoints(plan)[0]
        with pytest.raises((EndpointUnavailable, TimeoutExceeded)):
            for _ in range(50):
                endpoint.ask(_pattern())

    def test_dead_endpoint_raises_permanent(self):
        plan = FaultPlan(
            endpoint_faults=(EndpointFault("crops", dead_after_calls=0),)
        )
        endpoint = build_endpoints(plan)[0]
        with pytest.raises(EndpointDown):
            endpoint.match(_pattern())
        assert endpoint.requests == 0  # failed calls are not served

    def test_no_injector_never_fails(self):
        endpoint = build_endpoints()[0]
        for _ in range(20):
            endpoint.ask(_pattern())
        assert endpoint.requests == 20


class TestGracefulDegradation:
    def test_retry_recovers_complete_results(self):
        plan = FaultPlan(
            seed=4,
            endpoint_faults=(
                EndpointFault("weather", error_rate=0.5),
            ),
        )
        baseline, _ = execute_federated(QUERY, build_endpoints())
        solutions, metrics = execute_federated(
            QUERY,
            build_endpoints(plan),
            retry_policy=RetryPolicy(max_attempts=20, jitter=0.0),
        )
        assert metrics.complete
        assert metrics.retries > 0
        assert metrics.endpoint_failures == {}
        assert len(solutions) == len(baseline) == 5

    def test_dead_endpoint_yields_partial_results(self):
        plan = FaultPlan(
            endpoint_faults=(EndpointFault("weather", dead_after_calls=0),)
        )
        solutions, metrics = execute_federated(
            QUERY,
            build_endpoints(plan),
            retry_policy=RetryPolicy(max_attempts=3, jitter=0.0),
        )
        assert not metrics.complete
        assert metrics.endpoint_failures.get("weather", 0) >= 1
        # The join needs weather bindings, so the answer shrinks to nothing —
        # but the query returns instead of raising.
        assert solutions == []

    def test_graceful_off_propagates(self):
        plan = FaultPlan(
            endpoint_faults=(EndpointFault("weather", dead_after_calls=0),)
        )
        with pytest.raises(EndpointDown):
            execute_federated(QUERY, build_endpoints(plan), graceful=False)

    def test_failure_free_run_is_complete(self):
        solutions, metrics = execute_federated(QUERY, build_endpoints())
        assert metrics.complete
        assert metrics.endpoint_failures == {}
        assert metrics.retries == 0
        assert len(solutions) == 5

    def test_none_plan_matches_no_injector(self):
        plain, plain_metrics = execute_federated(QUERY, build_endpoints())
        chaos, chaos_metrics = execute_federated(
            QUERY, build_endpoints(FaultPlan.none())
        )
        assert chaos == plain
        assert chaos_metrics == plain_metrics


class TestDeterminism:
    def run_once(self):
        plan = FaultPlan(
            seed=21,
            endpoint_faults=(
                EndpointFault("crops", error_rate=0.3, timeout_rate=0.1),
                EndpointFault("weather", error_rate=0.3),
            ),
        )
        return execute_federated(
            QUERY,
            build_endpoints(plan),
            retry_policy=RetryPolicy(max_attempts=6, jitter=0.0),
        )

    def test_same_seed_same_outcome(self):
        solutions_a, metrics_a = self.run_once()
        solutions_b, metrics_b = self.run_once()
        assert solutions_a == solutions_b
        assert metrics_a == metrics_b


def _pattern():
    from repro.sparql import Variable
    from repro.sparql.ast import TriplePattern

    return TriplePattern(Variable("f"), EX.crop, Variable("c"))
