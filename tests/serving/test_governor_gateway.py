"""Gateway-side governance (E23): budgets, kills, typed error translation.

The contract under test: internal governor errors never reach a tenant
raw (leaders *and* followers see :class:`~repro.errors.Shed`, an expired
follower sees its own :class:`~repro.errors.TimeoutExceeded` — never a
late result), :meth:`Gateway.kill` stops a coalesced in-flight entry
without leaking a single admission ticket, and
:meth:`Gateway.budget_for` derives deadlines that narrow but never widen.
"""

import pytest

from repro.errors import (
    QueryBudgetExceeded,
    QueryCancelled,
    Shed,
    TimeoutExceeded,
)
from repro.geosparql import GeoStore
from repro.rdf.ntriples import parse_ntriples
from repro.resilience.admission import AdmissionController
from repro.resilience.deadline import Deadline
from repro.serving import (
    CallableBackend,
    Gateway,
    GatewayRequest,
    StoreBackend,
    TenantConfig,
)
from repro.serving.gateway import EXPIRED, FAILED, OK
from repro.sparql.governor import BudgetPolicy, QueryBudget

API_KEY = "key-alpha"
QUERY = "SELECT ?s ?o WHERE { ?s <urn:p> ?o }"
CROSS = "SELECT ?x ?y WHERE { ?x <urn:p> ?v . ?y <urn:q> ?w }"


def build_store(pairs=24):
    store = GeoStore()
    lines = []
    for index in range(pairs):
        lines.append(f'<urn:a{index}> <urn:p> "{index}" .')
        lines.append(f'<urn:b{index}> <urn:q> "{index}" .')
    for triple in parse_ntriples("\n".join(lines)):
        store.add(*triple)
    return store


def make_gateway(backend, policy=None, clock=None, admission=None):
    gateway = Gateway(
        backend, clock=clock, admission=admission, budget_policy=policy
    )
    gateway.register_tenant(TenantConfig(name="alpha", api_key=API_KEY))
    gateway.register_tenant(TenantConfig(name="beta", api_key="key-beta"))
    return gateway


def submit(gateway, api_key=API_KEY, query=QUERY, kind="sparql",
           deadline=None, options=None):
    request = GatewayRequest(
        api_key, query, kind=kind, deadline=deadline, options=options
    )
    gateway.submit(request)
    return request


class TestErrorTranslation:
    """Internal engine errors must surface as typed per-tenant errors."""

    @pytest.mark.parametrize(
        "internal, reason",
        [
            (
                QueryBudgetExceeded(
                    "boom", resource="rows", observed=10, limit=5
                ),
                "query_budget",
            ),
            (QueryCancelled("boom", reason="killed"), "cancelled"),
        ],
    )
    def test_leader_and_follower_get_shed(self, internal, reason):
        def explode(query):
            raise internal

        gateway = make_gateway(CallableBackend(explode))
        leader = submit(gateway, kind="default")
        follower = submit(gateway, api_key="key-beta", kind="default")
        assert follower.follower
        entry = gateway.next_dispatch()
        gateway.execute(entry)
        for member in (leader, follower):
            assert member.settled and member.category == FAILED
            assert isinstance(member.error, Shed)
            assert member.error.reason == reason
            # The internal type must not leak through the typed wrapper.
            assert not isinstance(member.error, type(internal))
        assert "boom" not in str(leader.error)
        gateway.assert_drained()

    def test_expired_follower_gets_timeout_not_late_result(self):
        now = [0.0]
        gateway = make_gateway(
            CallableBackend(lambda q: "answer"), clock=lambda: now[0]
        )
        leader = submit(gateway, kind="default")
        follower = submit(
            gateway,
            api_key="key-beta",
            kind="default",
            deadline=Deadline(0.5, clock=lambda: now[0]),
        )
        assert follower.follower
        entry = gateway.next_dispatch()
        now[0] = 1.0  # the execution outlives the follower's deadline
        settled = gateway.complete(entry, result="answer")
        assert len(settled) == 2
        assert leader.category == OK and leader.result == "answer"
        assert follower.category == EXPIRED
        assert isinstance(follower.error, TimeoutExceeded)
        assert follower.result is None
        gateway.assert_drained()

    def test_budget_exceeded_from_real_engine(self):
        gateway = make_gateway(
            StoreBackend(build_store()), policy=BudgetPolicy(max_rows=64)
        )
        with pytest.raises(Shed) as info:
            gateway.query(API_KEY, CROSS, kind="sparql")
        assert info.value.reason == "query_budget"
        gateway.assert_drained()


class TestCoalesceUnderKill:
    def test_kill_running_entry_settles_all_members_typed(self):
        admission = AdmissionController(max_in_flight=8)
        gateway = make_gateway(
            StoreBackend(build_store()),
            policy=BudgetPolicy(max_rows=100_000),
            admission=admission,
        )
        leader = submit(gateway)
        followers = [
            submit(gateway, api_key="key-beta"),
            submit(gateway),
        ]
        assert all(f.follower for f in followers)
        assert gateway.tickets_issued == 3
        entry = gateway.next_dispatch()
        gateway.kill(entry, reason="operator abort")
        assert entry.cancel.cancelled
        # kill() must not settle anyone eagerly — the engine unwinds at its
        # next checkpoint and the outcome fans out through complete().
        assert not leader.settled
        gateway.execute(entry)
        for member in [leader] + followers:
            assert member.settled and member.category == FAILED
            assert isinstance(member.error, Shed)
            assert member.error.reason == "cancelled"
        assert gateway.tickets_issued == gateway.tickets_released == 3
        gateway.assert_drained()

    def test_kill_queued_entry_fails_at_first_checkpoint(self):
        gateway = make_gateway(
            StoreBackend(build_store()), policy=BudgetPolicy(max_rows=100_000)
        )
        request = submit(gateway)
        gateway.kill(request.entry, reason="pre-dispatch kill")
        entry = gateway.next_dispatch()
        gateway.execute(entry)
        assert request.category == FAILED
        assert isinstance(request.error, Shed)
        assert request.error.reason == "cancelled"
        gateway.assert_drained()

    def test_next_identical_query_re_executes(self):
        gateway = make_gateway(
            StoreBackend(build_store()), policy=BudgetPolicy(max_rows=100_000)
        )
        first = submit(gateway)
        entry = gateway.next_dispatch()
        gateway.kill(entry)
        gateway.execute(entry)
        assert first.category == FAILED
        # The killed entry is closed; an identical query opens a fresh one
        # with a live token and succeeds.
        second = submit(gateway)
        assert not second.follower
        assert second.entry is not entry
        assert not second.entry.cancel.cancelled
        entry2 = gateway.next_dispatch()
        gateway.execute(entry2)
        assert second.category == OK
        assert len(second.result) == 24
        assert gateway.executions == 2
        gateway.assert_drained()


class TestBudgetDerivation:
    def test_no_policy_means_no_budget(self):
        gateway = make_gateway(StoreBackend(build_store()))
        request = submit(gateway)
        assert gateway.budget_for(request.entry) is None
        gateway.execute(gateway.next_dispatch())
        assert request.category == OK

    def test_disabled_policy_means_no_budget(self):
        gateway = make_gateway(
            StoreBackend(build_store()), policy=BudgetPolicy()
        )
        request = submit(gateway)
        assert gateway.budget_for(request.entry) is None
        gateway.execute(gateway.next_dispatch())
        assert request.category == OK

    def test_member_deadline_narrowed_never_widened(self):
        now = [0.0]
        gateway = make_gateway(
            StoreBackend(build_store()),
            policy=BudgetPolicy(max_seconds=10.0),
            clock=lambda: now[0],
        )
        member_deadline = Deadline(2.0, clock=lambda: now[0], label="member")
        request = submit(gateway, deadline=member_deadline)
        budget = gateway.budget_for(request.entry)
        # The cap (10s) exceeds the member's remaining 2s: derive keeps 2s.
        assert budget.deadline.budget_s == pytest.approx(2.0)
        assert budget.deadline.label == "execution"
        assert budget.cancel is request.entry.cancel
        gateway.execute(gateway.next_dispatch())

    def test_tight_cap_narrows_member_deadline(self):
        gateway = make_gateway(
            StoreBackend(build_store()), policy=BudgetPolicy(max_seconds=0.5)
        )
        request = submit(gateway, deadline=Deadline(30.0))
        budget = gateway.budget_for(request.entry)
        assert budget.deadline.budget_s == pytest.approx(0.5)
        gateway.execute(gateway.next_dispatch())

    def test_no_member_deadline_gets_fresh_one(self):
        gateway = make_gateway(
            StoreBackend(build_store()),
            policy=BudgetPolicy(max_seconds=0.25, checkpoint_charge_s=1e-6),
        )
        request = submit(gateway)
        budget = gateway.budget_for(request.entry)
        assert budget.deadline is not None
        assert budget.deadline.budget_s == pytest.approx(0.25)
        assert budget.checkpoint_charge_s == 1e-6
        gateway.execute(gateway.next_dispatch())

    def test_caps_copied_from_policy(self):
        gateway = make_gateway(
            StoreBackend(build_store()),
            policy=BudgetPolicy(max_rows=7, max_bytes=4096),
        )
        request = submit(gateway)
        budget = gateway.budget_for(request.entry)
        assert isinstance(budget, QueryBudget)
        assert budget.max_rows == 7
        assert budget.max_bytes == 4096
        assert budget.label == "sparql:alpha"
        gateway.execute(gateway.next_dispatch())


class TestSupportsBudgetGating:
    def test_callable_backend_never_receives_budget(self):
        seen = []

        def record(query):
            seen.append(query)
            return "ok"

        backend = CallableBackend(record)
        assert backend.supports_budget is False
        gateway = make_gateway(backend, policy=BudgetPolicy(max_rows=1))
        # A budget exists for the entry, but the adapter's pre-E23
        # signature must never see a budget kwarg — the call just works.
        result = gateway.query(API_KEY, "q", kind="default")
        assert result == "ok"
        assert seen == ["q"]

    def test_store_backend_advertises_support(self):
        assert StoreBackend.supports_budget is True
