"""Deterministic unit behaviour of the weighted-fair queue."""

import pytest

from repro.errors import ServingError
from repro.serving import WeightedFairQueue


def drain(queue):
    order = []
    while queue:
        order.append(queue.pop())
    return order


def test_fifo_within_one_tenant():
    queue = WeightedFairQueue()
    for i in range(5):
        queue.push("a", 1.0, i)
    assert [item for _, item in drain(queue)] == [0, 1, 2, 3, 4]


def test_equal_weights_interleave():
    queue = WeightedFairQueue()
    for i in range(3):
        queue.push("a", 1.0, f"a{i}")
        queue.push("b", 1.0, f"b{i}")
    tenants = [tenant for tenant, _ in drain(queue)]
    # Neither tenant is ever two dispatches ahead of the other.
    for prefix in range(1, len(tenants) + 1):
        counts = tenants[:prefix]
        assert abs(counts.count("a") - counts.count("b")) <= 1


def test_weights_set_throughput_ratio():
    queue = WeightedFairQueue()
    for i in range(60):
        queue.push("heavy", 2.0, i)
        queue.push("light", 1.0, i)
    first_30 = [tenant for tenant, _ in (queue.pop() for _ in range(30))]
    # Weight 2 tenant gets ~2/3 of the dispatches while both are backlogged.
    assert first_30.count("heavy") == pytest.approx(20, abs=2)


def test_idle_tenant_earns_no_credit():
    queue = WeightedFairQueue()
    for i in range(10):
        queue.push("busy", 1.0, f"busy{i}")
    for _ in range(8):
        queue.pop()
    # A tenant arriving late starts at the current virtual time — it gets
    # fair service from now on, not a burst of banked back-service: it is
    # served within the next two dispatches (not after the whole remaining
    # backlog), and the busy tenant keeps one of those two slots.
    queue.push("newcomer", 1.0, "n0")
    tenants = [queue.pop()[0], queue.pop()[0]]
    assert "newcomer" in tenants
    assert "busy" in tenants


def test_pop_empty_returns_none():
    queue = WeightedFairQueue()
    assert queue.pop() is None
    assert queue.peek() is None


def test_pending_accounting():
    queue = WeightedFairQueue()
    queue.push("a", 1.0, 1)
    queue.push("a", 1.0, 2)
    queue.push("b", 1.0, 3)
    assert queue.pending() == 3
    assert queue.pending("a") == 2
    assert queue.queued_tenants() == ["a", "b"]
    queue.pop()
    assert queue.pending("a") == 1
    assert queue.pushed == 3 and queue.popped == 1


def test_determinism_ties_break_by_arrival():
    def trace():
        queue = WeightedFairQueue()
        for i in range(20):
            queue.push(f"t{i % 4}", 1.0, i)
        return [item for _, item in drain(queue)]

    assert trace() == trace()


def test_rejects_bad_weight_and_cost():
    queue = WeightedFairQueue()
    with pytest.raises(ServingError):
        queue.push("a", 0.0, 1)
    with pytest.raises(ServingError):
        queue.push("a", 1.0, 1, cost=0.0)
