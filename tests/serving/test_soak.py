"""The E21 soak harness: invariants, thresholds, determinism."""

import pytest

from repro.errors import ServingError
from repro.serving import (
    ServingSoakConfig,
    ServingSoakReport,
    TenantOutcome,
    jain_index,
    run_comparison,
    run_serving_soak,
)

# Small but fully-loaded run: overload, bursts and coalescing all engage.
CONFIG = ServingSoakConfig(seed=21, requests=6000)


@pytest.fixture(scope="module")
def comparison():
    return run_comparison(CONFIG)


class TestJainIndex:
    def test_even_is_one(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_winner_take_all_is_one_over_n(self):
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jain_index([]) == 0.0
        assert jain_index([0, 0]) == 0.0


class TestInvariants:
    def test_reports_verify(self, comparison):
        bare, guarded = comparison
        bare.verify()
        guarded.verify()

    def test_every_arrival_accounted(self, comparison):
        bare, guarded = comparison
        for report in comparison:
            assert report.arrivals == CONFIG.requests
            for outcome in report.per_tenant.values():
                assert outcome.accounted == outcome.arrivals

    def test_no_ticket_leak(self, comparison):
        _, guarded = comparison
        assert guarded.residual["ticket_leak"] == 0
        assert guarded.residual["queued"] == 0
        assert guarded.residual["coalesce_in_flight"] == 0

    def test_verify_catches_accounting_leak(self):
        report = ServingSoakReport(protected=True)
        report.per_tenant["t"] = TenantOutcome("t", arrivals=5, ok=3)
        with pytest.raises(ServingError, match="accounting leak"):
            report.verify()

    def test_verify_catches_residual(self):
        report = ServingSoakReport(protected=True)
        report.residual["ticket_leak"] = 1
        with pytest.raises(ServingError, match="did not drain"):
            report.verify()


class TestThresholds:
    """The issue's acceptance bar, on the scaled-down in-tree run."""

    def test_gateway_restores_fairness(self, comparison):
        bare, guarded = comparison
        assert guarded.jain_goodput >= 0.9
        assert bare.jain_goodput < 0.5

    def test_gateway_cuts_tail_latency(self, comparison):
        bare, guarded = comparison
        assert guarded.p99_latency_s <= CONFIG.deadline_s
        assert guarded.p99_latency_s < bare.p99_latency_s

    def test_coalescing_cuts_duplicate_executions(self, comparison):
        bare, guarded = comparison
        assert guarded.duplicate_executions_avoided > 0
        assert guarded.executions < guarded.served

    def test_unprotected_serves_everything_late(self, comparison):
        bare, _ = comparison
        # FIFO never refuses: everything is eventually served, mostly late.
        assert bare.served == CONFIG.requests
        assert bare.total("late") > bare.ok


class TestCoalescingKnob:
    def test_disabled_coalescing_means_no_sharing(self):
        config = ServingSoakConfig(seed=21, requests=2000, coalesce=False)
        report = run_serving_soak(config, protected=True)
        report.verify()
        assert report.coalesced == 0
        assert report.duplicate_executions_avoided == 0


class TestDeterminism:
    def test_same_seed_same_report(self, comparison):
        bare, guarded = comparison
        bare2, guarded2 = run_comparison(CONFIG)
        assert bare.summary() == bare2.summary()
        assert guarded.summary() == guarded2.summary()
        assert guarded.latencies_s == guarded2.latencies_s
        assert guarded.tenant_rows() == guarded2.tenant_rows()

    def test_different_seed_differs(self, comparison):
        _, guarded = comparison
        other = run_serving_soak(
            ServingSoakConfig(seed=22, requests=6000), protected=True
        )
        assert other.summary() != guarded.summary()
