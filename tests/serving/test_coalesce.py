"""Request coalescing: shared executions, per-member deadlines."""

import pytest

from repro.errors import ServingError, TimeoutExceeded
from repro.serving import (
    CallableBackend,
    Coalescer,
    Gateway,
    GatewayRequest,
    TenantConfig,
)
from repro.serving.coalesce import QUEUED
from repro.serving.gateway import EXPIRED, OK
from repro.resilience.deadline import Deadline


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_gateway(clock, fn=lambda q: f"result:{q}", version_fn=None):
    gateway = Gateway(
        CallableBackend(fn, version_fn=version_fn), clock=clock
    )
    gateway.register_tenant(TenantConfig(name="a", api_key="key-a"))
    gateway.register_tenant(TenantConfig(name="b", api_key="key-b"))
    return gateway


class TestCoalescerTable:
    def test_open_attach_close(self):
        table = Coalescer()
        entry = table.open(("k", "q", None, 0), "leader")
        assert entry.state == QUEUED
        assert table.lookup(("k", "q", None, 0)) is entry
        table.attach(entry, "follower")
        assert entry.leader == "leader"
        assert entry.followers == ["follower"]
        assert table.opened == 1 and table.attached == 1
        table.close(entry)
        assert table.lookup(("k", "q", None, 0)) is None
        assert table.in_flight == 0

    def test_double_open_and_double_close_rejected(self):
        table = Coalescer()
        entry = table.open(("k", "q", None, 0), "leader")
        with pytest.raises(ServingError):
            table.open(("k", "q", None, 0), "other")
        table.close(entry)
        with pytest.raises(ServingError):
            table.close(entry)
        with pytest.raises(ServingError):
            table.attach(entry, "late")

    def test_key_reusable_after_close(self):
        table = Coalescer()
        first = table.open(("k", "q", None, 0), "l1")
        table.close(first)
        second = table.open(("k", "q", None, 0), "l2")
        assert second is not first
        assert table.opened == 2


class TestGatewayCoalescing:
    def test_identical_queries_share_one_execution(self):
        clock = Clock()
        calls = []
        gateway = make_gateway(clock, fn=lambda q: calls.append(q) or len(calls))
        leader = gateway.submit(GatewayRequest("key-a", "q1"))
        follower = gateway.submit(GatewayRequest("key-b", "q1"))
        assert follower.entry is leader.entry
        assert follower.follower and not leader.follower
        entry = gateway.next_dispatch()
        settled = gateway.execute(entry)
        assert len(settled) == 2
        assert calls == ["q1"]  # one backend call for two requests
        assert leader.result == follower.result == 1
        gateway.assert_drained()

    def test_version_change_splits_the_key(self):
        clock = Clock()
        version = [0]
        gateway = make_gateway(clock, version_fn=lambda: version[0])
        leader = gateway.submit(GatewayRequest("key-a", "q1"))
        version[0] += 1  # a store mutation lands mid-flight
        fresh = gateway.submit(GatewayRequest("key-b", "q1"))
        # The post-mutation request must not share the stale execution.
        assert fresh.entry is not leader.entry
        assert not fresh.follower

    def test_attach_while_running(self):
        clock = Clock()
        gateway = make_gateway(clock)
        leader = gateway.submit(GatewayRequest("key-a", "q1"))
        entry = gateway.next_dispatch()
        assert entry is leader.entry
        # The entry is mid-execution; an identical arrival still coalesces.
        follower = gateway.submit(GatewayRequest("key-b", "q1"))
        assert follower.entry is entry
        gateway.complete(entry, result="r")
        assert leader.result == follower.result == "r"
        gateway.assert_drained()

    def test_disabled_coalescing_never_shares(self):
        clock = Clock()
        gateway = Gateway(
            CallableBackend(lambda q: q), clock=clock, coalesce=False
        )
        gateway.register_tenant(TenantConfig(name="a", api_key="key-a"))
        first = gateway.submit(GatewayRequest("key-a", "q1"))
        second = gateway.submit(GatewayRequest("key-a", "q1"))
        assert first.entry is not second.entry
        assert gateway.coalescer.attached == 0


class TestFollowerDeadlines:
    """Satellite regression: sharing an execution never shares a deadline."""

    def test_expired_follower_gets_timeout_not_late_result(self):
        clock = Clock()
        gateway = make_gateway(clock)
        leader = gateway.submit(
            GatewayRequest(
                "key-a", "q1", deadline=Deadline(10.0, clock=clock)
            )
        )
        follower = gateway.submit(
            GatewayRequest(
                "key-b", "q1", deadline=Deadline(0.5, clock=clock)
            )
        )
        assert follower.entry is leader.entry
        entry = gateway.next_dispatch()
        # The execution takes 1s — longer than the follower's 0.5s budget.
        clock.now = 1.0
        gateway.complete(entry, result="late-answer")
        assert leader.category == OK and leader.result == "late-answer"
        assert follower.category == EXPIRED
        assert follower.result is None  # the late result is withheld
        assert isinstance(follower.error, TimeoutExceeded)
        gateway.assert_drained()

    def test_follower_expired_before_dispatch_fails_fast(self):
        clock = Clock()
        gateway = make_gateway(clock)
        leader = gateway.submit(
            GatewayRequest(
                "key-a", "q1", deadline=Deadline(10.0, clock=clock)
            )
        )
        follower = gateway.submit(
            GatewayRequest(
                "key-b", "q1", deadline=Deadline(0.2, clock=clock)
            )
        )
        clock.now = 0.5  # follower expires while the entry is still queued
        entry = gateway.next_dispatch()
        assert entry is leader.entry
        assert follower.settled and follower.category == EXPIRED
        assert isinstance(follower.error, TimeoutExceeded)
        gateway.complete(entry, result="r")
        assert leader.result == "r"
        gateway.assert_drained()

    def test_entry_with_all_members_expired_is_dropped(self):
        clock = Clock()
        calls = []
        gateway = make_gateway(clock, fn=lambda q: calls.append(q))
        request = gateway.submit(
            GatewayRequest(
                "key-a", "q1", deadline=Deadline(0.1, clock=clock)
            )
        )
        clock.now = 1.0
        # Nobody is waiting: the entry is dropped, no backend time spent.
        assert gateway.next_dispatch() is None
        assert request.category == EXPIRED
        assert calls == []
        gateway.assert_drained()

    def test_leader_expired_follower_alive_still_executes(self):
        clock = Clock()
        gateway = make_gateway(clock)
        leader = gateway.submit(
            GatewayRequest(
                "key-a", "q1", deadline=Deadline(0.1, clock=clock)
            )
        )
        follower = gateway.submit(
            GatewayRequest(
                "key-b", "q1", deadline=Deadline(10.0, clock=clock)
            )
        )
        clock.now = 0.5
        entry = gateway.next_dispatch()
        assert entry is not None
        assert leader.category == EXPIRED
        # The execution deadline is the surviving member's own.
        assert gateway.execution_deadline(entry) is follower.deadline
        gateway.complete(entry, result="r")
        assert follower.result == "r"
        gateway.assert_drained()
