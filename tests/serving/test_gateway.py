"""Gateway pipeline: auth, quotas, shedding, fairness, ticket discipline."""

import pytest

from repro.errors import (
    AuthFailed,
    CircuitOpen,
    Overloaded,
    QuotaExceeded,
    ServingError,
    Shed,
)
from repro.obs import Observability
from repro.resilience.admission import (
    AdmissionController,
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
)
from repro.serving import (
    CallableBackend,
    Gateway,
    GatewayRequest,
    TenantConfig,
)
from repro.serving.gateway import FAILED, OK


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_gateway(clock=None, fn=lambda q: f"r:{q}", **gateway_kwargs):
    gateway = Gateway(
        CallableBackend(fn), clock=clock, **gateway_kwargs
    )
    gateway.register_tenant(TenantConfig(name="a", api_key="key-a"))
    return gateway


class TestIntake:
    def test_sync_query_round_trip(self):
        gateway = make_gateway()
        assert gateway.query("key-a", "hello") == "r:hello"
        session = gateway.tenants.session("a")
        assert session.submitted == session.ok == 1
        gateway.assert_drained()

    def test_bad_api_key(self):
        gateway = make_gateway()
        with pytest.raises(AuthFailed):
            gateway.query("wrong-key", "q")
        assert gateway.tenants.auth_failures == 1
        gateway.assert_drained()

    def test_unknown_backend_kind(self):
        gateway = make_gateway()
        with pytest.raises(ServingError, match="no backend"):
            gateway.query("key-a", "q", kind="nope")
        # The failed submit unwound its own state: nothing leaked.
        gateway.assert_drained()

    def test_rate_quota_enforced_with_hint(self):
        clock = Clock()
        gateway = Gateway(CallableBackend(lambda q: q), clock=clock)
        gateway.register_tenant(
            TenantConfig(name="t", api_key="k", rate=1.0, burst=1.0)
        )
        assert gateway.query("k", "q1") == "q1"
        with pytest.raises(QuotaExceeded) as excinfo:
            gateway.query("k", "q2")
        assert excinfo.value.retry_after_s == pytest.approx(1.0)
        clock.now = 1.0  # waiting out the hint restores service
        assert gateway.query("k", "q2") == "q2"
        gateway.assert_drained()


class TestShedding:
    def test_overloaded_becomes_typed_shed(self):
        admission = AdmissionController(max_in_flight=1, max_queue=0)
        gateway = make_gateway(admission=admission, shed_retry_after_s=0.25)
        blocker = admission.admit()  # someone else holds the only slot
        with pytest.raises(Shed) as excinfo:
            gateway.query("key-a", "q")
        error = excinfo.value
        assert error.tenant == "a"
        assert error.reason == "overloaded"
        assert error.retry_after_s == 0.25
        assert error.retryable
        blocker.release()
        assert gateway.query("key-a", "q") == "r:q"
        gateway.assert_drained()

    def test_batch_priority_shed_under_pressure(self):
        admission = AdmissionController(max_in_flight=1, max_queue=4)
        gateway = Gateway(CallableBackend(lambda q: q), admission=admission)
        gateway.register_tenant(
            TenantConfig(
                name="batch", api_key="kb", priority=PRIORITY_BATCH
            )
        )
        gateway.register_tenant(
            TenantConfig(
                name="live", api_key="kl", priority=PRIORITY_INTERACTIVE
            )
        )
        blocker = admission.admit()  # fast region full -> under pressure
        with pytest.raises(Shed):
            gateway.query("kb", "q")  # batch class is shed at the queue
        assert gateway.query("kl", "q") == "q"  # interactive still queues
        blocker.release()
        gateway.assert_drained()

    def test_backend_overload_translated_not_leaked(self):
        def exploding(query):
            raise Overloaded("internal bulkhead detail", scope="kvstore")

        gateway = make_gateway(fn=exploding)
        with pytest.raises(Shed) as excinfo:
            gateway.query("key-a", "q")
        assert excinfo.value.tenant == "a"
        assert excinfo.value.reason == "overloaded"
        gateway.assert_drained()

    def test_breaker_open_translated(self):
        def broken(query):
            raise CircuitOpen("endpoint x breaker", breaker="x")

        gateway = make_gateway(fn=broken)
        with pytest.raises(Shed) as excinfo:
            gateway.query("key-a", "q")
        assert excinfo.value.reason == "breaker_open"
        gateway.assert_drained()

    def test_ordinary_backend_error_passes_through(self):
        def failing(query):
            raise ValueError("malformed query")

        gateway = make_gateway(fn=failing)
        with pytest.raises(ValueError, match="malformed query"):
            gateway.query("key-a", "q")
        assert gateway.tenants.session("a").failed == 1
        gateway.assert_drained()


class TestTicketDiscipline:
    """The audited exactly-once release, path by path."""

    def test_success_path_releases(self):
        admission = AdmissionController(max_in_flight=4)
        gateway = make_gateway(admission=admission)
        gateway.query("key-a", "q")
        assert gateway.tickets_issued == gateway.tickets_released == 1
        assert admission.in_flight == 0

    def test_backend_error_path_releases(self):
        admission = AdmissionController(max_in_flight=4)

        def failing(query):
            raise RuntimeError("boom")

        gateway = make_gateway(fn=failing, admission=admission)
        with pytest.raises(RuntimeError):
            gateway.query("key-a", "q")
        assert gateway.tickets_issued == gateway.tickets_released == 1
        assert admission.in_flight == 0

    def test_submit_exception_path_releases(self):
        admission = AdmissionController(max_in_flight=4)
        gateway = make_gateway(admission=admission)
        # An unknown backend kind fails *after* the ticket was issued.
        with pytest.raises(ServingError):
            gateway.submit(GatewayRequest("key-a", "q", kind="nope"))
        assert gateway.tickets_issued == gateway.tickets_released == 1
        assert admission.in_flight == 0
        assert gateway.tenants.session("a").in_flight == 0

    def test_coalesced_followers_each_release_their_own(self):
        admission = AdmissionController(max_in_flight=8)
        clock = Clock()
        gateway = make_gateway(clock=clock, admission=admission)
        gateway.register_tenant(TenantConfig(name="b", api_key="key-b"))
        gateway.submit(GatewayRequest("key-a", "q"))
        gateway.submit(GatewayRequest("key-b", "q"))  # follower
        assert gateway.tickets_issued == 2
        entry = gateway.next_dispatch()
        gateway.complete(entry, result="r")
        assert gateway.tickets_released == 2
        assert admission.in_flight == 0
        gateway.assert_drained()

    def test_double_settle_is_an_error(self):
        gateway = make_gateway()
        request = gateway.submit(GatewayRequest("key-a", "q"))
        entry = gateway.next_dispatch()
        gateway.complete(entry, result="r")
        with pytest.raises(ServingError, match="settled twice"):
            gateway._settle(request, OK, result="again")

    def test_assert_drained_reports_leaks(self):
        gateway = make_gateway()
        gateway.submit(GatewayRequest("key-a", "q"))  # left queued
        with pytest.raises(ServingError, match="not drained"):
            gateway.assert_drained()


class TestFairDispatch:
    def test_cross_tenant_weighted_order(self):
        gateway = Gateway(CallableBackend(lambda q: q))
        gateway.register_tenant(
            TenantConfig(name="heavy", api_key="kh", weight=2.0)
        )
        gateway.register_tenant(
            TenantConfig(name="light", api_key="kl", weight=1.0)
        )
        for i in range(12):
            gateway.submit(GatewayRequest("kh", f"h{i}"))
            gateway.submit(GatewayRequest("kl", f"l{i}"))
        order = []
        for _ in range(9):
            entry = gateway.next_dispatch()
            order.append(entry.leader.session.name)
            gateway.complete(entry, result=None)
        # Weight 2 tenant gets ~2/3 of early dispatches.
        assert order.count("heavy") == pytest.approx(6, abs=1)

    def test_metrics_emitted(self):
        obs = Observability()
        gateway = Gateway(CallableBackend(lambda q: q), obs=obs)
        gateway.register_tenant(TenantConfig(name="a", api_key="key-a"))
        gateway.query("key-a", "q")
        snapshot = obs.metrics.snapshot()
        counter_names = {series["name"] for series in snapshot["counters"]}
        assert {"serving.requests", "serving.ok",
                "serving.executions"} <= counter_names
        histogram_names = {
            series["name"] for series in snapshot["histograms"]
        }
        assert "serving.latency_s" in histogram_names
