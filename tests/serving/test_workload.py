"""The seeded open-loop workload generator."""

import math
from collections import Counter

import pytest

from repro.errors import ServingError
from repro.serving import (
    WorkloadConfig,
    burst_windows,
    generate_arrivals,
    rate_at,
    zipf_weights,
)

SMALL = WorkloadConfig(seed=7, requests=4000, base_rate=800.0)


def test_zipf_weights_normalised_and_skewed():
    weights = zipf_weights(8, 1.5)
    assert sum(weights) == pytest.approx(1.0)
    assert weights == sorted(weights, reverse=True)
    # Zipf(1.5) over 8 ranks: the head takes about half the mass.
    assert weights[0] > 0.5 > weights[1]
    with pytest.raises(ServingError):
        zipf_weights(0, 1.5)


def test_arrival_count_and_ordering():
    arrivals = generate_arrivals(SMALL)
    assert len(arrivals) == SMALL.requests
    times = [a.at_s for a in arrivals]
    assert times == sorted(times)
    assert times[0] > 0.0


def test_determinism():
    first = generate_arrivals(SMALL)
    second = generate_arrivals(SMALL)
    assert first == second
    different = generate_arrivals(
        WorkloadConfig(seed=8, requests=4000, base_rate=800.0)
    )
    assert different != first


def test_tenant_skew_matches_zipf():
    arrivals = generate_arrivals(SMALL)
    counts = Counter(a.tenant for a in arrivals)
    weights = zipf_weights(SMALL.tenants, SMALL.zipf_s)
    for tenant, weight in enumerate(weights):
        share = counts[tenant] / len(arrivals)
        assert share == pytest.approx(weight, abs=0.03)


def test_query_pool_is_hot():
    arrivals = generate_arrivals(SMALL)
    counts = Counter(a.query for a in arrivals)
    assert set(counts) <= set(range(SMALL.query_pool))
    # The hot query is requested far more than a uniform draw would give.
    assert counts.most_common(1)[0][1] > 2 * len(arrivals) / SMALL.query_pool


def test_priority_mix():
    arrivals = generate_arrivals(SMALL)
    batch = sum(1 for a in arrivals if a.priority == 0)
    assert batch / len(arrivals) == pytest.approx(
        SMALL.batch_fraction, abs=0.03
    )


def test_burst_windows_raise_the_rate():
    windows = burst_windows(SMALL)
    assert len(windows) == SMALL.burst_count
    for start, end in windows:
        assert end - start == pytest.approx(SMALL.burst_duration_s)
        mid = (start + end) / 2.0
        in_burst = rate_at(SMALL, windows, mid)
        outside = rate_at(SMALL, (), mid)
        assert in_burst == pytest.approx(outside * SMALL.burst_factor)


def test_diurnal_modulation():
    config = WorkloadConfig(
        seed=7, diurnal_amplitude=0.5, diurnal_period_s=40.0
    )
    peak = rate_at(config, (), 10.0)  # sin peaks a quarter-period in
    trough = rate_at(config, (), 30.0)
    assert peak == pytest.approx(config.base_rate * 1.5)
    assert trough == pytest.approx(config.base_rate * 0.5)
    assert math.isclose(
        rate_at(config, (), 0.0), config.base_rate, rel_tol=1e-9
    )


def test_config_validation():
    with pytest.raises(ServingError):
        WorkloadConfig(tenants=0)
    with pytest.raises(ServingError):
        WorkloadConfig(diurnal_amplitude=1.5)
    with pytest.raises(ServingError):
        WorkloadConfig(burst_factor=0.5)
    with pytest.raises(ServingError):
        WorkloadConfig(batch_fraction=1.5)
