"""Hypothesis properties of the weighted-fair queue.

The three guarantees the gateway's fairness story rests on:

* **work conservation** — the queue never withholds service: any pop on a
  non-empty queue yields an item, and everything pushed is eventually
  popped;
* **no starvation** — once an item is queued, the number of dispatches
  before it is served is bounded by its finish tag: each competitor can
  slot at most ``ceil(w_competitor / w_item)`` later arrivals below it;
* **weight-proportional throughput** — under sustained backlog, dispatch
  counts track ``weight / total_weight`` to within a constant per tenant.
"""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.serving import WeightedFairQueue

weights_lists = st.lists(
    st.floats(min_value=0.5, max_value=8.0, allow_nan=False),
    min_size=2,
    max_size=5,
)


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    tenants=st.integers(min_value=1, max_value=6),
    operations=st.integers(min_value=1, max_value=200),
)
@settings(max_examples=60, deadline=None)
def test_work_conservation(seed, tenants, operations):
    """pop() yields an item iff the queue is non-empty; counts balance."""
    rng = random.Random(seed)
    queue = WeightedFairQueue()
    live = 0
    pushed = 0
    for i in range(operations):
        if rng.random() < 0.6:
            queue.push(f"t{rng.randrange(tenants)}", rng.uniform(0.5, 4.0), i)
            live += 1
            pushed += 1
        else:
            popped = queue.pop()
            assert (popped is not None) == (live > 0)
            if popped is not None:
                live -= 1
        assert len(queue) == live
    drained = 0
    while queue.pop() is not None:
        drained += 1
    assert drained == live
    assert queue.pushed == pushed
    assert queue.popped == pushed


@given(weights=weights_lists, seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=60, deadline=None)
def test_no_starvation_bound(weights, seed):
    """A queued item is dispatched within its tag-derived bound even while
    every other tenant keeps pushing fresh work after every dispatch."""
    rng = random.Random(seed)
    target_weight = weights[0]
    adversaries = weights[1:]
    queue = WeightedFairQueue()
    backlog = rng.randrange(0, 20)
    for index, weight in enumerate(adversaries):
        for i in range(backlog):
            queue.push(f"adv{index}", weight, f"adv{index}-{i}")
    queued_before = len(queue)
    queue.push("target", target_weight, "x")
    bound = (
        queued_before
        + sum(math.ceil(w / target_weight) for w in adversaries)
        + 1
    )
    for dispatch in range(1, bound + 1):
        popped = queue.pop()
        assert popped is not None
        if popped[1] == "x":
            break
        # The adversaries never let up: each pushes again after every
        # dispatch, so only the tag discipline protects the target.
        for index, weight in enumerate(adversaries):
            queue.push(f"adv{index}", weight, f"more{index}-{dispatch}")
    else:
        raise AssertionError(
            f"target not dispatched within bound of {bound}"
        )


@given(weights=weights_lists, dispatches=st.integers(min_value=20, max_value=300))
@settings(max_examples=60, deadline=None)
def test_weight_proportional_throughput(weights, dispatches):
    """Backlogged tenants receive dispatch shares ~ weight/total."""
    queue = WeightedFairQueue()
    # Prefill everyone past the dispatch horizon: sustained backlog.
    for index, weight in enumerate(weights):
        for i in range(dispatches + 1):
            queue.push(f"t{index}", weight, i)
    served = {f"t{index}": 0 for index in range(len(weights))}
    for _ in range(dispatches):
        tenant, _ = queue.pop()
        served[tenant] += 1
    total_weight = sum(weights)
    for index, weight in enumerate(weights):
        expected = dispatches * weight / total_weight
        # Finish-tag WFQ tracks the fluid (GPS) allocation to within a
        # couple of unit-cost items per tenant.
        assert abs(served[f"t{index}"] - expected) <= 3.0
