"""Disabled-path parity: a default gateway changes no answers.

The E21 contract extends the E17–E20 convention one layer up: the gateway
is an *optional* front door, and with every knob at its default — one
tenant, no quotas, no admission controller, no deadline — routing a query
through ``Gateway.query`` is byte-identical to calling the backend
directly. Each test runs a fixed seeded workload twice, direct vs gated,
and requires identical digests.
"""

import random
from datetime import datetime

from repro.catalog import SemanticCatalog
from repro.federation import Endpoint, execute_federated
from repro.geometry import Point, Polygon
from repro.geosparql import GeoStore, geometry_literal
from repro.raster.products import ProductArchive
from repro.rdf import GEO, Graph, Literal, Namespace
from repro.serving import (
    CatalogBackend,
    FederationBackend,
    Gateway,
    StoreBackend,
    TenantConfig,
)

SEED = 21

EX = Namespace("http://ex.org/")
PREFIXES = (
    "PREFIX ex: <http://ex.org/> "
    "PREFIX geo: <http://www.opengis.net/ont/geosparql#> "
    "PREFIX geof: <http://www.opengis.net/def/function/geosparql/> "
)

API_KEY = "parity-key"


def default_gateway(backend):
    """A gateway with every knob at its default and one open tenant."""
    gateway = Gateway(backend)
    gateway.register_tenant(TenantConfig(name="solo", api_key=API_KEY))
    return gateway


def solution_digest(solutions):
    return [
        tuple(sorted((str(k), str(v)) for k, v in s.items()))
        for s in solutions
    ]


# ----------------------------------------------------------------------
# GeoStore (raw SPARQL backend)
# ----------------------------------------------------------------------

def build_store():
    rng = random.Random(SEED)
    store = GeoStore()
    for _ in range(40):
        i = rng.randrange(60)
        store.add(
            EX[f"f{i}"], GEO.asWKT,
            geometry_literal(Point(i % 10, i // 10)),
        )
        store.add(EX[f"f{i}"], EX.crop,
                  Literal(["wheat", "maize", "rye"][i % 3]))
    return store


def store_queries():
    rng = random.Random(SEED + 1)
    queries = []
    for _ in range(6):
        box = geometry_literal(
            Polygon.box(rng.randrange(5), rng.randrange(5), 8, 8)
        )
        queries.append(
            PREFIXES
            + "SELECT ?f ?c WHERE { ?f geo:asWKT ?g . ?f ex:crop ?c . "
            + f'FILTER (geof:sfIntersects(?g, "{box.lexical}"'
            + "^^geo:wktLiteral)) } ORDER BY ?f"
        )
    return queries


def test_store_parity():
    direct_store = build_store()
    direct = [
        solution_digest(direct_store.query(q)) for q in store_queries()
    ]
    gateway = default_gateway(StoreBackend(build_store()))
    gated = [
        solution_digest(gateway.query(API_KEY, q, kind="sparql"))
        for q in store_queries()
    ]
    assert direct == gated
    gateway.assert_drained()


def test_store_parity_survives_mutations():
    """Interleaved writes move the content version; answers still match."""

    def run(store, ask):
        rng = random.Random(SEED + 2)
        digest = []
        for round_no in range(4):
            for _ in range(5):
                i = rng.randrange(60)
                store.add(
                    EX[f"g{i}"], GEO.asWKT,
                    geometry_literal(Point(i % 8, i // 8)),
                )
            query = (
                PREFIXES + "SELECT ?f WHERE { ?f geo:asWKT ?g } ORDER BY ?f"
            )
            digest.append(solution_digest(ask(query)))
        return digest

    direct_store = build_store()
    direct = run(direct_store, direct_store.query)
    gated_store = build_store()
    gateway = default_gateway(StoreBackend(gated_store))
    gated = run(
        gated_store, lambda q: gateway.query(API_KEY, q, kind="sparql")
    )
    assert direct == gated
    gateway.assert_drained()


# ----------------------------------------------------------------------
# Semantic catalogue
# ----------------------------------------------------------------------

def build_catalog():
    catalog = SemanticCatalog()
    archive = ProductArchive(
        extent=(0.0, 50.0, 30.0, 80.0),
        start=datetime(2017, 1, 1),
        days=120,
        seed=SEED,
    )
    catalog.add_products(archive.generate(12))
    return catalog


CATALOG_QUERY = (
    "SELECT ?p ?m WHERE { ?p eop:mission ?m } ORDER BY ?p"
)


def test_catalog_parity():
    direct = solution_digest(build_catalog().query(CATALOG_QUERY))
    gateway = default_gateway(CatalogBackend(build_catalog()))
    gated = solution_digest(
        gateway.query(API_KEY, CATALOG_QUERY, kind="catalog")
    )
    assert direct == gated
    gateway.assert_drained()


# ----------------------------------------------------------------------
# Federation
# ----------------------------------------------------------------------

def build_endpoints():
    crops = Graph("crops")
    weather = Graph("weather")
    for i in range(30):
        crops.add(EX[f"f{i}"], EX.crop,
                  Literal("wheat" if i % 2 else "maize"))
        weather.add(EX[f"f{i}"], EX.rain, Literal.from_python(10 + i))
    return [Endpoint("crops", crops), Endpoint("weather", weather)]


FEDERATED_QUERY = (
    "PREFIX ex: <http://ex.org/> "
    "SELECT ?f ?c ?r WHERE { ?f ex:crop ?c . ?f ex:rain ?r }"
)


def federation_digest(solutions, metrics):
    return (
        sorted(
            tuple(sorted((str(k), str(v)) for k, v in s.items()))
            for s in solutions
        ),
        metrics.requests,
        metrics.bindings_shipped,
        metrics.results,
        metrics.complete,
    )


def test_federation_parity():
    direct = federation_digest(
        *execute_federated(FEDERATED_QUERY, build_endpoints())
    )
    gateway = default_gateway(FederationBackend(build_endpoints()))
    gated = federation_digest(
        *gateway.query(API_KEY, FEDERATED_QUERY, kind="federation")
    )
    assert direct == gated
    gateway.assert_drained()
