"""Tenant identity, token buckets and quota accounting."""

import pytest

from repro.errors import AuthFailed, QuotaExceeded, ServingError
from repro.serving import TenantConfig, TenantRegistry, TokenBucket
from repro.serving.tenant import TenantSession


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)

    def test_refills_continuously(self):
        bucket = TokenBucket(rate=10.0, burst=1.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        # 0.1s at 10/s refills exactly one token.
        assert bucket.try_take(0.1)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0)
        assert bucket.try_take(0.0)
        # A long idle period cannot bank more than `burst` tokens.
        bucket._refill(100.0)
        assert bucket.tokens == 2.0

    def test_retry_after_is_exact(self):
        bucket = TokenBucket(rate=4.0, burst=1.0)
        assert bucket.try_take(0.0)
        # Empty bucket at rate 4/s: one token is 0.25s away.
        assert bucket.retry_after(0.0) == pytest.approx(0.25)
        # Waiting exactly that long makes the next take succeed.
        assert bucket.try_take(0.25)

    def test_retry_after_zero_when_token_available(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.retry_after(0.0) == 0.0

    def test_time_never_runs_backwards(self):
        bucket = TokenBucket(rate=10.0, burst=1.0)
        assert bucket.try_take(1.0)
        # A stale timestamp must not refill (or crash) the bucket.
        assert not bucket.try_take(0.5)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ServingError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ServingError):
            TokenBucket(rate=1.0, burst=0.5)


class TestTenantConfig:
    def test_validation(self):
        with pytest.raises(ServingError):
            TenantConfig(name="", api_key="k")
        with pytest.raises(ServingError):
            TenantConfig(name="t", api_key="k", weight=0.0)
        with pytest.raises(ServingError):
            TenantConfig(name="t", api_key="k", rate=-1.0)
        with pytest.raises(ServingError):
            TenantConfig(name="t", api_key="k", max_in_flight=0)

    def test_defaults_are_unlimited(self):
        config = TenantConfig(name="t", api_key="k")
        session = TenantSession(config)
        for _ in range(1000):
            session.check_quota(0.0)  # never raises


class TestQuota:
    def test_rate_quota_rejects_with_hint(self):
        session = TenantSession(
            TenantConfig(name="t", api_key="k", rate=2.0, burst=1.0)
        )
        session.check_quota(0.0)
        with pytest.raises(QuotaExceeded) as excinfo:
            session.check_quota(0.0)
        error = excinfo.value
        assert error.tenant == "t"
        assert error.reason == "rate"
        assert error.retry_after_s == pytest.approx(0.5)
        assert error.retryable
        assert session.quota_rejected == 1
        # Waiting out the hint succeeds.
        session.check_quota(0.5)

    def test_in_flight_cap(self):
        session = TenantSession(
            TenantConfig(name="t", api_key="k", max_in_flight=2)
        )
        session.in_flight = 2
        with pytest.raises(QuotaExceeded) as excinfo:
            session.check_quota(0.0)
        assert excinfo.value.reason == "in_flight"
        session.in_flight = 1
        session.check_quota(0.0)


class TestRegistry:
    def test_register_and_authenticate(self):
        registry = TenantRegistry()
        registry.register(TenantConfig(name="a", api_key="key-a"))
        assert registry.authenticate("key-a").name == "a"
        assert registry.session("a").name == "a"
        assert len(registry) == 1

    def test_unknown_key_fails_and_counts(self):
        registry = TenantRegistry()
        with pytest.raises(AuthFailed):
            registry.authenticate("nope")
        assert registry.auth_failures == 1
        # AuthFailed is deliberately non-retryable (not a FaultError).
        from repro.errors import FaultError

        assert not issubclass(AuthFailed, FaultError)

    def test_duplicate_key_and_name_rejected(self):
        registry = TenantRegistry()
        registry.register(TenantConfig(name="a", api_key="k1"))
        with pytest.raises(ServingError):
            registry.register(TenantConfig(name="b", api_key="k1"))
        with pytest.raises(ServingError):
            registry.register(TenantConfig(name="a", api_key="k2"))
