"""BIND and VALUES tests."""

import pytest

from repro.errors import SPARQLError, SPARQLSyntaxError
from repro.rdf import Graph, IRI, Literal, Namespace
from repro.sparql import Variable, evaluate
from repro.sparql.ast import BindPattern, ValuesPattern
from repro.sparql.parser import parse_query

EX = Namespace("http://ex.org/")
PREFIX = "PREFIX ex: <http://ex.org/> "


@pytest.fixture
def graph():
    g = Graph()
    for name, price in (("apple", 2), ("pear", 3), ("plum", 5)):
        g.add(EX[name], EX.price, Literal.from_python(price))
    return g


class TestParser:
    def test_bind_parsed(self):
        q = parse_query(
            PREFIX + "SELECT ?y WHERE { ?x ex:price ?p . BIND (?p * 2 AS ?y) }"
        )
        binds = [c for c in q.where.children if isinstance(c, BindPattern)]
        assert len(binds) == 1
        assert binds[0].variable == Variable("y")

    def test_bind_requires_as_variable(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query(PREFIX + "SELECT ?y WHERE { BIND (1 + 2 AS 3) }")

    def test_values_single_variable(self):
        q = parse_query(
            PREFIX + 'SELECT ?x WHERE { VALUES ?x { ex:apple ex:pear } ?x ex:price ?p }'
        )
        [values] = [c for c in q.where.children if isinstance(c, ValuesPattern)]
        assert values.variables == [Variable("x")]
        assert len(values.rows) == 2

    def test_values_multi_variable_with_undef(self):
        q = parse_query(
            PREFIX
            + "SELECT ?a ?b WHERE { VALUES (?a ?b) { (1 2) (3 UNDEF) } }"
        )
        [values] = [c for c in q.where.children if isinstance(c, ValuesPattern)]
        assert len(values.variables) == 2
        assert values.rows[1][1] is None

    def test_values_row_arity_checked(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query(PREFIX + "SELECT ?a WHERE { VALUES (?a ?b) { (1) } }")

    def test_values_no_variables_in_rows(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query(PREFIX + "SELECT ?a WHERE { VALUES ?a { ?b } }")


class TestBindEvaluation:
    def test_bind_computes(self, graph):
        result = evaluate(
            graph,
            PREFIX + "SELECT ?x ?double WHERE { ?x ex:price ?p . "
            "BIND (?p * 2 AS ?double) }",
        )
        doubles = {
            str(s[Variable("x")]).split("/")[-1]: s[Variable("double")].to_python()
            for s in result
        }
        assert doubles == {"apple": 4, "pear": 6, "plum": 10}

    def test_bind_then_filter(self, graph):
        result = evaluate(
            graph,
            PREFIX + "SELECT ?x WHERE { ?x ex:price ?p . "
            "BIND (?p * 2 AS ?d) FILTER (?d > 5) }",
        )
        assert len(result) == 2

    def test_bind_error_leaves_unbound(self, graph):
        # STRLEN of a number errors -> ?n unbound, solutions survive.
        result = evaluate(
            graph,
            PREFIX + "SELECT ?x ?n WHERE { ?x ex:price ?p . "
            "BIND (?p / 0 AS ?n) }",
        )
        assert len(result) == 3
        assert all(Variable("n") not in s for s in result)

    def test_bind_constant_string(self, graph):
        result = evaluate(
            graph,
            PREFIX + 'SELECT ?x ?src WHERE { ?x ex:price ?p . '
            'BIND ("catalogue" AS ?src) }',
        )
        assert all(s[Variable("src")] == Literal("catalogue") for s in result)

    def test_rebinding_rejected(self, graph):
        with pytest.raises(SPARQLError):
            evaluate(
                graph,
                PREFIX + "SELECT ?x WHERE { ?x ex:price ?p . BIND (1 AS ?p) }",
            )

    def test_bind_before_patterns_scopes_left(self, graph):
        # BIND at the start extends the empty solution; later patterns join.
        result = evaluate(
            graph,
            PREFIX + "SELECT ?x ?c WHERE { BIND (7 AS ?c) ?x ex:price ?p }",
        )
        assert len(result) == 3
        assert all(s[Variable("c")].to_python() == 7 for s in result)


class TestValuesEvaluation:
    def test_values_restricts_join(self, graph):
        result = evaluate(
            graph,
            PREFIX
            + "SELECT ?x ?p WHERE { VALUES ?x { ex:apple ex:plum } ?x ex:price ?p }",
        )
        names = {str(s[Variable("x")]).split("/")[-1] for s in result}
        assert names == {"apple", "plum"}

    def test_values_after_patterns(self, graph):
        result = evaluate(
            graph,
            PREFIX
            + "SELECT ?x WHERE { ?x ex:price ?p . VALUES ?p { 3 } }",
        )
        assert len(result) == 1

    def test_values_multi_column(self, graph):
        result = evaluate(
            graph,
            PREFIX
            + "SELECT ?x ?label WHERE { ?x ex:price ?p . "
            + 'VALUES (?x ?label) { (ex:apple "A") (ex:pear "P") } }',
        )
        labels = {str(s[Variable("label")]) for s in result}
        assert labels == {"A", "P"}

    def test_undef_leaves_variable_free(self, graph):
        result = evaluate(
            graph,
            PREFIX
            + "SELECT ?x ?p WHERE { ?x ex:price ?p . "
            + 'VALUES (?x ?p) { (ex:apple UNDEF) (UNDEF 5) } }',
        )
        names = {str(s[Variable("x")]).split("/")[-1] for s in result}
        assert names == {"apple", "plum"}

    def test_standalone_values(self, graph):
        result = evaluate(
            graph, PREFIX + "SELECT ?n WHERE { VALUES ?n { 1 2 3 } }"
        )
        assert sorted(s[Variable("n")].to_python() for s in result) == [1, 2, 3]
