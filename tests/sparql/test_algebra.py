"""Algebra compilation and optimisation tests, plus a semantics property test."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import Graph, IRI, Namespace
from repro.sparql import Variable, evaluate
from repro.sparql.algebra import (
    CompileOptions,
    FilterOp,
    JoinOp,
    ScanOp,
    compile_group,
    expression_variables,
    order_patterns,
    pattern_selectivity,
)
from repro.sparql.ast import (
    BGP,
    BinaryOp,
    FilterPattern,
    GroupPattern,
    TermExpr,
    TriplePattern,
    VarExpr,
)
from repro.rdf.term import Literal
from repro.sparql.parser import parse_query

EX = Namespace("http://ex.org/")


def var(name):
    return Variable(name)


class TestSelectivity:
    def test_fully_bound_most_selective(self):
        fully = TriplePattern(EX.s, EX.p, EX.o)
        spo_var = TriplePattern(var("s"), var("p"), var("o"))
        assert pattern_selectivity(fully) < pattern_selectivity(spo_var)

    def test_bound_so_beats_bound_s(self):
        so = TriplePattern(EX.s, var("p"), EX.o)
        s_only = TriplePattern(EX.s, var("p"), var("o"))
        assert pattern_selectivity(so) < pattern_selectivity(s_only)

    def test_statistics_break_ties(self):
        g = Graph()
        for i in range(50):
            g.add(EX[f"s{i}"], EX.common, EX.o)
        g.add(EX.s0, EX.rare, EX.o)
        common = TriplePattern(var("x"), EX.common, var("y"))
        rare = TriplePattern(var("x"), EX.rare, var("y"))
        assert pattern_selectivity(rare, g) < pattern_selectivity(common, g)

    def test_order_prefers_connected_patterns(self):
        # Disconnected-but-selective should not jump ahead of connected ones
        # once the join has started.
        p1 = TriplePattern(var("x"), EX.p, Literal("v"))  # selective, starts
        p2 = TriplePattern(var("x"), EX.q, var("y"))  # connected to p1
        p3 = TriplePattern(var("z"), EX.r, Literal("w"))  # disconnected
        ordered = order_patterns([p3, p2, p1])
        assert ordered[0] in (p1, p3)  # a selective pattern starts
        # The unselective-but-connected p2 must come after the selective p1
        # that binds its join variable.
        assert ordered.index(p2) > ordered.index(p1)


class TestFilterPushdown:
    def _compile(self, query_text, **options):
        query = parse_query(query_text)
        return compile_group(query.where, options=CompileOptions(**options))

    def test_filter_pushed_below_join(self):
        tree = self._compile(
            "SELECT ?x WHERE { ?x <http://p> ?v . ?x <http://q> ?w . FILTER (?v > 5) }"
        )
        # The filter must not be the root wrapping the whole join.
        assert isinstance(tree, JoinOp)

        def find_filter(op):
            if isinstance(op, FilterOp):
                return op
            if isinstance(op, JoinOp):
                return find_filter(op.left) or find_filter(op.right)
            return None

        assert find_filter(tree) is not None

    def test_pushdown_disabled(self):
        tree = self._compile(
            "SELECT ?x WHERE { ?x <http://p> ?v . ?x <http://q> ?w . FILTER (?v > 5) }",
            push_filters=False,
        )
        assert isinstance(tree, FilterOp)

    def test_filter_with_two_sided_vars_stays_at_join(self):
        tree = self._compile(
            "SELECT ?x WHERE { ?x <http://p> ?v . ?y <http://q> ?w . FILTER (?v = ?w) }"
        )
        assert isinstance(tree, FilterOp)
        assert isinstance(tree.operand, JoinOp)

    def test_expression_variables(self):
        expr = BinaryOp(
            "&&",
            BinaryOp(">", VarExpr(var("a")), TermExpr(Literal("1"))),
            BinaryOp("<", VarExpr(var("b")), VarExpr(var("c"))),
        )
        assert expression_variables(expr) == {var("a"), var("b"), var("c")}


class TestOptimisationPreservesSemantics:
    """Optimised and unoptimised plans must return identical solutions."""

    QUERIES = [
        "SELECT ?x ?v WHERE { ?x <http://p> ?v . ?x <http://q> ?w . FILTER (?v > 2) }",
        "SELECT ?x WHERE { ?x <http://p> ?v . OPTIONAL { ?x <http://q> ?w } FILTER (?v > 0) }",
        "SELECT ?x WHERE { { ?x <http://p> ?v } UNION { ?x <http://q> ?v } FILTER (?v > 1) }",
        "SELECT ?x ?y WHERE { ?x <http://r> ?y . ?y <http://r> ?x }",
    ]

    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 5), st.sampled_from(["p", "q", "r"]), st.integers(0, 5)),
            max_size=25,
        ),
        query_index=st.integers(0, len(QUERIES) - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_equivalence(self, edges, query_index):
        g = Graph()
        for s, p, o in edges:
            if p == "r":
                g.add(EX[f"n{s}"], EX["r"], EX[f"n{o}"])
            else:
                g.add(EX[f"n{s}"], IRI(f"http://{p}"), Literal.from_python(o))
        # Patch: predicate IRIs in queries are http://p etc.
        g2 = Graph()
        for s, p, o in edges:
            pred = IRI(f"http://{p}")
            obj = EX[f"n{o}"] if p == "r" else Literal.from_python(o)
            g2.add(EX[f"n{s}"], pred, obj)
        query = self.QUERIES[query_index]
        fast = evaluate(g2, query)
        slow = evaluate(
            g2, query, options=CompileOptions(push_filters=False, reorder_patterns=False)
        )
        canonical = lambda sols: sorted(
            (sorted((v.name, repr(t)) for v, t in s.items()) for s in sols)
        )
        assert canonical(fast) == canonical(slow)
