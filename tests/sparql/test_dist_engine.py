"""Distributed SPARQL engine (E25): partitioning, planning, robustness.

The equivalence property suite lives in ``test_dist_equivalence.py``; this
file pins the mechanisms — partition disjointness, physical plan shapes,
replica failover, partial-result opt-in, budget kill with exactly-once
ticket release, idempotent output commit under injected failures, and the
serving-gateway translation of :class:`PartitionUnavailable` to ``Shed``.
"""

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.errors import (
    PartitionUnavailable,
    QueryBudgetExceeded,
    Shed,
    SPARQLError,
)
from repro.faults import FaultInjector, FaultPlan, NodeLoss
from repro.rdf import Graph
from repro.rdf.term import IRI, Literal
from repro.resilience.admission import AdmissionController
from repro.sparql import CompileOptions, QueryBudget, evaluate
from repro.sparql.dist import (
    DistRuntime,
    PartialResult,
    PartitionedTripleStore,
    RangePartitioner,
    ShuffleStore,
    bucket_codes,
    build_plan,
    plan_shape,
)
from repro.sparql.evaluator import _EMPTY_REGISTRY
from repro.sparql.parser import parse_query
from repro.sparql.vector.engine import compile_vector_plan
from repro.sparql.vector.ops import scan_batch
from repro.sparql.vector.dictionary import TermEncoder


def build_graph(n=300, subjects=60):
    graph = Graph()
    for i in range(n):
        s = IRI(f"http://ex/s{i % subjects}")
        graph.add(s, IRI("http://ex/p"), Literal(str(i)))
        graph.add(s, IRI("http://ex/type"), IRI(f"http://ex/C{i % 3}"))
        if i % 2 == 0:
            graph.add(s, IRI("http://ex/q"), IRI(f"http://ex/s{(i + 1) % subjects}"))
    return graph


def canonical(rows):
    return sorted(
        tuple(sorted((v.name, str(t)) for v, t in row.items())) for row in rows
    )


def run_dist(graph, text, runtime, **options):
    return evaluate(
        graph,
        text,
        options=CompileOptions(engine="dist", dist=runtime, **options),
    )


def run_vector(graph, text):
    return evaluate(graph, text, options=CompileOptions(engine="vector"))


class TestRangePartitioner:
    def test_every_id_has_exactly_one_partition(self):
        partitioner = RangePartitioner(term_count=97, partitions=4)
        pids = [partitioner.partition_of(i) for i in range(97)]
        assert set(pids) <= {0, 1, 2, 3}
        assert pids == sorted(pids)  # ranges are contiguous and ordered
        column = partitioner.partition_column(np.arange(97, dtype=np.int64))
        assert list(column) == pids

    def test_out_of_span_ids_clamp(self):
        partitioner = RangePartitioner(term_count=10, partitions=4)
        assert partitioner.partition_of(-5) == 0
        assert partitioner.partition_of(10_000) == 3

    def test_validation(self):
        with pytest.raises(SPARQLError):
            RangePartitioner(term_count=10, partitions=0)


class TestPartitionedStore:
    def test_fragments_are_disjoint_cover(self):
        graph = build_graph()
        store = PartitionedTripleStore(
            graph, ClusterSpec(node_count=4), partitions=4, replication=2
        )
        pattern = parse_query(
            "SELECT * WHERE { ?s <http://ex/p> ?v }"
        ).where.children[0].patterns[0]
        whole = scan_batch(graph, TermEncoder(graph), pattern)
        parts = [store.scan_partition(pid, pattern) for pid in range(4)]
        assert sum(p.nrows for p in parts) == whole.nrows
        # Disjoint: each subject id appears in exactly one partition.
        seen = {}
        for pid, part in enumerate(parts):
            for variable, column in part.columns.items():
                if variable.name != "s":
                    continue
                for sid in np.unique(column):
                    assert seen.setdefault(int(sid), pid) == pid

    def test_constant_subject_pins_one_partition(self):
        graph = build_graph()
        store = PartitionedTripleStore(
            graph, ClusterSpec(node_count=4), partitions=4, replication=2
        )
        pattern = parse_query(
            "SELECT * WHERE { <http://ex/s7> <http://ex/p> ?v }"
        ).where.children[0].patterns[0]
        assert len(store.relevant_partitions(pattern)) == 1
        unknown = parse_query(
            "SELECT * WHERE { <http://nowhere/x> <http://ex/p> ?v }"
        ).where.children[0].patterns[0]
        assert store.relevant_partitions(unknown) == []

    def test_sync_tracks_graph_version(self):
        graph = build_graph(n=10)
        store = PartitionedTripleStore(
            graph, ClusterSpec(node_count=4), partitions=2, replication=1
        )
        before = sum(store.partition_rows(p) for p in range(2))
        graph.add(IRI("http://ex/new"), IRI("http://ex/p"), Literal("z"))
        store.sync()
        assert sum(store.partition_rows(p) for p in range(2)) == before + 1

    def test_replication_validation(self):
        graph = build_graph(n=10)
        with pytest.raises(SPARQLError):
            PartitionedTripleStore(
                graph, ClusterSpec(node_count=2), partitions=2, replication=3
            )


class TestPlanShapes:
    def _plan(self, graph, text, threshold=64.0):
        query = parse_query(text)
        tree = compile_vector_plan(
            query.where, graph, CompileOptions(engine="vector")
        )
        return plan_shape(build_plan(tree, graph, threshold, 4))

    def test_scan_and_map(self):
        graph = build_graph()
        assert self._plan(graph, "SELECT * WHERE { ?s <http://ex/p> ?v }") == "scan"
        shape = self._plan(
            graph,
            "SELECT * WHERE { ?s <http://ex/p> ?v FILTER(?v != 3) }",
        )
        assert shape == "map[FilterOp](scan)"

    def test_join_is_shuffle_above_threshold(self):
        graph = build_graph()
        text = (
            "SELECT * WHERE { ?s <http://ex/p> ?v . ?s <http://ex/type> ?t }"
        )
        assert "shuffle[?s]" in self._plan(graph, text, threshold=1.0)
        assert "bcast" in self._plan(graph, text, threshold=1e9)

    def test_optional_always_broadcasts(self):
        graph = build_graph()
        shape = self._plan(
            graph,
            "SELECT * WHERE { ?s <http://ex/p> ?v "
            "OPTIONAL { ?s <http://ex/q> ?o } }",
            threshold=1.0,
        )
        assert shape.startswith("bcast-outer(")

    def test_union_concatenates(self):
        graph = build_graph()
        shape = self._plan(
            graph,
            "SELECT * WHERE { { ?s <http://ex/p> ?v } "
            "UNION { ?s <http://ex/q> ?v } }",
        )
        assert shape == "union(scan, scan)"

    def test_values_runs_local(self):
        graph = build_graph()
        shape = self._plan(
            graph,
            "SELECT * WHERE { VALUES ?s { <http://ex/s1> } "
            "?s <http://ex/p> ?v }",
            threshold=1.0,
        )
        # The VALUES table is tiny: it is the broadcast (or local) side,
        # never a shuffle key source (its ?s could be UNDEF in general).
        assert "shuffle" not in shape


class TestBucketCodes:
    def test_deterministic_and_in_range(self):
        matrix = np.arange(60, dtype=np.int64).reshape(20, 3)
        a = bucket_codes(matrix, 7)
        b = bucket_codes(matrix.copy(), 7)
        assert (a == b).all()
        assert a.min() >= 0 and a.max() < 7

    def test_row_order_independent(self):
        matrix = np.arange(40, dtype=np.int64).reshape(20, 2)
        shuffled = matrix[::-1]
        assert (bucket_codes(matrix, 5)[::-1] == bucket_codes(shuffled, 5)).all()


class TestShuffleStore:
    def test_first_write_wins(self):
        store = ShuffleStore()
        assert store.publish(("a", 0), 1) is True
        assert store.publish(("a", 0), 2) is False
        assert store.get(("a", 0)) == 1
        assert store.publishes == 1
        assert store.duplicate_publishes == 1
        store.register_duplicate(("a", 0))
        assert store.duplicate_publishes == 2


class TestDistExecution:
    QUERIES = [
        "SELECT ?s ?v WHERE { ?s <http://ex/p> ?v }",
        "SELECT ?s ?v ?t WHERE { ?s <http://ex/p> ?v . ?s <http://ex/type> ?t }",
        "SELECT ?s ?v WHERE { ?s <http://ex/p> ?v FILTER(?v != 3) }",
        "SELECT ?s ?w WHERE { ?s <http://ex/p> ?v BIND(?v AS ?w) }",
        "SELECT ?s WHERE { { ?s <http://ex/q> ?o } UNION "
        "{ ?s <http://ex/type> <http://ex/C1> } }",
        "SELECT ?s ?v ?o WHERE { ?s <http://ex/p> ?v "
        "OPTIONAL { ?s <http://ex/q> ?o } }",
        "SELECT (COUNT(?v) AS ?n) WHERE { ?s <http://ex/p> ?v }",
        "SELECT ?x WHERE { <http://nowhere/z> <http://ex/p> ?x }",
    ]

    @pytest.mark.parametrize("partitions,replication", [(1, 1), (4, 2), (7, 3)])
    def test_parity_across_layouts(self, partitions, replication):
        graph = build_graph()
        runtime = DistRuntime(
            graph, partitions=partitions, replication=replication
        )
        for text in self.QUERIES:
            assert canonical(run_dist(graph, text, runtime)) == canonical(
                run_vector(graph, text)
            ), text

    def test_shuffle_path_parity(self):
        graph = build_graph()
        runtime = DistRuntime(
            graph, partitions=4, replication=2, broadcast_threshold_rows=1.0
        )
        text = (
            "SELECT ?s ?v ?t WHERE { ?s <http://ex/p> ?v . "
            "?s <http://ex/type> ?t }"
        )
        assert canonical(run_dist(graph, text, runtime)) == canonical(
            run_vector(graph, text)
        )
        assert runtime.last_report.counters.get("dist.shuffle_joins") == 1

    def test_ask_queries(self):
        graph = build_graph()
        runtime = DistRuntime(graph, partitions=4, replication=2)
        assert run_dist(graph, "ASK { ?s <http://ex/p> ?v }", runtime) is True
        assert (
            run_dist(graph, "ASK { ?s <http://nowhere/p> ?v }", runtime) is False
        )

    def test_empty_graph(self):
        graph = Graph()
        runtime = DistRuntime(graph, partitions=4, replication=1)
        assert run_dist(graph, "SELECT * WHERE { ?s ?p ?o }", runtime) == []

    def test_requires_runtime(self):
        graph = build_graph(n=10)
        with pytest.raises(SPARQLError, match="needs a runtime"):
            evaluate(
                graph,
                "SELECT * WHERE { ?s ?p ?o }",
                options=CompileOptions(engine="dist"),
            )

    def test_rejects_foreign_graph(self):
        runtime = DistRuntime(build_graph(n=10))
        with pytest.raises(SPARQLError, match="different graph"):
            evaluate(
                build_graph(n=10),
                "SELECT * WHERE { ?s ?p ?o }",
                options=CompileOptions(engine="dist", dist=runtime),
            )

    def test_graph_mutation_resyncs(self):
        graph = build_graph(n=20)
        runtime = DistRuntime(graph, partitions=4, replication=2)
        text = "SELECT ?s ?v WHERE { ?s <http://ex/p> ?v }"
        before = len(run_dist(graph, text, runtime))
        graph.add(IRI("http://ex/added"), IRI("http://ex/p"), Literal("new"))
        assert len(run_dist(graph, text, runtime)) == before + 1

    def test_locality_dominates_clean_runs(self):
        graph = build_graph()
        runtime = DistRuntime(graph, partitions=4, replication=2)
        run_dist(graph, "SELECT ?s ?v WHERE { ?s <http://ex/p> ?v }", runtime)
        assert runtime.last_report.locality_rate >= 0.75


class TestReplicaFailover:
    TEXT = "SELECT ?s ?v ?t WHERE { ?s <http://ex/p> ?v . ?s <http://ex/type> ?t }"

    def loss_plan(self, *node_ids, at_s=0.0):
        return FaultPlan(
            node_losses=tuple(NodeLoss(node_id=n, at_s=at_s) for n in node_ids)
        )

    def test_replicated_store_survives_node_loss(self):
        graph = build_graph()
        expected = canonical(run_vector(graph, self.TEXT))
        runtime = DistRuntime(graph, partitions=4, replication=2)
        runtime.injector = FaultInjector(self.loss_plan(0))
        assert canonical(run_dist(graph, self.TEXT, runtime)) == expected

    def test_unreplicated_store_raises_typed_error(self):
        graph = build_graph()
        runtime = DistRuntime(graph, partitions=4, replication=1)
        runtime.injector = FaultInjector(self.loss_plan(0))
        with pytest.raises(PartitionUnavailable) as excinfo:
            run_dist(graph, self.TEXT, runtime)
        assert excinfo.value.retryable
        assert excinfo.value.partition is not None

    def test_partial_result_requires_opt_in(self):
        graph = build_graph()
        full = run_vector(graph, self.TEXT)
        runtime = DistRuntime(
            graph, partitions=4, replication=1, allow_partial=True
        )
        runtime.injector = FaultInjector(self.loss_plan(0))
        result = run_dist(graph, self.TEXT, runtime)
        assert isinstance(result, PartialResult)
        assert result.complete is False
        assert result.missing_partitions
        assert len(result) < len(full)
        # Every returned row is a true row of the full answer.
        full_set = set(canonical(full))
        assert set(canonical(result)) <= full_set

    def test_ask_refuses_inconclusive_partial(self):
        graph = build_graph()
        runtime = DistRuntime(
            graph, partitions=4, replication=1, allow_partial=True
        )
        runtime.injector = FaultInjector(self.loss_plan(0, 1, 2, 3))
        with pytest.raises(PartitionUnavailable):
            run_dist(graph, "ASK { ?s <http://nowhere/p> ?v }", runtime)


class TestBudgetIntegration:
    TEXT = "SELECT ?s ?v ?t WHERE { ?s <http://ex/p> ?v . ?s <http://ex/type> ?t }"

    def test_budget_kill_cancels_dag(self):
        graph = build_graph()
        runtime = DistRuntime(graph, partitions=4, replication=2)
        with pytest.raises(QueryBudgetExceeded):
            run_dist(graph, self.TEXT, runtime, budget=QueryBudget(max_rows=50))
        report = runtime.last_report
        assert report.tickets_issued == report.tickets_released
        assert report.counters.get("dist.aborts") == 1

    def test_budget_kill_releases_admission_exactly_once(self):
        graph = build_graph()
        admission = AdmissionController(max_in_flight=256, max_queue=256)
        runtime = DistRuntime(
            graph, partitions=4, replication=2, admission=admission
        )
        with pytest.raises(QueryBudgetExceeded):
            run_dist(graph, self.TEXT, runtime, budget=QueryBudget(max_rows=50))
        report = runtime.last_report
        assert report.tickets_issued > 0
        assert report.tickets_issued == report.tickets_released
        assert admission._in_flight == 0
        # And the runtime is reusable afterwards: clean run, clean audit.
        rows = run_dist(graph, self.TEXT, runtime)
        assert len(rows) == len(run_vector(graph, self.TEXT))
        report = runtime.last_report
        assert report.tickets_issued == report.tickets_released
        assert admission._in_flight == 0

    def test_generous_budget_unchanged_result(self):
        graph = build_graph()
        runtime = DistRuntime(graph, partitions=4, replication=2)
        governed = run_dist(
            graph, self.TEXT, runtime, budget=QueryBudget(max_rows=1_000_000)
        )
        assert canonical(governed) == canonical(run_vector(graph, self.TEXT))


class TestIdempotentCommit:
    def test_injected_failures_never_double_count(self):
        """Zombie attempts commit, die unreported, and get re-executed: the
        first-write-wins store must keep the answer an exact multiset."""
        graph = build_graph()
        text = (
            "SELECT ?s ?v ?t WHERE { ?s <http://ex/p> ?v . "
            "?s <http://ex/type> ?t }"
        )
        expected = canonical(run_vector(graph, text))
        runtime = DistRuntime(
            graph, partitions=4, replication=2, broadcast_threshold_rows=1.0
        )
        duplicates = 0
        for seed in range(8):
            runtime.injector = FaultInjector(
                FaultPlan.chaos(
                    seed=seed,
                    node_count=4,
                    task_failure_rate=0.3,
                    straggler_prob=0.3,
                    horizon_s=0.01,
                )
            )
            assert canonical(run_dist(graph, text, runtime)) == expected
            report = runtime.last_report
            duplicates += report.duplicate_publishes
            assert report.tickets_issued == report.tickets_released
        # With a 30% per-attempt failure rate the retried attempts MUST have
        # hit the duplicate-commit path somewhere across eight runs.
        assert duplicates > 0


class TestCacheKeyStability:
    def test_dist_field_is_not_plan_state(self):
        graph = build_graph(n=10)
        runtime = DistRuntime(graph)
        bare = CompileOptions(engine="dist")
        with_runtime = CompileOptions(engine="dist", dist=runtime)
        assert bare.cache_key() == with_runtime.cache_key()
        assert CompileOptions().cache_key() == (True, True, "interpreted")

    def test_engines_do_not_share_cache_keys(self):
        keys = {
            CompileOptions(engine=name).cache_key()
            for name in ("interpreted", "vector", "dist")
        }
        assert len(keys) == 3


class TestGatewayIntegration:
    def test_dist_backend_round_trip(self):
        from repro.serving import DistBackend, Gateway, TenantConfig

        graph = build_graph()
        runtime = DistRuntime(graph, partitions=4, replication=2)
        gateway = Gateway(DistBackend(graph, runtime))
        gateway.register_tenant(TenantConfig(name="a", api_key="key-a"))
        text = "SELECT ?s ?v WHERE { ?s <http://ex/p> ?v }"
        rows = gateway.query("key-a", text, kind="sparql")
        assert canonical(rows) == canonical(run_vector(graph, text))
        gateway.assert_drained()

    def test_partition_unavailable_sheds(self):
        from repro.serving import DistBackend, Gateway, TenantConfig

        graph = build_graph()
        runtime = DistRuntime(graph, partitions=4, replication=1)
        runtime.injector = FaultInjector(
            FaultPlan(node_losses=(NodeLoss(node_id=0, at_s=0.0),))
        )
        gateway = Gateway(DistBackend(graph, runtime))
        gateway.register_tenant(TenantConfig(name="a", api_key="key-a"))
        with pytest.raises(Shed) as excinfo:
            gateway.query(
                "key-a",
                "SELECT ?s ?v WHERE { ?s <http://ex/p> ?v }",
                kind="sparql",
            )
        assert excinfo.value.reason == "partition_unavailable"
        assert excinfo.value.retryable
        gateway.assert_drained()
