"""SPARQL evaluator tests over a small social/products graph."""

import pytest

from repro.rdf import Graph, IRI, Literal, Namespace
from repro.sparql import Variable, evaluate
from repro.sparql.evaluator import FunctionRegistry

EX = Namespace("http://ex.org/")
PREFIX = "PREFIX ex: <http://ex.org/> "


@pytest.fixture
def graph():
    g = Graph()
    people = {
        "alice": ("Alice", 30),
        "bob": ("Bob", 25),
        "carol": ("Carol", 35),
    }
    for key, (name, age) in people.items():
        g.add(EX[key], EX.name, Literal.from_python(name))
        g.add(EX[key], EX.age, Literal.from_python(age))
        g.add(EX[key], IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"), EX.Person)
    g.add(EX.alice, EX.knows, EX.bob)
    g.add(EX.alice, EX.knows, EX.carol)
    g.add(EX.bob, EX.knows, EX.carol)
    g.add(EX.alice, EX.email, Literal("alice@ex.org"))
    return g


def rows(result, *var_names):
    """Project result solutions to tuples for easy assertions."""
    variables = [Variable(n) for n in var_names]
    return {tuple(s.get(v) for v in variables) for s in result}


class TestBGP:
    def test_single_pattern(self, graph):
        result = evaluate(graph, PREFIX + "SELECT ?x WHERE { ?x ex:knows ex:carol }")
        assert rows(result, "x") == {(EX.alice,), (EX.bob,)}

    def test_join_two_patterns(self, graph):
        result = evaluate(
            graph,
            PREFIX + "SELECT ?n WHERE { ?x ex:knows ex:carol . ?x ex:name ?n }",
        )
        assert rows(result, "n") == {(Literal("Alice"),), (Literal("Bob"),)}

    def test_variable_predicate(self, graph):
        result = evaluate(graph, PREFIX + "SELECT ?p WHERE { ex:alice ?p ex:bob }")
        assert rows(result, "p") == {(EX.knows,)}

    def test_shared_variable_join_consistency(self, graph):
        # ?x knows ?y and ?y knows ?z -> only alice-bob-carol chain.
        result = evaluate(
            graph,
            PREFIX + "SELECT ?x ?z WHERE { ?x ex:knows ?y . ?y ex:knows ?z }",
        )
        assert rows(result, "x", "z") == {(EX.alice, EX.carol)}

    def test_no_match(self, graph):
        result = evaluate(graph, PREFIX + "SELECT ?x WHERE { ?x ex:knows ex:alice }")
        assert result == []

    def test_same_variable_twice_in_pattern(self, graph):
        g = Graph()
        g.add(EX.n1, EX.link, EX.n1)
        g.add(EX.n1, EX.link, EX.n2)
        result = evaluate(g, PREFIX + "SELECT ?x WHERE { ?x ex:link ?x }")
        assert rows(result, "x") == {(EX.n1,)}


class TestFilter:
    def test_numeric_comparison(self, graph):
        result = evaluate(
            graph,
            PREFIX + "SELECT ?x WHERE { ?x ex:age ?a . FILTER (?a > 28) }",
        )
        assert rows(result, "x") == {(EX.alice,), (EX.carol,)}

    def test_arithmetic_in_filter(self, graph):
        result = evaluate(
            graph,
            PREFIX + "SELECT ?x WHERE { ?x ex:age ?a . FILTER (?a * 2 = 50) }",
        )
        assert rows(result, "x") == {(EX.bob,)}

    def test_logical_and_or(self, graph):
        result = evaluate(
            graph,
            PREFIX
            + "SELECT ?x WHERE { ?x ex:age ?a . FILTER (?a > 26 && ?a < 33 || ?a = 25) }",
        )
        assert rows(result, "x") == {(EX.alice,), (EX.bob,)}

    def test_string_functions(self, graph):
        result = evaluate(
            graph,
            PREFIX
            + 'SELECT ?x WHERE { ?x ex:name ?n . FILTER (STRSTARTS(?n, "A")) }',
        )
        assert rows(result, "x") == {(EX.alice,)}

    def test_regex(self, graph):
        result = evaluate(
            graph,
            PREFIX + 'SELECT ?x WHERE { ?x ex:name ?n . FILTER (REGEX(?n, "^[AB]")) }',
        )
        assert rows(result, "x") == {(EX.alice,), (EX.bob,)}

    def test_filter_error_is_false(self, graph):
        # Comparing a string against a number errors -> row dropped, not crash.
        result = evaluate(
            graph,
            PREFIX + "SELECT ?x WHERE { ?x ex:name ?n . FILTER (?n > 5) }",
        )
        assert result == []

    def test_iri_equality(self, graph):
        result = evaluate(
            graph,
            PREFIX + "SELECT ?x WHERE { ?x ex:knows ?y . FILTER (?y = ex:bob) }",
        )
        assert rows(result, "x") == {(EX.alice,)}


class TestOptional:
    def test_optional_keeps_unmatched(self, graph):
        result = evaluate(
            graph,
            PREFIX
            + "SELECT ?x ?e WHERE { ?x a ex:Person . OPTIONAL { ?x ex:email ?e } }",
        )
        by_x = {s[Variable("x")]: s.get(Variable("e")) for s in result}
        assert by_x[EX.alice] == Literal("alice@ex.org")
        assert by_x[EX.bob] is None
        assert by_x[EX.carol] is None

    def test_bound_filter_on_optional(self, graph):
        result = evaluate(
            graph,
            PREFIX
            + "SELECT ?x WHERE { ?x a ex:Person . OPTIONAL { ?x ex:email ?e } "
            + "FILTER (!BOUND(?e)) }",
        )
        assert rows(result, "x") == {(EX.bob,), (EX.carol,)}


class TestUnion:
    def test_union(self, graph):
        result = evaluate(
            graph,
            PREFIX
            + "SELECT ?x WHERE { { ?x ex:age ?a . FILTER (?a = 25) } UNION "
            + "{ ?x ex:age ?a . FILTER (?a = 35) } }",
        )
        assert rows(result, "x") == {(EX.bob,), (EX.carol,)}

    def test_union_duplicates_kept_without_distinct(self, graph):
        result = evaluate(
            graph,
            PREFIX + "SELECT ?x WHERE { { ?x ex:knows ex:carol } UNION { ?x ex:knows ex:carol } }",
        )
        assert len(result) == 4

    def test_union_distinct(self, graph):
        result = evaluate(
            graph,
            PREFIX
            + "SELECT DISTINCT ?x WHERE { { ?x ex:knows ex:carol } UNION { ?x ex:knows ex:carol } }",
        )
        assert len(result) == 2


class TestModifiers:
    def test_order_by(self, graph):
        result = evaluate(
            graph,
            PREFIX + "SELECT ?x ?a WHERE { ?x ex:age ?a } ORDER BY ?a",
        )
        ages = [s[Variable("a")].to_python() for s in result]
        assert ages == [25, 30, 35]

    def test_order_by_desc(self, graph):
        result = evaluate(
            graph,
            PREFIX + "SELECT ?x ?a WHERE { ?x ex:age ?a } ORDER BY DESC(?a)",
        )
        ages = [s[Variable("a")].to_python() for s in result]
        assert ages == [35, 30, 25]

    def test_limit_offset(self, graph):
        result = evaluate(
            graph,
            PREFIX + "SELECT ?x ?a WHERE { ?x ex:age ?a } ORDER BY ?a LIMIT 1 OFFSET 1",
        )
        assert rows(result, "x") == {(EX.alice,)}

    def test_projection(self, graph):
        result = evaluate(graph, PREFIX + "SELECT ?a WHERE { ex:bob ex:age ?a }")
        assert all(set(s.keys()) == {Variable("a")} for s in result)

    def test_select_star_keeps_all(self, graph):
        result = evaluate(graph, PREFIX + "SELECT * WHERE { ?x ex:age ?a }")
        assert all(
            {Variable("x"), Variable("a")} <= set(s.keys()) for s in result
        )


class TestAggregates:
    def test_count_star(self, graph):
        [row] = evaluate(graph, PREFIX + "SELECT (COUNT(*) AS ?n) WHERE { ?s ex:knows ?o }")
        assert row[Variable("n")].to_python() == 3

    def test_count_empty(self, graph):
        [row] = evaluate(
            graph, PREFIX + "SELECT (COUNT(*) AS ?n) WHERE { ?s ex:missing ?o }"
        )
        assert row[Variable("n")].to_python() == 0

    def test_group_by_count(self, graph):
        result = evaluate(
            graph,
            PREFIX
            + "SELECT ?x (COUNT(?y) AS ?n) WHERE { ?x ex:knows ?y } GROUP BY ?x",
        )
        counts = {s[Variable("x")]: s[Variable("n")].to_python() for s in result}
        assert counts == {EX.alice: 2, EX.bob: 1}

    def test_sum_avg_min_max(self, graph):
        [row] = evaluate(
            graph,
            PREFIX
            + "SELECT (SUM(?a) AS ?s) (AVG(?a) AS ?m) (MIN(?a) AS ?lo) (MAX(?a) AS ?hi) "
            + "WHERE { ?x ex:age ?a }",
        )
        assert row[Variable("s")].to_python() == 90
        assert row[Variable("m")].to_python() == 30
        assert row[Variable("lo")].to_python() == 25
        assert row[Variable("hi")].to_python() == 35

    def test_count_distinct(self, graph):
        [row] = evaluate(
            graph,
            PREFIX + "SELECT (COUNT(DISTINCT ?o) AS ?n) WHERE { ?s ex:knows ?o }",
        )
        assert row[Variable("n")].to_python() == 2


class TestAsk:
    def test_ask_true(self, graph):
        assert evaluate(graph, PREFIX + "ASK { ex:alice ex:knows ex:bob }") is True

    def test_ask_false(self, graph):
        assert evaluate(graph, PREFIX + "ASK { ex:bob ex:knows ex:alice }") is False


class TestExtensionFunctions:
    def test_registry_function_called(self, graph):
        registry = FunctionRegistry()
        registry.register(
            "http://ex.org/fn/longname",
            lambda args: len(args[0].lexical) > 4,
        )
        result = evaluate(
            graph,
            PREFIX
            + "PREFIX fn: <http://ex.org/fn/> "
            + "SELECT ?x WHERE { ?x ex:name ?n . FILTER (fn:longname(?n)) }",
            registry=registry,
        )
        assert rows(result, "x") == {(EX.alice,), (EX.carol,)}

    def test_unknown_function_filters_all(self, graph):
        result = evaluate(
            graph,
            PREFIX
            + "PREFIX fn: <http://ex.org/fn/> "
            + "SELECT ?x WHERE { ?x ex:name ?n . FILTER (fn:missing(?n)) }",
        )
        assert result == []
