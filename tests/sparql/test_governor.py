"""The E23 query resource governor: budgets, cancellation, caps, parity.

Covers the :mod:`repro.sparql.governor` primitives, enforcement inside both
engines (row/byte caps, charge-driven deadlines, cooperative cancellation),
the disabled-path parity contract (``budget=None`` changes nothing, and the
budget field never reaches a plan-cache key), the LIMIT-without-ORDER-BY
short-circuit (bounded work, pinned via the governor's own row counter),
and a miniature three-way soak asserting the E23 acceptance invariants.
"""

import pytest

from repro.cache.plan import PlanCache
from repro.errors import (
    QueryBudgetExceeded,
    QueryCancelled,
    SPARQLError,
    TimeoutExceeded,
)
from repro.rdf import Graph
from repro.rdf.ntriples import parse_ntriples
from repro.resilience.deadline import NO_DEADLINE, Deadline
from repro.sparql import (
    BudgetPolicy,
    CancelToken,
    CompileOptions,
    QueryBudget,
    evaluate,
    with_budget,
)
from repro.sparql.governor import BYTES_PER_CELL
from repro.sparql.governor.soak import (
    RUNAWAY,
    WELL_BEHAVED,
    GovernorSoakConfig,
    run_comparison,
)

ENGINES = ["interpreted", "vector"]


def build_graph(pairs=8):
    """Two disjoint predicates: the cross-product bait used throughout."""
    lines = []
    for index in range(pairs):
        lines.append(f'<urn:a{index}> <urn:p> "{index}" .')
        lines.append(f'<urn:b{index}> <urn:q> "{index}" .')
    graph = Graph()
    for triple in parse_ntriples("\n".join(lines)):
        graph.add(*triple)
    return graph


CROSS = "SELECT ?x ?y WHERE { ?x <urn:p> ?v . ?y <urn:q> ?w }"
SINGLE = "SELECT ?x ?v WHERE { ?x <urn:p> ?v }"


def run(graph, query, engine, budget=None):
    return evaluate(
        graph, query, options=CompileOptions(engine=engine, budget=budget)
    )


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------

class TestCancelToken:
    def test_first_reason_wins(self):
        token = CancelToken()
        assert not token.cancelled
        token.cancel("operator kill")
        token.cancel("too late")
        assert token.cancelled
        assert token.reason == "operator kill"

    def test_checkpoint_raises_with_reason(self):
        budget = QueryBudget(cancel=CancelToken(), label="q1")
        budget.cancel.cancel("tenant hung up")
        with pytest.raises(QueryCancelled) as info:
            budget.checkpoint("JoinOp")
        assert info.value.reason == "tenant hung up"
        assert info.value.retryable
        assert "JoinOp" in str(info.value)


class TestQueryBudget:
    def test_cap_validation(self):
        with pytest.raises(SPARQLError):
            QueryBudget(max_rows=0)
        with pytest.raises(SPARQLError):
            QueryBudget(max_bytes=-1)
        with pytest.raises(SPARQLError):
            QueryBudget(checkpoint_charge_s=-0.1)

    def test_row_cap_admission(self):
        budget = QueryBudget(max_rows=10)
        budget.charge_rows(8, 2)
        with pytest.raises(QueryBudgetExceeded) as info:
            budget.admit_rows(3)
        assert info.value.resource == "rows"
        assert info.value.observed == 11
        assert info.value.limit == 10
        assert not info.value.retryable
        budget.admit_rows(2)  # exactly at the cap is allowed

    def test_byte_cap_uses_modelled_cells(self):
        budget = QueryBudget(max_bytes=10 * 3 * BYTES_PER_CELL)
        budget.charge_rows(10, 3)
        with pytest.raises(QueryBudgetExceeded) as info:
            budget.admit_rows(1, 3)
        assert info.value.resource == "bytes"

    def test_mark_release_keeps_peaks(self):
        budget = QueryBudget()
        mark = budget.mark()
        budget.charge_rows(100, 2)
        budget.release_to(mark)
        assert budget.resident_rows == 0
        assert budget.resident_bytes == 0
        assert budget.peak_rows == 100
        assert budget.peak_bytes == 100 * 2 * BYTES_PER_CELL

    def test_charge_driven_deadline_expires(self):
        budget = QueryBudget(
            deadline=Deadline(0.01, label="q"), checkpoint_charge_s=0.004
        )
        budget.checkpoint("a")
        budget.checkpoint("b")
        with pytest.raises(TimeoutExceeded):
            budget.checkpoint("c")
        assert budget.charged_s == pytest.approx(0.012)

    def test_row_charges_consume_deadline(self):
        budget = QueryBudget(
            deadline=Deadline(0.01, label="q"), row_charge_s=0.001
        )
        budget.charge_rows(11)
        with pytest.raises(TimeoutExceeded):
            budget.checkpoint("after rows")


class TestDeadlineDerive:
    def test_never_widens(self):
        parent = Deadline(10.0)
        parent.charge(9.5)
        child = parent.derive(5.0, label="execution")
        assert child.budget_s == pytest.approx(0.5)
        assert child.label == "execution"

    def test_narrows_to_cap(self):
        assert Deadline(10.0).derive(2.0).budget_s == pytest.approx(2.0)

    def test_shares_clock(self):
        now = [0.0]
        parent = Deadline(10.0, clock=lambda: now[0])
        child = parent.derive(1.0)
        now[0] = 2.0
        assert child.expired

    def test_no_deadline_derives_finite(self):
        assert NO_DEADLINE.derive(3.0).budget_s == pytest.approx(3.0)


class TestPolicyAndOptions:
    def test_policy_enabled(self):
        assert not BudgetPolicy().enabled
        assert BudgetPolicy(max_rows=10).enabled
        assert BudgetPolicy(max_seconds=1.0).enabled
        assert BudgetPolicy(row_charge_s=0.1).enabled

    def test_with_budget(self):
        budget = QueryBudget(max_rows=5)
        assert with_budget(None, None) is None
        options = CompileOptions(engine="vector")
        assert with_budget(options, None) is options
        attached = with_budget(options, budget)
        assert attached is not options  # original never mutated
        assert attached.budget is budget
        assert attached.engine == "vector"
        assert options.budget is None
        fresh = with_budget(None, budget)
        assert fresh.budget is budget

    def test_budget_excluded_from_cache_key(self):
        plain = CompileOptions()
        governed = with_budget(plain, QueryBudget(max_rows=5))
        assert plain.cache_key() == governed.cache_key()
        assert PlanCache.options_key(plain) == PlanCache.options_key(governed)
        # The key is exactly the pre-budget astuple shape.
        assert PlanCache.options_key(plain) == (True, True, "interpreted")


# ----------------------------------------------------------------------
# Enforcement inside both engines
# ----------------------------------------------------------------------

@pytest.mark.parametrize("engine", ENGINES)
class TestEngineEnforcement:
    def test_row_cap_kills_cross_product(self, engine):
        graph = build_graph(pairs=12)  # cross product = 144 rows
        budget = QueryBudget(max_rows=40)
        with pytest.raises(QueryBudgetExceeded) as info:
            run(graph, CROSS, engine, budget)
        assert info.value.resource == "rows"
        assert budget.peak_rows <= 40

    def test_byte_cap_kills_cross_product(self, engine):
        graph = build_graph(pairs=12)
        budget = QueryBudget(max_bytes=40 * BYTES_PER_CELL)
        with pytest.raises(QueryBudgetExceeded) as info:
            run(graph, CROSS, engine, budget)
        assert info.value.resource == "bytes"
        assert budget.peak_bytes <= 40 * BYTES_PER_CELL

    def test_peak_never_exceeds_cap(self, engine):
        """Pre-admission: the cap trips before the memory is accounted."""
        for cap in (8, 64, 512):
            graph = build_graph(pairs=24)  # cross product = 576
            budget = QueryBudget(max_rows=cap)
            with pytest.raises(QueryBudgetExceeded):
                run(graph, CROSS, engine, budget)
            assert budget.peak_rows <= cap

    def test_pre_cancelled_token_stops_query(self, engine):
        graph = build_graph()
        budget = QueryBudget(cancel=CancelToken())
        budget.cancel.cancel("kill test")
        with pytest.raises(QueryCancelled) as info:
            run(graph, CROSS, engine, budget)
        assert info.value.reason == "kill test"

    def test_charge_driven_deadline_stops_query(self, engine):
        graph = build_graph(pairs=12)
        budget = QueryBudget(
            deadline=Deadline(1e-4, label="q"),
            checkpoint_charge_s=1e-5,
            row_charge_s=1e-5,
        )
        with pytest.raises(TimeoutExceeded):
            run(graph, CROSS, engine, budget)
        assert budget.charged_s > 1e-4

    def test_generous_budget_changes_nothing(self, engine):
        graph = build_graph(pairs=6)
        queries = [
            CROSS,
            SINGLE,
            SINGLE + " ORDER BY ?v LIMIT 3",
            "SELECT ?x WHERE { ?x <urn:p> ?v OPTIONAL { ?x <urn:q> ?w } }",
            "SELECT (COUNT(?x) AS ?n) WHERE { ?x <urn:p> ?v }",
            "ASK { ?x <urn:p> ?v }",
        ]
        for query in queries:
            plain = run(graph, query, engine)
            budget = QueryBudget(
                deadline=Deadline(1e9),
                max_rows=1_000_000,
                max_bytes=1 << 40,
                checkpoint_charge_s=1e-9,
            )
            governed = run(graph, query, engine, budget)
            assert governed == plain, query
            assert budget.checkpoints > 0
            if not query.startswith("ASK"):
                assert budget.rows_produced > 0

    def test_counters_track_work(self, engine):
        graph = build_graph(pairs=4)
        budget = QueryBudget()
        result = run(graph, CROSS, engine, budget)
        assert len(result) == 16
        assert budget.peak_rows >= 16
        assert budget.checkpoints > 0


# ----------------------------------------------------------------------
# Satellite 1: LIMIT-without-ORDER-BY short-circuits (bounded work)
# ----------------------------------------------------------------------

class TestLimitShortCircuit:
    def big_graph(self, rows=400):
        graph = Graph()
        text = "\n".join(
            f'<urn:s{i}> <urn:p> "{i:04d}" .' for i in range(rows)
        )
        for triple in parse_ntriples(text):
            graph.add(*triple)
        return graph

    def test_limit_does_bounded_work(self):
        graph = self.big_graph(400)
        budget = QueryBudget()  # pure meter: no caps
        result = run(graph, SINGLE + " LIMIT 5", "interpreted", budget)
        assert len(result) == 5
        # The old path materialized all 400 solutions; the short-circuit
        # pulls exactly LIMIT worth of root rows.
        assert budget.peak_rows <= 5

    def test_offset_limit_matches_full_pipeline(self):
        graph = self.big_graph(50)
        full = run(graph, SINGLE, "interpreted")
        sliced = run(graph, SINGLE + " LIMIT 7 OFFSET 4", "interpreted")
        assert sliced == full[4:11]

    def test_distinct_limit_incremental(self):
        graph = Graph()
        text = "\n".join(
            f'<urn:s{i}> <urn:p> "{i % 3}" .' for i in range(30)
        )
        for triple in parse_ntriples(text):
            graph.add(*triple)
        query = "SELECT DISTINCT ?v WHERE { ?s <urn:p> ?v } LIMIT 2"
        budget = QueryBudget()
        result = run(graph, query, "interpreted", budget)
        assert len(result) == 2
        full = run(graph, "SELECT DISTINCT ?v WHERE { ?s <urn:p> ?v }",
                   "interpreted")
        assert result == full[:2]
        assert budget.peak_rows <= 2

    def test_order_by_still_materializes(self):
        graph = self.big_graph(40)
        query = SINGLE + " ORDER BY DESC(?v) LIMIT 3"
        result = run(graph, query, "interpreted")
        values = [row_v.lexical for row in result
                  for var, row_v in row.items() if var.name == "v"]
        assert values == ["0039", "0038", "0037"]

    def test_limit_zero(self):
        graph = self.big_graph(10)
        budget = QueryBudget()
        assert run(graph, SINGLE + " LIMIT 0", "interpreted", budget) == []
        assert budget.rows_produced == 0

    def test_geostore_limit_bounded(self):
        from repro.geosparql import GeoStore

        store = GeoStore()
        for triple in parse_ntriples("\n".join(
            f'<urn:s{i}> <urn:p> "{i}" .' for i in range(200)
        )):
            store.add(*triple)
        budget = QueryBudget()
        result = store.query(
            SINGLE + " LIMIT 4",
            options=CompileOptions(budget=budget),
        )
        assert len(result) == 4
        assert budget.peak_rows <= 4


# ----------------------------------------------------------------------
# Disabled-path parity
# ----------------------------------------------------------------------

class TestDisabledParity:
    def test_default_options_have_no_budget(self):
        assert CompileOptions().budget is None

    @pytest.mark.parametrize("engine", ENGINES)
    def test_none_budget_identical_results(self, engine):
        graph = build_graph(pairs=8)
        for query in (CROSS, SINGLE, SINGLE + " ORDER BY ?v LIMIT 3"):
            assert run(graph, query, engine) == run(
                graph, query, engine, None
            ), query


# ----------------------------------------------------------------------
# The adversarial soak, miniature
# ----------------------------------------------------------------------

def test_soak_invariants_small():
    config = GovernorSoakConfig(
        seed=7, requests=400, adversary_every=20, cross_entities=48,
        max_rows=512,
    )
    baseline, governed, ungoverned = run_comparison(config)
    assert governed.outcome(RUNAWAY).arrivals > 0
    assert governed.outcome(RUNAWAY).ok == 0
    assert governed.overruns == 0
    assert governed.peak_rows_max <= config.max_rows
    assert ungoverned.overruns > 0
    assert ungoverned.peak_rows_max > config.max_rows
    base = baseline.p99_s(WELL_BEHAVED)
    assert governed.p99_s(WELL_BEHAVED) <= 2.0 * base
    assert sum(governed.runaway_errors.values()) > 0
