"""Unit tests for the E22 columnar execution engine.

Exercises the pieces individually — encoder/batches, the unbound-tolerant
hash join, cost-based ordering — and the end-to-end behaviors that define
the engine: identical solution multisets to the interpreted evaluator,
correlated/custom-operator fallback, plan-cache keying per engine, and the
spatially accelerated GeoStore path.
"""

import numpy as np
import pytest

from repro.cache import PlanCache
from repro.rdf import Graph, Literal, Namespace
from repro.rdf.term import XSD_DOUBLE, XSD_INTEGER
from repro.sparql import CompileOptions, Variable, evaluate
from repro.sparql.ast import TriplePattern
from repro.sparql.vector import (
    UNBOUND,
    Batch,
    TermEncoder,
    hash_join,
    order_patterns_by_cost,
    pattern_extent,
)

EX = Namespace("http://ex.org/")
PREFIX = "PREFIX ex: <http://ex.org/> "

VECTOR = CompileOptions(engine="vector")


def canon(result):
    if isinstance(result, bool):
        return result
    return sorted(
        sorted((v.name, str(t)) for v, t in row.items()) for row in result
    )


def both(graph, query):
    interpreted = evaluate(graph, query, options=CompileOptions())
    vector = evaluate(graph, query, options=VECTOR)
    assert canon(interpreted) == canon(vector)
    return vector


# ---------------------------------------------------------------------------
# Batch / join mechanics
# ---------------------------------------------------------------------------

class TestHashJoin:
    def v(self, name):
        return Variable(name)

    def batch(self, **columns):
        nrows = len(next(iter(columns.values())))
        return Batch(
            {self.v(k): np.array(ids, dtype=np.int64) for k, ids in columns.items()},
            nrows,
        )

    def rows(self, batch):
        return sorted(
            tuple(int(batch.columns[v][i]) for v in sorted(batch.columns, key=str))
            for i in range(batch.nrows)
        )

    def test_inner_join_on_shared_ids(self):
        left = self.batch(x=[1, 2, 3], y=[10, 20, 30])
        right = self.batch(x=[2, 3, 4], z=[200, 300, 400])
        out = hash_join(left, right)
        assert self.rows(out) == [(2, 20, 200), (3, 30, 300)]

    def test_unbound_left_cell_matches_and_takes_right_value(self):
        # SPARQL compatibility: an unbound cell is compatible with anything.
        left = self.batch(x=[1, UNBOUND], y=[10, 20])
        right = self.batch(x=[1, 7], z=[100, 700])
        out = hash_join(left, right)
        assert self.rows(out) == [(1, 10, 100), (1, 20, 100), (7, 20, 700)]

    def test_outer_join_pads_unmatched_left_rows(self):
        left = self.batch(x=[1, 2], y=[10, 20])
        right = self.batch(x=[2], z=[200])
        out = hash_join(left, right, outer=True)
        assert self.rows(out) == [(1, 10, UNBOUND), (2, 20, 200)]

    def test_disjoint_join_is_cartesian(self):
        left = self.batch(a=[1, 2])
        right = self.batch(b=[7])
        out = hash_join(left, right)
        assert out.nrows == 2

    def test_multi_column_keys(self):
        left = self.batch(x=[1, 1, 2], y=[5, 6, 5], l=[0, 1, 2])
        right = self.batch(x=[1, 2], y=[6, 5], r=[8, 9])
        out = hash_join(left, right)
        # Column order in rows(): ?l ?r ?x ?y.
        assert self.rows(out) == [(1, 8, 1, 6), (2, 9, 2, 5)]


class TestEncoder:
    def test_graph_and_overflow_ids(self):
        g = Graph()
        g.add(EX.s, EX.p, EX.o)
        enc = TermEncoder(g)
        assert enc.encode(EX.s) == g.term_id(EX.s)
        fresh = Literal.from_python(99)
        overflow = enc.encode(fresh)
        assert overflow >= g.term_count
        assert enc.encode(fresh) == overflow  # deduplicated by value
        assert enc.decode(overflow) == fresh


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------

class TestCostOrdering:
    def test_extent_is_exact(self):
        g = Graph()
        for i in range(10):
            g.add(EX[f"s{i}"], EX.common, EX.x)
        g.add(EX.s0, EX.rare, EX.y)
        broad = TriplePattern(Variable("s"), EX.common, Variable("o"))
        narrow = TriplePattern(Variable("s"), EX.rare, Variable("o"))
        assert pattern_extent(broad, g) == 10
        assert pattern_extent(narrow, g) == 1

    def test_greedy_order_starts_with_smallest_extent(self):
        g = Graph()
        for i in range(10):
            g.add(EX[f"s{i}"], EX.common, EX.x)
        g.add(EX.s0, EX.rare, EX.y)
        broad = TriplePattern(Variable("s"), EX.common, Variable("o"))
        narrow = TriplePattern(Variable("s"), EX.rare, Variable("o"))
        ordered = order_patterns_by_cost([broad, narrow], g)
        assert ordered[0] is narrow

    def test_connected_patterns_preferred_over_cheaper_disconnected(self):
        g = Graph()
        g.add(EX.a, EX.p, EX.b)
        for i in range(5):
            g.add(EX[f"x{i}"], EX.q, EX[f"y{i}"])
        g.add(EX.solo1, EX.r, EX.z)
        g.add(EX.solo2, EX.r, EX.z)
        start = TriplePattern(Variable("a"), EX.p, Variable("b"))  # extent 1
        connected = TriplePattern(Variable("b"), EX.q, Variable("c"))  # 5
        disconnected = TriplePattern(Variable("u"), EX.r, Variable("v"))  # 2
        ordered = order_patterns_by_cost([disconnected, connected, start], g)
        # start seeds (smallest extent); then the connected pattern beats the
        # cheaper disconnected one (avoiding a cartesian product).
        assert ordered[0] is start
        assert ordered.index(connected) < ordered.index(disconnected)


# ---------------------------------------------------------------------------
# End-to-end semantics
# ---------------------------------------------------------------------------

@pytest.fixture
def shop():
    g = Graph()
    for i in range(12):
        g.add(EX[f"p{i}"], EX.cat, EX[f"c{i % 3}"])
        g.add(EX[f"p{i}"], EX.price, Literal.from_python(i * 3))
        if i % 2 == 0:
            g.add(EX[f"p{i}"], EX.tag, Literal.from_python(f"t{i % 4}"))
    return g


class TestEndToEnd:
    def test_multi_join_with_filter(self, shop):
        both(
            shop,
            PREFIX + "SELECT ?p ?v WHERE { ?p ex:cat ex:c1 . "
            "?p ex:price ?v . FILTER(?v > 10) }",
        )

    def test_optional_and_order_by(self, shop):
        result = both(
            shop,
            PREFIX + "SELECT ?p ?t WHERE { ?p ex:cat ?c . "
            "OPTIONAL { ?p ex:tag ?t } } ORDER BY ?p",
        )
        assert len(result) == 12

    def test_order_by_numeric_desc_limit(self, shop):
        result = evaluate(
            shop,
            PREFIX + "SELECT ?v WHERE { ?p ex:price ?v } ORDER BY DESC(?v) LIMIT 3",
            options=VECTOR,
        )
        assert [t.to_python() for s in result for t in s.values()] == [33, 30, 27]

    def test_order_by_string_keys_uses_generic_path(self, shop):
        both(shop, PREFIX + "SELECT ?t WHERE { ?p ex:tag ?t } ORDER BY DESC(?t)")

    def test_bind_arithmetic_types(self, shop):
        result = evaluate(
            shop,
            PREFIX + "SELECT ?d ?h WHERE { ?p ex:price ?v . "
            "BIND(?v * 2 AS ?d) BIND(?v / 2 AS ?h) } LIMIT 1",
            options=VECTOR,
        )
        d, h = result[0][Variable("d")], result[0][Variable("h")]
        assert d.datatype == XSD_INTEGER  # int * int stays integer
        assert h.datatype == XSD_DOUBLE  # division is always double

    def test_bind_error_leaves_variable_unbound(self, shop):
        result = both(
            shop,
            PREFIX + "SELECT ?p ?bad WHERE { ?p ex:tag ?t . "
            "BIND(?t + 1 AS ?bad) }",
        )
        assert all(Variable("bad") not in s for s in result)

    def test_values_with_undef(self, shop):
        both(
            shop,
            PREFIX + "SELECT ?p ?c WHERE { VALUES (?p ?c) "
            "{ (ex:p0 UNDEF) (UNDEF ex:c1) } ?p ex:cat ?c }",
        )

    def test_union_with_disjoint_columns(self, shop):
        both(
            shop,
            PREFIX + "SELECT ?a ?b WHERE { { ?x ex:cat ?a } UNION "
            "{ ?x ex:tag ?b } }",
        )

    def test_distinct_after_projection(self, shop):
        result = both(shop, PREFIX + "SELECT DISTINCT ?c WHERE { ?p ex:cat ?c }")
        assert len(result) == 3

    def test_ask(self, shop):
        assert evaluate(
            shop, PREFIX + "ASK { ?p ex:price ?v . FILTER(?v > 30) }",
            options=VECTOR,
        ) is True
        assert evaluate(
            shop, PREFIX + "ASK { ?p ex:price ?v . FILTER(?v > 100) }",
            options=VECTOR,
        ) is False

    def test_aggregates_group_by(self, shop):
        both(
            shop,
            PREFIX + "SELECT ?c (COUNT(?p) AS ?n) (SUM(?v) AS ?s) "
            "(AVG(?v) AS ?a) (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) "
            "WHERE { ?p ex:cat ?c . ?p ex:price ?v } GROUP BY ?c",
        )

    def test_filter_error_rows_are_dropped(self, shop):
        # ?t is a string for tagged products: ?t > 0 errors -> row dropped.
        both(
            shop,
            PREFIX + "SELECT ?p WHERE { ?p ex:cat ?c . "
            "OPTIONAL { ?p ex:tag ?t } FILTER(?t > 0 || ?c = ex:c1) }",
        )

    def test_rebind_raises_in_both_engines(self, shop):
        from repro.errors import SPARQLError

        query = PREFIX + "SELECT ?v WHERE { ?p ex:price ?v . BIND(1 AS ?v) }"
        for options in (CompileOptions(), VECTOR):
            with pytest.raises(SPARQLError):
                evaluate(shop, query, options=options)


class TestCorrelatedFallback:
    def test_optional_filter_on_outer_variable(self, shop):
        # The OPTIONAL's filter references ?v bound on the left: substitution
        # semantics; the vector engine must fall back for this join.
        both(
            shop,
            PREFIX + "SELECT ?p ?t WHERE { ?p ex:price ?v . "
            "OPTIONAL { ?p ex:tag ?t . FILTER(?v > 15) } }",
        )

    def test_non_well_designed_optional(self, shop):
        # ?v appears in the outer group and the inner OPTIONAL, but not in
        # the middle one: bottom-up joining diverges without the blind-
        # variable fallback.
        g = Graph()
        g.add(EX.a, EX.p, EX.v1)
        g.add(EX.b, EX.q, EX.b2)
        g.add(EX.b2, EX.r, EX.v2)
        both(
            g,
            PREFIX + "SELECT * WHERE { ?x ex:p ?v . "
            "OPTIONAL { ?y ex:q ?z . OPTIONAL { ?z ex:r ?v } } }",
        )


class TestPlanCacheIntegration:
    def test_engines_do_not_share_plan_entries(self, shop):
        cache = PlanCache()
        query = PREFIX + "SELECT ?p WHERE { ?p ex:cat ex:c0 . ?p ex:price ?v }"
        a = evaluate(shop, query, options=CompileOptions(), cache=cache)
        b = evaluate(shop, query, options=VECTOR, cache=cache)
        assert canon(a) == canon(b)
        stats = cache.stats["plans"]
        assert stats["misses"] == 2  # one compile per engine
        evaluate(shop, query, options=VECTOR, cache=cache)
        assert cache.stats["plans"]["hits"] == 1

    def test_mutation_invalidates_vector_plan(self, shop):
        cache = PlanCache()
        query = PREFIX + "SELECT ?p WHERE { ?p ex:cat ex:c0 }"
        first = evaluate(shop, query, options=VECTOR, cache=cache)
        shop.add(EX.extra, EX.cat, EX.c0)
        second = evaluate(shop, query, options=VECTOR, cache=cache)
        assert len(second) == len(first) + 1


class TestGeoStoreVector:
    def test_spatial_query_through_vector_engine(self):
        from repro.geosparql import GeoStore, WKT_DATATYPE

        store = GeoStore()
        for i in range(8):
            point = Literal(f"POINT({i} {i})", datatype=WKT_DATATYPE)
            store.add(EX[f"f{i}"], EX.geom, point)
            store.add(EX[f"f{i}"], EX.kind, EX.station)
        query = (
            "PREFIX ex: <http://ex.org/> "
            "PREFIX geof: <http://www.opengis.net/def/function/geosparql/> "
            "SELECT ?f WHERE { ?f ex:kind ex:station . ?f ex:geom ?g . "
            'FILTER(geof:sfWithin(?g, "POLYGON((-1 -1, 4 -1, 4 4, -1 4, -1 -1))"'
            "^^<http://www.opengis.net/ont/geosparql#wktLiteral>)) }"
        )
        interpreted = store.query(query, options=CompileOptions())
        vector = store.query(query, options=VECTOR)
        assert canon(interpreted) == canon(vector)
        assert len(vector) == 5  # points 0..4 (boundary-inclusive within)
