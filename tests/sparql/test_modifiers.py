"""Solution-modifier ordering: the SPARQL-algebra pipeline, pinned.

Regression suite for the ORDER BY-before-projection bugfix: the seed
evaluator projected first and sorted second, so ``ORDER BY ?x`` on a
variable the SELECT clause drops degraded every sort key to the unbound
sentinel and silently returned input order. Per SPARQL 1.1 (18.2.4-18.2.5)
the pipeline is aggregate -> ORDER BY -> projection -> DISTINCT -> slice,
and both local stores now share it via
:func:`repro.sparql.evaluator.apply_solution_modifiers`.
"""

import pytest

from repro.rdf import Graph, Literal, Namespace
from repro.sparql import Variable, apply_solution_modifiers, evaluate, parse_query

EX = Namespace("http://ex.org/")
PREFIX = "PREFIX ex: <http://ex.org/> "


@pytest.fixture
def people():
    graph = Graph()
    for key, name, age in (
        ("alice", "Alice", 30),
        ("bob", "Bob", 25),
        ("carol", "Carol", 35),
        ("dave", "Dave", 28),
    ):
        graph.add(EX[key], EX.name, Literal.from_python(name))
        graph.add(EX[key], EX.age, Literal.from_python(age))
    return graph


def names(result):
    return [str(s[Variable("n")].to_python()) for s in result]


class TestOrderByNonProjected:
    def test_ascending(self, people):
        """ORDER BY a variable the projection drops must still sort."""
        result = evaluate(
            people,
            PREFIX + "SELECT ?n WHERE { ?x ex:name ?n . ?x ex:age ?a } ORDER BY ?a",
        )
        assert names(result) == ["Bob", "Dave", "Alice", "Carol"]

    def test_descending(self, people):
        # Asserting both directions means a pass cannot be the accident of
        # input order coinciding with one of them (the pre-fix failure mode
        # was "stable sort on all-equal sentinel keys" = input order).
        result = evaluate(
            people,
            PREFIX
            + "SELECT ?n WHERE { ?x ex:name ?n . ?x ex:age ?a } ORDER BY DESC(?a)",
        )
        assert names(result) == ["Carol", "Alice", "Dave", "Bob"]

    def test_projected_column_dropped(self, people):
        """The sort variable must not leak into the projected solutions."""
        result = evaluate(
            people,
            PREFIX + "SELECT ?n WHERE { ?x ex:name ?n . ?x ex:age ?a } ORDER BY ?a",
        )
        assert all(set(s) == {Variable("n")} for s in result)

    def test_order_by_projected_still_works(self, people):
        result = evaluate(
            people,
            PREFIX + "SELECT ?n WHERE { ?x ex:name ?n } ORDER BY ?n",
        )
        assert names(result) == ["Alice", "Bob", "Carol", "Dave"]


class TestDistinctOrderSlice:
    """DISTINCT + ORDER BY + OFFSET/LIMIT against a hand-computed oracle."""

    @pytest.fixture
    def market(self):
        graph = Graph()
        for key, category, price in (
            ("a1", "fruit", 5),
            ("a2", "veg", 3),
            ("a3", "fruit", 1),
            ("a4", "dairy", 4),
        ):
            graph.add(EX[key], EX.cat, Literal.from_python(category))
            graph.add(EX[key], EX.price, Literal.from_python(price))
        return graph

    # Oracle, by hand. Pre-projection solutions sorted by ?p ascending:
    #   (fruit, 1), (veg, 3), (dairy, 4), (fruit, 5)
    # project to ?cat:   [fruit, veg, dairy, fruit]
    # DISTINCT (keep first occurrence):  [fruit, veg, dairy]
    # OFFSET 1:          [veg, dairy]
    # LIMIT 2:           [veg, dairy]

    QUERY = (
        PREFIX
        + "SELECT DISTINCT ?cat WHERE { ?x ex:cat ?cat . ?x ex:price ?p } "
        + "ORDER BY ?p"
    )

    def cats(self, result):
        return [str(s[Variable("cat")].to_python()) for s in result]

    def test_distinct_keeps_first_in_sort_order(self, market):
        assert self.cats(evaluate(market, self.QUERY)) == ["fruit", "veg", "dairy"]

    def test_offset_limit_slice_runs_last(self, market):
        result = evaluate(market, self.QUERY + " OFFSET 1 LIMIT 2")
        assert self.cats(result) == ["veg", "dairy"]

    def test_limit_alone(self, market):
        assert self.cats(evaluate(market, self.QUERY + " LIMIT 1")) == ["fruit"]

    def test_offset_past_end(self, market):
        assert evaluate(market, self.QUERY + " OFFSET 9") == []


class TestSharedHelper:
    def test_apply_solution_modifiers_direct(self, people):
        """The helper is the one pipeline home: drives it without a store."""
        query = parse_query(
            PREFIX + "SELECT ?n WHERE { ?x ex:name ?n . ?x ex:age ?a } ORDER BY ?a"
        )
        raw = [
            {Variable("n"): Literal.from_python(name),
             Variable("a"): Literal.from_python(age)}
            for name, age in (("Zoe", 9), ("Amy", 3), ("Max", 6))
        ]
        result = apply_solution_modifiers(query, raw)
        assert [str(s[Variable("n")].to_python()) for s in result] == [
            "Amy", "Max", "Zoe",
        ]

    def test_helper_does_not_mutate_input(self, people):
        query = parse_query(PREFIX + "SELECT ?n WHERE { ?x ex:name ?n } ORDER BY ?n")
        raw = [
            {Variable("n"): Literal.from_python(name)} for name in ("b", "a")
        ]
        snapshot = list(raw)
        apply_solution_modifiers(query, raw)
        assert raw == snapshot

    def test_aggregate_order_by_alias(self):
        graph = Graph()
        for key, category in (("x", "a"), ("y", "a"), ("z", "b")):
            graph.add(EX[key], EX.cat, Literal.from_python(category))
        result = evaluate(
            graph,
            PREFIX
            + "SELECT ?cat (COUNT(?s) AS ?c) WHERE { ?s ex:cat ?cat } "
            + "GROUP BY ?cat ORDER BY DESC(?c)",
        )
        counts = [int(s[Variable("c")].to_python()) for s in result]
        assert counts == [2, 1]
