"""SlowOperator faults (E23): injected per-checkpoint charge in the engines.

The E17 chaos grid gains a SPARQL-shaped fault: a named operator costs
extra modelled seconds at every governor checkpoint it passes. These tests
pin the matching rules, the append-only ``chaos()`` draw convention (a
seed's pre-E23 fault schedule must not move when the new knobs appear),
and end-to-end deadline enforcement in both engines under injection.
"""

import pytest

from repro.errors import FaultError, TimeoutExceeded
from repro.faults import FaultInjector, FaultPlan, SlowOperator
from repro.rdf import Graph
from repro.rdf.ntriples import parse_ntriples
from repro.resilience.deadline import Deadline
from repro.sparql import CompileOptions, QueryBudget, evaluate

CROSS = "SELECT ?x ?y WHERE { ?x <urn:p> ?v . ?y <urn:q> ?w }"


def build_graph(pairs=8):
    lines = []
    for index in range(pairs):
        lines.append(f'<urn:a{index}> <urn:p> "{index}" .')
        lines.append(f'<urn:b{index}> <urn:q> "{index}" .')
    graph = Graph()
    for triple in parse_ntriples("\n".join(lines)):
        graph.add(*triple)
    return graph


class TestSlowOperator:
    def test_negative_charge_rejected(self):
        with pytest.raises(FaultError):
            SlowOperator(op="ScanOp", charge_s=-0.1)

    def test_plan_not_empty(self):
        plan = FaultPlan(slow_operators=(SlowOperator(op="*", charge_s=0.1),))
        assert not plan.empty
        assert FaultPlan.none().empty


class TestOperatorCharge:
    def injector(self, *faults):
        return FaultInjector(FaultPlan(slow_operators=tuple(faults)))

    def test_no_faults_is_free(self):
        assert FaultInjector(FaultPlan.none()).operator_charge("JoinOp") == 0.0

    def test_exact_match(self):
        injector = self.injector(SlowOperator(op="JoinOp", charge_s=0.25))
        assert injector.operator_charge("JoinOp") == 0.25
        assert injector.operator_charge("ScanOp") == 0.0

    def test_prefix_match(self):
        injector = self.injector(SlowOperator(op="hash_join", charge_s=0.1))
        assert injector.operator_charge("hash_join.probe") == 0.1
        assert injector.operator_charge("hash_join") == 0.1
        assert injector.operator_charge("materialize") == 0.0

    def test_wildcard_matches_everything(self):
        injector = self.injector(SlowOperator(op="*", charge_s=0.05))
        assert injector.operator_charge("anything") == 0.05

    def test_strongest_matching_fault_wins(self):
        injector = self.injector(
            SlowOperator(op="*", charge_s=0.01),
            SlowOperator(op="JoinOp", charge_s=0.5),
        )
        assert injector.operator_charge("JoinOp") == 0.5
        assert injector.operator_charge("ScanOp") == 0.01


class TestChaosDraws:
    """The append-only convention: E23 knobs never move pre-E23 draws."""

    BASE = dict(
        node_count=8,
        node_crash_prob=0.4,
        straggler_prob=0.3,
        datanode_count=6,
        datanode_crash_prob=0.3,
        shard_count=4,
        shard_outage_prob=0.5,
        endpoints=("a", "b", "c"),
        endpoint_error_rate=0.2,
        block_count=4,
        bit_flip_prob=0.2,
        stale_replica_prob=0.2,
    )

    def test_same_seed_same_pre_e23_schedule(self):
        for seed in range(5):
            plain = FaultPlan.chaos(seed, **self.BASE)
            with_slow = FaultPlan.chaos(
                seed,
                **self.BASE,
                slow_operator_ops=("JoinOp", "hash_join", "ScanOp"),
                slow_operator_prob=1.0,
                slow_operator_charge_s=0.2,
            )
            assert with_slow.node_crashes == plain.node_crashes
            assert with_slow.stragglers == plain.stragglers
            assert with_slow.datanode_crashes == plain.datanode_crashes
            assert with_slow.shard_outages == plain.shard_outages
            assert with_slow.endpoint_faults == plain.endpoint_faults
            assert with_slow.bit_flips == plain.bit_flips
            assert with_slow.stale_replicas == plain.stale_replicas
            assert plain.slow_operators == ()
            assert with_slow.slow_operators == tuple(
                SlowOperator(op=op, charge_s=0.2)
                for op in ("JoinOp", "hash_join", "ScanOp")
            )

    def test_probability_zero_draws_nothing(self):
        plan = FaultPlan.chaos(
            3, slow_operator_ops=("JoinOp",), slow_operator_prob=0.0
        )
        assert plan.slow_operators == ()


class TestBudgetUnderInjection:
    def test_checkpoint_consumes_injected_charge(self):
        injector = FaultInjector(
            FaultPlan(slow_operators=(SlowOperator(op="ScanOp", charge_s=0.4),))
        )
        budget = QueryBudget(deadline=Deadline(1.0), injector=injector)
        budget.checkpoint("ScanOp")
        budget.checkpoint("JoinOp")  # unmatched: free
        assert budget.charged_s == pytest.approx(0.4)
        budget.checkpoint("ScanOp")
        with pytest.raises(TimeoutExceeded):
            budget.checkpoint("ScanOp")

    @pytest.mark.parametrize("engine", ["interpreted", "vector"])
    def test_wildcard_slowness_kills_query(self, engine):
        graph = build_graph(pairs=10)
        injector = FaultInjector(
            FaultPlan(slow_operators=(SlowOperator(op="*", charge_s=0.02),))
        )
        budget = QueryBudget(
            deadline=Deadline(0.05, label="chaos"), injector=injector
        )
        with pytest.raises(TimeoutExceeded):
            evaluate(
                graph,
                CROSS,
                options=CompileOptions(engine=engine, budget=budget),
            )
        assert budget.charged_s > 0.05

    def test_vector_join_prefix_fault(self):
        """op="hash_join" must slow the join loops the vector engine runs."""
        graph = build_graph(pairs=10)
        injector = FaultInjector(
            FaultPlan(slow_operators=(SlowOperator(op="hash_join", charge_s=0.2),))
        )
        budget = QueryBudget(
            deadline=Deadline(0.1, label="chaos"), injector=injector
        )
        with pytest.raises(TimeoutExceeded):
            evaluate(
                graph,
                CROSS,
                options=CompileOptions(engine="vector", budget=budget),
            )

    @pytest.mark.parametrize("engine", ["interpreted", "vector"])
    def test_unmatched_fault_is_harmless(self, engine):
        graph = build_graph(pairs=4)
        injector = FaultInjector(
            FaultPlan(
                slow_operators=(SlowOperator(op="NoSuchOp", charge_s=9.0),)
            )
        )
        budget = QueryBudget(
            deadline=Deadline(0.5, label="chaos"), injector=injector
        )
        plain = evaluate(graph, CROSS, options=CompileOptions(engine=engine))
        governed = evaluate(
            graph, CROSS, options=CompileOptions(engine=engine, budget=budget)
        )
        assert governed == plain
