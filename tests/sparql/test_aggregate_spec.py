"""SPARQL 1.1 section 18.5 aggregate conformance — the E22 bugfix suite.

Four seed-failing regressions, each run through both engines:

* **MIN/MAX use the general "<" ordering** (:func:`repro.sparql.functions.compare`),
  not numeric coercion. The seed ran ``_numeric`` over every value, so MIN
  over strings raised and MIN over typed numerics re-minted a fresh literal
  instead of returning the winning term.
* **Sum({}) = 0 and Avg({}) = 0** (typed zeros). The seed raised
  ``SPARQLError`` out of the whole query for any numeric aggregate over an
  empty group.
* **MIN/MAX over an empty group leave the alias unbound** (aggregate error
  per the spec); the seed crashed the query.
* **COUNT(DISTINCT *) dedupes full solutions**; the seed ignored DISTINCT
  for the ``*`` form and returned the plain group size.
"""

import pytest

from repro.rdf import Graph, Literal, Namespace
from repro.rdf.term import XSD_DOUBLE, XSD_INTEGER
from repro.sparql import CompileOptions, Variable, evaluate

EX = Namespace("http://ex.org/")
PREFIX = "PREFIX ex: <http://ex.org/> "

ENGINES = [
    pytest.param(CompileOptions(engine="interpreted"), id="interpreted"),
    pytest.param(CompileOptions(engine="vector"), id="vector"),
]


@pytest.fixture
def fruit():
    graph = Graph()
    for key, name in (("a", "cherry"), ("b", "apple"), ("c", "banana")):
        graph.add(EX[key], EX.name, Literal.from_python(name))
    return graph


@pytest.mark.parametrize("options", ENGINES)
class TestMinMaxOrdering:
    def test_min_over_strings(self, fruit, options):
        result = evaluate(
            fruit,
            PREFIX + "SELECT (MIN(?n) AS ?m) WHERE { ?x ex:name ?n }",
            options=options,
        )
        assert [s[Variable("m")].lexical for s in result] == ["apple"]

    def test_max_over_strings(self, fruit, options):
        result = evaluate(
            fruit,
            PREFIX + "SELECT (MAX(?n) AS ?m) WHERE { ?x ex:name ?n }",
            options=options,
        )
        assert [s[Variable("m")].lexical for s in result] == ["cherry"]

    def test_min_returns_the_term_not_a_coercion(self, options):
        """MIN must return the winning *term*; the seed re-minted min(numbers)."""
        graph = Graph()
        graph.add(EX.a, EX.v, Literal("2.5", datatype=XSD_DOUBLE))
        graph.add(EX.b, EX.v, Literal("3", datatype=XSD_INTEGER))
        result = evaluate(
            graph,
            PREFIX + "SELECT (MIN(?v) AS ?m) WHERE { ?x ex:v ?v }",
            options=options,
        )
        term = result[0][Variable("m")]
        assert term == Literal("2.5", datatype=XSD_DOUBLE)

    def test_min_incomparable_values_leaves_alias_unbound(self, fruit, options):
        """Strings vs numbers are incomparable: aggregate error -> unbound."""
        fruit.add(EX.d, EX.name, Literal.from_python(7))
        result = evaluate(
            fruit,
            PREFIX + "SELECT (MIN(?n) AS ?m) WHERE { ?x ex:name ?n }",
            options=options,
        )
        assert len(result) == 1
        assert Variable("m") not in result[0]


@pytest.mark.parametrize("options", ENGINES)
class TestEmptyGroup:
    def test_sum_over_empty_group_is_typed_zero(self, fruit, options):
        result = evaluate(
            fruit,
            PREFIX + "SELECT (SUM(?v) AS ?s) WHERE { ?x ex:missing ?v }",
            options=options,
        )
        assert [s[Variable("s")] for s in result] == [
            Literal("0", datatype=XSD_INTEGER)
        ]

    def test_avg_over_empty_group_is_zero(self, fruit, options):
        result = evaluate(
            fruit,
            PREFIX + "SELECT (AVG(?v) AS ?a) WHERE { ?x ex:missing ?v }",
            options=options,
        )
        assert [s[Variable("a")] for s in result] == [
            Literal("0", datatype=XSD_INTEGER)
        ]

    def test_min_over_empty_group_is_unbound_not_an_error(self, fruit, options):
        result = evaluate(
            fruit,
            PREFIX
            + "SELECT (MIN(?v) AS ?m) (COUNT(?v) AS ?c) "
            + "WHERE { ?x ex:missing ?v }",
            options=options,
        )
        assert len(result) == 1
        assert Variable("m") not in result[0]
        assert result[0][Variable("c")] == Literal("0", datatype=XSD_INTEGER)


@pytest.mark.parametrize("options", ENGINES)
class TestCountDistinctStar:
    def test_count_distinct_star_dedupes_full_solutions(self, fruit, options):
        # The UNION yields every solution twice; DISTINCT * must collapse it.
        query = (
            PREFIX + "SELECT (COUNT(DISTINCT *) AS ?c) WHERE "
            "{ { ?x ex:name ?n } UNION { ?x ex:name ?n } }"
        )
        result = evaluate(fruit, query, options=options)
        assert result[0][Variable("c")] == Literal("3", datatype=XSD_INTEGER)

    def test_count_star_still_counts_duplicates(self, fruit, options):
        query = (
            PREFIX + "SELECT (COUNT(*) AS ?c) WHERE "
            "{ { ?x ex:name ?n } UNION { ?x ex:name ?n } }"
        )
        result = evaluate(fruit, query, options=options)
        assert result[0][Variable("c")] == Literal("6", datatype=XSD_INTEGER)

    def test_grouped_count_distinct_star(self, fruit, options):
        query = (
            PREFIX + "SELECT ?x (COUNT(DISTINCT *) AS ?c) WHERE "
            "{ { ?x ex:name ?n } UNION { ?x ex:name ?n } } GROUP BY ?x"
        )
        result = evaluate(fruit, query, options=options)
        assert len(result) == 3
        assert all(
            s[Variable("c")] == Literal("1", datatype=XSD_INTEGER)
            for s in result
        )
