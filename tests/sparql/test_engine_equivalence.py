"""Property test: both engines return identical solution multisets — E22.

Generates randomized small graphs (IRIs, integer literals, plain string
literals) and randomized queries covering joins, OPTIONAL, UNION, VALUES
with UNDEF, error-producing FILTERs (numeric comparison over strings), BIND
arithmetic, DISTINCT, and grouped aggregates — then asserts the interpreted
and vector engines agree on the canonicalized solution multiset.

Integer-only literals keep the comparison exact: no float rounding and no
MIN/MAX ties between value-equal but differently-typed terms (where the two
engines may legitimately pick different representative terms).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import Graph
from repro.rdf.ntriples import parse_ntriples
from repro.sparql import CompileOptions, evaluate

PREFIX = "PREFIX ex: <http://ex.org/> "

SUBJECTS = [f"<http://ex.org/s{i}>" for i in range(5)]
PREDICATES = [f"<http://ex.org/p{i}>" for i in range(3)]
OBJECTS = (
    [f"<http://ex.org/o{i}>" for i in range(3)]
    + [f'"{i}"^^<http://www.w3.org/2001/XMLSchema#integer>' for i in range(0, 9, 2)]
    + ['"alpha"', '"beta"']
)
VARIABLES = ["?a", "?b", "?c"]

triples = st.tuples(
    st.sampled_from(SUBJECTS), st.sampled_from(PREDICATES), st.sampled_from(OBJECTS)
)

positions = {
    "subject": st.sampled_from(VARIABLES + SUBJECTS),
    "predicate": st.sampled_from(VARIABLES[:2] + PREDICATES),
    "object": st.sampled_from(VARIABLES + OBJECTS),
}

patterns = st.tuples(
    positions["subject"], positions["predicate"], positions["object"]
).map(lambda t: f"{t[0]} {t[1]} {t[2]} .")


def bgp(min_size=1, max_size=3):
    return st.lists(patterns, min_size=min_size, max_size=max_size).map(" ".join)


filters = st.one_of(
    st.tuples(
        st.sampled_from(VARIABLES),
        st.sampled_from(["<", "<=", ">", ">=", "=", "!="]),
        st.sampled_from(["3", "5", '"alpha"']),
    ).map(lambda t: f"FILTER({t[0]} {t[1]} {t[2]})"),
    st.tuples(st.sampled_from(VARIABLES), st.sampled_from(VARIABLES)).map(
        lambda t: f"FILTER({t[0]} + 1 > {t[1]})"
    ),
    st.tuples(st.sampled_from(VARIABLES), st.sampled_from(VARIABLES)).map(
        lambda t: f"FILTER(BOUND({t[0]}) || {t[1]} > 2)"
    ),
)

values_blocks = st.lists(
    st.tuples(
        st.sampled_from(SUBJECTS + ["UNDEF"]),
        st.sampled_from(OBJECTS[:4] + ["UNDEF"]),
    ),
    min_size=1,
    max_size=3,
).map(
    lambda rows: "VALUES (?a ?c) { "
    + " ".join(f"({s} {o})" for s, o in rows)
    + " }"
)


@st.composite
def where_clauses(draw):
    parts = [draw(bgp())]
    if draw(st.booleans()):
        parts.append("OPTIONAL { " + draw(bgp(max_size=2)) + " }")
    if draw(st.booleans()):
        parts.append(
            "{ " + draw(bgp(max_size=2)) + " } UNION { " + draw(bgp(max_size=2)) + " }"
        )
    if draw(st.booleans()):
        parts.append(draw(values_blocks))
    if draw(st.booleans()):
        parts.append(f"BIND(?a AS ?bound_{draw(st.integers(0, 1))})")
    if draw(st.booleans()):
        parts.append(draw(filters))
    return " ".join(parts)


@st.composite
def select_queries(draw):
    where = draw(where_clauses())
    distinct = "DISTINCT " if draw(st.booleans()) else ""
    projection = draw(st.sampled_from(["*", "?a ?b", "?a ?c", "?b"]))
    return f"SELECT {distinct}{projection} WHERE {{ {where} }}"


@st.composite
def aggregate_queries(draw):
    where = draw(where_clauses())
    function = draw(st.sampled_from(["COUNT", "SUM", "MIN", "MAX", "AVG"]))
    argument = draw(st.sampled_from(["?b", "?c", "DISTINCT ?c"]))
    agg = f"({function}({argument}) AS ?agg)"
    if draw(st.booleans()):
        return f"SELECT ?a {agg} WHERE {{ {where} }} GROUP BY ?a"
    return f"SELECT {agg} WHERE {{ {where} }}"


graphs = st.lists(triples, min_size=0, max_size=20).map(
    lambda rows: _build_graph(rows)
)


def _build_graph(rows):
    graph = Graph()
    text = "\n".join(f"{s} {p} {o} ." for s, p, o in rows)
    for triple in parse_ntriples(text):
        graph.add(*triple)
    return graph


def canonical(result):
    return sorted(
        sorted((variable.name, str(term)) for variable, term in row.items())
        for row in result
    )


def assert_engines_agree(graph, query):
    interpreted = evaluate(graph, query, options=CompileOptions())
    vector = evaluate(graph, query, options=CompileOptions(engine="vector"))
    assert canonical(interpreted) == canonical(vector), query


@given(graph=graphs, query=select_queries())
@settings(max_examples=120, deadline=None)
def test_select_multiset_equivalence(graph, query):
    assert_engines_agree(graph, PREFIX + query)


@given(graph=graphs, query=aggregate_queries())
@settings(max_examples=80, deadline=None)
def test_aggregate_multiset_equivalence(graph, query):
    assert_engines_agree(graph, PREFIX + query)


@given(graph=graphs, query=where_clauses())
@settings(max_examples=40, deadline=None)
def test_ask_equivalence(graph, query):
    text = PREFIX + f"ASK {{ {query} }}"
    interpreted = evaluate(graph, text, options=CompileOptions())
    vector = evaluate(graph, text, options=CompileOptions(engine="vector"))
    assert interpreted == vector, text


def _generous_budget():
    """An E23 budget no generated query can exhaust: the governed path must
    be pure accounting, never enforcement."""
    from repro.resilience.deadline import Deadline
    from repro.sparql import QueryBudget

    return QueryBudget(
        deadline=Deadline(1e9, label="equivalence"),
        max_rows=10_000_000,
        max_bytes=1 << 42,
        checkpoint_charge_s=1e-9,
        row_charge_s=1e-9,
    )


@given(graph=graphs, query=select_queries())
@settings(max_examples=40, deadline=None)
def test_governed_equivalence(graph, query):
    """Both engines under a generous budget match the ungoverned multiset."""
    text = PREFIX + query
    ungoverned = canonical(evaluate(graph, text, options=CompileOptions()))
    for engine in ("interpreted", "vector"):
        budget = _generous_budget()
        governed = evaluate(
            graph, text, options=CompileOptions(engine=engine, budget=budget)
        )
        assert canonical(governed) == ungoverned, (engine, text)
        assert budget.checkpoints > 0
