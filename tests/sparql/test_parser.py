"""SPARQL parser tests."""

import pytest

from repro.errors import SPARQLSyntaxError
from repro.rdf.term import IRI, Literal, XSD_INTEGER
from repro.sparql.ast import (
    AskQuery,
    BGP,
    BinaryOp,
    FilterPattern,
    FunctionCall,
    OptionalPattern,
    SelectQuery,
    TermExpr,
    TriplePattern,
    UnionPattern,
    Variable,
    VarExpr,
)
from repro.sparql.parser import parse_query


class TestBasicSelect:
    def test_simple_bgp(self):
        q = parse_query("SELECT ?s WHERE { ?s <http://p> <http://o> . }")
        assert isinstance(q, SelectQuery)
        assert q.variables == [Variable("s")]
        [bgp] = q.where.children
        assert isinstance(bgp, BGP)
        assert bgp.patterns == [
            TriplePattern(Variable("s"), IRI("http://p"), IRI("http://o"))
        ]

    def test_select_star(self):
        q = parse_query("SELECT * WHERE { ?s ?p ?o }")
        assert q.variables == []

    def test_where_keyword_optional(self):
        q = parse_query("SELECT ?s { ?s ?p ?o }")
        assert isinstance(q, SelectQuery)

    def test_prefixes(self):
        q = parse_query(
            "PREFIX ex: <http://ex.org/> SELECT ?s WHERE { ?s ex:p ex:o }"
        )
        [bgp] = q.where.children
        assert bgp.patterns[0].predicate == IRI("http://ex.org/p")

    def test_undeclared_prefix(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query("SELECT ?s WHERE { ?s ex:p ?o }")

    def test_a_shorthand(self):
        q = parse_query("SELECT ?s WHERE { ?s a <http://T> }")
        [bgp] = q.where.children
        assert bgp.patterns[0].predicate.value.endswith("#type")

    def test_semicolon_comma(self):
        q = parse_query(
            "SELECT ?s WHERE { ?s <http://p> ?a, ?b ; <http://q> ?c . }"
        )
        [bgp] = q.where.children
        assert len(bgp.patterns) == 3
        assert all(p.subject == Variable("s") for p in bgp.patterns)

    def test_literals(self):
        q = parse_query(
            'SELECT ?s WHERE { ?s <http://p> "text" . ?s <http://q> 42 . }'
        )
        [bgp] = q.where.children
        assert bgp.patterns[0].object == Literal("text")
        assert bgp.patterns[1].object == Literal("42", datatype=XSD_INTEGER)

    def test_typed_literal(self):
        q = parse_query(
            'PREFIX xsd: <http://www.w3.org/2001/XMLSchema#> '
            'SELECT ?s WHERE { ?s <http://p> "5"^^xsd:integer }'
        )
        [bgp] = q.where.children
        assert bgp.patterns[0].object == Literal("5", datatype=XSD_INTEGER)

    def test_distinct(self):
        assert parse_query("SELECT DISTINCT ?s WHERE { ?s ?p ?o }").distinct

    def test_nothing_selected(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query("SELECT WHERE { ?s ?p ?o }")


class TestModifiers:
    def test_limit_offset(self):
        q = parse_query("SELECT ?s WHERE { ?s ?p ?o } LIMIT 10 OFFSET 5")
        assert q.limit == 10 and q.offset == 5

    def test_offset_before_limit(self):
        q = parse_query("SELECT ?s WHERE { ?s ?p ?o } OFFSET 5 LIMIT 10")
        assert q.limit == 10 and q.offset == 5

    def test_order_by_var(self):
        q = parse_query("SELECT ?s WHERE { ?s ?p ?o } ORDER BY ?s")
        [cond] = q.order_by
        assert cond.expression == VarExpr(Variable("s")) and not cond.descending

    def test_order_by_desc(self):
        q = parse_query("SELECT ?s WHERE { ?s ?p ?o } ORDER BY DESC(?s) ?o")
        assert q.order_by[0].descending
        assert not q.order_by[1].descending

    def test_negative_limit_rejected(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query("SELECT ?s WHERE { ?s ?p ?o } LIMIT -1")


class TestPatterns:
    def test_filter(self):
        q = parse_query("SELECT ?s WHERE { ?s <http://p> ?v . FILTER (?v > 5) }")
        kinds = [type(c).__name__ for c in q.where.children]
        assert "FilterPattern" in kinds
        filt = next(c for c in q.where.children if isinstance(c, FilterPattern))
        assert isinstance(filt.expression, BinaryOp)
        assert filt.expression.operator == ">"

    def test_optional(self):
        q = parse_query(
            "SELECT ?s WHERE { ?s <http://p> ?v . OPTIONAL { ?s <http://q> ?w } }"
        )
        assert any(isinstance(c, OptionalPattern) for c in q.where.children)

    def test_union(self):
        q = parse_query(
            "SELECT ?s WHERE { { ?s <http://p> ?v } UNION { ?s <http://q> ?v } }"
        )
        [union] = q.where.children
        assert isinstance(union, UnionPattern)
        assert len(union.alternatives) == 2

    def test_nested_group(self):
        q = parse_query("SELECT ?s WHERE { { ?s <http://p> ?v } }")
        assert len(q.where.children) == 1

    def test_unterminated_group(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query("SELECT ?s WHERE { ?s ?p ?o")


class TestExpressions:
    def _filter_expr(self, text):
        q = parse_query(f"SELECT ?x WHERE {{ ?x <http://p> ?v . FILTER ({text}) }}")
        return next(
            c for c in q.where.children if isinstance(c, FilterPattern)
        ).expression

    def test_precedence_and_or(self):
        e = self._filter_expr("?v > 1 && ?v < 5 || ?v = 9")
        assert isinstance(e, BinaryOp) and e.operator == "||"
        assert isinstance(e.left, BinaryOp) and e.left.operator == "&&"

    def test_arithmetic_precedence(self):
        e = self._filter_expr("?v + 2 * 3 = 7")
        assert e.operator == "="
        assert e.left.operator == "+"
        assert e.left.right.operator == "*"

    def test_parentheses(self):
        e = self._filter_expr("(?v + 2) * 3 = 9")
        assert e.left.operator == "*"
        assert e.left.left.operator == "+"

    def test_unary_not(self):
        e = self._filter_expr("!BOUND(?v)")
        assert e.operator == "!"
        assert isinstance(e.operand, FunctionCall)
        assert e.operand.name == "BOUND"

    def test_builtin_call(self):
        e = self._filter_expr('REGEX(?v, "abc", "i")')
        assert e.name == "REGEX" and len(e.args) == 3

    def test_extension_function_by_pname(self):
        q = parse_query(
            "PREFIX geof: <http://www.opengis.net/def/function/geosparql/> "
            "SELECT ?x WHERE { ?x <http://p> ?g . FILTER (geof:sfIntersects(?g, ?g)) }"
        )
        expr = next(
            c for c in q.where.children if isinstance(c, FilterPattern)
        ).expression
        assert expr.name == "http://www.opengis.net/def/function/geosparql/sfIntersects"

    def test_unknown_keyword_function(self):
        with pytest.raises(SPARQLSyntaxError):
            parse_query("SELECT ?x WHERE { ?x ?p ?v . FILTER (NOSUCH(?v)) }")


class TestAggregates:
    def test_count_star(self):
        q = parse_query("SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }")
        [agg] = q.aggregates
        assert agg.function == "COUNT" and agg.argument is None
        assert agg.alias == Variable("n")

    def test_count_distinct_var(self):
        q = parse_query("SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s ?p ?o }")
        [agg] = q.aggregates
        assert agg.distinct

    def test_group_by(self):
        q = parse_query(
            "SELECT ?s (COUNT(?o) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?s"
        )
        assert q.group_by == [Variable("s")]
        assert q.variables == [Variable("s")]

    def test_sum_avg(self):
        q = parse_query(
            "SELECT (SUM(?v) AS ?total) (AVG(?v) AS ?mean) WHERE { ?s ?p ?v }"
        )
        assert [a.function for a in q.aggregates] == ["SUM", "AVG"]


class TestAsk:
    def test_ask(self):
        q = parse_query("ASK { ?s <http://p> ?o }")
        assert isinstance(q, AskQuery)

    def test_ask_with_where(self):
        assert isinstance(parse_query("ASK WHERE { ?s ?p ?o }"), AskQuery)


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "SELECT",
            "FOO ?s WHERE { ?s ?p ?o }",
            "SELECT ?s WHERE { ?s ?p ?o } trailing",
            "SELECT ?s WHERE { ?s ?p }",
            "SELECT ?s WHERE { FILTER ?x }",
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(SPARQLSyntaxError):
            parse_query(bad)
