"""Property test: the distributed engine matches both single-process
engines — E25.

Reuses the E22 equivalence generators (random graphs, joins, OPTIONAL,
UNION, VALUES with UNDEF, error-producing FILTERs, BIND, DISTINCT,
aggregates) and adds the E25 degrees of freedom: partition count,
replication factor, broadcast-vs-shuffle threshold, and a seeded chaos
plan. Clean runs must agree exactly; chaotic runs must *either* agree
exactly or abort with a typed, retryable fault — a wrong answer is never
acceptable, and every run must release its admission tickets exactly once.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ClusterError, FaultError, PartitionUnavailable
from repro.faults import FaultInjector, FaultPlan
from repro.sparql import CompileOptions, evaluate
from repro.sparql.dist import DistRuntime, PartialResult

from tests.sparql.test_engine_equivalence import (
    PREFIX,
    aggregate_queries,
    canonical,
    graphs,
    select_queries,
    where_clauses,
)

layouts = st.tuples(
    st.integers(min_value=1, max_value=6),  # partitions
    st.integers(min_value=1, max_value=3),  # replication
    st.sampled_from([1.0, 64.0]),           # broadcast threshold (rows)
)


def run_dist(graph, text, layout, injector=None, seed=0):
    partitions, replication, threshold = layout
    runtime = DistRuntime(
        graph,
        partitions=partitions,
        replication=replication,
        broadcast_threshold_rows=threshold,
    )
    runtime.injector = injector
    result = evaluate(
        graph, text, options=CompileOptions(engine="dist", dist=runtime)
    )
    report = runtime.last_report
    assert report.tickets_issued == report.tickets_released, text
    return result


@given(graph=graphs, query=select_queries(), layout=layouts)
@settings(max_examples=120, deadline=None)
def test_select_multiset_equivalence(graph, query, layout):
    text = PREFIX + query
    interpreted = evaluate(graph, text, options=CompileOptions())
    vector = evaluate(graph, text, options=CompileOptions(engine="vector"))
    dist = run_dist(graph, text, layout)
    assert not isinstance(dist, PartialResult)
    assert canonical(dist) == canonical(vector) == canonical(interpreted), text


@given(graph=graphs, query=aggregate_queries(), layout=layouts)
@settings(max_examples=60, deadline=None)
def test_aggregate_multiset_equivalence(graph, query, layout):
    text = PREFIX + query
    vector = evaluate(graph, text, options=CompileOptions(engine="vector"))
    dist = run_dist(graph, text, layout)
    assert canonical(dist) == canonical(vector), text


@given(graph=graphs, query=where_clauses(), layout=layouts)
@settings(max_examples=40, deadline=None)
def test_ask_equivalence(graph, query, layout):
    text = PREFIX + f"ASK {{ {query} }}"
    vector = evaluate(graph, text, options=CompileOptions(engine="vector"))
    assert run_dist(graph, text, layout) == vector, text


@given(
    graph=graphs,
    query=select_queries(),
    layout=layouts,
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=100, deadline=None)
def test_chaos_never_wrong(graph, query, layout, seed):
    """Under seeded crashes, losses, stragglers, injected task failures and
    network partitions: exact parity or a typed retryable abort — never a
    silently wrong or unflagged-partial answer."""
    text = PREFIX + query
    expected = canonical(
        evaluate(graph, text, options=CompileOptions(engine="vector"))
    )
    plan = FaultPlan.chaos(
        seed=seed,
        node_count=4,
        node_crash_prob=0.25,
        straggler_prob=0.3,
        task_failure_rate=0.15,
        node_loss_prob=0.2,
        network_partition_prob=0.2,
        network_partition_duration_s=0.01,
        horizon_s=0.03,
    )
    try:
        dist = run_dist(graph, text, layout, injector=FaultInjector(plan))
    except PartitionUnavailable as fault:
        assert fault.retryable
        return
    except ClusterError:
        # The run was stranded without a specific partition to blame
        # (e.g. every node died mid-flight): typed, diagnosable, acceptable.
        return
    assert not isinstance(dist, PartialResult)
    assert canonical(dist) == expected, (text, seed)
