"""N-Triples and Turtle parser/serializer tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RDFError
from repro.rdf import (
    BNode,
    Graph,
    IRI,
    Literal,
    parse_ntriples,
    parse_turtle,
    serialize_ntriples,
    serialize_turtle,
)
from repro.rdf.term import Triple, XSD_BOOLEAN, XSD_DECIMAL, XSD_INTEGER


EX = "http://ex.org/"


def iri(name):
    return IRI(EX + name)


class TestNTriplesParse:
    def test_simple(self):
        [t] = list(parse_ntriples("<http://s> <http://p> <http://o> ."))
        assert t == Triple(IRI("http://s"), IRI("http://p"), IRI("http://o"))

    def test_literal_plain(self):
        [t] = list(parse_ntriples('<http://s> <http://p> "hello" .'))
        assert t.object == Literal("hello")

    def test_literal_typed(self):
        line = '<http://s> <http://p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .'
        [t] = list(parse_ntriples(line))
        assert t.object == Literal("5", datatype=XSD_INTEGER)

    def test_literal_lang(self):
        [t] = list(parse_ntriples('<http://s> <http://p> "bonjour"@fr .'))
        assert t.object == Literal("bonjour", language="fr")

    def test_literal_escapes(self):
        [t] = list(parse_ntriples('<http://s> <http://p> "line1\\nline2 \\"q\\"" .'))
        assert t.object.lexical == 'line1\nline2 "q"'

    def test_unicode_escape(self):
        [t] = list(parse_ntriples('<http://s> <http://p> "\\u00e9" .'))
        assert t.object.lexical == "é"

    def test_bnode(self):
        [t] = list(parse_ntriples("_:a <http://p> _:b ."))
        assert t.subject == BNode("a")
        assert t.object == BNode("b")

    def test_comments_and_blanks_skipped(self):
        text = "# comment\n\n<http://s> <http://p> <http://o> .\n# more\n"
        assert len(list(parse_ntriples(text))) == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "<http://s> <http://p> <http://o>",  # missing dot
            "<http://s> <http://p> .",  # missing object
            '"lit" <http://p> <http://o> .',  # literal subject
            "<http://s> _:b <http://o> .",  # bnode predicate
            "<http://s> <http://p> <http://o> . extra",
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(RDFError):
            list(parse_ntriples(bad))


class TestNTriplesRoundTrip:
    def test_round_trip_mixed(self):
        triples = [
            Triple(iri("s"), iri("p"), iri("o")),
            Triple(iri("s"), iri("p"), Literal("plain")),
            Triple(iri("s"), iri("p"), Literal("5", datatype=XSD_INTEGER)),
            Triple(iri("s"), iri("p"), Literal("hi", language="en")),
            Triple(BNode("x"), iri("p"), Literal('tricky "\\\n value')),
        ]
        text = serialize_ntriples(triples)
        assert list(parse_ntriples(text)) == triples

    text_strategy = st.text(
        alphabet=st.characters(blacklist_categories=("Cs",)), max_size=50
    )

    @given(lexical=text_strategy)
    @settings(max_examples=60)
    def test_literal_round_trip_property(self, lexical):
        triple = Triple(iri("s"), iri("p"), Literal(lexical))
        [parsed] = list(parse_ntriples(serialize_ntriples([triple])))
        assert parsed.object.lexical == lexical


class TestTurtle:
    def test_prefix_and_a(self):
        text = """
        @prefix ex: <http://ex.org/> .
        ex:alice a ex:Person .
        """
        [t] = list(parse_turtle(text))
        assert t.subject == iri("alice")
        assert t.predicate.value.endswith("#type")
        assert t.object == iri("Person")

    def test_semicolon_and_comma(self):
        text = """
        @prefix ex: <http://ex.org/> .
        ex:a ex:p ex:b, ex:c ;
             ex:q "v" .
        """
        triples = set(parse_turtle(text))
        assert triples == {
            Triple(iri("a"), iri("p"), iri("b")),
            Triple(iri("a"), iri("p"), iri("c")),
            Triple(iri("a"), iri("q"), Literal("v")),
        }

    def test_numeric_shorthand(self):
        text = '@prefix ex: <http://ex.org/> .\nex:a ex:p 42 ; ex:q 3.5 ; ex:r true .'
        triples = {t.predicate.value.split("/")[-1]: t.object for t in parse_turtle(text)}
        assert triples["p"] == Literal("42", datatype=XSD_INTEGER)
        assert triples["q"] == Literal("3.5", datatype=XSD_DECIMAL)
        assert triples["r"] == Literal("true", datatype=XSD_BOOLEAN)

    def test_typed_literal_with_pname(self):
        text = (
            "@prefix ex: <http://ex.org/> .\n"
            "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"
            'ex:a ex:p "5"^^xsd:integer .'
        )
        [t] = list(parse_turtle(text))
        assert t.object == Literal("5", datatype=XSD_INTEGER)

    def test_undeclared_prefix(self):
        with pytest.raises(RDFError):
            list(parse_turtle("foo:a foo:b foo:c ."))

    def test_comment_skipped(self):
        text = "@prefix ex: <http://ex.org/> . # intro\nex:a ex:p ex:b . # done"
        assert len(list(parse_turtle(text))) == 1

    def test_serialize_groups_subjects(self):
        g = Graph()
        g.add(iri("a"), iri("p"), iri("b"))
        g.add(iri("a"), iri("q"), Literal("5", datatype=XSD_INTEGER))
        text = serialize_turtle(g, prefixes={"ex": EX})
        assert text.count("ex:a") == 1
        assert "@prefix ex:" in text

    def test_serialize_parse_round_trip(self):
        g = Graph()
        g.add(iri("a"), iri("p"), iri("b"))
        g.add(iri("a"), iri("p"), iri("c"))
        g.add(iri("d"), IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"), iri("T"))
        g.add(iri("d"), iri("label"), Literal("thing"))
        text = serialize_turtle(g, prefixes={"ex": EX})
        assert set(parse_turtle(text)) == set(g)

    def test_round_trip_without_prefixes(self):
        g = Graph()
        g.add(iri("x"), iri("y"), Literal("hello world"))
        assert set(parse_turtle(serialize_turtle(g))) == set(g)
