"""Tests for the indexed triple store."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RDFError
from repro.rdf import Graph, IRI, Literal
from repro.rdf.term import Triple


EX = "http://ex.org/"


def iri(name):
    return IRI(EX + name)


@pytest.fixture
def graph():
    g = Graph()
    g.add(iri("alice"), iri("knows"), iri("bob"))
    g.add(iri("alice"), iri("knows"), iri("carol"))
    g.add(iri("bob"), iri("knows"), iri("carol"))
    g.add(iri("alice"), iri("name"), Literal("Alice"))
    return g


class TestMutation:
    def test_add_returns_true_then_false(self):
        g = Graph()
        assert g.add(iri("a"), iri("p"), iri("b")) is True
        assert g.add(iri("a"), iri("p"), iri("b")) is False
        assert len(g) == 1

    def test_remove(self, graph):
        assert graph.remove(iri("alice"), iri("knows"), iri("bob")) is True
        assert graph.remove(iri("alice"), iri("knows"), iri("bob")) is False
        assert len(graph) == 3
        assert list(graph.triples((iri("alice"), iri("knows"), iri("bob")))) == []

    def test_remove_prunes_indexes(self):
        g = Graph()
        g.add(iri("a"), iri("p"), iri("b"))
        g.remove(iri("a"), iri("p"), iri("b"))
        assert list(g.triples((iri("a"), None, None))) == []
        assert list(g.triples((None, iri("p"), None))) == []
        assert list(g.triples((None, None, iri("b")))) == []

    def test_add_all(self):
        g = Graph()
        triples = [
            Triple(iri("a"), iri("p"), iri("b")),
            Triple(iri("a"), iri("p"), iri("b")),
            Triple(iri("a"), iri("p"), iri("c")),
        ]
        assert g.add_all(triples) == 2

    def test_contains(self, graph):
        assert Triple(iri("alice"), iri("knows"), iri("bob")) in graph
        assert Triple(iri("bob"), iri("knows"), iri("alice")) not in graph


class TestPatterns:
    def test_all_eight_patterns(self, graph):
        s, p, o = iri("alice"), iri("knows"), iri("bob")
        full = Triple(s, p, o)
        # Every combination of bound/unbound must return consistent results.
        for mask in itertools.product([True, False], repeat=3):
            pattern = (
                s if mask[0] else None,
                p if mask[1] else None,
                o if mask[2] else None,
            )
            results = set(graph.triples(pattern))
            expected = {
                t
                for t in graph
                if (pattern[0] is None or t.subject == pattern[0])
                and (pattern[1] is None or t.predicate == pattern[1])
                and (pattern[2] is None or t.object == pattern[2])
            }
            assert results == expected, f"pattern {mask}"
            assert full in results

    def test_count_matches_iteration(self, graph):
        patterns = [
            (None, None, None),
            (iri("alice"), None, None),
            (None, iri("knows"), None),
            (None, None, iri("carol")),
            (iri("alice"), iri("knows"), None),
            (None, iri("knows"), iri("carol")),
        ]
        for pattern in patterns:
            assert graph.count(pattern) == len(list(graph.triples(pattern)))

    def test_subjects_objects_unique(self, graph):
        assert set(graph.subjects(iri("knows"))) == {iri("alice"), iri("bob")}
        assert set(graph.objects(iri("alice"), iri("knows"))) == {
            iri("bob"),
            iri("carol"),
        }

    def test_value_single(self, graph):
        assert graph.value(iri("alice"), iri("name")) == Literal("Alice")

    def test_value_none(self, graph):
        assert graph.value(iri("carol"), iri("name")) is None

    def test_value_multiple_raises(self, graph):
        with pytest.raises(RDFError):
            graph.value(iri("alice"), iri("knows"))

    def test_predicate_count(self, graph):
        assert graph.predicate_count(iri("knows")) == 3
        assert graph.predicate_count(iri("name")) == 1
        assert graph.predicate_count(iri("missing")) == 0


class TestProperties:
    @given(
        data=st.lists(
            st.tuples(
                st.integers(0, 5), st.integers(0, 3), st.integers(0, 5)
            ),
            max_size=40,
        )
    )
    @settings(max_examples=50)
    def test_pattern_results_match_brute_force(self, data):
        g = Graph()
        triples = [
            Triple(iri(f"s{s}"), iri(f"p{p}"), iri(f"o{o}")) for s, p, o in data
        ]
        g.add_all(triples)
        unique = set(triples)
        assert len(g) == len(unique)
        # Spot-check bound-subject and bound-predicate patterns.
        for s in range(6):
            expected = {t for t in unique if t.subject == iri(f"s{s}")}
            assert set(g.triples((iri(f"s{s}"), None, None))) == expected
        for p in range(4):
            expected = {t for t in unique if t.predicate == iri(f"p{p}")}
            assert set(g.triples((None, iri(f"p{p}"), None))) == expected

    @given(
        data=st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 2), st.integers(0, 4)),
            max_size=30,
        )
    )
    @settings(max_examples=30)
    def test_add_remove_roundtrip(self, data):
        g = Graph()
        for s, p, o in data:
            g.add(iri(f"s{s}"), iri(f"p{p}"), iri(f"o{o}"))
        for s, p, o in data:
            g.remove(iri(f"s{s}"), iri(f"p{p}"), iri(f"o{o}"))
        assert len(g) == 0
        assert list(g.triples((None, None, None))) == []
