"""Namespace helper tests."""

import pytest

from repro.rdf import GEO, Namespace, RDF, XSD
from repro.rdf.term import IRI


class TestNamespace:
    ns = Namespace("http://ex.org/")

    def test_attribute_access(self):
        assert self.ns.thing == IRI("http://ex.org/thing")

    def test_item_access(self):
        assert self.ns["with-dash"] == IRI("http://ex.org/with-dash")

    def test_contains(self):
        assert self.ns.thing in self.ns
        assert IRI("http://other.org/x") not in self.ns

    def test_local_name(self):
        assert self.ns.local_name(self.ns.thing) == "thing"
        with pytest.raises(ValueError):
            self.ns.local_name(IRI("http://other.org/x"))

    def test_underscore_attribute_raises(self):
        with pytest.raises(AttributeError):
            self.ns._private

    def test_wellknown_vocabularies(self):
        assert RDF.type.value == "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
        assert XSD.integer.value == "http://www.w3.org/2001/XMLSchema#integer"
        assert GEO.asWKT.value == "http://www.opengis.net/ont/geosparql#asWKT"
