"""Index-backed cardinality statistics on :class:`repro.rdf.Graph` — E22.

``Graph.count`` must answer **every** pattern shape from index structures:
the seed answered two-bound shapes from bucket lengths but fell through to
full triple iteration for single-bound shapes and fully-bound membership —
O(matches) where the cost model needs O(buckets). The regressions here
monkeypatch ``triples`` to explode, proving no shape materializes triples.

Also covers the E22 term dictionary: dense ids assigned on first intern,
stable across removes (append-only), and the distinct-position statistics
the vector engine's cost model divides by.
"""

import pytest

from repro.rdf import Graph, Literal, Namespace

EX = Namespace("http://ex.org/")


@pytest.fixture
def graph():
    g = Graph()
    g.add(EX.a, EX.p, EX.x)
    g.add(EX.a, EX.p, EX.y)
    g.add(EX.a, EX.q, EX.x)
    g.add(EX.b, EX.p, EX.x)
    return g


class TestCountShapes:
    def test_all_shapes_answer_without_iterating_triples(self, graph, monkeypatch):
        """The seed iterated matches for 1-bound and 3-bound patterns."""
        def boom(*_args, **_kwargs):
            raise AssertionError("count() must not materialize triples")

        monkeypatch.setattr(graph, "triples", boom)
        assert graph.count((None, None, None)) == 4
        # Single-bound shapes (seed: fell through to iteration).
        assert graph.count((EX.a, None, None)) == 3
        assert graph.count((None, EX.p, None)) == 3
        assert graph.count((None, None, EX.x)) == 3
        # Two-bound shapes.
        assert graph.count((EX.a, EX.p, None)) == 2
        assert graph.count((None, EX.p, EX.x)) == 2
        assert graph.count((EX.a, None, EX.x)) == 2
        # Fully bound: membership (seed: iteration).
        assert graph.count((EX.a, EX.p, EX.x)) == 1
        assert graph.count((EX.a, EX.p, EX.z)) == 0

    def test_counts_for_absent_terms_are_zero(self, graph):
        assert graph.count((EX.zzz, None, None)) == 0
        assert graph.count((None, EX.zzz, None)) == 0
        assert graph.count((None, None, EX.zzz)) == 0

    def test_count_tracks_removal(self, graph):
        graph.remove(EX.a, EX.p, EX.y)
        assert graph.count((EX.a, None, None)) == 2
        assert graph.count((None, EX.p, None)) == 2


class TestDistinctStats:
    def test_distinct_position_counts(self, graph):
        assert graph.distinct_subjects() == 2
        assert graph.distinct_predicates() == 2
        assert graph.distinct_objects() == 2

    def test_distinct_counts_shrink_on_removal(self, graph):
        graph.remove(EX.b, EX.p, EX.x)
        assert graph.distinct_subjects() == 1


class TestTermDictionary:
    def test_ids_are_dense_and_stable(self):
        g = Graph()
        g.add(EX.s, EX.p, Literal.from_python(1))
        first = {t: g.term_id(t) for t in (EX.s, EX.p, Literal.from_python(1))}
        assert sorted(first.values()) == [0, 1, 2]
        g.add(EX.s, EX.p, Literal.from_python(2))
        # Existing terms keep their ids; only the new literal gets a new one.
        for term, term_id in first.items():
            assert g.term_id(term) == term_id
        assert g.term_count == 4
        assert g.term_for_id(3) == Literal.from_python(2)

    def test_ids_survive_remove(self):
        """The dictionary is append-only: ids are never recycled."""
        g = Graph()
        g.add(EX.s, EX.p, EX.o)
        object_id = g.term_id(EX.o)
        g.remove(EX.s, EX.p, EX.o)
        assert g.term_id(EX.o) == object_id
        g.add(EX.s2, EX.p2, EX.o2)
        assert g.term_id(EX.o2) not in (None, object_id)

    def test_unknown_term_has_no_id(self):
        g = Graph()
        g.add(EX.s, EX.p, EX.o)
        assert g.term_id(EX.never) is None

    def test_version_moves_with_dictionary(self):
        """Plan/codec caches key on version; adds must bump it."""
        g = Graph()
        before = g.version
        g.add(EX.s, EX.p, EX.o)
        assert g.version > before
