"""Tests for spatial predicates, including property-based consistency checks."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    LineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    contains,
    disjoint,
    distance,
    intersects,
    within,
)
from repro.geometry.predicates import (
    point_in_polygon,
    point_segment_distance,
    segments_intersect,
)

coord = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)


class TestSegments:
    def test_crossing(self):
        assert segments_intersect((0, 0), (2, 2), (0, 2), (2, 0))

    def test_parallel_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (0, 1), (1, 1))

    def test_collinear_overlapping(self):
        assert segments_intersect((0, 0), (2, 0), (1, 0), (3, 0))

    def test_collinear_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (2, 0), (3, 0))

    def test_touching_endpoint(self):
        assert segments_intersect((0, 0), (1, 1), (1, 1), (2, 0))

    def test_t_junction(self):
        assert segments_intersect((0, 0), (2, 0), (1, 0), (1, 5))

    def test_point_segment_distance(self):
        assert point_segment_distance((0, 1), (-1, 0), (1, 0)) == pytest.approx(1.0)
        assert point_segment_distance((5, 0), (-1, 0), (1, 0)) == pytest.approx(4.0)
        assert point_segment_distance((0, 0), (0, 0), (0, 0)) == 0.0


class TestPointInPolygon:
    square = Polygon.box(0, 0, 10, 10)

    def test_interior(self):
        assert point_in_polygon(Point(5, 5), self.square)

    def test_exterior(self):
        assert not point_in_polygon(Point(15, 5), self.square)

    def test_on_edge(self):
        assert point_in_polygon(Point(0, 5), self.square)

    def test_on_vertex(self):
        assert point_in_polygon(Point(0, 0), self.square)

    def test_in_hole(self):
        donut = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)], [[(4, 4), (6, 4), (6, 6), (4, 6)]]
        )
        assert not point_in_polygon(Point(5, 5), donut)
        assert point_in_polygon(Point(2, 2), donut)
        # On the hole boundary counts as in the polygon (boundary is shared).
        assert point_in_polygon(Point(4, 5), donut)

    def test_concave(self):
        arrow = Polygon([(0, 0), (4, 0), (4, 4), (2, 1), (0, 4)])
        assert point_in_polygon(Point(1, 1), arrow)
        assert not point_in_polygon(Point(2, 3), arrow)


class TestIntersects:
    def test_point_point(self):
        assert intersects(Point(1, 1), Point(1, 1))
        assert not intersects(Point(1, 1), Point(1, 2))

    def test_point_line(self):
        line = LineString([(0, 0), (10, 0)])
        assert intersects(Point(5, 0), line)
        assert not intersects(Point(5, 1), line)

    def test_line_line(self):
        a = LineString([(0, 0), (10, 10)])
        b = LineString([(0, 10), (10, 0)])
        c = LineString([(20, 20), (30, 30)])
        assert intersects(a, b)
        assert not intersects(a, c)

    def test_line_polygon_crossing(self):
        poly = Polygon.box(0, 0, 10, 10)
        assert intersects(LineString([(-5, 5), (15, 5)]), poly)

    def test_line_inside_polygon(self):
        poly = Polygon.box(0, 0, 10, 10)
        assert intersects(LineString([(2, 2), (8, 8)]), poly)

    def test_polygon_polygon_overlap(self):
        assert intersects(Polygon.box(0, 0, 5, 5), Polygon.box(3, 3, 8, 8))

    def test_polygon_polygon_nested(self):
        assert intersects(Polygon.box(0, 0, 10, 10), Polygon.box(4, 4, 6, 6))
        assert intersects(Polygon.box(4, 4, 6, 6), Polygon.box(0, 0, 10, 10))

    def test_polygon_polygon_disjoint(self):
        assert not intersects(Polygon.box(0, 0, 1, 1), Polygon.box(5, 5, 6, 6))

    def test_polygon_polygon_touching_edge(self):
        assert intersects(Polygon.box(0, 0, 1, 1), Polygon.box(1, 0, 2, 1))

    def test_multipolygon(self):
        mp = MultiPolygon([Polygon.box(0, 0, 1, 1), Polygon.box(10, 10, 11, 11)])
        assert intersects(mp, Point(10.5, 10.5))
        assert not intersects(mp, Point(5, 5))

    def test_bbox_shortcut_correct(self):
        # Boxes overlap but geometries do not.
        tri_a = Polygon([(0, 0), (4, 0), (0, 4)])
        tri_b = Polygon([(4, 4), (4, 3), (3, 4)])
        assert tri_a.bbox.intersects(tri_b.bbox)
        assert not intersects(tri_a, tri_b)


class TestContainsWithin:
    def test_polygon_contains_point(self):
        assert contains(Polygon.box(0, 0, 10, 10), Point(5, 5))
        assert within(Point(5, 5), Polygon.box(0, 0, 10, 10))

    def test_polygon_contains_polygon(self):
        assert contains(Polygon.box(0, 0, 10, 10), Polygon.box(2, 2, 4, 4))
        assert not contains(Polygon.box(2, 2, 4, 4), Polygon.box(0, 0, 10, 10))

    def test_overlapping_not_contained(self):
        assert not contains(Polygon.box(0, 0, 5, 5), Polygon.box(3, 3, 8, 8))

    def test_hole_breaks_containment(self):
        donut = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)], [[(4, 4), (6, 4), (6, 6), (4, 6)]]
        )
        assert not contains(donut, Polygon.box(4.5, 4.5, 5.5, 5.5))
        assert contains(donut, Polygon.box(1, 1, 3, 3))

    def test_line_contains_point(self):
        assert contains(LineString([(0, 0), (10, 0)]), Point(5, 0))

    def test_line_contains_subline(self):
        assert contains(
            LineString([(0, 0), (10, 0)]), LineString([(2, 0), (8, 0)])
        )

    def test_polygon_contains_line(self):
        assert contains(Polygon.box(0, 0, 10, 10), LineString([(1, 1), (9, 9)]))
        assert not contains(Polygon.box(0, 0, 10, 10), LineString([(1, 1), (19, 9)]))

    def test_multipoint_within_polygon(self):
        mp = MultiPoint([Point(1, 1), Point(2, 2)])
        assert within(mp, Polygon.box(0, 0, 10, 10))
        assert not within(MultiPoint([Point(1, 1), Point(20, 2)]), Polygon.box(0, 0, 10, 10))


class TestDistance:
    def test_point_point(self):
        assert distance(Point(0, 0), Point(3, 4)) == pytest.approx(5.0)

    def test_point_polygon(self):
        assert distance(Point(15, 0), Polygon.box(0, 0, 10, 10)) == pytest.approx(5.0)

    def test_inside_is_zero(self):
        assert distance(Point(5, 5), Polygon.box(0, 0, 10, 10)) == 0.0

    def test_polygon_polygon(self):
        assert distance(
            Polygon.box(0, 0, 1, 1), Polygon.box(4, 0, 5, 1)
        ) == pytest.approx(3.0)

    def test_line_line(self):
        a = LineString([(0, 0), (0, 10)])
        b = LineString([(3, 0), (3, 10)])
        assert distance(a, b) == pytest.approx(3.0)

    def test_multigeometry_min(self):
        mp = MultiPolygon([Polygon.box(0, 0, 1, 1), Polygon.box(8, 0, 9, 1)])
        assert distance(Point(6, 0.5), mp) == pytest.approx(2.0)


class TestProperties:
    @given(x=coord, y=coord, sides=st.integers(3, 12), r=st.floats(0.1, 20))
    @settings(max_examples=80)
    def test_intersects_symmetric(self, x, y, sides, r):
        poly = Polygon.regular(0, 0, 10, sides)
        other = Polygon.regular(x, y, r, 4)
        assert intersects(poly, other) == intersects(other, poly)

    @given(x=coord, y=coord)
    def test_disjoint_is_negation(self, x, y):
        poly = Polygon.box(-5, -5, 5, 5)
        p = Point(x, y)
        assert disjoint(p, poly) == (not intersects(p, poly))

    @given(x=coord, y=coord)
    def test_within_implies_intersects(self, x, y):
        poly = Polygon.box(-50, -50, 50, 50)
        p = Point(x, y)
        if within(p, poly):
            assert intersects(p, poly)

    @given(x=coord, y=coord)
    def test_distance_zero_iff_intersects(self, x, y):
        poly = Polygon.box(-10, -10, 10, 10)
        p = Point(x, y)
        d = distance(p, poly)
        if intersects(p, poly):
            assert d == 0.0
        else:
            assert d > 0.0

    @given(x=coord, y=coord)
    def test_point_in_polygon_matches_winding_reference(self, x, y):
        """Ray casting result must agree with a winding-number reference."""
        poly = Polygon.regular(0, 0, 30, 7)
        expected = _winding_number_contains(x, y, poly.exterior)
        got = point_in_polygon(Point(x, y), poly)
        # Near the boundary the two methods may legitimately differ: skip.
        boundary_dist = min(
            point_segment_distance((x, y), a, b)
            for a, b in zip(poly.exterior, poly.exterior[1:])
        )
        if boundary_dist > 1e-9:
            assert got == expected


def _winding_number_contains(x, y, ring):
    angle = 0.0
    for (x1, y1), (x2, y2) in zip(ring, ring[1:]):
        a1 = math.atan2(y1 - y, x1 - x)
        a2 = math.atan2(y2 - y, x2 - x)
        delta = a2 - a1
        while delta > math.pi:
            delta -= 2 * math.pi
        while delta < -math.pi:
            delta += 2 * math.pi
        angle += delta
    return abs(angle) > math.pi
