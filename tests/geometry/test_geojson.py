"""GeoJSON encoding/decoding tests."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import (
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)
from repro.geometry.geojson import (
    dumps_feature_collection,
    feature,
    geojson_to_geometry,
    geometry_to_geojson,
    loads_feature_collection,
)

coord = st.floats(min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False)


class TestGeometryEncoding:
    def test_point(self):
        assert geometry_to_geojson(Point(1, 2)) == {
            "type": "Point", "coordinates": [1.0, 2.0],
        }

    def test_polygon_with_hole(self):
        donut = Polygon(
            [(0, 0), (4, 0), (4, 4), (0, 4)], [[(1, 1), (2, 1), (2, 2)]]
        )
        obj = geometry_to_geojson(donut)
        assert obj["type"] == "Polygon"
        assert len(obj["coordinates"]) == 2
        assert obj["coordinates"][0][0] == obj["coordinates"][0][-1]  # closed

    @pytest.mark.parametrize(
        "geometry",
        [
            Point(3, 4),
            LineString([(0, 0), (1, 2), (3, 1)]),
            Polygon.box(0, 0, 5, 5),
            MultiPoint([Point(0, 0), Point(1, 1)]),
            MultiLineString([LineString([(0, 0), (1, 1)])]),
            MultiPolygon([Polygon.box(0, 0, 1, 1), Polygon.box(2, 2, 3, 3)]),
        ],
    )
    def test_round_trip_all_types(self, geometry):
        assert geojson_to_geometry(geometry_to_geojson(geometry)) == geometry

    @given(
        coords=st.lists(st.tuples(coord, coord), min_size=2, max_size=10)
    )
    @settings(max_examples=40)
    def test_linestring_round_trip_property(self, coords):
        line = LineString(coords)
        assert geojson_to_geometry(geometry_to_geojson(line)) == line

    def test_json_serialisable(self):
        obj = geometry_to_geojson(Polygon.box(0, 0, 2, 2))
        assert json.loads(json.dumps(obj)) == obj


class TestDecodingErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            {"coordinates": [1, 2]},
            {"type": "Circle", "coordinates": [0, 0, 5]},
            {"type": "Point"},
            {"type": "Point", "coordinates": [1]},
            {"type": "Polygon", "coordinates": []},
            "not a dict",
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(GeometryError):
            geojson_to_geometry(bad)


class TestFeatures:
    def test_feature_wraps_properties(self):
        f = feature(Point(0, 0), {"name": "berg", "area": 12.5})
        assert f["type"] == "Feature"
        assert f["properties"]["name"] == "berg"

    def test_collection_round_trip(self):
        pairs = [
            (Point(0, 0), {"id": 1}),
            (Polygon.box(1, 1, 2, 2), {"crop": "wheat"}),
        ]
        text = dumps_feature_collection(pairs)
        parsed = loads_feature_collection(text)
        assert parsed[0][0] == Point(0, 0)
        assert parsed[0][1] == {"id": 1}
        assert parsed[1][0] == Polygon.box(1, 1, 2, 2)
        assert parsed[1][1] == {"crop": "wheat"}

    def test_empty_collection(self):
        assert loads_feature_collection(dumps_feature_collection([])) == []

    def test_null_properties_tolerated(self):
        text = json.dumps(
            {
                "type": "FeatureCollection",
                "features": [
                    {
                        "type": "Feature",
                        "geometry": {"type": "Point", "coordinates": [1, 2]},
                        "properties": None,
                    }
                ],
            }
        )
        [(geometry, properties)] = loads_feature_collection(text)
        assert properties == {}

    @pytest.mark.parametrize(
        "bad",
        [
            "not json",
            json.dumps({"type": "Feature"}),
            json.dumps({"type": "FeatureCollection", "features": [{"type": "x"}]}),
        ],
    )
    def test_malformed_collections(self, bad):
        with pytest.raises(GeometryError):
            loads_feature_collection(bad)

    def test_geotriples_integration(self):
        """GeoJSON features feed straight into a GeoTriples mapping."""
        from repro.geotriples import ObjectMap, TriplesMap, transform_to_store
        from repro.sparql import Variable

        text = dumps_feature_collection(
            [(Polygon.box(0, 0, 10, 10), {"id": 7, "crop": "maize"})]
        )
        records = [
            {**properties, "geometry": geometry}
            for geometry, properties in loads_feature_collection(text)
        ]
        mapping = TriplesMap(
            subject_template="http://ex.org/f/{id}",
            object_maps=[
                ObjectMap(predicate="http://ex.org/crop", column="crop"),
                ObjectMap(
                    predicate="http://www.opengis.net/ont/geosparql#hasGeometry",
                    column="geometry",
                    is_geometry=True,
                ),
            ],
        )
        store = transform_to_store(records, mapping)
        assert store.geometry_count == 1
