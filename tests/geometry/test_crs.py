"""CRS projection tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import LocalProjection, Point, Polygon
from repro.geometry.crs import haversine_m


class TestLocalProjection:
    def test_origin_maps_to_zero(self):
        proj = LocalProjection(23.7, 37.9)  # Athens
        assert proj.forward(23.7, 37.9) == pytest.approx((0.0, 0.0))

    def test_one_degree_latitude_is_about_111km(self):
        proj = LocalProjection(0, 0)
        _, y = proj.forward(0, 1)
        assert y == pytest.approx(111_195, rel=0.01)

    def test_longitude_shrinks_with_latitude(self):
        equator = LocalProjection(0, 0)
        arctic = LocalProjection(0, 70)
        x_eq, _ = equator.forward(1, 0)
        x_arc, _ = arctic.forward(1, 70)
        assert x_arc < x_eq * 0.5

    def test_round_trip(self):
        proj = LocalProjection(10.0, 50.0)
        lon, lat = proj.inverse(*proj.forward(10.5, 50.25))
        assert lon == pytest.approx(10.5)
        assert lat == pytest.approx(50.25)

    @given(
        dlon=st.floats(-0.5, 0.5, allow_nan=False),
        dlat=st.floats(-0.5, 0.5, allow_nan=False),
    )
    @settings(max_examples=50)
    def test_round_trip_property(self, dlon, dlat):
        proj = LocalProjection(15.0, 45.0)
        lon, lat = proj.inverse(*proj.forward(15.0 + dlon, 45.0 + dlat))
        assert lon == pytest.approx(15.0 + dlon, abs=1e-9)
        assert lat == pytest.approx(45.0 + dlat, abs=1e-9)

    def test_matches_haversine_locally(self):
        proj = LocalProjection(20.0, 60.0)
        x, y = proj.forward(20.1, 60.05)
        planar = (x**2 + y**2) ** 0.5
        true = haversine_m(20.0, 60.0, 20.1, 60.05)
        assert planar == pytest.approx(true, rel=0.01)

    def test_pole_rejected(self):
        with pytest.raises(GeometryError):
            LocalProjection(0, 90)

    def test_range_validation(self):
        with pytest.raises(GeometryError):
            LocalProjection(200, 0)
        with pytest.raises(GeometryError):
            LocalProjection(0, 95)

    def test_project_geometry(self):
        proj = LocalProjection(0, 0)
        poly = Polygon.box(0, 0, 0.1, 0.1)
        projected = proj.project_geometry(poly)
        assert projected.bbox.min_x == pytest.approx(0.0)
        assert projected.bbox.max_y == pytest.approx(11_119.5, rel=0.01)
        back = proj.unproject_geometry(projected)
        assert back.bbox.max_x == pytest.approx(0.1, abs=1e-9)

    def test_project_point(self):
        proj = LocalProjection(5, 5)
        p = proj.project_geometry(Point(5, 5))
        assert (p.x, p.y) == pytest.approx((0, 0))


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(10, 50, 10, 50) == 0.0

    def test_quarter_meridian(self):
        # Pole to equator along a meridian ~ 10,000 km by definition of the metre.
        assert haversine_m(0, 0, 0, 90) == pytest.approx(10_007_543, rel=0.01)

    def test_symmetry(self):
        assert haversine_m(1, 2, 3, 4) == pytest.approx(haversine_m(3, 4, 1, 2))
