"""R-tree tests: correctness vs linear scan (property-based) and structure."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import BoundingBox, RTree

coord = st.floats(min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False)


def make_box(x, y, w, h):
    return BoundingBox(x, y, x + abs(w), y + abs(h))


box_strategy = st.builds(
    make_box,
    coord,
    coord,
    st.floats(min_value=0, max_value=50, allow_nan=False),
    st.floats(min_value=0, max_value=50, allow_nan=False),
)


class TestConstruction:
    def test_empty_bulk_load(self):
        tree = RTree.bulk_load([])
        assert len(tree) == 0
        assert list(tree.search(BoundingBox(0, 0, 1, 1))) == []

    def test_max_entries_validation(self):
        with pytest.raises(GeometryError):
            RTree(max_entries=2)

    def test_bulk_load_size(self):
        entries = [(make_box(i, i, 1, 1), i) for i in range(100)]
        tree = RTree.bulk_load(entries)
        assert len(tree) == 100
        assert sorted(item for _, item in tree.items()) == list(range(100))

    def test_bulk_load_height_logarithmic(self):
        entries = [(make_box(i % 50, i // 50, 1, 1), i) for i in range(2500)]
        tree = RTree.bulk_load(entries, max_entries=16)
        assert tree.height <= 4

    def test_dynamic_insert_size(self):
        tree = RTree()
        for i in range(200):
            tree.insert(make_box(i, 0, 1, 1), i)
        assert len(tree) == 200


class TestSearch:
    def test_point_query(self):
        entries = [(make_box(i * 10, 0, 5, 5), i) for i in range(10)]
        tree = RTree.bulk_load(entries)
        hits = list(tree.search(BoundingBox(12, 1, 13, 2)))
        assert hits == [1]

    def test_query_touching_boundary_included(self):
        tree = RTree.bulk_load([(BoundingBox(0, 0, 10, 10), "a")])
        assert list(tree.search(BoundingBox(10, 10, 20, 20))) == ["a"]

    def test_no_hits(self):
        tree = RTree.bulk_load([(BoundingBox(0, 0, 1, 1), "a")])
        assert list(tree.search(BoundingBox(5, 5, 6, 6))) == []

    @given(
        boxes=st.lists(box_strategy, min_size=0, max_size=120),
        query=box_strategy,
    )
    @settings(max_examples=60)
    def test_bulk_load_matches_linear_scan(self, boxes, query):
        entries = list(enumerate(boxes))
        tree = RTree.bulk_load([(b, i) for i, b in entries])
        expected = {i for i, b in entries if b.intersects(query)}
        assert set(tree.search(query)) == expected

    @given(
        boxes=st.lists(box_strategy, min_size=0, max_size=120),
        query=box_strategy,
    )
    @settings(max_examples=60)
    def test_dynamic_insert_matches_linear_scan(self, boxes, query):
        tree = RTree(max_entries=5)
        for i, box in enumerate(boxes):
            tree.insert(box, i)
        expected = {i for i, b in enumerate(boxes) if b.intersects(query)}
        assert set(tree.search(query)) == expected

    def test_large_random_consistency(self):
        rng = random.Random(7)
        boxes = [
            make_box(rng.uniform(-500, 500), rng.uniform(-500, 500), rng.uniform(0, 20), rng.uniform(0, 20))
            for _ in range(3000)
        ]
        tree = RTree.bulk_load(list(zip(boxes, range(len(boxes)))))
        for _ in range(20):
            q = make_box(rng.uniform(-500, 500), rng.uniform(-500, 500), 50, 50)
            expected = {i for i, b in enumerate(boxes) if b.intersects(q)}
            assert set(tree.search(q)) == expected


class TestNearest:
    def test_nearest_single(self):
        entries = [(make_box(i * 10, 0, 1, 1), i) for i in range(10)]
        tree = RTree.bulk_load(entries)
        [(dist, item)] = tree.nearest(32, 0.5)
        assert item == 3
        assert dist == pytest.approx(1.0)

    def test_nearest_inside_is_zero(self):
        tree = RTree.bulk_load([(BoundingBox(0, 0, 10, 10), "a")])
        [(dist, item)] = tree.nearest(5, 5)
        assert dist == 0.0 and item == "a"

    def test_nearest_k(self):
        entries = [(make_box(i * 10, 0, 1, 1), i) for i in range(10)]
        tree = RTree.bulk_load(entries)
        results = tree.nearest(0, 0, count=3)
        assert [item for _, item in results] == [0, 1, 2]

    def test_nearest_empty_tree(self):
        assert RTree().nearest(0, 0) == []

    def test_nearest_count_validation(self):
        with pytest.raises(GeometryError):
            RTree().nearest(0, 0, count=0)

    @given(boxes=st.lists(box_strategy, min_size=1, max_size=60), x=coord, y=coord)
    @settings(max_examples=40)
    def test_nearest_matches_linear_scan(self, boxes, x, y):
        tree = RTree.bulk_load([(b, i) for i, b in enumerate(boxes)])
        [(dist, _)] = tree.nearest(x, y)
        expected = min(b.distance_to_point(x, y) for b in boxes)
        assert dist == pytest.approx(expected)
