"""WKT parser/serializer tests, including hypothesis round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WKTParseError
from repro.geometry import (
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    from_wkt,
    to_wkt,
)

finite_coord = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestParse:
    def test_point(self):
        geom = from_wkt("POINT (30 10)")
        assert geom == Point(30, 10)

    def test_point_case_insensitive(self):
        assert from_wkt("point(1 2)") == Point(1, 2)

    def test_point_negative_and_scientific(self):
        geom = from_wkt("POINT (-1.5e2 +0.25)")
        assert geom == Point(-150, 0.25)

    def test_linestring(self):
        geom = from_wkt("LINESTRING (30 10, 10 30, 40 40)")
        assert isinstance(geom, LineString)
        assert geom.coords == ((30, 10), (10, 30), (40, 40))

    def test_polygon(self):
        geom = from_wkt("POLYGON ((30 10, 40 40, 20 40, 10 20, 30 10))")
        assert isinstance(geom, Polygon)
        assert len(geom.exterior) == 5
        assert geom.interiors == ()

    def test_polygon_with_hole(self):
        geom = from_wkt(
            "POLYGON ((35 10, 45 45, 15 40, 10 20, 35 10), "
            "(20 30, 35 35, 30 20, 20 30))"
        )
        assert isinstance(geom, Polygon)
        assert len(geom.interiors) == 1

    def test_multipoint_both_syntaxes(self):
        a = from_wkt("MULTIPOINT ((10 40), (40 30))")
        b = from_wkt("MULTIPOINT (10 40, 40 30)")
        assert a == b == MultiPoint([Point(10, 40), Point(40, 30)])

    def test_multilinestring(self):
        geom = from_wkt("MULTILINESTRING ((10 10, 20 20), (40 40, 30 30, 40 20))")
        assert isinstance(geom, MultiLineString)
        assert len(geom) == 2

    def test_multipolygon(self):
        geom = from_wkt(
            "MULTIPOLYGON (((30 20, 45 40, 10 40, 30 20)), "
            "((15 5, 40 10, 10 20, 5 10, 15 5)))"
        )
        assert isinstance(geom, MultiPolygon)
        assert len(geom) == 2

    def test_multipolygon_with_hole(self):
        geom = from_wkt(
            "MULTIPOLYGON (((40 40, 20 45, 45 30, 40 40)), "
            "((20 35, 10 30, 10 10, 30 5, 45 20, 20 35), "
            "(30 20, 20 15, 20 25, 30 20)))"
        )
        assert isinstance(geom, MultiPolygon)
        assert len(geom.geoms[1].interiors) == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "POINT",
            "POINT ()",
            "POINT (1)",
            "POINT (1 2",
            "POINT (1 2) extra",
            "CIRCLE (0 0, 5)",
            "POLYGON (30 10, 40 40)",
            "LINESTRING ((1 2), (3 4))",
            "POINT (a b)",
        ],
    )
    def test_malformed_raises(self, bad):
        with pytest.raises(WKTParseError):
            from_wkt(bad)


class TestSerialize:
    def test_point(self):
        assert to_wkt(Point(30, 10)) == "POINT (30 10)"

    def test_float_preserved(self):
        assert to_wkt(Point(1.5, -0.25)) == "POINT (1.5 -0.25)"

    def test_polygon_with_hole(self):
        poly = Polygon(
            [(0, 0), (4, 0), (4, 4), (0, 4)], [[(1, 1), (2, 1), (2, 2)]]
        )
        text = to_wkt(poly)
        assert text.startswith("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1,")


class TestRoundTrip:
    @given(x=finite_coord, y=finite_coord)
    def test_point_round_trip(self, x, y):
        p = Point(x, y)
        assert from_wkt(to_wkt(p)) == p

    @given(
        coords=st.lists(st.tuples(finite_coord, finite_coord), min_size=2, max_size=12)
    )
    def test_linestring_round_trip(self, coords):
        line = LineString(coords)
        assert from_wkt(to_wkt(line)) == line

    @given(
        sides=st.integers(min_value=3, max_value=32),
        cx=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        cy=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        radius=st.floats(min_value=0.001, max_value=100, allow_nan=False),
    )
    @settings(max_examples=50)
    def test_polygon_round_trip(self, sides, cx, cy, radius):
        poly = Polygon.regular(cx, cy, radius, sides)
        assert from_wkt(to_wkt(poly)) == poly

    @given(
        points=st.lists(
            st.tuples(finite_coord, finite_coord), min_size=1, max_size=8
        )
    )
    def test_multipoint_round_trip(self, points):
        mp = MultiPoint([Point(x, y) for x, y in points])
        assert from_wkt(to_wkt(mp)) == mp

    def test_multipolygon_round_trip(self):
        mp = MultiPolygon(
            [
                Polygon.box(0, 0, 1, 1),
                Polygon([(5, 5), (9, 5), (9, 9), (5, 9)], [[(6, 6), (7, 6), (7, 7)]]),
            ]
        )
        assert from_wkt(to_wkt(mp)) == mp

    def test_multilinestring_round_trip(self):
        mls = MultiLineString(
            [LineString([(0, 0), (1, 1)]), LineString([(2, 2), (3, 3), (4, 2)])]
        )
        assert from_wkt(to_wkt(mls)) == mls
