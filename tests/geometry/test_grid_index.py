"""Grid index tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import BoundingBox, GridIndex

coord = st.floats(min_value=-500, max_value=500, allow_nan=False, allow_infinity=False)


def make_box(x, y, w, h):
    return BoundingBox(x, y, x + abs(w), y + abs(h))


box_strategy = st.builds(
    make_box, coord, coord, st.floats(0, 30, allow_nan=False), st.floats(0, 30, allow_nan=False)
)


class TestGridIndex:
    def test_cell_size_validation(self):
        with pytest.raises(GeometryError):
            GridIndex(0)
        with pytest.raises(GeometryError):
            GridIndex(-3)

    def test_insert_and_search(self):
        index = GridIndex(cell_size=10)
        index.insert(BoundingBox(0, 0, 5, 5), "a")
        index.insert(BoundingBox(100, 100, 105, 105), "b")
        assert list(index.search(BoundingBox(1, 1, 2, 2))) == ["a"]
        assert list(index.search(BoundingBox(50, 50, 60, 60))) == []

    def test_spanning_entry_reported_once(self):
        index = GridIndex(cell_size=1)
        index.insert(BoundingBox(0, 0, 10, 10), "wide")
        hits = list(index.search(BoundingBox(0, 0, 10, 10)))
        assert hits == ["wide"]

    def test_len_counts_entries_not_cells(self):
        index = GridIndex(cell_size=1)
        index.insert(BoundingBox(0, 0, 5, 5), "wide")
        assert len(index) == 1
        assert index.cell_count == 36

    def test_negative_coordinates(self):
        index = GridIndex(cell_size=10)
        index.insert(BoundingBox(-25, -25, -15, -15), "neg")
        assert list(index.search(BoundingBox(-20, -20, -18, -18))) == ["neg"]

    def test_cells_iteration(self):
        index = GridIndex(cell_size=10)
        index.insert(BoundingBox(0, 0, 1, 1), "a")
        index.insert(BoundingBox(0, 0, 1, 1), "b")
        [(key, entries)] = list(index.cells())
        assert key == (0, 0)
        assert [item for _, item in entries] == ["a", "b"]

    @given(
        boxes=st.lists(box_strategy, min_size=0, max_size=80),
        query=box_strategy,
        cell=st.floats(min_value=0.5, max_value=100, allow_nan=False),
    )
    @settings(max_examples=60)
    def test_matches_linear_scan(self, boxes, query, cell):
        index = GridIndex(cell_size=cell)
        for i, box in enumerate(boxes):
            index.insert(box, i)
        expected = {i for i, b in enumerate(boxes) if b.intersects(query)}
        assert set(index.search(query)) == expected
