"""Unit tests for geometry primitives."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry import (
    BoundingBox,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)


class TestBoundingBox:
    def test_properties(self):
        box = BoundingBox(0, 0, 4, 3)
        assert box.width == 4
        assert box.height == 3
        assert box.area == 12
        assert box.center == (2.0, 1.5)

    def test_degenerate_rejected(self):
        with pytest.raises(GeometryError):
            BoundingBox(2, 0, 1, 1)
        with pytest.raises(GeometryError):
            BoundingBox(0, 2, 1, 1)

    def test_zero_extent_allowed(self):
        box = BoundingBox(1, 1, 1, 1)
        assert box.area == 0
        assert box.contains_point(1, 1)

    def test_intersects_overlapping(self):
        a = BoundingBox(0, 0, 2, 2)
        b = BoundingBox(1, 1, 3, 3)
        assert a.intersects(b) and b.intersects(a)

    def test_intersects_touching_edge(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(1, 0, 2, 1)
        assert a.intersects(b)

    def test_disjoint_boxes(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(2, 2, 3, 3)
        assert not a.intersects(b)

    def test_contains_box(self):
        outer = BoundingBox(0, 0, 10, 10)
        inner = BoundingBox(2, 2, 3, 3)
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)
        assert outer.contains_box(outer)

    def test_union(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(2, 2, 3, 3)
        union = a.union(b)
        assert union == BoundingBox(0, 0, 3, 3)

    def test_union_all_empty_raises(self):
        with pytest.raises(GeometryError):
            BoundingBox.union_all([])

    def test_expand(self):
        box = BoundingBox(0, 0, 1, 1).expand(0.5)
        assert box == BoundingBox(-0.5, -0.5, 1.5, 1.5)

    def test_distance_to_point(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.distance_to_point(1, 1) == 0.0
        assert box.distance_to_point(5, 2) == 3.0
        assert box.distance_to_point(5, 6) == pytest.approx(5.0)


class TestPoint:
    def test_bbox_is_degenerate(self):
        p = Point(3, 4)
        assert p.bbox == BoundingBox(3, 4, 3, 4)

    def test_equality_and_hash(self):
        assert Point(1, 2) == Point(1.0, 2.0)
        assert hash(Point(1, 2)) == hash(Point(1, 2))
        assert Point(1, 2) != Point(2, 1)

    def test_immutable(self):
        p = Point(0, 0)
        with pytest.raises(AttributeError):
            p.x = 5

    def test_non_finite_rejected(self):
        with pytest.raises(GeometryError):
            Point(float("nan"), 0)
        with pytest.raises(GeometryError):
            Point(0, float("inf"))


class TestLineString:
    def test_requires_two_points(self):
        with pytest.raises(GeometryError):
            LineString([(0, 0)])

    def test_length(self):
        line = LineString([(0, 0), (3, 4), (3, 8)])
        assert line.length == pytest.approx(5 + 4)

    def test_bbox(self):
        line = LineString([(0, 5), (2, -1)])
        assert line.bbox == BoundingBox(0, -1, 2, 5)

    def test_segments(self):
        line = LineString([(0, 0), (1, 0), (1, 1)])
        assert list(line.segments()) == [((0, 0), (1, 0)), ((1, 0), (1, 1))]


class TestPolygon:
    def test_auto_closes_ring(self):
        poly = Polygon([(0, 0), (1, 0), (1, 1)])
        assert poly.exterior[0] == poly.exterior[-1]
        assert len(poly.exterior) == 4

    def test_rejects_two_vertex_ring(self):
        with pytest.raises(GeometryError):
            Polygon([(0, 0), (1, 1)])

    def test_area_unit_square(self):
        square = Polygon.box(0, 0, 1, 1)
        assert square.area == pytest.approx(1.0)

    def test_area_with_hole(self):
        outer = [(0, 0), (4, 0), (4, 4), (0, 4)]
        hole = [(1, 1), (2, 1), (2, 2), (1, 2)]
        poly = Polygon(outer, [hole])
        assert poly.area == pytest.approx(16 - 1)

    def test_area_orientation_invariant(self):
        ccw = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        cw = Polygon([(0, 0), (0, 2), (2, 2), (2, 0)])
        assert ccw.area == pytest.approx(cw.area)

    def test_centroid_of_square(self):
        square = Polygon.box(0, 0, 2, 2)
        c = square.centroid
        assert (c.x, c.y) == pytest.approx((1.0, 1.0))

    def test_perimeter(self):
        assert Polygon.box(0, 0, 2, 1).perimeter == pytest.approx(6.0)

    def test_vertex_count(self):
        poly = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)], [[(1, 1), (2, 1), (2, 2)]])
        assert poly.vertex_count == 4 + 3

    def test_box_validation(self):
        with pytest.raises(GeometryError):
            Polygon.box(1, 0, 1, 2)

    def test_regular_polygon(self):
        hexagon = Polygon.regular(0, 0, 1, 6)
        assert hexagon.vertex_count == 6
        # Hexagon area = 3*sqrt(3)/2 * r^2
        assert hexagon.area == pytest.approx(3 * math.sqrt(3) / 2, rel=1e-9)

    def test_regular_polygon_validation(self):
        with pytest.raises(GeometryError):
            Polygon.regular(0, 0, 1, 2)
        with pytest.raises(GeometryError):
            Polygon.regular(0, 0, -1, 5)


class TestMultiGeometries:
    def test_multipoint_bbox(self):
        mp = MultiPoint([Point(0, 0), Point(5, -2)])
        assert mp.bbox == BoundingBox(0, -2, 5, 0)

    def test_empty_multi_rejected(self):
        with pytest.raises(GeometryError):
            MultiPolygon([])

    def test_member_type_enforced(self):
        with pytest.raises(GeometryError):
            MultiPolygon([Point(0, 0)])

    def test_multipolygon_area_sums(self):
        mp = MultiPolygon([Polygon.box(0, 0, 1, 1), Polygon.box(5, 5, 7, 6)])
        assert mp.area == pytest.approx(1 + 2)

    def test_iteration_and_len(self):
        mls = MultiLineString([LineString([(0, 0), (1, 1)])])
        assert len(mls) == 1
        assert all(isinstance(g, LineString) for g in mls)

    def test_equality(self):
        a = MultiPoint([Point(1, 1)])
        b = MultiPoint([Point(1, 1)])
        assert a == b
        assert hash(a) == hash(b)
