"""Deadline tests: clocked vs charge-driven budgets, the null object."""

import math

import pytest

from repro.errors import FaultError, TimeoutExceeded
from repro.resilience import Deadline, NO_DEADLINE


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestChargedDeadline:
    def test_charges_accumulate_and_expire(self):
        deadline = Deadline(1.0)
        assert not deadline.clocked
        assert deadline.remaining() == 1.0
        deadline.charge(0.6)
        assert deadline.remaining() == pytest.approx(0.4)
        assert not deadline.expired
        deadline.charge(0.6)
        assert deadline.expired
        assert deadline.remaining() == 0.0

    def test_check_raises_with_context(self):
        deadline = Deadline(0.5, label="query-7")
        deadline.charge(1.0)
        with pytest.raises(TimeoutExceeded) as excinfo:
            deadline.check("hopsfs.kvstore")
        assert "query-7" in str(excinfo.value)
        assert "hopsfs.kvstore" in str(excinfo.value)

    def test_exact_budget_is_not_expired(self):
        # Expiry is strict: spending exactly the budget is still in time.
        deadline = Deadline(1.0)
        deadline.charge(1.0)
        assert not deadline.expired
        deadline.check()  # must not raise

    def test_allows_previews_spending(self):
        deadline = Deadline(1.0)
        deadline.charge(0.7)
        assert deadline.allows(0.3)
        assert not deadline.allows(0.31)

    def test_negative_charge_rejected(self):
        with pytest.raises(FaultError):
            Deadline(1.0).charge(-0.1)

    def test_negative_budget_rejected(self):
        with pytest.raises(FaultError):
            Deadline(-1.0)


class TestClockedDeadline:
    def test_clock_drift_consumes_budget(self):
        clock = FakeClock(10.0)
        deadline = Deadline(2.0, clock=clock)
        assert deadline.clocked
        clock.now = 11.5
        assert deadline.elapsed() == pytest.approx(1.5)
        clock.now = 12.5
        assert deadline.expired
        with pytest.raises(TimeoutExceeded):
            deadline.check("federation.fetch")

    def test_charges_add_to_clock_drift(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        clock.now = 1.0
        deadline.charge(0.5)
        assert deadline.elapsed() == pytest.approx(1.5)
        assert deadline.remaining() == pytest.approx(0.5)


class TestNoDeadline:
    def test_never_expires_and_charging_is_noop(self):
        assert NO_DEADLINE.budget_s == math.inf
        NO_DEADLINE.charge(1e12)
        assert not NO_DEADLINE.expired
        NO_DEADLINE.check("anywhere")
        assert NO_DEADLINE.allows(1e12)
        assert NO_DEADLINE.remaining() == math.inf
