"""Admission controller tests: the two-tier bulkhead and its null object."""

import pytest

from repro.errors import FaultError, Overloaded
from repro.obs import Observability
from repro.resilience import (
    AdmissionController,
    NULL_ADMISSION,
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
)


def make_controller(**kwargs):
    defaults = dict(max_in_flight=2, max_queue=2, scope="test")
    defaults.update(kwargs)
    return AdmissionController(**defaults)


class TestAdmission:
    def test_fast_region_admits_all_priorities(self):
        controller = make_controller()
        controller.admit(PRIORITY_BATCH)
        controller.admit(PRIORITY_INTERACTIVE)
        assert controller.in_flight == 2
        assert controller.admitted == 2
        assert controller.shed == 0

    def test_pressure_region_sheds_batch_keeps_interactive(self):
        controller = make_controller()
        controller.admit(PRIORITY_BATCH)
        controller.admit(PRIORITY_BATCH)
        assert controller.under_pressure
        with pytest.raises(Overloaded) as excinfo:
            controller.admit(PRIORITY_BATCH)
        assert excinfo.value.reason == "pressure"
        assert excinfo.value.scope == "test"
        assert excinfo.value.retryable
        controller.admit(PRIORITY_INTERACTIVE)  # queue is for the worthy
        assert controller.in_flight == 3

    def test_full_capacity_sheds_everything(self):
        controller = make_controller()
        for _ in range(4):
            controller.admit(PRIORITY_INTERACTIVE)
        with pytest.raises(Overloaded) as excinfo:
            controller.admit(PRIORITY_INTERACTIVE)
        assert excinfo.value.reason == "capacity"
        assert controller.shed == 1

    def test_release_frees_capacity(self):
        controller = make_controller(max_in_flight=1, max_queue=0)
        ticket = controller.admit()
        with pytest.raises(Overloaded):
            controller.admit()
        ticket.release()
        assert controller.in_flight == 0
        controller.admit()  # capacity is back

    def test_ticket_release_is_idempotent(self):
        controller = make_controller()
        ticket = controller.admit()
        ticket.release()
        ticket.release()
        assert controller.in_flight == 0

    def test_ticket_context_manager(self):
        controller = make_controller()
        with controller.admit() as ticket:
            assert ticket.priority == PRIORITY_INTERACTIVE
            assert controller.in_flight == 1
        assert controller.in_flight == 0

    def test_unmatched_release_is_an_error(self):
        controller = make_controller()
        ticket = controller.admit()
        ticket.release()
        with pytest.raises(FaultError):
            controller._release(ticket)

    def test_try_admit_returns_none_instead_of_raising(self):
        controller = make_controller(max_in_flight=1, max_queue=0)
        assert controller.try_admit() is not None
        assert controller.try_admit() is None
        assert controller.shed == 1

    def test_high_water_tracks_peak(self):
        controller = make_controller()
        tickets = [controller.admit() for _ in range(3)]
        for ticket in tickets:
            ticket.release()
        assert controller.high_water == 3
        assert controller.in_flight == 0

    def test_validation(self):
        with pytest.raises(FaultError):
            AdmissionController(max_in_flight=0)
        with pytest.raises(FaultError):
            AdmissionController(max_queue=-1)


class TestObservability:
    def test_gauge_and_shed_counter(self):
        obs = Observability()
        controller = make_controller(max_in_flight=1, max_queue=0, obs=obs)
        ticket = controller.admit(PRIORITY_BATCH)
        assert obs.metrics.gauge("resilience.in_flight", scope="test").value == 1
        with pytest.raises(Overloaded):
            controller.admit(PRIORITY_BATCH)
        shed = obs.metrics.counter(
            "resilience.shed", scope="test", priority=PRIORITY_BATCH,
            reason="capacity",
        )
        assert shed.value == 1
        ticket.release()
        assert obs.metrics.gauge("resilience.in_flight", scope="test").value == 0


class TestNullAdmission:
    def test_admits_everything_for_free(self):
        tickets = [NULL_ADMISSION.admit(PRIORITY_BATCH) for _ in range(1000)]
        assert NULL_ADMISSION.in_flight == 0
        for ticket in tickets:
            ticket.release()
        assert NULL_ADMISSION.try_admit() is not None
