"""Circuit breaker tests: the state machine, determinism, the set."""

import pytest

from repro.errors import CircuitOpen, FaultError
from repro.obs import Observability
from repro.resilience import (
    CLOSED,
    CircuitBreaker,
    CircuitBreakerSet,
    HALF_OPEN,
    NULL_BREAKER,
    OPEN,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def make_breaker(**kwargs):
    defaults = dict(
        name="ep", failure_threshold=3, window=8, recovery_calls=4,
        half_open_probes=1, probe_admit=1.0, seed=1,
    )
    defaults.update(kwargs)
    return CircuitBreaker(**defaults)


def trip(breaker):
    for _ in range(breaker.failure_threshold):
        breaker.before_call()
        breaker.record_failure()
    assert breaker.state == OPEN
    return breaker


class TestStateMachine:
    def test_trips_after_threshold_failures_in_window(self):
        breaker = make_breaker()
        for _ in range(2):
            breaker.before_call()
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.before_call()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 1

    def test_successes_age_failures_out_of_the_window(self):
        breaker = make_breaker(failure_threshold=3, window=3)
        for outcome in (True, False, True, False, True, False):
            breaker.before_call()
            if outcome:
                breaker.record_failure()
            else:
                breaker.record_success()
        # Never 3 failures within any 3-call window.
        assert breaker.state == CLOSED

    def test_open_rejects_with_circuit_open(self):
        breaker = trip(make_breaker())
        with pytest.raises(CircuitOpen) as excinfo:
            breaker.before_call()
        assert excinfo.value.breaker == "ep"
        assert excinfo.value.retryable
        assert breaker.rejections == 1

    def test_unclocked_recovery_counts_rejected_calls(self):
        breaker = trip(make_breaker(recovery_calls=2))
        for _ in range(2):
            with pytest.raises(CircuitOpen):
                breaker.before_call()
        # Recovery window elapsed: next call is a half-open probe.
        breaker.before_call()
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.closes == 1

    def test_clocked_recovery_waits_for_time(self):
        clock = FakeClock()
        breaker = trip(make_breaker(clock=clock, recovery_time_s=10.0))
        clock.now = 9.9
        with pytest.raises(CircuitOpen):
            breaker.before_call()
        clock.now = 10.0
        breaker.before_call()
        assert breaker.state == HALF_OPEN

    def test_probe_failure_reopens(self):
        breaker = trip(make_breaker(recovery_calls=1))
        with pytest.raises(CircuitOpen):
            breaker.before_call()
        breaker.before_call()  # admitted probe
        assert breaker.state == HALF_OPEN
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 2

    def test_multiple_probes_required_to_close(self):
        breaker = trip(make_breaker(recovery_calls=1, half_open_probes=2))
        with pytest.raises(CircuitOpen):
            breaker.before_call()
        breaker.before_call()
        breaker.record_success()
        assert breaker.state == HALF_OPEN  # one success is not enough
        breaker.before_call()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_probe_admission_is_seeded_and_replayable(self):
        def probe_pattern(seed):
            breaker = trip(
                make_breaker(recovery_calls=1, probe_admit=0.5, seed=seed)
            )
            with pytest.raises(CircuitOpen):
                breaker.before_call()
            pattern = []
            for _ in range(10):
                try:
                    breaker.before_call()
                    pattern.append(True)
                except CircuitOpen:
                    pattern.append(False)
            return pattern

        assert probe_pattern(3) == probe_pattern(3)
        assert True in probe_pattern(3) and False in probe_pattern(3)

    def test_call_wrapper_counts_fault_errors_only(self):
        breaker = make_breaker()
        with pytest.raises(ValueError):
            breaker.call(lambda: (_ for _ in ()).throw(ValueError("no")))
        assert breaker.state == CLOSED
        for _ in range(3):
            with pytest.raises(FaultError):
                breaker.call(
                    lambda: (_ for _ in ()).throw(FaultError("boom"))
                )
        assert breaker.state == OPEN

    def test_validation(self):
        with pytest.raises(FaultError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(FaultError):
            CircuitBreaker(failure_threshold=5, window=4)
        with pytest.raises(FaultError):
            CircuitBreaker(probe_admit=0.0)
        with pytest.raises(FaultError):
            CircuitBreaker(half_open_probes=0)


class TestObservability:
    def test_state_gauge_and_counters(self):
        obs = Observability()
        breaker = make_breaker(obs=obs)
        trip(breaker)
        gauge = obs.metrics.gauge("resilience.breaker_state", breaker="ep")
        assert gauge.value == 2  # OPEN
        opens = obs.metrics.counter("resilience.breaker_opens", breaker="ep")
        assert opens.value == 1


class TestNullBreaker:
    def test_admits_everything_records_nothing(self):
        NULL_BREAKER.before_call()
        NULL_BREAKER.record_failure()
        NULL_BREAKER.record_failure()
        NULL_BREAKER.record_failure()
        assert NULL_BREAKER.state == CLOSED
        assert NULL_BREAKER.call(lambda: 41) == 41


class TestBreakerSet:
    def test_memoises_per_key(self):
        breakers = CircuitBreakerSet(seed=0)
        assert breakers.for_key("a") is breakers.for_key("a")
        assert breakers.for_key("a") is not breakers.for_key("b")
        assert len(breakers) == 2

    def test_per_key_seeds_stable_across_sets(self):
        # The same key probes on the same schedule regardless of which
        # other breakers exist in the set.
        first = CircuitBreakerSet(seed=9, failure_threshold=1, window=1,
                                  recovery_calls=1, probe_admit=0.5)
        second = CircuitBreakerSet(seed=9, failure_threshold=1, window=1,
                                   recovery_calls=1, probe_admit=0.5)
        second.for_key("other")  # extra neighbour must not shift streams

        def pattern(breakers):
            breaker = breakers.for_key("shared")
            breaker.before_call()
            breaker.record_failure()
            with pytest.raises(CircuitOpen):
                breaker.before_call()
            admitted = []
            for _ in range(8):
                try:
                    breaker.before_call()
                    admitted.append(True)
                    breaker.record_failure()  # re-open; keep probing
                    with pytest.raises(CircuitOpen):
                        breaker.before_call()
                except CircuitOpen:
                    admitted.append(False)
            return admitted

        assert pattern(first) == pattern(second)

    def test_aggregates(self):
        breakers = CircuitBreakerSet(
            seed=0, failure_threshold=1, window=1, recovery_calls=100
        )
        breaker = breakers.for_key("ep0")
        breaker.before_call()
        breaker.record_failure()
        with pytest.raises(CircuitOpen):
            breakers.for_key("ep0").before_call()
        breakers.for_key("ep1")
        assert breakers.open_count() == 1
        assert breakers.total_opens() == 1
        assert breakers.total_rejections() == 1
