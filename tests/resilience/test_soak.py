"""Chaos-soak tests: liveness, accounting invariants, determinism, shape."""

import pytest

from repro.errors import FaultError
from repro.resilience import SoakConfig, run_soak, soak_plan
from repro.resilience.soak import SoakReport


def short_config(**kwargs):
    defaults = dict(seed=18, requests=300)
    defaults.update(kwargs)
    return SoakConfig(**defaults)


class TestSoakPlan:
    def test_plan_is_deterministic(self):
        config = short_config()
        assert soak_plan(config) == soak_plan(config)

    def test_plan_varies_with_seed(self):
        assert soak_plan(short_config(seed=1)) != soak_plan(
            short_config(seed=2)
        )

    def test_plan_has_flaps_and_bursts(self):
        plan = soak_plan(short_config())
        config = short_config()
        assert len(plan.endpoint_flaps) == (
            config.backends * config.flaps_per_backend
        )
        assert len(plan.overload_bursts) == config.burst_count


class TestInvariants:
    @pytest.mark.parametrize("protected", [False, True])
    def test_every_arrival_is_accounted_for(self, protected):
        report = run_soak(short_config(), protected=protected)
        report.verify()
        assert report.arrivals == 300
        assert (
            report.ok + report.late + report.failed + report.shed
            + report.expired
            == report.arrivals
        )

    def test_unprotected_run_never_sheds_or_expires(self):
        report = run_soak(short_config(), protected=False)
        assert report.shed == 0
        assert report.expired == 0
        assert report.breaker_opens == 0

    def test_default_schedule_is_a_real_soak(self):
        # The acceptance bar: >= 1000 scheduled events, zero hangs, and
        # the invariant check green on both sides.
        config = SoakConfig()
        for protected in (False, True):
            report = run_soak(config, protected=protected)
            report.verify()
            assert report.arrivals >= 1000
            assert report.events_processed >= 1000

    def test_verify_catches_accounting_leaks(self):
        report = run_soak(short_config(), protected=True)
        report.ok += 1  # corrupt the books
        with pytest.raises(FaultError):
            report.verify()

    def test_verify_catches_residual_state(self):
        report = SoakReport(protected=True)
        report.residual["queued"] = 3
        with pytest.raises(FaultError):
            report.verify()


class TestDeterminism:
    @pytest.mark.parametrize("protected", [False, True])
    def test_same_config_same_report(self, protected):
        first = run_soak(short_config(), protected=protected)
        second = run_soak(short_config(), protected=protected)
        assert first.summary() == second.summary()
        assert first.latencies_s == second.latencies_s

    def test_different_seeds_differ(self):
        assert (
            run_soak(short_config(seed=1)).summary()
            != run_soak(short_config(seed=2)).summary()
        )


class TestShape:
    def test_protection_wins_on_goodput_and_tail(self):
        config = SoakConfig(seed=18)
        bare = run_soak(config, protected=False)
        protected = run_soak(config, protected=True)
        assert protected.goodput > bare.goodput
        assert protected.p99_latency_s < bare.p99_latency_s
        # All three mechanisms engaged.
        assert protected.shed > 0
        assert protected.breaker_opens > 0
        assert protected.fast_failures > 0
