"""Disabled-path parity: unset resilience arguments change nothing.

The E18 contract mirrors ``repro.faults`` and ``repro.obs``: every
subsystem takes its resilience collaborators as optional arguments, and a
run with them unset (or set to the shared null objects) is byte-identical
to the pre-resilience code path. These tests drive seeded chaos workloads
through the kvstore, the federation executor, the scheduler and the
catalog twice — bare vs null-object — and require identical outcomes.
"""

import random
from datetime import datetime

from repro.catalog import SemanticCatalog
from repro.cluster import ClusterSpec, Scheduler
from repro.faults import EndpointFault, FaultInjector, FaultPlan, RetryPolicy
from repro.federation import Endpoint, execute_federated
from repro.hopsfs.kvstore import ShardedKVStore
from repro.raster.products import ProductArchive
from repro.rdf import Graph, Literal, Namespace
from repro.resilience import NO_DEADLINE, NULL_ADMISSION

SEED = 18


def chaos_store(**resilience):
    plan = FaultPlan.chaos(
        SEED, shard_count=4, shard_outage_prob=0.5, outage_start_ops=5,
        outage_duration_ops=10,
    )
    store = ShardedKVStore(
        shard_count=4,
        injector=FaultInjector(plan),
        retry_policy=RetryPolicy(max_attempts=16, jitter=0.0),
    )
    rng = random.Random(SEED)
    reads = []
    for i in range(200):
        key = rng.randrange(40)
        if rng.random() < 0.5:
            store.put(key, f"k{i}", i, **resilience)
        else:
            reads.append(store.get(key, f"k{i % 7}", **resilience))
    return store, reads


def store_digest(store, reads):
    return (
        store.op_count,
        store.multi_shard_fraction,
        store.makespan_ms(),
        store.total_work_ms(),
        store.storage_entries(),
        store.retries,
        store.retry_wait_ms,
        reads,
    )


def test_kvstore_parity():
    bare = store_digest(*chaos_store())
    null = store_digest(*chaos_store(deadline=NO_DEADLINE))
    assert bare == null


def build_federation():
    EX = Namespace("http://ex.org/")
    crops = Graph("crops")
    weather = Graph("weather")
    for i in range(30):
        crops.add(EX[f"f{i}"], EX.crop, Literal("wheat" if i % 2 else "maize"))
        weather.add(EX[f"f{i}"], EX.rain, Literal.from_python(10 + i))
    plan = FaultPlan(
        seed=SEED,
        endpoint_faults=(
            EndpointFault("weather", error_rate=0.25, timeout_rate=0.1),
        ),
    )
    injector = FaultInjector(plan)
    query = (
        "PREFIX ex: <http://ex.org/> "
        "SELECT ?f ?c ?r WHERE { ?f ex:crop ?c . ?f ex:rain ?r }"
    )
    return query, [
        Endpoint("crops", crops, injector=injector),
        Endpoint("weather", weather, injector=injector),
    ]


def federation_digest(**resilience):
    query, endpoints = build_federation()
    solutions, metrics = execute_federated(
        query, endpoints, retry_policy=RetryPolicy(max_attempts=8, jitter=0.0),
        **resilience,
    )
    return (
        sorted(
            tuple(sorted((str(k), str(v)) for k, v in s.items()))
            for s in solutions
        ),
        metrics.requests,
        metrics.bindings_shipped,
        metrics.results,
        metrics.complete,
        metrics.endpoint_failures,
        metrics.retries,
        metrics.transient_failures,
    )


def test_federation_parity():
    bare = federation_digest()
    null = federation_digest(
        deadline=NO_DEADLINE, admission=NULL_ADMISSION
    )
    assert bare == null


def scheduler_digest(**resilience):
    plan = FaultPlan.chaos(
        SEED, node_count=6, node_crash_prob=0.2, horizon_s=15.0,
        task_failure_rate=0.05,
    )
    scheduler = Scheduler(
        ClusterSpec(node_count=6, cpu_slots_per_node=2),
        injector=FaultInjector(plan),
        max_retries=6,
        **resilience,
    )
    scheduler.submit_all([scheduler.make_task(1.5) for _ in range(60)])
    return scheduler.run().as_dict()


def test_scheduler_parity():
    assert scheduler_digest() == scheduler_digest(admission=NULL_ADMISSION)


def catalog_digest(**resilience):
    catalog = SemanticCatalog(
        admission=resilience.pop("admission", None)
    )
    archive = ProductArchive(
        extent=(0.0, 50.0, 30.0, 80.0),
        start=datetime(2017, 1, 1),
        days=120,
        seed=SEED,
    )
    catalog.add_products(archive.generate(12))
    return [
        str(iri)
        for iri in catalog.search_products(mission="Sentinel-1", **resilience)
    ]


def test_catalog_parity():
    bare = catalog_digest()
    null = catalog_digest(admission=NULL_ADMISSION, deadline=NO_DEADLINE)
    assert bare == null
