"""The crash-point sweep: every boundary clean, and the CLI contract."""

import pytest

from repro.durability import CrashPointHarness
from repro.durability.harness import main, make_workload


class TestSweep:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sweep_is_clean_at_every_boundary(self, seed):
        harness = CrashPointHarness(seed=seed, ops=12)
        report = harness.run().verify()
        # Every WAL record boundary swept twice: clean crash + torn crash.
        assert report.crash_points == 2 * report.wal_records
        assert report.wal_records > 0

    def test_workload_is_seed_deterministic(self):
        assert make_workload(3, ops=20) == make_workload(3, ops=20)
        assert make_workload(3, ops=20) != make_workload(4, ops=20)

    def test_workload_mixes_single_and_multi_shard_ops(self):
        kinds = {op[0] for op in make_workload(0, ops=24)}
        assert "put" in kinds
        assert "transact" in kinds

    def test_oracle_tracks_every_prefix(self):
        harness = CrashPointHarness(seed=0, ops=10)
        oracle = harness.oracle_states()
        assert len(oracle) == len(harness.workload) + 1
        assert oracle[0] == {}

    def test_report_verify_raises_on_failures(self):
        harness = CrashPointHarness(seed=0, ops=8)
        report = harness.run()
        report.failures.append("synthetic failure")
        with pytest.raises(AssertionError):
            report.verify()


class TestCli:
    def test_main_exits_zero_on_clean_sweep(self, capsys):
        assert main(["--seeds", "0", "--ops", "8"]) == 0
        out = capsys.readouterr().out
        assert "recovery soak clean" in out

    def test_main_sweeps_multiple_seeds(self, capsys):
        assert main(["--seeds", "0,1", "--ops", "6"]) == 0
        out = capsys.readouterr().out
        assert "seed 0:" in out and "seed 1:" in out
