"""Property tests: WAL replay is idempotent and split-invariant.

For ANY operation sequence:

* recovering twice yields byte-identical state (idempotence — recovery
  heals logs, and healed logs must recover to the same answer);
* recovering from a snapshot taken after any prefix plus the log suffix
  yields the same state as a full from-scratch replay (split invariance);
* the recovered state always equals the live pre-crash state.
"""

from hypothesis import given, settings, strategies as st

from repro.durability import DurabilityLayer
from repro.hopsfs import ShardedKVStore

SHARDS = 3

pks = st.integers(min_value=0, max_value=7)
keys = st.sampled_from(["a", "b", "c"])
values = st.integers(min_value=0, max_value=99)

put_ops = st.tuples(st.just("put"), pks, keys, values)
delete_ops = st.tuples(st.just("delete"), pks, keys)
txn_ops = st.tuples(
    st.just("txn"),
    st.lists(st.tuples(pks, keys, values), min_size=1, max_size=3),
    st.lists(st.tuples(pks, keys), max_size=2),
)
op_lists = st.lists(
    st.one_of(put_ops, delete_ops, txn_ops), min_size=1, max_size=15
)


def apply_ops(store, ops):
    for op in ops:
        if op[0] == "put":
            store.put(op[1], op[2], op[3])
        elif op[0] == "delete":
            store.delete(op[1], op[2])
        else:
            store.transact(writes=list(op[1]), deletes=list(op[2]))


def flatten(store):
    return {
        (pk, key): value
        for shard in range(store.shard_count)
        for pk, key, value in store.shard_items(shard)
    }


def durable_store():
    return ShardedKVStore(shard_count=SHARDS, durability=DurabilityLayer())


@settings(max_examples=60, deadline=None)
@given(ops=op_lists)
def test_recovery_matches_live_state_and_is_idempotent(ops):
    store = durable_store()
    apply_ops(store, ops)
    live = flatten(store)
    store.crash()
    store.recover()
    first = flatten(store)
    store.crash()
    store.recover()
    second = flatten(store)
    assert first == live
    assert second == first


@settings(max_examples=60, deadline=None)
@given(ops=op_lists, data=st.data())
def test_snapshot_split_is_replay_invariant(ops, data):
    # Reference: full from-scratch replay, no snapshot anywhere.
    reference = durable_store()
    apply_ops(reference, ops)
    reference.crash()
    reference.recover()

    # Same ops with a checkpoint after an arbitrary prefix: recovery goes
    # snapshot + suffix for every shard and must land on the same state.
    split = data.draw(st.integers(min_value=0, max_value=len(ops)))
    store = durable_store()
    apply_ops(store, ops[:split])
    store.checkpoint(truncate=data.draw(st.booleans()))
    apply_ops(store, ops[split:])
    store.crash()
    store.recover()
    assert flatten(store) == flatten(reference)


@settings(max_examples=60, deadline=None)
@given(ops=op_lists)
def test_wal_bytes_are_run_deterministic(ops):
    def run():
        store = durable_store()
        apply_ops(store, ops)
        return [bytes(log.buffer) for log in store.durability.logs]

    assert run() == run()
