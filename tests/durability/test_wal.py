"""WAL framing, torn tails, crash points, snapshots, marker healing."""

import pytest

from repro.durability import DurabilityLayer, ShardSnapshot, WriteAheadLog
from repro.durability.wal import TXN_COMMIT, encode_record
from repro.errors import (
    SimulatedCrash,
    SnapshotCorrupted,
    StorageError,
    WALCorrupted,
)


class TestFraming:
    def test_append_and_replay_round_trip(self):
        log = WriteAheadLog(0)
        records = [
            {"kind": "put", "pk": 1, "key": "a", "value": {"n": i}}
            for i in range(5)
        ]
        for record in records:
            log.append(record)
        decoded, torn = log.records()
        assert decoded == records
        assert not torn
        assert log.record_count == 5

    def test_torn_final_frame_is_discarded_silently(self):
        log = WriteAheadLog(0)
        log.append({"kind": "put", "pk": 1, "key": "a", "value": 1})
        log.append({"kind": "put", "pk": 1, "key": "b", "value": 2}, torn=True)
        decoded, torn = log.records()
        assert len(decoded) == 1
        assert torn
        assert log.record_count == 1  # torn writes never count as durable

    def test_mid_log_corruption_raises(self):
        log = WriteAheadLog(0)
        log.append({"kind": "put", "pk": 1, "key": "a", "value": 1})
        first_len = len(log.buffer)
        log.append({"kind": "put", "pk": 1, "key": "b", "value": 2})
        # Flip a payload byte of the FIRST record: valid data follows, so
        # this is rot, not a crash artifact.
        log.buffer[first_len - 1] ^= 0xFF
        with pytest.raises(WALCorrupted) as excinfo:
            log.records()
        assert excinfo.value.record_index == 0

    def test_repair_tail_drops_only_garbage(self):
        log = WriteAheadLog(0)
        log.append({"kind": "put", "pk": 1, "key": "a", "value": 1})
        clean = bytes(log.buffer)
        log.append({"kind": "put", "pk": 1, "key": "b", "value": 2}, torn=True)
        assert log.repair_tail() > 0
        assert bytes(log.buffer) == clean
        assert log.repair_tail() == 0  # idempotent on a clean log

    def test_truncate_before_releases_prefix(self):
        log = WriteAheadLog(0)
        log.append({"kind": "put", "pk": 1, "key": "a", "value": 1})
        offset = log.size
        log.append({"kind": "put", "pk": 1, "key": "b", "value": 2})
        log.truncate_before(offset)
        assert log.base_offset == offset
        decoded, _ = log.records(offset)
        assert [r["key"] for r in decoded] == ["b"]
        with pytest.raises(StorageError):
            log.records(0)  # the prefix is gone
        with pytest.raises(StorageError):
            log.truncate_before(offset - 1)

    def test_encode_record_is_deterministic(self):
        record = {"kind": "put", "pk": 3, "key": "k", "value": [1, 2]}
        assert encode_record(record) == encode_record(record)


class TestCrashPoints:
    def layer(self, **kwargs):
        layer = DurabilityLayer(**kwargs)
        layer.bind(2)
        return layer

    def test_crash_point_fires_before_the_append(self):
        layer = self.layer(crash_after_records=1)
        layer.log_put(0, 1, "a", 1)
        with pytest.raises(SimulatedCrash) as excinfo:
            layer.log_put(0, 1, "b", 2)
        assert excinfo.value.records_durable == 1
        decoded, torn = layer.logs[0].records()
        assert len(decoded) == 1 and not torn

    def test_torn_crash_leaves_a_torn_prefix(self):
        layer = self.layer(crash_after_records=1, torn_crash=True)
        layer.log_put(0, 1, "a", 1)
        with pytest.raises(SimulatedCrash):
            layer.log_put(0, 1, "b", 2)
        decoded, torn = layer.logs[0].records()
        assert len(decoded) == 1
        assert torn  # the interrupted record's prefix is on disk

    def test_transaction_crash_between_markers_recovers_committed(self):
        # Prepares on both shards + marker on shard 0, crash before the
        # shard-1 marker: the global any-marker rule commits the txn, and
        # recovery heals the missing local marker.
        layer = self.layer(crash_after_records=3)
        with pytest.raises(SimulatedCrash):
            layer.log_transaction({
                0: ([(0, "a", 1)], []),
                1: ([(1, "b", 2)], []),
            })
        shards, report = layer.recover()
        assert shards[0] == {(0, "a"): 1}
        assert shards[1] == {(1, "b"): 2}
        assert report.committed_txns == 1
        assert report.markers_healed == 1

    def test_transaction_crash_before_any_marker_aborts(self):
        layer = self.layer(crash_after_records=2)
        with pytest.raises(SimulatedCrash):
            layer.log_transaction({
                0: ([(0, "a", 1)], []),
                1: ([(1, "b", 2)], []),
            })
        shards, report = layer.recover()
        assert shards == [{}, {}]
        assert report.aborted_txns == 1
        assert report.committed_txns == 0


class TestSnapshots:
    def test_capture_restore_round_trip(self):
        state = {(1, "a"): {"x": 1}, (2, "b"): None}
        snapshot = ShardSnapshot.capture(0, state, wal_offset=10, index=0)
        assert snapshot.restore() == state
        assert snapshot.restore() is not state  # a copy, not a view

    def test_rot_is_detected(self):
        snapshot = ShardSnapshot.capture(0, {(1, "a"): 1}, 0, 0)
        snapshot.rot()
        with pytest.raises(SnapshotCorrupted):
            snapshot.restore()

    def test_corrupt_snapshot_falls_back_to_full_replay(self):
        layer = DurabilityLayer()
        layer.bind(1)
        layer.log_put(0, 1, "a", 1)
        layer.checkpoint(0, {(1, "a"): 1})  # log retained in full
        layer.log_put(0, 1, "b", 2)
        layer.snapshots[0].rot()
        shards, report = layer.recover()
        assert shards[0] == {(1, "a"): 1, (1, "b"): 2}
        assert report.snapshot_fallbacks == 1
        assert report.snapshots_used == 0

    def test_corrupt_snapshot_with_truncated_log_is_fatal(self):
        layer = DurabilityLayer()
        layer.bind(1)
        layer.log_put(0, 1, "a", 1)
        layer.checkpoint(0, {(1, "a"): 1}, truncate=True)
        layer.snapshots[0].rot()
        with pytest.raises(SnapshotCorrupted):
            layer.recover()

    def test_checkpoint_with_truncation_recovers_from_suffix(self):
        layer = DurabilityLayer()
        layer.bind(1)
        layer.log_put(0, 1, "a", 1)
        layer.checkpoint(0, {(1, "a"): 1}, truncate=True)
        layer.log_put(0, 1, "b", 2)
        shards, report = layer.recover()
        assert shards[0] == {(1, "a"): 1, (1, "b"): 2}
        assert report.snapshots_used == 1
        assert report.records_replayed == 1  # just the suffix


class TestBinding:
    def test_rebind_same_count_is_idempotent(self):
        layer = DurabilityLayer()
        layer.bind(3)
        layer.log_put(0, 1, "a", 1)
        layer.bind(3)  # second store ctor with the same shape
        assert layer.logs[0].record_count == 1

    def test_rebind_with_different_count_refuses(self):
        layer = DurabilityLayer()
        layer.bind(3)
        with pytest.raises(StorageError):
            layer.bind(4)

    def test_unbound_layer_refuses_transactions(self):
        with pytest.raises(StorageError):
            DurabilityLayer().log_transaction({0: ([(0, "a", 1)], [])})


def test_commit_marker_kind_is_stable():
    # The marker literal is load-bearing for recovery; pin it.
    assert TXN_COMMIT == "txn-commit"
