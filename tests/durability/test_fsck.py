"""fsck: clean on healthy systems, loud on seeded violations."""

import pytest

from repro.durability import (
    BlockChecksums,
    DurabilityLayer,
    fsck_blocks,
    fsck_filesystem,
    fsck_store,
)
from repro.errors import DataCorruption
from repro.hopsfs import BlockManager, HopsFS, ShardedKVStore


def healthy_fs():
    fs = HopsFS(
        blocks=BlockManager(
            node_count=4, block_size=1024, replication=2,
            checksums=BlockChecksums(),
        ),
        small_file_threshold=64,
        durability=DurabilityLayer(),
    )
    fs.makedirs("/data")
    fs.create("/data/small", b"x" * 10)
    fs.create("/data/big", b"x" * 5000)
    return fs


class TestCleanSystems:
    def test_healthy_filesystem_is_clean(self):
        report = healthy_fs().fsck()
        assert report.ok
        assert report.checks > 0
        assert "clean" in report.summary()

    def test_store_without_durability_is_checkable(self):
        store = ShardedKVStore()
        store.put(1, "a", 1)
        assert fsck_store(store).ok

    def test_verify_raises_on_dirty_report(self):
        report = fsck_store(ShardedKVStore())
        report.add("made-up violation")
        with pytest.raises(DataCorruption):
            report.verify()


class TestStoreViolations:
    def test_misrouted_key_is_flagged(self):
        store = ShardedKVStore(shard_count=4)
        store.put(1, "a", 1)
        # Plant a key on the wrong shard behind the router's back.
        wrong = (store.shard_of(5) + 1) % store.shard_count
        store._shards[wrong][(5, "ghost")] = 1
        report = fsck_store(store)
        assert not report.ok
        assert "routes to shard" in report.violations[0]

    def test_unlogged_write_is_flagged_as_unjournaled(self):
        store = ShardedKVStore(shard_count=2, durability=DurabilityLayer())
        store.put(0, "a", 1)
        # A write that bypassed the WAL: volatile state the log can't rebuild.
        store._shards[store.shard_of(0)][(0, "sneaky")] = 1
        report = fsck_store(store)
        assert not report.ok
        assert any("absent from the durable log" in v for v in report.violations)

    def test_lost_update_is_flagged(self):
        store = ShardedKVStore(shard_count=2, durability=DurabilityLayer())
        store.put(0, "a", 1)
        # Volatile state silently dropped an acknowledged write.
        del store._shards[store.shard_of(0)][(0, "a")]
        report = fsck_store(store)
        assert not report.ok
        assert any("resurrects" in v for v in report.violations)


class TestBlockViolations:
    def make_manager(self):
        manager = BlockManager(node_count=4, block_size=100, replication=2)
        manager.allocate_file(200)  # blocks 0, 1
        return manager

    def test_healthy_manager_is_clean(self):
        assert fsck_blocks(self.make_manager()).ok

    def test_inventory_mismatch_is_flagged(self):
        manager = self.make_manager()
        owner = manager.block_locations(0)[0]
        manager.nodes[owner].blocks[0] = 999  # inventory disagrees on size
        report = fsck_blocks(manager)
        assert any("inventory says" in v for v in report.violations)

    def test_orphan_inventory_entry_is_flagged(self):
        manager = self.make_manager()
        manager.nodes[0].blocks[777] = 100
        manager.nodes[0].used_bytes += 100
        report = fsck_blocks(manager)
        assert any("unknown block 777" in v for v in report.violations)

    def test_dead_owner_is_flagged(self):
        manager = self.make_manager()
        owner = manager.block_locations(0)[0]
        manager.nodes[owner].alive = False  # die without deregistering
        report = fsck_blocks(manager)
        assert any("dead" in v for v in report.violations)

    def test_byte_accounting_mismatch_is_flagged(self):
        manager = self.make_manager()
        manager.nodes[1].used_bytes += 1
        report = fsck_blocks(manager)
        assert any("used_bytes" in v for v in report.violations)

    def test_ghost_ledger_replica_is_flagged(self):
        manager = BlockManager(
            node_count=4, block_size=100, replication=2,
            checksums=BlockChecksums(),
        )
        manager.allocate_file(100)
        manager.checksums._replica[(0, 3)] = 1234  # nobody holds this
        report = fsck_blocks(manager)
        assert any("ledger" in v for v in report.violations)


class TestFilesystemViolations:
    def test_dangling_block_reference_is_flagged(self):
        fs = healthy_fs()
        fs.blocks.free_blocks(list(fs.blocks.block_table()))  # yank the rug
        report = fsck_filesystem(fs)
        assert any("unknown block" in v for v in report.violations)

    def test_double_claimed_block_is_flagged(self):
        fs = healthy_fs()
        stat = fs.stat("/data/big")
        record = {
            "inode": 99, "is_dir": False, "size": 5000,
            "inline": None, "blocks": list(stat.block_ids),
        }
        fs.store.put(0, "thief", record)
        report = fsck_filesystem(fs)
        assert any("claimed by both" in v for v in report.violations)

    def test_duplicate_inode_is_flagged(self):
        fs = healthy_fs()
        fs.store.put(0, "clone", {"inode": 1, "is_dir": True, "size": 0})
        fs.store.put(0, "clone2", {"inode": 1, "is_dir": True, "size": 0})
        report = fsck_filesystem(fs)
        assert any("inode 1 appears" in v for v in report.violations)
