"""End-to-end checksums: detection, failover, scrubbing, silent faults."""

import pytest

from repro.durability import (
    BlockChecksums,
    Scrubber,
    content_fingerprint,
    flipped_fingerprint,
)
from repro.errors import BlockCorruption, StorageError
from repro.faults import BitFlip, FaultInjector, FaultPlan, StaleReplica
from repro.hopsfs import BlockManager


def manager_with(verify=True, node_count=4, replication=3):
    checksums = BlockChecksums(verify=verify)
    manager = BlockManager(
        node_count=node_count, block_size=100, replication=replication,
        checksums=checksums,
    )
    manager.allocate_file(100)  # block 0
    return manager, checksums


class TestFingerprints:
    def test_fingerprint_is_stable_and_generation_sensitive(self):
        assert content_fingerprint(1, 100, 0) == content_fingerprint(1, 100, 0)
        assert content_fingerprint(1, 100, 0) != content_fingerprint(1, 100, 1)
        assert content_fingerprint(1, 100, 0) != content_fingerprint(2, 100, 0)

    def test_flip_never_matches(self):
        fp = content_fingerprint(1, 100, 0)
        assert flipped_fingerprint(fp) != fp
        assert flipped_fingerprint(flipped_fingerprint(fp)) == fp


class TestVerifiedReads:
    def test_bit_flip_on_preferred_fails_over(self):
        manager, checksums = manager_with()
        owners = manager.block_locations(0)
        assert checksums.corrupt_replica(0, owners[0], "bit_flip")
        served = manager.read_block(0, preferred=owners[0])
        assert served in owners[1:]

    def test_all_replicas_corrupt_raises(self):
        manager, checksums = manager_with()
        for owner in manager.block_locations(0):
            checksums.corrupt_replica(0, owner, "bit_flip")
        with pytest.raises(BlockCorruption) as excinfo:
            manager.read_block(0)
        assert excinfo.value.block_id == 0

    def test_verify_off_serves_the_corrupt_replica(self):
        # verify=False must not change which replica a read picks — it only
        # counts what a checksum-less deployment would have served.
        manager, checksums = manager_with(verify=False)
        plain = BlockManager(node_count=4, block_size=100, replication=3)
        plain.allocate_file(100)
        for owner in manager.block_locations(0):
            checksums.corrupt_replica(0, owner, "bit_flip")
        for _ in range(6):
            assert manager.read_block(0) == plain.read_block(0)

    def test_stale_replica_needs_a_second_generation(self):
        manager, checksums = manager_with()
        owners = manager.block_locations(0)
        assert not checksums.corrupt_replica(0, owners[0], "stale")
        assert manager.update_block(0) == 1
        assert checksums.corrupt_replica(0, owners[0], "stale")
        assert not checksums.replica_intact(0, owners[0])
        served = manager.read_block(0, preferred=owners[0])
        assert served in owners[1:]

    def test_re_replicated_copy_is_intact(self):
        manager, checksums = manager_with()
        owners = manager.block_locations(0)
        manager.fail_node(owners[0])
        manager.re_replicate()
        for owner in manager.block_locations(0):
            assert checksums.replica_intact(0, owner)
        assert checksums.tracked_replicas == 3

    def test_free_blocks_clears_the_ledger(self):
        manager, checksums = manager_with()
        manager.free_blocks([0])
        assert checksums.tracked_replicas == 0


class TestScrubber:
    def test_sweep_repairs_from_intact_sibling(self):
        manager, checksums = manager_with()
        owners = manager.block_locations(0)
        checksums.corrupt_replica(0, owners[1], "bit_flip")
        report = Scrubber(manager).sweep()
        assert report.corrupt_found == 1
        assert report.repaired == 1
        assert report.ok
        assert checksums.replica_intact(0, owners[1])
        assert manager.read_block(0, preferred=owners[1]) == owners[1]

    def test_sweep_reports_unrepairable_blocks(self):
        manager, checksums = manager_with()
        owners = manager.block_locations(0)
        for owner in owners:
            checksums.corrupt_replica(0, owner, "bit_flip")
        report = Scrubber(manager).sweep()
        assert not report.ok
        assert report.repaired == 0
        assert sorted(report.unrepairable) == sorted(
            (0, owner) for owner in owners
        )

    def test_sweep_is_deterministic(self):
        def run():
            manager, checksums = manager_with()
            owners = manager.block_locations(0)
            checksums.corrupt_replica(0, owners[2], "bit_flip")
            return Scrubber(manager).sweep()

        first, second = run(), run()
        assert first.replicas_scanned == second.replicas_scanned
        assert first.unrepairable == second.unrepairable

    def test_scrubber_requires_a_ledger(self):
        plain = BlockManager(node_count=4)
        with pytest.raises(StorageError):
            Scrubber(plain)


class TestInjectorDrivenFaults:
    def test_planned_bit_flips_apply(self):
        manager, checksums = manager_with()
        owners = manager.block_locations(0)
        plan = FaultPlan(bit_flips=(BitFlip(node_id=owners[0], block_id=0),))
        assert manager.inject_silent_faults(FaultInjector(plan)) == 1
        assert not checksums.replica_intact(0, owners[0])

    def test_planned_stale_replicas_need_generations(self):
        manager, checksums = manager_with()
        owners = manager.block_locations(0)
        plan = FaultPlan(
            stale_replicas=(StaleReplica(node_id=owners[0], block_id=0),)
        )
        assert manager.inject_silent_faults(FaultInjector(plan)) == 0
        manager.update_block(0)
        assert manager.inject_silent_faults(FaultInjector(plan)) == 1

    def test_faults_without_ledger_are_noops(self):
        plain = BlockManager(node_count=4, block_size=100)
        plain.allocate_file(100)
        plan = FaultPlan(bit_flips=(BitFlip(node_id=0, block_id=0),))
        assert plain.inject_silent_faults(FaultInjector(plan)) == 0

    def test_chaos_plan_draws_silent_faults_deterministically(self):
        kwargs = dict(
            seed=42, shard_count=4, datanode_count=4, block_count=6,
            bit_flip_prob=0.5, stale_replica_prob=0.3,
        )
        first = FaultPlan.chaos(**kwargs)
        second = FaultPlan.chaos(**kwargs)
        assert first.bit_flips == second.bit_flips
        assert first.stale_replicas == second.stale_replicas
        assert first.bit_flips  # at these probabilities something must draw

    def test_chaos_silent_faults_do_not_shift_legacy_draws(self):
        # New draw kinds must extend the stream, not reorder it: the same
        # seed with silent faults off and on yields identical legacy plans.
        legacy = FaultPlan.chaos(seed=7, shard_count=4, datanode_count=4)
        extended = FaultPlan.chaos(
            seed=7, shard_count=4, datanode_count=4,
            block_count=5, bit_flip_prob=0.9, stale_replica_prob=0.9,
        )
        assert legacy.shard_outages == extended.shard_outages
        assert legacy.datanode_crashes == extended.datanode_crashes
