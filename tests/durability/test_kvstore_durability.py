"""Store- and filesystem-level crash/recovery over the WAL."""

import pytest

from repro.durability import DurabilityLayer
from repro.errors import SimulatedCrash, StorageError
from repro.hopsfs import HopsFS, ShardedKVStore


def flatten(store):
    return {
        (pk, key): value
        for shard in range(store.shard_count)
        for pk, key, value in store.shard_items(shard)
    }


def durable_store(**kwargs):
    return ShardedKVStore(shard_count=4, durability=DurabilityLayer(**kwargs))


class TestStoreRecovery:
    def test_puts_and_deletes_survive_a_crash(self):
        store = durable_store()
        for i in range(8):
            store.put(i, "k", i * 10)
        store.delete(3, "k")
        before = flatten(store)
        store.crash()
        assert flatten(store) == {}  # volatile state really died
        report = store.recover()
        assert flatten(store) == before
        assert report.records_replayed == 9

    def test_transactions_recover_atomically(self):
        store = durable_store()
        store.transact([(0, "a", 1), (1, "b", 2), (2, "c", 3)])
        store.transact([(5, "d", 4)], deletes=[(0, "a")])
        before = flatten(store)
        store.crash()
        report = store.recover()
        assert flatten(store) == before
        assert report.committed_txns == 2

    def test_crash_mid_transaction_is_all_or_nothing(self):
        # Arm the crash point at every boundary inside one transaction.
        probe = durable_store()
        probe.put(0, "seed", 1)
        base = probe.durability.appended_records
        txn = [(0, "a", 1), (1, "b", 2), (2, "c", 3)]
        # The txn appends 3 prepares + 3 markers after `base` records.
        for k in range(base, base + 6):
            store = durable_store(crash_after_records=k)
            store.put(0, "seed", 1)
            with pytest.raises(SimulatedCrash):
                store.transact(txn)
            store.crash()
            store.recover()
            state = flatten(store)
            applied = {(0, "a"): 1, (1, "b"): 2, (2, "c"): 3,
                       (0, "seed"): 1}
            assert state == {(0, "seed"): 1} or state == applied, (
                f"partial transaction visible at crash point {k}: {state}"
            )

    def test_checkpoint_then_crash_recovers_from_snapshot(self):
        store = durable_store()
        for i in range(6):
            store.put(i, "k", i)
        store.checkpoint(truncate=True)
        store.put(9, "post", "snapshot")
        before = flatten(store)
        store.crash()
        report = store.recover()
        assert flatten(store) == before
        assert report.snapshots_used == store.shard_count
        assert report.records_replayed == 1  # only the post-snapshot put

    def test_recovery_does_not_recharge_latency(self):
        store = durable_store()
        for i in range(10):
            store.put(i, "k", i)
        busy = store.makespan_ms()
        ops = store.op_count
        store.crash()
        store.recover()
        assert store.makespan_ms() == busy
        assert store.op_count == ops

    def test_crash_without_layer_refuses(self):
        store = ShardedKVStore()
        with pytest.raises(StorageError):
            store.crash()
        with pytest.raises(StorageError):
            store.recover()

    def test_recovered_store_accepts_new_writes(self):
        store = durable_store()
        store.put(1, "a", "old")
        store.crash()
        store.recover()
        store.put(1, "b", "new")
        store.crash()
        store.recover()
        assert store.get(1, "a") == "old"
        assert store.get(1, "b") == "new"

    def test_recovery_after_torn_crash_appends_cleanly(self):
        store = durable_store(crash_after_records=2, torn_crash=True)
        store.put(1, "a", 1)
        store.put(2, "b", 2)
        with pytest.raises(SimulatedCrash):
            store.put(3, "c", 3)
        store.crash()
        # Disarm the crash point the way a restarted process would.
        store.durability.crash_after_records = None
        report = store.recover()
        assert report.torn_tails_discarded == 1
        store.put(3, "c", "retry")
        store.crash()
        store.recover()
        assert store.get(3, "c") == "retry"


class TestFilesystemRecovery:
    def test_fs_crash_recover_round_trip(self):
        fs = HopsFS(durability=DurabilityLayer())
        fs.makedirs("/data/raw")
        fs.create("/data/raw/scene1", b"copernicus")
        fs.create("/data/raw/scene2", b"sentinel")
        fs.rename("/data/raw/scene2", "/data/scene2")
        fs.delete("/data/raw/scene1")
        listing = fs.listdir("/data")
        fs.crash()
        fs.recover()
        assert fs.listdir("/data") == listing
        assert fs.read("/data/scene2") == b"sentinel"
        assert not fs.exists("/data/raw/scene1")
        fs.fsck().verify()

    def test_inode_allocator_survives_recovery(self):
        fs = HopsFS(durability=DurabilityLayer())
        fs.makedirs("/a")
        stat = fs.create("/a/f", b"x")
        fs.crash()
        fs.recover()
        new = fs.create("/a/g", b"y")
        assert new.inode_id > stat.inode_id
        assert fs.fsck().ok

    def test_durability_kwarg_conflicts_with_explicit_store(self):
        with pytest.raises(StorageError):
            HopsFS(store=ShardedKVStore(), durability=DurabilityLayer())
