"""Durability parity: the disabled path is byte-identical to the seed code.

Same contract as ``repro.faults``/``repro.obs``/``repro.cache``: durability
is an optional collaborator, and *enabling* it may only add durable state —
never change answers, op counts, or simulated latency. Each test runs a
fixed seeded workload with the layer off and on and requires identical
outcomes on everything observable.
"""

from repro.durability import BlockChecksums, DurabilityLayer
from repro.hopsfs import BlockManager, HopsFS, ShardedKVStore
from repro.hopsfs.workload import run_metadata_workload

SEED = 20


def drive_store(store):
    for i in range(40):
        store.put(i % 7, f"k{i % 5}", {"i": i})
        if i % 4 == 0:
            store.delete((i + 1) % 7, f"k{i % 5}")
        if i % 5 == 0:
            store.transact(
                [(i % 7, "t", i), ((i + 3) % 7, "t2", i)],
                deletes=[((i + 1) % 7, "t")],
            )
    return {
        (pk, key): value
        for shard in range(store.shard_count)
        for pk, key, value in store.shard_items(shard)
    }


class TestStoreParity:
    def test_wal_changes_no_answers_and_no_costs(self):
        plain = ShardedKVStore(shard_count=4)
        durable = ShardedKVStore(shard_count=4, durability=DurabilityLayer())
        assert drive_store(plain) == drive_store(durable)
        assert plain.op_count == durable.op_count
        assert plain.makespan_ms() == durable.makespan_ms()
        assert plain.total_work_ms() == durable.total_work_ms()
        assert plain.multi_shard_fraction == durable.multi_shard_fraction

    def test_reads_identical_after_crash_recovery(self):
        durable = ShardedKVStore(shard_count=4, durability=DurabilityLayer())
        expected = drive_store(durable)
        durable.crash()
        durable.recover()
        recovered = {
            (pk, key): value
            for shard in range(durable.shard_count)
            for pk, key, value in durable.shard_items(shard)
        }
        assert recovered == expected


class TestBlockParity:
    def drive(self, manager):
        manager.allocate_file(950)  # 10 blocks
        manager.fail_node(1)
        manager.re_replicate()
        reads = [manager.read_block(b % manager.block_count) for b in range(25)]
        reads += [
            manager.read_block(0, preferred=manager.block_locations(0)[0])
        ]
        return reads, manager.block_table(), manager.total_stored_bytes()

    def test_ledger_off_vs_non_verifying_ledger(self):
        plain = BlockManager(node_count=5, block_size=100, replication=2)
        ledgered = BlockManager(
            node_count=5, block_size=100, replication=2,
            checksums=BlockChecksums(verify=False),
        )
        assert self.drive(plain) == self.drive(ledgered)

    def test_verifying_ledger_identical_without_corruption(self):
        # With nothing corrupt, verification must not change a single read.
        plain = BlockManager(node_count=5, block_size=100, replication=2)
        verifying = BlockManager(
            node_count=5, block_size=100, replication=2,
            checksums=BlockChecksums(verify=True),
        )
        assert self.drive(plain) == self.drive(verifying)


class TestFilesystemParity:
    def test_metadata_workload_identical_with_wal(self):
        plain = run_metadata_workload(
            HopsFS(), operations=400, directories=8, seed=SEED
        )
        durable = run_metadata_workload(
            HopsFS(durability=DurabilityLayer()),
            operations=400, directories=8, seed=SEED,
        )
        assert plain == durable

    def test_filesystem_contents_identical_with_wal(self):
        def build(fs):
            fs.makedirs("/data/a")
            fs.makedirs("/data/b")
            for i in range(10):
                fs.create(f"/data/a/f{i}", b"x" * (i * 40))
            fs.rename("/data/a/f3", "/data/b/f3")
            fs.delete("/data/a/f4")
            return sorted(
                (d, tuple(fs.listdir(d))) for d in ("/data", "/data/a", "/data/b")
            )

        assert build(HopsFS()) == build(HopsFS(durability=DurabilityLayer()))
