"""E24 — Earth System Data Cube: pruning, parity, and tiled compute.

Paper claim: Extreme Earth analytics means queries over *continental,
multi-year* Copernicus archives, which a scene-at-a-time raster layer
cannot express. Expected shape: a chunked, time-indexed cube answers
seeded bbox/time-window selections touching a strict subset of its sealed
chunks (pruning ratio well above 1), returns bit-identical results to a
dense in-memory ndarray oracle, computes windowed temporal aggregates
faster tiled than by materializing the whole cube, and never rewrites a
sealed chunk during incremental append (every chunk path written once).
"""

from benchmarks.conftest import emit_bench_snapshot, print_series
from repro.obs import Observability
from repro.datacube.bench import DatacubeBenchConfig, run_datacube_bench

SEED = 24


def test_e24_datacube(benchmark):
    """Seeded cube build + query sweep: pruning, parity, tiled speedup."""
    results = {}
    obs = Observability()

    def sweep():
        results["report"] = run_datacube_bench(
            DatacubeBenchConfig(seed=SEED), obs=obs
        )
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = results["report"]
    print_series(
        "E24: datacube pruning & parity (seeded queries, seed 24)",
        [
            {
                "grid": report["grid"],
                "steps": report["steps"],
                "sealed_chunks": report["sealed_chunks"],
                "queries": report["queries"],
                "touched": report["chunks_touched"],
                "total": report["chunks_total"],
                "pruning": report["pruning_ratio"],
                "tiled_s": report["tiled_s"],
                "whole_s": report["whole_s"],
            }
        ],
    )
    benchmark.extra_info.update(
        {
            "pruning_ratio": report["pruning_ratio"],
            "parity": f"{report['parity_equal']}/{report['parity_checked']}",
            "speedup": report["speedup"],
        }
    )
    emit_bench_snapshot("E24", obs, meta=report)
    # Shape: the acceptance criteria of E24.
    assert report["pruning_ratio"] > 1.0
    assert report["parity_equal"] == report["parity_checked"] > 0
    assert report["mean_parity"]
    assert report["max_path_writes"] == 1
    # Windowed tiled aggregation beats materializing the whole cube.
    assert report["tiled_s"] < report["whole_s"]


def test_e24_determinism():
    """Same seed, same report (modulo wall-clock fields)."""
    config = DatacubeBenchConfig(seed=SEED, height=128, width=128, steps=8,
                                 queries=10)
    first = run_datacube_bench(config)
    second = run_datacube_bench(config)
    volatile = {"tiled_s", "whole_s", "speedup"}
    assert {k: v for k, v in first.items() if k not in volatile} == {
        k: v for k, v in second.items() if k not in volatile
    }
