"""E20 — durability & data integrity: WAL recovery, checksums, scrubbing.

Paper claim: a petabyte-scale Copernicus platform is only as good as its
storage truth — acknowledged metadata writes must survive power loss at any
instant, and silent replica corruption must never reach an analytics job.
Expected shape: the crash-point sweep recovers all-or-nothing at EVERY WAL
record boundary (zero committed-write loss, zero aborted-visibility, fsck
clean); under a seeded BitFlip plan, verified reads serve zero corrupt
replicas while the unverified baseline provably serves some; the scrubber
repairs every detectably-corrupt replica that still has a healthy sibling;
and checkpoints cut replay work without changing the recovered answer.
"""

import time

from benchmarks.conftest import emit_bench_snapshot, print_series
from repro.durability import BlockChecksums, DurabilityLayer, Scrubber
from repro.durability.harness import run_sweeps
from repro.errors import BlockCorruption
from repro.faults import FaultInjector, FaultPlan
from repro.hopsfs import BlockManager, ShardedKVStore
from repro.obs import Observability

SEED = 20
SWEEP_SEEDS = [20, 21, 22]

#: Shared across the module's tests; the final test snapshots it into
#: BENCH_E20.json together with the headline numbers accumulated here.
OBS = Observability()
RESULTS = {}


# ----------------------------------------------------------------------
# Crash-point sweep
# ----------------------------------------------------------------------

def test_e20_crash_point_sweep(benchmark):
    """Every WAL boundary, clean + torn, three seeds: recovery is exact."""
    outcome = {}

    def sweep():
        start = time.perf_counter()
        outcome["reports"] = run_sweeps(SWEEP_SEEDS, ops=16, obs=OBS)
        outcome["wall_s"] = time.perf_counter() - start
        return outcome

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    reports = outcome["reports"]
    for report in reports:
        # The acceptance bar: zero committed-write loss, zero
        # aborted-visibility, fsck clean — at every boundary.
        report.verify()
    crash_points = sum(r.crash_points for r in reports)
    print_series(
        "E20: crash-point recovery sweep (clean + torn, per seed)",
        [
            {"seed": r.seed, "wal_records": r.wal_records,
             "crash_points": r.crash_points,
             "failures": len(r.failures)}
            for r in reports
        ],
    )
    benchmark.extra_info["crash_points"] = crash_points
    benchmark.extra_info["failures"] = 0
    RESULTS["crash_points"] = crash_points
    RESULTS["crash_failures"] = 0


# ----------------------------------------------------------------------
# Checksum shielding
# ----------------------------------------------------------------------

def corruption_plan(block_count):
    return FaultPlan.chaos(
        seed=SEED, datanode_count=6, block_count=block_count,
        bit_flip_prob=0.12, stale_replica_prob=0.08,
    )


def build_manager(verify, obs=None):
    manager = BlockManager(
        node_count=6, block_size=1024, replication=3,
        checksums=BlockChecksums(verify=verify, obs=obs),
    )
    for _ in range(8):
        manager.allocate_file(2048)  # 2 blocks each -> 16 blocks
    for block_id in range(0, 16, 2):
        manager.update_block(block_id)  # give StaleReplica a generation gap
    return manager


def drive_reads(manager):
    served_corrupt = 0
    checksums = manager.checksums
    for i in range(200):
        block_id = i % manager.block_count
        try:
            node = manager.read_block(block_id)
        except BlockCorruption:
            continue  # refused: every replica rotten — never served garbage
        if not checksums.replica_intact(block_id, node):
            served_corrupt += 1
    return served_corrupt


def test_e20_checksum_shielding(benchmark):
    """Same BitFlip plan: verification serves 0 corrupt reads, baseline >0."""
    outcome = {}

    def sweep():
        injector = FaultInjector(corruption_plan(block_count=16))
        unverified = build_manager(verify=False, obs=OBS)
        flips_off = unverified.inject_silent_faults(injector)
        verified = build_manager(verify=True, obs=OBS)
        flips_on = verified.inject_silent_faults(injector)
        assert flips_off == flips_on > 0  # the plans really did land
        outcome["served_off"] = drive_reads(unverified)
        outcome["served_on"] = drive_reads(verified)
        outcome["faults"] = flips_on
        return outcome

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    # The E20 headline pair: the identical fault plan is harmless with
    # verification on and demonstrably harmful with it off.
    assert outcome["served_on"] == 0
    assert outcome["served_off"] > 0
    print_series(
        "E20: 200 reads under a seeded BitFlip/StaleReplica plan",
        [
            {"config": "verify off (baseline)",
             "corrupt_reads_served": outcome["served_off"]},
            {"config": "verify on",
             "corrupt_reads_served": outcome["served_on"]},
        ],
    )
    benchmark.extra_info["silent_faults"] = outcome["faults"]
    benchmark.extra_info["served_verify_off"] = outcome["served_off"]
    benchmark.extra_info["served_verify_on"] = outcome["served_on"]
    RESULTS["silent_faults"] = outcome["faults"]
    RESULTS["corrupt_reads_served_verify_off"] = outcome["served_off"]
    RESULTS["corrupt_reads_served_verify_on"] = outcome["served_on"]


# ----------------------------------------------------------------------
# Scrubbing
# ----------------------------------------------------------------------

def test_e20_scrubber_repairs_all_detectable(benchmark):
    """One sweep heals every corrupt replica that has a healthy sibling."""
    outcome = {}

    def sweep():
        injector = FaultInjector(corruption_plan(block_count=16))
        manager = build_manager(verify=True, obs=OBS)
        faults = manager.inject_silent_faults(injector)
        scrubber = Scrubber(manager, obs=OBS)
        first = scrubber.sweep()
        second = scrubber.sweep()
        outcome.update(manager=manager, faults=faults,
                       first=first, second=second)
        return outcome

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    first, second = outcome["first"], outcome["second"]
    # At replication 3 with per-replica fault draws, every corrupt replica
    # retains a healthy sibling — so the sweep must repair ALL of them.
    assert first.corrupt_found == outcome["faults"] > 0
    assert first.repaired == first.corrupt_found
    assert first.ok
    # And the fixed point: a second sweep finds nothing left to do.
    assert second.corrupt_found == 0
    # Post-scrub, every read of every block serves an intact replica.
    manager = outcome["manager"]
    assert drive_reads(manager) == 0
    for block_id in range(manager.block_count):
        manager.read_block(block_id)  # none raises BlockCorruption
    print_series(
        "E20: scrubber sweep over 48 replicas (seeded corruption)",
        [
            {"sweep": 1, "corrupt": first.corrupt_found,
             "repaired": first.repaired,
             "unrepairable": len(first.unrepairable)},
            {"sweep": 2, "corrupt": second.corrupt_found,
             "repaired": second.repaired,
             "unrepairable": len(second.unrepairable)},
        ],
    )
    benchmark.extra_info["repaired"] = first.repaired
    RESULTS["scrub_corrupt_found"] = first.corrupt_found
    RESULTS["scrub_repaired"] = first.repaired
    RESULTS["scrub_unrepairable"] = len(first.unrepairable)


# ----------------------------------------------------------------------
# Checkpointing
# ----------------------------------------------------------------------

def test_e20_checkpoints_cut_replay_work(benchmark):
    """Snapshot + suffix replay beats full replay without changing answers."""
    outcome = {}

    def run(checkpointed):
        store = ShardedKVStore(
            shard_count=4, durability=DurabilityLayer(obs=OBS)
        )
        for i in range(300):
            store.put(i % 16, f"k{i % 8}", i)
            if checkpointed and i == 249:
                store.checkpoint(truncate=True)
        state = {
            (pk, key): value
            for shard in range(store.shard_count)
            for pk, key, value in store.shard_items(shard)
        }
        store.crash()
        report = store.recover()
        recovered = {
            (pk, key): value
            for shard in range(store.shard_count)
            for pk, key, value in store.shard_items(shard)
        }
        assert recovered == state
        return report

    def sweep():
        outcome["full"] = run(checkpointed=False)
        outcome["snap"] = run(checkpointed=True)
        return outcome

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    full, snap = outcome["full"], outcome["snap"]
    assert snap.snapshots_used == 4
    assert snap.records_replayed < full.records_replayed
    print_series(
        "E20: recovery work, 300-op workload",
        [
            {"strategy": "full replay",
             "records_replayed": full.records_replayed, "snapshots": 0},
            {"strategy": "checkpoint@250 + suffix",
             "records_replayed": snap.records_replayed,
             "snapshots": snap.snapshots_used},
        ],
    )
    benchmark.extra_info["full_replay_records"] = full.records_replayed
    benchmark.extra_info["suffix_replay_records"] = snap.records_replayed
    RESULTS["full_replay_records"] = full.records_replayed
    RESULTS["suffix_replay_records"] = snap.records_replayed


# ----------------------------------------------------------------------
# Snapshot emission (runs last: file name order == definition order here)
# ----------------------------------------------------------------------

def test_e20_emit_snapshot(benchmark):
    """Bundle the run's durability counters + headlines into BENCH_E20.json."""

    def sweep():
        return RESULTS

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    # The headline acceptance numbers ride in the snapshot meta so CI can
    # assert them after validating the schema.
    assert RESULTS.get("corrupt_reads_served_verify_on") == 0
    assert RESULTS.get("scrub_repaired") == RESULTS.get("scrub_corrupt_found")
    emit_bench_snapshot("E20", OBS, meta=dict(RESULTS))
