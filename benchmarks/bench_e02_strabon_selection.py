"""E2 — Strabon-style rectangular selections vs store size.

Paper claim: "Strabon ... can only handle up to 100 GBs of point data and
still be able to answer simple geospatial queries (selections over a
rectangular area) efficiently (in a few seconds)" — i.e. an indexed
geospatial RDF store answers window selections in time roughly proportional
to the *result*, while a scan-based evaluation grows with the *store* and
stops being interactive. Expected shape: GeoStore latency nearly flat as the
store grows; NaiveGeoStore latency grows linearly; the gap widens with size.
"""

import random
import time

import pytest

from benchmarks.conftest import print_series
from repro.geometry import Point, Polygon
from repro.geosparql import GeoStore, NaiveGeoStore, geometry_literal
from repro.rdf import GEO, Namespace
from repro.rdf.term import Literal

EX = Namespace("http://ex.org/")
SIZES = (1_000, 5_000, 20_000)
WORLD = 10_000.0
WINDOW = 200.0  # selection window side: selective at every store size

PREFIXES = (
    "PREFIX geo: <http://www.opengis.net/ont/geosparql#> "
    "PREFIX geof: <http://www.opengis.net/def/function/geosparql/> "
)


def build_store(cls, count, seed=0):
    rng = random.Random(seed)
    triples = []
    for i in range(count):
        feature = EX[f"f{i}"]
        point = Point(rng.uniform(0, WORLD), rng.uniform(0, WORLD))
        triples.append((feature, GEO.asWKT, geometry_literal(point)))
    store = cls()
    store.bulk_load(triples)
    return store


def selection_query(x, y):
    box = geometry_literal(Polygon.box(x, y, x + WINDOW, y + WINDOW))
    return (
        PREFIXES
        + "SELECT ?f WHERE { ?f geo:asWKT ?g . "
        + f'FILTER (geof:sfIntersects(?g, "{box.lexical}"^^geo:wktLiteral)) }}'
    )


def _measure(store, queries):
    start = time.perf_counter()
    results = sum(len(store.query(q)) for q in queries)
    return time.perf_counter() - start, results


def test_e02_selection_scaling(benchmark):
    """Figure-style series: selection latency vs store size, both stores."""
    rng = random.Random(42)
    queries = [
        selection_query(rng.uniform(0, WORLD - WINDOW), rng.uniform(0, WORLD - WINDOW))
        for _ in range(5)
    ]
    rows = []
    latencies = {}
    for size in SIZES:
        indexed = build_store(GeoStore, size)
        naive = build_store(NaiveGeoStore, size)
        indexed_s, hits_indexed = _measure(indexed, queries)
        naive_s, hits_naive = _measure(naive, queries)
        assert hits_indexed == hits_naive  # identical answers
        latencies[size] = (indexed_s, naive_s)
        rows.append(
            {
                "points": size,
                "geostore_ms": indexed_s * 1000 / len(queries),
                "naive_ms": naive_s * 1000 / len(queries),
                "speedup": naive_s / indexed_s,
            }
        )
    print_series("E2: rectangular selection latency", rows)
    benchmark.extra_info["speedup_at_largest"] = latencies[SIZES[-1]][1] / latencies[SIZES[-1]][0]

    # Shape: index wins everywhere and the gap widens with store size.
    for size in SIZES:
        assert latencies[size][1] > latencies[size][0]
    small_gap = latencies[SIZES[0]][1] / latencies[SIZES[0]][0]
    large_gap = latencies[SIZES[-1]][1] / latencies[SIZES[-1]][0]
    assert large_gap > small_gap * 2

    # Timed headline: one selection on the largest indexed store.
    store = build_store(GeoStore, SIZES[-1])
    benchmark(lambda: store.query(queries[0]))


def test_e02_ablation_query_optimisation(benchmark):
    """Ablation: filter pushdown + join reordering in the SPARQL algebra.

    Measured on the plain RDF engine (the GeoStore's spatial rewrite
    rebuilds plans itself, masking these switches): a selective pattern +
    filter joined against a broad pattern.
    """
    from repro.rdf import Graph
    from repro.sparql import evaluate
    from repro.sparql.algebra import CompileOptions

    graph = Graph()
    for i in range(4_000):
        graph.add(EX[f"f{i}"], EX.kind, Literal(f"kind{i % 400}"))
        graph.add(EX[f"f{i}"], EX.linked, EX[f"f{(i + 1) % 4000}"])
    query = (
        "PREFIX ex: <http://ex.org/> "
        "SELECT ?f ?o WHERE { ?f ex:linked ?o . ?f ex:kind ?k . "
        'FILTER (?k = "kind7") }'
    )

    def optimised():
        return evaluate(graph, query)

    def unoptimised():
        return evaluate(
            graph, query,
            options=CompileOptions(push_filters=False, reorder_patterns=False),
        )

    start = time.perf_counter()
    result_opt = optimised()
    opt_s = time.perf_counter() - start
    start = time.perf_counter()
    result_plain = unoptimised()
    plain_s = time.perf_counter() - start
    canonical = lambda sols: sorted(
        sorted((v.name, repr(t)) for v, t in s.items()) for s in sols
    )
    assert canonical(result_opt) == canonical(result_plain)
    assert len(result_opt) == 10
    print_series(
        "E2 ablation: algebra optimisations",
        [
            {"plan": "optimised", "seconds": opt_s},
            {"plan": "no pushdown/reorder", "seconds": plain_s},
        ],
    )
    assert opt_s < plain_s
    benchmark(optimised)
