"""E12 — Application A2: sea-ice maps per WMO stages and PCDSS delivery.

Paper claims: "deliver sea ice concentration and type maps, displaying stage
of development (in accordance with the WMO Sea Ice Nomenclature) ... at a
resolution of 1 km or better", with delivery "designed to be used over
restricted communication links". Expected shape: the classifier separates
the five WMO stages well above chance (per-class F1 reported); the type map
comes out at 1 km; PCDSS messages shrink by orders of magnitude versus the
raw scene while retaining high chart fidelity, degrading gracefully as the
byte budget tightens.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_series
from repro.apps.polar import (
    build_ice_classifier,
    classify_ice_scene,
    decode_ice_chart,
    encode_ice_chart,
    ice_concentration_map,
    ice_type_map,
    make_ice_training_set,
    map_agreement,
    train_ice_classifier,
)
from repro.ml import accuracy, f1_scores
from repro.raster import GeoTransform, SeaIce, sea_ice_field, sentinel1_scene


def trained_model():
    dataset = make_ice_training_set(samples=600, seed=1, looks=8)
    model = build_ice_classifier(seed=2)
    train_ice_classifier(model, dataset, epochs=5, batch_size=32)
    return model, dataset


def test_e12_wmo_stage_classification(benchmark):
    """Table-style: per-WMO-stage F1 on a held-out scene."""

    def run():
        model, dataset = trained_model()
        truth = sea_ice_field(64, 64, seed=9, ice_extent=0.6)
        scene = sentinel1_scene(truth, seed=9, looks=8,
                                transform=GeoTransform(0, 64 * 40.0, 40.0))
        stage_map = classify_ice_scene(model, scene, patch_size=8)
        return model, truth, scene, stage_map

    model, truth, scene, stage_map = benchmark.pedantic(run, rounds=1, iterations=1)
    overall = accuracy(stage_map.ravel(), truth.ravel())
    scores = f1_scores(stage_map.ravel(), truth.ravel())
    rows = [
        {"stage": SeaIce(class_id).name, "f1": score}
        for class_id, score in sorted(scores.items())
    ]
    rows.append({"stage": "OVERALL (accuracy)", "f1": overall})
    print_series("E12: WMO stage-of-development classification", rows)
    benchmark.extra_info["overall_accuracy"] = round(overall, 3)

    # Shape: far above 5-class chance; every observed stage learnable.
    assert overall > 0.6
    assert all(score > 0.3 for score in scores.values())

    # Products: concentration in [0,1]; type map at 1 km from 40 m pixels.
    concentration = ice_concentration_map(stage_map, window=8)
    assert 0.0 <= concentration.min() and concentration.max() <= 1.0
    product = ice_type_map(stage_map, scene.grid.transform, 1000.0)
    assert product.resolution == 1000.0


def test_e12_pcdss_budget_vs_fidelity(benchmark):
    """Figure-style series: PCDSS message size budget vs chart fidelity."""
    truth = sea_ice_field(128, 128, seed=4, ice_extent=0.55)
    scene_bytes = 128 * 128 * 2 * 4  # the raw 2-band float32 scene

    def sweep():
        rows = []
        for budget in (16384, 4096, 1024, 256):
            message = encode_ice_chart(truth, byte_budget=budget)
            decoded, factor = decode_ice_chart(message)
            fidelity = map_agreement(truth, decoded, factor)
            rows.append(
                {
                    "budget_B": budget,
                    "message_B": len(message),
                    "compression_vs_scene": scene_bytes / len(message),
                    "resolution_factor": factor,
                    "fidelity": fidelity,
                }
            )
        return rows

    rows = benchmark(sweep)
    print_series("E12: PCDSS delivery under restricted links", rows)
    benchmark.extra_info["fidelity_at_1KB"] = next(
        r["fidelity"] for r in rows if r["budget_B"] == 1024
    )

    # Shape: budgets respected; fidelity degrades monotonically-ish but the
    # 1 KB chart still agrees with most of the full-resolution map; even the
    # tightest budget beats the 20% chance agreement of 5 classes.
    for row in rows:
        assert row["message_B"] <= row["budget_B"]
    fidelities = [r["fidelity"] for r in rows]
    assert fidelities[0] > 0.95
    assert all(a >= b - 0.02 for a, b in zip(fidelities, fidelities[1:]))
    assert fidelities[-1] > 0.4
    assert rows[-1]["compression_vs_scene"] > 500
