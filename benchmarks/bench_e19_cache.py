"""E19 — deterministic multi-tier caching: plans, federation results, dir hints.

Paper claim: an interactive Copernicus analytics platform (Sextant over
Strabon-style stores, federated endpoints, a shared filesystem namespace)
answers *workloads*, not single queries — the same query shapes arrive over
and over while the data changes slowly. Expected shape: a warm cache answers
strictly faster than cold (plan tier), saves remote sub-queries outright
(federation tier), and keeps hot ancestors resolving for free across
unrelated namespace churn (dir-hint tier) — while every mutation forcibly
recomputes what it invalidates, so cached answers are never stale.
"""

import time

import pytest

from benchmarks.conftest import emit_bench_snapshot, print_series
from repro.cache import DirHintCache, FederationResultCache, PlanCache
from repro.faults import EndpointFault, FaultInjector, FaultPlan, RetryPolicy
from repro.federation import Endpoint, execute_federated
from repro.geometry import Point, Polygon
from repro.geosparql import GeoStore, geometry_literal
from repro.hopsfs import HopsFS
from repro.obs import Observability
from repro.rdf import GEO, Graph, Literal, Namespace
from repro.sparql import Variable

SEED = 19

EX = Namespace("http://ex.org/")
PREFIXES = (
    "PREFIX ex: <http://ex.org/> "
    "PREFIX geo: <http://www.opengis.net/ont/geosparql#> "
    "PREFIX geof: <http://www.opengis.net/def/function/geosparql/> "
)


def build_store(obs=None, plan_cache=None):
    store = GeoStore(plan_cache=plan_cache)
    # Small enough that parse + compile + spatial rewrite (what the plan
    # cache removes) dominate evaluation, so the warm/cold gap is wide.
    for i in range(24):
        store.add(EX[f"f{i}"], GEO.asWKT,
                  geometry_literal(Point(i % 12, i // 12)))
        store.add(EX[f"f{i}"], EX.id, Literal.from_python(i))
    return store


def workload_queries():
    queries = []
    for j in range(4):
        box = geometry_literal(Polygon.box(j, 0, j + 4, 5))
        queries.append(
            PREFIXES
            + "SELECT ?f WHERE { ?f geo:asWKT ?g . ?f ex:id ?i . "
            + f'FILTER (geof:sfIntersects(?g, "{box.lexical}"^^geo:wktLiteral)) }}'
            + " ORDER BY ?i"
        )
    return queries


def run_workload(store, repetitions=40, passes=3):
    """Best-of-*passes* wall time for the workload (min is noise-robust)."""
    queries = workload_queries()
    best = None
    for _ in range(passes):
        start = time.perf_counter()
        results = []
        for _ in range(repetitions):
            for query in queries:
                results.append(len(store.query(query)))
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, results


def test_e19_plan_cache_warm_vs_cold(benchmark):
    """Same workload, plan cache off vs on: warm must be strictly faster."""
    obs = Observability()
    timings = {}

    def sweep():
        cold_store = build_store()
        timings["cold_s"], timings["cold_results"] = run_workload(cold_store)
        warm_store = build_store(plan_cache=PlanCache(obs=obs))
        warm_store.query(workload_queries()[0])  # prime
        timings["warm_s"], timings["warm_results"] = run_workload(warm_store)
        timings["warm_store"] = warm_store
        return timings

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    cold_s, warm_s = timings["cold_s"], timings["warm_s"]
    # Answers are identical; only the work changed.
    assert timings["cold_results"] == timings["warm_results"]
    # The E19 headline: warm latency strictly below cold.
    assert warm_s < cold_s
    stats = timings["warm_store"].plan_cache.stats
    assert stats["plans"]["hits"] > 0

    # Mutation forces recomputation: the new feature appears immediately.
    store = timings["warm_store"]
    query = workload_queries()[0]
    before = {s[Variable("f")] for s in store.query(query)}
    misses_before = store.plan_cache.stats["plans"]["misses"]
    store.add(EX.fresh, GEO.asWKT, geometry_literal(Point(1, 1)))
    store.add(EX.fresh, EX.id, Literal.from_python(999))
    after = {s[Variable("f")] for s in store.query(query)}
    assert EX.fresh in after and EX.fresh not in before
    assert store.plan_cache.stats["plans"]["misses"] == misses_before + 1

    print_series(
        "E19: plan cache, 160-query GeoSPARQL workload (seed 19)",
        [
            {"config": "cold (no cache)", "wall_s": cold_s, "plan_hits": 0},
            {"config": "warm (PlanCache)", "wall_s": warm_s,
             "plan_hits": stats["plans"]["hits"]},
        ],
    )
    benchmark.extra_info["cold_s"] = round(cold_s, 4)
    benchmark.extra_info["warm_s"] = round(warm_s, 4)
    benchmark.extra_info["speedup"] = round(cold_s / warm_s, 2)
    emit_bench_snapshot(
        "E19", obs,
        meta={"cold_s": cold_s, "warm_s": warm_s,
              "speedup": cold_s / warm_s,
              "plan_hits": stats["plans"]["hits"]},
    )


def build_federation(injector=None):
    crops = Graph("crops")
    weather = Graph("weather")
    for i in range(30):
        crops.add(EX[f"f{i}"], EX.crop, Literal("wheat" if i % 2 else "maize"))
        weather.add(EX[f"f{i}"], EX.rain, Literal.from_python(10 + i))
    return [
        Endpoint("crops", crops, injector=injector),
        Endpoint("weather", weather, injector=injector),
    ]


FED_QUERY = (
    "PREFIX ex: <http://ex.org/> "
    "SELECT ?f ?c ?r WHERE { ?f ex:crop ?c . ?f ex:rain ?r }"
)


def test_e19_federation_result_cache(benchmark):
    """Repeated federated queries: the warm run ships zero remote requests."""
    outcome = {}

    def sweep():
        endpoints = build_federation()
        cache = FederationResultCache()
        requests = []
        for _ in range(5):
            solutions, metrics = execute_federated(
                FED_QUERY, endpoints, result_cache=cache
            )
            requests.append(metrics.requests)
        outcome["requests"] = requests
        outcome["solutions"] = solutions
        outcome["metrics"] = metrics
        bare_solutions, bare_metrics = execute_federated(
            FED_QUERY, build_federation()
        )
        outcome["bare_solutions"] = bare_solutions
        outcome["bare_requests"] = bare_metrics.requests
        return outcome

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    requests = outcome["requests"]
    # Cold pays full price; every warm repetition is remote-free.
    assert requests[0] == outcome["bare_requests"] > 0
    assert all(r == 0 for r in requests[1:])
    assert outcome["metrics"].cache_hits > 0
    # And the answers match the uncached run exactly.
    assert outcome["solutions"] == outcome["bare_solutions"]
    print_series(
        "E19: federation result cache, 5x repeated bind-join query",
        [{"run": i, "remote_requests": r} for i, r in enumerate(requests)],
    )
    benchmark.extra_info["cold_requests"] = requests[0]
    benchmark.extra_info["warm_requests"] = requests[-1]


def test_e19_federation_invalidation_under_faults(benchmark):
    """E17 chaos: an endpoint incident flushes its entries — no stale serving."""
    outcome = {}
    # Weather survives exactly the first query's calls, then is dead.
    probe_endpoints = build_federation()
    execute_federated(FED_QUERY, probe_endpoints)
    weather_calls = probe_endpoints[1].requests

    def sweep():
        plan = FaultPlan(
            seed=SEED,
            endpoint_faults=(
                EndpointFault("weather", dead_after_calls=weather_calls),
            ),
        )
        endpoints = build_federation(injector=FaultInjector(plan))
        cache = FederationResultCache()
        retry = RetryPolicy(max_attempts=3, jitter=0.0)
        # Run 1: weather alive — full answer, cache populated.
        s1, m1 = execute_federated(
            FED_QUERY, endpoints, result_cache=cache, retry_policy=retry
        )
        # Run 2: a *different* pattern misses the cache, discovers the death,
        # and bumps the weather epoch.
        s2, m2 = execute_federated(
            "PREFIX ex: <http://ex.org/> SELECT ?f ?r WHERE { ?f ex:rain ?r }",
            endpoints, result_cache=cache, retry_policy=retry,
        )
        # Run 3: the original query again — its old weather entries are
        # unreachable (stale epoch), so it degrades instead of serving them.
        s3, m3 = execute_federated(
            FED_QUERY, endpoints, result_cache=cache, retry_policy=retry
        )
        outcome.update(s1=s1, m1=m1, m2=m2, s3=s3, m3=m3, cache=cache)
        return outcome

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    cache = outcome["cache"]
    assert outcome["m1"].complete and len(outcome["s1"]) == 30
    assert not outcome["m2"].complete
    assert cache.epoch("weather") >= 1
    assert cache.epoch("crops") == 0
    assert cache.flushes >= 1
    # The invalidation-correctness pin: run 3 must NOT answer from entries
    # cached before the incident.
    assert not outcome["m3"].complete
    assert outcome["s3"] == []
    benchmark.extra_info["weather_epoch"] = cache.epoch("weather")
    benchmark.extra_info["flushes"] = cache.flushes


def drive_namespace(fs, coarse=False):
    """Stat-heavy loop over hot dirs with sibling churn; returns store ops."""
    for d in range(8):
        fs.makedirs(f"/data/dir{d}")
        fs.create(f"/data/dir{d}/seed", b"x" * 64)
    fs.store.reset_accounting()
    for round_no in range(30):
        for d in range(8):
            fs.stat(f"/data/dir{d}/seed")
        fs.mkdir(f"/data/tmp{round_no}")
        fs.delete(f"/data/tmp{round_no}")
        if coarse:
            # The seed behavior this PR removed: wholesale invalidation.
            fs._dir_cache.clear()
    return fs.store.op_count


def test_e19_scoped_dir_hint_invalidation(benchmark):
    """Scoped eviction beats wholesale clearing on store round trips."""
    ops = {}

    def sweep():
        ops["scoped"] = drive_namespace(HopsFS(dir_cache=DirHintCache()))
        ops["coarse"] = drive_namespace(
            HopsFS(dir_cache=DirHintCache()), coarse=True
        )
        return ops

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "E19: dir-hint invalidation, 240 stats + 30 sibling deletes",
        [
            {"policy": "scoped evict_prefix", "store_ops": ops["scoped"]},
            {"policy": "wholesale clear (seed)", "store_ops": ops["coarse"]},
        ],
    )
    # Deterministic op counts, not wall time: the win is structural.
    assert ops["scoped"] < ops["coarse"]
    benchmark.extra_info["scoped_store_ops"] = ops["scoped"]
    benchmark.extra_info["coarse_store_ops"] = ops["coarse"]


def test_e19_determinism(benchmark):
    """Cache accounting is bit-for-bit reproducible run to run."""
    outcome = {}

    def sweep():
        stats = []
        for _ in range(2):
            store = build_store(plan_cache=PlanCache())
            run_workload(store, repetitions=5)
            stats.append(store.plan_cache.stats)
        outcome["stats"] = stats
        return outcome

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    first, second = outcome["stats"]
    assert first == second
