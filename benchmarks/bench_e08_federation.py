"""E8 — federated geospatial analytics (Challenge C3, Semagrow).

Paper claim: "the engine Semagrow will be extended so that it can manage
efficiently federations of big geospatial data sources and answer extreme
geospatial analytical queries". Expected shape: statistics-based source
selection issues a fraction of the broadcast baseline's requests and ships
fewer bindings; the gap widens with federation size because broadcast pays
every endpoint for every pattern.
"""

import time

import pytest

from benchmarks.conftest import print_series
from repro.federation import Endpoint, execute_federated
from repro.rdf import Graph, Literal, Namespace

EX = Namespace("http://ex.org/")
PREFIX = "PREFIX ex: <http://ex.org/> "
FEDERATION_SIZES = (3, 5, 8)

QUERY = (
    PREFIX
    + "SELECT ?f ?c ?r WHERE { ?f ex:crop ?c . ?f ex:rainfall ?r . "
    + "FILTER (?r > 120) }"
)


def build_federation(endpoint_count, fields_per_source=60):
    """Two thematic sources plus (endpoint_count - 2) irrelevant ones."""
    crops = Graph("crops")
    weather = Graph("weather")
    for i in range(fields_per_source):
        field = EX[f"field{i}"]
        crops.add(field, EX.crop, Literal("wheat" if i % 2 else "maize"))
        weather.add(field, EX.rainfall, Literal.from_python(100 + i))
    endpoints = [Endpoint("crops", crops), Endpoint("weather", weather)]
    for extra in range(endpoint_count - 2):
        other = Graph(f"other{extra}")
        for i in range(fields_per_source):
            other.add(EX[f"x{extra}_{i}"], EX.iceType, Literal("old"))
        endpoints.append(Endpoint(f"other{extra}", other))
    return endpoints


def test_e08_source_selection_vs_broadcast(benchmark):
    """Table-style: requests / bindings / latency by method and fed size."""
    rows = []
    stats = {}

    def sweep():
        for size in FEDERATION_SIZES:
            endpoints = build_federation(size)
            start = time.perf_counter()
            selected_solutions, selected = execute_federated(
                QUERY, endpoints, source_selection="statistics"
            )
            selected_s = time.perf_counter() - start
            start = time.perf_counter()
            broadcast_solutions, broadcast = execute_federated(
                QUERY, endpoints, source_selection="none"
            )
            broadcast_s = time.perf_counter() - start
            assert len(selected_solutions) == len(broadcast_solutions)
            stats[size] = (selected, broadcast, selected_s, broadcast_s)
        return stats

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    for size, (selected, broadcast, selected_s, broadcast_s) in stats.items():
        rows.extend(
            [
                {"endpoints": size, "method": "semagrow", "requests": selected.requests,
                 "bindings": selected.bindings_shipped, "seconds": selected_s},
                {"endpoints": size, "method": "broadcast", "requests": broadcast.requests,
                 "bindings": broadcast.bindings_shipped, "seconds": broadcast_s},
            ]
        )
    print_series("E8: federated query execution", rows)
    benchmark.extra_info["request_ratio_at_8"] = (
        stats[8][1].requests / stats[8][0].requests
    )

    # Shape: selection always wins; the win grows with federation size.
    for size, (selected, broadcast, *_ ) in stats.items():
        assert selected.requests < broadcast.requests
        assert selected.bindings_shipped <= broadcast.bindings_shipped
    ratio_small = stats[3][1].requests / stats[3][0].requests
    ratio_large = stats[8][1].requests / stats[8][0].requests
    assert ratio_large > ratio_small


def test_e08_ask_vs_statistics_selection(benchmark):
    """ASK probing is precise but pays one request per (pattern, endpoint)."""
    endpoints = build_federation(8)

    def run(method):
        solutions, metrics = execute_federated(
            QUERY, endpoints, source_selection=method
        )
        return len(solutions), metrics.requests

    def both():
        return run("statistics"), run("ask")

    (stat_n, stat_requests), (ask_n, ask_requests) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    print_series(
        "E8 ablation: source-selection method",
        [
            {"method": "statistics", "results": stat_n, "requests": stat_requests},
            {"method": "ask-probe", "results": ask_n, "requests": ask_requests},
        ],
    )
    assert stat_n == ask_n
    # ASK pays 2 patterns x 8 endpoints = 16 probes up front.
    assert ask_requests >= stat_requests + 16
