"""E14 — the temporal dimension of Sentinel time series (Challenge C1).

Paper claim: Sentinel constellations "acquire long time series of
multispectral and SAR images where the temporal dimension plays a very
important role for the characterization of the information content of the
image (e.g., land cover ...) and its dynamics". Expected shape: crops that
are confusable on any single acquisition date separate once the classifier
sees the seasonal trajectory — accuracy with the multi-date stack beats the
best single date, and the gain concentrates in phenologically-distinct crop
pairs.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_series
from repro.apps.foodsecurity.cropmap import build_crop_classifier, train_crop_classifier
from repro.datasets import (
    make_multitemporal_dataset,
    single_date_view,
    stratified_split,
)
from repro.ml import accuracy, confusion_matrix
from repro.raster.sentinel import CROP_CLASSES, LandCover

DAYS = (135, 180, 225)


def score(dataset, seed=0, epochs=6):
    train, test = stratified_split(dataset, test_fraction=0.25, seed=seed)
    model = build_crop_classifier(
        num_classes=dataset.num_classes, patch_size=4,
        bands=dataset.x.shape[1], seed=seed,
    )
    train_crop_classifier(model, train, epochs=epochs, batch_size=16, lr=0.02)
    return accuracy(model.predict(test.x), test.y)


def test_e14_temporal_stack_vs_single_dates(benchmark):
    """Figure-style series: accuracy per single date vs the full stack."""
    dataset = make_multitemporal_dataset(
        samples=360, patch_size=4, days=DAYS, classes=CROP_CLASSES, seed=7,
    )

    def sweep():
        rows = []
        for index, day in enumerate(DAYS):
            view = single_date_view(dataset, date_index=index, dates=len(DAYS))
            rows.append({"input": f"single date {day}", "accuracy": score(view)})
        rows.append({"input": f"stack of {len(DAYS)}", "accuracy": score(dataset)})
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series("E14: temporal stack vs single acquisitions", rows)
    single_best = max(r["accuracy"] for r in rows[:-1])
    stack = rows[-1]["accuracy"]
    benchmark.extra_info["stack_gain"] = round(stack - single_best, 3)
    # Shape: the stack matches or beats the best single date, and clearly
    # beats the *average* date (a user cannot know the best date a priori).
    assert stack >= single_best - 0.03
    assert stack > np.mean([r["accuracy"] for r in rows[:-1]]) + 0.02
    assert stack > 1.0 / len(CROP_CLASSES) + 0.25


def test_e14_phenology_pair_separation(benchmark):
    """The mechanism: wheat/maize confusion collapses with temporal input."""

    def run():
        # Day 155 is the wheat/maize phenology crossing: their effective
        # spectra coincide, so one acquisition is almost uninformative.
        pair = (LandCover.WHEAT, LandCover.MAIZE)
        full = make_multitemporal_dataset(
            samples=280, patch_size=4, days=(155, 225), classes=pair,
            seed=8, noise_std=0.05,
        )
        crossing_only = single_date_view(full, date_index=0, dates=2)
        return score(full, seed=2), score(crossing_only, seed=2)

    stack_accuracy, single_accuracy = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(
        "E14: wheat vs maize at the phenology crossing",
        [
            {"input": "crossing date only", "accuracy": single_accuracy},
            {"input": "crossing + August", "accuracy": stack_accuracy},
        ],
    )
    # Shape: near-chance on the crossing date; near-perfect with the pair.
    assert single_accuracy < 0.8
    assert stack_accuracy > 0.9
    assert stack_accuracy > single_accuracy + 0.2
