"""E11 — Application A1: high-resolution water-availability maps.

Paper claims: PROMET-style modelling must deliver "high resolution (10m)
water availability maps for the agricultural area in the whole watershed";
processing must "span the whole year instead of just the winter season";
crop-type-specific processing gives "a higher degree of accuracy for each
field". Expected shape: maps come out at 10 m; whole-year runs cost ~3x a
season but capture the summer irrigation peak a winter-season run misses
entirely; crop-specific coefficients change per-field water demand vs a
crop-agnostic baseline.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_series
from repro.apps.foodsecurity import PrometModel, SoilGrid, synthetic_weather
from repro.raster import GeoTransform, LandCover

SIZE = 64  # 64x64 at 10 m
TRANSFORM = GeoTransform(0.0, SIZE * 10.0, 10.0)


def make_crop_map(seed=0):
    from repro.raster.sentinel import landcover_field

    return landcover_field(SIZE, SIZE, seed=seed).astype(np.int16)


def run_period(crop_map, days, seed=1):
    model = PrometModel(crop_map, SoilGrid.uniform(crop_map.shape), TRANSFORM)
    weather = synthetic_weather(days, seed=seed)
    outputs = model.run(weather)
    return model, outputs


def test_e11_whole_year_vs_winter_season(benchmark):
    """Whole-year processing captures the irrigation season; winter doesn't."""
    crop_map = make_crop_map()

    def run_both():
        winter_model, winter = run_period(crop_map, list(range(1, 91)))
        year_model, year = run_period(crop_map, list(range(1, 366)))
        return winter_model, winter, year_model, year

    winter_model, winter, year_model, year = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    winter_peak = max(d.irrigation_demand_mm.mean() for d in winter)
    year_peak = max(d.irrigation_demand_mm.mean() for d in year)
    peak_day = max(year, key=lambda d: d.irrigation_demand_mm.mean()).day_of_year
    grid = year_model.availability_grid(year[-1])
    rows = [
        {"run": "winter season (90d)", "steps": len(winter),
         "peak_demand_mm": winter_peak},
        {"run": "whole year (365d)", "steps": len(year),
         "peak_demand_mm": year_peak},
    ]
    print_series("E11: whole-year vs seasonal processing", rows)
    benchmark.extra_info["peak_demand_day"] = peak_day

    # Shape: 10 m maps; the demand peak falls in summer, outside the winter
    # window, and dwarfs anything the seasonal run sees.
    assert grid.resolution == 10.0
    assert 120 < peak_day < 300
    assert year_peak > winter_peak * 2
    assert year_model.mass_balance_error_mm() < 1e-6
    assert winter_model.mass_balance_error_mm() < 1e-6


def test_e11_crop_specific_vs_agnostic(benchmark):
    """Ablation: crop-type-specific coefficients vs one-crop-fits-all."""
    # Deterministic cropland: west half wheat, east half maize.
    crop_map = np.full((SIZE, SIZE), int(LandCover.WHEAT), dtype=np.int16)
    crop_map[:, SIZE // 2:] = int(LandCover.MAIZE)
    agnostic_map = np.full_like(crop_map, int(LandCover.WHEAT))

    def run_both():
        _, specific = run_period(crop_map, list(range(120, 280)), seed=3)
        _, agnostic = run_period(agnostic_map, list(range(120, 280)), seed=3)
        return specific, agnostic

    specific, agnostic = benchmark.pedantic(run_both, rounds=1, iterations=1)
    maize_mask = crop_map == int(LandCover.MAIZE)
    assert maize_mask.any()
    specific_et = sum(d.et_actual_mm[maize_mask].mean() for d in specific)
    agnostic_et = sum(d.et_actual_mm[maize_mask].mean() for d in agnostic)
    print_series(
        "E11 ablation: crop-specific vs agnostic water use (maize pixels)",
        [
            {"model": "crop-specific", "season_et_mm": specific_et},
            {"model": "all-wheat baseline", "season_et_mm": agnostic_et},
            {"model": "difference", "season_et_mm": specific_et - agnostic_et},
        ],
    )
    # Shape: treating maize as wheat mis-times its water demand — the
    # seasonal ET over maize pixels differs substantially.
    assert abs(specific_et - agnostic_et) > specific_et * 0.05
