"""E17 — fault tolerance: graceful degradation under seeded chaos.

Paper claim: the ExtremeEarth platform must run "in production" on shared
Copernicus infrastructure, which means surviving the faults large clusters
see daily — node crashes, stragglers, flaky federation members, dying
training workers — without losing work or correctness. Expected shape: with
tolerance mechanisms on, the same seeded fault plan completes 100% of the
work at a bounded makespan premium (and federation returns flagged partial
answers instead of raising); with them off, work is lost outright.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_series
from repro.cluster import ClusterSpec, Scheduler
from repro.faults import (
    EndpointFault,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    WorkerCrash,
)
from repro.federation import Endpoint, execute_federated
from repro.ml import Adam, DataParallelTrainer, Dense, ReLU, Sequential
from repro.rdf import Graph, Literal, Namespace

NODES = 10
TASKS = 120
SEED = 17


def chaos_plan():
    """~10% of nodes crash mid-run, plus one straggler and flaky tasks."""
    return FaultPlan.chaos(
        SEED,
        node_count=NODES,
        node_crash_prob=0.1,
        horizon_s=20.0,
        straggler_prob=0.1,
        straggler_factor=6.0,
        task_failure_rate=0.05,
    )


def run_cluster(tolerance):
    scheduler = Scheduler(
        ClusterSpec(node_count=NODES, cpu_slots_per_node=2),
        injector=FaultInjector(chaos_plan()),
        crash_recovery=tolerance,
        speculation=tolerance,
        max_retries=8 if tolerance else 0,
        blacklist_after=4 if tolerance else None,
    )
    scheduler.submit_all([scheduler.make_task(2.0) for _ in range(TASKS)])
    return scheduler.run()


def test_e17_cluster_chaos(benchmark):
    """Same fault plan, tolerance on vs off: completed work and makespan."""
    results = {}

    def sweep():
        results["on"] = run_cluster(tolerance=True)
        results["off"] = run_cluster(tolerance=False)
        results["clean"] = Scheduler(
            ClusterSpec(node_count=NODES, cpu_slots_per_node=2)
        )
        results["clean"].submit_all(
            [results["clean"].make_task(2.0) for _ in range(TASKS)]
        )
        results["clean"] = results["clean"].run()
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    on, off, clean = results["on"], results["off"], results["clean"]
    print_series(
        "E17: cluster chaos (10 nodes, ~10% crash, 5% task failures)",
        [
            {"config": "fault-free", "completed": clean.tasks_completed,
             "lost": clean.tasks_lost, "abandoned": clean.tasks_abandoned,
             "crashes": clean.node_crashes, "speculative": 0,
             "makespan_s": clean.makespan_s},
            {"config": "tolerance on", "completed": on.tasks_completed,
             "lost": on.tasks_lost, "abandoned": on.tasks_abandoned,
             "crashes": on.node_crashes,
             "speculative": on.speculative_launches,
             "makespan_s": on.makespan_s},
            {"config": "tolerance off", "completed": off.tasks_completed,
             "lost": off.tasks_lost, "abandoned": off.tasks_abandoned,
             "crashes": off.node_crashes, "speculative": 0,
             "makespan_s": off.makespan_s},
        ],
    )
    benchmark.extra_info["completed_with_tolerance"] = on.tasks_completed
    benchmark.extra_info["lost_without_tolerance"] = (
        off.tasks_lost + off.tasks_abandoned
    )
    # Shape: tolerance completes everything; without it, work is lost.
    assert on.tasks_completed == TASKS
    assert on.tasks_lost == 0 and on.tasks_abandoned == 0
    assert off.tasks_lost + off.tasks_abandoned > 0
    assert on.makespan_s < clean.makespan_s * 3.0  # bounded premium


def build_federation(plan=None):
    injector = FaultInjector(plan) if plan is not None else None
    EX = Namespace("http://ex.org/")
    crops = Graph("crops")
    weather = Graph("weather")
    for i in range(40):
        crops.add(EX[f"field{i}"], EX.crop, Literal("wheat" if i % 2 else "maize"))
        weather.add(EX[f"field{i}"], EX.rainfall, Literal.from_python(100 + i))
    query = (
        "PREFIX ex: <http://ex.org/> "
        "SELECT ?f ?c ?r WHERE { ?f ex:crop ?c . ?f ex:rainfall ?r }"
    )
    return query, [
        Endpoint("crops", crops, injector=injector),
        Endpoint("weather", weather, injector=injector),
    ]


def test_e17_federation_degradation(benchmark):
    """Flaky endpoints are retried; a dead one degrades to a partial answer."""
    results = {}

    def sweep():
        policy = RetryPolicy(max_attempts=8, jitter=0.0)
        query, endpoints = build_federation()
        results["clean"] = execute_federated(query, endpoints)
        flaky = FaultPlan(
            seed=SEED,
            endpoint_faults=(EndpointFault("weather", error_rate=0.3,
                                           timeout_rate=0.1),),
        )
        query, endpoints = build_federation(flaky)
        results["flaky"] = execute_federated(query, endpoints,
                                             retry_policy=policy)
        dead = FaultPlan(
            endpoint_faults=(EndpointFault("weather", dead_after_calls=10),)
        )
        query, endpoints = build_federation(dead)
        results["dead"] = execute_federated(query, endpoints,
                                            retry_policy=policy)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for config in ("clean", "flaky", "dead"):
        solutions, metrics = results[config]
        rows.append(
            {"config": config, "results": len(solutions),
             "complete": metrics.complete, "retries": metrics.retries,
             "failures": sum(metrics.endpoint_failures.values())}
        )
    print_series("E17: federation under endpoint chaos", rows)
    clean_n = len(results["clean"][0])
    benchmark.extra_info["flaky_recovered"] = results["flaky"][1].complete
    # Shape: retries recover the flaky run completely; the dead endpoint
    # yields a flagged partial answer instead of an exception.
    assert results["flaky"][1].complete
    assert len(results["flaky"][0]) == clean_n
    assert results["flaky"][1].retries > 0
    assert not results["dead"][1].complete
    assert len(results["dead"][0]) < clean_n


def make_training(injector=None, checkpoint_path=None, seed=5):
    model = Sequential(
        [Dense(4, 16, seed=seed), ReLU(), Dense(16, 3, seed=seed + 1)]
    )
    trainer = DataParallelTrainer(
        model,
        Adam(model.parameters(), lr=0.01),
        workers=4,
        injector=injector,
        checkpoint_every=5 if checkpoint_path else None,
        checkpoint_path=checkpoint_path,
    )
    rng = np.random.default_rng(11)
    centers = np.array([[3, 0, 0, 0], [0, 3, 0, 0], [0, 0, 3, 0]], float)
    y = rng.integers(0, 3, size=160)
    x = centers[y] + rng.normal(0, 0.5, size=(160, 4))
    return trainer, x, y


def test_e17_elastic_training(benchmark, tmp_path):
    """A worker dies mid-training; survivors carry on with exact updates."""
    results = {}
    path = str(tmp_path / "ckpt")

    def sweep():
        plan = FaultPlan(worker_crashes=(WorkerCrash(worker=2, at_step=8),))
        trainer, x, y = make_training(FaultInjector(plan), checkpoint_path=path)
        mid = path + "-mid"
        for _ in range(20):
            trainer.train_step(x, y)
            if trainer.report.steps == 10:
                trainer.save_checkpoint(mid)
        results["elastic"] = trainer

        clean, x, y = make_training()
        for _ in range(20):
            clean.train_step(x, y)
        results["clean"] = clean

        # Restore the mid-run checkpoint and finish the run from there.
        restored, x, y = make_training()
        restored.load_checkpoint(mid)
        results["restored_from"] = restored.report.steps
        while restored.report.steps < 20:
            restored.train_step(x, y)
        results["restored"] = restored
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    elastic, clean = results["elastic"], results["restored"]
    print_series(
        "E17: elastic training (worker 2 dies at step 8)",
        [
            {"config": "fault-free", "steps": results["clean"].report.steps,
             "survivors": len(results["clean"].active_workers),
             "final_loss": results["clean"].report.final_loss,
             "sim_time_s": results["clean"].report.total_time_s},
            {"config": "elastic", "steps": elastic.report.steps,
             "survivors": len(elastic.active_workers),
             "final_loss": elastic.report.final_loss,
             "sim_time_s": elastic.report.total_time_s},
            {"config": f"restored@{results['restored_from']}",
             "steps": clean.report.steps,
             "survivors": len(clean.active_workers),
             "final_loss": clean.report.final_loss,
             "sim_time_s": clean.report.total_time_s},
        ],
    )
    benchmark.extra_info["elastic_final_loss"] = round(
        elastic.report.final_loss, 6
    )
    # Shape: training survives the crash and still converges; the restored
    # run resumes the elastic trajectory bitwise from the checkpoint.
    assert elastic.report.steps == 20
    assert elastic.active_workers == (0, 1, 3)
    assert elastic.report.final_loss < elastic.report.losses[0]
    assert results["restored"].report.losses == elastic.report.losses
