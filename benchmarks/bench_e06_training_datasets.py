"""E6 — training-dataset generation at scale (Challenge C2).

Paper claim: "Two training datasets consisting of millions of samples will be
developed" by enlarging existing datasets and "leveraging existing
cartographic/thematic products (e.g., OpenStreetMap)". Expected shape:
(a) downstream accuracy grows with weak-label dataset size (the point of
generating big datasets), (b) cartographic attribute errors propagate into
label noise and depress accuracy, (c) augmentation-based enlargement recovers
part of the small-data gap.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_series
from repro.apps.foodsecurity.cropmap import build_crop_classifier, train_crop_classifier
from repro.datasets import (
    WeakLabelConfig,
    augment_dataset,
    make_osm_layer,
    stratified_split,
    weak_label_dataset,
)
from repro.ml import accuracy
from repro.raster import GeoTransform, LandCover
from repro.raster.sentinel import CROP_CLASSES, landcover_field, sentinel2_scene
from repro.raster.stats import rasterize_polygon

SIZE = 96


def make_world(attribute_error=0.0, seed=0):
    layer = make_osm_layer(
        extent=(0.0, 0.0, SIZE * 10.0, SIZE * 10.0),
        parcel_grid=6,
        attribute_error=attribute_error,
        seed=seed,
    )
    transform = GeoTransform(0.0, SIZE * 10.0, 10.0)
    truth = np.full((SIZE, SIZE), int(LandCover.BARE_SOIL), dtype=np.int16)
    for parcel in layer.parcels:
        mask = rasterize_polygon(parcel.geometry, transform, (SIZE, SIZE))
        truth[mask] = int(parcel.true_crop)
    scene = sentinel2_scene(truth, day_of_year=170, seed=seed, transform=transform)
    return scene, layer


def evaluate(dataset, seed=1, repeats=2):
    """Train on the weak dataset, score on a held-out stratified split.

    Averaged over ``repeats`` seeds: tiny datasets make single runs noisy.
    """
    scores = []
    for r in range(repeats):
        train, test = stratified_split(dataset, test_fraction=0.25, seed=seed + r)
        model = build_crop_classifier(num_classes=len(CROP_CLASSES), seed=seed + r)
        train_crop_classifier(model, train, epochs=8, batch_size=16, lr=0.02)
        scores.append(accuracy(model.predict(test.x), test.y))
    return float(np.mean(scores))


def test_e06_accuracy_vs_dataset_size(benchmark):
    """Figure-style series: downstream accuracy vs generated dataset size."""
    scene, layer = make_world(attribute_error=0.0, seed=2)
    sizes = (1, 6, 18)  # patches per parcel -> dataset size sweep

    def sweep():
        results = []
        for per_parcel in sizes:
            dataset = weak_label_dataset(
                scene.grid, layer,
                WeakLabelConfig(patch_size=8, patches_per_parcel=per_parcel),
                seed=3,
            )
            results.append((len(dataset), evaluate(dataset)))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [{"patches": n, "test_accuracy": acc} for n, acc in results]
    print_series("E6: accuracy vs weak-label dataset size", rows)
    benchmark.extra_info["accuracies"] = {str(n): round(a, 3) for n, a in results}

    # Shape: bigger generated datasets help (largest beats smallest).
    assert results[-1][0] > results[0][0] * 4
    assert results[-1][1] > results[0][1]
    assert results[-1][1] > 1.0 / len(CROP_CLASSES) + 0.1  # well above chance


def test_e06_label_noise_hurts(benchmark):
    """Cartographic attribute errors propagate into downstream accuracy."""

    def sweep():
        results = []
        for error in (0.0, 0.3):
            scene, layer = make_world(attribute_error=error, seed=4)
            dataset = weak_label_dataset(
                scene.grid, layer,
                WeakLabelConfig(patch_size=8, patches_per_parcel=10),
                seed=5,
            )
            results.append((error, layer.attribute_error_rate(), evaluate(dataset)))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        {"attribute_error": e, "realized_rate": r, "test_accuracy": a}
        for e, r, a in results
    ]
    print_series("E6: label noise vs accuracy", rows)
    clean, noisy = results[0][2], results[1][2]
    assert noisy < clean


def test_e06_augmentation_enlargement(benchmark):
    """Enlarging a small dataset by augmentation recovers accuracy."""
    scene, layer = make_world(seed=6)
    small = weak_label_dataset(
        scene.grid, layer, WeakLabelConfig(patch_size=8, patches_per_parcel=3),
        seed=7,
    )

    def run():
        enlarged = augment_dataset(small, copies=4, seed=8)
        return evaluate(small, seed=9), evaluate(enlarged, seed=9), len(enlarged)

    small_acc, big_acc, big_n = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(
        "E6: augmentation enlargement",
        [
            {"dataset": f"weak ({len(small)})", "test_accuracy": small_acc},
            {"dataset": f"augmented ({big_n})", "test_accuracy": big_acc},
        ],
    )
    assert big_n == len(small) * 5
    # Shape: enlargement should not hurt, and usually helps.
    assert big_acc >= small_acc - 0.05
