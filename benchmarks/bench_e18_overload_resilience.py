"""E18 — overload resilience: deadlines, breakers and admission control.

Paper claim: a production Copernicus platform serves many tenants at once,
so overload — flash crowds, flapping data sources — is a steady state, not
an incident. Expected shape: under the *same* seeded chaos schedule
(endpoint flaps + demand bursts), the protected stack (admission control +
circuit breakers + per-request deadlines) delivers strictly higher goodput
and strictly lower p99 latency than the unprotected one, which melts into
metastable overload (everything admitted, everything late).
"""

import pytest

from benchmarks.conftest import emit_bench_snapshot, print_series
from repro.obs import Observability
from repro.resilience import SoakConfig, run_soak

SEED = 18


def soak_config(requests: int = 1200) -> SoakConfig:
    return SoakConfig(seed=SEED, requests=requests)


def test_e18_overload_resilience(benchmark):
    """Same chaos schedule, protection on vs off: goodput and tail latency."""
    results = {}
    obs = Observability()

    def sweep():
        config = soak_config()
        results["bare"] = run_soak(config, protected=False)
        results["protected"] = run_soak(config, protected=True, obs=obs)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    bare, protected = results["bare"], results["protected"]
    bare.verify()
    protected.verify()
    rows = []
    for label, report in (("unprotected", bare), ("protected", protected)):
        rows.append(
            {"config": label, "arrivals": report.arrivals, "ok": report.ok,
             "late": report.late, "failed": report.failed,
             "shed": report.shed, "expired": report.expired,
             "goodput_rps": report.goodput,
             "p99_s": report.p99_latency_s,
             "breaker_opens": report.breaker_opens}
        )
    print_series(
        "E18: overload soak (flapping backends + demand bursts, seed 18)",
        rows,
    )
    benchmark.extra_info["goodput_protected_rps"] = round(protected.goodput, 3)
    benchmark.extra_info["goodput_unprotected_rps"] = round(bare.goodput, 3)
    benchmark.extra_info["p99_protected_s"] = round(protected.p99_latency_s, 4)
    benchmark.extra_info["p99_unprotected_s"] = round(bare.p99_latency_s, 4)
    emit_bench_snapshot(
        "E18",
        obs,
        meta={
            "goodput_protected_rps": protected.goodput,
            "goodput_unprotected_rps": bare.goodput,
            "p99_protected_s": protected.p99_latency_s,
            "p99_unprotected_s": bare.p99_latency_s,
        },
    )
    # Shape: the acceptance criteria of E18 — strictly better on both axes.
    assert protected.goodput > bare.goodput
    assert protected.p99_latency_s < bare.p99_latency_s
    # The mechanisms actually engaged (this is not a vacuous comparison).
    assert protected.shed > 0
    assert protected.breaker_opens > 0


def test_e18_determinism(benchmark):
    """The soak is bit-for-bit reproducible: same config, same report."""
    results = {}

    def sweep():
        config = soak_config(requests=400)
        results["first"] = run_soak(config, protected=True)
        results["second"] = run_soak(config, protected=True)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    first, second = results["first"], results["second"]
    first.verify()
    assert first.summary() == second.summary()
    assert first.latencies_s == second.latencies_s
