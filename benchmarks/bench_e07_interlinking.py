"""E7 — scalable discovery of geospatial relations (Challenge C3, JedAI).

Paper claim: "the JedAI linking framework [19] will be extended to enable the
scalable discovery of geospatial relations in big geospatial RDF data
sources". Expected shape: equigrid blocking cuts candidate pairs by orders of
magnitude at full recall; meta-blocking prunes further at a small recall
cost; runtime follows the comparison count, so blocking's advantage grows
with dataset size.
"""

import random
import time

import pytest

from benchmarks.conftest import print_series
from repro.geometry import Polygon
from repro.interlinking import SpatialEntity, discover_links, evaluate_links

SIZES = (100, 300, 900)


def world_side(count: int) -> float:
    """Constant feature density: the mapped area grows with the dataset,
    which is how EO link-discovery workloads actually scale."""
    return 500.0 * (count / 100.0) ** 0.5


def make_entities(prefix, count, seed):
    rng = random.Random(seed)
    world = world_side(count)
    entities = []
    for i in range(count):
        x = rng.uniform(0, world - 25)
        y = rng.uniform(0, world - 25)
        entities.append(
            SpatialEntity(
                f"{prefix}{i}",
                Polygon.box(x, y, x + rng.uniform(5, 25), y + rng.uniform(5, 25)),
            )
        )
    return entities


def test_e07_blocking_vs_brute_force(benchmark):
    """Table-style: candidates, comparisons, recall, runtime per method."""
    rows = []
    results = {}

    def sweep():
        for size in SIZES:
            sources = make_entities("a", size, seed=size)
            targets = make_entities("b", size, seed=size + 1)
            brute = discover_links(sources, targets, method="brute_force")
            blocked = discover_links(sources, targets, method="blocking", cell_size=40.0)
            pruned = discover_links(
                sources, targets, method="blocking", cell_size=40.0,
                meta_keep_fraction=0.8,
            )
            results[size] = (brute, blocked, pruned)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    for size, (brute, blocked, pruned) in results.items():
        _, block_recall = evaluate_links(blocked.links, brute.links)
        _, prune_recall = evaluate_links(pruned.links, brute.links)
        rows.extend(
            [
                {"n": size, "method": "brute", "candidates": brute.candidate_pairs,
                 "seconds": brute.elapsed_s, "recall": 1.0},
                {"n": size, "method": "blocking", "candidates": blocked.candidate_pairs,
                 "seconds": blocked.elapsed_s, "recall": block_recall},
                {"n": size, "method": "+meta", "candidates": pruned.candidate_pairs,
                 "seconds": pruned.elapsed_s, "recall": prune_recall},
            ]
        )
    print_series("E7: link discovery", rows)

    largest = results[SIZES[-1]]
    benchmark.extra_info["candidate_reduction"] = (
        largest[0].candidate_pairs / max(largest[1].candidate_pairs, 1)
    )
    # Shape: blocking preserves recall and slashes candidates; the gap grows.
    for size, (brute, blocked, pruned) in results.items():
        _, recall = evaluate_links(blocked.links, brute.links)
        assert recall == 1.0
        assert blocked.candidate_pairs < brute.candidate_pairs / 20
        assert pruned.candidate_pairs <= blocked.candidate_pairs
    small_ratio = results[SIZES[0]][0].candidate_pairs / max(
        results[SIZES[0]][1].candidate_pairs, 1
    )
    large_ratio = largest[0].candidate_pairs / max(largest[1].candidate_pairs, 1)
    assert large_ratio > small_ratio
    # Runtime follows comparisons at the largest size.
    assert largest[1].elapsed_s < largest[0].elapsed_s


def test_e07_metablocking_tradeoff(benchmark):
    """Figure-style series: meta-blocking keep_fraction vs comparisons/recall.

    Entities here vary widely in extent, so candidate pairs carry unequal
    evidence (1..many shared cells) — the regime meta-blocking prunes in.
    """
    rng = random.Random(13)

    def varied(prefix, count, seed):
        rng = random.Random(seed)
        out = []
        for i in range(count):
            x, y = rng.uniform(0, 400), rng.uniform(0, 400)
            side = rng.uniform(3, 80)  # wide size spread -> varied weights
            out.append(SpatialEntity(f"{prefix}{i}", Polygon.box(x, y, x + side, y + side)))
        return out

    sources = varied("a", 300, seed=11)
    targets = varied("b", 300, seed=12)
    brute = discover_links(sources, targets, method="brute_force")

    def sweep():
        rows = []
        for keep in (0.0, 0.5, 0.8, 1.0):
            result = discover_links(
                sources, targets, method="blocking", cell_size=15.0,
                meta_keep_fraction=keep,
            )
            _, recall = evaluate_links(result.links, brute.links)
            rows.append(
                {"keep_fraction": keep, "comparisons": result.comparisons,
                 "recall": recall}
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series("E7 ablation: meta-blocking pruning threshold", rows)
    # Shape: monotone trade-off — fewer comparisons as pruning tightens,
    # recall non-increasing, and the strictest setting really prunes.
    comparisons = [r["comparisons"] for r in rows]
    recalls = [r["recall"] for r in rows]
    assert comparisons == sorted(comparisons, reverse=True)
    assert comparisons[-1] < comparisons[0]
    assert all(r1 >= r2 - 1e-9 for r1, r2 in zip(recalls, recalls[1:]))
    assert recalls[0] == 1.0
