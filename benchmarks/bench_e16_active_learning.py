"""E16 — active and semi-supervised learning (Challenge C1, citing [20]).

Paper claim: "from an operational viewpoint it is not feasible to assume the
availability of enough ground truth or annotated labeled data for training a
deep network" — the motivation for the active/semi-supervised line of work
(Persello & Bruzzone) the paper builds on.

The pool mirrors EO reality: easy majority classes (water, urban) dominate,
the confusable crop classes are rare. Expected shape: with a fixed label
budget, margin-based active sampling spends labels on the crop boundary and
beats random sampling on a balanced test set; self-training on the
unlabelled pool lifts a label-starved classifier.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_series
from repro.datasets import Dataset
from repro.datasets.multitemporal import make_multitemporal_dataset
from repro.ml import (
    ActiveLearner,
    Dense,
    ReLU,
    SGD,
    Sequential,
    accuracy,
    self_training,
    softmax_cross_entropy,
)
from repro.raster.sentinel import LandCover

CLASSES = (
    LandCover.WATER,
    LandCover.URBAN,
    LandCover.WHEAT,
    LandCover.MAIZE,
    LandCover.RAPESEED,
)
FEATURES = 13 * 16  # one acquisition, 4x4 patches


class _MLP:
    """A calibrated MLP over flattened patches (fast enough to retrain
    from scratch every active round)."""

    def __init__(self, seed=0):
        self.net = Sequential(
            [Dense(FEATURES, 48, seed=seed), ReLU(), Dense(48, len(CLASSES), seed=seed + 1)]
        )

    def predict(self, x):
        return self.net.predict(x.reshape(x.shape[0], -1))

    def predict_proba(self, x):
        return self.net.predict_proba(x.reshape(x.shape[0], -1))


def _train(model, dataset, epochs=150, lr=0.1):
    optimizer = SGD(model.net.parameters(), lr=lr, momentum=0.9)
    x = dataset.x.reshape(len(dataset), -1)
    for _ in range(epochs):
        model.net.zero_grad()
        logits = model.net.forward(x, training=True)
        _, dlogits = softmax_cross_entropy(logits, dataset.y)
        model.net.backward(dlogits)
        optimizer.step()


def _make_data(seed):
    return make_multitemporal_dataset(
        samples=900, patch_size=4, days=(160,), classes=CLASSES,
        seed=seed, noise_std=0.06,
    )


def imbalanced_pool(seed=31):
    """Water/urban dominate; only ~22% of crop samples survive."""
    rng = np.random.default_rng(seed)
    full = _make_data(seed)
    keep = [
        i for i in range(len(full))
        if full.y[i] < 2 or rng.random() < 0.22
    ]
    return full.subset(np.asarray(keep))


def balanced_test(seed=32, samples=300):
    full = make_multitemporal_dataset(
        samples=samples, patch_size=4, days=(160,), classes=CLASSES,
        seed=seed, noise_std=0.06,
    )
    return full


def test_e16_active_vs_random_budget(benchmark):
    """Figure-style series: accuracy vs labels, margin vs random sampling."""
    pool = imbalanced_pool()
    test = balanced_test()

    def run(strategy, seed):
        learner = ActiveLearner(
            model_fn=lambda: _MLP(seed=3), train_fn=_train,
            strategy=strategy, seed=seed,
        )
        _, history = learner.run(pool, test, initial=20, batch=20, rounds=5)
        return history

    def both():
        # Average two label-order seeds: single runs are noisy at 20 labels.
        active = [run("margin", seed) for seed in (5, 6)]
        random = [run("random", seed) for seed in (5, 6)]
        return active, random

    active_runs, random_runs = benchmark.pedantic(both, rounds=1, iterations=1)
    rounds = len(active_runs[0])
    rows = []
    for r in range(rounds):
        rows.append(
            {
                "labels": active_runs[0][r].labelled,
                "margin": np.mean([run[r].accuracy for run in active_runs]),
                "random": np.mean([run[r].accuracy for run in random_runs]),
            }
        )
    print_series("E16: label budget vs accuracy (imbalanced EO pool)", rows)
    final_active = rows[-1]["margin"]
    final_random = rows[-1]["random"]
    benchmark.extra_info["active_advantage"] = round(final_active - final_random, 3)

    # Shape: both improve; at the final budget the actively-queried labels
    # beat random (the boundary crops got the budget).
    assert rows[-1]["margin"] > rows[0]["margin"]
    assert final_active > final_random


def test_e16_self_training_gain(benchmark):
    """Self-training lifts a label-starved classifier using the archive."""
    full = _make_data(seed=41)
    test = balanced_test(seed=42)
    labelled = full.subset(np.arange(25))
    unlabelled_x = full.x[25:]

    def run():
        supervised = _MLP(seed=7)
        _train(supervised, labelled)
        baseline = accuracy(supervised.predict(test.x), test.y)
        model, final, adopted = self_training(
            model_fn=lambda: _MLP(seed=7),
            train_fn=_train,
            labelled=labelled,
            unlabelled_x=unlabelled_x,
            confidence=0.85,
            max_iterations=2,
        )
        semi = accuracy(model.predict(test.x), test.y)
        return baseline, semi, sum(adopted), len(final)

    baseline, semi, adopted, final_size = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_series(
        "E16: self-training with 25 labels",
        [
            {"model": "supervised only", "training_samples": 25, "accuracy": baseline},
            {"model": "self-training", "training_samples": final_size, "accuracy": semi},
        ],
    )
    benchmark.extra_info["pseudo_labels_adopted"] = adopted
    # Shape: a meaningful share of the archive is adopted, and the
    # semi-supervised model at least matches the label-starved baseline.
    assert adopted > 100
    assert semi >= baseline - 0.03
