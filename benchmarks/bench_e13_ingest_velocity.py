"""E13 — velocity: keeping up with the archive's daily volume.

Paper claim: "By the end of 2016, 6 TB of data were generated and 100 TB of
data were disseminated every day" and rates "will increase in forthcoming
years" — the platform must ingest at archive velocity by scaling out, moving
"the processing to where the data is". Expected shape: simulated ingest
throughput grows near linearly with cluster size; delay scheduling keeps
task inputs local, and disabling it increases data movement.
"""

import pytest

from benchmarks.conftest import print_series
from repro.cluster import ClusterSpec, Scheduler
from repro.pipeline import ExtremeEarthPipeline
from repro.raster import ProductArchive

NODE_COUNTS = (1, 2, 4, 8)
PRODUCTS = 128


def ingest_with(nodes):
    pipeline = ExtremeEarthPipeline(
        cluster=ClusterSpec(node_count=nodes, cpu_slots_per_node=2)
    )
    products = ProductArchive(seed=3).generate(PRODUCTS)
    return pipeline.ingest_archive(products)


def test_e13_ingest_scaling(benchmark):
    """Figure-style series: simulated ingest throughput vs cluster size."""
    reports = {}

    def sweep():
        for nodes in NODE_COUNTS:
            reports[nodes] = ingest_with(nodes)
        return reports

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    base = reports[1].products_per_second
    rows = [
        {
            "nodes": nodes,
            "sim_products_per_s": report.products_per_second,
            "speedup": report.products_per_second / base,
            "implied_TB_per_day": report.products_per_second
            * 86400 * (report.raw_bytes / report.products) / 1e12,
        }
        for nodes, report in reports.items()
    ]
    print_series("E13: archive ingest velocity", rows)
    benchmark.extra_info["speedup_8_nodes"] = round(
        reports[8].products_per_second / base, 2
    )
    # Shape: near-linear scale-out.
    assert reports[4].products_per_second > base * 2.5
    assert reports[8].products_per_second > reports[4].products_per_second * 1.5


def test_e13_ablation_delay_scheduling(benchmark):
    """Ablation: locality wait vs none on a data-heavy task mix."""
    spec = ClusterSpec(
        node_count=4,
        cpu_slots_per_node=1,
        network_bandwidth_bps=2e8,  # constrained network: remote reads hurt
        network_latency_s=0.0,
    )

    def run(wait):
        scheduler = Scheduler(spec, locality_wait_s=wait)
        tasks = []
        for i in range(64):
            tasks.append(
                scheduler.make_task(
                    work_s=0.5,
                    input_bytes=2e8,
                    preferred_nodes={i % 2},  # skewed: data on two nodes
                )
            )
        scheduler.submit_all(tasks)
        return scheduler.run()

    def both():
        return run(60.0), run(0.0)

    with_wait, without_wait = benchmark.pedantic(both, rounds=1, iterations=1)
    print_series(
        "E13 ablation: delay scheduling",
        [
            {"scheduler": "locality wait", "locality": with_wait.locality_rate,
             "GB_moved": with_wait.bytes_transferred / 1e9,
             "makespan_s": with_wait.makespan_s},
            {"scheduler": "no wait", "locality": without_wait.locality_rate,
             "GB_moved": without_wait.bytes_transferred / 1e9,
             "makespan_s": without_wait.makespan_s},
        ],
    )
    # Shape: waiting achieves full locality and zero network traffic at a
    # bounded makespan premium; scheduling greedily floods the network.
    assert with_wait.locality_rate == 1.0
    assert with_wait.bytes_transferred == 0.0
    assert without_wait.bytes_transferred > 1e9
    assert with_wait.makespan_s < without_wait.makespan_s * 1.6
