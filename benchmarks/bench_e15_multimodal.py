"""E15 — multimodal synergy: optical + SAR (Challenge C1).

Paper claim: "Different kinds of sensors (radar, optical, multi/multispectral)
are available and can be used in synergy. Each modality provides specific
information that can be used to cope with the limitations of another."
Expected shape: on clear scenes the optical modality dominates; as cloud
cover corrupts the optical channels its accuracy collapses while SAR is
untouched; the fused classifier tracks the better modality everywhere —
degrading gracefully instead of failing with the optics.
"""

import pytest

from benchmarks.conftest import print_series
from repro.apps.foodsecurity.cropmap import build_crop_classifier, train_crop_classifier
from repro.datasets import (
    make_multimodal_dataset,
    modality_view,
    stratified_split,
)
from repro.ml import accuracy

CLOUD_LEVELS = (0.0, 0.5, 0.9)


def score(dataset, seed=0):
    train, test = stratified_split(dataset, test_fraction=0.25, seed=seed)
    model = build_crop_classifier(
        num_classes=dataset.num_classes, patch_size=4,
        bands=dataset.x.shape[1], seed=seed,
    )
    train_crop_classifier(model, train, epochs=6, batch_size=16, lr=0.02)
    return accuracy(model.predict(test.x), test.y)


def test_e15_fusion_under_clouds(benchmark):
    """Figure-style series: accuracy by modality across cloud cover."""

    def sweep():
        rows = []
        for clouds in CLOUD_LEVELS:
            dataset = make_multimodal_dataset(
                samples=300, patch_size=4, seed=11, cloud_fraction=clouds,
            )
            rows.append(
                {
                    "cloud_fraction": clouds,
                    "optical": score(modality_view(dataset, "optical")),
                    "sar": score(modality_view(dataset, "sar")),
                    "fused": score(dataset),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series("E15: optical vs SAR vs fusion under cloud", rows)
    clear, mid, overcast = rows
    benchmark.extra_info["fused_at_90pct_cloud"] = overcast["fused"]

    # Shape: optics win when clear but collapse under cloud; SAR is
    # cloud-invariant; fusion tracks the stronger modality at every level.
    assert clear["optical"] > clear["sar"]
    assert overcast["optical"] < clear["optical"] - 0.15
    assert abs(overcast["sar"] - clear["sar"]) < 0.15
    for row in rows:
        assert row["fused"] >= max(row["optical"], row["sar"]) - 0.08
    # The synergy claim in one number: fusion under heavy cloud stays far
    # above the collapsed optical channel.
    assert overcast["fused"] > overcast["optical"] + 0.1
