"""E4 — distributed scale-out deep learning.

Paper claim (Challenge C1, citing Goyal et al. [8]): classification must move
from single-GPU training to "distributed scale-out deep learning". Expected
shape: simulated time per epoch shrinks with worker count while the update
math stays exact (speedup saturates as the allreduce term stops shrinking);
the Goyal linear-scaling rule needs its warmup — without it, the scaled
learning rate destabilises early training.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_series
from repro.cluster import NetworkModel
from repro.datasets import make_eurosat
from repro.ml import (
    DataParallelTrainer,
    SGD,
    Sequential,
    WarmupLinearScalingSchedule,
    accuracy,
)
from repro.apps.foodsecurity.cropmap import build_crop_classifier

WORKERS = (1, 2, 4, 8, 16)
BATCH = 64


def make_data():
    return make_eurosat(samples=480, patch_size=8, num_classes=6, seed=3)


def train_once(workers, dataset, epochs=1, schedule=None, lr=0.05):
    model = build_crop_classifier(num_classes=6, seed=5)
    trainer = DataParallelTrainer(
        model,
        SGD(model.parameters(), lr=lr, momentum=0.9),
        workers=workers,
        strategy="allreduce",
        network=NetworkModel(latency_s=50e-6, bandwidth_bps=1.25e9),
        example_cost_s=2e-3,  # simulated per-example compute
        schedule=schedule,
    )
    report = trainer.fit(dataset.x, dataset.y, epochs=epochs, batch_size=BATCH)
    return model, trainer, report


def test_e04_epoch_time_vs_workers(benchmark):
    """Figure-style series: simulated epoch time + throughput vs workers."""
    dataset = make_data()
    reports = {}

    def sweep():
        for workers in WORKERS:
            reports[workers] = train_once(workers, dataset)[2]
        return reports

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    base = reports[1].total_time_s
    rows = [
        {
            "workers": w,
            "sim_epoch_s": r.total_time_s,
            "speedup": base / r.total_time_s,
            "comm_fraction": r.comm_time_s / r.total_time_s,
            "final_loss": r.final_loss,
        }
        for w, r in reports.items()
    ]
    print_series("E4: scale-out training (ring allreduce)", rows)
    benchmark.extra_info["speedup_16"] = base / reports[16].total_time_s

    # Shape: strong scaling with saturation; identical learning curves.
    assert base / reports[4].total_time_s > 2.5
    assert base / reports[16].total_time_s > 4.0
    # Exact data parallelism: same losses regardless of worker count.
    np.testing.assert_allclose(reports[1].losses, reports[16].losses, rtol=1e-9)
    # Communication share grows with workers.
    assert (
        reports[16].comm_time_s / reports[16].total_time_s
        > reports[2].comm_time_s / reports[2].total_time_s
    )


def test_e04_ablation_warmup(benchmark):
    """Ablation: Goyal linear scaling with vs without warmup at 8 workers."""
    dataset = make_data()
    workers = 8
    base_lr = 0.2  # aggressive: target lr = 1.6, where warmup matters

    def run(warmup_steps):
        schedule = WarmupLinearScalingSchedule(
            base_lr=base_lr, workers=workers, warmup_steps=warmup_steps
        )
        model, trainer, report = train_once(
            workers, dataset, epochs=2, schedule=schedule, lr=base_lr
        )
        score = accuracy(model.predict(dataset.x[:160]), dataset.y[:160])
        return report, score

    def both():
        return run(14), run(0)

    (with_warmup, acc_warm), (no_warmup, acc_cold) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    # Skip the shared step-0 loss: compare the post-first-update trajectory.
    early_with = max(with_warmup.losses[1:8])
    early_without = max(no_warmup.losses[1:8])
    print_series(
        "E4 ablation: large-minibatch warmup (8 workers)",
        [
            {"schedule": "warmup(14 steps)", "peak_early_loss": early_with,
             "final_loss": with_warmup.final_loss, "accuracy": acc_warm},
            {"schedule": "no warmup", "peak_early_loss": early_without,
             "final_loss": no_warmup.final_loss, "accuracy": acc_cold},
        ],
    )
    # Shape: the immediately-scaled rate spikes early loss.
    assert early_without > early_with
