"""E5 — collective allreduce vs parameter server.

Paper claim (Challenge C5): HOPS supports "distributed deep learning using
TensorFlow's distribution strategies, including collective allreduce and
parameter server". Expected shape: per-step synchronisation time under ring
allreduce is flat in the worker count (bandwidth-optimal), the single
parameter server degrades linearly (its link is the bottleneck), scaling the
server tier recovers, and naive broadcast is strictly worse than ring; in a
latency-dominated regime a full server tier beats the ring's 2(n-1) steps.
"""

import pytest

from benchmarks.conftest import emit_bench_snapshot, print_series
from repro.obs import Observability
from repro.cluster import (
    NetworkModel,
    broadcast_time_s,
    parameter_server_time_s,
    ring_allreduce_time_s,
)

MODEL_BYTES = 100e6  # a 25M-parameter model in float32
WORKERS = (2, 4, 8, 16, 32, 64)
NETWORK = NetworkModel(latency_s=100e-6, bandwidth_bps=1.25e9)


def sweep():
    rows = []
    for workers in WORKERS:
        rows.append(
            {
                "workers": workers,
                "ring_s": ring_allreduce_time_s(workers, MODEL_BYTES, NETWORK),
                "ps1_s": parameter_server_time_s(workers, MODEL_BYTES, 1, NETWORK),
                "ps8_s": parameter_server_time_s(workers, MODEL_BYTES, 8, NETWORK),
                "broadcast_s": broadcast_time_s(workers, MODEL_BYTES, NETWORK),
            }
        )
    return rows


def test_e05_sync_cost_per_step(benchmark):
    """Figure-style series: per-step sync time by strategy and worker count."""
    obs = Observability()
    with obs.tracer.span("bench.e05.sweep"):
        rows = benchmark(sweep)
    print_series("E5: gradient synchronisation cost per step", rows)
    by_workers = {r["workers"]: r for r in rows}
    benchmark.extra_info["ring_vs_ps1_at_64"] = (
        by_workers[64]["ps1_s"] / by_workers[64]["ring_s"]
    )
    for row in rows:
        for strategy in ("ring_s", "ps1_s", "ps8_s", "broadcast_s"):
            obs.metrics.gauge(
                "bench.e05.sync_s",
                strategy=strategy[:-2], workers=row["workers"],
            ).set(row[strategy])
    emit_bench_snapshot(
        "e05", obs,
        meta={"experiment": "E5", "model_bytes": MODEL_BYTES,
              "workers": list(WORKERS)},
    )

    # Ring saturates: its bandwidth term converges to 2*M*beta, so 64
    # workers cost barely more than 8 (and < 2.2x the 2-worker case, whose
    # term is only M*beta).
    assert by_workers[64]["ring_s"] < by_workers[8]["ring_s"] * 1.3
    assert by_workers[64]["ring_s"] < by_workers[2]["ring_s"] * 2.2
    # Single PS degrades linearly with workers.
    assert by_workers[64]["ps1_s"] > by_workers[8]["ps1_s"] * 6
    # More servers help proportionally.
    assert by_workers[64]["ps8_s"] < by_workers[64]["ps1_s"] / 6
    # Broadcast is strictly worse than ring everywhere.
    for row in rows:
        assert row["broadcast_s"] > row["ring_s"]


def test_e05_latency_regime_crossover(benchmark):
    """Crossover: tiny model + slow latency -> full PS tier beats the ring."""
    latency_net = NetworkModel(latency_s=2e-3, bandwidth_bps=1.25e9)
    small_model = 1e6

    def crossover():
        rows = []
        for workers in WORKERS:
            ring = ring_allreduce_time_s(workers, small_model, latency_net)
            ps_full = parameter_server_time_s(
                workers, small_model, servers=workers, network=latency_net
            )
            rows.append(
                {"workers": workers, "ring_s": ring, "ps_full_tier_s": ps_full,
                 "winner": "ps" if ps_full < ring else "ring"}
            )
        return rows

    rows = benchmark(crossover)
    print_series("E5: latency-dominated regime (1 MB model, 2 ms links)", rows)
    # Shape: the ring's 2(n-1) latency steps lose at scale.
    assert rows[-1]["winner"] == "ps"
    benchmark.extra_info["crossover_at"] = next(
        (r["workers"] for r in rows if r["winner"] == "ps"), None
    )
