"""E3 — geometry complexity degradation.

Paper claim: "If the complexity of geometries in the dataset increases (i.e.,
we have multi-polygons), not even the aforementioned performance can be
achieved for both Strabon and GraphDB." Expected shape: with the store size
held fixed, selection latency grows with per-geometry vertex count (the exact
intersection test dominates once the index has pruned), and multipolygons
cost more than points at every size.
"""

import random
import time

import pytest

from benchmarks.conftest import print_series
from repro.geometry import MultiPolygon, Point, Polygon
from repro.geosparql import GeoStore, geometry_literal
from repro.rdf import GEO, Namespace

EX = Namespace("http://ex.org/")
STORE_SIZE = 2_000
WORLD = 10_000.0
WINDOW = 800.0
VERTEX_COUNTS = (8, 32, 128, 512)

PREFIXES = (
    "PREFIX geo: <http://www.opengis.net/ont/geosparql#> "
    "PREFIX geof: <http://www.opengis.net/def/function/geosparql/> "
)


def build_store(vertices_per_geometry, seed=0):
    """A store of multipolygons (two parts, v/2 vertices each)."""
    rng = random.Random(seed)
    store = GeoStore()
    triples = []
    for i in range(STORE_SIZE):
        x, y = rng.uniform(0, WORLD), rng.uniform(0, WORLD)
        if vertices_per_geometry == 0:
            geometry = Point(x, y)
        else:
            half = max(vertices_per_geometry // 2, 3)
            geometry = MultiPolygon(
                [
                    Polygon.regular(x, y, 30.0, half),
                    Polygon.regular(x + 80.0, y, 20.0, half),
                ]
            )
        triples.append((EX[f"f{i}"], GEO.asWKT, geometry_literal(geometry)))
    store.bulk_load(triples)
    return store


def selection(store, seed=1, queries=5):
    rng = random.Random(seed)
    total = 0.0
    hits = 0
    for _ in range(queries):
        x = rng.uniform(0, WORLD - WINDOW)
        y = rng.uniform(0, WORLD - WINDOW)
        box = geometry_literal(Polygon.box(x, y, x + WINDOW, y + WINDOW))
        query = (
            PREFIXES
            + "SELECT ?f WHERE { ?f geo:asWKT ?g . "
            + f'FILTER (geof:sfIntersects(?g, "{box.lexical}"^^geo:wktLiteral)) }}'
        )
        start = time.perf_counter()
        hits += len(store.query(query))
        total += time.perf_counter() - start
    return total / queries, hits


def test_e03_latency_vs_vertex_count(benchmark):
    """Figure-style series: selection latency vs vertices per geometry."""
    point_store = build_store(0)
    point_latency, _ = selection(point_store)
    rows = [{"geometry": "POINT", "vertices": 1, "latency_ms": point_latency * 1000}]
    latencies = {}
    for vertices in VERTEX_COUNTS:
        store = build_store(vertices)
        latency, hits = selection(store)
        assert hits > 0
        latencies[vertices] = latency
        rows.append(
            {
                "geometry": "MULTIPOLYGON",
                "vertices": vertices,
                "latency_ms": latency * 1000,
            }
        )
    print_series("E3: selection latency vs geometry complexity", rows)
    benchmark.extra_info["degradation_512_vs_8"] = latencies[512] / latencies[8]

    # Shape: complexity hurts monotonically-ish and dominates points.
    assert latencies[512] > latencies[8] * 2
    assert latencies[8] > point_latency

    store = build_store(VERTEX_COUNTS[-1])
    benchmark(lambda: selection(store, queries=1))
