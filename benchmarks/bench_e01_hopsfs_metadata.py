"""E1 — HopsFS metadata scaling.

Paper claim: HopsFS scales "HDFS to more than 1 million operations per
second" by sharding namenode metadata [13]; the platform must scale to PBs
(Challenge C5). Expected shape: simulated metadata throughput grows near
linearly with the shard count, while the single-leader baseline stays flat;
the small-files optimisation removes all block allocations for small files.
"""

import pytest

from benchmarks.conftest import emit_bench_snapshot, print_series
from repro.hopsfs import BlockManager, HopsFS, SingleLeaderFS
from repro.hopsfs.kvstore import ShardedKVStore
from repro.hopsfs.workload import run_metadata_workload
from repro.obs import Observability

OPERATIONS = 4000
SHARD_COUNTS = (1, 2, 4, 8, 16)


def _run(shards: int, obs=None):
    fs = HopsFS(store=ShardedKVStore(shard_count=shards, obs=obs))
    return run_metadata_workload(fs, operations=OPERATIONS, seed=7)


def test_e01_throughput_vs_shards(benchmark):
    """Figure-style series: simulated metadata ops/s vs shard count."""
    obs = Observability()
    results = {}

    def workload():
        for shards in SHARD_COUNTS:
            with obs.tracer.span("bench.e01.sweep", shards=shards):
                results[shards] = _run(shards, obs=obs)
        return results

    benchmark.pedantic(workload, rounds=1, iterations=1)
    baseline = SingleLeaderFS()
    hdfs = run_metadata_workload(baseline, operations=OPERATIONS, seed=7)

    rows = [
        {
            "shards": shards,
            "sim_ops_per_s": result.ops_per_second,
            "speedup_vs_hdfs": result.ops_per_second / hdfs.ops_per_second,
            "multi_shard_frac": result.multi_shard_fraction,
        }
        for shards, result in results.items()
    ]
    rows.append(
        {
            "shards": "HDFS(1 leader)",
            "sim_ops_per_s": hdfs.ops_per_second,
            "speedup_vs_hdfs": 1.0,
            "multi_shard_frac": hdfs.multi_shard_fraction,
        }
    )
    print_series("E1: metadata throughput vs shards", rows)
    benchmark.extra_info["ops_per_second"] = {
        str(s): round(r.ops_per_second) for s, r in results.items()
    }
    for shards, result in results.items():
        obs.metrics.gauge("bench.e01.sim_ops_per_s", shards=shards).set(
            result.ops_per_second
        )
    emit_bench_snapshot(
        "e01", obs,
        meta={"experiment": "E1", "operations": OPERATIONS,
              "shard_counts": list(SHARD_COUNTS)},
    )

    # Shape assertions: near-linear scaling, single leader flat.
    assert results[4].ops_per_second > results[1].ops_per_second * 2.5
    assert results[16].ops_per_second > results[4].ops_per_second * 2.0
    assert results[16].ops_per_second > hdfs.ops_per_second * 8


def test_e01_ablation_small_files(benchmark):
    """Ablation: the 'Size Matters' inline-small-files optimisation."""

    def build(threshold):
        fs = HopsFS(
            blocks=BlockManager(block_size=4096, replication=1, node_count=4),
            small_file_threshold=threshold,
        )
        fs.makedirs("/data/d")
        for i in range(300):
            fs.create(f"/data/d/f{i}", b"x" * 2000)
        return fs

    fs_on = benchmark.pedantic(lambda: build(64 * 1024), rounds=1, iterations=1)
    fs_off = build(0)
    print_series(
        "E1 ablation: small files inline",
        [
            {"threshold": "64 KB (on)", "blocks_allocated": fs_on.blocks.block_count},
            {"threshold": "0 (off)", "blocks_allocated": fs_off.blocks.block_count},
        ],
    )
    assert fs_on.blocks.block_count == 0
    assert fs_off.blocks.block_count == 300
