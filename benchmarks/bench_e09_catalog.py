"""E9 — semantic catalogue scaling and the iceberg query (Challenge C4).

Paper claims: catalogues must scale "to trillions of metadata records" (we
sweep record counts and report the scaling shape to extrapolate), and must
answer queries like "How many icebergs were embedded in the Norske Oer Ice
Barrier at its maximum extent in 2017?" which "currently cannot be answered".
Expected shape: ingest throughput roughly flat (per-record cost constant);
search latency grows sublinearly thanks to the R-tree; the semantic catalogue
answers the iceberg query while the keyword baseline structurally cannot.
"""

import time

import pytest

from benchmarks.conftest import print_series
from repro.catalog import CapabilityError, KeywordCatalog, SemanticCatalog
from repro.geometry import Polygon
from repro.raster.products import ProductArchive

RECORD_COUNTS = (500, 2_000, 8_000)


def test_e09_catalog_scaling(benchmark):
    """Figure-style series: ingest rate and search latency vs record count."""
    rows = []
    latencies = {}

    def sweep():
        for count in RECORD_COUNTS:
            products = ProductArchive(seed=1).generate(count)
            catalog = SemanticCatalog()
            start = time.perf_counter()
            catalog.add_products(products)
            ingest_s = time.perf_counter() - start

            start = time.perf_counter()
            found = catalog.search_products(
                bbox=(0.0, 40.0, 10.0, 50.0), mission="S1",
                start_time="2017-03-01",
            )
            search_s = time.perf_counter() - start
            latencies[count] = (ingest_s, search_s, len(found))
        return latencies

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    for count, (ingest_s, search_s, hits) in latencies.items():
        rows.append(
            {
                "records": count,
                "ingest_rec_per_s": count / ingest_s,
                "search_ms": search_s * 1000,
                "hits": hits,
            }
        )
    print_series("E9: catalogue scaling", rows)
    benchmark.extra_info["search_ms"] = {
        str(c): round(v[1] * 1000, 2) for c, v in latencies.items()
    }

    # Shape: per-record ingest cost roughly flat (within 4x across 16x data);
    # search cost scales with the *result*, not the store — per-hit latency
    # stays within a small constant factor as the store grows 16x.
    rates = [count / latencies[count][0] for count in RECORD_COUNTS]
    assert max(rates) < min(rates) * 4
    per_hit = [
        latencies[count][1] / max(latencies[count][2], 1) for count in RECORD_COUNTS
    ]
    assert max(per_hit) < min(per_hit) * 3


def test_e09_iceberg_query_capability(benchmark):
    """The flagship semantic query: answerable vs structurally impossible."""
    semantic = SemanticCatalog()
    keyword = KeywordCatalog()
    products = ProductArchive(seed=2).generate(200)
    semantic.add_products(products)
    for product in products:
        keyword.add_product(product, keywords=("sar", "arctic"))

    semantic.add_ice_region(
        "noib-max", "Norske Oer Ice Barrier",
        Polygon.box(0, 0, 100, 100), "2017-03-01T00:00:00",
    )
    for i, (x, y) in enumerate([(10, 10), (50, 50), (90, 90), (300, 300)]):
        semantic.add_iceberg(
            f"b{i}", Polygon.box(x, y, x + 2, y + 2), "2017-04-01T00:00:00"
        )

    def semantic_answer():
        return semantic.count_icebergs_embedded("Norske Oer Ice Barrier", 2017)

    count = benchmark(semantic_answer)
    assert count == 3
    with pytest.raises(CapabilityError):
        keyword.count_icebergs_embedded("Norske Oer Ice Barrier", 2017)
    print_series(
        "E9: the Norske Oer iceberg query",
        [
            {"catalogue": "semantic (ours)", "answer": count},
            {"catalogue": "keyword baseline", "answer": "CapabilityError"},
        ],
    )
